#ifndef GIR_INDEX_RTREE_CODEC_H_
#define GIR_INDEX_RTREE_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "index/rtree.h"

namespace gir {

// Page-level serialization of R*-tree nodes, and a whole-tree disk
// image. This is what would hit the platters on the paper's setup: one
// node per 4 KB page. The in-memory engine does not round-trip through
// bytes on every access (the simulated DiskManager charges the I/O
// instead), but the codec (a) proves every node honours the page
// budget, and (b) provides real persistence.
//
// Page layout (little-endian):
//   u8  is_leaf | u8 pad | u16 level | u32 entry_count
//   entries: { i32 child, f64 lo[dim], f64 hi[dim] } * entry_count
//
// Image layout:
//   u32 magic | u32 version | u32 dim | u32 page_size
//   u32 root  | u32 node_count | u64 record_count
//   node pages, each padded to page_size
constexpr uint32_t kRtreeImageMagic = 0x47495254;  // "GIRT"
constexpr uint32_t kRtreeImageVersion = 1;

// Serializes one node into exactly `page_size` bytes (zero-padded).
// Fails with OutOfRange when the node does not fit the page.
Result<std::vector<uint8_t>> EncodeNode(const RTreeNode& node, size_t dim,
                                        size_t page_size);

// Parses a node from a page buffer. Fails with InvalidArgument on a
// malformed page (e.g. an entry count that overruns the buffer).
Result<RTreeNode> DecodeNode(const std::vector<uint8_t>& page, size_t dim);

// Whole-tree image.
Result<std::vector<uint8_t>> SaveRTreeImage(const RTree& tree);

// Rebuilds a tree from an image over the same dataset. The DiskManager
// is used for page accounting of the restored tree.
Result<RTree> LoadRTreeImage(const Dataset* dataset, DiskManager* disk,
                             const std::vector<uint8_t>& image);

}  // namespace gir

#endif  // GIR_INDEX_RTREE_CODEC_H_
