#include "index/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

namespace gir {

namespace {

// Per-insertion bookkeeping for R* forced reinsertion ("once per level
// per insertion"). Kept out of the class to keep the header lean.
thread_local std::set<int>* t_reinserted_levels = nullptr;

}  // namespace

Mbb RTreeNode::ComputeMbb(size_t dim) const {
  Mbb box = Mbb::EmptyBox(dim);
  for (const RTreeEntry& e : entries) box.ExpandTo(e.mbb);
  return box;
}

RTree::RTree(const Dataset* dataset, DiskManager* disk,
             const RTreeOptions& options)
    : dataset_(dataset), disk_(disk), options_(options) {
  const size_t dim = dataset->dim();
  const size_t header_bytes = 16;
  const size_t entry_bytes = 2 * dim * sizeof(double) + sizeof(int32_t);
  capacity_ = (disk->page_size_bytes() - header_bytes) / entry_bytes;
  assert(capacity_ >= 4 && "page too small for this dimensionality");
  min_entries_ = std::max<size_t>(
      2, static_cast<size_t>(capacity_ * options.min_fill));
}

PageId RTree::NewNode(bool is_leaf, int level) {
  PageId page;
  if (!free_pages_.empty()) {
    // Reuse a page dissolved by CondenseTree (FreeNode left it empty);
    // no fresh allocation.
    page = free_pages_.back();
    free_pages_.pop_back();
  } else {
    page = disk_->Allocate();
    assert(page == nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[page].is_leaf = is_leaf;
  nodes_[page].level = level;
  disk_->NoteWrite();
  return page;
}

void RTree::FreeNode(PageId page) {
  nodes_[page].entries.clear();
  free_pages_.push_back(page);
}

const RTreeNode& RTree::ReadNode(PageId page) const {
  disk_->NoteRead();
  return nodes_[page];
}

size_t RTree::height() const {
  if (root_ == kInvalidPage) return 0;
  return static_cast<size_t>(nodes_[root_].level) + 1;
}

PageId RTree::ChooseSubtree(const Mbb& box, int target_level,
                            std::vector<PageId>* path) const {
  PageId current = root_;
  path->push_back(current);
  while (nodes_[current].level > target_level) {
    const RTreeNode& node = nodes_[current];
    const bool choosing_leaf = node.level == 1 && target_level == 0;
    size_t best = 0;
    double best_primary = 1e300;
    double best_secondary = 1e300;
    double best_area = 1e300;
    for (size_t i = 0; i < node.entries.size(); ++i) {
      const RTreeEntry& e = node.entries[i];
      double area = e.mbb.Area();
      double enlargement = e.mbb.Enlargement(box);
      double primary;
      if (choosing_leaf) {
        // R*: minimize overlap enlargement among siblings.
        Mbb enlarged = e.mbb;
        enlarged.ExpandTo(box);
        double overlap_before = 0.0;
        double overlap_after = 0.0;
        for (size_t j = 0; j < node.entries.size(); ++j) {
          if (j == i) continue;
          overlap_before += e.mbb.OverlapArea(node.entries[j].mbb);
          overlap_after += enlarged.OverlapArea(node.entries[j].mbb);
        }
        primary = overlap_after - overlap_before;
      } else {
        primary = enlargement;
      }
      double secondary = choosing_leaf ? enlargement : area;
      double tertiary = choosing_leaf ? area : 0.0;
      if (primary < best_primary - 1e-18 ||
          (primary <= best_primary + 1e-18 &&
           (secondary < best_secondary - 1e-18 ||
            (secondary <= best_secondary + 1e-18 && tertiary < best_area)))) {
        best = i;
        best_primary = primary;
        best_secondary = secondary;
        best_area = tertiary;
      }
    }
    current = static_cast<PageId>(node.entries[best].child);
    path->push_back(current);
  }
  return current;
}

void RTree::RefreshPathMbbs(const std::vector<PageId>& path, PageId child) {
  // Walk from the deepest ancestor upward, synchronizing the entry that
  // points at `child` (then at its parent, and so on).
  for (size_t i = path.size(); i-- > 0;) {
    if (path[i] == child) continue;
    RTreeNode& parent = nodes_[path[i]];
    Mbb child_box = nodes_[child].ComputeMbb(dataset_->dim());
    for (RTreeEntry& e : parent.entries) {
      if (e.child == static_cast<int32_t>(child)) {
        e.mbb = child_box;
        break;
      }
    }
    child = path[i];
  }
}

void RTree::Insert(RecordId id) {
  std::set<int> reinserted;
  t_reinserted_levels = &reinserted;
  RTreeEntry entry;
  entry.mbb = Mbb::OfPoint(dataset_->Get(id));
  entry.child = id;
  InsertEntry(std::move(entry), /*target_level=*/0, /*reinsert_depth=*/0);
  ++record_count_;
  t_reinserted_levels = nullptr;
}

bool RTree::FindLeaf(PageId page, const Mbb& point, RecordId id,
                     std::vector<PageId>* path) const {
  path->push_back(page);
  const RTreeNode& node = nodes_[page];
  if (node.is_leaf) {
    for (const RTreeEntry& e : node.entries) {
      if (e.child == id) return true;
    }
  } else {
    for (const RTreeEntry& e : node.entries) {
      if (!e.mbb.Intersects(point)) continue;
      if (FindLeaf(static_cast<PageId>(e.child), point, id, path)) return true;
    }
  }
  path->pop_back();
  return false;
}

void RTree::CondenseTree(std::vector<PageId> path) {
  // Walk from the leaf upward. A node that fell below the fill floor is
  // dissolved: its entry is removed from the parent and its surviving
  // entries queue for reinsertion at their original level (Guttman's
  // CondenseTree, with the R* insertion doing the reinsert work).
  struct Orphan {
    RTreeEntry entry;
    int target_level;
  };
  std::vector<Orphan> orphans;
  while (path.size() > 1) {
    PageId page = path.back();
    path.pop_back();
    PageId parent = path.back();
    RTreeNode& node = nodes_[page];
    std::vector<RTreeEntry>& up = nodes_[parent].entries;
    if (node.entries.size() < min_entries_) {
      for (size_t i = 0; i < up.size(); ++i) {
        if (up[i].child == static_cast<int32_t>(page)) {
          up.erase(up.begin() + i);
          break;
        }
      }
      for (RTreeEntry& e : node.entries) {
        orphans.push_back(Orphan{std::move(e), node.level});
      }
      FreeNode(page);
    } else {
      Mbb tight = node.ComputeMbb(dataset_->dim());
      for (RTreeEntry& e : up) {
        if (e.child == static_cast<int32_t>(page)) {
          e.mbb = tight;
          break;
        }
      }
    }
  }
  // Higher-level orphans first: reattaching a subtree before its records
  // keeps ChooseSubtree's target levels reachable.
  std::sort(orphans.begin(), orphans.end(),
            [](const Orphan& a, const Orphan& b) {
              return a.target_level > b.target_level;
            });
  for (Orphan& o : orphans) {
    InsertEntry(std::move(o.entry), o.target_level, /*reinsert_depth=*/0);
  }
}

bool RTree::Contains(RecordId id) const {
  if (root_ == kInvalidPage) return false;
  const Mbb point = Mbb::OfPoint(dataset_->Get(id));
  std::vector<PageId> path;
  return FindLeaf(root_, point, id, &path);
}

bool RTree::Delete(RecordId id) {
  if (root_ == kInvalidPage) return false;
  const Mbb point = Mbb::OfPoint(dataset_->Get(id));
  std::vector<PageId> path;
  if (!FindLeaf(root_, point, id, &path)) return false;

  RTreeNode& leaf = nodes_[path.back()];
  for (size_t i = 0; i < leaf.entries.size(); ++i) {
    if (leaf.entries[i].child == id) {
      leaf.entries.erase(leaf.entries.begin() + i);
      break;
    }
  }
  --record_count_;

  // Orphan reinsertion may overflow nodes; give OverflowTreatment the
  // same once-per-level reinsert bookkeeping as Insert.
  std::set<int> reinserted;
  t_reinserted_levels = &reinserted;
  CondenseTree(std::move(path));
  t_reinserted_levels = nullptr;

  // Collapse a root that lost all but one subtree.
  while (root_ != kInvalidPage && !nodes_[root_].is_leaf &&
         nodes_[root_].entries.size() == 1) {
    PageId old_root = root_;
    root_ = static_cast<PageId>(nodes_[root_].entries[0].child);
    FreeNode(old_root);
  }
  if (record_count_ == 0 && nodes_[root_].is_leaf &&
      nodes_[root_].entries.empty()) {
    FreeNode(root_);
    root_ = kInvalidPage;
  }
  return true;
}

void RTree::InsertEntry(RTreeEntry entry, int target_level,
                        int reinsert_depth) {
  if (root_ == kInvalidPage) {
    assert(target_level == 0);
    root_ = NewNode(/*is_leaf=*/true, /*level=*/0);
    nodes_[root_].entries.push_back(std::move(entry));
    return;
  }
  std::vector<PageId> path;
  PageId target = ChooseSubtree(entry.mbb, target_level, &path);
  nodes_[target].entries.push_back(std::move(entry));
  RefreshPathMbbs(path, target);
  if (nodes_[target].entries.size() > capacity_) {
    OverflowTreatment(target, path, reinsert_depth);
  }
}

void RTree::OverflowTreatment(PageId page, std::vector<PageId>& path,
                              int reinsert_depth) {
  int level = nodes_[page].level;
  if (page != root_ && reinsert_depth < 4 && t_reinserted_levels != nullptr &&
      t_reinserted_levels->insert(level).second) {
    Reinsert(page, path, reinsert_depth);
  } else {
    Split(page, path);
  }
}

void RTree::Reinsert(PageId page, std::vector<PageId>& path,
                     int reinsert_depth) {
  RTreeNode& node = nodes_[page];
  const size_t dim = dataset_->dim();
  Mbb node_box = node.ComputeMbb(dim);
  // Sort entries by distance of their centers from the node's center,
  // farthest first, and evict the top `reinsert_fraction`.
  std::sort(node.entries.begin(), node.entries.end(),
            [&](const RTreeEntry& a, const RTreeEntry& b) {
              return a.mbb.CenterDistanceSquared(node_box) >
                     b.mbb.CenterDistanceSquared(node_box);
            });
  size_t evict =
      std::max<size_t>(1, static_cast<size_t>(node.entries.size() *
                                              options_.reinsert_fraction));
  std::vector<RTreeEntry> evicted(node.entries.begin(),
                                  node.entries.begin() + evict);
  node.entries.erase(node.entries.begin(), node.entries.begin() + evict);
  int level = node.level;
  RefreshPathMbbs(path, page);
  for (RTreeEntry& e : evicted) {
    InsertEntry(std::move(e), level, reinsert_depth + 1);
  }
}

void RTree::ChooseSplit(std::vector<RTreeEntry>& entries, size_t dim,
                        size_t min_fill, std::vector<RTreeEntry>* left,
                        std::vector<RTreeEntry>* right) {
  const size_t total = entries.size();
  const size_t k_max = total - 2 * min_fill + 1;
  assert(total >= 2 * min_fill);

  // 1. Choose the split axis: minimal sum of margins over all
  // candidate distributions (both lo- and hi-sorted orders).
  size_t best_axis = 0;
  double best_margin_sum = 1e300;
  for (size_t axis = 0; axis < dim; ++axis) {
    double margin_sum = 0.0;
    for (int sort_by_hi = 0; sort_by_hi < 2; ++sort_by_hi) {
      std::sort(entries.begin(), entries.end(),
                [&](const RTreeEntry& a, const RTreeEntry& b) {
                  return sort_by_hi ? a.mbb.hi[axis] < b.mbb.hi[axis]
                                    : a.mbb.lo[axis] < b.mbb.lo[axis];
                });
      for (size_t k = 0; k < k_max; ++k) {
        size_t split_at = min_fill + k;
        Mbb g1 = Mbb::EmptyBox(dim);
        Mbb g2 = Mbb::EmptyBox(dim);
        for (size_t i = 0; i < split_at; ++i) g1.ExpandTo(entries[i].mbb);
        for (size_t i = split_at; i < total; ++i) g2.ExpandTo(entries[i].mbb);
        margin_sum += g1.Margin() + g2.Margin();
      }
    }
    if (margin_sum < best_margin_sum) {
      best_margin_sum = margin_sum;
      best_axis = axis;
    }
  }

  // 2. On the chosen axis, pick the distribution with minimal overlap
  // (ties: minimal total area) across both sort orders.
  size_t best_split = min_fill;
  int best_sort = 0;
  double best_overlap = 1e300;
  double best_area = 1e300;
  for (int sort_by_hi = 0; sort_by_hi < 2; ++sort_by_hi) {
    std::sort(entries.begin(), entries.end(),
              [&](const RTreeEntry& a, const RTreeEntry& b) {
                return sort_by_hi ? a.mbb.hi[best_axis] < b.mbb.hi[best_axis]
                                  : a.mbb.lo[best_axis] < b.mbb.lo[best_axis];
              });
    for (size_t k = 0; k < k_max; ++k) {
      size_t split_at = min_fill + k;
      Mbb g1 = Mbb::EmptyBox(dim);
      Mbb g2 = Mbb::EmptyBox(dim);
      for (size_t i = 0; i < split_at; ++i) g1.ExpandTo(entries[i].mbb);
      for (size_t i = split_at; i < total; ++i) g2.ExpandTo(entries[i].mbb);
      double overlap = g1.OverlapArea(g2);
      double area = g1.Area() + g2.Area();
      if (overlap < best_overlap - 1e-18 ||
          (overlap <= best_overlap + 1e-18 && area < best_area)) {
        best_overlap = overlap;
        best_area = area;
        best_split = split_at;
        best_sort = sort_by_hi;
      }
    }
  }
  std::sort(entries.begin(), entries.end(),
            [&](const RTreeEntry& a, const RTreeEntry& b) {
              return best_sort ? a.mbb.hi[best_axis] < b.mbb.hi[best_axis]
                               : a.mbb.lo[best_axis] < b.mbb.lo[best_axis];
            });
  left->assign(entries.begin(), entries.begin() + best_split);
  right->assign(entries.begin() + best_split, entries.end());
}

void RTree::Split(PageId page, std::vector<PageId>& path) {
  RTreeNode& node = nodes_[page];
  const size_t dim = dataset_->dim();
  std::vector<RTreeEntry> left;
  std::vector<RTreeEntry> right;
  ChooseSplit(node.entries, dim, min_entries_, &left, &right);

  PageId sibling = NewNode(node.is_leaf, node.level);
  // NewNode may reallocate nodes_: refresh the reference.
  RTreeNode& node2 = nodes_[page];
  node2.entries = std::move(left);
  nodes_[sibling].entries = std::move(right);

  if (page == root_) {
    PageId new_root = NewNode(/*is_leaf=*/false, nodes_[page].level + 1);
    RTreeEntry e1;
    e1.mbb = nodes_[page].ComputeMbb(dim);
    e1.child = static_cast<int32_t>(page);
    RTreeEntry e2;
    e2.mbb = nodes_[sibling].ComputeMbb(dim);
    e2.child = static_cast<int32_t>(sibling);
    nodes_[new_root].entries = {std::move(e1), std::move(e2)};
    root_ = new_root;
    return;
  }
  // Attach the sibling to the parent.
  path.pop_back();
  PageId parent = path.back();
  RTreeEntry sibling_entry;
  sibling_entry.mbb = nodes_[sibling].ComputeMbb(dim);
  sibling_entry.child = static_cast<int32_t>(sibling);
  nodes_[parent].entries.push_back(std::move(sibling_entry));
  RefreshPathMbbs(path, parent);
  // Also fix the split node's own entry in the parent.
  Mbb self_box = nodes_[page].ComputeMbb(dim);
  for (RTreeEntry& e : nodes_[parent].entries) {
    if (e.child == static_cast<int32_t>(page)) {
      e.mbb = self_box;
      break;
    }
  }
  if (nodes_[parent].entries.size() > capacity_) {
    // The per-level reinsertion guard (t_reinserted_levels) decides
    // whether the parent reinserts or splits.
    OverflowTreatment(parent, path, /*reinsert_depth=*/0);
  }
}

namespace {

// Recursive Sort-Tile-Recursive partitioning: tiles `ids` (record ids or
// node indices) into runs of at most `capacity`, sorting each axis in
// turn. `key` maps an element and an axis to its sort coordinate.
template <typename Key>
void StrTile(std::vector<int32_t>& ids, size_t lo, size_t hi, size_t axis,
             size_t dims, size_t capacity, const Key& key,
             std::vector<std::pair<size_t, size_t>>* runs) {
  const size_t n = hi - lo;
  if (n <= capacity) {
    runs->emplace_back(lo, hi);
    return;
  }
  std::sort(ids.begin() + lo, ids.begin() + hi, [&](int32_t a, int32_t b) {
    return key(a, axis) < key(b, axis);
  });
  // Balanced partitioning (sizes differ by at most one) keeps trailing
  // runs from falling far below the fill target.
  auto balanced = [](size_t total, size_t parts, size_t part) {
    return total * part / parts;  // prefix boundary of `part`
  };
  if (axis + 1 == dims) {
    const size_t chunks = (n + capacity - 1) / capacity;
    for (size_t c = 0; c < chunks; ++c) {
      runs->emplace_back(lo + balanced(n, chunks, c),
                         lo + balanced(n, chunks, c + 1));
    }
    return;
  }
  const double pages = std::ceil(static_cast<double>(n) / capacity);
  const size_t slabs = static_cast<size_t>(std::ceil(
      std::pow(pages, 1.0 / static_cast<double>(dims - axis))));
  for (size_t s = 0; s < slabs; ++s) {
    size_t start = lo + balanced(n, slabs, s);
    size_t stop = lo + balanced(n, slabs, s + 1);
    if (start < stop) {
      StrTile(ids, start, stop, axis + 1, dims, capacity, key, runs);
    }
  }
}

}  // namespace

RTree RTree::BulkLoad(const Dataset* dataset, DiskManager* disk,
                      const RTreeOptions& options) {
  RTree tree(dataset, disk, options);
  tree.bulk_loaded_ = true;
  const size_t dim = dataset->dim();

  // Only live records are indexed; tombstoned slots stay out of the
  // tree (their ids remain resolvable through the dataset).
  std::vector<int32_t> ids;
  ids.reserve(dataset->live_size());
  for (size_t i = 0; i < dataset->size(); ++i) {
    if (dataset->IsLive(static_cast<RecordId>(i))) {
      ids.push_back(static_cast<int32_t>(i));
    }
  }
  const size_t n = ids.size();
  if (n == 0) return tree;
  std::vector<std::pair<size_t, size_t>> runs;
  StrTile(
      ids, 0, n, 0, dim, tree.capacity_,
      [&](int32_t id, size_t axis) { return dataset->Get(id)[axis]; }, &runs);

  std::vector<PageId> level_pages;
  std::vector<Vec> level_centers;
  for (auto [lo, hi] : runs) {
    PageId page = tree.NewNode(/*is_leaf=*/true, /*level=*/0);
    RTreeNode& node = tree.nodes_[page];
    for (size_t i = lo; i < hi; ++i) {
      RTreeEntry e;
      e.mbb = Mbb::OfPoint(dataset->Get(ids[i]));
      e.child = ids[i];
      node.entries.push_back(std::move(e));
    }
    level_pages.push_back(page);
    level_centers.push_back(node.ComputeMbb(dim).Center());
  }
  tree.record_count_ = n;

  // Upper levels.
  int level = 1;
  while (level_pages.size() > 1) {
    std::vector<int32_t> node_ids(level_pages.size());
    for (size_t i = 0; i < level_pages.size(); ++i) {
      node_ids[i] = static_cast<int32_t>(i);
    }
    runs.clear();
    StrTile(
        node_ids, 0, node_ids.size(), 0, dim, tree.capacity_,
        [&](int32_t id, size_t axis) { return level_centers[id][axis]; },
        &runs);
    std::vector<PageId> next_pages;
    std::vector<Vec> next_centers;
    for (auto [lo, hi] : runs) {
      PageId page = tree.NewNode(/*is_leaf=*/false, level);
      RTreeNode& node = tree.nodes_[page];
      for (size_t i = lo; i < hi; ++i) {
        PageId child = level_pages[node_ids[i]];
        RTreeEntry e;
        e.mbb = tree.nodes_[child].ComputeMbb(dim);
        e.child = static_cast<int32_t>(child);
        node.entries.push_back(std::move(e));
      }
      next_pages.push_back(page);
      next_centers.push_back(node.ComputeMbb(dim).Center());
    }
    level_pages = std::move(next_pages);
    level_centers = std::move(next_centers);
    ++level;
  }
  tree.root_ = level_pages[0];
  return tree;
}

RTree RTree::FromParts(const Dataset* dataset, DiskManager* disk,
                       std::vector<RTreeNode> nodes, PageId root,
                       size_t record_count) {
  RTree tree(dataset, disk, RTreeOptions{});
  for (size_t i = 0; i < nodes.size(); ++i) disk->Allocate();
  tree.nodes_ = std::move(nodes);
  tree.root_ = root;
  tree.record_count_ = record_count;
  tree.bulk_loaded_ = true;  // fill invariants are unknown; be lenient
  // Recover the free list: pages a pre-persist Delete dissolved are
  // exactly the ones unreachable from the root (the codec serializes
  // every page slot to keep ids stable). Without this, churn on a
  // restored tree would leak those slots forever.
  std::vector<bool> reachable(tree.nodes_.size(), false);
  if (tree.root_ != kInvalidPage) {
    std::vector<PageId> stack = {tree.root_};
    reachable[tree.root_] = true;
    while (!stack.empty()) {
      const RTreeNode& node = tree.nodes_[stack.back()];
      stack.pop_back();
      if (node.is_leaf) continue;
      for (const RTreeEntry& e : node.entries) {
        reachable[e.child] = true;
        stack.push_back(static_cast<PageId>(e.child));
      }
    }
  }
  for (size_t i = 0; i < tree.nodes_.size(); ++i) {
    if (!reachable[i]) {
      tree.nodes_[i].entries.clear();
      tree.free_pages_.push_back(static_cast<PageId>(i));
    }
  }
  return tree;
}

std::vector<RecordId> RTree::RangeQuery(const Mbb& box) const {
  std::vector<RecordId> out;
  if (root_ == kInvalidPage) return out;
  std::vector<PageId> stack = {root_};
  while (!stack.empty()) {
    PageId page = stack.back();
    stack.pop_back();
    const RTreeNode& node = nodes_[page];
    for (const RTreeEntry& e : node.entries) {
      if (!box.Intersects(e.mbb)) continue;
      if (node.is_leaf) {
        out.push_back(e.child);
      } else {
        stack.push_back(static_cast<PageId>(e.child));
      }
    }
  }
  return out;
}

Status RTree::Validate() const {
  if (root_ == kInvalidPage) {
    return record_count_ == 0
               ? Status::Ok()
               : Status::Internal("records recorded but tree empty");
  }
  const size_t dim = dataset_->dim();
  size_t seen_records = 0;
  std::vector<PageId> stack = {root_};
  std::set<PageId> visited;
  while (!stack.empty()) {
    PageId page = stack.back();
    stack.pop_back();
    if (!visited.insert(page).second) {
      return Status::Internal("node reachable twice");
    }
    const RTreeNode& node = nodes_[page];
    if (node.entries.size() > capacity_) {
      return Status::Internal("node over capacity");
    }
    // The min-fill invariant is an insertion-maintenance property; STR
    // bulk loading only guarantees balanced (never near-empty) nodes.
    size_t fill_floor = bulk_loaded_ ? 2 : min_entries_;
    if (page != root_ && node.entries.size() < fill_floor) {
      return Status::Internal("non-root node underfull");
    }
    if (node.is_leaf != (node.level == 0)) {
      return Status::Internal("leaf flag inconsistent with level");
    }
    for (const RTreeEntry& e : node.entries) {
      if (node.is_leaf) {
        ++seen_records;
        Mbb expected = Mbb::OfPoint(dataset_->Get(e.child));
        if (LInfDistance(expected.lo, e.mbb.lo) > 0 ||
            LInfDistance(expected.hi, e.mbb.hi) > 0) {
          return Status::Internal("leaf MBB does not match record");
        }
      } else {
        const RTreeNode& child = nodes_[e.child];
        if (child.level != node.level - 1) {
          return Status::Internal("child level mismatch");
        }
        Mbb expected = child.ComputeMbb(dim);
        if (LInfDistance(expected.lo, e.mbb.lo) > 1e-12 ||
            LInfDistance(expected.hi, e.mbb.hi) > 1e-12) {
          return Status::Internal("internal MBB is not tight");
        }
        stack.push_back(static_cast<PageId>(e.child));
      }
    }
  }
  if (seen_records != record_count_) {
    return Status::Internal("record count mismatch");
  }
  return Status::Ok();
}

}  // namespace gir
