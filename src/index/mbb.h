#ifndef GIR_INDEX_MBB_H_
#define GIR_INDEX_MBB_H_

#include <vector>

#include "geom/vec.h"

namespace gir {

// Minimum bounding box in [0,1]^d, the unit of R-tree bookkeeping.
struct Mbb {
  Vec lo;
  Vec hi;

  static Mbb EmptyBox(size_t dim);
  static Mbb OfPoint(VecView p);

  size_t dim() const { return lo.size(); }
  bool IsEmpty() const;

  void ExpandTo(VecView p);
  void ExpandTo(const Mbb& other);

  // Product of extents (the R*-tree "area").
  double Area() const;
  // Sum of extents (the R*-tree "margin").
  double Margin() const;
  // Area of the intersection with `other` (0 when disjoint).
  double OverlapArea(const Mbb& other) const;
  // Area increase if this box were expanded to cover `other`.
  double Enlargement(const Mbb& other) const;

  bool ContainsPoint(VecView p) const;
  bool ContainsMbb(const Mbb& other) const;
  bool Intersects(const Mbb& other) const;

  Vec Center() const;
  // The corner with all-max coordinates; BBS prunes nodes whose top
  // corner is dominated.
  const Vec& TopCorner() const { return hi; }

  // max over x in box of sum_j w_j * x_j. For non-negative weights this
  // is w·hi; general weights pick per-dimension. This is the BRS
  // `maxscore` for linear scoring.
  double MaxDot(VecView w) const;

  // Squared center-to-center distance (used by R* forced reinsert).
  double CenterDistanceSquared(const Mbb& other) const;
};

// Batched SoA counterparts of MaxDot for a block of n boxes stored as
// per-dimension planes (lo(j)[e], hi(j)[e] — the FlatRTree node
// layout): one SIMD-dispatched accumulation pass per dimension, so the
// per-box result has the same per-dimension accumulation order as
// Mbb::MaxDot. `acc` must hold n zeros (or a running partial sum).
//   acc[e] += max(w_j * lo_j[e], w_j * hi_j[e])    (AccumulateMaxDotPlane)
//   acc[e] += min(w_j * lo_j[e], w_j * hi_j[e])    (AccumulateMinDotPlane)
// Unlike the non-negative-weights maxscore kernel (which reads only the
// hi planes), these handle general-sign weights — the min/max-score
// sweep for arbitrary linear functionals over a node's boxes.
void AccumulateMaxDotPlane(double w, const double* lo, const double* hi,
                           double* acc, size_t n);
void AccumulateMinDotPlane(double w, const double* lo, const double* hi,
                           double* acc, size_t n);

}  // namespace gir

#endif  // GIR_INDEX_MBB_H_
