#ifndef GIR_INDEX_MBB_H_
#define GIR_INDEX_MBB_H_

#include <vector>

#include "geom/vec.h"

namespace gir {

// Minimum bounding box in [0,1]^d, the unit of R-tree bookkeeping.
struct Mbb {
  Vec lo;
  Vec hi;

  static Mbb EmptyBox(size_t dim);
  static Mbb OfPoint(VecView p);

  size_t dim() const { return lo.size(); }
  bool IsEmpty() const;

  void ExpandTo(VecView p);
  void ExpandTo(const Mbb& other);

  // Product of extents (the R*-tree "area").
  double Area() const;
  // Sum of extents (the R*-tree "margin").
  double Margin() const;
  // Area of the intersection with `other` (0 when disjoint).
  double OverlapArea(const Mbb& other) const;
  // Area increase if this box were expanded to cover `other`.
  double Enlargement(const Mbb& other) const;

  bool ContainsPoint(VecView p) const;
  bool ContainsMbb(const Mbb& other) const;
  bool Intersects(const Mbb& other) const;

  Vec Center() const;
  // The corner with all-max coordinates; BBS prunes nodes whose top
  // corner is dominated.
  const Vec& TopCorner() const { return hi; }

  // max over x in box of sum_j w_j * x_j. For non-negative weights this
  // is w·hi; general weights pick per-dimension. This is the BRS
  // `maxscore` for linear scoring.
  double MaxDot(VecView w) const;

  // Squared center-to-center distance (used by R* forced reinsert).
  double CenterDistanceSquared(const Mbb& other) const;
};

}  // namespace gir

#endif  // GIR_INDEX_MBB_H_
