#ifndef GIR_INDEX_RTREE_H_
#define GIR_INDEX_RTREE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "index/mbb.h"
#include "storage/disk_manager.h"

namespace gir {

// One slot of an R-tree node: for internal nodes `child` is a PageId,
// for leaves it is a RecordId (and the MBB is the point itself).
struct RTreeEntry {
  Mbb mbb;
  int32_t child = -1;
};

// An R-tree node, sized to fit one disk page.
struct RTreeNode {
  bool is_leaf = true;
  int level = 0;  // 0 = leaf
  std::vector<RTreeEntry> entries;

  Mbb ComputeMbb(size_t dim) const;
};

struct RTreeOptions {
  // Fraction of capacity below which nodes are considered underfull.
  double min_fill = 0.4;
  // R*: fraction of entries forcibly reinserted on first overflow.
  double reinsert_fraction = 0.3;
};

// Disk-resident R*-tree over a Dataset (Beckmann et al., SIGMOD 1990):
// ChooseSubtree with minimum overlap enlargement at the leaf level,
// forced reinsertion on first overflow per level, and the R* topological
// split (axis by margin sum, distribution by overlap then area). An STR
// bulk loader (Leutenegger et al.) is provided for benchmark-scale
// construction.
//
// Every node access that the paper's setup would serve from disk must go
// through ReadNode(), which charges one page read to the DiskManager.
class RTree {
 public:
  // Builds an empty tree. `dataset` and `disk` must outlive the tree.
  RTree(const Dataset* dataset, DiskManager* disk,
        const RTreeOptions& options = {});

  // Inserts one record (R* insertion with forced reinsert).
  void Insert(RecordId id);

  // Removes one record (Guttman FindLeaf + CondenseTree with R*
  // reinsertion of orphaned entries): underfull nodes along the
  // deletion path are dissolved and their entries reinserted at their
  // original level; a single-child root is collapsed. Freed pages go on
  // a free list and are reused by later splits, so the page arena stays
  // bounded under sustained update churn. Returns false when the record
  // is not in the tree.
  bool Delete(RecordId id);

  // True when the record is present in a leaf (same FindLeaf walk as
  // Delete, no mutation). ApplyUpdates probes every delete id with this
  // *before* mutating anything, so a broken index invariant rejects the
  // whole batch instead of leaving earlier deletes applied.
  bool Contains(RecordId id) const;

  // Sort-Tile-Recursive bulk load of the live records of the dataset
  // (tombstoned records are skipped).
  static RTree BulkLoad(const Dataset* dataset, DiskManager* disk,
                        const RTreeOptions& options = {});

  // Reassembles a tree from explicit nodes (used by the page codec when
  // restoring a persisted image; not part of the query API). Page ids
  // are re-allocated densely in node order; pages unreachable from the
  // root (slots a pre-persist Delete dissolved) are recovered onto the
  // free list.
  static RTree FromParts(const Dataset* dataset, DiskManager* disk,
                         std::vector<RTreeNode> nodes, PageId root,
                         size_t record_count);

  // Node access, charging one simulated page read.
  const RTreeNode& ReadNode(PageId page) const;
  // Accounting-free access for tests and validation.
  const RTreeNode& PeekNode(PageId page) const { return nodes_[page]; }

  PageId root() const { return root_; }
  size_t height() const;  // number of levels (1 = root is a leaf)
  size_t size() const { return record_count_; }
  size_t node_count() const { return nodes_.size(); }

  // Max entries per node, derived from the page size: each entry costs
  // 2*d*8 bytes of MBB plus 4 bytes of child id, and the node header is
  // 16 bytes.
  size_t Capacity() const { return capacity_; }

  // All record ids whose point intersects `box` (accounting-free; used
  // by tests to cross-check against linear scans).
  std::vector<RecordId> RangeQuery(const Mbb& box) const;

  // Structural invariants: MBB containment, fill factors, level
  // consistency, record multiset equality. Used by tests.
  Status Validate() const;

  const Dataset& dataset() const { return *dataset_; }
  DiskManager* disk() const { return disk_; }

 private:
  PageId NewNode(bool is_leaf, int level);
  void FreeNode(PageId page);
  Mbb EntryMbbOf(const RTreeNode& node) const;

  // Deletion machinery.
  bool FindLeaf(PageId page, const Mbb& point, RecordId id,
                std::vector<PageId>* path) const;
  void CondenseTree(std::vector<PageId> path);

  // R* machinery.
  PageId ChooseSubtree(const Mbb& box, int target_level,
                       std::vector<PageId>* path) const;
  void InsertEntry(RTreeEntry entry, int target_level, int reinsert_depth);
  void OverflowTreatment(PageId page, std::vector<PageId>& path,
                         int reinsert_depth);
  void Reinsert(PageId page, std::vector<PageId>& path, int reinsert_depth);
  void Split(PageId page, std::vector<PageId>& path);
  // R* split choice: returns the entries partitioned into two groups.
  static void ChooseSplit(std::vector<RTreeEntry>& entries, size_t dim,
                          size_t min_fill, std::vector<RTreeEntry>* left,
                          std::vector<RTreeEntry>* right);
  void RefreshPathMbbs(const std::vector<PageId>& path, PageId child);

  const Dataset* dataset_;
  DiskManager* disk_;
  RTreeOptions options_;
  size_t capacity_;
  size_t min_entries_;
  std::vector<RTreeNode> nodes_;
  std::vector<PageId> free_pages_;  // dissolved by CondenseTree, reusable
  PageId root_ = kInvalidPage;
  size_t record_count_ = 0;
  bool bulk_loaded_ = false;
};

}  // namespace gir

#endif  // GIR_INDEX_RTREE_H_
