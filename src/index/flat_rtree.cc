#include "index/flat_rtree.h"

#include <cassert>

#include "common/simd.h"

namespace gir {

Mbb FlatRTree::NodeView::EntryMbb(size_t e) const {
  Mbb box;
  box.lo.resize(dim_);
  box.hi.resize(dim_);
  for (size_t j = 0; j < dim_; ++j) {
    box.lo[j] = lo(j)[e];
    box.hi[j] = hi(j)[e];
  }
  return box;
}

void FlatRTree::NodeView::EntryMbbInto(size_t e, Mbb* out) const {
  out->lo.resize(dim_);
  out->hi.resize(dim_);
  for (size_t j = 0; j < dim_; ++j) {
    out->lo[j] = lo(j)[e];
    out->hi[j] = hi(j)[e];
  }
}

void FlatRTree::NodeView::EntryTopCorner(size_t e, Vec* out) const {
  out->resize(dim_);
  for (size_t j = 0; j < dim_; ++j) (*out)[j] = hi(j)[e];
}

FlatRTree FlatRTree::Freeze(const RTree& tree,
                            const Dataset* dataset_override) {
  FlatRTree flat;
  flat.dataset_ = dataset_override != nullptr ? dataset_override
                                              : &tree.dataset();
  flat.disk_ = tree.disk();
  flat.dim_ = tree.dataset().dim();
  flat.capacity_ = tree.Capacity();
  flat.node_stride_ = 2 * flat.dim_ * flat.capacity_;
  flat.root_ = tree.root();
  flat.record_count_ = tree.size();

  const size_t n = tree.node_count();
  flat.coords_.assign(n * flat.node_stride_, 0.0);
  flat.children_.assign(n * flat.capacity_, -1);
  flat.meta_.resize(n);
  for (size_t p = 0; p < n; ++p) {
    const RTreeNode& node = tree.PeekNode(static_cast<PageId>(p));
    assert(node.entries.size() <= flat.capacity_);
    FlatNodeMeta& meta = flat.meta_[p];
    meta.count = static_cast<uint32_t>(node.entries.size());
    meta.level = node.level;
    meta.is_leaf = node.is_leaf;
    meta.mbb = node.ComputeMbb(flat.dim_);
    double* coords = flat.coords_.data() + p * flat.node_stride_;
    int32_t* children = flat.children_.data() + p * flat.capacity_;
    for (size_t e = 0; e < node.entries.size(); ++e) {
      const RTreeEntry& entry = node.entries[e];
      children[e] = entry.child;
      for (size_t j = 0; j < flat.dim_; ++j) {
        coords[j * flat.capacity_ + e] = entry.mbb.lo[j];
        coords[(flat.dim_ + j) * flat.capacity_ + e] = entry.mbb.hi[j];
      }
    }
  }
  return flat;
}

size_t FlatRTree::height() const {
  if (root_ == kInvalidPage) return 0;
  return static_cast<size_t>(meta_[root_].level) + 1;
}

std::vector<RecordId> FlatRTree::RangeQuery(const Mbb& box) const {
  std::vector<RecordId> out;
  if (root_ == kInvalidPage) return out;
  std::vector<PageId> stack = {root_};
  // Per-node interval-overlap sweep over the SoA planes: one
  // SIMD-dispatched pass per dimension narrows the survivor mask, so
  // the per-entry branch only runs for boxes that truly overlap.
  std::vector<uint8_t> mask;
  while (!stack.empty()) {
    PageId page = stack.back();
    stack.pop_back();
    NodeView node = PeekNode(page);
    const size_t count = node.count();
    mask.assign(count, 1);
    for (size_t j = 0; j < dim_; ++j) {
      simd::IntervalOverlapMask(node.lo(j), node.hi(j), box.lo[j], box.hi[j],
                                mask.data(), count);
    }
    for (size_t e = 0; e < count; ++e) {
      if (!mask[e]) continue;
      if (node.is_leaf()) {
        out.push_back(node.child(e));
      } else {
        stack.push_back(static_cast<PageId>(node.child(e)));
      }
    }
  }
  return out;
}

}  // namespace gir
