#include "index/flat_rtree.h"

#include <cassert>
#include <utility>

#include "common/simd.h"

namespace gir {

Mbb FlatRTree::NodeView::EntryMbb(size_t e) const {
  Mbb box;
  box.lo.resize(dim_);
  box.hi.resize(dim_);
  for (size_t j = 0; j < dim_; ++j) {
    box.lo[j] = lo(j)[e];
    box.hi[j] = hi(j)[e];
  }
  return box;
}

void FlatRTree::NodeView::EntryMbbInto(size_t e, Mbb* out) const {
  out->lo.resize(dim_);
  out->hi.resize(dim_);
  for (size_t j = 0; j < dim_; ++j) {
    out->lo[j] = lo(j)[e];
    out->hi[j] = hi(j)[e];
  }
}

void FlatRTree::NodeView::EntryTopCorner(size_t e, Vec* out) const {
  out->resize(dim_);
  for (size_t j = 0; j < dim_; ++j) (*out)[j] = hi(j)[e];
}

FlatRTree& FlatRTree::operator=(FlatRTree&& other) noexcept {
  dataset_ = other.dataset_;
  disk_ = other.disk_;
  dim_ = other.dim_;
  capacity_ = other.capacity_;
  node_stride_ = other.node_stride_;
  coords_ = std::move(other.coords_);
  children_ = std::move(other.children_);
  arena_ = std::move(other.arena_);
  meta_ = std::move(other.meta_);
  root_ = other.root_;
  record_count_ = other.record_count_;
  // Vector moves transfer the heap buffers, so re-anchoring on our own
  // vectors keeps the owned case valid; the mapped case keeps the
  // source's (mapping-stable) pointers.
  coords_base_ = arena_ != nullptr ? other.coords_base_ : coords_.data();
  children_base_ =
      arena_ != nullptr ? other.children_base_ : children_.data();
  other.coords_base_ = nullptr;
  other.children_base_ = nullptr;
  return *this;
}

FlatRTree FlatRTree::Freeze(const RTree& tree,
                            const Dataset* dataset_override) {
  FlatRTree flat;
  flat.dataset_ = dataset_override != nullptr ? dataset_override
                                              : &tree.dataset();
  flat.disk_ = tree.disk();
  flat.dim_ = tree.dataset().dim();
  flat.capacity_ = tree.Capacity();
  flat.node_stride_ = 2 * flat.dim_ * flat.capacity_;
  flat.root_ = tree.root();
  flat.record_count_ = tree.size();

  const size_t n = tree.node_count();
  flat.coords_.assign(n * flat.node_stride_, 0.0);
  flat.children_.assign(n * flat.capacity_, -1);
  flat.meta_.resize(n);
  for (size_t p = 0; p < n; ++p) {
    const RTreeNode& node = tree.PeekNode(static_cast<PageId>(p));
    assert(node.entries.size() <= flat.capacity_);
    FlatNodeMeta& meta = flat.meta_[p];
    meta.count = static_cast<uint32_t>(node.entries.size());
    meta.level = node.level;
    meta.is_leaf = node.is_leaf;
    meta.mbb = node.ComputeMbb(flat.dim_);
    double* coords = flat.coords_.data() + p * flat.node_stride_;
    int32_t* children = flat.children_.data() + p * flat.capacity_;
    for (size_t e = 0; e < node.entries.size(); ++e) {
      const RTreeEntry& entry = node.entries[e];
      children[e] = entry.child;
      for (size_t j = 0; j < flat.dim_; ++j) {
        coords[j * flat.capacity_ + e] = entry.mbb.lo[j];
        coords[(flat.dim_ + j) * flat.capacity_ + e] = entry.mbb.hi[j];
      }
    }
  }
  flat.coords_base_ = flat.coords_.data();
  flat.children_base_ = flat.children_.data();
  return flat;
}

Result<FlatRTree> FlatRTree::FromArena(
    std::shared_ptr<const ArenaFile> arena, const Dataset* dataset,
    DiskManager* disk) {
  if (arena == nullptr || dataset == nullptr || disk == nullptr) {
    return Status::InvalidArgument("FromArena needs arena, dataset, disk");
  }
  if (dataset->dim() != arena->dim() ||
      dataset->size() != arena->dataset_rows()) {
    return Status::InvalidArgument(
        "dataset shape does not match the arena header");
  }
  FlatRTree flat;
  flat.dataset_ = dataset;
  flat.disk_ = disk;
  flat.dim_ = arena->dim();
  flat.capacity_ = arena->capacity();
  flat.node_stride_ = 2 * flat.dim_ * flat.capacity_;
  flat.root_ = arena->root() < 0 ? kInvalidPage
                                 : static_cast<PageId>(arena->root());
  flat.record_count_ = arena->record_count();
  // Hot arrays: straight into the mapping, zero copy.
  flat.coords_base_ = arena->coords();
  flat.children_base_ = arena->children();
  // Per-node metadata: the POD headers plus the MBB planes are small
  // (O(nodes * dim)), rebuilt on the heap because FlatNodeMeta carries
  // an allocated Mbb. Child ids must stay inside the arena — a valid
  // CRC proves integrity, not semantics, so the structural checks here
  // are what keeps a hostile-but-checksummed file from walking a
  // traversal out of bounds.
  const size_t n = arena->node_count();
  const int64_t node_limit = static_cast<int64_t>(n);
  flat.meta_.resize(n);
  for (size_t p = 0; p < n; ++p) {
    const ArenaNodeMeta& m = arena->node_meta()[p];
    if (m.count > flat.capacity_) {
      return Status::DataLoss("arena node entry count exceeds capacity");
    }
    FlatNodeMeta& meta = flat.meta_[p];
    meta.count = m.count;
    meta.level = m.level;
    meta.is_leaf = m.is_leaf != 0;
    const double* box = arena->node_mbbs() + p * 2 * flat.dim_;
    meta.mbb.lo.assign(box, box + flat.dim_);
    meta.mbb.hi.assign(box + flat.dim_, box + 2 * flat.dim_);
    if (!meta.is_leaf) {
      const int32_t* children = flat.children_base_ + p * flat.capacity_;
      for (uint32_t e = 0; e < m.count; ++e) {
        if (children[e] < 0 || children[e] >= node_limit) {
          return Status::DataLoss("arena child page id out of range");
        }
      }
    }
  }
  flat.arena_ = std::move(arena);
  return flat;
}

size_t FlatRTree::height() const {
  if (root_ == kInvalidPage) return 0;
  return static_cast<size_t>(meta_[root_].level) + 1;
}

std::vector<RecordId> FlatRTree::RangeQuery(const Mbb& box) const {
  std::vector<RecordId> out;
  if (root_ == kInvalidPage) return out;
  std::vector<PageId> stack = {root_};
  // Per-node interval-overlap sweep over the SoA planes: one
  // SIMD-dispatched pass per dimension narrows the survivor mask, so
  // the per-entry branch only runs for boxes that truly overlap.
  std::vector<uint8_t> mask;
  while (!stack.empty()) {
    PageId page = stack.back();
    stack.pop_back();
    NodeView node = PeekNode(page);
    const size_t count = node.count();
    mask.assign(count, 1);
    for (size_t j = 0; j < dim_; ++j) {
      simd::IntervalOverlapMask(node.lo(j), node.hi(j), box.lo[j], box.hi[j],
                                mask.data(), count);
    }
    for (size_t e = 0; e < count; ++e) {
      if (!mask[e]) continue;
      if (node.is_leaf()) {
        out.push_back(node.child(e));
      } else {
        stack.push_back(static_cast<PageId>(node.child(e)));
      }
    }
  }
  return out;
}

}  // namespace gir
