#ifndef GIR_INDEX_FLAT_RTREE_H_
#define GIR_INDEX_FLAT_RTREE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "index/rtree.h"
#include "storage/arena_file.h"

namespace gir {

// Read-only, cache-friendly image of an RTree, produced by Freeze() —
// or mapped straight from an on-disk arena file by FromArena().
//
// The mutable tree stores one heap-allocated std::vector<RTreeEntry> per
// node with AoS Mbb objects, which defeats locality and vectorization on
// the query hot loops (per-entry maxscore bounding, leaf point scoring).
// FlatRTree repacks every node into one contiguous arena with a fixed
// per-node stride; inside a node the entry coordinates are stored as SoA
// planes — for each dimension j, the `lo` values of all entries are
// contiguous, then the `hi` values — so a batched kernel can stream
// `w_j * g_j(hi_j[e])` over whole planes.
//
// Storage is pointer-rebased: the hot arrays (coordinate planes,
// children) are reached through raw base pointers that aim either at
// the image's own heap vectors (Freeze) or directly into a read-only
// mmap of an arena file (FromArena). The mapped variant keeps the
// ArenaFile alive through a shared_ptr, so an epoch swap munmaps the
// old file exactly when the last pinned reader drains. Both variants
// serve bit-identical bytes — the on-disk sections are written from the
// frozen vectors unmodified — so every traversal, score and IoStats
// count is identical across them (property-tested per SIMD tier).
//
// Page ids are preserved 1:1 from the source tree, and ReadNode charges
// exactly one simulated page read like RTree::ReadNode, so any traversal
// that visits the same pages produces bit-identical IoStats. Leaf entry
// planes hold the record coordinates themselves (a leaf MBB is its
// point), which is what makes leaf scoring a pure SoA streaming loop.
// Fixed-size per-node header of the flat arena (an implementation
// detail of FlatRTree, at namespace scope only so NodeView's inline
// accessors can see the complete type).
struct FlatNodeMeta {
  uint32_t count = 0;
  int32_t level = 0;
  bool is_leaf = true;
  Mbb mbb;
};

class FlatRTree {
 public:
  // Lightweight accessor for one node of the arena. Cheap to copy; valid
  // as long as the FlatRTree is alive and unmoved.
  class NodeView {
   public:
    bool is_leaf() const { return meta_->is_leaf; }
    int level() const { return meta_->level; }
    size_t count() const { return meta_->count; }
    // The node's own MBB (union of its entries), captured at freeze.
    const Mbb& mbb() const { return meta_->mbb; }

    const int32_t* children() const { return children_; }
    int32_t child(size_t e) const { return children_[e]; }

    // SoA planes: count() contiguous doubles per dimension.
    const double* lo(size_t j) const { return coords_ + j * cap_; }
    const double* hi(size_t j) const { return coords_ + (dim_ + j) * cap_; }

    // Materializes entry `e` as an Mbb (bitwise equal to the source
    // RTreeEntry::mbb). Used where a traversal retains a box, e.g. in
    // PendingNode; the hot score loops read the planes directly.
    Mbb EntryMbb(size_t e) const;

    // In-place variant: resizes out's corners to the tree
    // dimensionality (a no-op when the Mbb is being recycled) and fills
    // them with entry e's box. The shared-traversal executor drains
    // pending nodes through this so a warmed output vector is refilled
    // without touching the heap.
    void EntryMbbInto(size_t e, Mbb* out) const;

    // Copies entry `e`'s top corner (hi coordinates) into `out`,
    // resizing it to the tree dimensionality.
    void EntryTopCorner(size_t e, Vec* out) const;

   private:
    friend class FlatRTree;
    NodeView(const FlatNodeMeta* meta, const double* coords,
             const int32_t* children, size_t dim, size_t cap)
        : meta_(meta),
          coords_(coords),
          children_(children),
          dim_(dim),
          cap_(cap) {}

    const FlatNodeMeta* meta_;
    const double* coords_;
    const int32_t* children_;
    size_t dim_;
    size_t cap_;
  };

  // An empty image (no nodes, invalid root); assign a Freeze result to
  // make it usable. Lets snapshot holders default-construct in place.
  FlatRTree() = default;

  // The base pointers track the owned vectors, so moves re-anchor them
  // and copies are forbidden (a copy would alias the source's buffers).
  FlatRTree(FlatRTree&& other) noexcept { *this = std::move(other); }
  FlatRTree& operator=(FlatRTree&& other) noexcept;
  FlatRTree(const FlatRTree&) = delete;
  FlatRTree& operator=(const FlatRTree&) = delete;

  // Compacts `tree` into the flat arena. The source tree, its dataset
  // and disk manager must outlive the frozen image; the freeze itself
  // charges no simulated I/O (it repacks pages already written).
  //
  // `dataset_override` (when non-null) is the dataset the image — and
  // every query over it — will read instead of the tree's own: the
  // update subsystem freezes against an immutable per-epoch dataset
  // copy so in-flight readers never observe the master mutating. The
  // override must hold bit-identical coordinates for every record id in
  // the tree.
  static FlatRTree Freeze(const RTree& tree,
                          const Dataset* dataset_override = nullptr);

  // Maps an image straight from a validated arena file: the coordinate
  // planes and children arrays are served from the read-only mapping
  // (no copy; the kernel pages them in on demand), only the small
  // per-node metadata is rebuilt on the heap. `dataset` must be the
  // record image the arena was written with (ArenaFile::BuildDataset)
  // and must outlive the image; the shared_ptr keeps the mapping alive
  // for as long as any reader holds this image. InvalidArgument when
  // the dataset's shape does not match the arena's header.
  static Result<FlatRTree> FromArena(std::shared_ptr<const ArenaFile> arena,
                                     const Dataset* dataset,
                                     DiskManager* disk);

  // Node access, charging one simulated page read (same accounting as
  // RTree::ReadNode). Accounting-only and infallible — used by the
  // Phase-2 continuations, which re-expand pending nodes already
  // resident; the fallible traversals fetch through FetchPage instead.
  NodeView ReadNode(PageId page) const {
    disk_->NoteRead();
    return PeekNode(page);
  }
  // Accounting-free access for tests and validation.
  NodeView PeekNode(PageId page) const {
    const size_t p = page;
    return NodeView(&meta_[p], coords_base_ + p * node_stride_,
                    children_base_ + p * capacity_, dim_, capacity_);
  }

  // Checked fetch of one page: charges the read through the
  // DiskManager's fault-injectable ReadPage path, and — when the image
  // is arena-backed — physically touches the node's mapped bytes so
  // the page-in cost lands inside the charged read. `resident` (may be
  // null) reports whether the mapped page was already resident
  // (prefetch hit signal); always true for heap-backed images.
  Status FetchPage(PageId page, bool* resident = nullptr) const {
    Status read = disk_->ReadPage(page);
    if (arena_ != nullptr) {
      const bool was = arena_->TouchNode(page);
      if (resident != nullptr) *resident = was;
      if (read.ok()) disk_->NotePrefetchTouch(was);
    } else if (resident != nullptr) {
      *resident = true;
    }
    return read;
  }

  // True when the image serves its arrays from an mmap'd arena file.
  bool arena_backed() const { return arena_ != nullptr; }
  const std::shared_ptr<const ArenaFile>& arena() const { return arena_; }

  // Asks the kernel to read ahead `n` nodes' mapped ranges
  // (madvise(MADV_WILLNEED)) and accounts the issue; no-op on
  // heap-backed images. The shared-traversal executor calls this with
  // the union page set of the upcoming lockstep round.
  void PrefetchPages(const PageId* pages, size_t n) const {
    if (arena_ == nullptr || n == 0) return;
    arena_->PrefetchNodes(pages, n);
    disk_->NotePrefetchIssued(n);
  }

  PageId root() const { return root_; }
  size_t height() const;  // number of levels (1 = root is a leaf)
  size_t size() const { return record_count_; }
  size_t node_count() const { return meta_.size(); }
  size_t Capacity() const { return capacity_; }

  // All record ids whose point intersects `box` (accounting-free; used
  // by tests to cross-check against the mutable tree).
  std::vector<RecordId> RangeQuery(const Mbb& box) const;

  const Dataset& dataset() const { return *dataset_; }
  DiskManager* disk() const { return disk_; }

 private:
  const Dataset* dataset_ = nullptr;
  DiskManager* disk_ = nullptr;
  size_t dim_ = 0;
  size_t capacity_ = 0;
  size_t node_stride_ = 0;  // doubles per node behind coords_base_
  // Owned storage (Freeze). Empty when arena-backed.
  std::vector<double> coords_;
  std::vector<int32_t> children_;
  // Hot-array bases: the owned vectors' data, or spans of the mapping.
  const double* coords_base_ = nullptr;
  const int32_t* children_base_ = nullptr;
  // Mapping keepalive (FromArena only).
  std::shared_ptr<const ArenaFile> arena_;
  std::vector<FlatNodeMeta> meta_;
  PageId root_ = kInvalidPage;
  size_t record_count_ = 0;
};

}  // namespace gir

#endif  // GIR_INDEX_FLAT_RTREE_H_
