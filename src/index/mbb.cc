#include "index/mbb.h"

#include <algorithm>
#include <cassert>

#include "common/simd.h"

namespace gir {

Mbb Mbb::EmptyBox(size_t dim) {
  Mbb box;
  box.lo.assign(dim, 1e300);
  box.hi.assign(dim, -1e300);
  return box;
}

Mbb Mbb::OfPoint(VecView p) {
  Mbb box;
  box.lo.assign(p.begin(), p.end());
  box.hi.assign(p.begin(), p.end());
  return box;
}

bool Mbb::IsEmpty() const {
  for (size_t j = 0; j < dim(); ++j) {
    if (lo[j] > hi[j]) return true;
  }
  return false;
}

void Mbb::ExpandTo(VecView p) {
  assert(p.size() == dim());
  for (size_t j = 0; j < dim(); ++j) {
    lo[j] = std::min(lo[j], p[j]);
    hi[j] = std::max(hi[j], p[j]);
  }
}

void Mbb::ExpandTo(const Mbb& other) {
  for (size_t j = 0; j < dim(); ++j) {
    lo[j] = std::min(lo[j], other.lo[j]);
    hi[j] = std::max(hi[j], other.hi[j]);
  }
}

double Mbb::Area() const {
  double a = 1.0;
  for (size_t j = 0; j < dim(); ++j) a *= std::max(0.0, hi[j] - lo[j]);
  return a;
}

double Mbb::Margin() const {
  double m = 0.0;
  for (size_t j = 0; j < dim(); ++j) m += std::max(0.0, hi[j] - lo[j]);
  return m;
}

double Mbb::OverlapArea(const Mbb& other) const {
  double a = 1.0;
  for (size_t j = 0; j < dim(); ++j) {
    double w = std::min(hi[j], other.hi[j]) - std::max(lo[j], other.lo[j]);
    if (w <= 0.0) return 0.0;
    a *= w;
  }
  return a;
}

double Mbb::Enlargement(const Mbb& other) const {
  double enlarged = 1.0;
  for (size_t j = 0; j < dim(); ++j) {
    enlarged *= std::max(hi[j], other.hi[j]) - std::min(lo[j], other.lo[j]);
  }
  return enlarged - Area();
}

bool Mbb::ContainsPoint(VecView p) const {
  for (size_t j = 0; j < dim(); ++j) {
    if (p[j] < lo[j] || p[j] > hi[j]) return false;
  }
  return true;
}

bool Mbb::ContainsMbb(const Mbb& other) const {
  for (size_t j = 0; j < dim(); ++j) {
    if (other.lo[j] < lo[j] || other.hi[j] > hi[j]) return false;
  }
  return true;
}

bool Mbb::Intersects(const Mbb& other) const {
  for (size_t j = 0; j < dim(); ++j) {
    if (other.hi[j] < lo[j] || other.lo[j] > hi[j]) return false;
  }
  return true;
}

Vec Mbb::Center() const {
  Vec c(dim());
  for (size_t j = 0; j < dim(); ++j) c[j] = 0.5 * (lo[j] + hi[j]);
  return c;
}

double Mbb::MaxDot(VecView w) const {
  double s = 0.0;
  for (size_t j = 0; j < dim(); ++j) {
    s += std::max(w[j] * lo[j], w[j] * hi[j]);
  }
  return s;
}

double Mbb::CenterDistanceSquared(const Mbb& other) const {
  double s = 0.0;
  for (size_t j = 0; j < dim(); ++j) {
    double dc = 0.5 * (lo[j] + hi[j]) - 0.5 * (other.lo[j] + other.hi[j]);
    s += dc * dc;
  }
  return s;
}

void AccumulateMaxDotPlane(double w, const double* lo, const double* hi,
                           double* acc, size_t n) {
  simd::MaxDotPlane(w, lo, hi, acc, n);
}

void AccumulateMinDotPlane(double w, const double* lo, const double* hi,
                           double* acc, size_t n) {
  simd::MinDotPlane(w, lo, hi, acc, n);
}

}  // namespace gir
