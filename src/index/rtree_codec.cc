#include "index/rtree_codec.h"

#include <cstring>

namespace gir {

namespace {

// Little-endian scalar writers/readers over a byte cursor. The library
// targets little-endian hosts (asserted by the magic round-trip in the
// image header); memcpy keeps the accesses alignment-safe.
template <typename T>
void Put(std::vector<uint8_t>& buf, size_t& pos, T value) {
  std::memcpy(buf.data() + pos, &value, sizeof(T));
  pos += sizeof(T);
}

template <typename T>
bool Get(const std::vector<uint8_t>& buf, size_t& pos, T* value) {
  if (pos + sizeof(T) > buf.size()) return false;
  std::memcpy(value, buf.data() + pos, sizeof(T));
  pos += sizeof(T);
  return true;
}

size_t NodeHeaderBytes() { return 8; }
size_t EntryBytes(size_t dim) { return sizeof(int32_t) + 2 * dim * 8; }

}  // namespace

Result<std::vector<uint8_t>> EncodeNode(const RTreeNode& node, size_t dim,
                                        size_t page_size) {
  const size_t need =
      NodeHeaderBytes() + node.entries.size() * EntryBytes(dim);
  if (need > page_size) {
    return Status::OutOfRange("node exceeds page budget");
  }
  std::vector<uint8_t> page(page_size, 0);
  size_t pos = 0;
  Put<uint8_t>(page, pos, node.is_leaf ? 1 : 0);
  Put<uint8_t>(page, pos, 0);
  Put<uint16_t>(page, pos, static_cast<uint16_t>(node.level));
  Put<uint32_t>(page, pos, static_cast<uint32_t>(node.entries.size()));
  for (const RTreeEntry& e : node.entries) {
    Put<int32_t>(page, pos, e.child);
    for (size_t j = 0; j < dim; ++j) Put<double>(page, pos, e.mbb.lo[j]);
    for (size_t j = 0; j < dim; ++j) Put<double>(page, pos, e.mbb.hi[j]);
  }
  return page;
}

Result<RTreeNode> DecodeNode(const std::vector<uint8_t>& page, size_t dim) {
  size_t pos = 0;
  uint8_t is_leaf = 0;
  uint8_t pad = 0;
  uint16_t level = 0;
  uint32_t count = 0;
  if (!Get(page, pos, &is_leaf) || !Get(page, pos, &pad) ||
      !Get(page, pos, &level) || !Get(page, pos, &count)) {
    return Status::InvalidArgument("truncated node header");
  }
  if (NodeHeaderBytes() + count * EntryBytes(dim) > page.size()) {
    return Status::InvalidArgument("entry count overruns page");
  }
  RTreeNode node;
  node.is_leaf = is_leaf != 0;
  node.level = level;
  node.entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    RTreeEntry e;
    if (!Get(page, pos, &e.child)) {
      return Status::InvalidArgument("truncated entry");
    }
    e.mbb.lo.resize(dim);
    e.mbb.hi.resize(dim);
    for (size_t j = 0; j < dim; ++j) Get(page, pos, &e.mbb.lo[j]);
    for (size_t j = 0; j < dim; ++j) Get(page, pos, &e.mbb.hi[j]);
    node.entries.push_back(std::move(e));
  }
  return node;
}

Result<std::vector<uint8_t>> SaveRTreeImage(const RTree& tree) {
  const size_t dim = tree.dataset().dim();
  const size_t page_size = tree.disk()->page_size_bytes();
  std::vector<uint8_t> image(4 * 6 + 8, 0);
  size_t pos = 0;
  Put<uint32_t>(image, pos, kRtreeImageMagic);
  Put<uint32_t>(image, pos, kRtreeImageVersion);
  Put<uint32_t>(image, pos, static_cast<uint32_t>(dim));
  Put<uint32_t>(image, pos, static_cast<uint32_t>(page_size));
  Put<uint32_t>(image, pos, tree.root());
  Put<uint32_t>(image, pos, static_cast<uint32_t>(tree.node_count()));
  Put<uint64_t>(image, pos, tree.size());
  for (size_t n = 0; n < tree.node_count(); ++n) {
    Result<std::vector<uint8_t>> page =
        EncodeNode(tree.PeekNode(static_cast<PageId>(n)), dim, page_size);
    if (!page.ok()) return page.status();
    image.insert(image.end(), page->begin(), page->end());
  }
  return image;
}

Result<RTree> LoadRTreeImage(const Dataset* dataset, DiskManager* disk,
                             const std::vector<uint8_t>& image) {
  size_t pos = 0;
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t dim = 0;
  uint32_t page_size = 0;
  uint32_t root = 0;
  uint32_t node_count = 0;
  uint64_t record_count = 0;
  if (!Get(image, pos, &magic) || magic != kRtreeImageMagic) {
    return Status::InvalidArgument("bad image magic");
  }
  if (!Get(image, pos, &version) || version != kRtreeImageVersion) {
    return Status::InvalidArgument("unsupported image version");
  }
  if (!Get(image, pos, &dim) || dim != dataset->dim()) {
    return Status::InvalidArgument("image dimensionality mismatch");
  }
  if (!Get(image, pos, &page_size) ||
      page_size != disk->page_size_bytes()) {
    return Status::InvalidArgument("image page size mismatch");
  }
  if (!Get(image, pos, &root) || !Get(image, pos, &node_count) ||
      !Get(image, pos, &record_count)) {
    return Status::InvalidArgument("truncated image header");
  }
  if (pos + static_cast<size_t>(node_count) * page_size > image.size()) {
    return Status::InvalidArgument("image shorter than node count claims");
  }
  std::vector<RTreeNode> nodes;
  nodes.reserve(node_count);
  std::vector<uint8_t> page(page_size);
  for (uint32_t n = 0; n < node_count; ++n) {
    std::memcpy(page.data(), image.data() + pos, page_size);
    pos += page_size;
    Result<RTreeNode> node = DecodeNode(page, dim);
    if (!node.ok()) return node.status();
    nodes.push_back(std::move(node).value());
  }
  // A drained tree (every record deleted) legitimately has no root
  // while its freed pages are still serialized.
  if (root == kInvalidPage) {
    if (record_count != 0) {
      return Status::InvalidArgument("rootless image with records");
    }
  } else if (root >= node_count) {
    return Status::InvalidArgument("root page out of range");
  }
  return RTree::FromParts(dataset, disk, std::move(nodes),
                          node_count == 0 ? kInvalidPage : root,
                          record_count);
}

}  // namespace gir
