#ifndef GIR_COMMON_FLAGS_H_
#define GIR_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace gir {

// Minimal command-line flag parser for the benchmark and example
// binaries. Supports `--name=value`, `--name value`, and boolean
// `--name` / `--no-name`. Unknown flags are an error so typos in sweep
// scripts fail loudly.
class FlagSet {
 public:
  void AddInt(const std::string& name, int64_t* target,
              const std::string& help);
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);
  void AddBool(const std::string& name, bool* target, const std::string& help);

  // Parses argv (skipping argv[0]). On `--help`, prints usage and returns
  // a NotFound status the caller can treat as "exit 0".
  Status Parse(int argc, char** argv);

  std::string Usage(const std::string& program) const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Flag {
    Kind kind;
    void* target;
    std::string help;
  };

  Status Assign(const std::string& name, const std::string& value);

  std::map<std::string, Flag> flags_;
};

}  // namespace gir

#endif  // GIR_COMMON_FLAGS_H_
