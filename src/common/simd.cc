#include "common/simd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

// x86 vector paths: SSE2 is part of the x86-64 baseline, AVX2 bodies
// are compiled with a function-level target attribute so this
// translation unit builds (and the binary runs) without -march flags.
// Everything else falls back to the scalar loops.
#if defined(__x86_64__) || defined(_M_X64)
#define GIR_SIMD_X86 1
#include <immintrin.h>
#else
#define GIR_SIMD_X86 0
#endif

#if GIR_SIMD_X86 && (defined(__GNUC__) || defined(__clang__))
#define GIR_SIMD_HAVE_AVX2_TARGET 1
#define GIR_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define GIR_SIMD_HAVE_AVX2_TARGET 0
#define GIR_TARGET_AVX2
#endif

namespace gir {
namespace simd {

namespace {

Tier Detect() {
#if GIR_SIMD_X86 && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
  return Tier::kSse2;  // baseline for x86-64
#elif GIR_SIMD_X86
  return Tier::kSse2;
#else
  return Tier::kScalar;
#endif
}

Tier ClampToDetected(Tier t) {
  return static_cast<int>(t) <= static_cast<int>(DetectedTier())
             ? t
             : DetectedTier();
}

Tier TierFromEnv() {
  const char* env = std::getenv("GIR_SIMD");
  if (env == nullptr || std::strcmp(env, "auto") == 0 ||
      std::strcmp(env, "") == 0) {
    return DetectedTier();
  }
  if (std::strcmp(env, "scalar") == 0) return Tier::kScalar;
  if (std::strcmp(env, "sse2") == 0) return ClampToDetected(Tier::kSse2);
  if (std::strcmp(env, "avx2") == 0) return ClampToDetected(Tier::kAvx2);
  return DetectedTier();  // unknown value: ignore
}

std::atomic<int>& ActiveTierStorage() {
  static std::atomic<int> tier{static_cast<int>(TierFromEnv())};
  return tier;
}

}  // namespace

Tier DetectedTier() {
  static const Tier detected = Detect();
  return detected;
}

Tier ActiveTier() {
  return static_cast<Tier>(
      ActiveTierStorage().load(std::memory_order_relaxed));
}

Tier ForceTier(Tier t) {
  Tier effective = ClampToDetected(t);
  ActiveTierStorage().store(static_cast<int>(effective),
                            std::memory_order_relaxed);
  return effective;
}

const char* TierName(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse2:
      return "sse2";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

// ----- Axpy -----

namespace {

void AxpyScalar(double w, const double* x, double* acc, size_t n) {
  for (size_t i = 0; i < n; ++i) acc[i] += w * x[i];
}

#if GIR_SIMD_X86
void AxpySse2(double w, const double* x, double* acc, size_t n) {
  const __m128d vw = _mm_set1_pd(w);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128d a0 = _mm_loadu_pd(acc + i);
    __m128d a1 = _mm_loadu_pd(acc + i + 2);
    __m128d a2 = _mm_loadu_pd(acc + i + 4);
    __m128d a3 = _mm_loadu_pd(acc + i + 6);
    a0 = _mm_add_pd(a0, _mm_mul_pd(vw, _mm_loadu_pd(x + i)));
    a1 = _mm_add_pd(a1, _mm_mul_pd(vw, _mm_loadu_pd(x + i + 2)));
    a2 = _mm_add_pd(a2, _mm_mul_pd(vw, _mm_loadu_pd(x + i + 4)));
    a3 = _mm_add_pd(a3, _mm_mul_pd(vw, _mm_loadu_pd(x + i + 6)));
    _mm_storeu_pd(acc + i, a0);
    _mm_storeu_pd(acc + i + 2, a1);
    _mm_storeu_pd(acc + i + 4, a2);
    _mm_storeu_pd(acc + i + 6, a3);
  }
  for (; i + 2 <= n; i += 2) {
    __m128d a = _mm_loadu_pd(acc + i);
    a = _mm_add_pd(a, _mm_mul_pd(vw, _mm_loadu_pd(x + i)));
    _mm_storeu_pd(acc + i, a);
  }
  for (; i < n; ++i) acc[i] += w * x[i];
}
#endif

#if GIR_SIMD_HAVE_AVX2_TARGET
GIR_TARGET_AVX2 void AxpyAvx2(double w, const double* x, double* acc,
                              size_t n) {
  const __m256d vw = _mm256_set1_pd(w);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256d a0 = _mm256_loadu_pd(acc + i);
    __m256d a1 = _mm256_loadu_pd(acc + i + 4);
    __m256d a2 = _mm256_loadu_pd(acc + i + 8);
    __m256d a3 = _mm256_loadu_pd(acc + i + 12);
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(vw, _mm256_loadu_pd(x + i)));
    a1 = _mm256_add_pd(a1, _mm256_mul_pd(vw, _mm256_loadu_pd(x + i + 4)));
    a2 = _mm256_add_pd(a2, _mm256_mul_pd(vw, _mm256_loadu_pd(x + i + 8)));
    a3 = _mm256_add_pd(a3, _mm256_mul_pd(vw, _mm256_loadu_pd(x + i + 12)));
    _mm256_storeu_pd(acc + i, a0);
    _mm256_storeu_pd(acc + i + 4, a1);
    _mm256_storeu_pd(acc + i + 8, a2);
    _mm256_storeu_pd(acc + i + 12, a3);
  }
  for (; i + 4 <= n; i += 4) {
    __m256d a = _mm256_loadu_pd(acc + i);
    a = _mm256_add_pd(a, _mm256_mul_pd(vw, _mm256_loadu_pd(x + i)));
    _mm256_storeu_pd(acc + i, a);
  }
  for (; i < n; ++i) acc[i] += w * x[i];
}
#endif

}  // namespace

void Axpy(double w, const double* x, double* acc, size_t n) {
  switch (ActiveTier()) {
#if GIR_SIMD_HAVE_AVX2_TARGET
    case Tier::kAvx2:
      AxpyAvx2(w, x, acc, n);
      return;
#endif
#if GIR_SIMD_X86
    case Tier::kSse2:
      AxpySse2(w, x, acc, n);
      return;
#endif
    default:
      AxpyScalar(w, x, acc, n);
      return;
  }
}

// ----- Square -----

namespace {

void SquareScalar(const double* x, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = x[i] * x[i];
}

#if GIR_SIMD_X86
void SquareSse2(const double* x, double* out, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d v = _mm_loadu_pd(x + i);
    _mm_storeu_pd(out + i, _mm_mul_pd(v, v));
  }
  for (; i < n; ++i) out[i] = x[i] * x[i];
}
#endif

#if GIR_SIMD_HAVE_AVX2_TARGET
GIR_TARGET_AVX2 void SquareAvx2(const double* x, double* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d v = _mm256_loadu_pd(x + i);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(v, v));
  }
  for (; i < n; ++i) out[i] = x[i] * x[i];
}
#endif

}  // namespace

void Square(const double* x, double* out, size_t n) {
  switch (ActiveTier()) {
#if GIR_SIMD_HAVE_AVX2_TARGET
    case Tier::kAvx2:
      SquareAvx2(x, out, n);
      return;
#endif
#if GIR_SIMD_X86
    case Tier::kSse2:
      SquareSse2(x, out, n);
      return;
#endif
    default:
      SquareScalar(x, out, n);
      return;
  }
}

// ----- Sqrt -----

namespace {

void SqrtScalar(const double* x, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = std::sqrt(x[i]);
}

#if GIR_SIMD_X86
void SqrtSse2(const double* x, double* out, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i, _mm_sqrt_pd(_mm_loadu_pd(x + i)));
  }
  for (; i < n; ++i) out[i] = std::sqrt(x[i]);
}
#endif

#if GIR_SIMD_HAVE_AVX2_TARGET
GIR_TARGET_AVX2 void SqrtAvx2(const double* x, double* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_sqrt_pd(_mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) out[i] = std::sqrt(x[i]);
}
#endif

}  // namespace

void Sqrt(const double* x, double* out, size_t n) {
  switch (ActiveTier()) {
#if GIR_SIMD_HAVE_AVX2_TARGET
    case Tier::kAvx2:
      SqrtAvx2(x, out, n);
      return;
#endif
#if GIR_SIMD_X86
    case Tier::kSse2:
      SqrtSse2(x, out, n);
      return;
#endif
    default:
      SqrtScalar(x, out, n);
      return;
  }
}

// ----- PowIter -----

namespace {

void PowIterScalar(const double* x, int e, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    double r = x[i];
    for (int t = 1; t < e; ++t) r *= x[i];
    out[i] = r;
  }
}

#if GIR_SIMD_X86
void PowIterSse2(const double* x, int e, double* out, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d v = _mm_loadu_pd(x + i);
    __m128d r = v;
    for (int t = 1; t < e; ++t) r = _mm_mul_pd(r, v);
    _mm_storeu_pd(out + i, r);
  }
  for (; i < n; ++i) {
    double r = x[i];
    for (int t = 1; t < e; ++t) r *= x[i];
    out[i] = r;
  }
}
#endif

#if GIR_SIMD_HAVE_AVX2_TARGET
GIR_TARGET_AVX2 void PowIterAvx2(const double* x, int e, double* out,
                                 size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d v = _mm256_loadu_pd(x + i);
    __m256d r = v;
    for (int t = 1; t < e; ++t) r = _mm256_mul_pd(r, v);
    _mm256_storeu_pd(out + i, r);
  }
  for (; i < n; ++i) {
    double r = x[i];
    for (int t = 1; t < e; ++t) r *= x[i];
    out[i] = r;
  }
}
#endif

}  // namespace

void PowIter(const double* x, int e, double* out, size_t n) {
  switch (ActiveTier()) {
#if GIR_SIMD_HAVE_AVX2_TARGET
    case Tier::kAvx2:
      PowIterAvx2(x, e, out, n);
      return;
#endif
#if GIR_SIMD_X86
    case Tier::kSse2:
      PowIterSse2(x, e, out, n);
      return;
#endif
    default:
      PowIterScalar(x, e, out, n);
      return;
  }
}

// ----- MaxDotPlane / MinDotPlane -----

namespace {

void MaxDotPlaneScalar(double w, const double* lo, const double* hi,
                       double* acc, size_t n) {
  for (size_t i = 0; i < n; ++i) acc[i] += std::max(w * lo[i], w * hi[i]);
}

void MinDotPlaneScalar(double w, const double* lo, const double* hi,
                       double* acc, size_t n) {
  for (size_t i = 0; i < n; ++i) acc[i] += std::min(w * lo[i], w * hi[i]);
}

#if GIR_SIMD_X86
void MaxDotPlaneSse2(double w, const double* lo, const double* hi, double* acc,
                     size_t n) {
  const __m128d vw = _mm_set1_pd(w);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d a = _mm_mul_pd(vw, _mm_loadu_pd(lo + i));
    __m128d b = _mm_mul_pd(vw, _mm_loadu_pd(hi + i));
    __m128d acc_v = _mm_loadu_pd(acc + i);
    _mm_storeu_pd(acc + i, _mm_add_pd(acc_v, _mm_max_pd(a, b)));
  }
  for (; i < n; ++i) acc[i] += std::max(w * lo[i], w * hi[i]);
}

void MinDotPlaneSse2(double w, const double* lo, const double* hi, double* acc,
                     size_t n) {
  const __m128d vw = _mm_set1_pd(w);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d a = _mm_mul_pd(vw, _mm_loadu_pd(lo + i));
    __m128d b = _mm_mul_pd(vw, _mm_loadu_pd(hi + i));
    __m128d acc_v = _mm_loadu_pd(acc + i);
    _mm_storeu_pd(acc + i, _mm_add_pd(acc_v, _mm_min_pd(a, b)));
  }
  for (; i < n; ++i) acc[i] += std::min(w * lo[i], w * hi[i]);
}
#endif

#if GIR_SIMD_HAVE_AVX2_TARGET
GIR_TARGET_AVX2 void MaxDotPlaneAvx2(double w, const double* lo,
                                     const double* hi, double* acc, size_t n) {
  const __m256d vw = _mm256_set1_pd(w);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d a = _mm256_mul_pd(vw, _mm256_loadu_pd(lo + i));
    __m256d b = _mm256_mul_pd(vw, _mm256_loadu_pd(hi + i));
    __m256d acc_v = _mm256_loadu_pd(acc + i);
    _mm256_storeu_pd(acc + i, _mm256_add_pd(acc_v, _mm256_max_pd(a, b)));
  }
  for (; i < n; ++i) acc[i] += std::max(w * lo[i], w * hi[i]);
}

GIR_TARGET_AVX2 void MinDotPlaneAvx2(double w, const double* lo,
                                     const double* hi, double* acc, size_t n) {
  const __m256d vw = _mm256_set1_pd(w);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d a = _mm256_mul_pd(vw, _mm256_loadu_pd(lo + i));
    __m256d b = _mm256_mul_pd(vw, _mm256_loadu_pd(hi + i));
    __m256d acc_v = _mm256_loadu_pd(acc + i);
    _mm256_storeu_pd(acc + i, _mm256_add_pd(acc_v, _mm256_min_pd(a, b)));
  }
  for (; i < n; ++i) acc[i] += std::min(w * lo[i], w * hi[i]);
}
#endif

}  // namespace

void MaxDotPlane(double w, const double* lo, const double* hi, double* acc,
                 size_t n) {
  switch (ActiveTier()) {
#if GIR_SIMD_HAVE_AVX2_TARGET
    case Tier::kAvx2:
      MaxDotPlaneAvx2(w, lo, hi, acc, n);
      return;
#endif
#if GIR_SIMD_X86
    case Tier::kSse2:
      MaxDotPlaneSse2(w, lo, hi, acc, n);
      return;
#endif
    default:
      MaxDotPlaneScalar(w, lo, hi, acc, n);
      return;
  }
}

void MinDotPlane(double w, const double* lo, const double* hi, double* acc,
                 size_t n) {
  switch (ActiveTier()) {
#if GIR_SIMD_HAVE_AVX2_TARGET
    case Tier::kAvx2:
      MinDotPlaneAvx2(w, lo, hi, acc, n);
      return;
#endif
#if GIR_SIMD_X86
    case Tier::kSse2:
      MinDotPlaneSse2(w, lo, hi, acc, n);
      return;
#endif
    default:
      MinDotPlaneScalar(w, lo, hi, acc, n);
      return;
  }
}

// ----- MaxDotPlaneMulti -----

namespace {

void MaxDotPlaneMultiScalar(const double* w, size_t m, const double* hi,
                            double* acc, size_t stride, size_t n) {
  for (size_t r = 0; r < m; ++r) {
    const double wr = w[r];
    double* row = acc + r * stride;
    for (size_t i = 0; i < n; ++i) row[i] += wr * hi[i];
  }
}

#if GIR_SIMD_X86
void MaxDotPlaneMultiSse2(const double* w, size_t m, const double* hi,
                          double* acc, size_t stride, size_t n) {
  size_t r = 0;
  // Row pairs share every plane load.
  for (; r + 2 <= m; r += 2) {
    const __m128d w0 = _mm_set1_pd(w[r]);
    const __m128d w1 = _mm_set1_pd(w[r + 1]);
    double* row0 = acc + r * stride;
    double* row1 = row0 + stride;
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const __m128d x = _mm_loadu_pd(hi + i);
      _mm_storeu_pd(row0 + i, _mm_add_pd(_mm_loadu_pd(row0 + i),
                                         _mm_mul_pd(w0, x)));
      _mm_storeu_pd(row1 + i, _mm_add_pd(_mm_loadu_pd(row1 + i),
                                         _mm_mul_pd(w1, x)));
    }
    for (; i < n; ++i) {
      row0[i] += w[r] * hi[i];
      row1[i] += w[r + 1] * hi[i];
    }
  }
  for (; r < m; ++r) AxpySse2(w[r], hi, acc + r * stride, n);
}
#endif

#if GIR_SIMD_HAVE_AVX2_TARGET
GIR_TARGET_AVX2 void MaxDotPlaneMultiAvx2(const double* w, size_t m,
                                          const double* hi, double* acc,
                                          size_t stride, size_t n) {
  size_t r = 0;
  for (; r + 2 <= m; r += 2) {
    const __m256d w0 = _mm256_set1_pd(w[r]);
    const __m256d w1 = _mm256_set1_pd(w[r + 1]);
    double* row0 = acc + r * stride;
    double* row1 = row0 + stride;
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256d x = _mm256_loadu_pd(hi + i);
      _mm256_storeu_pd(row0 + i, _mm256_add_pd(_mm256_loadu_pd(row0 + i),
                                               _mm256_mul_pd(w0, x)));
      _mm256_storeu_pd(row1 + i, _mm256_add_pd(_mm256_loadu_pd(row1 + i),
                                               _mm256_mul_pd(w1, x)));
    }
    for (; i < n; ++i) {
      row0[i] += w[r] * hi[i];
      row1[i] += w[r + 1] * hi[i];
    }
  }
  for (; r < m; ++r) AxpyAvx2(w[r], hi, acc + r * stride, n);
}
#endif

}  // namespace

void MaxDotPlaneMulti(const double* w, size_t m, const double* hi, double* acc,
                      size_t stride, size_t n) {
  switch (ActiveTier()) {
#if GIR_SIMD_HAVE_AVX2_TARGET
    case Tier::kAvx2:
      MaxDotPlaneMultiAvx2(w, m, hi, acc, stride, n);
      return;
#endif
#if GIR_SIMD_X86
    case Tier::kSse2:
      MaxDotPlaneMultiSse2(w, m, hi, acc, stride, n);
      return;
#endif
    default:
      MaxDotPlaneMultiScalar(w, m, hi, acc, stride, n);
      return;
  }
}

// ----- IntervalOverlapMask -----

namespace {

void OverlapScalar(const double* lo, const double* hi, double qlo, double qhi,
                   uint8_t* mask, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    mask[i] &= static_cast<uint8_t>(hi[i] >= qlo && lo[i] <= qhi);
  }
}

#if GIR_SIMD_X86
void OverlapSse2(const double* lo, const double* hi, double qlo, double qhi,
                 uint8_t* mask, size_t n) {
  const __m128d vlo = _mm_set1_pd(qlo);
  const __m128d vhi = _mm_set1_pd(qhi);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d ge = _mm_cmpge_pd(_mm_loadu_pd(hi + i), vlo);
    __m128d le = _mm_cmple_pd(_mm_loadu_pd(lo + i), vhi);
    int bits = _mm_movemask_pd(_mm_and_pd(ge, le));
    mask[i] &= static_cast<uint8_t>(bits & 1);
    mask[i + 1] &= static_cast<uint8_t>((bits >> 1) & 1);
  }
  for (; i < n; ++i) {
    mask[i] &= static_cast<uint8_t>(hi[i] >= qlo && lo[i] <= qhi);
  }
}
#endif

#if GIR_SIMD_HAVE_AVX2_TARGET
GIR_TARGET_AVX2 void OverlapAvx2(const double* lo, const double* hi,
                                 double qlo, double qhi, uint8_t* mask,
                                 size_t n) {
  const __m256d vlo = _mm256_set1_pd(qlo);
  const __m256d vhi = _mm256_set1_pd(qhi);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d ge = _mm256_cmp_pd(_mm256_loadu_pd(hi + i), vlo, _CMP_GE_OQ);
    __m256d le = _mm256_cmp_pd(_mm256_loadu_pd(lo + i), vhi, _CMP_LE_OQ);
    int bits = _mm256_movemask_pd(_mm256_and_pd(ge, le));
    mask[i] &= static_cast<uint8_t>(bits & 1);
    mask[i + 1] &= static_cast<uint8_t>((bits >> 1) & 1);
    mask[i + 2] &= static_cast<uint8_t>((bits >> 2) & 1);
    mask[i + 3] &= static_cast<uint8_t>((bits >> 3) & 1);
  }
  for (; i < n; ++i) {
    mask[i] &= static_cast<uint8_t>(hi[i] >= qlo && lo[i] <= qhi);
  }
}
#endif

}  // namespace

void IntervalOverlapMask(const double* lo, const double* hi, double qlo,
                         double qhi, uint8_t* mask, size_t n) {
  switch (ActiveTier()) {
#if GIR_SIMD_HAVE_AVX2_TARGET
    case Tier::kAvx2:
      OverlapAvx2(lo, hi, qlo, qhi, mask, n);
      return;
#endif
#if GIR_SIMD_X86
    case Tier::kSse2:
      OverlapSse2(lo, hi, qlo, qhi, mask, n);
      return;
#endif
    default:
      OverlapScalar(lo, hi, qlo, qhi, mask, n);
      return;
  }
}

// ----- dominance -----

namespace {

bool DominatesScalar(const double* p, const double* q, size_t dim) {
  bool all_ge = true;
  bool any_gt = false;
  for (size_t j = 0; j < dim; ++j) {
    all_ge &= p[j] >= q[j];
    any_gt |= p[j] > q[j];
  }
  return all_ge && any_gt;
}

#if GIR_SIMD_X86
// Vectorized across dimensions: accumulate a "every dim >= " mask and
// an "any dim >" mask over 2-wide chunks, scalar tail. Comparisons are
// exact, so the verdict matches the scalar predicate on every input.
bool DominatesSse2(const double* p, const double* q, size_t dim) {
  size_t j = 0;
  int ge_bits = 3;
  int gt_bits = 0;
  for (; j + 2 <= dim; j += 2) {
    __m128d vp = _mm_loadu_pd(p + j);
    __m128d vq = _mm_loadu_pd(q + j);
    ge_bits &= _mm_movemask_pd(_mm_cmpge_pd(vp, vq));
    gt_bits |= _mm_movemask_pd(_mm_cmpgt_pd(vp, vq));
  }
  bool all_ge = ge_bits == 3;
  bool any_gt = gt_bits != 0;
  for (; j < dim; ++j) {
    all_ge &= p[j] >= q[j];
    any_gt |= p[j] > q[j];
  }
  return all_ge && any_gt;
}
#endif

#if GIR_SIMD_HAVE_AVX2_TARGET
GIR_TARGET_AVX2 bool DominatesAvx2(const double* p, const double* q,
                                   size_t dim) {
  size_t j = 0;
  int ge_bits = 0xF;
  int gt_bits = 0;
  for (; j + 4 <= dim; j += 4) {
    __m256d vp = _mm256_loadu_pd(p + j);
    __m256d vq = _mm256_loadu_pd(q + j);
    ge_bits &= _mm256_movemask_pd(_mm256_cmp_pd(vp, vq, _CMP_GE_OQ));
    gt_bits |= _mm256_movemask_pd(_mm256_cmp_pd(vp, vq, _CMP_GT_OQ));
  }
  bool all_ge = ge_bits == 0xF;
  bool any_gt = gt_bits != 0;
  for (; j < dim; ++j) {
    all_ge &= p[j] >= q[j];
    any_gt |= p[j] > q[j];
  }
  return all_ge && any_gt;
}

GIR_TARGET_AVX2 size_t FindDominatorAvx2(const double* rows, size_t count,
                                         const double* p, size_t dim) {
  for (size_t m = 0; m < count; ++m) {
    if (DominatesAvx2(rows + m * dim, p, dim)) return m;
  }
  return count;
}
#endif

size_t FindDominatorScalar(const double* rows, size_t count, const double* p,
                           size_t dim) {
  for (size_t m = 0; m < count; ++m) {
    if (DominatesScalar(rows + m * dim, p, dim)) return m;
  }
  return count;
}

#if GIR_SIMD_X86
size_t FindDominatorSse2(const double* rows, size_t count, const double* p,
                         size_t dim) {
  for (size_t m = 0; m < count; ++m) {
    if (DominatesSse2(rows + m * dim, p, dim)) return m;
  }
  return count;
}
#endif

}  // namespace

bool DominatesRow(const double* p, const double* q, size_t dim) {
  switch (ActiveTier()) {
#if GIR_SIMD_HAVE_AVX2_TARGET
    case Tier::kAvx2:
      return DominatesAvx2(p, q, dim);
#endif
#if GIR_SIMD_X86
    case Tier::kSse2:
      return DominatesSse2(p, q, dim);
#endif
    default:
      return DominatesScalar(p, q, dim);
  }
}

size_t FindDominatorInRows(const double* rows, size_t count, const double* p,
                           size_t dim) {
  switch (ActiveTier()) {
#if GIR_SIMD_HAVE_AVX2_TARGET
    case Tier::kAvx2:
      return FindDominatorAvx2(rows, count, p, dim);
#endif
#if GIR_SIMD_X86
    case Tier::kSse2:
      return FindDominatorSse2(rows, count, p, dim);
#endif
    default:
      return FindDominatorScalar(rows, count, p, dim);
  }
}

}  // namespace simd
}  // namespace gir
