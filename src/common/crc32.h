#ifndef GIR_COMMON_CRC32_H_
#define GIR_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace gir {

// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant): the snapshot
// store stamps every file section with it so torn writes and bit rot
// are detected at recovery instead of silently deserialized. Chainable:
// pass a previous return value as `seed` to checksum split buffers as
// one stream. Crc32(data, n) == Crc32 of the same bytes in any split.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace gir

#endif  // GIR_COMMON_CRC32_H_
