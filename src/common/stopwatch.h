#ifndef GIR_COMMON_STOPWATCH_H_
#define GIR_COMMON_STOPWATCH_H_

#include <chrono>

namespace gir {

// Wall-clock stopwatch used to report CPU-side costs in the benchmark
// harness (the simulated-disk layer accounts I/O separately).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gir

#endif  // GIR_COMMON_STOPWATCH_H_
