#include "common/flags.h"

#include <cstdio>
#include <cstdlib>

namespace gir {

void FlagSet::AddInt(const std::string& name, int64_t* target,
                     const std::string& help) {
  flags_[name] = Flag{Kind::kInt, target, help};
}

void FlagSet::AddDouble(const std::string& name, double* target,
                        const std::string& help) {
  flags_[name] = Flag{Kind::kDouble, target, help};
}

void FlagSet::AddString(const std::string& name, std::string* target,
                        const std::string& help) {
  flags_[name] = Flag{Kind::kString, target, help};
}

void FlagSet::AddBool(const std::string& name, bool* target,
                      const std::string& help) {
  flags_[name] = Flag{Kind::kBool, target, help};
}

Status FlagSet::Assign(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  char* end = nullptr;
  switch (it->second.kind) {
    case Kind::kInt: {
      int64_t v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad int for --" + name + ": " + value);
      }
      *static_cast<int64_t*>(it->second.target) = v;
      break;
    }
    case Kind::kDouble: {
      double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad double for --" + name + ": " +
                                       value);
      }
      *static_cast<double*>(it->second.target) = v;
      break;
    }
    case Kind::kString:
      *static_cast<std::string*>(it->second.target) = value;
      break;
    case Kind::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(it->second.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(it->second.target) = false;
      } else {
        return Status::InvalidArgument("bad bool for --" + name + ": " +
                                       value);
      }
      break;
    }
  }
  return Status::Ok();
}

Status FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "%s", Usage(argv[0]).c_str());
      return Status::NotFound("help requested");
    }
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("positional arguments unsupported: " +
                                     arg);
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.kind == Kind::kBool) {
        value = "true";
      } else if (name.rfind("no-", 0) == 0 &&
                 flags_.count(name.substr(3)) > 0) {
        name = name.substr(3);
        value = "false";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("missing value for --" + name);
      }
    }
    Status s = Assign(name, value);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

std::string FlagSet::Usage(const std::string& program) const {
  std::string out = "Usage: " + program + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name;
    switch (flag.kind) {
      case Kind::kInt:
        out += "=<int>";
        break;
      case Kind::kDouble:
        out += "=<float>";
        break;
      case Kind::kString:
        out += "=<string>";
        break;
      case Kind::kBool:
        out += "[=<bool>]";
        break;
    }
    out += "  " + flag.help + "\n";
  }
  return out;
}

}  // namespace gir
