#ifndef GIR_COMMON_SIMD_H_
#define GIR_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace gir {
namespace simd {

// Runtime-dispatched SIMD kernels for the SoA hot loops (entry scoring,
// dimension transforms, dominance scans, plane sweeps). The widest
// instruction set the CPU supports is detected once at startup, so the
// vector paths run in *default* Release builds — no -march=native
// required — while the same binary stays runnable on baseline-ISA
// machines via the scalar fallback.
//
// Bit-identity contract: every kernel is element-wise (each output lane
// depends on exactly one input lane) and uses only operations that are
// identical across tiers — IEEE +, *, max, correctly-rounded sqrt, and
// exact comparisons. Vectorizing across lanes therefore reproduces the
// scalar loop bit for bit, which is what lets the PR 2 flat-vs-mutable
// equivalence property tests extend unchanged across dispatch tiers
// (tests force each tier via ForceTier and assert bitwise equality).
//
// Dispatch override: the GIR_SIMD environment variable ("scalar",
// "sse2", "avx2", "auto"; read once at startup) or ForceTier() pin the
// tier, clamped to what the CPU supports.

enum class Tier : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

// Widest tier the running CPU supports (constant per process).
Tier DetectedTier();

// Tier the kernels currently dispatch to: DetectedTier() clamped by the
// GIR_SIMD environment variable and any ForceTier() override.
Tier ActiveTier();

// Pins dispatch to `t` (clamped to DetectedTier(); requesting AVX2 on
// an SSE2-only machine yields SSE2). Returns the tier actually in
// effect. Intended for the bit-identity tests and tier-vs-tier
// microbenchmarks; thread-safe but not meant to race hot loops.
Tier ForceTier(Tier t);

// "scalar" / "sse2" / "avx2".
const char* TierName(Tier t);

// ----- element-wise kernels (bit-identical across tiers) -----

// acc[i] += w * x[i]. The fused accumulation step of every batched
// score kernel: one call per dimension plane preserves the scalar
// reference's per-dimension accumulation order.
void Axpy(double w, const double* x, double* acc, size_t n);

// out[i] = x[i] * x[i].
void Square(const double* x, double* out, size_t n);

// out[i] = sqrt(x[i]) (IEEE correctly rounded — identical to
// std::sqrt on every tier).
void Sqrt(const double* x, double* out, size_t n);

// out[i] = x[i]^e by left-to-right repeated multiplication
// (r = x; r *= x, e-1 times). The scalar reference for the Polynomial
// scoring transform uses the same iteration, so all tiers agree
// bitwise. Requires e >= 1.
void PowIter(const double* x, int e, double* out, size_t n);

// acc[i] += max(w * lo[i], w * hi[i]): one dimension plane of the
// batched Mbb::MaxDot sweep (general-sign weights).
void MaxDotPlane(double w, const double* lo, const double* hi, double* acc,
                 size_t n);

// acc[i] += min(w * lo[i], w * hi[i]): minimum-score counterpart.
void MinDotPlane(double w, const double* lo, const double* hi, double* acc,
                 size_t n);

// Multi-weight maxscore plane: for every row r < m,
//     acc[r * stride + i] += w[r] * hi[i],   i < n.
// One dimension plane of the shared-traversal batch scorer: under the
// monotone-transform, non-negative-weight scoring contract the hi plane
// alone carries a box's maximum (MaxDotPlane's max(w*lo, w*hi) collapses
// to w*hi), so the multi-weight kernel streams just that plane against a
// whole query group's weights. The plane is loaded once per row pair
// instead of once per query, which is where the cross-query win comes
// from. Each output row is bit-identical to Axpy(w[r], hi, row, n).
void MaxDotPlaneMulti(const double* w, size_t m, const double* hi,
                      double* acc, size_t stride, size_t n);

// mask[i] &= (hi[i] >= qlo) & (lo[i] <= qhi): one dimension plane of
// the SoA interval-overlap sweep (FlatRTree::RangeQuery). mask bytes
// are 0 or 1.
void IntervalOverlapMask(const double* lo, const double* hi, double qlo,
                         double qhi, uint8_t* mask, size_t n);

// ----- dominance kernels (exact comparisons; identical verdicts) -----

// True when p dominates q ("larger is better": p >= q in every
// dimension, p > q in at least one). Same predicate as
// skyline/dominance.h's Dominates(), vectorized across dimensions.
bool DominatesRow(const double* p, const double* q, size_t dim);

// Index of the first row of `rows` (row-major, `dim` doubles per row)
// that dominates `p`, or `count` when none does. First-match semantics
// preserved on every tier.
size_t FindDominatorInRows(const double* rows, size_t count, const double* p,
                           size_t dim);

}  // namespace simd
}  // namespace gir

#endif  // GIR_COMMON_SIMD_H_
