#include "common/crc32.h"

#include <cstring>

namespace gir {

namespace {

// Slicing-by-8 tables for the reflected IEEE polynomial 0xEDB88320,
// built once on first use (thread-safe since C++11 magic statics).
// t[0] is the classic byte-at-a-time table; t[k][b] extends it by k
// zero bytes, which lets the hot loop fold 8 input bytes per step —
// the arena open path checksums whole mmap'd files, so the bytewise
// loop was the cold-restart bottleneck, not the mapping itself.
struct Crc32Tables {
  uint32_t t[8][256];
};

const Crc32Tables& Tables() {
  static const auto tables = [] {
    Crc32Tables out;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      out.t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = out.t[0][i];
      for (int k = 1; k < 8; ++k) {
        c = out.t[0][c & 0xFFu] ^ (c >> 8);
        out.t[k][i] = c;
      }
    }
    return out;
  }();
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const Crc32Tables& tb = Tables();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  // 8 bytes per step; the two word loads are little-endian, matching
  // the reflected polynomial's bit order on every supported target.
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, sizeof(lo));
    std::memcpy(&hi, p + 4, sizeof(hi));
    lo ^= c;
    c = tb.t[7][lo & 0xFFu] ^ tb.t[6][(lo >> 8) & 0xFFu] ^
        tb.t[5][(lo >> 16) & 0xFFu] ^ tb.t[4][lo >> 24] ^
        tb.t[3][hi & 0xFFu] ^ tb.t[2][(hi >> 8) & 0xFFu] ^
        tb.t[1][(hi >> 16) & 0xFFu] ^ tb.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = tb.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace gir
