#include "common/crc32.h"

namespace gir {

namespace {

// 256-entry table for the reflected IEEE polynomial 0xEDB88320, built
// once on first use (thread-safe since C++11 magic statics).
const uint32_t* Crc32Table() {
  static const auto table = [] {
    struct Table {
      uint32_t t[256];
    } out;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      out.t[i] = c;
    }
    return out;
  }();
  return table.t;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace gir
