#ifndef GIR_COMMON_RESULT_H_
#define GIR_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace gir {

// Result<T> carries either a value or a non-OK Status, mirroring
// absl::StatusOr. Accessing value() on an error aborts in debug builds;
// callers must check ok() first.
template <typename T>
class Result {
 public:
  // Intentionally implicit, so `return Status::...` and `return value;`
  // both work at call sites (same convention as absl::StatusOr).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK Result must carry a value");
  }
  Result(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace gir

#endif  // GIR_COMMON_RESULT_H_
