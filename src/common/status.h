#ifndef GIR_COMMON_STATUS_H_
#define GIR_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace gir {

// Error-code taxonomy for the library. The project does not use
// exceptions; fallible operations return Status (or Result<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  kResourceExhausted,
  // Transient storage/service failure (e.g. an injected or real page
  // read error, a shut-down admission queue). Retryable: callers with
  // budget left should back off and retry; callers without must
  // surface it as the request's terminal state, never drop silently.
  kUnavailable,
  // Durable data is unreadable or failed its checksum (torn snapshot,
  // bit rot). Not retryable against the same bytes; recovery must fall
  // back to an older valid epoch.
  kDataLoss,
};

// A Status holds a code and, for non-OK codes, a human-readable message.
// Modeled on the RocksDB / Abseil idiom: cheap to copy when OK, explicit
// at every call site that can fail.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, std::string(msg));
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, std::string(msg));
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, std::string(msg));
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, std::string(msg));
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, std::string(msg));
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(StatusCode::kUnimplemented, std::string(msg));
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(StatusCode::kResourceExhausted, std::string(msg));
  }
  static Status Unavailable(std::string_view msg) {
    return Status(StatusCode::kUnavailable, std::string(msg));
  }
  static Status DataLoss(std::string_view msg) {
    return Status(StatusCode::kDataLoss, std::string(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>" for logs and test failure output.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Returns a short upper-case name for a status code ("INVALID_ARGUMENT").
std::string_view StatusCodeName(StatusCode code);

}  // namespace gir

#endif  // GIR_COMMON_STATUS_H_
