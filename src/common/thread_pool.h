#ifndef GIR_COMMON_THREAD_POOL_H_
#define GIR_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace gir {

// Fixed-size worker pool over a single shared FIFO queue (deliberately
// work-stealing-free: batch queries are coarse enough that one mutex-
// protected queue never becomes the bottleneck, and FIFO order keeps
// latency fair across a batch). Workers are spawned once in the
// constructor; the destructor drains the queue and joins. The owner
// must externally serialize Submit with destruction — submitting
// concurrently with (or after) teardown is undefined behavior.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  // Enqueues a task for execution on some worker thread.
  void Submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  // Enqueues a callable and returns a future for its result.
  template <typename F>
  auto Async(F&& f) -> std::future<decltype(f())> {
    using R = decltype(f());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> out = task->get_future();
    Submit([task] { (*task)(); });
    return out;
  }

  // Runs body(i) for every i in [0, n), spread across the pool, and
  // blocks until all iterations finish. Iterations are claimed from a
  // shared atomic counter, so a slow iteration never strands work behind
  // it. If any iteration throws, the remaining claimed iterations still
  // run, and the first exception is rethrown here on the calling thread
  // (it must not escape into a worker: an uncaught exception on a
  // std::thread terminates the process). The body must not call
  // ParallelFor on the same pool (the workers would deadlock waiting on
  // themselves).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body) {
    if (n == 0) return;
    struct SharedState {
      std::atomic<size_t> next{0};
      std::atomic<size_t> done{0};
      std::promise<void> all_done;
      std::mutex error_mu;
      std::exception_ptr error;
    };
    auto state = std::make_shared<SharedState>();
    std::future<void> finished = state->all_done.get_future();
    const size_t spawned = std::min(n, size());
    for (size_t t = 0; t < spawned; ++t) {
      Submit([state, n, &body] {
        for (size_t i = state->next.fetch_add(1); i < n;
             i = state->next.fetch_add(1)) {
          try {
            body(i);
          } catch (...) {
            std::lock_guard<std::mutex> lock(state->error_mu);
            if (!state->error) state->error = std::current_exception();
          }
          if (state->done.fetch_add(1) + 1 == n) {
            state->all_done.set_value();
          }
        }
      });
    }
    finished.wait();
    if (state->error) std::rethrow_exception(state->error);
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace gir

#endif  // GIR_COMMON_THREAD_POOL_H_
