#ifndef GIR_COMMON_RNG_H_
#define GIR_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace gir {

// Deterministic random source used across generators, joggling, and
// Monte-Carlo estimation. All randomness in the library flows through
// explicitly-seeded Rng instances so experiments are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : engine_(seed) {}

  // Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) {
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  // Standard normal deviate scaled to N(mean, stddev^2).
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace gir

#endif  // GIR_COMMON_RNG_H_
