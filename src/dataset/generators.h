#ifndef GIR_DATASET_GENERATORS_H_
#define GIR_DATASET_GENERATORS_H_

#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "dataset/dataset.h"

namespace gir {

// The three standard synthetic benchmarks for preference queries
// (Börzsönyi et al., "The Skyline Operator", ICDE 2001), as used in the
// paper's Section 8.

// IND: every attribute uniform and independent in [0,1].
Dataset GenerateIndependent(size_t n, size_t dim, Rng& rng);

// COR: records with a large value in one dimension tend to have large
// values in the others (points concentrated around the main diagonal).
Dataset GenerateCorrelated(size_t n, size_t dim, Rng& rng);

// ANTI: records with a large value in one dimension tend to have small
// values in the rest (points concentrated around a hyperplane
// perpendicular to the diagonal) — the worst case for skyline size.
Dataset GenerateAnticorrelated(size_t n, size_t dim, Rng& rng);

// Dispatch by dataset name: "IND", "COR", "ANTI".
Result<Dataset> GenerateByName(const std::string& name, size_t n, size_t dim,
                               Rng& rng);

}  // namespace gir

#endif  // GIR_DATASET_GENERATORS_H_
