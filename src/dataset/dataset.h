#ifndef GIR_DATASET_DATASET_H_
#define GIR_DATASET_DATASET_H_

#include <cstdint>
#include <vector>

#include "geom/vec.h"

namespace gir {

using RecordId = int32_t;

// Flat column-major-free record store: n records of d doubles each,
// normalized to [0,1]^d. Records are addressed by dense RecordId; the
// memory layout is one contiguous row-major array so record views are
// zero-copy spans.
class Dataset {
 public:
  explicit Dataset(size_t dim) : dim_(dim) {}

  static Dataset FromRows(const std::vector<Vec>& rows);

  size_t dim() const { return dim_; }
  size_t size() const { return dim_ == 0 ? 0 : flat_.size() / dim_; }

  void Append(VecView record);
  void Reserve(size_t n) { flat_.reserve(n * dim_); }

  VecView Get(RecordId id) const {
    return VecView(flat_.data() + static_cast<size_t>(id) * dim_, dim_);
  }
  Vec GetVec(RecordId id) const {
    VecView v = Get(id);
    return Vec(v.begin(), v.end());
  }

  // Min-max normalizes every dimension to [0,1] in place (used by the
  // real-data simulators whose raw attributes have arbitrary scales).
  void NormalizeToUnitCube();

 private:
  size_t dim_;
  std::vector<double> flat_;
};

}  // namespace gir

#endif  // GIR_DATASET_DATASET_H_
