#ifndef GIR_DATASET_DATASET_H_
#define GIR_DATASET_DATASET_H_

#include <cstdint>
#include <vector>

#include "geom/vec.h"

namespace gir {

using RecordId = int32_t;

// Record store with two coordinated layouts: the primary row-major
// array (n records of d doubles, normalized to [0,1]^d; record views
// are zero-copy spans) plus a lazily built column-major mirror so the
// hot kernels — dominance tests, linear scoring sweeps — can stream one
// dimension across many records from contiguous memory.
//
// Deletion is by tombstone: MarkDeleted keeps the record's slot (and
// coordinates) so every RecordId stays stable across an update stream —
// cached GIR results, provenance records and the R-tree all key records
// by id. size() counts slots including tombstones; live_size() counts
// the records an index should serve. The column mirror never needs a
// rebuild on deletion because coordinates are untouched.
class Dataset {
 public:
  explicit Dataset(size_t dim) : dim_(dim) {}

  static Dataset FromRows(const std::vector<Vec>& rows);

  size_t dim() const { return dim_; }
  size_t size() const { return dim_ == 0 ? 0 : flat_.size() / dim_; }
  size_t live_size() const { return size() - dead_count_; }

  void Append(VecView record);
  // Append that hands back the id of the new record (== size() - 1).
  RecordId AppendRecord(VecView record);
  // Bulk append of `n` packed row-major records in one insert — the
  // arena open path materializes whole dataset images, where a
  // per-record loop is measurable against the mmap'd restart budget.
  void AppendRows(const double* rows, size_t n);
  void Reserve(size_t n) { flat_.reserve(n * dim_); }

  // Tombstones a live record; id keeps resolving via Get (the slot is
  // not reused). No-op on an already-dead id.
  void MarkDeleted(RecordId id);
  bool IsLive(RecordId id) const {
    return dead_.empty() ? true : dead_[static_cast<size_t>(id)] == 0;
  }

  VecView Get(RecordId id) const {
    return VecView(flat_.data() + static_cast<size_t>(id) * dim_, dim_);
  }
  Vec GetVec(RecordId id) const {
    VecView v = Get(id);
    return Vec(v.begin(), v.end());
  }

  // Dimension `j` of every record as one contiguous array of size()
  // doubles. The mirror is rebuilt on first access after a mutation;
  // the rebuild is synchronized, so concurrent readers are safe (like
  // all reads, it must not race with Append/NormalizeToUnitCube).
  const double* Column(size_t j) const;
  VecView ColumnView(size_t j) const { return VecView(Column(j), size()); }

  // Min-max normalizes every dimension to [0,1] in place (used by the
  // real-data simulators whose raw attributes have arbitrary scales).
  void NormalizeToUnitCube();

 private:
  size_t dim_;
  std::vector<double> flat_;
  // Tombstone flags, allocated lazily on the first MarkDeleted (empty
  // means every record is live); kept in lockstep with flat_ by Append.
  std::vector<uint8_t> dead_;
  size_t dead_count_ = 0;
  // Column-major mirror: columns_[j * n + i] == flat_[i * d + j].
  mutable std::vector<double> columns_;
  mutable bool columns_fresh_ = false;
};

}  // namespace gir

#endif  // GIR_DATASET_DATASET_H_
