#ifndef GIR_DATASET_DATASET_H_
#define GIR_DATASET_DATASET_H_

#include <cstdint>
#include <vector>

#include "geom/vec.h"

namespace gir {

using RecordId = int32_t;

// Record store with two coordinated layouts: the primary row-major
// array (n records of d doubles, normalized to [0,1]^d; record views
// are zero-copy spans) plus a lazily built column-major mirror so the
// hot kernels — dominance tests, linear scoring sweeps — can stream one
// dimension across many records from contiguous memory.
class Dataset {
 public:
  explicit Dataset(size_t dim) : dim_(dim) {}

  static Dataset FromRows(const std::vector<Vec>& rows);

  size_t dim() const { return dim_; }
  size_t size() const { return dim_ == 0 ? 0 : flat_.size() / dim_; }

  void Append(VecView record);
  void Reserve(size_t n) { flat_.reserve(n * dim_); }

  VecView Get(RecordId id) const {
    return VecView(flat_.data() + static_cast<size_t>(id) * dim_, dim_);
  }
  Vec GetVec(RecordId id) const {
    VecView v = Get(id);
    return Vec(v.begin(), v.end());
  }

  // Dimension `j` of every record as one contiguous array of size()
  // doubles. The mirror is rebuilt on first access after a mutation;
  // the rebuild is synchronized, so concurrent readers are safe (like
  // all reads, it must not race with Append/NormalizeToUnitCube).
  const double* Column(size_t j) const;
  VecView ColumnView(size_t j) const { return VecView(Column(j), size()); }

  // Min-max normalizes every dimension to [0,1] in place (used by the
  // real-data simulators whose raw attributes have arbitrary scales).
  void NormalizeToUnitCube();

 private:
  size_t dim_;
  std::vector<double> flat_;
  // Column-major mirror: columns_[j * n + i] == flat_[i * d + j].
  mutable std::vector<double> columns_;
  mutable bool columns_fresh_ = false;
};

}  // namespace gir

#endif  // GIR_DATASET_DATASET_H_
