#include "dataset/dataset.h"

#include <algorithm>
#include <cassert>

namespace gir {

Dataset Dataset::FromRows(const std::vector<Vec>& rows) {
  assert(!rows.empty());
  Dataset d(rows[0].size());
  d.Reserve(rows.size());
  for (const Vec& r : rows) d.Append(r);
  return d;
}

void Dataset::Append(VecView record) {
  assert(record.size() == dim_);
  flat_.insert(flat_.end(), record.begin(), record.end());
}

void Dataset::NormalizeToUnitCube() {
  const size_t n = size();
  if (n == 0) return;
  for (size_t j = 0; j < dim_; ++j) {
    double lo = 1e300;
    double hi = -1e300;
    for (size_t i = 0; i < n; ++i) {
      double x = flat_[i * dim_ + j];
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    double range = hi - lo;
    if (range <= 0.0) range = 1.0;
    for (size_t i = 0; i < n; ++i) {
      double& x = flat_[i * dim_ + j];
      x = (x - lo) / range;
    }
  }
}

}  // namespace gir
