#include "dataset/dataset.h"

#include <algorithm>
#include <cassert>
#include <mutex>

namespace gir {

Dataset Dataset::FromRows(const std::vector<Vec>& rows) {
  assert(!rows.empty());
  Dataset d(rows[0].size());
  d.Reserve(rows.size());
  for (const Vec& r : rows) d.Append(r);
  return d;
}

void Dataset::Append(VecView record) {
  assert(record.size() == dim_);
  flat_.insert(flat_.end(), record.begin(), record.end());
  if (!dead_.empty()) dead_.push_back(0);
  columns_fresh_ = false;
}

RecordId Dataset::AppendRecord(VecView record) {
  Append(record);
  return static_cast<RecordId>(size() - 1);
}

void Dataset::AppendRows(const double* rows, size_t n) {
  flat_.insert(flat_.end(), rows, rows + n * dim_);
  if (!dead_.empty()) dead_.resize(dead_.size() + n, 0);
  columns_fresh_ = false;
}

void Dataset::MarkDeleted(RecordId id) {
  assert(id >= 0 && static_cast<size_t>(id) < size());
  if (dead_.empty()) dead_.assign(size(), 0);
  uint8_t& flag = dead_[static_cast<size_t>(id)];
  if (flag != 0) return;
  flag = 1;
  ++dead_count_;
}

const double* Dataset::Column(size_t j) const {
  assert(j < dim_);
  // One global mutex keeps the lazy rebuild safe under concurrent
  // readers (it runs once per dataset, so contention is negligible; a
  // member mutex would cost Dataset its move semantics). Mutating the
  // dataset concurrently with reads is out of contract, as for rows.
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  if (!columns_fresh_) {
    const size_t n = size();
    columns_.resize(n * dim_);
    for (size_t i = 0; i < n; ++i) {
      for (size_t c = 0; c < dim_; ++c) {
        columns_[c * n + i] = flat_[i * dim_ + c];
      }
    }
    columns_fresh_ = true;
  }
  return columns_.data() + j * size();
}

void Dataset::NormalizeToUnitCube() {
  const size_t n = size();
  if (n == 0) return;
  for (size_t j = 0; j < dim_; ++j) {
    double lo = 1e300;
    double hi = -1e300;
    for (size_t i = 0; i < n; ++i) {
      double x = flat_[i * dim_ + j];
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    double range = hi - lo;
    if (range <= 0.0) range = 1.0;
    for (size_t i = 0; i < n; ++i) {
      double& x = flat_[i * dim_ + j];
      x = (x - lo) / range;
    }
  }
  columns_fresh_ = false;
}

}  // namespace gir
