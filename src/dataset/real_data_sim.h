#ifndef GIR_DATASET_REAL_DATA_SIM_H_
#define GIR_DATASET_REAL_DATA_SIM_H_

#include "common/rng.h"
#include "dataset/dataset.h"

namespace gir {

// Synthetic stand-ins for the paper's two real datasets, which are not
// redistributable (see DESIGN.md §5 for the substitution rationale).
//
// HOUSE (ipums.org): 315,265 records x 6 attributes — an American
// family's expenditure in gas, electricity, water, heating, insurance
// and property tax. Modeled as a latent-wealth mixture: each attribute
// scales with a shared heavy-tailed wealth factor (mild positive
// correlation) modulated by per-attribute elasticity and noise, then
// min-max normalized to [0,1].
Dataset MakeHouseLike(Rng& rng, size_t n = 315265);

// HOTEL (hotelsbase.org): 418,843 records x 4 attributes — stars,
// price, number of rooms, number of facilities. Stars are discrete
// (five levels), price/facilities correlate positively with stars,
// rooms are heavy-tailed and nearly independent, and a price-vs-value
// tension injects a mildly anti-correlated pair.
Dataset MakeHotelLike(Rng& rng, size_t n = 418843);

}  // namespace gir

#endif  // GIR_DATASET_REAL_DATA_SIM_H_
