#ifndef GIR_DATASET_CSV_H_
#define GIR_DATASET_CSV_H_

#include <string>

#include "common/result.h"
#include "dataset/dataset.h"

namespace gir {

struct CsvOptions {
  char delimiter = ',';
  // Skip the first line when it does not parse as numbers.
  bool auto_header = true;
  // Min-max normalize every column into [0,1] after loading (the
  // library's algorithms assume the unit cube).
  bool normalize = true;
};

// Loads a numeric CSV file into a Dataset. Every row must have the same
// number of columns; blank lines are skipped. Fails with
// InvalidArgument — naming the offending line and column — on ragged
// rows, non-numeric cells (after the optional header) and non-finite
// coordinates (NaN/Inf parse as numbers but are rejected: they would
// poison every score and dominance test downstream), and NotFound when
// the file cannot be opened.
Result<Dataset> LoadCsvDataset(const std::string& path,
                               const CsvOptions& options = {});

// Writes a dataset as CSV (no header). Returns NotFound when the file
// cannot be created.
Status WriteCsvDataset(const Dataset& data, const std::string& path,
                       char delimiter = ',');

}  // namespace gir

#endif  // GIR_DATASET_CSV_H_
