#include "dataset/generators.h"

#include <algorithm>
#include <cmath>

namespace gir {

namespace {

bool InUnitCube(const Vec& p) {
  for (double x : p) {
    if (x < 0.0 || x > 1.0) return false;
  }
  return true;
}

}  // namespace

Dataset GenerateIndependent(size_t n, size_t dim, Rng& rng) {
  Dataset data(dim);
  data.Reserve(n);
  Vec p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dim; ++j) p[j] = rng.Uniform();
    data.Append(p);
  }
  return data;
}

Dataset GenerateCorrelated(size_t n, size_t dim, Rng& rng) {
  // A record is a point near the main diagonal: pick the diagonal
  // position uniformly, then add small independent jitter per dimension
  // (rejection-sampled into the cube). The jitter is wide enough that
  // top scores are clearly separated (tighter clustering produces
  // near-tie results whose GIRs are unrealistically thin).
  constexpr double kJitter = 0.12;
  Dataset data(dim);
  data.Reserve(n);
  Vec p(dim);
  for (size_t i = 0; i < n; ++i) {
    while (true) {
      double c = rng.Uniform();
      for (size_t j = 0; j < dim; ++j) {
        p[j] = c + rng.Gaussian(0.0, kJitter);
      }
      if (InUnitCube(p)) break;
    }
    data.Append(p);
  }
  return data;
}

Dataset GenerateAnticorrelated(size_t n, size_t dim, Rng& rng) {
  // A record lies close to the hyperplane sum(x_j) = dim * c for a
  // plane position c tightly concentrated around 0.5: large values in
  // one dimension force small values elsewhere.
  constexpr double kPlaneSigma = 0.05;
  Dataset data(dim);
  data.Reserve(n);
  Vec p(dim);
  for (size_t i = 0; i < n; ++i) {
    while (true) {
      double c = rng.Gaussian(0.5, kPlaneSigma);
      // Uniform deviations with zero mean spread mass along the plane.
      double mean = 0.0;
      for (size_t j = 0; j < dim; ++j) {
        p[j] = rng.Uniform();
        mean += p[j];
      }
      mean /= static_cast<double>(dim);
      for (size_t j = 0; j < dim; ++j) {
        p[j] = c + (p[j] - mean);
      }
      if (InUnitCube(p)) break;
    }
    data.Append(p);
  }
  return data;
}

Result<Dataset> GenerateByName(const std::string& name, size_t n, size_t dim,
                               Rng& rng) {
  if (name == "IND") return GenerateIndependent(n, dim, rng);
  if (name == "COR") return GenerateCorrelated(n, dim, rng);
  if (name == "ANTI") return GenerateAnticorrelated(n, dim, rng);
  return Status::InvalidArgument("unknown dataset name: " + name);
}

}  // namespace gir
