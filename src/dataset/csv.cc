#include "dataset/csv.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace gir {

namespace {

// Splits a CSV line; no quoting support (the datasets this library
// targets are plain numeric tables).
std::vector<std::string> SplitLine(const std::string& line, char delim) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, delim)) cells.push_back(cell);
  if (!line.empty() && line.back() == delim) cells.push_back("");
  return cells;
}

enum class CellError { kNone, kNonNumeric, kNonFinite };

// Parses every cell as a double. On failure *bad_col holds the
// offending 1-based column. Non-finite values (strtod accepts "nan"
// and "inf" spellings) are a distinct error: they parse as numbers but
// would poison every dominance test and score downstream, so ingestion
// is where they must stop.
CellError ParseRow(const std::vector<std::string>& cells, Vec* row,
                   size_t* bad_col) {
  row->clear();
  row->reserve(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    const std::string& c = cells[i];
    char* end = nullptr;
    const double v = std::strtod(c.c_str(), &end);
    if (end == c.c_str()) {
      *bad_col = i + 1;
      return CellError::kNonNumeric;
    }
    while (*end == ' ' || *end == '\r' || *end == '\t') ++end;
    if (*end != '\0') {
      *bad_col = i + 1;
      return CellError::kNonNumeric;
    }
    if (!std::isfinite(v)) {
      *bad_col = i + 1;
      return CellError::kNonFinite;
    }
    row->push_back(v);
  }
  if (row->empty()) {
    *bad_col = 1;
    return CellError::kNonNumeric;
  }
  return CellError::kNone;
}

}  // namespace

Result<Dataset> LoadCsvDataset(const std::string& path,
                               const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::string line;
  size_t dim = 0;
  size_t line_no = 0;
  std::vector<Vec> rows;
  Vec row;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    std::vector<std::string> cells = SplitLine(line, options.delimiter);
    size_t bad_col = 0;
    const CellError err = ParseRow(cells, &row, &bad_col);
    if (err == CellError::kNonNumeric) {
      if (line_no == 1 && options.auto_header) continue;  // header line
      return Status::InvalidArgument(
          "non-numeric cell at line " + std::to_string(line_no) +
          ", column " + std::to_string(bad_col));
    }
    if (err == CellError::kNonFinite) {
      // Never header-skipped: a NaN/Inf parsed as a number, so this is
      // a data row with a poisoned coordinate, not a column title.
      return Status::InvalidArgument(
          "non-finite value at line " + std::to_string(line_no) +
          ", column " + std::to_string(bad_col) +
          " (coordinates must be finite)");
    }
    if (dim == 0) {
      dim = row.size();
    } else if (row.size() != dim) {
      return Status::InvalidArgument(
          "ragged row at line " + std::to_string(line_no) + ": got " +
          std::to_string(row.size()) + " columns, expected " +
          std::to_string(dim));
    }
    rows.push_back(row);
  }
  if (rows.empty()) return Status::InvalidArgument("no data rows in " + path);
  Dataset data(dim);
  data.Reserve(rows.size());
  for (const Vec& r : rows) data.Append(r);
  if (options.normalize) data.NormalizeToUnitCube();
  return data;
}

Status WriteCsvDataset(const Dataset& data, const std::string& path,
                       char delimiter) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot create " + path);
  for (size_t i = 0; i < data.size(); ++i) {
    VecView r = data.Get(static_cast<RecordId>(i));
    for (size_t j = 0; j < r.size(); ++j) {
      if (j > 0) out << delimiter;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.10g", r[j]);
      out << buf;
    }
    out << "\n";
  }
  return out ? Status::Ok() : Status::Internal("write failed");
}

}  // namespace gir
