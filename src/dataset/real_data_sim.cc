#include "dataset/real_data_sim.h"

#include <algorithm>
#include <cmath>

namespace gir {

Dataset MakeHouseLike(Rng& rng, size_t n) {
  const size_t kDim = 6;
  // Per-attribute elasticity w.r.t. the latent wealth factor, loosely:
  // gas, electricity, water, heating, insurance, property tax.
  const double kElasticity[6] = {0.35, 0.45, 0.30, 0.40, 0.75, 0.90};
  const double kNoise[6] = {0.45, 0.35, 0.50, 0.45, 0.30, 0.25};
  Dataset data(kDim);
  data.Reserve(n);
  Vec p(kDim);
  for (size_t i = 0; i < n; ++i) {
    // Heavy-tailed wealth: lognormal.
    double wealth = std::exp(rng.Gaussian(0.0, 0.6));
    for (size_t j = 0; j < kDim; ++j) {
      double base = std::pow(wealth, kElasticity[j]);
      double noise = std::exp(rng.Gaussian(0.0, kNoise[j]));
      p[j] = base * noise;
    }
    // A small fraction of households report zero for a utility (e.g.
    // no gas heating), producing the attribute-value spikes real
    // expenditure data shows.
    if (rng.Uniform() < 0.04) p[rng.UniformInt(kDim)] = 0.0;
    data.Append(p);
  }
  // Compress the heavy tail like the paper's min-max normalization of
  // skewed expenditures: log1p before normalizing keeps interior
  // structure visible.
  Dataset out(kDim);
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    VecView row = data.Get(static_cast<RecordId>(i));
    Vec t(kDim);
    for (size_t j = 0; j < kDim; ++j) t[j] = std::log1p(row[j]);
    out.Append(t);
  }
  out.NormalizeToUnitCube();
  return out;
}

Dataset MakeHotelLike(Rng& rng, size_t n) {
  const size_t kDim = 4;
  Dataset data(kDim);
  data.Reserve(n);
  // Star-level marginal roughly matching large hotel aggregators:
  // 1*..5* shares.
  const double kStarCdf[5] = {0.08, 0.30, 0.68, 0.92, 1.0};
  Vec p(kDim);
  for (size_t i = 0; i < n; ++i) {
    double u = rng.Uniform();
    int stars = 0;
    while (stars < 4 && u > kStarCdf[stars]) ++stars;
    double star_value = (stars + 1) / 5.0;  // discrete, duplicate-heavy
    // Price grows with stars but with wide lognormal spread; the
    // negative sign of "expensive is bad" is folded away by the paper's
    // normalization, so we keep raw price and let correlation structure
    // carry the signal (stars vs price mildly anti-correlated once
    // price is capped: budget 5* hotels are rare, cheap ones common).
    double price = std::exp(rng.Gaussian(3.2 + 0.45 * stars, 0.5));
    // Rooms: heavy-tailed, weakly tied to stars.
    double rooms = std::exp(rng.Gaussian(3.0 + 0.25 * stars, 0.9));
    // Facility count: increases with stars, saturates near 40.
    double facilities =
        std::min(40.0, 4.0 + 6.0 * stars + std::fabs(rng.Gaussian(0.0, 4.0)));
    p[0] = star_value;
    p[1] = 1.0 / price;  // value-for-money orientation: larger is better
    p[2] = std::log1p(rooms);
    p[3] = facilities;
    data.Append(p);
  }
  data.NormalizeToUnitCube();
  return data;
}

}  // namespace gir
