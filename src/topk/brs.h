#ifndef GIR_TOPK_BRS_H_
#define GIR_TOPK_BRS_H_

#include <vector>

#include "common/result.h"
#include "index/flat_rtree.h"
#include "index/rtree.h"
#include "storage/io_stats.h"
#include "topk/scoring.h"

namespace gir {

// An R-tree node left unexplored by BRS, keyed by its maxscore. The
// GIR Phase-2 algorithms resume the search from these.
struct PendingNode {
  double maxscore = 0.0;
  PageId page = kInvalidPage;
  Mbb mbb;
};

struct PendingNodeLess {
  bool operator()(const PendingNode& a, const PendingNode& b) const {
    return a.maxscore < b.maxscore;  // max-heap
  }
};

// Output of BRS: the ordered top-k plus everything Phase 2 needs — the
// set T of non-result records already fetched from disk, and the search
// heap of unexplored nodes (paper Section 3.3).
struct TopKResult {
  std::vector<RecordId> result;  // decreasing score order
  std::vector<double> scores;    // aligned with `result`
  std::vector<RecordId> encountered;  // T: fetched non-result records
  std::vector<PendingNode> pending;   // heap ordered by PendingNodeLess
  IoStats io;                         // page reads charged by this run
};

// Branch-and-bound Ranked Search (Tao et al., Inf. Syst. 2007): an
// I/O-optimal top-k over an R-tree for monotone scoring functions. A
// max-heap holds node entries keyed by maxscore and records keyed by
// score; popped records are final results.
//
// Returns InvalidArgument for k == 0 or weight dimensionality mismatch.
// When the dataset has fewer than k records, returns them all.
Result<TopKResult> RunBrs(const RTree& tree, const ScoringFunction& scoring,
                          VecView weights, size_t k);

// Same search over the frozen representation, using the batched SoA
// score kernels. Output (result, scores, encountered, pending, io) is
// bit-identical to the mutable-tree run on the tree the image was
// frozen from.
Result<TopKResult> RunBrs(const FlatRTree& tree,
                          const ScoringFunction& scoring, VecView weights,
                          size_t k);

}  // namespace gir

#endif  // GIR_TOPK_BRS_H_
