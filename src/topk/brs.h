#ifndef GIR_TOPK_BRS_H_
#define GIR_TOPK_BRS_H_

#include <vector>

#include "common/result.h"
#include "index/flat_rtree.h"
#include "index/rtree.h"
#include "storage/io_stats.h"
#include "topk/scoring.h"
#include "topk/tree_kernels.h"

namespace gir {

// An R-tree node left unexplored by BRS, keyed by its maxscore. The
// GIR Phase-2 algorithms resume the search from these.
struct PendingNode {
  double maxscore = 0.0;
  PageId page = kInvalidPage;
  Mbb mbb;
};

struct PendingNodeLess {
  bool operator()(const PendingNode& a, const PendingNode& b) const {
    return a.maxscore < b.maxscore;  // max-heap
  }
};

// Output of BRS: the ordered top-k plus everything Phase 2 needs — the
// set T of non-result records already fetched from disk, and the search
// heap of unexplored nodes (paper Section 3.3).
struct TopKResult {
  std::vector<RecordId> result;  // decreasing score order
  std::vector<double> scores;    // aligned with `result`
  std::vector<RecordId> encountered;  // T: fetched non-result records
  std::vector<PendingNode> pending;   // heap ordered by PendingNodeLess
  IoStats io;                         // page reads charged by this run
};

// Branch-and-bound Ranked Search (Tao et al., Inf. Syst. 2007): an
// I/O-optimal top-k over an R-tree for monotone scoring functions. A
// max-heap holds node entries keyed by maxscore and records keyed by
// score; popped records are final results.
//
// Returns InvalidArgument for k == 0 or weight dimensionality mismatch.
// When the dataset has fewer than k records, returns them all.
Result<TopKResult> RunBrs(const RTree& tree, const ScoringFunction& scoring,
                          VecView weights, size_t k);

// Same search over the frozen representation, using the batched SoA
// score kernels. Output (result, scores, encountered, pending, io) is
// bit-identical to the mutable-tree run on the tree the image was
// frozen from.
Result<TopKResult> RunBrs(const FlatRTree& tree,
                          const ScoringFunction& scoring, VecView weights,
                          size_t k);

// ----- shared-traversal multi-query executor -----

// One query of a shared-traversal group. The weight storage must stay
// alive across the RunBrsMulti call.
struct BrsMultiQuery {
  VecView weights;
  size_t k = 0;
};

// Group-level accounting of one RunBrsMulti call. Per-query TopKResult
// io carries the *charged* reads (what a solo run would have paid);
// these fields carry what the group actually did.
struct BrsMultiStats {
  uint64_t unique_reads = 0;   // physical page reads performed (and
                               // charged to the DiskManager) — first
                               // touch of each page per group
  uint64_t charged_reads = 0;  // sum of the per-query logical charges
  uint64_t rounds = 0;         // lockstep expansion rounds
  uint64_t node_expansions = 0;  // (query, node) pairs expanded
  uint64_t read_faults = 0;    // page fetches failed by the fault plan
  // Frontier prefetch over an mmap'd arena (all zero on heap images):
  // pages madvise'd ahead of their round, and of this group's unique
  // fetches, how many found their mapped page already resident vs. had
  // to fault it in synchronously.
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_misses = 0;
};

// Per-call knobs of the shared-traversal executor.
struct BrsMultiOptions {
  // Issue madvise(MADV_WILLNEED) for a round's whole union page set
  // before fetching/scoring its first page, so the kernel's readahead
  // overlaps the round's SIMD scoring. Only acts on arena-backed
  // images; never changes results, only page-in timing.
  bool prefetch = true;
};

// Heap entry of the shared executor: plain data only, so the pooled
// per-query heaps never allocate per push. A node entry remembers the
// parent page + slot it came from, letting the pending-node drain
// materialize its Mbb on demand (bitwise equal to the solo path's
// retained copy) instead of storing boxes in the heap.
struct MultiHeapEntry {
  double key = 0.0;
  int32_t id = 0;  // PageId for nodes, RecordId for records
  bool is_node = false;
  PageId parent = kInvalidPage;  // node entries: page holding the entry
  uint32_t slot = 0;             // node entries: index within parent
};

// Pooled scratch of the shared-traversal executor, recycled across
// groups with the same discipline as LpWorkspace: buffers only ever
// grow, so once warmed on a workload shape the executor performs zero
// steady-state heap allocations (asserted by batch_shared_test with a
// global operator-new counter). All members are internal to
// RunBrsMulti; callers just keep the object alive between calls.
struct BrsFrontierArena {
  struct QuerySlot {
    std::vector<MultiHeapEntry> heap;  // binary heap, HeapEntryLess order
    std::vector<RecordId> fetched;     // leaf records pulled into memory
  };
  struct Demand {
    PageId page = kInvalidPage;
    uint32_t query = 0;
  };
  std::vector<QuerySlot> queries;   // grown to the widest group seen
  std::vector<uint32_t> visit_stamp;  // per page: serial of last visit
  uint32_t serial = 0;
  std::vector<Demand> demands;      // one round's (page, query) pairs
  std::vector<PageId> prefetch_pages;  // round's unique unfetched pages
  std::vector<VecView> weight_rows;  // gathered weights of one page run
  std::vector<uint32_t> run_queries;  // query index per weight row
  std::vector<RecordId> sort_scratch;  // result ids, sorted, per drain
  std::vector<uint32_t> charged;    // per query: node expansions so far
  std::vector<uint8_t> active;
  MultiScoreBuffer scores;
  // Batch-engine group scratch, pooled with the rest of the arena: the
  // per-group query list and the RunBrsMulti output slots (their inner
  // buffers are moved into the per-query results downstream, so the
  // recycled part is the outer vectors plus whatever capacity the
  // moves leave behind).
  std::vector<BrsMultiQuery> group;
  std::vector<TopKResult> results;
  std::vector<Status> statuses;  // per-query fault sink of one group
  // Buffer growths since construction; 0 across a steady-state stretch.
  size_t grow_events = 0;
};

// Shared-traversal BRS over one frozen tree: runs every query's
// branch-and-bound search in lockstep rounds — each round expands
// exactly one node per still-active query, after draining the records
// above it — so each query's pop sequence, heap contents, termination
// point and drained pending/encountered sets are exactly those of a
// solo RunBrs. The sharing is across queries: all queries demanding the
// same page in a round score its SoA planes in one
// ComputeEntryScoresMulti call, and a page already fetched for any
// group member earlier is re-served from memory without touching the
// DiskManager. Each query's io is *charged* as if it ran alone
// (io.reads == its node expansions, bit-identical to RunBrs), while
// `stats` reports the amortized physical reads actually performed.
//
// (*out)[i] receives query i's TopKResult; `out` is resized up (never
// shrunk), and a retained `out` re-fills its vectors in place, so a
// caller that keeps arena + out across calls reaches the zero-alloc
// steady state. Returns InvalidArgument (before any work) when any
// query has k == 0 or mismatched weight dimensionality.
//
// Fault containment: page fetches go through DiskManager::ReadPage, so
// an attached fault plan can fail them. With `statuses` supplied
// (resized to one Status per query, Ok by default), a failed fetch
// degrades exactly the queries demanding that page — their statuses
// carry the fault, their results are emptied — while every other group
// member completes untouched, bit-identical to a run without the
// faulted queries. With statuses == nullptr a fault fails the whole
// call (the pre-fault all-or-nothing contract).
Status RunBrsMulti(const FlatRTree& tree, const ScoringFunction& scoring,
                   const std::vector<BrsMultiQuery>& queries,
                   BrsFrontierArena* arena, std::vector<TopKResult>* out,
                   BrsMultiStats* stats = nullptr,
                   std::vector<Status>* statuses = nullptr,
                   const BrsMultiOptions& options = {});

}  // namespace gir

#endif  // GIR_TOPK_BRS_H_
