#ifndef GIR_TOPK_TREE_KERNELS_H_
#define GIR_TOPK_TREE_KERNELS_H_

#include <cstdint>
#include <vector>

#include "index/flat_rtree.h"
#include "index/rtree.h"
#include "topk/scoring.h"

namespace gir {

// Uniform node-access shims plus the batched scoring kernel, so the
// BRS/BBS/Phase-2 traversals are written once and instantiated for both
// tree representations: the mutable RTree (the pre-flat scalar path,
// kept as the reference and for freshly built/modified indexes) and the
// frozen FlatRTree (SoA planes, vectorizable kernels).
//
// Bit-identity contract: for the same node, both representations yield
// the same entry order, the same child ids, bitwise-equal boxes, and
// bitwise-equal scores (the batched kernel accumulates dimensions in
// the same order as ScoringFunction::Score/MaxScore), so traversal
// decisions — heap order, pruning, I/O — are identical.

// ----- checked page reads -----

// Charges one page read through DiskManager::ReadPage, so an attached
// fault plan can fail (kUnavailable) or stall it. The fallible
// traversals pair this with PeekNode — together equivalent to
// ReadNode, plus the error path. Works for both tree representations.
template <typename Tree>
inline Status TreeReadPage(const Tree& tree, PageId page) {
  return tree.disk()->ReadPage(page);
}

// Frozen-image overload: FetchPage additionally touches the node's
// mmap'd bytes when the image is arena-backed, so the physical page-in
// happens inside the checked, fault-injectable read — never as a
// silent fault inside a scoring kernel. `resident` (optional) is the
// prefetch hit/miss signal.
inline Status TreeReadPage(const FlatRTree& tree, PageId page,
                           bool* resident = nullptr) {
  return tree.FetchPage(page, resident);
}

// ----- RTreeNode shims -----

inline bool NodeIsLeaf(const RTreeNode& node) { return node.is_leaf; }
inline size_t NodeEntryCount(const RTreeNode& node) {
  return node.entries.size();
}
inline int32_t NodeChild(const RTreeNode& node, size_t e) {
  return node.entries[e].child;
}
inline Mbb NodeEntryMbb(const RTreeNode& node, size_t e) {
  return node.entries[e].mbb;
}
// Returns a view of entry e's top corner; `scratch` is unused here but
// backs the gathered corner in the FlatRTree overload.
inline VecView NodeEntryTopCorner(const RTreeNode& node, size_t e,
                                  Vec* scratch) {
  (void)scratch;
  return node.entries[e].mbb.TopCorner();
}
inline Mbb NodeSelfMbb(const RTree& tree, const RTreeNode& node) {
  return node.ComputeMbb(tree.dataset().dim());
}

// ----- FlatRTree::NodeView shims -----

inline bool NodeIsLeaf(const FlatRTree::NodeView& node) {
  return node.is_leaf();
}
inline size_t NodeEntryCount(const FlatRTree::NodeView& node) {
  return node.count();
}
inline int32_t NodeChild(const FlatRTree::NodeView& node, size_t e) {
  return node.child(e);
}
inline Mbb NodeEntryMbb(const FlatRTree::NodeView& node, size_t e) {
  return node.EntryMbb(e);
}
inline VecView NodeEntryTopCorner(const FlatRTree::NodeView& node, size_t e,
                                  Vec* scratch) {
  node.EntryTopCorner(e, scratch);
  return VecView(*scratch);
}
inline Mbb NodeSelfMbb(const FlatRTree& tree, const FlatRTree::NodeView& node) {
  (void)tree;
  return node.mbb();
}

// ----- batched entry scoring -----

// Reusable per-traversal workspace for the score kernels, so the hot
// loop never reallocates.
struct ScoreBuffer {
  std::vector<double> scores;
  std::vector<double> scratch;
};

// Fills buf->scores with one score per entry: the record score for leaf
// entries (a leaf MBB is its point, so hi == the record), the maxscore
// upper bound for internal entries. Scalar reference path.
void ComputeEntryScores(const ScoringFunction& scoring, const Dataset& data,
                        const RTreeNode& node, VecView weights,
                        ScoreBuffer* buf);

// Same contract over a frozen node, streaming the SoA hi planes: for
// each dimension j, scores[e] += w_j * g_j(hi_j[e]). One tight loop per
// plane, no per-entry virtual calls — this is the kernel gcc/clang
// auto-vectorize under GIR_NATIVE_ARCH.
void ComputeEntryScores(const ScoringFunction& scoring, const Dataset& data,
                        const FlatRTree::NodeView& node, VecView weights,
                        ScoreBuffer* buf);

// Workspace of the multi-query scorer: the row-major score matrix plus
// the shared transformed plane and the per-dimension weight gather.
// Reused across nodes and groups, so the steady-state loop never
// allocates.
struct MultiScoreBuffer {
  std::vector<double> scores;   // m rows of node.count() scores each
  std::vector<double> scratch;  // one transformed plane, shared by rows
  std::vector<double> wgather;  // w[r][j] gathered per dimension
};

// Scores one frozen node against a whole query group at once: row r of
// buf->scores receives the same entry scores ComputeEntryScores would
// produce for weight vector weights[r] (bitwise — same per-dimension
// accumulation order, same transform values, plain mul+add on every
// SIMD tier). The amortization over the per-query kernel is structural:
// each dimension plane is transformed once for the whole group instead
// of once per query, and simd::MaxDotPlaneMulti streams the plane
// against all rows with shared loads. Every weights[r] must have
// node-dimensionality size.
void ComputeEntryScoresMulti(const ScoringFunction& scoring,
                             const FlatRTree::NodeView& node,
                             const VecView* weights, size_t m,
                             MultiScoreBuffer* buf);

}  // namespace gir

#endif  // GIR_TOPK_TREE_KERNELS_H_
