#ifndef GIR_TOPK_SCORING_H_
#define GIR_TOPK_SCORING_H_

#include <memory>
#include <string>
#include <vector>

#include "geom/vec.h"
#include "index/mbb.h"

namespace gir {

// Scoring functions of the paper's Section 7.2 family:
//     S(p, q) = sum_i w_i * g_i(p_i)
// with every g_i monotone increasing on [0,1]. Linear scoring is the
// identity transform. The per-dimension transform is what makes GIR
// computation reduce to half-space intersection even for non-linear
// members of the family: the constraint S(p,q') >= S(p',q') becomes
// (g(p) - g(p'))·q' >= 0, linear in q'.
class ScoringFunction {
 public:
  virtual ~ScoringFunction() = default;

  virtual std::string name() const = 0;
  virtual size_t dim() const = 0;

  // g_i(x): monotone increasing per-dimension transform.
  virtual double TransformDim(size_t i, double x) const = 0;

  // g_i over a contiguous batch (an SoA plane): out[e] = g_i(x[e]).
  // Overridden by the concrete scorings with branch-light loops; the
  // default falls back to per-element TransformDim calls.
  virtual void TransformDimBatch(size_t i, const double* x, size_t n,
                                 double* out) const;

  // True when every g_i is the identity, letting batched kernels skip
  // the transform pass entirely (LinearScoring).
  virtual bool IsIdentityTransform() const { return false; }

  // g(p) as a vector: the coordinates used for all GIR half-spaces.
  Vec Transform(VecView p) const;

  // Allocation-free variant: resizes `out` to p.size() (no-op at steady
  // state) and fills it with g(p). The invalidation loop transforms one
  // k-th record per cached entry; reusing the destination keeps that
  // loop heap-quiet.
  void TransformInto(VecView p, Vec* out) const;

  // S(p, q) for non-negative weights q.
  double Score(VecView p, VecView weights) const;

  // Upper bound of S(·, q) over a bounding box: since every g_i is
  // monotone increasing and weights are non-negative, the top corner
  // maximizes the score (the BRS maxscore).
  double MaxScore(const Mbb& box, VecView weights) const;
};

// S(p,q) = sum w_i p_i (the paper's default).
class LinearScoring : public ScoringFunction {
 public:
  explicit LinearScoring(size_t dim) : dim_(dim) {}
  std::string name() const override { return "Linear"; }
  size_t dim() const override { return dim_; }
  double TransformDim(size_t, double x) const override { return x; }
  void TransformDimBatch(size_t, const double* x, size_t n,
                         double* out) const override {
    for (size_t e = 0; e < n; ++e) out[e] = x[e];
  }
  bool IsIdentityTransform() const override { return true; }

 private:
  size_t dim_;
};

// "Polynomial" of Figure 19: S = w1 x1^4 + w2 x2^3 + w3 x3^2 + w4 x4.
// Generalized to any d: exponent d-i for dimension i (min 1). The
// power is evaluated by left-to-right repeated multiplication (not
// std::pow) so the scalar and SIMD batch paths agree bit for bit.
class PolynomialScoring : public ScoringFunction {
 public:
  explicit PolynomialScoring(size_t dim);
  std::string name() const override { return "Polynomial"; }
  size_t dim() const override { return dim_; }
  double TransformDim(size_t i, double x) const override;
  void TransformDimBatch(size_t i, const double* x, size_t n,
                         double* out) const override;

 private:
  size_t dim_;
  std::vector<int> exponents_;
};

// "Mixed" of Figure 19: S = w1 x1^2 + w2 e^x2 + w3 log(x3) + w4 sqrt(x4).
// log is offset as log(x + eps) to stay finite at 0; all terms are
// monotone increasing on [0,1]. Dimensions beyond the fourth cycle
// through the same four shapes.
class MixedScoring : public ScoringFunction {
 public:
  explicit MixedScoring(size_t dim) : dim_(dim) {}
  std::string name() const override { return "Mixed"; }
  size_t dim() const override { return dim_; }
  double TransformDim(size_t i, double x) const override;
  void TransformDimBatch(size_t i, const double* x, size_t n,
                         double* out) const override;

 private:
  size_t dim_;
};

// Factory: "Linear", "Polynomial", "Mixed".
std::unique_ptr<ScoringFunction> MakeScoring(const std::string& name,
                                             size_t dim);

}  // namespace gir

#endif  // GIR_TOPK_SCORING_H_
