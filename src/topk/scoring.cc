#include "topk/scoring.h"

#include <cassert>
#include <cmath>

#include "common/simd.h"

namespace gir {

Vec ScoringFunction::Transform(VecView p) const {
  Vec g(p.size());
  for (size_t i = 0; i < p.size(); ++i) g[i] = TransformDim(i, p[i]);
  return g;
}

void ScoringFunction::TransformInto(VecView p, Vec* out) const {
  out->resize(p.size());
  for (size_t i = 0; i < p.size(); ++i) (*out)[i] = TransformDim(i, p[i]);
}

double ScoringFunction::Score(VecView p, VecView weights) const {
  assert(p.size() == weights.size());
  double s = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    s += weights[i] * TransformDim(i, p[i]);
  }
  return s;
}

void ScoringFunction::TransformDimBatch(size_t i, const double* x, size_t n,
                                        double* out) const {
  for (size_t e = 0; e < n; ++e) out[e] = TransformDim(i, x[e]);
}

double ScoringFunction::MaxScore(const Mbb& box, VecView weights) const {
  double s = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    // Monotone g_i and w_i >= 0: the top corner dominates.
    s += weights[i] * TransformDim(i, box.hi[i]);
  }
  return s;
}

PolynomialScoring::PolynomialScoring(size_t dim) : dim_(dim) {
  exponents_.resize(dim);
  for (size_t i = 0; i < dim; ++i) {
    exponents_[i] =
        static_cast<int>(dim - i >= 1 ? dim - i : 1);  // d, d-1, ..., 1
  }
}

double PolynomialScoring::TransformDim(size_t i, double x) const {
  // Same multiplication chain as simd::PowIter, so per-element and
  // batched evaluation are bitwise equal.
  double r = x;
  for (int t = 1; t < exponents_[i]; ++t) r *= x;
  return r;
}

void PolynomialScoring::TransformDimBatch(size_t i, const double* x, size_t n,
                                          double* out) const {
  simd::PowIter(x, exponents_[i], out, n);
}

double MixedScoring::TransformDim(size_t i, double x) const {
  switch (i % 4) {
    case 0:
      return x * x;
    case 1:
      return std::exp(x);
    case 2:
      return std::log(x + 1e-3);
    default:
      return std::sqrt(x);
  }
}

void MixedScoring::TransformDimBatch(size_t i, const double* x, size_t n,
                                     double* out) const {
  switch (i % 4) {
    case 0:
      simd::Square(x, out, n);
      break;
    case 1:
      // exp/log are not correctly rounded by libm, so there is no
      // vector evaluation that matches the scalar reference bit for
      // bit; these planes stay scalar on every tier.
      for (size_t e = 0; e < n; ++e) out[e] = std::exp(x[e]);
      break;
    case 2:
      for (size_t e = 0; e < n; ++e) out[e] = std::log(x[e] + 1e-3);
      break;
    default:
      simd::Sqrt(x, out, n);
      break;
  }
}

std::unique_ptr<ScoringFunction> MakeScoring(const std::string& name,
                                             size_t dim) {
  if (name == "Polynomial") return std::make_unique<PolynomialScoring>(dim);
  if (name == "Mixed") return std::make_unique<MixedScoring>(dim);
  return std::make_unique<LinearScoring>(dim);
}

}  // namespace gir
