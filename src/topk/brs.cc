#include "topk/brs.h"

#include <algorithm>
#include <queue>

#include "topk/tree_kernels.h"

namespace gir {

namespace {

struct HeapEntry {
  double key;
  bool is_node;
  int32_t id;  // PageId for nodes, RecordId for records
  Mbb mbb;     // valid for nodes only
};

struct HeapEntryLess {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.key != b.key) return a.key < b.key;
    // Deterministic tie-break: prefer records over nodes, then lower id,
    // so runs are reproducible across platforms.
    if (a.is_node != b.is_node) return a.is_node;
    return a.id > b.id;
  }
};

template <typename Tree>
Result<TopKResult> RunBrsImpl(const Tree& tree, const ScoringFunction& scoring,
                              VecView weights, size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (weights.size() != tree.dataset().dim()) {
    return Status::InvalidArgument("weight dimensionality mismatch");
  }
  const Dataset& data = tree.dataset();
  TopKResult out;
  IoStats before = DiskManager::ThreadStats();
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapEntryLess> heap;
  if (tree.root() != kInvalidPage) {
    decltype(auto) root = tree.PeekNode(tree.root());
    HeapEntry e;
    e.mbb = NodeSelfMbb(tree, root);
    e.key = scoring.MaxScore(e.mbb, weights);
    e.is_node = true;
    e.id = static_cast<int32_t>(tree.root());
    heap.push(std::move(e));
  }
  ScoreBuffer buf;
  std::vector<RecordId> fetched_records;
  while (!heap.empty() && out.result.size() < k) {
    HeapEntry top = heap.top();
    heap.pop();
    if (!top.is_node) {
      out.result.push_back(top.id);
      out.scores.push_back(top.key);
      continue;
    }
    decltype(auto) node = tree.ReadNode(static_cast<PageId>(top.id));
    const size_t count = NodeEntryCount(node);
    ComputeEntryScores(scoring, data, node, weights, &buf);
    if (NodeIsLeaf(node)) {
      for (size_t i = 0; i < count; ++i) {
        HeapEntry he;
        he.key = buf.scores[i];
        he.is_node = false;
        he.id = NodeChild(node, i);
        heap.push(std::move(he));
        fetched_records.push_back(NodeChild(node, i));
      }
    } else {
      for (size_t i = 0; i < count; ++i) {
        HeapEntry he;
        he.key = buf.scores[i];
        he.is_node = true;
        he.id = NodeChild(node, i);
        he.mbb = NodeEntryMbb(node, i);
        heap.push(std::move(he));
      }
    }
  }
  // Drain the heap: remaining nodes feed Phase 2; remaining records are
  // the encountered set T (already in memory, no further I/O).
  while (!heap.empty()) {
    const HeapEntry& top = heap.top();
    if (top.is_node) {
      PendingNode pn;
      pn.maxscore = top.key;
      pn.page = static_cast<PageId>(top.id);
      pn.mbb = top.mbb;
      out.pending.push_back(std::move(pn));
    }
    heap.pop();
  }
  // `pending` drained from a max-heap is already sorted descending; that
  // is a valid heap order, but normalize explicitly for clarity.
  std::make_heap(out.pending.begin(), out.pending.end(), PendingNodeLess());
  std::sort(fetched_records.begin(), fetched_records.end());
  std::vector<RecordId> result_sorted = out.result;
  std::sort(result_sorted.begin(), result_sorted.end());
  std::set_difference(fetched_records.begin(), fetched_records.end(),
                      result_sorted.begin(), result_sorted.end(),
                      std::back_inserter(out.encountered));
  out.io = DiskManager::ThreadStats() - before;
  return out;
}

}  // namespace

Result<TopKResult> RunBrs(const RTree& tree, const ScoringFunction& scoring,
                          VecView weights, size_t k) {
  return RunBrsImpl(tree, scoring, weights, k);
}

Result<TopKResult> RunBrs(const FlatRTree& tree,
                          const ScoringFunction& scoring, VecView weights,
                          size_t k) {
  return RunBrsImpl(tree, scoring, weights, k);
}

}  // namespace gir
