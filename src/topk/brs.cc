#include "topk/brs.h"

#include <algorithm>
#include <queue>

#include "topk/tree_kernels.h"

namespace gir {

namespace {

struct HeapEntry {
  double key;
  bool is_node;
  int32_t id;  // PageId for nodes, RecordId for records
  Mbb mbb;     // valid for nodes only
};

struct HeapEntryLess {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.key != b.key) return a.key < b.key;
    // Deterministic tie-break: prefer records over nodes, then lower id,
    // so runs are reproducible across platforms.
    if (a.is_node != b.is_node) return a.is_node;
    return a.id > b.id;
  }
};

template <typename Tree>
Result<TopKResult> RunBrsImpl(const Tree& tree, const ScoringFunction& scoring,
                              VecView weights, size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (weights.size() != tree.dataset().dim()) {
    return Status::InvalidArgument("weight dimensionality mismatch");
  }
  const Dataset& data = tree.dataset();
  TopKResult out;
  IoStats before = DiskManager::ThreadStats();
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapEntryLess> heap;
  if (tree.root() != kInvalidPage) {
    decltype(auto) root = tree.PeekNode(tree.root());
    HeapEntry e;
    e.mbb = NodeSelfMbb(tree, root);
    e.key = scoring.MaxScore(e.mbb, weights);
    e.is_node = true;
    e.id = static_cast<int32_t>(tree.root());
    heap.push(std::move(e));
  }
  ScoreBuffer buf;
  std::vector<RecordId> fetched_records;
  while (!heap.empty() && out.result.size() < k) {
    HeapEntry top = heap.top();
    heap.pop();
    if (!top.is_node) {
      out.result.push_back(top.id);
      out.scores.push_back(top.key);
      continue;
    }
    Status read = TreeReadPage(tree, static_cast<PageId>(top.id));
    if (!read.ok()) return read;
    decltype(auto) node = tree.PeekNode(static_cast<PageId>(top.id));
    const size_t count = NodeEntryCount(node);
    ComputeEntryScores(scoring, data, node, weights, &buf);
    if (NodeIsLeaf(node)) {
      for (size_t i = 0; i < count; ++i) {
        HeapEntry he;
        he.key = buf.scores[i];
        he.is_node = false;
        he.id = NodeChild(node, i);
        heap.push(std::move(he));
        fetched_records.push_back(NodeChild(node, i));
      }
    } else {
      for (size_t i = 0; i < count; ++i) {
        HeapEntry he;
        he.key = buf.scores[i];
        he.is_node = true;
        he.id = NodeChild(node, i);
        he.mbb = NodeEntryMbb(node, i);
        heap.push(std::move(he));
      }
    }
  }
  // Drain the heap: remaining nodes feed Phase 2; remaining records are
  // the encountered set T (already in memory, no further I/O).
  while (!heap.empty()) {
    const HeapEntry& top = heap.top();
    if (top.is_node) {
      PendingNode pn;
      pn.maxscore = top.key;
      pn.page = static_cast<PageId>(top.id);
      pn.mbb = top.mbb;
      out.pending.push_back(std::move(pn));
    }
    heap.pop();
  }
  // `pending` drained from a max-heap is already sorted descending; that
  // is a valid heap order, but normalize explicitly for clarity.
  std::make_heap(out.pending.begin(), out.pending.end(), PendingNodeLess());
  std::sort(fetched_records.begin(), fetched_records.end());
  std::vector<RecordId> result_sorted = out.result;
  std::sort(result_sorted.begin(), result_sorted.end());
  std::set_difference(fetched_records.begin(), fetched_records.end(),
                      result_sorted.begin(), result_sorted.end(),
                      std::back_inserter(out.encountered));
  out.io = DiskManager::ThreadStats() - before;
  return out;
}

// ----- shared-traversal multi-query executor -----

// Same strict total order as HeapEntryLess, over the plain-data entry.
struct MultiHeapEntryLess {
  bool operator()(const MultiHeapEntry& a, const MultiHeapEntry& b) const {
    if (a.key != b.key) return a.key < b.key;
    if (a.is_node != b.is_node) return a.is_node;
    return a.id > b.id;
  }
};

// Grows v to at least n elements, counting the growth for the arena's
// steady-state accounting. Never shrinks: surplus capacity is the whole
// point of the pool.
template <typename V>
void EnsureSize(V* v, size_t n, size_t* grow_events) {
  if (v->size() < n) {
    *grow_events += 1;
    v->resize(n);
  }
}

// Drains query slot `qs` after its search finished: remaining heap
// nodes become `pending` (popped in comparator order, exactly as the
// solo drain emits them), fetched non-result records become
// `encountered`. Refills a retained TopKResult in place.
void FinalizeMultiQuery(const FlatRTree& tree,
                        BrsFrontierArena::QuerySlot* qs,
                        std::vector<RecordId>* sort_scratch,
                        uint32_t charged, TopKResult* out) {
  size_t n_pending = 0;
  for (const MultiHeapEntry& e : qs->heap) n_pending += e.is_node ? 1 : 0;
  if (out->pending.size() < n_pending) out->pending.resize(n_pending);
  size_t idx = 0;
  MultiHeapEntryLess less;
  while (!qs->heap.empty()) {
    std::pop_heap(qs->heap.begin(), qs->heap.end(), less);
    const MultiHeapEntry top = qs->heap.back();
    qs->heap.pop_back();
    if (!top.is_node) continue;
    PendingNode& pn = out->pending[idx++];
    pn.maxscore = top.key;
    pn.page = static_cast<PageId>(top.id);
    if (top.parent == kInvalidPage) {
      // Root entry (only reachable when the root was never expanded,
      // which a solo run covers via NodeSelfMbb — same box).
      pn.mbb = tree.PeekNode(pn.page).mbb();
    } else {
      tree.PeekNode(top.parent).EntryMbbInto(top.slot, &pn.mbb);
    }
  }
  out->pending.resize(n_pending);
  // Identical normalization to the solo drain: entries were emitted in
  // descending comparator order, then heapified.
  std::make_heap(out->pending.begin(), out->pending.end(),
                 PendingNodeLess());
  std::sort(qs->fetched.begin(), qs->fetched.end());
  sort_scratch->assign(out->result.begin(), out->result.end());
  std::sort(sort_scratch->begin(), sort_scratch->end());
  out->encountered.clear();
  std::set_difference(qs->fetched.begin(), qs->fetched.end(),
                      sort_scratch->begin(), sort_scratch->end(),
                      std::back_inserter(out->encountered));
  out->io = IoStats{};
  out->io.reads = charged;
}

}  // namespace

Status RunBrsMulti(const FlatRTree& tree, const ScoringFunction& scoring,
                   const std::vector<BrsMultiQuery>& queries,
                   BrsFrontierArena* arena, std::vector<TopKResult>* out,
                   BrsMultiStats* stats, std::vector<Status>* statuses,
                   const BrsMultiOptions& options) {
  const size_t m = queries.size();
  const size_t dim = tree.dataset().dim();
  for (const BrsMultiQuery& q : queries) {
    if (q.k == 0) return Status::InvalidArgument("k must be positive");
    if (q.weights.size() != dim) {
      return Status::InvalidArgument("weight dimensionality mismatch");
    }
  }
  BrsMultiStats local;
  if (stats == nullptr) stats = &local;
  *stats = BrsMultiStats{};
  if (statuses != nullptr) statuses->assign(m, Status::Ok());
  if (out->size() < m) out->resize(m);
  if (m == 0) return Status::Ok();

  // Arena prep: per-query slots, the page visit stamps for this group
  // (serial bump instead of a clear), round scratch.
  EnsureSize(&arena->queries, m, &arena->grow_events);
  EnsureSize(&arena->charged, m, &arena->grow_events);
  EnsureSize(&arena->active, m, &arena->grow_events);
  if (arena->visit_stamp.size() != tree.node_count()) {
    arena->visit_stamp.assign(tree.node_count(), 0);
    arena->serial = 0;
    ++arena->grow_events;
  }
  if (++arena->serial == 0) {  // wrapped: all stamps are stale anyway
    std::fill(arena->visit_stamp.begin(), arena->visit_stamp.end(), 0u);
    arena->serial = 1;
  }

  MultiHeapEntryLess less;
  size_t remaining = 0;
  for (size_t q = 0; q < m; ++q) {
    BrsFrontierArena::QuerySlot& qs = arena->queries[q];
    qs.heap.clear();
    qs.fetched.clear();
    arena->charged[q] = 0;
    TopKResult& o = (*out)[q];
    o.result.clear();
    o.scores.clear();
    o.encountered.clear();
    o.io = IoStats{};
    if (tree.root() != kInvalidPage) {
      MultiHeapEntry e;
      e.key = scoring.MaxScore(tree.PeekNode(tree.root()).mbb(),
                               queries[q].weights);
      e.is_node = true;
      e.id = static_cast<int32_t>(tree.root());
      qs.heap.push_back(e);  // heap of one
      arena->active[q] = 1;
      ++remaining;
    } else {
      arena->active[q] = 0;
      FinalizeMultiQuery(tree, &qs, &arena->sort_scratch, 0, &o);
    }
  }

  while (remaining > 0) {
    // Phase A: per query, drain the records sitting above the next
    // node (exactly the pops a solo run would do), then either finish
    // or demand that node.
    arena->demands.clear();
    for (size_t q = 0; q < m; ++q) {
      if (!arena->active[q]) continue;
      BrsFrontierArena::QuerySlot& qs = arena->queries[q];
      TopKResult& o = (*out)[q];
      const size_t k = queries[q].k;
      while (!qs.heap.empty() && o.result.size() < k &&
             !qs.heap.front().is_node) {
        std::pop_heap(qs.heap.begin(), qs.heap.end(), less);
        const MultiHeapEntry top = qs.heap.back();
        qs.heap.pop_back();
        o.result.push_back(top.id);
        o.scores.push_back(top.key);
      }
      if (o.result.size() >= k || qs.heap.empty()) {
        arena->active[q] = 0;
        --remaining;
        FinalizeMultiQuery(tree, &qs, &arena->sort_scratch,
                           arena->charged[q], &o);
        continue;
      }
      arena->demands.push_back(BrsFrontierArena::Demand{
          static_cast<PageId>(qs.heap.front().id),
          static_cast<uint32_t>(q)});
    }
    if (arena->demands.empty()) break;
    ++stats->rounds;

    // Phase B: group this round's demands by page; fetch + score each
    // page once for all its demanders.
    std::sort(arena->demands.begin(), arena->demands.end(),
              [](const BrsFrontierArena::Demand& a,
                 const BrsFrontierArena::Demand& b) {
                return a.page != b.page ? a.page < b.page
                                        : a.query < b.query;
              });
    // Async frontier prefetch (arena-backed images): the sorted demands
    // are exactly this round's union page set, so hand the not-yet
    // fetched ones to the kernel's readahead in one pass before any
    // page is touched — the early pages' SIMD scoring then overlaps the
    // later pages' I/O.
    if (options.prefetch && tree.arena_backed()) {
      arena->prefetch_pages.clear();
      for (size_t d = 0; d < arena->demands.size(); ++d) {
        const PageId page = arena->demands[d].page;
        if (d > 0 && arena->demands[d - 1].page == page) continue;
        if (arena->visit_stamp[page] == arena->serial) continue;
        arena->prefetch_pages.push_back(page);
      }
      tree.PrefetchPages(arena->prefetch_pages.data(),
                         arena->prefetch_pages.size());
      stats->prefetch_issued += arena->prefetch_pages.size();
    }
    size_t i = 0;
    while (i < arena->demands.size()) {
      const PageId page = arena->demands[i].page;
      size_t j = i;
      arena->run_queries.clear();
      arena->weight_rows.clear();
      while (j < arena->demands.size() && arena->demands[j].page == page) {
        const uint32_t q = arena->demands[j].query;
        arena->run_queries.push_back(q);
        arena->weight_rows.push_back(queries[q].weights);
        ++j;
      }
      const bool first_touch = arena->visit_stamp[page] != arena->serial;
      if (first_touch) {
        bool resident = true;
        Status read = TreeReadPage(tree, page, &resident);
        if (read.ok() && tree.arena_backed()) {
          ++(resident ? stats->prefetch_hits : stats->prefetch_misses);
        }
        if (!read.ok()) {
          // Degrade exactly the queries demanding this page; the rest
          // of the group keeps running (their pages fetch
          // independently, and this page stays unstamped so a later
          // demand retries the device). Without a per-query status
          // sink the whole call fails — the all-or-nothing contract
          // callers relied on before faults existed.
          ++stats->read_faults;
          if (statuses == nullptr) return read;
          for (size_t r = i; r < j; ++r) {
            const uint32_t q = arena->demands[r].query;
            arena->active[q] = 0;
            --remaining;
            (*statuses)[q] = read;
            TopKResult& o = (*out)[q];
            o.result.clear();
            o.scores.clear();
            o.encountered.clear();
            o.pending.clear();
            o.io = IoStats{};
          }
          i = j;
          continue;
        }
        arena->visit_stamp[page] = arena->serial;
        ++stats->unique_reads;
      }
      FlatRTree::NodeView node = tree.PeekNode(page);
      const size_t run = arena->run_queries.size();
      ComputeEntryScoresMulti(scoring, node, arena->weight_rows.data(), run,
                              &arena->scores);
      const size_t count = node.count();
      const bool leaf = node.is_leaf();
      for (size_t r = 0; r < run; ++r) {
        const uint32_t q = arena->run_queries[r];
        BrsFrontierArena::QuerySlot& qs = arena->queries[q];
        // Pop the demanded node (it is still this query's heap top).
        std::pop_heap(qs.heap.begin(), qs.heap.end(), less);
        qs.heap.pop_back();
        ++arena->charged[q];
        const double* row = arena->scores.scores.data() + r * count;
        for (size_t e = 0; e < count; ++e) {
          MultiHeapEntry he;
          he.key = row[e];
          he.is_node = !leaf;
          he.id = node.child(e);
          he.parent = page;
          he.slot = static_cast<uint32_t>(e);
          qs.heap.push_back(he);
          std::push_heap(qs.heap.begin(), qs.heap.end(), less);
          if (leaf) qs.fetched.push_back(node.child(e));
        }
      }
      stats->node_expansions += run;
      stats->charged_reads += run;
      i = j;
    }
  }
  return Status::Ok();
}

Result<TopKResult> RunBrs(const RTree& tree, const ScoringFunction& scoring,
                          VecView weights, size_t k) {
  return RunBrsImpl(tree, scoring, weights, k);
}

Result<TopKResult> RunBrs(const FlatRTree& tree,
                          const ScoringFunction& scoring, VecView weights,
                          size_t k) {
  return RunBrsImpl(tree, scoring, weights, k);
}

}  // namespace gir
