#include "topk/tree_kernels.h"

#include "common/simd.h"

namespace gir {

void ComputeEntryScores(const ScoringFunction& scoring, const Dataset& data,
                        const RTreeNode& node, VecView weights,
                        ScoreBuffer* buf) {
  const size_t n = node.entries.size();
  buf->scores.resize(n);
  if (node.is_leaf) {
    for (size_t e = 0; e < n; ++e) {
      buf->scores[e] = scoring.Score(data.Get(node.entries[e].child), weights);
    }
  } else {
    for (size_t e = 0; e < n; ++e) {
      buf->scores[e] = scoring.MaxScore(node.entries[e].mbb, weights);
    }
  }
}

void ComputeEntryScores(const ScoringFunction& scoring, const Dataset& data,
                        const FlatRTree::NodeView& node, VecView weights,
                        ScoreBuffer* buf) {
  (void)data;
  const size_t n = node.count();
  buf->scores.assign(n, 0.0);
  double* out = buf->scores.data();
  const bool identity = scoring.IsIdentityTransform();
  if (!identity) buf->scratch.resize(n);
  for (size_t j = 0; j < weights.size(); ++j) {
    const double wj = weights[j];
    const double* hi = node.hi(j);
    if (identity) {
      simd::Axpy(wj, hi, out, n);
    } else {
      scoring.TransformDimBatch(j, hi, n, buf->scratch.data());
      simd::Axpy(wj, buf->scratch.data(), out, n);
    }
  }
}

void ComputeEntryScoresMulti(const ScoringFunction& scoring,
                             const FlatRTree::NodeView& node,
                             const VecView* weights, size_t m,
                             MultiScoreBuffer* buf) {
  const size_t n = node.count();
  const size_t dim = scoring.dim();
  buf->scores.assign(m * n, 0.0);
  if (buf->wgather.size() < m) buf->wgather.resize(m);
  const bool identity = scoring.IsIdentityTransform();
  if (!identity && buf->scratch.size() < n) buf->scratch.resize(n);
  for (size_t j = 0; j < dim; ++j) {
    const double* hi = node.hi(j);
    const double* src = hi;
    if (!identity) {
      // One transform of the plane serves every query in the group.
      scoring.TransformDimBatch(j, hi, n, buf->scratch.data());
      src = buf->scratch.data();
    }
    for (size_t r = 0; r < m; ++r) buf->wgather[r] = weights[r][j];
    simd::MaxDotPlaneMulti(buf->wgather.data(), m, src, buf->scores.data(),
                           n, n);
  }
}

}  // namespace gir
