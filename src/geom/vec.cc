#include "geom/vec.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace gir {

double Dot(VecView a, VecView b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

Vec Sub(VecView a, VecView b) {
  assert(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec Add(VecView a, VecView b) {
  assert(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec Scale(VecView a, double s) {
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

Vec AddScaled(VecView a, VecView b, double s) {
  assert(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

double NormSquared(VecView a) { return Dot(a, a); }

double Norm(VecView a) { return std::sqrt(NormSquared(a)); }

bool NormalizeInPlace(Vec& a, double min_norm) {
  double n = Norm(a);
  if (n < min_norm) return false;
  for (double& x : a) x /= n;
  return true;
}

double LInfDistance(VecView a, VecView b) {
  assert(a.size() == b.size());
  double best = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    best = std::max(best, std::fabs(a[i] - b[i]));
  }
  return best;
}

std::string ToString(VecView a) {
  std::string out = "(";
  char buf[32];
  for (size_t i = 0; i < a.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.6g", a[i]);
    if (i > 0) out += ", ";
    out += buf;
  }
  out += ")";
  return out;
}

}  // namespace gir
