#include "geom/volume.h"

#include <algorithm>

namespace gir {

namespace {

bool SatisfiesAll(const std::vector<Halfspace>& ge, VecView x) {
  for (const Halfspace& h : ge) {
    if (Dot(h.normal, x) < h.offset) return false;
  }
  return true;
}

}  // namespace

double MonteCarloCubeFraction(const std::vector<Halfspace>& ge, size_t dim,
                              uint64_t samples, Rng& rng) {
  uint64_t hits = 0;
  Vec x(dim);
  for (uint64_t s = 0; s < samples; ++s) {
    for (size_t j = 0; j < dim; ++j) x[j] = rng.Uniform();
    if (SatisfiesAll(ge, x)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

double MonteCarloVolumeInBox(const std::vector<Halfspace>& ge, VecView box_lo,
                             VecView box_hi, uint64_t samples, Rng& rng) {
  const size_t dim = box_lo.size();
  double box_volume = 1.0;
  for (size_t j = 0; j < dim; ++j) {
    box_volume *= std::max(0.0, box_hi[j] - box_lo[j]);
  }
  if (box_volume <= 0.0) return 0.0;
  uint64_t hits = 0;
  Vec x(dim);
  for (uint64_t s = 0; s < samples; ++s) {
    for (size_t j = 0; j < dim; ++j) {
      x[j] = rng.Uniform(box_lo[j], box_hi[j]);
    }
    if (SatisfiesAll(ge, x)) ++hits;
  }
  return box_volume * static_cast<double>(hits) /
         static_cast<double>(samples);
}

bool BoundingBox(const Polytope& polytope, Vec* lo, Vec* hi) {
  if (polytope.empty()) return false;
  const size_t d = polytope.dim();
  lo->assign(d, 1e300);
  hi->assign(d, -1e300);
  for (const Vec& v : polytope.vertices()) {
    for (size_t j = 0; j < d; ++j) {
      (*lo)[j] = std::min((*lo)[j], v[j]);
      (*hi)[j] = std::max((*hi)[j], v[j]);
    }
  }
  return true;
}

}  // namespace gir
