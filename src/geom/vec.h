#ifndef GIR_GEOM_VEC_H_
#define GIR_GEOM_VEC_H_

#include <cstddef>
#include <string>
#include <vector>

namespace gir {

// Dense d-dimensional point/vector. Dimensionality in this library is a
// runtime parameter (the paper evaluates d in [2, 8]), so points are
// heap vectors; hot loops take lightweight views to avoid copies.
using Vec = std::vector<double>;

// Read-only view over contiguous doubles — the subset of std::span the
// library needs, kept hand-rolled so the build stays C++17.
class VecView {
 public:
  using value_type = double;
  using iterator = const double*;
  using const_iterator = const double*;

  constexpr VecView() = default;
  constexpr VecView(const double* data, size_t size)
      : data_(data), size_(size) {}
  // Implicit, mirroring std::span's container constructor.
  VecView(const Vec& v) : data_(v.data()), size_(v.size()) {}

  constexpr const double* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr const double& operator[](size_t i) const { return data_[i]; }
  constexpr const double* begin() const { return data_; }
  constexpr const double* end() const { return data_ + size_; }
  constexpr const double& front() const { return data_[0]; }
  constexpr const double& back() const { return data_[size_ - 1]; }

 private:
  const double* data_ = nullptr;
  size_t size_ = 0;
};

// Dot product. Spans must have equal length.
double Dot(VecView a, VecView b);

// Elementwise a - b.
Vec Sub(VecView a, VecView b);

// Elementwise a + b.
Vec Add(VecView a, VecView b);

// s * a.
Vec Scale(VecView a, double s);

// a + s * b, the fused update used by hull/LP pivoting.
Vec AddScaled(VecView a, VecView b, double s);

// Euclidean norm and squared norm.
double Norm(VecView a);
double NormSquared(VecView a);

// Normalizes in place; returns false (leaving `a` untouched) when the
// norm underflows the given floor.
bool NormalizeInPlace(Vec& a, double min_norm = 1e-300);

// L-infinity distance between two points.
double LInfDistance(VecView a, VecView b);

// "(x1, x2, ..)" with %.6g formatting, for logs and test messages.
std::string ToString(VecView a);

}  // namespace gir

#endif  // GIR_GEOM_VEC_H_
