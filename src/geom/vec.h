#ifndef GIR_GEOM_VEC_H_
#define GIR_GEOM_VEC_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace gir {

// Dense d-dimensional point/vector. Dimensionality in this library is a
// runtime parameter (the paper evaluates d in [2, 8]), so points are
// heap vectors; hot loops take std::span views to avoid copies.
using Vec = std::vector<double>;
using VecView = std::span<const double>;

// Dot product. Spans must have equal length.
double Dot(VecView a, VecView b);

// Elementwise a - b.
Vec Sub(VecView a, VecView b);

// Elementwise a + b.
Vec Add(VecView a, VecView b);

// s * a.
Vec Scale(VecView a, double s);

// a + s * b, the fused update used by hull/LP pivoting.
Vec AddScaled(VecView a, VecView b, double s);

// Euclidean norm and squared norm.
double Norm(VecView a);
double NormSquared(VecView a);

// Normalizes in place; returns false (leaving `a` untouched) when the
// norm underflows the given floor.
bool NormalizeInPlace(Vec& a, double min_norm = 1e-300);

// L-infinity distance between two points.
double LInfDistance(VecView a, VecView b);

// "(x1, x2, ..)" with %.6g formatting, for logs and test messages.
std::string ToString(VecView a);

}  // namespace gir

#endif  // GIR_GEOM_VEC_H_
