#include "geom/halfspace_intersection.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "geom/convex_hull.h"
#include "geom/lp.h"

namespace gir {

namespace {

// Rounds a normalized constraint for exact-duplicate detection. Two
// constraints that agree to ~1e-12 after normalization describe the
// same half-space for our purposes.
std::vector<int64_t> DedupKey(const Vec& normal, double offset) {
  std::vector<int64_t> key;
  key.reserve(normal.size() + 1);
  for (double x : normal) {
    key.push_back(static_cast<int64_t>(std::llround(x * 1e12)));
  }
  key.push_back(static_cast<int64_t>(std::llround(offset * 1e12)));
  return key;
}

}  // namespace

Result<IntersectionResult> IntersectHalfspaces(
    const std::vector<Halfspace>& ge, VecView interior_hint,
    const IntersectionOptions& options) {
  if (ge.empty() && !options.clip_to_unit_cube) {
    return Status::InvalidArgument("no half-spaces and no cube");
  }
  const size_t d = ge.empty() ? interior_hint.size() : ge[0].normal.size();
  if (d < 2) return Status::InvalidArgument("dimension must be >= 2");

  // 1. Assemble the working set: normalized unique constraints, with a
  // map back to input indices (cube constraints map to -1).
  std::vector<Halfspace> work;
  std::vector<int> source;
  std::map<std::vector<int64_t>, size_t> seen;
  auto add = [&](Vec normal, double offset, int source_index) {
    double n = Norm(normal);
    if (n < 1e-300) return;  // vacuous or infeasible-constant: skip
    for (double& x : normal) x /= n;
    offset /= n;
    auto key = DedupKey(normal, offset);
    auto it = seen.find(key);
    if (it != seen.end()) {
      // Keep the first provenance; duplicates are interchangeable.
      return;
    }
    seen.emplace(std::move(key), work.size());
    work.push_back(Halfspace{std::move(normal), offset});
    source.push_back(source_index);
  };
  for (size_t i = 0; i < ge.size(); ++i) {
    add(ge[i].normal, ge[i].offset, static_cast<int>(i));
  }
  if (options.clip_to_unit_cube) {
    for (size_t j = 0; j < d; ++j) {
      Vec up(d, 0.0);
      up[j] = 1.0;
      add(up, 0.0, -1);  // x_j >= 0
      Vec down(d, 0.0);
      down[j] = -1.0;
      add(down, -1.0, -1);  // -x_j >= -1  <=>  x_j <= 1
    }
  }

  IntersectionResult out;
  out.polytope = Polytope::Empty(d);

  // 2. Interior point: the caller's hint if strictly feasible, else the
  // warm-start point from a previous intersection of a related system
  // (held to the same clearance bar as a hint — a nearly-degenerate
  // centre would blow up the dual points — and replaced by one
  // Chebyshev LP when the new constraints cut it off).
  auto strictly_inside = [&](VecView p) {
    if (p.size() != d) return false;
    for (const Halfspace& h : work) {
      if (Dot(h.normal, p) - h.offset <= options.hint_margin) return false;
    }
    return true;
  };
  Vec center;
  if (strictly_inside(interior_hint)) {
    center.assign(interior_hint.begin(), interior_hint.end());
  } else {
    if (strictly_inside(options.warm_start)) center = options.warm_start;
    Result<bool> feasible = RefreshFeasiblePoint(
        work, options.clip_to_unit_cube ? 0.0 : -1e9,
        options.clip_to_unit_cube ? 1.0 : 1e9, /*margin=*/1e-12, &center);
    if (!feasible.ok()) return feasible.status();
    if (!*feasible) {
      return out;  // empty (or measure-zero) intersection
    }
  }

  // 3. Dual points: constraint n·x >= c  ==  a·x <= b with a=-n, b=-c;
  // after translating by the centre, b' = b - a·center > 0 and the dual
  // point is a / b'.
  std::vector<Vec> duals;
  duals.reserve(work.size());
  for (const Halfspace& h : work) {
    double margin = Dot(h.normal, center) - h.offset;  // == b'
    if (margin <= 1e-13) {
      // The centre is (numerically) on this constraint: treat the
      // region as lower-dimensional.
      return out;
    }
    Vec dual(d);
    for (size_t j = 0; j < d; ++j) dual[j] = -h.normal[j] / margin;
    duals.push_back(std::move(dual));
  }

  // 4. Convex hull of the dual points.
  Result<ConvexHull> hull = ConvexHull::Build(duals);
  if (!hull.ok()) {
    // Lower-dimensional dual point set means the primal region is
    // unbounded or degenerate; with the cube clip this is numerical
    // degeneracy — report an empty polytope rather than failing.
    if (hull.status().code() == StatusCode::kFailedPrecondition) return out;
    return hull.status();
  }

  // 5. Primal vertices from dual facets: facet {y : m·y = o} with o > 0
  // maps to vertex m/o + center.
  std::vector<Vec> vertices;
  for (const HullFacet& f : hull->facets()) {
    double o = f.plane.offset;
    if (o <= 1e-13) {
      // Origin on a dual facet: unbounded primal direction. Cannot
      // happen with the cube clip except through numerics.
      continue;
    }
    Vec v(d);
    for (size_t j = 0; j < d; ++j) v[j] = f.plane.normal[j] / o + center[j];
    bool duplicate = false;
    for (const Vec& u : vertices) {
      if (LInfDistance(u, v) < 1e-9) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) vertices.push_back(std::move(v));
  }

  // 6. Facets of the primal polytope = non-redundant constraints =
  // constraints whose dual point is a hull vertex.
  std::vector<Hyperplane> facets;
  for (int dual_id : hull->vertex_indices()) {
    const Halfspace& h = work[dual_id];
    Hyperplane plane;
    plane.normal = Scale(h.normal, -1.0);
    plane.offset = -h.offset;
    facets.push_back(std::move(plane));
    if (source[dual_id] >= 0) out.nonredundant.push_back(source[dual_id]);
  }
  std::sort(out.nonredundant.begin(), out.nonredundant.end());
  out.polytope = Polytope::FromData(d, std::move(vertices), std::move(facets));
  out.interior = std::move(center);
  return out;
}

}  // namespace gir
