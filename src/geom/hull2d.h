#ifndef GIR_GEOM_HULL2D_H_
#define GIR_GEOM_HULL2D_H_

#include <vector>

#include "geom/vec.h"

namespace gir {

// Returns the indices of the convex hull of 2-D `points` in
// counter-clockwise order, starting from the lexicographically smallest
// point (Andrew's monotone chain). Collinear points on the boundary are
// excluded. Duplicates are tolerated. Returns all distinct points when
// there are fewer than three of them.
std::vector<int> ConvexHull2D(const std::vector<Vec>& points);

// Twice the signed area of triangle (a, b, c); positive when the turn
// a->b->c is counter-clockwise.
double Cross2D(VecView a, VecView b, VecView c);

}  // namespace gir

#endif  // GIR_GEOM_HULL2D_H_
