#ifndef GIR_GEOM_POLYTOPE_H_
#define GIR_GEOM_POLYTOPE_H_

#include <vector>

#include "common/result.h"
#include "geom/hyperplane.h"
#include "geom/vec.h"

namespace gir {

// A bounded convex polytope in vertex + facet representation.
// Facet hyperplanes are oriented outward: x is inside iff
// Evaluate(x) <= eps for every facet.
class Polytope {
 public:
  static Polytope Empty(size_t dim) {
    Polytope p;
    p.dim_ = dim;
    return p;
  }
  static Polytope FromData(size_t dim, std::vector<Vec> vertices,
                           std::vector<Hyperplane> facets) {
    Polytope p;
    p.dim_ = dim;
    p.vertices_ = std::move(vertices);
    p.facets_ = std::move(facets);
    return p;
  }

  size_t dim() const { return dim_; }
  bool empty() const { return vertices_.empty(); }
  const std::vector<Vec>& vertices() const { return vertices_; }
  const std::vector<Hyperplane>& facets() const { return facets_; }

  bool Contains(VecView x, double eps = 1e-9) const;

  // Exact d-volume by convex-hull fan decomposition of the vertices.
  // Returns 0 for empty or lower-dimensional polytopes.
  double Volume() const;

  // Vertex centroid (undefined for empty polytopes).
  Vec Centroid() const;

 private:
  size_t dim_ = 0;
  std::vector<Vec> vertices_;
  std::vector<Hyperplane> facets_;
};

}  // namespace gir

#endif  // GIR_GEOM_POLYTOPE_H_
