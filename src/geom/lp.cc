#include "geom/lp.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

namespace gir {

namespace {

constexpr double kPivotEps = 1e-11;
constexpr double kRatioTieEps = 1e-15;
constexpr double kDualFeasEps = 1e-11;

}  // namespace

// Pivot on (row, col): make column `col` the basic column of `row`.
void LpWorkspace::Pivot(size_t row, size_t col) {
  const size_t stride = cols_ + 1;
  double p = At(row, col);
  assert(std::fabs(p) > 0);
  double* prow = data_.data() + row * stride;
  for (size_t c = 0; c < stride; ++c) prow[c] /= p;
  for (size_t r = 0; r < m_; ++r) {
    if (r == row) continue;
    double f = At(r, col);
    if (f == 0.0) continue;
    double* rrow = data_.data() + r * stride;
    for (size_t c = 0; c < stride; ++c) rrow[c] -= f * prow[c];
  }
}

// Primal simplex on the current tableau maximizing the objective whose
// reduced-cost row is z_ (maintained here), with Bland's rule. Columns
// >= usable_cols (the artificial block) never enter.
LpStatus LpWorkspace::RunPrimal(int max_iterations, size_t usable_cols) {
  for (int iter = 0; iter < max_iterations; ++iter) {
    // Bland: entering column = smallest index with positive reduced cost.
    size_t enter = usable_cols;
    for (size_t c = 0; c < usable_cols; ++c) {
      if (z_[c] > kPivotEps) {
        enter = c;
        break;
      }
    }
    if (enter == usable_cols) return LpStatus::kOptimal;
    // Ratio test; Bland ties broken by smallest basic column index.
    size_t leave = m_;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (size_t r = 0; r < m_; ++r) {
      double a = At(r, enter);
      if (a > kPivotEps) {
        double ratio = Rhs(r) / a;
        if (ratio < best_ratio - kRatioTieEps ||
            (std::fabs(ratio - best_ratio) <= kRatioTieEps &&
             (leave == m_ || basis_[r] < basis_[leave]))) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == m_) return LpStatus::kUnbounded;
    Pivot(leave, enter);
    // Update the reduced-cost row.
    double f = z_[enter];
    for (size_t c = 0; c < z_.size(); ++c) z_[c] -= f * At(leave, c);
    z_rhs_ -= f * Rhs(leave);
    basis_[leave] = enter;
  }
  return LpStatus::kIterationLimit;
}

// Dual simplex from a dual-feasible (z_ <= ~0) basis: restores primal
// feasibility after AddConstraint introduced a negative rhs. Bland-style
// selection on both the leaving row and the entering column.
LpStatus LpWorkspace::RunDual(int max_iterations, size_t usable_cols) {
  for (int iter = 0; iter < max_iterations; ++iter) {
    size_t leave = m_;
    for (size_t r = 0; r < m_; ++r) {
      if (Rhs(r) < -kDualFeasEps) {
        leave = r;
        break;
      }
    }
    if (leave == m_) return LpStatus::kOptimal;
    size_t enter = usable_cols;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < usable_cols; ++c) {
      double a = At(leave, c);
      if (a < -kPivotEps) {
        double ratio = z_[c] / a;  // z_ <= ~0, a < 0  =>  ratio >= ~0
        if (ratio < best_ratio - kRatioTieEps ||
            (std::fabs(ratio - best_ratio) <= kRatioTieEps &&
             c < enter)) {
          best_ratio = ratio;
          enter = c;
        }
      }
    }
    if (enter == usable_cols) return LpStatus::kInfeasible;
    Pivot(leave, enter);
    double f = z_[enter];
    for (size_t c = 0; c < z_.size(); ++c) z_[c] -= f * At(leave, c);
    z_rhs_ -= f * Rhs(leave);
    basis_[leave] = enter;
  }
  return LpStatus::kIterationLimit;
}

LpStatus LpWorkspace::Prepare(const double* a, const double* b, size_t m,
                              size_t n, int max_iterations) {
  m_ = m;
  n_ = n;
  feasible_ = false;
  optimal_ = false;

  // Columns: u (n), v (n), slack (m), artificial (m at most, last).
  // Row i:  a_i·u - a_i·v + s_i = b_i  (row negated when b_i < 0, which
  // turns s_i's coefficient to -1 and requires an artificial).
  GrowTo(&negated_, m);
  num_art_ = 0;
  for (size_t i = 0; i < m; ++i) {
    negated_[i] = b[i] < 0 ? 1 : 0;
    num_art_ += negated_[i];
  }
  cols_ = 2 * n + m + num_art_;
  const size_t stride = cols_ + 1;
  GrowTo(&data_, m * stride);
  std::fill(data_.begin(), data_.begin() + m * stride, 0.0);
  GrowTo(&basis_, m);
  size_t art_next = 2 * n + m;
  for (size_t i = 0; i < m; ++i) {
    double sign = negated_[i] ? -1.0 : 1.0;
    const double* row = a + i * n;
    for (size_t j = 0; j < n; ++j) {
      At(i, j) = sign * row[j];
      At(i, n + j) = -sign * row[j];
    }
    At(i, 2 * n + i) = sign;  // slack
    Rhs(i) = sign * b[i];
    if (negated_[i]) {
      At(i, art_next) = 1.0;
      basis_[i] = art_next;
      ++art_next;
    } else {
      basis_[i] = 2 * n + i;
    }
  }

  // Phase 1: maximize -(sum of artificials). Reduced costs start as the
  // sum of the artificial rows (since artificials are basic).
  if (num_art_ > 0) {
    GrowTo(&z_, cols_);
    std::fill(z_.begin(), z_.end(), 0.0);
    z_rhs_ = 0.0;
    for (size_t i = 0; i < m; ++i) {
      if (basis_[i] >= 2 * n + m) {
        for (size_t c = 0; c < cols_; ++c) z_[c] += At(i, c);
        z_rhs_ += Rhs(i);
      }
    }
    // Artificial columns must not re-enter.
    for (size_t c = 2 * n + m; c < cols_; ++c) z_[c] = 0.0;
    LpStatus s = RunPrimal(max_iterations, 2 * n + m);
    if (s == LpStatus::kIterationLimit) return s;
    if (z_rhs_ > 1e-7) return LpStatus::kInfeasible;
    // Drive any degenerate artificial out of the basis if possible.
    for (size_t r = 0; r < m; ++r) {
      if (basis_[r] >= 2 * n + m) {
        for (size_t c = 0; c < 2 * n + m; ++c) {
          if (std::fabs(At(r, c)) > kPivotEps) {
            Pivot(r, c);
            basis_[r] = c;
            break;
          }
        }
        // A row that stays artificial-basic with zero rhs is redundant;
        // it simply never pivots again.
      }
    }
  }
  feasible_ = true;
  return LpStatus::kOptimal;
}

// Reduced costs of objective `c` relative to the current basis:
// z = c_col - c_B * B^{-1} A (computed by eliminating basic columns).
void LpWorkspace::BuildReducedCosts(const double* c) {
  GrowTo(&z_, cols_);
  std::fill(z_.begin(), z_.end(), 0.0);
  for (size_t j = 0; j < n_; ++j) {
    z_[j] = c[j];
    z_[n_ + j] = -c[j];
  }
  z_rhs_ = 0.0;
  for (size_t r = 0; r < m_; ++r) {
    size_t bcol = basis_[r];
    double f = z_[bcol];
    if (f == 0.0) continue;
    for (size_t col = 0; col < cols_; ++col) z_[col] -= f * At(r, col);
    z_rhs_ -= f * Rhs(r);
  }
  for (size_t col = 2 * n_ + m_; col < cols_; ++col) z_[col] = -1.0;
}

void LpWorkspace::ExtractSolution(const double* c) {
  // Split-variable recombination, kept identical to the historical
  // allocating solver (u and v materialized, then subtracted).
  static thread_local Vec u, v;
  u.assign(n_, 0.0);
  v.assign(n_, 0.0);
  for (size_t r = 0; r < m_; ++r) {
    if (basis_[r] < n_) {
      u[basis_[r]] = Rhs(r);
    } else if (basis_[r] < 2 * n_) {
      v[basis_[r] - n_] = Rhs(r);
    }
  }
  GrowTo(&x_, n_);
  for (size_t j = 0; j < n_; ++j) x_[j] = u[j] - v[j];
  objective_ = Dot(VecView(c, n_), x_);
}

LpStatus LpWorkspace::Maximize(const double* c, int max_iterations) {
  if (!feasible_) return LpStatus::kInfeasible;
  optimal_ = false;
  GrowTo(&c_, n_);
  if (c_.data() != c) std::memcpy(c_.data(), c, n_ * sizeof(double));
  BuildReducedCosts(c_.data());
  LpStatus s = RunPrimal(max_iterations, 2 * n_ + m_);
  if (s != LpStatus::kOptimal) return s;
  ExtractSolution(c_.data());
  optimal_ = true;
  return s;
}

LpStatus LpWorkspace::AddConstraint(const double* a_row, double b_new,
                                    int max_iterations) {
  if (!feasible_ || !optimal_) return LpStatus::kIterationLimit;
  optimal_ = false;

  // Re-layout: one more row, and one more column — the new slack —
  // inserted at index 2n+m (before the artificial block, so entering
  // candidates stay a prefix). Rows move back to front so the wider
  // stride never overwrites unread data.
  const size_t old_m = m_;
  const size_t old_cols = cols_;
  const size_t old_stride = old_cols + 1;
  const size_t slack_insert = 2 * n_ + old_m;
  const size_t new_cols = old_cols + 1;
  const size_t new_stride = new_cols + 1;
  GrowTo(&data_, (old_m + 1) * new_stride);
  for (size_t r = old_m; r-- > 0;) {
    const double* src = data_.data() + r * old_stride;
    double* dst = data_.data() + r * new_stride;
    dst[new_cols] = src[old_cols];  // rhs
    for (size_t c = old_cols; c-- > slack_insert;) dst[c + 1] = src[c];
    dst[slack_insert] = 0.0;
    if (dst != src) {
      std::memmove(dst, src, slack_insert * sizeof(double));
    }
  }
  GrowTo(&z_, new_cols);
  std::memmove(z_.data() + slack_insert + 1, z_.data() + slack_insert,
               (old_cols - slack_insert) * sizeof(double));
  z_[slack_insert] = 0.0;
  GrowTo(&basis_, old_m + 1);
  for (size_t r = 0; r < old_m; ++r) {
    if (basis_[r] >= slack_insert) ++basis_[r];
  }
  m_ = old_m + 1;
  cols_ = new_cols;

  // New row in original variables: a·u - a·v + s_new = b, then reduced
  // against the current basis (eliminate every basic column).
  double* row = data_.data() + old_m * new_stride;
  std::fill(row, row + new_stride, 0.0);
  for (size_t j = 0; j < n_; ++j) {
    row[j] = a_row[j];
    row[n_ + j] = -a_row[j];
  }
  row[slack_insert] = 1.0;
  row[new_cols] = b_new;
  for (size_t r = 0; r < old_m; ++r) {
    double f = row[basis_[r]];
    if (f == 0.0) continue;
    const double* brow = data_.data() + r * new_stride;
    for (size_t c = 0; c < new_stride; ++c) row[c] -= f * brow[c];
  }
  basis_[old_m] = slack_insert;

  // A non-negative reduced rhs means the old optimum survives the cut:
  // basis unchanged, objective unchanged, no pivots.
  if (Rhs(old_m) >= 0.0) {
    optimal_ = true;
    return LpStatus::kOptimal;
  }
  LpStatus s = RunDual(max_iterations, 2 * n_ + m_);
  if (s != LpStatus::kOptimal) {
    // The tableau is primal-infeasible (the cut emptied the region, or
    // the dual pass ran out of iterations); a later Maximize must not
    // run primal simplex from it and report a bogus optimum.
    feasible_ = false;
    return s;
  }
  ExtractSolution(c_.data());
  optimal_ = true;
  return s;
}

LpSolution SolveLpWith(LpWorkspace* workspace, const LpProblem& problem,
                       int max_iterations) {
  const size_t m = problem.a.size();
  const size_t n = problem.c.size();
  LpSolution out;
  workspace->GrowTo(&workspace->a_scratch_, m * n);
  for (size_t i = 0; i < m; ++i) {
    std::memcpy(workspace->a_scratch_.data() + i * n, problem.a[i].data(),
                n * sizeof(double));
  }
  LpStatus s = workspace->Prepare(workspace->a_scratch_.data(),
                                  problem.b.data(), m, n, max_iterations);
  if (s != LpStatus::kOptimal) {
    out.status = s;
    return out;
  }
  s = workspace->Maximize(problem.c.data(), max_iterations);
  out.status = s;
  if (s != LpStatus::kOptimal) return out;
  out.x = workspace->x();
  out.objective = workspace->objective();
  return out;
}

LpSolution SolveLp(const LpProblem& problem, int max_iterations) {
  static thread_local LpWorkspace workspace;
  return SolveLpWith(&workspace, problem, max_iterations);
}

void SolveLpBatch(const double* a, const double* b, size_t m, size_t n,
                  const double* objectives, size_t count,
                  LpWorkspace* workspace, LpBatchItem* out,
                  int max_iterations) {
  LpStatus s = workspace->Prepare(a, b, m, n, max_iterations);
  if (s != LpStatus::kOptimal) {
    for (size_t t = 0; t < count; ++t) out[t] = LpBatchItem{s, 0.0};
    return;
  }
  for (size_t t = 0; t < count; ++t) {
    LpStatus ms = workspace->Maximize(objectives + t * n, max_iterations);
    out[t].status = ms;
    out[t].objective = ms == LpStatus::kOptimal ? workspace->objective() : 0.0;
  }
}

Result<ChebyshevResult> ChebyshevCenter(const std::vector<Halfspace>& ge,
                                        double lo, double hi) {
  if (ge.empty()) return Status::InvalidArgument("no half-spaces");
  const size_t d = ge[0].normal.size();
  // Variables: (x_1..x_d, r). maximize r subject to
  //   -n_i·x + ||n_i|| r <= -offset_i   (from n_i·x - ||n_i|| r >= offset_i)
  //    x_j + r <= hi,  -x_j + r <= -lo  (ball inside the box)
  LpProblem lp;
  lp.c.assign(d + 1, 0.0);
  lp.c[d] = 1.0;
  for (const Halfspace& h : ge) {
    Vec row(d + 1, 0.0);
    for (size_t j = 0; j < d; ++j) row[j] = -h.normal[j];
    row[d] = Norm(h.normal);
    lp.a.push_back(std::move(row));
    lp.b.push_back(-h.offset);
  }
  for (size_t j = 0; j < d; ++j) {
    Vec row1(d + 1, 0.0);
    row1[j] = 1.0;
    row1[d] = 1.0;
    lp.a.push_back(std::move(row1));
    lp.b.push_back(hi);
    Vec row2(d + 1, 0.0);
    row2[j] = -1.0;
    row2[d] = 1.0;
    lp.a.push_back(std::move(row2));
    lp.b.push_back(-lo);
  }
  // r >= 0 is not enforced: a negative optimum signals emptiness.
  LpSolution sol = SolveLp(lp);
  if (sol.status == LpStatus::kInfeasible) {
    return ChebyshevResult{Vec(d, 0.0), -1.0};
  }
  if (sol.status != LpStatus::kOptimal) {
    return Status::Internal("Chebyshev LP did not converge");
  }
  ChebyshevResult r;
  r.center.assign(sol.x.begin(), sol.x.begin() + d);
  r.radius = sol.x[d];
  return r;
}

bool IsStrictlyFeasible(const std::vector<Halfspace>& ge, double lo,
                        double hi, double margin) {
  Result<ChebyshevResult> c = ChebyshevCenter(ge, lo, hi);
  return c.ok() && c->radius > margin;
}

Result<bool> RefreshFeasiblePoint(const std::vector<Halfspace>& ge, double lo,
                                  double hi, double margin, Vec* point) {
  if (ge.empty()) return Status::InvalidArgument("no half-spaces");
  const size_t d = ge[0].normal.size();
  if (point->size() == d) {
    bool ok = true;
    for (size_t j = 0; j < d; ++j) {
      if ((*point)[j] <= lo + margin || (*point)[j] >= hi - margin) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (const Halfspace& h : ge) {
        // Margin is measured like the Chebyshev radius: relative to the
        // normal's length.
        if (Dot(h.normal, *point) - h.offset <= margin * Norm(h.normal)) {
          ok = false;
          break;
        }
      }
    }
    if (ok) return true;  // warm start survives the new constraints
  }
  Result<ChebyshevResult> c = ChebyshevCenter(ge, lo, hi);
  if (!c.ok()) return c.status();
  if (c->radius <= margin) return false;
  *point = std::move(c->center);
  return true;
}

}  // namespace gir
