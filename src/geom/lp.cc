#include "geom/lp.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace gir {

namespace {

constexpr double kPivotEps = 1e-11;

// Dense tableau for the standard-form program
//   maximize c'·y  s.t.  T y = rhs, y >= 0
// produced from the caller's free-variable <= form by variable splitting
// (x = u - v) and slack insertion.
class Tableau {
 public:
  Tableau(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * (cols + 1), 0.0) {}

  double& At(size_t r, size_t c) { return data_[r * (cols_ + 1) + c]; }
  double& Rhs(size_t r) { return data_[r * (cols_ + 1) + cols_]; }

  // Pivot on (row, col): make column `col` the basic column of `row`.
  void Pivot(size_t row, size_t col) {
    double p = At(row, col);
    assert(std::fabs(p) > 0);
    for (size_t c = 0; c <= cols_; ++c) data_[row * (cols_ + 1) + c] /= p;
    for (size_t r = 0; r < rows_; ++r) {
      if (r == row) continue;
      double f = At(r, col);
      if (f == 0.0) continue;
      for (size_t c = 0; c <= cols_; ++c) {
        data_[r * (cols_ + 1) + c] -= f * data_[row * (cols_ + 1) + c];
      }
    }
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

// Runs simplex iterations on `t` maximizing the objective in
// `objective` (reduced-cost row maintained by the caller as row-vector
// `z`), with Bland's rule. Returns kOptimal/kUnbounded/kIterationLimit.
// `basis[r]` tracks the basic column of each row.
LpStatus RunSimplex(Tableau& t, std::vector<double>& z, double& z_rhs,
                    std::vector<size_t>& basis, int max_iterations,
                    size_t usable_cols) {
  for (int iter = 0; iter < max_iterations; ++iter) {
    // Bland: entering column = smallest index with positive reduced cost.
    size_t enter = usable_cols;
    for (size_t c = 0; c < usable_cols; ++c) {
      if (z[c] > kPivotEps) {
        enter = c;
        break;
      }
    }
    if (enter == usable_cols) return LpStatus::kOptimal;
    // Ratio test; Bland ties broken by smallest basic column index.
    size_t leave = t.rows();
    double best_ratio = std::numeric_limits<double>::infinity();
    for (size_t r = 0; r < t.rows(); ++r) {
      double a = t.At(r, enter);
      if (a > kPivotEps) {
        double ratio = t.Rhs(r) / a;
        if (ratio < best_ratio - 1e-15 ||
            (std::fabs(ratio - best_ratio) <= 1e-15 &&
             (leave == t.rows() || basis[r] < basis[leave]))) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == t.rows()) return LpStatus::kUnbounded;
    t.Pivot(leave, enter);
    // Update the reduced-cost row.
    double f = z[enter];
    for (size_t c = 0; c < z.size(); ++c) z[c] -= f * t.At(leave, c);
    z_rhs -= f * t.Rhs(leave);
    basis[leave] = enter;
  }
  return LpStatus::kIterationLimit;
}

}  // namespace

LpSolution SolveLp(const LpProblem& problem, int max_iterations) {
  const size_t m = problem.a.size();
  const size_t n = problem.c.size();
  LpSolution out;

  // Columns: u (n), v (n), slack (m), artificial (m at most).
  // Row i:  a_i·u - a_i·v + s_i = b_i  (row negated when b_i < 0, which
  // turns s_i's coefficient to -1 and requires an artificial).
  std::vector<bool> negated(m, false);
  size_t num_art = 0;
  for (size_t i = 0; i < m; ++i) {
    if (problem.b[i] < 0) {
      negated[i] = true;
      ++num_art;
    }
  }
  const size_t cols = 2 * n + m + num_art;
  Tableau t(m, cols);
  std::vector<size_t> basis(m);
  size_t art_next = 2 * n + m;
  for (size_t i = 0; i < m; ++i) {
    double sign = negated[i] ? -1.0 : 1.0;
    for (size_t j = 0; j < n; ++j) {
      t.At(i, j) = sign * problem.a[i][j];
      t.At(i, n + j) = -sign * problem.a[i][j];
    }
    t.At(i, 2 * n + i) = sign;  // slack
    t.Rhs(i) = sign * problem.b[i];
    if (negated[i]) {
      t.At(i, art_next) = 1.0;
      basis[i] = art_next;
      ++art_next;
    } else {
      basis[i] = 2 * n + i;
    }
  }

  // Phase 1: maximize -(sum of artificials). Reduced costs start as the
  // sum of the artificial rows (since artificials are basic).
  if (num_art > 0) {
    std::vector<double> z(cols, 0.0);
    double z_rhs = 0.0;
    for (size_t i = 0; i < m; ++i) {
      if (basis[i] >= 2 * n + m) {
        for (size_t c = 0; c < cols; ++c) z[c] += t.At(i, c);
        z_rhs += t.Rhs(i);
      }
    }
    // Artificial columns must not re-enter.
    for (size_t c = 2 * n + m; c < cols; ++c) z[c] = 0.0;
    LpStatus s =
        RunSimplex(t, z, z_rhs, basis, max_iterations, 2 * n + m);
    if (s == LpStatus::kIterationLimit) {
      out.status = s;
      return out;
    }
    if (z_rhs > 1e-7) {
      out.status = LpStatus::kInfeasible;
      return out;
    }
    // Drive any degenerate artificial out of the basis if possible.
    for (size_t r = 0; r < m; ++r) {
      if (basis[r] >= 2 * n + m) {
        for (size_t c = 0; c < 2 * n + m; ++c) {
          if (std::fabs(t.At(r, c)) > kPivotEps) {
            t.Pivot(r, c);
            basis[r] = c;
            break;
          }
        }
        // A row that stays artificial-basic with zero rhs is redundant;
        // it simply never pivots again.
      }
    }
  }

  // Phase 2: maximize c·x = c·u - c·v. Build reduced costs relative to
  // the current basis: z = c_col - c_B * B^{-1} A (computed by
  // eliminating basic columns).
  std::vector<double> z(cols, 0.0);
  for (size_t j = 0; j < n; ++j) {
    z[j] = problem.c[j];
    z[n + j] = -problem.c[j];
  }
  double z_rhs = 0.0;
  for (size_t r = 0; r < m; ++r) {
    size_t bcol = basis[r];
    double f = z[bcol];
    if (f == 0.0) continue;
    for (size_t c = 0; c < cols; ++c) z[c] -= f * t.At(r, c);
    z_rhs -= f * t.Rhs(r);
  }
  for (size_t c = 2 * n + m; c < cols; ++c) z[c] = -1.0;  // keep art out
  LpStatus s = RunSimplex(t, z, z_rhs, basis, max_iterations, 2 * n + m);
  out.status = s;
  if (s != LpStatus::kOptimal) return out;

  Vec u(n, 0.0);
  Vec v(n, 0.0);
  for (size_t r = 0; r < m; ++r) {
    if (basis[r] < n) {
      u[basis[r]] = t.Rhs(r);
    } else if (basis[r] < 2 * n) {
      v[basis[r] - n] = t.Rhs(r);
    }
  }
  out.x.resize(n);
  for (size_t j = 0; j < n; ++j) out.x[j] = u[j] - v[j];
  out.objective = Dot(problem.c, out.x);
  return out;
}

Result<ChebyshevResult> ChebyshevCenter(const std::vector<Halfspace>& ge,
                                        double lo, double hi) {
  if (ge.empty()) return Status::InvalidArgument("no half-spaces");
  const size_t d = ge[0].normal.size();
  // Variables: (x_1..x_d, r). maximize r subject to
  //   -n_i·x + ||n_i|| r <= -offset_i   (from n_i·x - ||n_i|| r >= offset_i)
  //    x_j + r <= hi,  -x_j + r <= -lo  (ball inside the box)
  LpProblem lp;
  lp.c.assign(d + 1, 0.0);
  lp.c[d] = 1.0;
  for (const Halfspace& h : ge) {
    Vec row(d + 1, 0.0);
    for (size_t j = 0; j < d; ++j) row[j] = -h.normal[j];
    row[d] = Norm(h.normal);
    lp.a.push_back(std::move(row));
    lp.b.push_back(-h.offset);
  }
  for (size_t j = 0; j < d; ++j) {
    Vec row1(d + 1, 0.0);
    row1[j] = 1.0;
    row1[d] = 1.0;
    lp.a.push_back(std::move(row1));
    lp.b.push_back(hi);
    Vec row2(d + 1, 0.0);
    row2[j] = -1.0;
    row2[d] = 1.0;
    lp.a.push_back(std::move(row2));
    lp.b.push_back(-lo);
  }
  // r >= 0 is not enforced: a negative optimum signals emptiness.
  LpSolution sol = SolveLp(lp);
  if (sol.status == LpStatus::kInfeasible) {
    return ChebyshevResult{Vec(d, 0.0), -1.0};
  }
  if (sol.status != LpStatus::kOptimal) {
    return Status::Internal("Chebyshev LP did not converge");
  }
  ChebyshevResult r;
  r.center.assign(sol.x.begin(), sol.x.begin() + d);
  r.radius = sol.x[d];
  return r;
}

bool IsStrictlyFeasible(const std::vector<Halfspace>& ge, double lo,
                        double hi, double margin) {
  Result<ChebyshevResult> c = ChebyshevCenter(ge, lo, hi);
  return c.ok() && c->radius > margin;
}

Result<bool> RefreshFeasiblePoint(const std::vector<Halfspace>& ge, double lo,
                                  double hi, double margin, Vec* point) {
  if (ge.empty()) return Status::InvalidArgument("no half-spaces");
  const size_t d = ge[0].normal.size();
  if (point->size() == d) {
    bool ok = true;
    for (size_t j = 0; j < d; ++j) {
      if ((*point)[j] <= lo + margin || (*point)[j] >= hi - margin) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (const Halfspace& h : ge) {
        // Margin is measured like the Chebyshev radius: relative to the
        // normal's length.
        if (Dot(h.normal, *point) - h.offset <= margin * Norm(h.normal)) {
          ok = false;
          break;
        }
      }
    }
    if (ok) return true;  // warm start survives the new constraints
  }
  Result<ChebyshevResult> c = ChebyshevCenter(ge, lo, hi);
  if (!c.ok()) return c.status();
  if (c->radius <= margin) return false;
  *point = std::move(c->center);
  return true;
}

}  // namespace gir
