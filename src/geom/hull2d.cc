#include "geom/hull2d.h"

#include <algorithm>
#include <cassert>

namespace gir {

double Cross2D(VecView a, VecView b, VecView c) {
  return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0]);
}

std::vector<int> ConvexHull2D(const std::vector<Vec>& points) {
  const int n = static_cast<int>(points.size());
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (points[a][0] != points[b][0]) return points[a][0] < points[b][0];
    return points[a][1] < points[b][1];
  });
  // Drop exact duplicates so they cannot create zero-length hull edges.
  order.erase(std::unique(order.begin(), order.end(),
                          [&](int a, int b) {
                            return points[a][0] == points[b][0] &&
                                   points[a][1] == points[b][1];
                          }),
              order.end());
  const int m = static_cast<int>(order.size());
  if (m <= 2) return order;

  std::vector<int> hull(2 * m);
  int h = 0;
  // Lower chain.
  for (int idx = 0; idx < m; ++idx) {
    int i = order[idx];
    while (h >= 2 &&
           Cross2D(points[hull[h - 2]], points[hull[h - 1]], points[i]) <= 0) {
      --h;
    }
    hull[h++] = i;
  }
  // Upper chain.
  const int lower_size = h + 1;
  for (int idx = m - 2; idx >= 0; --idx) {
    int i = order[idx];
    while (h >= lower_size &&
           Cross2D(points[hull[h - 2]], points[hull[h - 1]], points[i]) <= 0) {
      --h;
    }
    hull[h++] = i;
  }
  hull.resize(h - 1);  // Last point equals the first.
  return hull;
}

}  // namespace gir
