#ifndef GIR_GEOM_CONVEX_HULL_H_
#define GIR_GEOM_CONVEX_HULL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "geom/hyperplane.h"
#include "geom/vec.h"

namespace gir {

// A simplicial facet of a d-dimensional convex hull.
struct HullFacet {
  // Exactly d point indices (into the input point array).
  std::vector<int> vertices;
  // Supporting hyperplane, oriented with the normal pointing outward
  // (Evaluate(x) <= 0 for points inside the hull, up to epsilon).
  Hyperplane plane;
  // neighbors[i] is the id of the facet sharing the ridge opposite
  // vertices[i] (i.e. vertices \ {vertices[i]}).
  std::vector<int> neighbors;
};

struct ConvexHullOptions {
  // Distance threshold for the "point above facet" test.
  double eps = 1e-10;
  // When the input is degenerate (affinely dependent), the build is
  // retried with joggled coordinates; each retry multiplies the joggle
  // magnitude by 10. Mirrors Qhull's QJ option.
  bool enable_joggle = true;
  double joggle_magnitude = 1e-9;
  int max_joggle_attempts = 6;
  uint64_t joggle_seed = 2014;
};

// Full-dimensional convex hull in d >= 2 dimensions, built with the
// quickhull / Clarkson incremental strategy (outside sets, furthest-
// point insertion, horizon-ridge patching). This is the library's
// substitute for Qhull, used by the CP pruning method and by half-space
// intersection (via duality).
class ConvexHull {
 public:
  // Requires points.size() >= d + 1 spanning full dimension (possibly
  // after joggling). Fails with FailedPrecondition otherwise.
  static Result<ConvexHull> Build(const std::vector<Vec>& points,
                                  const ConvexHullOptions& options = {});

  size_t dim() const { return dim_; }

  // Simplicial facets of the hull.
  const std::vector<HullFacet>& facets() const { return facets_; }

  // Sorted unique indices of input points that are hull vertices.
  const std::vector<int>& vertex_indices() const { return vertex_indices_; }

  // A point strictly inside the hull (centroid of the initial simplex).
  const Vec& interior_point() const { return interior_; }

  // True when x is inside or on the hull (within eps of every facet).
  bool Contains(VecView x, double eps = 1e-9) const;

  // Exact volume of the (joggled, if applicable) hull: fan decomposition
  // of the simplicial facets around interior_point().
  double Volume() const;

  // True if the build had to joggle the input (degenerate data).
  bool joggled() const { return joggled_; }

  // The coordinates the hull was actually built on (joggled copies of
  // the input when joggling kicked in). Facet vertex indices refer to
  // this array, which is index-aligned with the input.
  const std::vector<Vec>& points() const { return points_; }

 private:
  ConvexHull() = default;

  size_t dim_ = 0;
  std::vector<Vec> points_;
  std::vector<HullFacet> facets_;
  std::vector<int> vertex_indices_;
  Vec interior_;
  bool joggled_ = false;
};

// Greedily selects d+1 affinely independent points (indices) via
// Gram-Schmidt distance-to-subspace maximization. Fails when the point
// set is (numerically) lower-dimensional. Exposed for reuse by the FP
// star builder and for tests.
Result<std::vector<int>> FindInitialSimplex(const std::vector<Vec>& points,
                                            size_t dim, double tol = 1e-9);

}  // namespace gir

#endif  // GIR_GEOM_CONVEX_HULL_H_
