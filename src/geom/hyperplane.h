#ifndef GIR_GEOM_HYPERPLANE_H_
#define GIR_GEOM_HYPERPLANE_H_

#include <vector>

#include "common/result.h"
#include "geom/vec.h"

namespace gir {

// Oriented hyperplane {x : normal·x = offset}. Points with
// normal·x > offset are "above" the plane. Facet hyperplanes in this
// library are oriented with the normal pointing away from the hull
// interior, so "above" means "outside".
struct Hyperplane {
  Vec normal;
  double offset = 0.0;

  // Signed distance surrogate: normal·x - offset (not normalized unless
  // the normal is).
  double Evaluate(VecView x) const { return Dot(normal, x) - offset; }
};

// Closed half-space {x : normal·x >= offset}. GIR constraints are
// half-spaces through the origin of query space (offset == 0).
struct Halfspace {
  Vec normal;
  double offset = 0.0;

  bool Contains(VecView x, double eps = 0.0) const {
    return Dot(normal, x) >= offset - eps;
  }
};

// Fits the hyperplane through the d affinely-independent points
// `points[indices[0..d-1]]`, oriented so that `interior` lies strictly
// below it (Evaluate(interior) < 0). Fails with FailedPrecondition when
// the points are (numerically) affinely dependent or the interior point
// is on the plane.
Result<Hyperplane> FitHyperplane(const std::vector<Vec>& points,
                                 const std::vector<int>& indices,
                                 VecView interior);

// Solves the d x d linear system A x = b by Gaussian elimination with
// partial pivoting. Fails when the matrix is numerically singular
// (|pivot| < pivot_floor after scaling).
Result<Vec> SolveLinearSystem(std::vector<Vec> a, Vec b,
                              double pivot_floor = 1e-12);

}  // namespace gir

#endif  // GIR_GEOM_HYPERPLANE_H_
