#ifndef GIR_GEOM_LP_H_
#define GIR_GEOM_LP_H_

#include <vector>

#include "common/result.h"
#include "geom/hyperplane.h"
#include "geom/vec.h"

namespace gir {

// Outcome of a linear program.
enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  Vec x;                   // optimal point (valid when kOptimal)
  double objective = 0.0;  // c·x at the optimum
};

// maximize c·x  subject to  a[i]·x <= b[i], x free.
//
// Dense two-phase primal simplex with Bland's anti-cycling rule. The
// library only ever solves low-dimensional instances (d <= ~10
// variables); constraint counts are modest because callers pre-reduce
// constraint sets. Intended for Chebyshev centres, feasibility probes
// and constraint-redundancy cross-checks — not a general-purpose solver.
struct LpProblem {
  std::vector<Vec> a;
  Vec b;
  Vec c;
};

LpSolution SolveLp(const LpProblem& problem, int max_iterations = 20000);

// Largest ball inside the intersection of half-spaces `normal·x >= offset`
// plus the bounding box [lo, hi]^d. Returns (center, radius); radius <= 0
// means the region is empty or lower-dimensional.
struct ChebyshevResult {
  Vec center;
  double radius = -1.0;
};
Result<ChebyshevResult> ChebyshevCenter(const std::vector<Halfspace>& ge,
                                        double lo = 0.0, double hi = 1.0);

// True when the intersection of the half-spaces (>= form) and the box
// has a point with margin >= `margin` to every constraint.
bool IsStrictlyFeasible(const std::vector<Halfspace>& ge, double lo,
                        double hi, double margin);

// Warm-startable feasibility: when `point` (non-empty, of the right
// dimension) already satisfies every half-space and the box with margin
// > `margin`, returns true without touching it — an O(m·d) scan instead
// of a simplex solve. Otherwise re-solves the Chebyshev LP and writes
// the fresh centre into `point`; false means the system is infeasible
// or lower-dimensional (with `point` left unspecified). A non-ok status
// is a solver failure, not a verdict.
//
// This is what lets consecutive-constraint work (a region
// re-materialized after each AddConstraint, a growing redundancy
// system) reuse the previous feasible point: a new constraint rarely
// cuts off the old interior, so the LP almost never reruns.
// IntersectHalfspaces routes its warm_start through this.
Result<bool> RefreshFeasiblePoint(const std::vector<Halfspace>& ge, double lo,
                                  double hi, double margin, Vec* point);

}  // namespace gir

#endif  // GIR_GEOM_LP_H_
