#ifndef GIR_GEOM_LP_H_
#define GIR_GEOM_LP_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "geom/hyperplane.h"
#include "geom/vec.h"

namespace gir {

// Outcome of a linear program.
enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  Vec x;                   // optimal point (valid when kOptimal)
  double objective = 0.0;  // c·x at the optimum
};

// maximize c·x  subject to  a[i]·x <= b[i], x free.
//
// Dense two-phase primal simplex with Bland's anti-cycling rule. The
// library only ever solves low-dimensional instances (d <= ~10
// variables); constraint counts are modest because callers pre-reduce
// constraint sets. Intended for Chebyshev centres, feasibility probes
// and constraint-redundancy cross-checks — not a general-purpose solver.
struct LpProblem {
  std::vector<Vec> a;
  Vec b;
  Vec c;
};

inline constexpr int kDefaultLpIterations = 20000;

// Reusable solver state: the dense tableau, basis, reduced-cost row and
// solution buffers, recycled across solves so the steady state performs
// zero heap allocation (buffers only grow to the high-water shape —
// grow_events() counts exactly those growths). Beyond memory recycling
// the workspace retains the final simplex basis, which is what the
// warm-start entry points re-solve from:
//
//   Prepare(a, b, m, n)   build the tableau for {a·x <= b} and find a
//                         feasible basis (phase 1 runs only when some
//                         b < 0). The per-solve analogue of phase 1 +
//                         tableau construction, paid once per system.
//   Maximize(c)           maximize c·x from the current basis — after
//                         Prepare this is the classic phase 2; after a
//                         previous Maximize it is an objective-change
//                         re-solve that starts at the old optimum (few
//                         pivots when optima are near, no rebuild).
//   AddConstraint(a, b)   append one constraint to the prepared system
//                         and restore optimality by dual simplex from
//                         the current basis (requires a prior
//                         successful Maximize). The constraint-change
//                         re-solve: a cut that leaves the old optimum
//                         feasible costs one row reduction, no pivots.
//
// The first Maximize after Prepare reproduces SolveLp bit for bit
// (same column layout, same Bland pivoting); later warm re-solves may
// take a different pivot path to the same optimum, so objectives agree
// up to roundoff, not bitwise.
//
// Not thread-safe; use one workspace per thread.
class LpWorkspace {
 public:
  // Builds the standard-form tableau for the m×n system a·x <= b
  // (row-major a, stride n) and pivots to a feasible basis. kOptimal
  // means a feasible basis is ready for Maximize.
  LpStatus Prepare(const double* a, const double* b, size_t m, size_t n,
                   int max_iterations = kDefaultLpIterations);

  // maximize c·x (c has n entries) over the prepared system, starting
  // from the basis left by the previous Prepare/Maximize/AddConstraint.
  // On kOptimal, objective() and x() hold the optimum. On kUnbounded or
  // kIterationLimit the basis stays feasible, so another Maximize (or
  // AddConstraint) may follow.
  LpStatus Maximize(const double* c,
                    int max_iterations = kDefaultLpIterations);

  // Appends the constraint a_row·x <= b_new (a_row has n entries) and
  // re-solves the *current* objective by dual simplex from the current
  // basis. Precondition: the last Maximize on this workspace returned
  // kOptimal. kInfeasible means the new constraint empties the region.
  LpStatus AddConstraint(const double* a_row, double b_new,
                         int max_iterations = kDefaultLpIterations);

  double objective() const { return objective_; }
  const Vec& x() const { return x_; }
  size_t num_constraints() const { return m_; }
  size_t num_vars() const { return n_; }

  // Number of internal buffer growths since construction. Constant
  // across solves of already-seen shapes — the hook the zero-allocation
  // steady-state tests assert on.
  uint64_t grow_events() const { return grow_events_; }

 private:
  friend LpSolution SolveLpWith(LpWorkspace* workspace,
                                const LpProblem& problem, int max_iterations);

  double& At(size_t r, size_t c) { return data_[r * (cols_ + 1) + c]; }
  double& Rhs(size_t r) { return data_[r * (cols_ + 1) + cols_]; }
  void Pivot(size_t row, size_t col);
  LpStatus RunPrimal(int max_iterations, size_t usable_cols);
  LpStatus RunDual(int max_iterations, size_t usable_cols);
  void BuildReducedCosts(const double* c);
  void ExtractSolution(const double* c);
  template <typename T>
  void GrowTo(std::vector<T>* v, size_t size) {
    if (v->capacity() < size) ++grow_events_;
    v->resize(size);
  }

  // Tableau: m_ rows × (cols_ + 1) doubles (last column = rhs).
  // Columns: u (n_), v (n_), slack (m_), artificial (num_art_, always
  // last so the entering-candidate range stays a prefix).
  std::vector<double> data_;
  std::vector<double> z_;       // reduced-cost row of the last objective
  std::vector<size_t> basis_;   // basic column of each row
  std::vector<uint8_t> negated_;
  std::vector<double> c_;       // last objective (for AddConstraint)
  Vec x_;
  double z_rhs_ = 0.0;
  double objective_ = 0.0;
  size_t m_ = 0;
  size_t n_ = 0;
  size_t cols_ = 0;
  size_t num_art_ = 0;
  bool feasible_ = false;       // Prepare succeeded
  bool optimal_ = false;        // last Maximize/AddConstraint hit kOptimal
  uint64_t grow_events_ = 0;

  // Scratch for the SolveLp/SolveLpWith compatibility front-ends.
  std::vector<double> a_scratch_;
};

// Solves via an internal thread-local workspace: same results as the
// historical allocating implementation, bit for bit, but the tableau
// memory is recycled across calls.
LpSolution SolveLp(const LpProblem& problem,
                   int max_iterations = kDefaultLpIterations);

// Same, on a caller-owned workspace (one Prepare + one Maximize).
LpSolution SolveLpWith(LpWorkspace* workspace, const LpProblem& problem,
                       int max_iterations = kDefaultLpIterations);

// One LP of a batch solve: status and optimal objective value (the
// batch entry points never need the optimizer x itself).
struct LpBatchItem {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
};

// Solves max c_t·x s.t. a·x <= b for every objective c_t (count rows of
// n doubles each, row-major). The tableau is built and made feasible
// once; each objective then warm-starts phase 2 from the previous
// optimal basis. This is what amortizes the per-(entry, insert)
// AdmitsGain LPs of cache invalidation: one Prepare per cached region,
// one warm Maximize per inserted record. Infeasible systems mark every
// item kInfeasible. `out` must hold `count` items.
void SolveLpBatch(const double* a, const double* b, size_t m, size_t n,
                  const double* objectives, size_t count,
                  LpWorkspace* workspace, LpBatchItem* out,
                  int max_iterations = kDefaultLpIterations);

// Largest ball inside the intersection of half-spaces `normal·x >= offset`
// plus the bounding box [lo, hi]^d. Returns (center, radius); radius <= 0
// means the region is empty or lower-dimensional.
struct ChebyshevResult {
  Vec center;
  double radius = -1.0;
};
Result<ChebyshevResult> ChebyshevCenter(const std::vector<Halfspace>& ge,
                                        double lo = 0.0, double hi = 1.0);

// True when the intersection of the half-spaces (>= form) and the box
// has a point with margin >= `margin` to every constraint.
bool IsStrictlyFeasible(const std::vector<Halfspace>& ge, double lo,
                        double hi, double margin);

// Warm-startable feasibility: when `point` (non-empty, of the right
// dimension) already satisfies every half-space and the box with margin
// > `margin`, returns true without touching it — an O(m·d) scan instead
// of a simplex solve. Otherwise re-solves the Chebyshev LP and writes
// the fresh centre into `point`; false means the system is infeasible
// or lower-dimensional (with `point` left unspecified). A non-ok status
// is a solver failure, not a verdict.
//
// This is what lets consecutive-constraint work (a region
// re-materialized after each AddConstraint, a growing redundancy
// system) reuse the previous feasible point: a new constraint rarely
// cuts off the old interior, so the LP almost never reruns.
// IntersectHalfspaces routes its warm_start through this.
Result<bool> RefreshFeasiblePoint(const std::vector<Halfspace>& ge, double lo,
                                  double hi, double margin, Vec* point);

}  // namespace gir

#endif  // GIR_GEOM_LP_H_
