#ifndef GIR_GEOM_LP_H_
#define GIR_GEOM_LP_H_

#include <vector>

#include "common/result.h"
#include "geom/hyperplane.h"
#include "geom/vec.h"

namespace gir {

// Outcome of a linear program.
enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  Vec x;                   // optimal point (valid when kOptimal)
  double objective = 0.0;  // c·x at the optimum
};

// maximize c·x  subject to  a[i]·x <= b[i], x free.
//
// Dense two-phase primal simplex with Bland's anti-cycling rule. The
// library only ever solves low-dimensional instances (d <= ~10
// variables); constraint counts are modest because callers pre-reduce
// constraint sets. Intended for Chebyshev centres, feasibility probes
// and constraint-redundancy cross-checks — not a general-purpose solver.
struct LpProblem {
  std::vector<Vec> a;
  Vec b;
  Vec c;
};

LpSolution SolveLp(const LpProblem& problem, int max_iterations = 20000);

// Largest ball inside the intersection of half-spaces `normal·x >= offset`
// plus the bounding box [lo, hi]^d. Returns (center, radius); radius <= 0
// means the region is empty or lower-dimensional.
struct ChebyshevResult {
  Vec center;
  double radius = -1.0;
};
Result<ChebyshevResult> ChebyshevCenter(const std::vector<Halfspace>& ge,
                                        double lo = 0.0, double hi = 1.0);

// True when the intersection of the half-spaces (>= form) and the box
// has a point with margin >= `margin` to every constraint.
bool IsStrictlyFeasible(const std::vector<Halfspace>& ge, double lo,
                        double hi, double margin);

}  // namespace gir

#endif  // GIR_GEOM_LP_H_
