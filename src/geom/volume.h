#ifndef GIR_GEOM_VOLUME_H_
#define GIR_GEOM_VOLUME_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geom/hyperplane.h"
#include "geom/polytope.h"

namespace gir {

// Fraction of the unit cube [0,1]^d satisfying all half-spaces
// (normal·x >= offset), by uniform Monte-Carlo sampling. This is the
// paper's LIK sensitivity measure estimated directly; use the exact
// polytope volume for small-volume / high-precision cases.
double MonteCarloCubeFraction(const std::vector<Halfspace>& ge, size_t dim,
                              uint64_t samples, Rng& rng);

// Monte-Carlo volume of the region inside `box_lo/box_hi` satisfying the
// half-spaces; returns the absolute volume (box volume * hit fraction).
double MonteCarloVolumeInBox(const std::vector<Halfspace>& ge,
                             VecView box_lo, VecView box_hi,
                             uint64_t samples, Rng& rng);

// Axis-aligned bounding box of a polytope's vertices. Returns false for
// empty polytopes.
bool BoundingBox(const Polytope& polytope, Vec* lo, Vec* hi);

}  // namespace gir

#endif  // GIR_GEOM_VOLUME_H_
