#include "geom/polytope.h"

#include "geom/convex_hull.h"

namespace gir {

bool Polytope::Contains(VecView x, double eps) const {
  if (empty()) return false;
  for (const Hyperplane& f : facets_) {
    if (f.Evaluate(x) > eps) return false;
  }
  return true;
}

double Polytope::Volume() const {
  if (vertices_.size() < dim_ + 1) return 0.0;
  Result<ConvexHull> hull = ConvexHull::Build(vertices_);
  if (!hull.ok()) return 0.0;  // lower-dimensional: zero d-volume
  return hull->Volume();
}

Vec Polytope::Centroid() const {
  Vec c(dim_, 0.0);
  if (vertices_.empty()) return c;
  for (const Vec& v : vertices_) {
    for (size_t j = 0; j < dim_; ++j) c[j] += v[j];
  }
  for (double& x : c) x /= static_cast<double>(vertices_.size());
  return c;
}

}  // namespace gir
