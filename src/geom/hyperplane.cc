#include "geom/hyperplane.h"

#include <cassert>
#include <cmath>

namespace gir {

Result<Vec> SolveLinearSystem(std::vector<Vec> a, Vec b, double pivot_floor) {
  const size_t d = b.size();
  assert(a.size() == d);
  for (size_t col = 0; col < d; ++col) {
    // Partial pivoting: bring the largest remaining entry into place.
    size_t pivot = col;
    for (size_t row = col + 1; row < d; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) pivot = row;
    }
    if (std::fabs(a[pivot][col]) < pivot_floor) {
      return Status::FailedPrecondition("singular linear system");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t row = col + 1; row < d; ++row) {
      double f = a[row][col] / a[col][col];
      if (f == 0.0) continue;
      for (size_t j = col; j < d; ++j) a[row][j] -= f * a[col][j];
      b[row] -= f * b[col];
    }
  }
  Vec x(d, 0.0);
  for (size_t row = d; row-- > 0;) {
    double sum = b[row];
    for (size_t j = row + 1; j < d; ++j) sum -= a[row][j] * x[j];
    x[row] = sum / a[row][row];
  }
  return x;
}

namespace {

// Computes a (numerical) null vector of the (d-1) x d matrix whose rows
// are `rows`, via Gaussian elimination with full column bookkeeping. The
// matrix must have rank d-1; the free column determines the normal.
Result<Vec> NullVector(std::vector<Vec> rows, size_t d) {
  const size_t m = rows.size();  // == d - 1
  std::vector<int> pivot_col_of_row(m, -1);
  std::vector<bool> col_used(d, false);
  size_t row = 0;
  for (; row < m; ++row) {
    // Choose the largest-magnitude unused column in this row block.
    size_t best_row = row;
    size_t best_col = 0;
    double best_val = 0.0;
    for (size_t r = row; r < m; ++r) {
      for (size_t c = 0; c < d; ++c) {
        if (col_used[c]) continue;
        if (std::fabs(rows[r][c]) > best_val) {
          best_val = std::fabs(rows[r][c]);
          best_row = r;
          best_col = c;
        }
      }
    }
    if (best_val < 1e-12) {
      return Status::FailedPrecondition(
          "affinely dependent points (rank-deficient facet basis)");
    }
    std::swap(rows[row], rows[best_row]);
    col_used[best_col] = true;
    pivot_col_of_row[row] = static_cast<int>(best_col);
    for (size_t r = row + 1; r < m; ++r) {
      double f = rows[r][best_col] / rows[row][best_col];
      if (f == 0.0) continue;
      for (size_t c = 0; c < d; ++c) rows[r][c] -= f * rows[row][c];
    }
  }
  // Exactly one column is pivot-free; it parameterizes the null space.
  size_t free_col = d;
  for (size_t c = 0; c < d; ++c) {
    if (!col_used[c]) {
      free_col = c;
      break;
    }
  }
  assert(free_col < d);
  Vec normal(d, 0.0);
  normal[free_col] = 1.0;
  // Back-substitute pivot coordinates.
  for (size_t r = m; r-- > 0;) {
    int pc = pivot_col_of_row[r];
    double sum = 0.0;
    for (size_t c = 0; c < d; ++c) {
      if (static_cast<int>(c) != pc) sum += rows[r][c] * normal[c];
    }
    normal[pc] = -sum / rows[r][pc];
  }
  return normal;
}

}  // namespace

Result<Hyperplane> FitHyperplane(const std::vector<Vec>& points,
                                 const std::vector<int>& indices,
                                 VecView interior) {
  const size_t d = interior.size();
  assert(indices.size() == d);
  const Vec& base = points[indices[0]];
  std::vector<Vec> rows;
  rows.reserve(d - 1);
  for (size_t i = 1; i < d; ++i) {
    rows.push_back(Sub(points[indices[i]], base));
  }
  Result<Vec> normal = NullVector(std::move(rows), d);
  if (!normal.ok()) return normal.status();
  Vec n = std::move(normal).value();
  if (!NormalizeInPlace(n)) {
    return Status::FailedPrecondition("degenerate facet normal");
  }
  Hyperplane plane;
  plane.offset = Dot(n, base);
  plane.normal = std::move(n);
  double side = plane.Evaluate(interior);
  if (std::fabs(side) < 1e-14) {
    return Status::FailedPrecondition("interior point lies on facet plane");
  }
  if (side > 0.0) {
    for (double& x : plane.normal) x = -x;
    plane.offset = -plane.offset;
  }
  return plane;
}

}  // namespace gir
