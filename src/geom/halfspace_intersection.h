#ifndef GIR_GEOM_HALFSPACE_INTERSECTION_H_
#define GIR_GEOM_HALFSPACE_INTERSECTION_H_

#include <vector>

#include "common/result.h"
#include "geom/hyperplane.h"
#include "geom/polytope.h"
#include "geom/vec.h"

namespace gir {

struct IntersectionOptions {
  // When true (the default for GIR work) the unit cube [0,1]^d is added
  // to the constraint set, which also guarantees boundedness.
  bool clip_to_unit_cube = true;
  // Margin (relative to the normal's length) required for the interior
  // hint before the Chebyshev-LP fallback kicks in.
  double hint_margin = 1e-9;
  // Warm start: an interior point from a previous intersection of a
  // related system (e.g. the same region before its latest
  // constraints). Tried after `interior_hint`, before the Chebyshev
  // LP. Empty vectors are ignored.
  Vec warm_start;
};

struct IntersectionResult {
  Polytope polytope;
  // Indices of input half-spaces that support a facet of the result
  // (i.e. are non-redundant). Cube constraints are not reported.
  std::vector<int> nonredundant;
  // The strictly interior point the duality transform used — feed it
  // back as `warm_start` when intersecting a grown version of the same
  // system to skip the LP. Empty when the intersection was empty.
  Vec interior;
};

// Intersects half-spaces given in `normal·x >= offset` form via point
// duality: translate an interior point to the origin, dualize each
// half-space a·x <= b (b > 0) to the point a/b, build the convex hull of
// the dual points, and read primal vertices off dual facets. This is the
// library's replacement for Qhull's halfspace-intersection mode
// (qhalf). An empty intersection yields an empty polytope, not an error.
//
// `interior_hint` may be empty; if given and strictly feasible it avoids
// the Chebyshev LP entirely (the GIR engine passes the query vector,
// which is interior by construction).
Result<IntersectionResult> IntersectHalfspaces(
    const std::vector<Halfspace>& ge, VecView interior_hint,
    const IntersectionOptions& options = {});

}  // namespace gir

#endif  // GIR_GEOM_HALFSPACE_INTERSECTION_H_
