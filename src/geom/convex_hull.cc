#include "geom/convex_hull.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <set>

#include "common/rng.h"

namespace gir {

namespace {

// Working facet record; `alive` facets are compacted on completion.
struct WorkFacet {
  std::vector<int> vertices;
  Hyperplane plane;
  std::vector<int> neighbors;
  std::vector<int> outside;  // conflict list: points above this facet
  bool alive = true;
  bool visible = false;  // scratch flag for the current insertion
};

// d! for simplex volume normalization.
double Factorial(size_t d) {
  double f = 1.0;
  for (size_t i = 2; i <= d; ++i) f *= static_cast<double>(i);
  return f;
}

// |det| of the d x d matrix whose columns are (v_i - base).
double SimplexDet(const std::vector<Vec>& points,
                  const std::vector<int>& vertex_ids, VecView base) {
  const size_t d = base.size();
  std::vector<Vec> m;
  m.reserve(d);
  for (size_t i = 0; i < d; ++i) {
    m.push_back(Sub(points[vertex_ids[i]], base));
  }
  // Gaussian elimination with partial pivoting; determinant magnitude.
  double det = 1.0;
  for (size_t col = 0; col < d; ++col) {
    size_t pivot = col;
    for (size_t row = col + 1; row < d; ++row) {
      if (std::fabs(m[row][col]) > std::fabs(m[pivot][col])) pivot = row;
    }
    if (m[pivot][col] == 0.0) return 0.0;
    if (pivot != col) std::swap(m[col], m[pivot]);
    det *= m[col][col];
    for (size_t row = col + 1; row < d; ++row) {
      double f = m[row][col] / m[col][col];
      for (size_t j = col; j < d; ++j) m[row][j] -= f * m[col][j];
    }
  }
  return std::fabs(det);
}

class Builder {
 public:
  Builder(const std::vector<Vec>& points, const ConvexHullOptions& options)
      : points_(points), options_(options), dim_(points.empty() ? 0 : points[0].size()) {}

  Status Run() {
    if (points_.size() < dim_ + 1) {
      return Status::FailedPrecondition("too few points for full-dim hull");
    }
    Result<std::vector<int>> simplex = FindInitialSimplex(points_, dim_);
    if (!simplex.ok()) return simplex.status();
    Status s = BuildInitialSimplex(simplex.value());
    if (!s.ok()) return s;
    s = AssignInitialOutsideSets(simplex.value());
    if (!s.ok()) return s;
    return ProcessOutsidePoints();
  }

  std::vector<WorkFacet>& facets() { return facets_; }
  const Vec& interior() const { return interior_; }

 private:
  Status BuildInitialSimplex(const std::vector<int>& simplex) {
    const size_t d = dim_;
    interior_.assign(d, 0.0);
    for (int id : simplex) {
      for (size_t j = 0; j < d; ++j) interior_[j] += points_[id][j];
    }
    for (size_t j = 0; j < d; ++j) interior_[j] /= (d + 1);

    // One facet per omitted simplex vertex.
    for (size_t omit = 0; omit <= d; ++omit) {
      WorkFacet f;
      for (size_t i = 0; i <= d; ++i) {
        if (i != omit) f.vertices.push_back(simplex[i]);
      }
      Result<Hyperplane> plane =
          FitHyperplane(points_, f.vertices, interior_);
      if (!plane.ok()) return plane.status();
      f.plane = std::move(plane).value();
      f.neighbors.assign(d, -1);
      facets_.push_back(std::move(f));
    }
    // Wire neighbors: facet `omit` and facet `other` share the ridge
    // missing both simplex vertices. In facet `omit`, the position of
    // simplex vertex `other` is the slot whose neighbor is facet `other`.
    for (size_t omit = 0; omit <= d; ++omit) {
      WorkFacet& f = facets_[omit];
      for (size_t pos = 0; pos < d; ++pos) {
        int v = f.vertices[pos];
        // Find which simplex slot v occupies.
        for (size_t other = 0; other <= d; ++other) {
          if (simplex[other] == v) {
            f.neighbors[pos] = static_cast<int>(other);
            break;
          }
        }
      }
    }
    return Status::Ok();
  }

  Status AssignInitialOutsideSets(const std::vector<int>& simplex) {
    std::set<int> in_simplex(simplex.begin(), simplex.end());
    for (int p = 0; p < static_cast<int>(points_.size()); ++p) {
      if (in_simplex.count(p)) continue;
      AssignPoint(p, 0, facets_.size());
    }
    return Status::Ok();
  }

  // Assigns point p to the facet (among [first, last)) it is furthest
  // above, if any.
  void AssignPoint(int p, size_t first, size_t last) {
    double best = options_.eps;
    int best_facet = -1;
    for (size_t f = first; f < last; ++f) {
      if (!facets_[f].alive) continue;
      double h = facets_[f].plane.Evaluate(points_[p]);
      if (h > best) {
        best = h;
        best_facet = static_cast<int>(f);
      }
    }
    if (best_facet >= 0) facets_[best_facet].outside.push_back(p);
  }

  Status ProcessOutsidePoints() {
    // Work queue of facets that may have outside points.
    std::vector<int> queue;
    for (size_t f = 0; f < facets_.size(); ++f) {
      if (!facets_[f].outside.empty()) queue.push_back(static_cast<int>(f));
    }
    size_t iterations = 0;
    const size_t max_iterations = 64 * points_.size() + 1024;
    while (!queue.empty()) {
      if (++iterations > max_iterations) {
        return Status::Internal("convex hull failed to converge");
      }
      int fid = queue.back();
      queue.pop_back();
      WorkFacet& f = facets_[fid];
      if (!f.alive || f.outside.empty()) continue;

      // Furthest outside point of this facet.
      int apex = -1;
      double best = -1.0;
      for (int p : f.outside) {
        double h = f.plane.Evaluate(points_[p]);
        if (h > best) {
          best = h;
          apex = p;
        }
      }
      if (best <= options_.eps) {
        f.outside.clear();
        continue;
      }

      Status s = InsertPoint(apex, fid, &queue);
      if (!s.ok()) return s;
    }
    return Status::Ok();
  }

  Status InsertPoint(int apex, int seed_facet, std::vector<int>* queue) {
    // 1. Visible set: BFS over neighbors from the seed facet.
    std::vector<int> visible;
    std::vector<int> stack = {seed_facet};
    facets_[seed_facet].visible = true;
    while (!stack.empty()) {
      int fid = stack.back();
      stack.pop_back();
      visible.push_back(fid);
      for (int nb : facets_[fid].neighbors) {
        WorkFacet& g = facets_[nb];
        if (g.visible || !g.alive) continue;
        if (g.plane.Evaluate(points_[apex]) > options_.eps) {
          g.visible = true;
          stack.push_back(nb);
        }
      }
    }

    // 2. Horizon ridges: (visible facet, slot) whose neighbor is hidden.
    struct Horizon {
      std::vector<int> ridge;  // d-1 vertices
      int outer;               // the non-visible facet across the ridge
      int outer_slot;          // slot in `outer` pointing back
    };
    std::vector<Horizon> horizon;
    for (int fid : visible) {
      WorkFacet& f = facets_[fid];
      for (size_t pos = 0; pos < dim_; ++pos) {
        int nb = f.neighbors[pos];
        if (facets_[nb].visible) continue;
        Horizon h;
        for (size_t i = 0; i < dim_; ++i) {
          if (i != pos) h.ridge.push_back(f.vertices[i]);
        }
        h.outer = nb;
        h.outer_slot = -1;
        for (size_t i = 0; i < dim_; ++i) {
          if (facets_[nb].neighbors[i] == fid) {
            h.outer_slot = static_cast<int>(i);
            break;
          }
        }
        if (h.outer_slot < 0) {
          return Status::Internal("hull adjacency corrupted");
        }
        horizon.push_back(std::move(h));
      }
    }
    if (horizon.empty()) {
      return Status::Internal("empty horizon for outside point");
    }

    // 3. Build one new facet per horizon ridge.
    size_t first_new = facets_.size();
    for (Horizon& h : horizon) {
      WorkFacet nf;
      nf.vertices = h.ridge;
      nf.vertices.push_back(apex);
      Result<Hyperplane> plane =
          FitHyperplane(points_, nf.vertices, interior_);
      if (!plane.ok()) return plane.status();
      nf.plane = std::move(plane).value();
      nf.neighbors.assign(dim_, -1);
      // Slot `dim_-1` holds the apex, so the ridge opposite the apex is
      // the horizon ridge itself: its neighbor is the outer facet.
      nf.neighbors[dim_ - 1] = h.outer;
      int nf_id = static_cast<int>(facets_.size());
      facets_.push_back(std::move(nf));
      facets_[h.outer].neighbors[h.outer_slot] = nf_id;
    }

    // 4. Wire the ridges shared between pairs of new facets. Two new
    // facets share the ridge {apex} + (ridge \ {v}); key on the sorted
    // ridge vertices excluding the apex.
    std::map<std::vector<int>, std::pair<int, int>> half_ridges;
    for (size_t nf_id = first_new; nf_id < facets_.size(); ++nf_id) {
      WorkFacet& nf = facets_[nf_id];
      for (size_t pos = 0; pos + 1 < dim_; ++pos) {  // skip apex slot
        std::vector<int> key;
        for (size_t i = 0; i + 1 < dim_; ++i) {
          if (i != pos) key.push_back(nf.vertices[i]);
        }
        std::sort(key.begin(), key.end());
        auto it = half_ridges.find(key);
        if (it == half_ridges.end()) {
          half_ridges.emplace(std::move(key),
                              std::make_pair(static_cast<int>(nf_id),
                                             static_cast<int>(pos)));
        } else {
          auto [other_id, other_pos] = it->second;
          nf.neighbors[pos] = other_id;
          facets_[other_id].neighbors[other_pos] = static_cast<int>(nf_id);
          half_ridges.erase(it);
        }
      }
    }
    if (!half_ridges.empty()) {
      return Status::Internal("unmatched new-facet ridges");
    }

    // 5. Redistribute the outside points of the visible facets.
    std::vector<int> orphans;
    for (int fid : visible) {
      WorkFacet& f = facets_[fid];
      for (int p : f.outside) {
        if (p != apex) orphans.push_back(p);
      }
      f.outside.clear();
      f.alive = false;
      f.visible = false;
    }
    for (int p : orphans) {
      AssignPoint(p, first_new, facets_.size());
    }
    for (size_t nf_id = first_new; nf_id < facets_.size(); ++nf_id) {
      if (!facets_[nf_id].outside.empty()) {
        queue->push_back(static_cast<int>(nf_id));
      }
    }
    return Status::Ok();
  }

  const std::vector<Vec>& points_;
  const ConvexHullOptions& options_;
  size_t dim_;
  std::vector<WorkFacet> facets_;
  Vec interior_;
};

}  // namespace

Result<std::vector<int>> FindInitialSimplex(const std::vector<Vec>& points,
                                            size_t dim, double tol) {
  const int n = static_cast<int>(points.size());
  if (n < static_cast<int>(dim) + 1) {
    return Status::FailedPrecondition("too few points");
  }
  std::vector<int> chosen;
  // Seed with the lexicographically smallest point for determinism.
  int first = 0;
  for (int i = 1; i < n; ++i) {
    if (points[i] < points[first]) first = i;
  }
  chosen.push_back(first);
  // Orthonormal basis of span{p - points[first]} built incrementally.
  std::vector<Vec> basis;
  while (chosen.size() < dim + 1) {
    int best = -1;
    double best_dist = tol;
    Vec best_residual;
    for (int i = 0; i < n; ++i) {
      Vec r = Sub(points[i], points[first]);
      for (const Vec& b : basis) {
        double c = Dot(r, b);
        for (size_t j = 0; j < r.size(); ++j) r[j] -= c * b[j];
      }
      double dist = Norm(r);
      if (dist > best_dist) {
        best_dist = dist;
        best = i;
        best_residual = std::move(r);
      }
    }
    if (best < 0) {
      return Status::FailedPrecondition(
          "points are affinely dependent (lower-dimensional input)");
    }
    chosen.push_back(best);
    NormalizeInPlace(best_residual);
    basis.push_back(std::move(best_residual));
  }
  return chosen;
}

Result<ConvexHull> ConvexHull::Build(const std::vector<Vec>& points,
                                     const ConvexHullOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("empty point set");
  }
  const size_t d = points[0].size();
  if (d < 2) return Status::InvalidArgument("dimension must be >= 2");

  Rng joggle_rng(options.joggle_seed);
  double magnitude = options.joggle_magnitude;
  std::vector<Vec> working = points;
  Status last = Status::Ok();
  int attempts = options.enable_joggle ? options.max_joggle_attempts : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Joggle: re-perturb the ORIGINAL coordinates so magnitudes don't
      // accumulate across retries.
      working = points;
      for (Vec& p : working) {
        for (double& x : p) x += joggle_rng.Uniform(-magnitude, magnitude);
      }
      magnitude *= 10.0;
    }
    Builder builder(working, options);
    last = builder.Run();
    if (last.ok()) {
      ConvexHull hull;
      hull.dim_ = d;
      hull.interior_ = builder.interior();
      hull.joggled_ = attempt > 0;
      // Compute the compaction remap before moving facet contents.
      std::vector<int> remap(builder.facets().size(), -1);
      int live = 0;
      for (size_t i = 0; i < builder.facets().size(); ++i) {
        if (builder.facets()[i].alive) remap[i] = live++;
      }
      std::set<int> vertex_set;
      for (WorkFacet& f : builder.facets()) {
        if (!f.alive) continue;
        HullFacet out;
        out.vertices = std::move(f.vertices);
        out.plane = std::move(f.plane);
        out.neighbors = std::move(f.neighbors);
        for (int& nb : out.neighbors) nb = remap[nb];
        for (int v : out.vertices) vertex_set.insert(v);
        hull.facets_.push_back(std::move(out));
      }
      hull.vertex_indices_.assign(vertex_set.begin(), vertex_set.end());
      hull.points_ = std::move(working);
      return hull;
    }
    if (last.code() != StatusCode::kFailedPrecondition &&
        last.code() != StatusCode::kInternal) {
      return last;  // non-degeneracy error: do not retry
    }
  }
  return last;
}

bool ConvexHull::Contains(VecView x, double eps) const {
  for (const HullFacet& f : facets_) {
    if (f.plane.Evaluate(x) > eps) return false;
  }
  return true;
}

double ConvexHull::Volume() const {
  // The facets are simplices; the hull volume is the fan decomposition
  // around the interior point. This is exact for the coordinates the
  // hull was built on.
  double total = 0.0;
  const double dfact = Factorial(dim_);
  for (const HullFacet& f : facets_) {
    total += SimplexDet(points_, f.vertices, interior_) / dfact;
  }
  return total;
}

}  // namespace gir
