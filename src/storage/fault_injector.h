#ifndef GIR_STORAGE_FAULT_INJECTOR_H_
#define GIR_STORAGE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"

namespace gir {

// One seeded, scoped fault schedule. Every knob is part of the
// determinism contract: a fault decision is a pure function of
// (seed, site, op ordinal), so the same plan driven by the same
// single-threaded access sequence injects the bit-identical fault
// sequence — a chaos run is replayable from its config alone. Under
// concurrent readers the op ordinals are handed out atomically, so the
// *set* of faulted ordinals is still plan-determined; only which query
// observes which ordinal varies with scheduling.
struct FaultPlan {
  uint64_t seed = 0;

  // ----- checked page reads (DiskManager::ReadPage) -----
  // Probability a read fails with kUnavailable (transient device error;
  // the page is fine on the next attempt — what retry layers lean on).
  double read_error_rate = 0.0;
  // Probability a read stalls for latency_spike_ms of real time before
  // succeeding (slow device; eats the caller's deadline budget).
  double read_latency_rate = 0.0;
  double latency_spike_ms = 0.0;

  // ----- snapshot publishes (SnapshotStore::WriteSnapshot) -----
  // Probability the published file is truncated mid-section (a crash
  // between rename and data reaching the platter: the name exists, the
  // tail bytes do not).
  double torn_write_rate = 0.0;
  // Probability one payload byte is flipped (bit rot / torn sector
  // inside a section); only the CRC can tell.
  double corrupt_rate = 0.0;

  // ----- WAL appends / fsyncs (WalWriter) -----
  // Probability an append reaches the segment only as a torn prefix
  // (process died mid-write; the tail is garbage replay must truncate).
  double wal_torn_rate = 0.0;
  // Probability one byte of the appended record is flipped on the way
  // to the platter (bit rot the record CRC must catch at replay).
  double wal_corrupt_rate = 0.0;
  // Probability a group-commit fsync fails with EIO. The writer rolls
  // the unsynced tail back and refuses the ack — EIO on commit must
  // never acknowledge.
  double wal_fsync_error_rate = 0.0;
  // Probability an append or fsync stalls for latency_spike_ms (slow
  // device under the commit path; inflates ack latency, nothing else).
  double wal_latency_rate = 0.0;

  // ----- scope -----
  // Never fault the first N ops of each site (lets a harness warm up /
  // bulk-load clean before the schedule starts).
  uint64_t skip_ops = 0;
  // Total injected-fault budget across all sites; once spent, every
  // later op passes clean.
  uint64_t max_faults = UINT64_MAX;
};

// Thread-safe decision point the storage layer consults on every
// checked operation. All counters are atomics; Reset() restarts the
// schedule from op 0 (e.g. between chaos repetitions).
class FaultInjector {
 public:
  enum class Site : int {
    kPageRead = 0,
    kSnapshotWrite = 1,
    kWalAppend = 2,
    kWalFsync = 3,
  };
  enum class WriteFault : int { kNone = 0, kTorn = 1, kCorrupt = 2 };

  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  const FaultPlan& plan() const { return plan_; }

  // Consulted by DiskManager::ReadPage after the read is charged.
  // Returns Ok (possibly after a real latency stall) or kUnavailable.
  Status OnPageRead(uint32_t page);

  // Consulted by the snapshot writer once per published file. `op` is
  // the write ordinal the decision was drawn at — feed it to ShapeDraw
  // to derive the tear point / corrupted byte deterministically.
  struct WriteDecision {
    WriteFault fault = WriteFault::kNone;
    uint64_t op = 0;
  };
  WriteDecision OnSnapshotWrite();

  // Consulted by WalWriter once per record append. Same WriteDecision
  // contract as OnSnapshotWrite: feed `op` to ShapeDrawAt to derive the
  // tear point / flipped byte. A latency fault stalls inline and still
  // returns kNone.
  WriteDecision OnWalAppend();

  // Consulted by WalWriter once per group-commit fsync. Returns Ok
  // (possibly after a latency stall) or kUnavailable (injected EIO).
  Status OnWalFsync();

  // Deterministic uniform draw in [0, 1) for shaping a committed fault
  // (where to tear, which byte to flip). Pure in (seed, op, salt).
  // Snapshot-write flavour, kept for the PR7 call sites.
  double ShapeDraw(uint64_t op, uint64_t salt) const;
  // Site-aware flavour for the WAL (and any future write site).
  double ShapeDrawAt(Site site, uint64_t op, uint64_t salt) const;

  // ----- accounting -----
  uint64_t read_ops() const { return ops_[0].load(); }
  uint64_t write_ops() const { return ops_[1].load(); }
  uint64_t read_faults() const { return read_faults_.load(); }
  uint64_t latency_faults() const { return latency_faults_.load(); }
  uint64_t torn_writes() const { return torn_writes_.load(); }
  uint64_t corrupt_writes() const { return corrupt_writes_.load(); }
  uint64_t wal_append_ops() const { return ops_[2].load(); }
  uint64_t wal_fsync_ops() const { return ops_[3].load(); }
  uint64_t wal_torn_appends() const { return wal_torn_appends_.load(); }
  uint64_t wal_corrupt_appends() const { return wal_corrupt_appends_.load(); }
  uint64_t wal_fsync_errors() const { return wal_fsync_errors_.load(); }
  uint64_t total_faults() const { return faults_.load(); }
  // Order-insensitive accumulation (XOR) of every committed fault's
  // (site, op, kind) hash: two runs injected the same fault schedule
  // iff their fingerprints match.
  uint64_t fingerprint() const { return fingerprint_.load(); }

  void Reset();

 private:
  // Pure decision draw in [0, 1) for op `op` at `site`.
  double Draw(Site site, uint64_t op, uint64_t salt) const;
  // Tries to commit one fault against the budget; false = budget spent.
  bool CommitFault(Site site, uint64_t op, int kind);

  FaultPlan plan_;
  std::atomic<uint64_t> ops_[4] = {{0}, {0}, {0}, {0}};
  std::atomic<uint64_t> faults_{0};
  std::atomic<uint64_t> read_faults_{0};
  std::atomic<uint64_t> latency_faults_{0};
  std::atomic<uint64_t> torn_writes_{0};
  std::atomic<uint64_t> corrupt_writes_{0};
  std::atomic<uint64_t> wal_torn_appends_{0};
  std::atomic<uint64_t> wal_corrupt_appends_{0};
  std::atomic<uint64_t> wal_fsync_errors_{0};
  std::atomic<uint64_t> fingerprint_{0};
};

}  // namespace gir

#endif  // GIR_STORAGE_FAULT_INJECTOR_H_
