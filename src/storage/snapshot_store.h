#ifndef GIR_STORAGE_SNAPSHOT_STORE_H_
#define GIR_STORAGE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "index/rtree.h"
#include "storage/fault_injector.h"

namespace gir {

class ArenaFile;
class FlatRTree;

// Crash-safe persistence of engine epochs. One snapshot file holds a
// complete frozen epoch — the dataset image (coordinates + tombstones)
// and the master R*-tree's page image (rtree_codec layout, page ids
// preserved 1:1, so a recovered engine's simulated I/O is bit-identical
// to the pre-crash one) — with every section CRC-32-checksummed.
//
// File layout (little-endian):
//   header:  u32 magic 'GSNP' | u32 format | u64 epoch version
//            | u32 section count | u32 crc(header bytes above)
//   section: u32 kind | u32 crc(payload) | u64 payload length | payload
//   footer:  u32 magic 'PNSG'
//
// Publish protocol: write to a temp name in the same directory, fsync
// the file, atomically rename onto the version-stamped final name, then
// fsync the directory — a crash at any point leaves either the old
// state or the complete new file, never a half-visible one. The one
// torn state a real system can still exhibit (rename durable before all
// data blocks, then power loss) is what the fault injector simulates:
// a truncated file at the final name. Recovery rejects it by checksum.
//
// Recovery scans the directory, validates every candidate (magic,
// header CRC, section bounds + CRCs, footer), and restores the newest
// valid epoch; torn and corrupt files are skipped and counted, never
// trusted. GirEngine::Open(FromSnapshotDir) runs recovery and restore
// in one step.
constexpr uint32_t kSnapshotMagic = 0x504E5347;   // "GSNP"
constexpr uint32_t kSnapshotFooter = 0x47534E50;  // "PNSG"
constexpr uint32_t kSnapshotFormat = 1;

class SnapshotStore {
 public:
  // `dir` is created on the first write if absent. The optional
  // injector (non-owning; may be null) gets one OnSnapshotWrite
  // decision per published file: kTorn truncates the published bytes at
  // a plan-derived point, kCorrupt flips one plan-derived payload byte.
  explicit SnapshotStore(std::string dir, FaultInjector* injector = nullptr)
      : dir_(std::move(dir)), injector_(injector) {}

  const std::string& dir() const { return dir_; }

  struct WriteStats {
    std::string path;   // final published path
    uint64_t bytes = 0;  // bytes the intact file holds
    FaultInjector::WriteFault injected = FaultInjector::WriteFault::kNone;
  };

  // Serializes one epoch and publishes it as FileName(version) under
  // dir(). Same-version writes overwrite (idempotent republish).
  // Injected write faults still return Ok — the damage is what recovery
  // must detect, exactly as a real crash would not report itself.
  Result<WriteStats> WriteSnapshot(const Dataset& dataset, const RTree& tree,
                                   uint64_t version);

  struct Recovered {
    std::unique_ptr<Dataset> dataset;
    std::optional<RTree> tree;  // page ids identical to the saved tree
    uint64_t version = 0;
    std::string path;    // file the epoch was restored from
    size_t scanned = 0;  // candidate snapshot files considered
    size_t rejected = 0;  // torn/corrupt/malformed candidates skipped
  };

  // Restores the newest valid epoch in dir(). The DiskManager backs the
  // restored tree's page accounting (pass the one the new engine will
  // use). NotFound when the directory holds no valid snapshot; a
  // NotFound after rejected > 0 means every candidate was damaged.
  Result<Recovered> RecoverLatest(DiskManager* disk) const;

  static std::string FileName(uint64_t version);

  // ----- mmap'able arena epochs -----
  // Serializes one frozen epoch as a page-aligned arena file (see
  // storage/arena_file.h) and publishes it as ArenaFileName(version)
  // under dir(), with the same temp + fsync + rename + dir-fsync
  // discipline and the same injected-fault surface (one OnSnapshotWrite
  // decision: kTorn truncates the published bytes, kCorrupt flips one
  // body byte) as WriteSnapshot. The payoff over WriteSnapshot: a
  // restart mmaps this file and serves it directly, instead of
  // deserializing and refreezing.
  Result<WriteStats> WriteArena(const FlatRTree& flat, uint64_t version);

  struct ArenaPick {
    std::string path;     // newest arena file that validated
    uint64_t version = 0;
    size_t scanned = 0;   // candidate arena files considered
    size_t rejected = 0;  // torn/corrupt/malformed candidates skipped
    // The winner's validated mapping, kept open so the caller serves
    // it directly instead of re-opening (and re-checksumming) the file.
    std::shared_ptr<const ArenaFile> file;
  };

  // Finds the newest valid arena epoch in dir(), validating every
  // candidate via ArenaFile::Open (full CRC + geometry check; damaged
  // files are skipped and counted, never served). The chosen file
  // comes back already mapped — GirEngine::Open with an arena source
  // builds straight over it. NotFound when no candidate validates.
  Result<ArenaPick> RecoverLatestArena() const;

  static std::string ArenaFileName(uint64_t version);

  // ----- epoch shipping (replica propagation) -----
  // Sorted list of the arena epoch versions named under dir(), by
  // filename only — no validation, so it is cheap enough to poll. A
  // torn file still lists; shipping and open both re-validate.
  std::vector<uint64_t> ListArenaVersions() const;

  // Copies the arena file for `version` out of `src` into this store's
  // directory, with the same temp + fsync + atomic-rename discipline —
  // and the same injected-fault surface — as WriteArena. This is the
  // replication transport: a ship can land torn or corrupted on the
  // receiving replica, and only the open-time checksum can tell, so
  // the receiver must treat every shipped file as untrusted input.
  // NotFound when src has no file for `version`.
  Result<WriteStats> ShipArenaFrom(const SnapshotStore& src, uint64_t version);

  // ----- epoch retention / GC -----
  struct GcStats {
    size_t removed_snapshots = 0;
    size_t removed_arenas = 0;
    size_t kept = 0;  // files surviving, both formats
  };

  // Keep-last-N retention, applied independently to each format
  // (snapshot-*.gsnp and arena-*.garn): a file is deleted only when it
  // is strictly older than its format's newest *valid* epoch AND not
  // among that format's N newest valid files. The newest valid epoch
  // is therefore never deleted — even with keep_last_n == 1 — and a
  // directory whose newest files are all damaged keeps every valid
  // older epoch (GC never widens a data-loss window). Damaged files
  // older than the newest valid one are reclaimed too: they can never
  // win recovery. Safe to run concurrently with recovery: readers that
  // lose a file mid-scan just count it rejected and fall back to a
  // newer surviving epoch. keep_last_n == 0 is InvalidArgument.
  Result<GcStats> GarbageCollect(size_t keep_last_n);

 private:
  std::string dir_;
  FaultInjector* injector_;
};

}  // namespace gir

#endif  // GIR_STORAGE_SNAPSHOT_STORE_H_
