#ifndef GIR_STORAGE_WAL_H_
#define GIR_STORAGE_WAL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "gir/update_batch.h"
#include "storage/fault_injector.h"

namespace gir {

// Epoch-segmented write-ahead log for GirEngine update batches.
//
// An acknowledged ApplyUpdates batch must survive a crash even when no
// snapshot/arena epoch was published afterwards. The engine appends the
// serialized batch here and waits for it to be fsync-durable *before*
// mutating the master or publishing the refrozen epoch; recovery then
// becomes two-phase — restore the newest valid snapshot/arena epoch,
// replay every committed WAL record past it.
//
// Segment layout (little-endian), one file per checkpoint interval,
// named wal-<base>.gwal where records inside cover epochs > base:
//   header:  u32 magic 'GWAL' | u32 format | u64 base epoch | u64 dim
//            | u32 crc(header bytes above)
//   record:  u32 crc(payload) | u64 payload length | payload
//            | u32 commit magic 'TMCW'
//   payload: u64 epoch | u64 #inserts | #inserts * dim f64
//            | u64 #deletes | #deletes * i64 record ids
//
// A record is committed iff it is fully framed, its CRC matches and the
// trailing commit marker is present; replay truncates the tail at the
// first record that is not (a torn append is exactly a crash mid-write,
// so nothing after it can have been acknowledged). Replay is idempotent
// via the epoch stamps: records at or below the recovered epoch are
// skipped, re-shipped segment overlap is skipped the same way.
constexpr uint32_t kWalMagic = 0x4C415747;        // "GWAL"
constexpr uint32_t kWalCommitMagic = 0x57434D54;  // "TMCW"
constexpr uint32_t kWalFormat = 1;

// Group-commit knobs for WalWriter. The defaults sync on every ack
// (window 0): a lone writer pays one fsync per batch, concurrent
// writers still share the leader's fsync. A positive window trades ack
// latency for fewer fsyncs; group_bytes caps how much unsynced data the
// window may accumulate before the leader stops waiting.
struct WalOptions {
  double group_window_ms = 0.0;
  uint64_t group_bytes = 256 * 1024;
};

// Directory-level view of a WAL: segment enumeration, committed-record
// replay with torn-tail truncation, checkpoint truncation and the
// replication transport. All methods are safe to call concurrently
// with an open WalWriter on the *active* (highest-base) segment except
// Truncate, which the engine serializes with its writer.
class WalStore {
 public:
  // `dir` is created on first use if absent. The optional injector
  // (non-owning; may be null) shapes shipped-segment damage exactly
  // like SnapshotStore::ShipArenaFrom does for arenas.
  explicit WalStore(std::string dir, FaultInjector* injector = nullptr)
      : dir_(std::move(dir)), injector_(injector) {}

  const std::string& dir() const { return dir_; }
  FaultInjector* injector() const { return injector_; }

  static std::string SegmentFileName(uint64_t base_epoch);

  // Sorted base epochs of every wal-*.gwal under dir(), by filename
  // only — no validation (replay and shipping re-validate).
  std::vector<uint64_t> ListSegmentBases() const;

  struct ReplayRecord {
    uint64_t epoch = 0;
    UpdateBatch batch;
  };

  // What recovery must do to one on-disk segment to make the log
  // physically match the replayed history (see Sanitize):
  //   kKeep      — every byte scanned clean; leave it alone.
  //   kTruncate  — cut the file back to keep_bytes, the end of its last
  //                clean record (torn/corrupt tail, or committed
  //                records past an epoch gap that can never replay).
  //   kRemove    — the header is unreadable, mismatched or from another
  //                dataset shape; nothing inside can be trusted.
  struct SegmentState {
    enum class Action { kKeep, kTruncate, kRemove };
    uint64_t base = 0;
    Action action = Action::kKeep;
    uint64_t keep_bytes = 0;        // clean-prefix length for kTruncate
  };

  struct ReplayLog {
    // Committed records with epoch > after_epoch, contiguous from
    // after_epoch + 1 — exactly the batches recovery must re-apply.
    std::vector<ReplayRecord> records;
    uint64_t tail_epoch = 0;        // last replayable epoch
    size_t segments_scanned = 0;
    size_t committed_seen = 0;      // committed records across segments
    size_t overlap_skipped = 0;     // idempotence: epoch <= current tail
    size_t torn_truncated = 0;      // segments cut at a damaged record
    size_t gap_dropped = 0;         // committed records past an epoch gap
    uint64_t wal_dim = 0;           // dim stamped in the segment headers
    // One entry per segment on disk, in base order — the sanitize plan.
    std::vector<SegmentState> segments;
  };

  // Scans segments in base order and collects every committed batch
  // past `after_epoch`. Damage (bad header, bad CRC, missing commit
  // marker, short frame) truncates that *segment's* tail; the scan then
  // continues into later segments, whose records still apply only while
  // they stay epoch-contiguous with the tail — this is what lets a
  // segment opened by a post-recovery writer replay even though the
  // pre-crash segment before it still carries its torn tail. Records
  // past an epoch gap can never be applied consistently and are counted
  // gap_dropped. Never errors on damage: damage is data recovery must
  // survive, not an I/O failure. Ok with zero records when dir() is
  // empty or holds nothing past after_epoch. Read-only: the `segments`
  // plan describes the cleanup, Sanitize performs it.
  Result<ReplayLog> ReadCommitted(uint64_t after_epoch) const;

  struct SanitizeStats {
    size_t truncated_segments = 0;
    size_t removed_segments = 0;
  };

  // Physically applies a ReadCommitted sanitize plan: ftruncates each
  // damaged segment back to its clean prefix and deletes segments whose
  // content is unreadable or from a stale timeline. Recovery MUST run
  // this before opening a writer — a logically-truncated-but-still-on-
  // disk torn tail would otherwise end a later replay scan early,
  // hiding (and then letting the writer destroy) acked records in
  // newer segments. Idempotent; errors are real I/O failures and must
  // abort recovery rather than leave the log unsanitized.
  Result<SanitizeStats> Sanitize(const ReplayLog& log);

  struct TruncateStats {
    size_t removed_segments = 0;
    size_t kept_segments = 0;
  };

  // Checkpoint GC: removes every segment whose records are all covered
  // by a durable epoch snapshot/arena at `durable_epoch` — i.e. whose
  // successor segment's base is <= durable_epoch. The highest-base
  // segment is never removed (it is the active tail), mirroring the
  // SnapshotStore::GarbageCollect discipline of never widening a
  // data-loss window.
  Result<TruncateStats> Truncate(uint64_t durable_epoch);

  struct ShipStats {
    std::string path;
    uint64_t bytes = 0;
    FaultInjector::WriteFault injected = FaultInjector::WriteFault::kNone;
  };

  // Copies the segment with `base_epoch` out of `src` into this store's
  // directory with the same temp + fsync + atomic-rename discipline —
  // and the same injected-fault surface — as arena shipping. A shipped
  // segment can land torn or corrupted; only record CRCs at replay can
  // tell, so the receiver treats every shipped segment as untrusted.
  Result<ShipStats> ShipSegmentFrom(const WalStore& src, uint64_t base_epoch);

 private:
  std::string dir_;
  FaultInjector* injector_;
};

// Append side of the WAL: one writer per engine, one open segment.
// Append() frames and writes the record (returning a commit ticket);
// WaitDurable(ticket) blocks until a group-commit fsync covers it.
// Thread-safe; concurrent WaitDurable callers elect a leader that
// fsyncs once for every record appended so far.
//
// Fault model: an injected torn/corrupt append leaves the damage on
// disk and poisons the writer — the process is considered crashed
// mid-write, every later call fails, and only recovery (which truncates
// the damaged tail) can continue. An injected or real fsync failure
// rolls the unsynced tail back (ftruncate to the last durable offset)
// before failing, so a batch whose ack failed is never replayed.
class WalWriter {
 public:
  // Opens (creating/truncating) the segment for `base_epoch` under
  // `store`. Truncating is safe: the engine rotates to a base only
  // after that epoch is durable elsewhere, so an existing same-base
  // segment can only hold a stale or torn tail. `dim` stamps the
  // header; appends validate against it.
  static Result<std::unique_ptr<WalWriter>> Open(WalStore* store,
                                                 uint64_t base_epoch,
                                                 uint64_t dim,
                                                 WalOptions options = {});

  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  uint64_t base_epoch() const { return base_epoch_; }
  uint64_t dim() const { return dim_; }

  // Frames and writes one record. Returns the commit ticket to pass to
  // WaitDurable. Fails (without acking) on dimension mismatch, a write
  // error, or an injected append fault.
  Result<uint64_t> Append(const UpdateBatch& batch, uint64_t epoch);

  // Blocks until every record with ticket <= `ticket` is fsync-durable.
  Status WaitDurable(uint64_t ticket);

  // Append + WaitDurable in one step — the engine's ack path.
  Status AppendDurable(const UpdateBatch& batch, uint64_t epoch);

  // Forces everything appended so far to disk (used before rotation).
  Status Sync();

  // Checkpoint rotation: syncs, closes the active segment and opens a
  // fresh one based at `new_base_epoch`. The caller then truncates the
  // store. Fails if new_base_epoch < base_epoch().
  Status Rotate(uint64_t new_base_epoch);

  struct Stats {
    uint64_t appends = 0;
    uint64_t fsyncs = 0;          // group commits actually issued
    uint64_t appended_bytes = 0;
    uint64_t rotations = 0;
  };
  Stats stats() const;

 private:
  WalWriter(WalStore* store, uint64_t dim, WalOptions options)
      : store_(store), dim_(dim), options_(options) {}

  // Opens segment `base` (O_TRUNC), writes + fsyncs the header and
  // fsyncs the directory. Requires mu_ (or pre-publication).
  Status OpenSegmentLocked(uint64_t base);
  // Issues one group-commit fsync covering everything appended so far.
  // Requires mu_; drops it around the fsync itself.
  Status LeaderSyncLocked(std::unique_lock<std::mutex>& lock);

  WalStore* store_;
  const uint64_t dim_;
  const WalOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  int fd_ = -1;
  uint64_t base_epoch_ = 0;
  std::string segment_path_;
  // Commit tickets: next_ticket_ - 1 is the last appended record,
  // durable_ticket_ the last one an fsync covers.
  uint64_t next_ticket_ = 1;
  uint64_t last_ticket_ = 0;
  uint64_t durable_ticket_ = 0;
  bool sync_inflight_ = false;
  uint64_t file_offset_ = 0;     // bytes written to the segment
  uint64_t durable_offset_ = 0;  // bytes covered by the last good fsync
  std::chrono::steady_clock::time_point oldest_unsynced_;
  // First unrecoverable failure (torn/corrupt append = simulated crash,
  // failed fsync rollback); every later call returns it.
  Status poison_ = Status::Ok();

  uint64_t appends_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t appended_bytes_ = 0;
  uint64_t rotations_ = 0;
};

}  // namespace gir

#endif  // GIR_STORAGE_WAL_H_
