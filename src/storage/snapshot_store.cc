#include "storage/snapshot_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/crc32.h"
#include "index/flat_rtree.h"
#include "index/rtree_codec.h"
#include "storage/arena_file.h"

namespace gir {

namespace {

namespace fs = std::filesystem;

constexpr uint32_t kSectionDataset = 1;
constexpr uint32_t kSectionRtree = 2;
// magic + format + version + section count + header CRC.
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 4 + 4;

void AppendBytes(std::vector<uint8_t>* out, const void* p, size_t n) {
  const size_t at = out->size();
  out->resize(at + n);
  if (n > 0) std::memcpy(out->data() + at, p, n);
}
void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  AppendBytes(out, &v, sizeof(v));
}
void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  AppendBytes(out, &v, sizeof(v));
}

// Bounds-checked reader; every accessor fails instead of overrunning,
// so a truncated file can never walk the parser off the buffer.
struct Cursor {
  const uint8_t* p = nullptr;
  size_t n = 0;
  size_t at = 0;
  bool Bytes(void* out, size_t k) {
    if (k > n - at) return false;
    std::memcpy(out, p + at, k);
    at += k;
    return true;
  }
  bool U32(uint32_t* v) { return Bytes(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Bytes(v, sizeof(*v)); }
};

std::vector<uint8_t> DatasetPayload(const Dataset& d) {
  std::vector<uint8_t> out;
  AppendU64(&out, d.dim());
  AppendU64(&out, d.size());
  for (size_t i = 0; i < d.size(); ++i) {
    const VecView row = d.Get(static_cast<RecordId>(i));
    AppendBytes(&out, row.data(), row.size() * sizeof(double));
  }
  std::vector<int32_t> dead;
  for (size_t i = 0; i < d.size(); ++i) {
    if (!d.IsLive(static_cast<RecordId>(i))) {
      dead.push_back(static_cast<int32_t>(i));
    }
  }
  AppendU64(&out, dead.size());
  AppendBytes(&out, dead.data(), dead.size() * sizeof(int32_t));
  return out;
}

Result<std::unique_ptr<Dataset>> ParseDataset(const uint8_t* p, size_t n) {
  Cursor c{p, n};
  uint64_t dim = 0;
  uint64_t count = 0;
  if (!c.U64(&dim) || !c.U64(&count) || dim == 0) {
    return Status::DataLoss("snapshot dataset section malformed");
  }
  // The coordinate block must fit what the section actually holds.
  if (count > (n - c.at) / sizeof(double) / dim) {
    return Status::DataLoss("snapshot dataset section truncated");
  }
  auto out = std::make_unique<Dataset>(static_cast<size_t>(dim));
  out->Reserve(static_cast<size_t>(count));
  std::vector<double> row(static_cast<size_t>(dim));
  for (uint64_t i = 0; i < count; ++i) {
    if (!c.Bytes(row.data(), row.size() * sizeof(double))) {
      return Status::DataLoss("snapshot dataset section truncated");
    }
    out->Append(VecView(row.data(), row.size()));
  }
  uint64_t dead_count = 0;
  if (!c.U64(&dead_count) || dead_count > count) {
    return Status::DataLoss("snapshot dataset tombstones malformed");
  }
  for (uint64_t i = 0; i < dead_count; ++i) {
    int32_t id = 0;
    if (!c.Bytes(&id, sizeof(id)) || id < 0 ||
        static_cast<uint64_t>(id) >= count) {
      return Status::DataLoss("snapshot dataset tombstones malformed");
    }
    out->MarkDeleted(id);
  }
  if (c.at != n) {
    return Status::DataLoss("snapshot dataset section has trailing bytes");
  }
  return out;
}

struct ParsedSnapshot {
  uint64_t version = 0;
  const uint8_t* dataset = nullptr;
  size_t dataset_len = 0;
  const uint8_t* rtree = nullptr;
  size_t rtree_len = 0;
};

// Full structural + checksum validation; false on any damage. This is
// the recovery gate: a file only counts as a restore candidate when
// every byte it claims to hold is present and every section checksum
// matches.
bool ValidateAndParse(const std::vector<uint8_t>& file, ParsedSnapshot* out) {
  Cursor c{file.data(), file.size()};
  uint32_t magic = 0;
  uint32_t format = 0;
  uint32_t sections = 0;
  uint32_t header_crc = 0;
  if (!c.U32(&magic) || magic != kSnapshotMagic) return false;
  if (!c.U32(&format) || format != kSnapshotFormat) return false;
  if (!c.U64(&out->version)) return false;
  if (!c.U32(&sections)) return false;
  if (!c.U32(&header_crc)) return false;
  if (header_crc != Crc32(file.data(), kHeaderBytes - 4)) return false;
  for (uint32_t s = 0; s < sections; ++s) {
    uint32_t kind = 0;
    uint32_t crc = 0;
    uint64_t len = 0;
    if (!c.U32(&kind) || !c.U32(&crc) || !c.U64(&len)) return false;
    if (len > file.size() - c.at) return false;
    const uint8_t* payload = file.data() + c.at;
    if (crc != Crc32(payload, static_cast<size_t>(len))) return false;
    if (kind == kSectionDataset) {
      out->dataset = payload;
      out->dataset_len = static_cast<size_t>(len);
    } else if (kind == kSectionRtree) {
      out->rtree = payload;
      out->rtree_len = static_cast<size_t>(len);
    }
    // Unknown kinds are legal (newer writers): checksummed and skipped.
    c.at += static_cast<size_t>(len);
  }
  uint32_t footer = 0;
  if (!c.U32(&footer) || footer != kSnapshotFooter) return false;
  if (c.at != file.size()) return false;  // trailing garbage
  return out->dataset != nullptr && out->rtree != nullptr;
}

bool ReadWholeFile(const fs::path& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return false;
  in.seekg(0, std::ios::beg);
  out->resize(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(out->data()),
          static_cast<std::streamsize>(out->size()));
  return static_cast<bool>(in);
}

// Applies one OnSnapshotWrite fault decision to an arena image about
// to be published (by WriteArena or by a replication ship): kTorn
// shortens the published length to a strict nonempty prefix, kCorrupt
// flips one byte inside a section *payload* — the alignment padding
// between sections carries no data, so a flip there is not a loss and
// would never (and should never) be detected. The section table sits
// right after the fixed header fields; each 32-byte entry holds u64
// offset / u64 length at bytes 8 / 16.
size_t ShapeArenaFault(FaultInjector* injector, std::vector<uint8_t>* file,
                       FaultInjector::WriteFault* injected) {
  size_t publish_len = file->size();
  if (injector == nullptr) return publish_len;
  const FaultInjector::WriteDecision d = injector->OnSnapshotWrite();
  *injected = d.fault;
  if (d.fault == FaultInjector::WriteFault::kTorn) {
    publish_len = 1 + static_cast<size_t>(
                          injector->ShapeDraw(d.op, 0) *
                          static_cast<double>(file->size() - 2));
  } else if (d.fault == FaultInjector::WriteFault::kCorrupt) {
    constexpr size_t kHeaderFixed = 80;
    constexpr size_t kEntryBytes = 32;
    if (file->size() < kHeaderFixed + kArenaSectionCount * kEntryBytes) {
      // Shipping an already-torn source: no intact section table to
      // aim at; flip the middle byte instead.
      (*file)[file->size() / 2] ^= 0x40;
      return publish_len;
    }
    uint64_t total = 0;
    uint64_t offsets[kArenaSectionCount];
    uint64_t lengths[kArenaSectionCount];
    for (uint32_t s = 0; s < kArenaSectionCount; ++s) {
      const uint8_t* entry = file->data() + kHeaderFixed + s * kEntryBytes;
      std::memcpy(&offsets[s], entry + 8, sizeof(uint64_t));
      std::memcpy(&lengths[s], entry + 16, sizeof(uint64_t));
      total += lengths[s];
    }
    uint64_t at = static_cast<uint64_t>(injector->ShapeDraw(d.op, 1) *
                                        static_cast<double>(total - 1));
    for (uint32_t s = 0; s < kArenaSectionCount; ++s) {
      if (at < lengths[s] && offsets[s] + at < file->size()) {
        (*file)[offsets[s] + at] ^= 0x40;
        break;
      }
      if (at < lengths[s]) break;  // torn source: flip target truncated away
      at -= lengths[s];
    }
  }
  return publish_len;
}

// Crash-safe publish: temp file in the same directory, fsync the data,
// atomic rename onto the final name, fsync the directory entry. Shared
// by the snapshot and arena writers.
Status PublishAtomically(const std::string& dir, const fs::path& final_path,
                         const uint8_t* data, size_t publish_len) {
  const fs::path tmp_path =
      fs::path(dir) / (final_path.filename().string() + ".tmp");
  {
    const int fd =
        ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0) {
      return Status::Internal("cannot open " + tmp_path.string());
    }
    size_t off = 0;
    while (off < publish_len) {
      const ssize_t w = ::write(fd, data + off, publish_len - off);
      if (w <= 0) {
        ::close(fd);
        return Status::Internal("short write to " + tmp_path.string());
      }
      off += static_cast<size_t>(w);
    }
    if (::fsync(fd) != 0) {
      ::close(fd);
      return Status::Internal("fsync failed on " + tmp_path.string());
    }
    // A failed close can be the first report of a deferred write error
    // (NFS, some local filesystems flush on close): the publish did not
    // happen, and pretending otherwise would acknowledge lost data.
    if (::close(fd) != 0) {
      return Status::Internal("close failed on " + tmp_path.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::Internal("rename to " + final_path.string() +
                            " failed: " + ec.message());
  }
  // The rename itself is only durable once the directory entry is: a
  // dir-fsync failure means the publish may vanish on power loss, so it
  // fails the write instead of being best-effort.
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd < 0) {
    return Status::Internal("cannot open dir " + dir + " for fsync");
  }
  const bool dir_synced = ::fsync(dfd) == 0;
  const bool dir_closed = ::close(dfd) == 0;
  if (!dir_synced || !dir_closed) {
    return Status::Internal("directory fsync failed on " + dir);
  }
  return Status::Ok();
}

}  // namespace

std::string SnapshotStore::FileName(uint64_t version) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "snapshot-%020llu.gsnp",
                static_cast<unsigned long long>(version));
  return buf;
}

Result<SnapshotStore::WriteStats> SnapshotStore::WriteSnapshot(
    const Dataset& dataset, const RTree& tree, uint64_t version) {
  Result<std::vector<uint8_t>> image = SaveRTreeImage(tree);
  if (!image.ok()) return image.status();
  const std::vector<uint8_t> ds = DatasetPayload(dataset);

  std::vector<uint8_t> file;
  file.reserve(kHeaderBytes + ds.size() + image->size() + 64);
  AppendU32(&file, kSnapshotMagic);
  AppendU32(&file, kSnapshotFormat);
  AppendU64(&file, version);
  AppendU32(&file, 2);  // section count
  AppendU32(&file, Crc32(file.data(), file.size()));
  const auto append_section = [&file](uint32_t kind,
                                      const std::vector<uint8_t>& payload) {
    AppendU32(&file, kind);
    AppendU32(&file, Crc32(payload.data(), payload.size()));
    AppendU64(&file, payload.size());
    AppendBytes(&file, payload.data(), payload.size());
  };
  append_section(kSectionDataset, ds);
  append_section(kSectionRtree, *image);
  AppendU32(&file, kSnapshotFooter);

  WriteStats stats;
  stats.bytes = file.size();

  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::Internal("cannot create snapshot dir " + dir_ + ": " +
                            ec.message());
  }
  const fs::path final_path = fs::path(dir_) / FileName(version);
  stats.path = final_path.string();

  // One fault decision per published file, shaped deterministically
  // from the decision's op ordinal.
  size_t publish_len = file.size();
  if (injector_ != nullptr) {
    const FaultInjector::WriteDecision d = injector_->OnSnapshotWrite();
    stats.injected = d.fault;
    if (d.fault == FaultInjector::WriteFault::kTorn) {
      // The modeled crash: rename durable, tail data blocks not — the
      // final name holds a strict prefix. Always at least one byte
      // short, never empty (both extremes are separately interesting
      // but the schedule should hit the middle).
      publish_len = 1 + static_cast<size_t>(
                            injector_->ShapeDraw(d.op, 0) *
                            static_cast<double>(file.size() - 2));
    } else if (d.fault == FaultInjector::WriteFault::kCorrupt) {
      // Bit rot after publish: flip one byte past the header (so only
      // a section checksum — not the magic — can catch it), sparing
      // the footer.
      const size_t span = file.size() - kHeaderBytes - sizeof(uint32_t);
      const size_t at =
          kHeaderBytes + static_cast<size_t>(injector_->ShapeDraw(d.op, 1) *
                                             static_cast<double>(span));
      file[at] ^= 0x40;
    }
  }

  Status published =
      PublishAtomically(dir_, final_path, file.data(), publish_len);
  if (!published.ok()) return published;
  return stats;
}

std::string SnapshotStore::ArenaFileName(uint64_t version) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "arena-%020llu.garn",
                static_cast<unsigned long long>(version));
  return buf;
}

Result<SnapshotStore::WriteStats> SnapshotStore::WriteArena(
    const FlatRTree& flat, uint64_t version) {
  std::vector<uint8_t> file = BuildArenaImage(flat, version);

  WriteStats stats;
  stats.bytes = file.size();

  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::Internal("cannot create snapshot dir " + dir_ + ": " +
                            ec.message());
  }
  const fs::path final_path = fs::path(dir_) / ArenaFileName(version);
  stats.path = final_path.string();

  // Same fault surface as WriteSnapshot: one decision per published
  // file, shaped deterministically from the decision's op ordinal.
  const size_t publish_len = ShapeArenaFault(injector_, &file, &stats.injected);

  Status published =
      PublishAtomically(dir_, final_path, file.data(), publish_len);
  if (!published.ok()) return published;
  return stats;
}

Result<SnapshotStore::ArenaPick> SnapshotStore::RecoverLatestArena() const {
  ArenaPick out;
  std::error_code ec;
  std::vector<fs::path> candidates;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_, ec)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("arena-", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".garn") == 0) {
      candidates.push_back(e.path());
    }
  }
  if (ec) {
    return Status::NotFound("no snapshot directory at " + dir_);
  }
  std::sort(candidates.begin(), candidates.end());

  bool found = false;
  for (const fs::path& path : candidates) {
    ++out.scanned;
    // Full validation (header + every section CRC). The winning
    // mapping is kept open and handed to the caller — re-opening would
    // checksum the whole file a second time, doubling the cold-restart
    // cost this path exists to cut.
    Result<std::shared_ptr<const ArenaFile>> arena =
        ArenaFile::Open(path.string());
    if (!arena.ok()) {
      ++out.rejected;
      continue;
    }
    if (!found || (*arena)->version() > out.version) {
      found = true;
      out.version = (*arena)->version();
      out.path = path.string();
      out.file = std::move(*arena);
    }
  }
  if (!found) {
    return Status::NotFound(
        "no valid arena in " + dir_ + " (" + std::to_string(out.scanned) +
        " scanned, " + std::to_string(out.rejected) + " rejected)");
  }
  return out;
}

Result<SnapshotStore::Recovered> SnapshotStore::RecoverLatest(
    DiskManager* disk) const {
  Recovered out;
  std::error_code ec;
  std::vector<fs::path> candidates;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_, ec)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("snapshot-", 0) == 0 &&
        name.size() > 5 && name.compare(name.size() - 5, 5, ".gsnp") == 0) {
      candidates.push_back(e.path());
    }
  }
  if (ec) {
    return Status::NotFound("no snapshot directory at " + dir_);
  }
  // Deterministic scan order (directory iteration order is not): the
  // zero-padded names sort by version.
  std::sort(candidates.begin(), candidates.end());

  std::vector<uint8_t> best_file;
  ParsedSnapshot best;
  bool found = false;
  std::vector<uint8_t> file;
  for (const fs::path& path : candidates) {
    ++out.scanned;
    ParsedSnapshot parsed;
    if (!ReadWholeFile(path, &file) || !ValidateAndParse(file, &parsed)) {
      ++out.rejected;
      continue;
    }
    if (!found || parsed.version > best.version) {
      best_file.swap(file);
      // Re-anchor the parsed spans into the retained buffer.
      if (!ValidateAndParse(best_file, &best)) {
        ++out.rejected;  // unreachable: same bytes just validated
        found = false;
        continue;
      }
      found = true;
      out.path = path.string();
    }
  }
  if (!found) {
    return Status::NotFound(
        "no valid snapshot in " + dir_ + " (" + std::to_string(out.scanned) +
        " scanned, " + std::to_string(out.rejected) + " rejected)");
  }

  Result<std::unique_ptr<Dataset>> dataset =
      ParseDataset(best.dataset, best.dataset_len);
  if (!dataset.ok()) return dataset.status();
  std::vector<uint8_t> image(best.rtree, best.rtree + best.rtree_len);
  Result<RTree> tree = LoadRTreeImage(dataset->get(), disk, image);
  if (!tree.ok()) return tree.status();

  out.version = best.version;
  out.dataset = std::move(*dataset);
  out.tree.emplace(std::move(*tree));
  return out;
}

namespace {

// Parses the version out of a canonical epoch filename
// (prefix-<20 digits>.suffix); false when the name is not ours.
bool ParseEpochName(const std::string& name, const char* prefix,
                    const char* suffix, uint64_t* version) {
  const size_t plen = std::strlen(prefix);
  const size_t slen = std::strlen(suffix);
  if (name.size() <= plen + slen) return false;
  if (name.rfind(prefix, 0) != 0) return false;
  if (name.compare(name.size() - slen, slen, suffix) != 0) return false;
  const std::string digits = name.substr(plen, name.size() - plen - slen);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *version = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

}  // namespace

std::vector<uint64_t> SnapshotStore::ListArenaVersions() const {
  std::vector<uint64_t> out;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_, ec)) {
    uint64_t v = 0;
    if (ParseEpochName(e.path().filename().string(), "arena-", ".garn", &v)) {
      out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<SnapshotStore::WriteStats> SnapshotStore::ShipArenaFrom(
    const SnapshotStore& src, uint64_t version) {
  const fs::path src_path = fs::path(src.dir()) / ArenaFileName(version);
  std::vector<uint8_t> file;
  if (!ReadWholeFile(src_path, &file) || file.empty()) {
    return Status::NotFound("no arena epoch " + std::to_string(version) +
                            " in " + src.dir());
  }

  WriteStats stats;
  stats.bytes = file.size();

  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::Internal("cannot create snapshot dir " + dir_ + ": " +
                            ec.message());
  }
  const fs::path final_path = fs::path(dir_) / ArenaFileName(version);
  stats.path = final_path.string();

  // The ship is a write on the receiving side: it draws from the same
  // injected-fault surface as a local publish, because a replication
  // transport fails the same ways a local disk does.
  const size_t publish_len = ShapeArenaFault(injector_, &file, &stats.injected);

  Status published =
      PublishAtomically(dir_, final_path, file.data(), publish_len);
  if (!published.ok()) return published;
  return stats;
}

Result<SnapshotStore::GcStats> SnapshotStore::GarbageCollect(
    size_t keep_last_n) {
  if (keep_last_n == 0) {
    return Status::InvalidArgument(
        "GarbageCollect keep_last_n must be >= 1 (the newest valid epoch is "
        "never deleted)");
  }
  struct Candidate {
    fs::path path;
    uint64_t version = 0;
    bool valid = false;
  };
  std::vector<Candidate> snaps;
  std::vector<Candidate> arenas;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_, ec)) {
    const std::string name = e.path().filename().string();
    uint64_t v = 0;
    if (ParseEpochName(name, "snapshot-", ".gsnp", &v)) {
      snaps.push_back({e.path(), v, false});
    } else if (ParseEpochName(name, "arena-", ".garn", &v)) {
      arenas.push_back({e.path(), v, false});
    }
  }
  if (ec) {
    return Status::NotFound("no snapshot directory at " + dir_);
  }
  std::vector<uint8_t> buf;
  for (Candidate& c : snaps) {
    ParsedSnapshot parsed;
    c.valid = ReadWholeFile(c.path, &buf) && ValidateAndParse(buf, &parsed);
  }
  for (Candidate& c : arenas) {
    c.valid = ArenaFile::Open(c.path.string()).ok();
  }

  GcStats out;
  const auto sweep = [&out](std::vector<Candidate>& cands, size_t keep,
                            size_t* removed) {
    // Newest first; a file is reclaimed only when a newer valid epoch
    // exists and it is not one of the `keep` newest valid files — so
    // the newest valid epoch always survives, and damaged files newer
    // than it are left alone (they may matter to a post-mortem, and
    // recovery rejects them anyway).
    std::sort(cands.begin(), cands.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.version > b.version;
              });
    bool have_newest_valid = false;
    uint64_t newest_valid = 0;
    for (const Candidate& c : cands) {
      if (c.valid) {
        newest_valid = c.version;
        have_newest_valid = true;
        break;
      }
    }
    size_t valid_seen = 0;
    for (const Candidate& c : cands) {
      if (c.valid) ++valid_seen;
      const bool reclaim = have_newest_valid && c.version < newest_valid &&
                           !(c.valid && valid_seen <= keep);
      if (reclaim) {
        std::error_code rm_ec;
        if (fs::remove(c.path, rm_ec) && !rm_ec) {
          ++*removed;
          continue;
        }
      }
      ++out.kept;
    }
  };
  sweep(snaps, keep_last_n, &out.removed_snapshots);
  sweep(arenas, keep_last_n, &out.removed_arenas);
  return out;
}

}  // namespace gir
