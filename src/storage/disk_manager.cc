#include "storage/disk_manager.h"

namespace gir {

DiskManager::DiskManager(size_t page_size_bytes, double ms_per_read)
    : page_size_bytes_(page_size_bytes), ms_per_read_(ms_per_read) {}

PageId DiskManager::Allocate() {
  return next_page_.fetch_add(1, std::memory_order_relaxed);
}

IoStats& DiskManager::ThreadStats() {
  static thread_local IoStats stats;
  return stats;
}

}  // namespace gir
