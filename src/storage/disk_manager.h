#ifndef GIR_STORAGE_DISK_MANAGER_H_
#define GIR_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "storage/fault_injector.h"
#include "storage/io_stats.h"

namespace gir {

using PageId = uint32_t;
constexpr PageId kInvalidPage = static_cast<PageId>(-1);

// Simulated disk: hands out page ids, enforces the page-size budget and
// accounts every page read. Substitutes for the paper's physical disk
// (see DESIGN.md §5); index nodes live in memory, but any access that
// would have been a disk read on the paper's setup must be routed
// through NoteRead so the I/O cost model stays faithful.
//
// Thread safety: the counters are atomic, so concurrent readers (e.g.
// BatchEngine fanning queries across a shared R-tree) may call NoteRead
// freely. Per-query deltas under concurrency must use ThreadStats(),
// which accumulates per calling thread: the global counters interleave
// reads from all in-flight queries.
class DiskManager {
 public:
  // The paper uses 4 KB pages; 10 ms approximates a random read on the
  // 2014-era SATA disks of its testbed.
  explicit DiskManager(size_t page_size_bytes = 4096,
                       double ms_per_read = 10.0);

  size_t page_size_bytes() const { return page_size_bytes_; }
  double ms_per_read() const { return ms_per_read_; }

  // Reserves a new page id.
  PageId Allocate();
  size_t allocated_pages() const {
    return next_page_.load(std::memory_order_relaxed);
  }

  // Attaches a fault schedule consulted by every ReadPage (non-owning;
  // nullptr detaches). The injector must outlive its attachment. A
  // plain NoteRead never faults — only the checked paths opt in.
  void AttachFaultInjector(FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }
  FaultInjector* fault_injector() const {
    return injector_.load(std::memory_order_acquire);
  }

  // Checked read of one page: charges the read like NoteRead, then
  // consults the attached fault plan — a latency fault stalls before
  // returning Ok, a read fault returns kUnavailable (the charge
  // stands: the device attempt happened). The fallible traversals
  // (BRS solo + shared) route their node fetches through this; legacy
  // accounting-only sites keep calling NoteRead and can never fail.
  Status ReadPage(PageId page) {
    NoteRead();
    FaultInjector* fi = injector_.load(std::memory_order_acquire);
    if (fi == nullptr) return Status::Ok();
    return fi->OnPageRead(page);
  }

  // Accounting hooks.
  void NoteRead() {
    reads_.fetch_add(1, std::memory_order_relaxed);
    ++ThreadStats().reads;
  }
  void NoteWrite() {
    writes_.fetch_add(1, std::memory_order_relaxed);
    ++ThreadStats().writes;
  }
  // Frontier-prefetch accounting (mmap'd arenas only): `n` pages were
  // madvise'd ahead of their round, and each first touch of a mapped
  // page reports whether it found the page resident.
  void NotePrefetchIssued(uint64_t n) {
    prefetch_issued_.fetch_add(n, std::memory_order_relaxed);
    ThreadStats().prefetch_issued += n;
  }
  void NotePrefetchTouch(bool resident) {
    if (resident) {
      prefetch_hits_.fetch_add(1, std::memory_order_relaxed);
      ++ThreadStats().prefetch_hits;
    } else {
      prefetch_misses_.fetch_add(1, std::memory_order_relaxed);
      ++ThreadStats().prefetch_misses;
    }
  }

  // Snapshot of the global counters (all threads, since construction or
  // the last ResetStats).
  IoStats stats() const {
    return IoStats{reads_.load(std::memory_order_relaxed),
                   writes_.load(std::memory_order_relaxed),
                   prefetch_issued_.load(std::memory_order_relaxed),
                   prefetch_hits_.load(std::memory_order_relaxed),
                   prefetch_misses_.load(std::memory_order_relaxed)};
  }
  // Zeroes the global counters AND the calling thread's ThreadStats
  // accumulator, so a reset between single-threaded measurement runs
  // does not leave stale thread-local counts skewing the next
  // before/after delta. Other threads' accumulators are untouched
  // (they diff around their own sections, so their deltas stay valid).
  void ResetStats() {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
    prefetch_issued_.store(0, std::memory_order_relaxed);
    prefetch_hits_.store(0, std::memory_order_relaxed);
    prefetch_misses_.store(0, std::memory_order_relaxed);
    ThreadStats() = IoStats{};
  }

  // Cumulative I/O charged by the *calling thread*, across all
  // DiskManager instances. Diff around a section for exact per-query
  // accounting that stays correct when other threads share the disk:
  //
  //   IoStats before = DiskManager::ThreadStats();
  //   ... run the query on this thread ...
  //   IoStats cost = DiskManager::ThreadStats() - before;
  static IoStats& ThreadStats();

  // Simulated I/O time accumulated so far.
  double ReadMillis() const { return stats().ReadMillis(ms_per_read_); }

 private:
  size_t page_size_bytes_;
  double ms_per_read_;
  std::atomic<PageId> next_page_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> prefetch_issued_{0};
  std::atomic<uint64_t> prefetch_hits_{0};
  std::atomic<uint64_t> prefetch_misses_{0};
  std::atomic<FaultInjector*> injector_{nullptr};
};

}  // namespace gir

#endif  // GIR_STORAGE_DISK_MANAGER_H_
