#ifndef GIR_STORAGE_DISK_MANAGER_H_
#define GIR_STORAGE_DISK_MANAGER_H_

#include <cstddef>
#include <cstdint>

#include "storage/io_stats.h"

namespace gir {

using PageId = uint32_t;
constexpr PageId kInvalidPage = static_cast<PageId>(-1);

// Simulated disk: hands out page ids, enforces the page-size budget and
// accounts every page read. Substitutes for the paper's physical disk
// (see DESIGN.md §5); index nodes live in memory, but any access that
// would have been a disk read on the paper's setup must be routed
// through NoteRead so the I/O cost model stays faithful.
class DiskManager {
 public:
  // The paper uses 4 KB pages; 10 ms approximates a random read on the
  // 2014-era SATA disks of its testbed.
  explicit DiskManager(size_t page_size_bytes = 4096,
                       double ms_per_read = 10.0);

  size_t page_size_bytes() const { return page_size_bytes_; }
  double ms_per_read() const { return ms_per_read_; }

  // Reserves a new page id.
  PageId Allocate();
  size_t allocated_pages() const { return next_page_; }

  // Accounting hooks.
  void NoteRead() { ++stats_.reads; }
  void NoteWrite() { ++stats_.writes; }

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats{}; }

  // Simulated I/O time accumulated so far.
  double ReadMillis() const { return stats_.ReadMillis(ms_per_read_); }

 private:
  size_t page_size_bytes_;
  double ms_per_read_;
  PageId next_page_ = 0;
  IoStats stats_;
};

}  // namespace gir

#endif  // GIR_STORAGE_DISK_MANAGER_H_
