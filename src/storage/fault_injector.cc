#include "storage/fault_injector.h"

#include <chrono>
#include <string>
#include <thread>

namespace gir {

namespace {

// SplitMix64: the decision hash. Good avalanche for sequential inputs,
// no state — exactly what a pure (seed, op) -> draw function needs.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double ToUnit(uint64_t h) {
  // 53 high bits -> [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

double FaultInjector::Draw(Site site, uint64_t op, uint64_t salt) const {
  uint64_t h = Mix64(plan_.seed ^ Mix64(static_cast<uint64_t>(site) |
                                        (salt << 8)));
  return ToUnit(Mix64(h ^ Mix64(op)));
}

double FaultInjector::ShapeDraw(uint64_t op, uint64_t salt) const {
  return Draw(Site::kSnapshotWrite, op, 0x100 + salt);
}

double FaultInjector::ShapeDrawAt(Site site, uint64_t op,
                                  uint64_t salt) const {
  return Draw(site, op, 0x100 + salt);
}

bool FaultInjector::CommitFault(Site site, uint64_t op, int kind) {
  // Budget check-and-commit: oversubscription beyond max_faults backs
  // out, so the total never exceeds the plan.
  uint64_t n = faults_.fetch_add(1, std::memory_order_relaxed);
  if (n >= plan_.max_faults) {
    faults_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  const uint64_t tag = Mix64((static_cast<uint64_t>(site) << 62) ^
                             (static_cast<uint64_t>(kind) << 56) ^ op);
  fingerprint_.fetch_xor(tag, std::memory_order_relaxed);
  return true;
}

Status FaultInjector::OnPageRead(uint32_t page) {
  const uint64_t op = ops_[0].fetch_add(1, std::memory_order_relaxed);
  if (op < plan_.skip_ops) return Status::Ok();
  if (plan_.read_error_rate > 0.0 &&
      Draw(Site::kPageRead, op, 0) < plan_.read_error_rate &&
      CommitFault(Site::kPageRead, op, 0)) {
    read_faults_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("injected read failure at page " +
                               std::to_string(page));
  }
  if (plan_.read_latency_rate > 0.0 &&
      Draw(Site::kPageRead, op, 1) < plan_.read_latency_rate &&
      CommitFault(Site::kPageRead, op, 1)) {
    latency_faults_.fetch_add(1, std::memory_order_relaxed);
    if (plan_.latency_spike_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(plan_.latency_spike_ms));
    }
  }
  return Status::Ok();
}

FaultInjector::WriteDecision FaultInjector::OnSnapshotWrite() {
  WriteDecision d;
  d.op = ops_[1].fetch_add(1, std::memory_order_relaxed);
  if (d.op < plan_.skip_ops) return d;
  if (plan_.torn_write_rate > 0.0 &&
      Draw(Site::kSnapshotWrite, d.op, 0) < plan_.torn_write_rate &&
      CommitFault(Site::kSnapshotWrite, d.op, 1)) {
    torn_writes_.fetch_add(1, std::memory_order_relaxed);
    d.fault = WriteFault::kTorn;
    return d;
  }
  if (plan_.corrupt_rate > 0.0 &&
      Draw(Site::kSnapshotWrite, d.op, 1) < plan_.corrupt_rate &&
      CommitFault(Site::kSnapshotWrite, d.op, 2)) {
    corrupt_writes_.fetch_add(1, std::memory_order_relaxed);
    d.fault = WriteFault::kCorrupt;
    return d;
  }
  return d;
}

FaultInjector::WriteDecision FaultInjector::OnWalAppend() {
  WriteDecision d;
  d.op = ops_[2].fetch_add(1, std::memory_order_relaxed);
  if (d.op < plan_.skip_ops) return d;
  if (plan_.wal_torn_rate > 0.0 &&
      Draw(Site::kWalAppend, d.op, 0) < plan_.wal_torn_rate &&
      CommitFault(Site::kWalAppend, d.op, 1)) {
    wal_torn_appends_.fetch_add(1, std::memory_order_relaxed);
    d.fault = WriteFault::kTorn;
    return d;
  }
  if (plan_.wal_corrupt_rate > 0.0 &&
      Draw(Site::kWalAppend, d.op, 1) < plan_.wal_corrupt_rate &&
      CommitFault(Site::kWalAppend, d.op, 2)) {
    wal_corrupt_appends_.fetch_add(1, std::memory_order_relaxed);
    d.fault = WriteFault::kCorrupt;
    return d;
  }
  if (plan_.wal_latency_rate > 0.0 &&
      Draw(Site::kWalAppend, d.op, 2) < plan_.wal_latency_rate &&
      CommitFault(Site::kWalAppend, d.op, 3)) {
    latency_faults_.fetch_add(1, std::memory_order_relaxed);
    if (plan_.latency_spike_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(plan_.latency_spike_ms));
    }
  }
  return d;
}

Status FaultInjector::OnWalFsync() {
  const uint64_t op = ops_[3].fetch_add(1, std::memory_order_relaxed);
  if (op < plan_.skip_ops) return Status::Ok();
  if (plan_.wal_fsync_error_rate > 0.0 &&
      Draw(Site::kWalFsync, op, 0) < plan_.wal_fsync_error_rate &&
      CommitFault(Site::kWalFsync, op, 0)) {
    wal_fsync_errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("injected fsync failure at wal commit op " +
                               std::to_string(op));
  }
  if (plan_.wal_latency_rate > 0.0 &&
      Draw(Site::kWalFsync, op, 1) < plan_.wal_latency_rate &&
      CommitFault(Site::kWalFsync, op, 1)) {
    latency_faults_.fetch_add(1, std::memory_order_relaxed);
    if (plan_.latency_spike_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(plan_.latency_spike_ms));
    }
  }
  return Status::Ok();
}

void FaultInjector::Reset() {
  for (auto& op : ops_) op.store(0, std::memory_order_relaxed);
  faults_.store(0, std::memory_order_relaxed);
  read_faults_.store(0, std::memory_order_relaxed);
  latency_faults_.store(0, std::memory_order_relaxed);
  torn_writes_.store(0, std::memory_order_relaxed);
  corrupt_writes_.store(0, std::memory_order_relaxed);
  wal_torn_appends_.store(0, std::memory_order_relaxed);
  wal_corrupt_appends_.store(0, std::memory_order_relaxed);
  wal_fsync_errors_.store(0, std::memory_order_relaxed);
  fingerprint_.store(0, std::memory_order_relaxed);
}

}  // namespace gir
