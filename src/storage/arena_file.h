#ifndef GIR_STORAGE_ARENA_FILE_H_
#define GIR_STORAGE_ARENA_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "storage/disk_manager.h"

namespace gir {

class FlatRTree;

// Version-stamped, page-aligned on-disk image of one engine epoch: the
// frozen FlatRTree arena (SoA coordinate planes, children, per-node
// headers and MBBs) plus the dataset image it was frozen against
// (coordinates + tombstones). The layout is designed to be mmap'd and
// served directly: every section starts on a kArenaAlign boundary, the
// coordinate planes and children arrays are bit-identical to the
// heap-resident FlatRTree's vectors, and the per-node metadata is a POD
// record (the heap FlatNodeMeta holds an Mbb with allocated corners, so
// it is split here into a fixed-size header section plus a plain
// lo/hi-doubles MBB section and rebuilt on map).
//
// File layout (little-endian, one kArenaAlign-sized header page):
//   header: u32 magic 'GARN' | u32 format | u64 epoch version
//           | u64 dim | u64 node capacity | u64 node count | i64 root
//           | u64 record count | u64 dataset rows | u64 tombstones
//           | u32 section count | u32 pad
//   per section (kArenaSectionCount entries):
//           u32 kind | u32 pad | u64 offset | u64 length
//           | u32 crc(payload) | u32 pad
//   then:   u32 crc(all header bytes above)
//   body:   each section's payload at its offset, zero-padded up to the
//           next kArenaAlign boundary.
//
// Durability: SnapshotStore::WriteArena publishes these files with the
// same discipline as snapshots — temp name, fsync, atomic rename, fsync
// of the directory — and the same injected-fault surface (torn tail,
// flipped byte). ArenaFile::Open validates the magic, the header CRC
// and every section CRC before serving a single byte, so a torn or
// corrupt file is rejected at open, never mapped into an engine.
constexpr uint32_t kArenaMagic = 0x4E524147;  // "GARN"
constexpr uint32_t kArenaFormat = 1;
constexpr size_t kArenaAlign = 4096;
constexpr uint32_t kArenaSectionCount = 6;

enum class ArenaSection : uint32_t {
  kNodeMeta = 1,    // ArenaNodeMeta[node_count]
  kNodeMbb = 2,     // node_count * 2 * dim doubles (lo plane, hi plane)
  kCoords = 3,      // node_count * (2 * dim * capacity) doubles
  kChildren = 4,    // node_count * capacity int32
  kDataset = 5,     // dataset_rows * dim doubles
  kTombstones = 6,  // tombstone count int32 record ids
};

// On-disk per-node header; plain data so the mapped section is the
// runtime representation (no parse step per node).
struct ArenaNodeMeta {
  uint32_t count = 0;
  int32_t level = 0;
  uint32_t is_leaf = 0;
  uint32_t pad = 0;
};
static_assert(sizeof(ArenaNodeMeta) == 16, "on-disk layout is fixed");

// Serializes one frozen epoch into the arena image (header + sections,
// fully checksummed, page-aligned). The flat tree supplies the index
// arrays and its bound dataset supplies the record image.
std::vector<uint8_t> BuildArenaImage(const FlatRTree& flat, uint64_t version);

// A validated, read-only mmap of one arena file. Shared ownership is
// the epoch-swap mechanism: the engine's snapshot (and every pinned
// reader) holds a shared_ptr, so swapping epochs is "open + map the new
// file, atomically publish the new snapshot" and the old mapping is
// munmap'd exactly when its last pinned reader drains.
class ArenaFile {
 public:
  // Opens, maps and fully validates `path` (magic, format, header CRC,
  // section geometry, every section CRC). DataLoss on any damage —
  // a torn tail or a flipped byte is detected here, before any engine
  // state is built over the mapping. NotFound when the file is absent.
  static Result<std::shared_ptr<const ArenaFile>> Open(
      const std::string& path);

  ~ArenaFile();
  ArenaFile(const ArenaFile&) = delete;
  ArenaFile& operator=(const ArenaFile&) = delete;

  const std::string& path() const { return path_; }
  uint64_t version() const { return version_; }
  size_t dim() const { return dim_; }
  size_t capacity() const { return capacity_; }
  size_t node_count() const { return node_count_; }
  int64_t root() const { return root_; }
  size_t record_count() const { return record_count_; }
  size_t dataset_rows() const { return dataset_rows_; }
  size_t tombstone_count() const { return tombstone_count_; }
  size_t file_bytes() const { return bytes_; }

  const ArenaNodeMeta* node_meta() const { return node_meta_; }
  const double* node_mbbs() const { return node_mbbs_; }
  const double* coords() const { return coords_; }
  const int32_t* children() const { return children_; }
  const double* dataset_rows_data() const { return dataset_; }
  const int32_t* tombstones() const { return tombstones_; }

  // Materializes the dataset image (coordinates + tombstones) as a heap
  // Dataset — Phase 2 and the scoring transforms read records through
  // the Dataset interface. The index arrays stay mapped; only the
  // record image is copied out.
  Result<std::unique_ptr<Dataset>> BuildDataset() const;

  // Asks the kernel to read ahead the byte ranges of `n` nodes
  // (coordinate planes + children), so a traversal that will touch them
  // next round overlaps its SIMD scoring with the readahead
  // (madvise(MADV_WILLNEED); an io_uring read path is the noted
  // follow-up for hosts where madvise readahead is too passive).
  void PrefetchNodes(const PageId* pages, size_t n) const;

  // Touches node `page`'s first mapped byte (forcing the page in if it
  // is not resident) and returns whether it was resident beforehand
  // (mincore) — the per-fetch hit/miss signal of the prefetcher.
  bool TouchNode(PageId page) const;

  // Drops the mapping's resident pages (MADV_DONTNEED) and asks the
  // page cache to drop the file's clean pages (POSIX_FADV_DONTNEED) —
  // the artificial resident-set cap the larger-than-RAM bench uses.
  void Evict() const;

  // Currently resident bytes of the mapping (mincore scan).
  size_t ResidentBytes() const;

 private:
  ArenaFile() = default;

  // Byte span of node `page` inside the coords section.
  void NodeSpan(PageId page, const uint8_t** addr, size_t* len) const;

  std::string path_;
  int fd_ = -1;
  void* map_ = nullptr;
  size_t bytes_ = 0;
  uint64_t version_ = 0;
  size_t dim_ = 0;
  size_t capacity_ = 0;
  size_t node_count_ = 0;
  int64_t root_ = -1;
  size_t record_count_ = 0;
  size_t dataset_rows_ = 0;
  size_t tombstone_count_ = 0;
  size_t node_stride_ = 0;  // doubles per node in the coords section
  const ArenaNodeMeta* node_meta_ = nullptr;
  const double* node_mbbs_ = nullptr;
  const double* coords_ = nullptr;
  const int32_t* children_ = nullptr;
  const double* dataset_ = nullptr;
  const int32_t* tombstones_ = nullptr;
};

}  // namespace gir

#endif  // GIR_STORAGE_ARENA_FILE_H_
