#ifndef GIR_STORAGE_IO_STATS_H_
#define GIR_STORAGE_IO_STATS_H_

#include <cstdint>

namespace gir {

// Counters for the simulated disk. The paper's experimental setup
// measures I/O time on a physical disk with 4 KB pages and no buffer
// pool (no page is ever fetched twice by the studied algorithms), so
// simulated I/O time is simply `reads * ms_per_read`.
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  // ----- mmap'd-arena frontier prefetch (zero on heap-resident images)
  // Pages the traversal asked the kernel to read ahead
  // (madvise(MADV_WILLNEED)) before their lockstep round fetched them.
  uint64_t prefetch_issued = 0;
  // First touches of a mapped page that found it resident (the readahead
  // — or the page cache — won the race) vs. touches that had to fault
  // the page in synchronously.
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_misses = 0;

  double ReadMillis(double ms_per_read) const {
    return static_cast<double>(reads) * ms_per_read;
  }

  IoStats& operator+=(const IoStats& other) {
    reads += other.reads;
    writes += other.writes;
    prefetch_issued += other.prefetch_issued;
    prefetch_hits += other.prefetch_hits;
    prefetch_misses += other.prefetch_misses;
    return *this;
  }
};

inline IoStats operator-(const IoStats& a, const IoStats& b) {
  return IoStats{a.reads - b.reads, a.writes - b.writes,
                 a.prefetch_issued - b.prefetch_issued,
                 a.prefetch_hits - b.prefetch_hits,
                 a.prefetch_misses - b.prefetch_misses};
}

}  // namespace gir

#endif  // GIR_STORAGE_IO_STATS_H_
