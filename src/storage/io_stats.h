#ifndef GIR_STORAGE_IO_STATS_H_
#define GIR_STORAGE_IO_STATS_H_

#include <cstdint>

namespace gir {

// Counters for the simulated disk. The paper's experimental setup
// measures I/O time on a physical disk with 4 KB pages and no buffer
// pool (no page is ever fetched twice by the studied algorithms), so
// simulated I/O time is simply `reads * ms_per_read`.
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;

  double ReadMillis(double ms_per_read) const {
    return static_cast<double>(reads) * ms_per_read;
  }

  IoStats& operator+=(const IoStats& other) {
    reads += other.reads;
    writes += other.writes;
    return *this;
  }
};

inline IoStats operator-(const IoStats& a, const IoStats& b) {
  return IoStats{a.reads - b.reads, a.writes - b.writes};
}

}  // namespace gir

#endif  // GIR_STORAGE_IO_STATS_H_
