#include "storage/arena_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "common/crc32.h"
#include "index/flat_rtree.h"

namespace gir {

namespace {

// Header field block (before the section table): magic, format, version,
// dim, capacity, node count, root, record count, dataset rows,
// tombstones, section count + pad.
constexpr size_t kArenaFixedHeaderBytes = 4 + 4 + 8 * 8 + 4 + 4;
// Section table entry: kind + pad + offset + length + crc + pad.
constexpr size_t kArenaSectionEntryBytes = 4 + 4 + 8 + 8 + 4 + 4;
constexpr size_t kArenaHeaderBytes = kArenaFixedHeaderBytes +
                                     kArenaSectionCount *
                                         kArenaSectionEntryBytes +
                                     4;  // trailing header CRC

static_assert(kArenaHeaderBytes <= kArenaAlign,
              "the header must fit its reserved page");

size_t AlignUp(size_t n) {
  return (n + kArenaAlign - 1) & ~(kArenaAlign - 1);
}

struct SectionPlan {
  ArenaSection kind;
  size_t offset = 0;
  size_t length = 0;
};

void PutU32(uint8_t* p, size_t* at, uint32_t v) {
  std::memcpy(p + *at, &v, sizeof(v));
  *at += sizeof(v);
}
void PutU64(uint8_t* p, size_t* at, uint64_t v) {
  std::memcpy(p + *at, &v, sizeof(v));
  *at += sizeof(v);
}

// Bounds-checked header reader (same discipline as the snapshot
// parser): a truncated file can never walk the parser off the mapping.
struct Cursor {
  const uint8_t* p = nullptr;
  size_t n = 0;
  size_t at = 0;
  bool Bytes(void* out, size_t k) {
    if (k > n - at) return false;
    std::memcpy(out, p + at, k);
    at += k;
    return true;
  }
  bool U32(uint32_t* v) { return Bytes(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Bytes(v, sizeof(*v)); }
};

}  // namespace

std::vector<uint8_t> BuildArenaImage(const FlatRTree& flat,
                                     uint64_t version) {
  const Dataset& data = flat.dataset();
  const size_t n = flat.node_count();
  const size_t dim = data.dim();
  const size_t cap = flat.Capacity();
  const size_t stride = 2 * dim * cap;
  const size_t rows = data.size();

  std::vector<int32_t> dead;
  for (size_t i = 0; i < rows; ++i) {
    if (!data.IsLive(static_cast<RecordId>(i))) {
      dead.push_back(static_cast<int32_t>(i));
    }
  }

  SectionPlan plan[kArenaSectionCount] = {
      {ArenaSection::kNodeMeta, 0, n * sizeof(ArenaNodeMeta)},
      {ArenaSection::kNodeMbb, 0, n * 2 * dim * sizeof(double)},
      {ArenaSection::kCoords, 0, n * stride * sizeof(double)},
      {ArenaSection::kChildren, 0, n * cap * sizeof(int32_t)},
      {ArenaSection::kDataset, 0, rows * dim * sizeof(double)},
      {ArenaSection::kTombstones, 0, dead.size() * sizeof(int32_t)},
  };
  size_t offset = kArenaAlign;  // the header owns the first page
  for (SectionPlan& s : plan) {
    s.offset = offset;
    offset = AlignUp(offset + s.length);
  }

  std::vector<uint8_t> image(offset, 0);

  // Section payloads.
  {
    ArenaNodeMeta* meta =
        reinterpret_cast<ArenaNodeMeta*>(image.data() + plan[0].offset);
    double* mbbs = reinterpret_cast<double*>(image.data() + plan[1].offset);
    double* coords = reinterpret_cast<double*>(image.data() + plan[2].offset);
    int32_t* children =
        reinterpret_cast<int32_t*>(image.data() + plan[3].offset);
    for (size_t p = 0; p < n; ++p) {
      const FlatRTree::NodeView node =
          flat.PeekNode(static_cast<PageId>(p));
      meta[p].count = static_cast<uint32_t>(node.count());
      meta[p].level = node.level();
      meta[p].is_leaf = node.is_leaf() ? 1 : 0;
      const Mbb& box = node.mbb();
      for (size_t j = 0; j < dim; ++j) {
        mbbs[p * 2 * dim + j] = box.lo[j];
        mbbs[p * 2 * dim + dim + j] = box.hi[j];
      }
      // lo(0) is the node's SoA base: stride contiguous doubles.
      std::memcpy(coords + p * stride, node.lo(0), stride * sizeof(double));
      std::memcpy(children + p * cap, node.children(),
                  cap * sizeof(int32_t));
    }
    double* ds = reinterpret_cast<double*>(image.data() + plan[4].offset);
    for (size_t i = 0; i < rows; ++i) {
      const VecView row = data.Get(static_cast<RecordId>(i));
      std::memcpy(ds + i * dim, row.data(), dim * sizeof(double));
    }
    if (!dead.empty()) {
      std::memcpy(image.data() + plan[5].offset, dead.data(),
                  dead.size() * sizeof(int32_t));
    }
  }

  // Header.
  uint8_t* h = image.data();
  size_t at = 0;
  PutU32(h, &at, kArenaMagic);
  PutU32(h, &at, kArenaFormat);
  PutU64(h, &at, version);
  PutU64(h, &at, dim);
  PutU64(h, &at, cap);
  PutU64(h, &at, n);
  PutU64(h, &at, static_cast<uint64_t>(static_cast<int64_t>(
                     flat.root() == kInvalidPage
                         ? -1
                         : static_cast<int64_t>(flat.root()))));
  PutU64(h, &at, flat.size());
  PutU64(h, &at, rows);
  PutU64(h, &at, dead.size());
  PutU32(h, &at, kArenaSectionCount);
  PutU32(h, &at, 0);
  for (const SectionPlan& s : plan) {
    PutU32(h, &at, static_cast<uint32_t>(s.kind));
    PutU32(h, &at, 0);
    PutU64(h, &at, s.offset);
    PutU64(h, &at, s.length);
    PutU32(h, &at, Crc32(image.data() + s.offset, s.length));
    PutU32(h, &at, 0);
  }
  PutU32(h, &at, Crc32(image.data(), at));
  return image;
}

Result<std::shared_ptr<const ArenaFile>> ArenaFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound("no arena file at " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::Internal("cannot stat " + path);
  }
  const size_t bytes = static_cast<size_t>(st.st_size);
  if (bytes < kArenaAlign) {
    ::close(fd);
    return Status::DataLoss("arena file " + path + " is truncated");
  }
  void* map = ::mmap(nullptr, bytes, PROT_READ, MAP_SHARED, fd, 0);
  if (map == MAP_FAILED) {
    ::close(fd);
    return Status::Internal("cannot mmap " + path);
  }
  // Validation reads the whole file once, sequentially; asking for the
  // readahead up front overlaps the page-ins with the CRC loop instead
  // of faulting page by page.
  ::madvise(map, bytes, MADV_WILLNEED);

  // Keep ownership from here on, so every early return unmaps.
  std::shared_ptr<ArenaFile> file(new ArenaFile());
  file->path_ = path;
  file->fd_ = fd;
  file->map_ = map;
  file->bytes_ = bytes;

  const uint8_t* base = static_cast<const uint8_t*>(map);
  Cursor c{base, bytes, 0};
  uint32_t magic = 0;
  uint32_t format = 0;
  uint64_t dim = 0;
  uint64_t cap = 0;
  uint64_t nodes = 0;
  uint64_t root = 0;
  uint64_t records = 0;
  uint64_t rows = 0;
  uint64_t tombs = 0;
  uint32_t sections = 0;
  uint32_t pad = 0;
  const Status damaged = Status::DataLoss("arena file " + path +
                                          " is torn or corrupt");
  if (!c.U32(&magic) || magic != kArenaMagic) return damaged;
  if (!c.U32(&format) || format != kArenaFormat) {
    return Status::DataLoss("arena file " + path +
                            " has an unsupported format");
  }
  if (!c.U64(&file->version_) || !c.U64(&dim) || !c.U64(&cap) ||
      !c.U64(&nodes) || !c.U64(&root) || !c.U64(&records) || !c.U64(&rows) ||
      !c.U64(&tombs) || !c.U32(&sections) || !c.U32(&pad)) {
    return damaged;
  }
  if (dim == 0 || cap == 0 || sections != kArenaSectionCount) return damaged;
  file->dim_ = static_cast<size_t>(dim);
  file->capacity_ = static_cast<size_t>(cap);
  file->node_count_ = static_cast<size_t>(nodes);
  file->root_ = static_cast<int64_t>(root);
  file->record_count_ = static_cast<size_t>(records);
  file->dataset_rows_ = static_cast<size_t>(rows);
  file->tombstone_count_ = static_cast<size_t>(tombs);
  file->node_stride_ = 2 * file->dim_ * file->capacity_;
  if (file->root_ >= static_cast<int64_t>(nodes)) return damaged;
  if (tombs > rows) return damaged;

  struct ParsedSection {
    uint64_t offset = 0;
    uint64_t length = 0;
  };
  ParsedSection parsed[kArenaSectionCount];
  for (uint32_t s = 0; s < kArenaSectionCount; ++s) {
    uint32_t kind = 0;
    uint32_t crc = 0;
    ParsedSection& ps = parsed[s];
    if (!c.U32(&kind) || !c.U32(&pad) || !c.U64(&ps.offset) ||
        !c.U64(&ps.length) || !c.U32(&crc) || !c.U32(&pad)) {
      return damaged;
    }
    if (kind != s + 1) return damaged;  // fixed section order
    if (ps.offset > bytes || ps.length > bytes - ps.offset) return damaged;
    if (ps.offset % kArenaAlign != 0) return damaged;
    if (crc != Crc32(base + ps.offset, static_cast<size_t>(ps.length))) {
      return damaged;
    }
  }
  uint32_t header_crc = 0;
  const size_t crc_at = c.at;
  if (!c.U32(&header_crc) || header_crc != Crc32(base, crc_at)) {
    return damaged;
  }

  // Geometry: every section must hold exactly what the counts promise.
  const uint64_t want[kArenaSectionCount] = {
      nodes * sizeof(ArenaNodeMeta),
      nodes * 2 * dim * sizeof(double),
      nodes * file->node_stride_ * sizeof(double),
      nodes * cap * sizeof(int32_t),
      rows * dim * sizeof(double),
      tombs * sizeof(int32_t),
  };
  for (uint32_t s = 0; s < kArenaSectionCount; ++s) {
    if (parsed[s].length != want[s]) return damaged;
  }
  file->node_meta_ =
      reinterpret_cast<const ArenaNodeMeta*>(base + parsed[0].offset);
  file->node_mbbs_ = reinterpret_cast<const double*>(base + parsed[1].offset);
  file->coords_ = reinterpret_cast<const double*>(base + parsed[2].offset);
  file->children_ = reinterpret_cast<const int32_t*>(base + parsed[3].offset);
  file->dataset_ = reinterpret_cast<const double*>(base + parsed[4].offset);
  file->tombstones_ =
      reinterpret_cast<const int32_t*>(base + parsed[5].offset);
  return std::shared_ptr<const ArenaFile>(std::move(file));
}

ArenaFile::~ArenaFile() {
  if (map_ != nullptr) ::munmap(map_, bytes_);
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<Dataset>> ArenaFile::BuildDataset() const {
  auto out = std::make_unique<Dataset>(dim_);
  out->Reserve(dataset_rows_);
  out->AppendRows(dataset_, dataset_rows_);
  for (size_t t = 0; t < tombstone_count_; ++t) {
    const int32_t id = tombstones_[t];
    if (id < 0 || static_cast<size_t>(id) >= dataset_rows_) {
      return Status::DataLoss("arena tombstone id out of range");
    }
    out->MarkDeleted(id);
  }
  return out;
}

void ArenaFile::NodeSpan(PageId page, const uint8_t** addr,
                         size_t* len) const {
  const size_t begin = reinterpret_cast<size_t>(coords_) +
                       static_cast<size_t>(page) * node_stride_ *
                           sizeof(double);
  const size_t end = begin + node_stride_ * sizeof(double);
  const size_t lo = begin & ~(kArenaAlign - 1);
  *addr = reinterpret_cast<const uint8_t*>(lo);
  *len = AlignUp(end) - lo;
}

void ArenaFile::PrefetchNodes(const PageId* pages, size_t n) const {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* addr = nullptr;
    size_t len = 0;
    NodeSpan(pages[i], &addr, &len);
    ::madvise(const_cast<uint8_t*>(addr), len, MADV_WILLNEED);
  }
}

bool ArenaFile::TouchNode(PageId page) const {
  const uint8_t* addr = nullptr;
  size_t len = 0;
  NodeSpan(page, &addr, &len);
  unsigned char resident = 0;
  const bool was_resident =
      ::mincore(const_cast<uint8_t*>(addr), 1, &resident) == 0 &&
      (resident & 1) != 0;
  // Force the page in so the fetch's fault cost lands here, inside the
  // charged read, not inside the scoring kernel that follows.
  const volatile uint8_t* touch = addr;
  (void)*touch;
  return was_resident;
}

void ArenaFile::Evict() const {
  ::madvise(map_, bytes_, MADV_DONTNEED);
  // Also drop the (clean) page-cache copies, so the next touch is a
  // real device read and not a silent cache refill.
  ::posix_fadvise(fd_, 0, 0, POSIX_FADV_DONTNEED);
}

size_t ArenaFile::ResidentBytes() const {
  const size_t pages = (bytes_ + kArenaAlign - 1) / kArenaAlign;
  std::vector<unsigned char> vec(pages, 0);
  if (::mincore(map_, bytes_, vec.data()) != 0) return 0;
  size_t resident = 0;
  for (unsigned char v : vec) resident += (v & 1) ? kArenaAlign : 0;
  return resident;
}

}  // namespace gir
