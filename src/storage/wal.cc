#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/crc32.h"

namespace gir {

namespace {

namespace fs = std::filesystem;

// magic + format + base epoch + dim + header CRC.
constexpr size_t kWalHeaderBytes = 4 + 4 + 8 + 8 + 4;
// record CRC + payload length.
constexpr size_t kFramePrefixBytes = 4 + 8;

void AppendBytes(std::vector<uint8_t>* out, const void* p, size_t n) {
  const size_t at = out->size();
  out->resize(at + n);
  if (n > 0) std::memcpy(out->data() + at, p, n);
}
void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  AppendBytes(out, &v, sizeof(v));
}
void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  AppendBytes(out, &v, sizeof(v));
}

struct Cursor {
  const uint8_t* p = nullptr;
  size_t n = 0;
  size_t at = 0;
  bool Bytes(void* out, size_t k) {
    if (k > n - at) return false;
    std::memcpy(out, p + at, k);
    at += k;
    return true;
  }
  bool U32(uint32_t* v) { return Bytes(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Bytes(v, sizeof(*v)); }
};

bool ParseWalName(const std::string& name, uint64_t* base) {
  constexpr const char* kPrefix = "wal-";
  constexpr const char* kSuffix = ".gwal";
  const size_t plen = std::strlen(kPrefix);
  const size_t slen = std::strlen(kSuffix);
  if (name.size() <= plen + slen) return false;
  if (name.rfind(kPrefix, 0) != 0) return false;
  if (name.compare(name.size() - slen, slen, kSuffix) != 0) return false;
  const std::string digits = name.substr(plen, name.size() - plen - slen);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *base = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

std::vector<uint8_t> SegmentHeader(uint64_t base_epoch, uint64_t dim) {
  std::vector<uint8_t> out;
  out.reserve(kWalHeaderBytes);
  AppendU32(&out, kWalMagic);
  AppendU32(&out, kWalFormat);
  AppendU64(&out, base_epoch);
  AppendU64(&out, dim);
  AppendU32(&out, Crc32(out.data(), out.size()));
  return out;
}

std::vector<uint8_t> RecordPayload(const UpdateBatch& batch, uint64_t epoch,
                                   uint64_t dim) {
  std::vector<uint8_t> out;
  out.reserve(16 + batch.inserts.size() * dim * sizeof(double) +
              batch.deletes.size() * sizeof(int64_t) + 16);
  AppendU64(&out, epoch);
  AppendU64(&out, batch.inserts.size());
  for (const Vec& row : batch.inserts) {
    AppendBytes(&out, row.data(), row.size() * sizeof(double));
  }
  AppendU64(&out, batch.deletes.size());
  for (RecordId id : batch.deletes) {
    const int64_t wide = id;
    AppendBytes(&out, &wide, sizeof(wide));
  }
  return out;
}

std::vector<uint8_t> FrameRecord(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kFramePrefixBytes + payload.size() + 4);
  AppendU32(&out, Crc32(payload.data(), payload.size()));
  AppendU64(&out, payload.size());
  AppendBytes(&out, payload.data(), payload.size());
  AppendU32(&out, kWalCommitMagic);
  return out;
}

// Parses one committed record payload; false on any structural damage.
bool ParsePayload(const uint8_t* p, size_t n, uint64_t dim,
                  WalStore::ReplayRecord* out) {
  Cursor c{p, n};
  uint64_t n_ins = 0;
  uint64_t n_del = 0;
  if (!c.U64(&out->epoch) || !c.U64(&n_ins)) return false;
  if (dim == 0 || n_ins > (n - c.at) / sizeof(double) / dim) return false;
  out->batch.inserts.resize(static_cast<size_t>(n_ins));
  for (uint64_t i = 0; i < n_ins; ++i) {
    Vec& row = out->batch.inserts[static_cast<size_t>(i)];
    row.resize(static_cast<size_t>(dim));
    if (!c.Bytes(row.data(), row.size() * sizeof(double))) return false;
  }
  if (!c.U64(&n_del) || n_del > (n - c.at) / sizeof(int64_t)) return false;
  out->batch.deletes.resize(static_cast<size_t>(n_del));
  for (uint64_t i = 0; i < n_del; ++i) {
    int64_t wide = 0;
    if (!c.Bytes(&wide, sizeof(wide))) return false;
    if (wide < 0 || wide > INT32_MAX) return false;
    out->batch.deletes[static_cast<size_t>(i)] = static_cast<RecordId>(wide);
  }
  return c.at == n;
}

bool ReadWholeFile(const fs::path& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return false;
  in.seekg(0, std::ios::beg);
  out->resize(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(out->data()),
          static_cast<std::streamsize>(out->size()));
  return static_cast<bool>(in);
}

Status WriteFull(int fd, const uint8_t* data, size_t n,
                 const std::string& what) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w <= 0) {
      return Status::Internal("short write to " + what);
    }
    off += static_cast<size_t>(w);
  }
  return Status::Ok();
}

// Crash-safe publish with every error surfaced — including close() and
// the directory fsync, which a durable ack cannot treat as advisory.
Status PublishAtomically(const std::string& dir, const fs::path& final_path,
                         const uint8_t* data, size_t publish_len) {
  const fs::path tmp_path =
      fs::path(dir) / (final_path.filename().string() + ".tmp");
  {
    const int fd =
        ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0) {
      return Status::Internal("cannot open " + tmp_path.string());
    }
    Status written = WriteFull(fd, data, publish_len, tmp_path.string());
    if (!written.ok()) {
      ::close(fd);
      return written;
    }
    if (::fsync(fd) != 0) {
      ::close(fd);
      return Status::Internal("fsync failed on " + tmp_path.string());
    }
    if (::close(fd) != 0) {
      return Status::Internal("close failed on " + tmp_path.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::Internal("rename to " + final_path.string() +
                            " failed: " + ec.message());
  }
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd < 0) {
    return Status::Internal("cannot open dir " + dir + " for fsync");
  }
  const bool dir_synced = ::fsync(dfd) == 0;
  const bool dir_closed = ::close(dfd) == 0;
  if (!dir_synced || !dir_closed) {
    return Status::Internal("directory fsync failed on " + dir);
  }
  return Status::Ok();
}

}  // namespace

// ----- WalStore -----

std::string WalStore::SegmentFileName(uint64_t base_epoch) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.gwal",
                static_cast<unsigned long long>(base_epoch));
  return buf;
}

std::vector<uint64_t> WalStore::ListSegmentBases() const {
  std::vector<uint64_t> out;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_, ec)) {
    uint64_t base = 0;
    if (ParseWalName(e.path().filename().string(), &base)) {
      out.push_back(base);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<WalStore::ReplayLog> WalStore::ReadCommitted(
    uint64_t after_epoch) const {
  ReplayLog out;
  out.tail_epoch = after_epoch;

  std::vector<uint8_t> file;
  for (uint64_t base : ListSegmentBases()) {
    ++out.segments_scanned;
    SegmentState seg;
    seg.base = base;
    const fs::path path = fs::path(dir_) / SegmentFileName(base);
    if (!ReadWholeFile(path, &file) || file.size() < kWalHeaderBytes) {
      // Not even a header: nothing inside is replayable or trustworthy.
      ++out.torn_truncated;
      seg.action = SegmentState::Action::kRemove;
      out.segments.push_back(seg);
      continue;
    }
    Cursor c{file.data(), file.size()};
    uint32_t magic = 0;
    uint32_t format = 0;
    uint64_t header_base = 0;
    uint64_t dim = 0;
    uint32_t header_crc = 0;
    if (!c.U32(&magic) || magic != kWalMagic || !c.U32(&format) ||
        format != kWalFormat || !c.U64(&header_base) || !c.U64(&dim) ||
        !c.U32(&header_crc) ||
        header_crc != Crc32(file.data(), kWalHeaderBytes - 4) ||
        header_base != base || dim == 0 ||
        (out.wal_dim != 0 && dim != out.wal_dim)) {
      // A damaged, renamed or foreign-shape header: without a trusted
      // dim no record inside can be parsed, so the whole segment goes.
      ++out.torn_truncated;
      seg.action = SegmentState::Action::kRemove;
      out.segments.push_back(seg);
      continue;
    }
    out.wal_dim = dim;
    seg.keep_bytes = kWalHeaderBytes;
    while (c.at < file.size()) {
      uint32_t crc = 0;
      uint64_t len = 0;
      uint32_t commit = 0;
      ReplayRecord rec;
      // Any structural failure below is a torn or corrupt tail: the
      // record was never fully committed, so nothing *in this segment*
      // after it was acknowledged either (framing is not
      // self-synchronizing). Truncate this segment here; later segments
      // — e.g. one a post-recovery writer appended to — still replay
      // while they stay epoch-contiguous.
      if (!c.U32(&crc) || !c.U64(&len) || len > file.size() - c.at) {
        ++out.torn_truncated;
        seg.action = SegmentState::Action::kTruncate;
        break;
      }
      const uint8_t* payload = file.data() + c.at;
      c.at += static_cast<size_t>(len);
      if (!c.U32(&commit) || commit != kWalCommitMagic ||
          crc != Crc32(payload, static_cast<size_t>(len)) ||
          !ParsePayload(payload, static_cast<size_t>(len), dim, &rec)) {
        ++out.torn_truncated;
        seg.action = SegmentState::Action::kTruncate;
        break;
      }
      ++out.committed_seen;
      if (rec.epoch <= out.tail_epoch) {
        ++out.overlap_skipped;  // idempotence: already covered
        seg.keep_bytes = c.at;
        continue;
      }
      if (rec.epoch != out.tail_epoch + 1) {
        // An epoch gap (e.g. a truncated-away middle segment, or a
        // stale pre-recovery timeline): the record — and everything
        // after it, since epochs only grow within a segment — can never
        // be applied consistently, so the clean prefix ends before it.
        ++out.gap_dropped;
        seg.action = SegmentState::Action::kTruncate;
        break;
      }
      out.tail_epoch = rec.epoch;
      out.records.push_back(std::move(rec));
      seg.keep_bytes = c.at;
    }
    out.segments.push_back(seg);
  }
  return out;
}

Result<WalStore::SanitizeStats> WalStore::Sanitize(const ReplayLog& log) {
  SanitizeStats out;
  bool mutated = false;
  for (const SegmentState& seg : log.segments) {
    const fs::path path = fs::path(dir_) / SegmentFileName(seg.base);
    if (seg.action == SegmentState::Action::kKeep) continue;
    if (seg.action == SegmentState::Action::kRemove) {
      std::error_code ec;
      fs::remove(path, ec);
      if (ec) {
        return Status::Internal("cannot remove wal segment " + path.string() +
                                ": " + ec.message());
      }
      ++out.removed_segments;
      mutated = true;
      continue;
    }
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0) {
      return Status::Internal("cannot open wal segment " + path.string() +
                              " for tail truncation");
    }
    const bool cut = ::ftruncate(fd, static_cast<off_t>(seg.keep_bytes)) == 0;
    const bool synced = cut && ::fsync(fd) == 0;
    if (::close(fd) != 0 || !cut || !synced) {
      return Status::Internal("cannot truncate wal segment " + path.string() +
                              " to its clean prefix");
    }
    ++out.truncated_segments;
    mutated = true;
  }
  if (mutated) {
    const int dfd = ::open(dir_.c_str(), O_RDONLY);
    if (dfd < 0) {
      return Status::Internal("cannot open wal dir " + dir_ + " for fsync");
    }
    const bool dir_synced = ::fsync(dfd) == 0;
    const bool dir_closed = ::close(dfd) == 0;
    if (!dir_synced || !dir_closed) {
      return Status::Internal("directory fsync failed on " + dir_);
    }
  }
  return out;
}

Result<WalStore::TruncateStats> WalStore::Truncate(uint64_t durable_epoch) {
  TruncateStats out;
  const std::vector<uint64_t> bases = ListSegmentBases();
  for (size_t i = 0; i < bases.size(); ++i) {
    // Segment i holds records in (bases[i], bases[i+1]]; it is obsolete
    // only when a successor exists and every record it can hold is at
    // or below the durable epoch. The active (last) segment never goes.
    const bool obsolete =
        i + 1 < bases.size() && bases[i + 1] <= durable_epoch;
    if (obsolete) {
      std::error_code ec;
      if (fs::remove(fs::path(dir_) / SegmentFileName(bases[i]), ec) && !ec) {
        ++out.removed_segments;
        continue;
      }
    }
    ++out.kept_segments;
  }
  return out;
}

Result<WalStore::ShipStats> WalStore::ShipSegmentFrom(const WalStore& src,
                                                      uint64_t base_epoch) {
  const fs::path src_path =
      fs::path(src.dir()) / SegmentFileName(base_epoch);
  std::vector<uint8_t> file;
  if (!ReadWholeFile(src_path, &file) || file.empty()) {
    return Status::NotFound("no wal segment base " +
                            std::to_string(base_epoch) + " in " + src.dir());
  }

  ShipStats stats;
  stats.bytes = file.size();

  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::Internal("cannot create wal dir " + dir_ + ": " +
                            ec.message());
  }
  const fs::path final_path = fs::path(dir_) / SegmentFileName(base_epoch);
  stats.path = final_path.string();

  // Same fault surface as an arena ship: the transport can tear or flip
  // bytes, and only record CRCs at replay can tell. Torn keeps a strict
  // nonempty prefix; corrupt flips one byte past the segment header so
  // the header still parses and a record CRC must catch it.
  size_t publish_len = file.size();
  if (injector_ != nullptr) {
    const FaultInjector::WriteDecision d = injector_->OnWalAppend();
    stats.injected = d.fault;
    if (d.fault == FaultInjector::WriteFault::kTorn && file.size() > 2) {
      publish_len =
          1 + static_cast<size_t>(
                  injector_->ShapeDrawAt(FaultInjector::Site::kWalAppend, d.op,
                                         0) *
                  static_cast<double>(file.size() - 2));
    } else if (d.fault == FaultInjector::WriteFault::kCorrupt &&
               file.size() > kWalHeaderBytes + 1) {
      const size_t span = file.size() - kWalHeaderBytes - 1;
      const size_t at =
          kWalHeaderBytes +
          static_cast<size_t>(
              injector_->ShapeDrawAt(FaultInjector::Site::kWalAppend, d.op, 1) *
              static_cast<double>(span));
      file[at] ^= 0x40;
    }
  }

  Status published =
      PublishAtomically(dir_, final_path, file.data(), publish_len);
  if (!published.ok()) return published;
  return stats;
}

// ----- WalWriter -----

Result<std::unique_ptr<WalWriter>> WalWriter::Open(WalStore* store,
                                                   uint64_t base_epoch,
                                                   uint64_t dim,
                                                   WalOptions options) {
  if (store == nullptr) {
    return Status::InvalidArgument("WalWriter requires a WalStore");
  }
  if (dim == 0) {
    return Status::InvalidArgument("WalWriter requires dim >= 1");
  }
  std::error_code ec;
  fs::create_directories(store->dir(), ec);
  if (ec) {
    return Status::Internal("cannot create wal dir " + store->dir() + ": " +
                            ec.message());
  }
  std::unique_ptr<WalWriter> writer(new WalWriter(store, dim, options));
  Status opened = writer->OpenSegmentLocked(base_epoch);
  if (!opened.ok()) return opened;
  return writer;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::OpenSegmentLocked(uint64_t base) {
  const fs::path path =
      fs::path(store_->dir()) / WalStore::SegmentFileName(base);
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open wal segment " + path.string());
  }
  const std::vector<uint8_t> header = SegmentHeader(base, dim_);
  Status written = WriteFull(fd, header.data(), header.size(), path.string());
  if (written.ok() && ::fsync(fd) != 0) {
    written = Status::Internal("fsync failed on " + path.string());
  }
  if (!written.ok()) {
    ::close(fd);
    return written;
  }
  // Make the segment *name* durable too: replay lists the directory.
  const int dfd = ::open(store_->dir().c_str(), O_RDONLY);
  if (dfd < 0) {
    ::close(fd);
    return Status::Internal("cannot open wal dir " + store_->dir() +
                            " for fsync");
  }
  const bool dir_synced = ::fsync(dfd) == 0;
  const bool dir_closed = ::close(dfd) == 0;
  if (!dir_synced || !dir_closed) {
    ::close(fd);
    return Status::Internal("directory fsync failed on " + store_->dir());
  }
  if (fd_ >= 0 && ::close(fd_) != 0) {
    ::close(fd);
    return Status::Internal("close failed on " + segment_path_);
  }
  fd_ = fd;
  base_epoch_ = base;
  segment_path_ = path.string();
  file_offset_ = header.size();
  durable_offset_ = header.size();
  return Status::Ok();
}

Result<uint64_t> WalWriter::Append(const UpdateBatch& batch, uint64_t epoch) {
  for (const Vec& row : batch.inserts) {
    if (row.size() != dim_) {
      return Status::InvalidArgument(
          "wal append: insert dimension " + std::to_string(row.size()) +
          " != wal dim " + std::to_string(dim_));
    }
  }
  const std::vector<uint8_t> payload = RecordPayload(batch, epoch, dim_);
  const std::vector<uint8_t> frame = FrameRecord(payload);

  std::unique_lock<std::mutex> lock(mu_);
  if (!poison_.ok()) return poison_;
  if (epoch <= base_epoch_) {
    return Status::InvalidArgument(
        "wal append: epoch " + std::to_string(epoch) +
        " not past segment base " + std::to_string(base_epoch_));
  }

  size_t publish_len = frame.size();
  const uint8_t* publish_data = frame.data();
  std::vector<uint8_t> damaged;
  FaultInjector::WriteFault injected = FaultInjector::WriteFault::kNone;
  if (store_->injector() != nullptr) {
    const FaultInjector::WriteDecision d = store_->injector()->OnWalAppend();
    injected = d.fault;
    if (d.fault == FaultInjector::WriteFault::kTorn && frame.size() > 2) {
      publish_len =
          1 + static_cast<size_t>(
                  store_->injector()->ShapeDrawAt(
                      FaultInjector::Site::kWalAppend, d.op, 0) *
                  static_cast<double>(frame.size() - 2));
    } else if (d.fault == FaultInjector::WriteFault::kCorrupt &&
               payload.size() > 1) {
      damaged = frame;
      const size_t at =
          kFramePrefixBytes +
          static_cast<size_t>(store_->injector()->ShapeDrawAt(
                                  FaultInjector::Site::kWalAppend, d.op, 1) *
                              static_cast<double>(payload.size() - 1));
      damaged[at] ^= 0x40;
      publish_data = damaged.data();
    }
  }

  Status written = WriteFull(fd_, publish_data, publish_len, segment_path_);
  if (!written.ok()) {
    // A real write error: roll the partial frame back so the segment
    // tail stays clean, and fail the ack without poisoning — the
    // device may work again on the next batch. The lseek must succeed
    // too: appending past a failed seek would leave a zero-filled hole
    // that replay reads as a torn tail, hiding every record after it.
    if (::ftruncate(fd_, static_cast<off_t>(file_offset_)) == 0 &&
        ::lseek(fd_, static_cast<off_t>(file_offset_), SEEK_SET) ==
            static_cast<off_t>(file_offset_)) {
      return written;
    }
    poison_ = Status::DataLoss("wal rollback failed after write error on " +
                               segment_path_);
    return poison_;
  }
  file_offset_ += publish_len;
  if (injected != FaultInjector::WriteFault::kNone) {
    // The injected damage models a crash mid-append (torn) or bit rot
    // under the write head (corrupt). Either way the bytes on disk are
    // wrong and the process cannot trust anything it appends after
    // them, so the writer is dead until recovery truncates the tail.
    // The batch is NOT acknowledged.
    poison_ = Status::DataLoss(
        std::string("injected ") +
        (injected == FaultInjector::WriteFault::kTorn ? "torn" : "corrupt") +
        " wal append (simulated crash) on " + segment_path_);
    cv_.notify_all();
    return poison_;
  }

  const uint64_t ticket = next_ticket_++;
  last_ticket_ = ticket;
  if (durable_ticket_ + 1 == ticket) {
    oldest_unsynced_ = std::chrono::steady_clock::now();
  }
  ++appends_;
  appended_bytes_ += frame.size();
  if (options_.group_window_ms > 0.0 && !sync_inflight_ &&
      file_offset_ - durable_offset_ >= options_.group_bytes) {
    // group_bytes caps the unsynced-data exposure: a leader parked in
    // its commit window re-checks the threshold only when woken, so the
    // append that crosses it must wake the leader.
    cv_.notify_all();
  }
  return ticket;
}

Status WalWriter::LeaderSyncLocked(std::unique_lock<std::mutex>& lock) {
  sync_inflight_ = true;
  const uint64_t target_ticket = last_ticket_;
  const uint64_t target_offset = file_offset_;
  lock.unlock();

  Status synced = Status::Ok();
  if (store_->injector() != nullptr) {
    synced = store_->injector()->OnWalFsync();
  }
  if (synced.ok() && ::fsync(fd_) != 0) {
    synced = Status::Internal("fsync failed on " + segment_path_);
  }

  lock.lock();
  sync_inflight_ = false;
  if (synced.ok()) {
    durable_ticket_ = std::max(durable_ticket_, target_ticket);
    durable_offset_ = std::max(durable_offset_, target_offset);
    ++fsyncs_;
  } else {
    // EIO on commit: the records since the last good fsync are in an
    // unknown on-disk state and their acks must fail. Roll the tail
    // back so an unacknowledged batch is never replayed, then poison —
    // after a failed fsync the kernel may have dropped the dirty
    // pages, and nothing appended later could be trusted either.
    if (::ftruncate(fd_, static_cast<off_t>(durable_offset_)) == 0 &&
        ::lseek(fd_, static_cast<off_t>(durable_offset_), SEEK_SET) ==
            static_cast<off_t>(durable_offset_)) {
      file_offset_ = durable_offset_;
      poison_ = synced;
    } else {
      poison_ = Status::DataLoss("wal rollback failed after fsync error on " +
                                 segment_path_);
    }
  }
  cv_.notify_all();
  return poison_.ok() ? synced : poison_;
}

Status WalWriter::WaitDurable(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!poison_.ok()) return poison_;
    if (durable_ticket_ >= ticket) return Status::Ok();
    if (sync_inflight_) {
      cv_.wait(lock);
      continue;
    }
    // Leader: optionally hold the group window open so concurrent
    // appenders can pile on, unless the byte threshold already tripped.
    if (options_.group_window_ms > 0.0 &&
        file_offset_ - durable_offset_ < options_.group_bytes) {
      const auto deadline =
          oldest_unsynced_ +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(
                  options_.group_window_ms));
      if (std::chrono::steady_clock::now() < deadline) {
        cv_.wait_until(lock, deadline);
        continue;
      }
    }
    Status synced = LeaderSyncLocked(lock);
    if (!synced.ok()) return synced;
  }
}

Status WalWriter::AppendDurable(const UpdateBatch& batch, uint64_t epoch) {
  Result<uint64_t> ticket = Append(batch, epoch);
  if (!ticket.ok()) return ticket.status();
  return WaitDurable(*ticket);
}

Status WalWriter::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!poison_.ok()) return poison_;
    if (durable_ticket_ >= last_ticket_) return Status::Ok();
    if (sync_inflight_) {
      cv_.wait(lock);
      continue;
    }
    // Forced: no group window — rotation and shutdown want it now.
    Status synced = LeaderSyncLocked(lock);
    if (!synced.ok()) return synced;
  }
}

Status WalWriter::Rotate(uint64_t new_base_epoch) {
  Status synced = Sync();
  if (!synced.ok()) return synced;
  std::unique_lock<std::mutex> lock(mu_);
  if (!poison_.ok()) return poison_;
  if (new_base_epoch < base_epoch_) {
    return Status::InvalidArgument(
        "wal rotate: new base " + std::to_string(new_base_epoch) +
        " below current base " + std::to_string(base_epoch_));
  }
  if (new_base_epoch == base_epoch_) return Status::Ok();
  Status opened = OpenSegmentLocked(new_base_epoch);
  if (!opened.ok()) {
    // The old fd may already be closed; nothing is trustworthy now.
    poison_ = opened;
    return opened;
  }
  ++rotations_;
  return Status::Ok();
}

WalWriter::Stats WalWriter::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  Stats s;
  s.appends = appends_;
  s.fsyncs = fsyncs_;
  s.appended_bytes = appended_bytes_;
  s.rotations = rotations_;
  return s;
}

}  // namespace gir
