#include "skyline/bbs.h"

#include <algorithm>

#include "skyline/dominance.h"
#include "topk/tree_kernels.h"

namespace gir {

namespace {

template <typename Tree>
SkylineResult ContinueSkylineImpl(const Tree& tree,
                                  const ScoringFunction& scoring,
                                  VecView weights, const TopKResult& brs) {
  const Dataset& data = tree.dataset();
  IoStats before = DiskManager::ThreadStats();
  SkylineSet sl(&data);
  // Seed with the skyline of the encountered set T (all in memory).
  // Processing in decreasing score order inserts likely-dominating
  // records first, which keeps eviction work low. Scores are computed
  // once up front instead of inside the sort comparator.
  std::vector<RecordId> t_sorted = brs.encountered;
  std::vector<double> t_scores(t_sorted.size());
  for (size_t i = 0; i < t_sorted.size(); ++i) {
    t_scores[i] = scoring.Score(data.Get(t_sorted[i]), weights);
  }
  std::vector<size_t> order(t_sorted.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return t_scores[a] > t_scores[b];
  });
  for (size_t i : order) sl.Insert(t_sorted[i]);

  // Resume from the retained BRS heap.
  std::vector<PendingNode> heap = brs.pending;
  PendingNodeLess less;
  std::make_heap(heap.begin(), heap.end(), less);
  Vec corner;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), less);
    PendingNode top = std::move(heap.back());
    heap.pop_back();
    // BBS pruning: a node whose top corner is dominated can contain no
    // skyline record.
    if (sl.DominatedByMember(top.mbb.TopCorner())) continue;
    decltype(auto) node = tree.ReadNode(top.page);
    const size_t count = NodeEntryCount(node);
    if (NodeIsLeaf(node)) {
      for (size_t i = 0; i < count; ++i) {
        sl.Insert(NodeChild(node, i));
      }
    } else {
      // Dominance-prune before scoring: late in the run most entries
      // are dominated, so batching scores for all of them first would
      // be wasted work (the dominance scan itself dwarfs one d-term
      // score for the few survivors).
      for (size_t i = 0; i < count; ++i) {
        if (sl.DominatedByMember(NodeEntryTopCorner(node, i, &corner))) {
          continue;
        }
        PendingNode pn;
        pn.mbb = NodeEntryMbb(node, i);
        pn.maxscore = scoring.MaxScore(pn.mbb, weights);
        pn.page = static_cast<PageId>(NodeChild(node, i));
        heap.push_back(std::move(pn));
        std::push_heap(heap.begin(), heap.end(), less);
      }
    }
  }
  SkylineResult out;
  out.skyline = sl.members();
  std::sort(out.skyline.begin(), out.skyline.end());
  out.io = DiskManager::ThreadStats() - before;
  return out;
}

}  // namespace

SkylineResult ContinueSkylineFromBrs(const RTree& tree,
                                     const ScoringFunction& scoring,
                                     VecView weights, const TopKResult& brs) {
  return ContinueSkylineImpl(tree, scoring, weights, brs);
}

SkylineResult ContinueSkylineFromBrs(const FlatRTree& tree,
                                     const ScoringFunction& scoring,
                                     VecView weights, const TopKResult& brs) {
  return ContinueSkylineImpl(tree, scoring, weights, brs);
}

}  // namespace gir
