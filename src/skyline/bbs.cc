#include "skyline/bbs.h"

#include <algorithm>

#include "skyline/dominance.h"

namespace gir {

SkylineResult ContinueSkylineFromBrs(const RTree& tree,
                                     const ScoringFunction& scoring,
                                     VecView weights, const TopKResult& brs) {
  const Dataset& data = tree.dataset();
  IoStats before = DiskManager::ThreadStats();
  SkylineSet sl(&data);
  // Seed with the skyline of the encountered set T (all in memory).
  // Processing in decreasing score order inserts likely-dominating
  // records first, which keeps eviction work low.
  std::vector<RecordId> t_sorted = brs.encountered;
  std::sort(t_sorted.begin(), t_sorted.end(), [&](RecordId a, RecordId b) {
    return scoring.Score(data.Get(a), weights) >
           scoring.Score(data.Get(b), weights);
  });
  for (RecordId id : t_sorted) sl.Insert(id);

  // Resume from the retained BRS heap.
  std::vector<PendingNode> heap = brs.pending;
  PendingNodeLess less;
  std::make_heap(heap.begin(), heap.end(), less);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), less);
    PendingNode top = std::move(heap.back());
    heap.pop_back();
    // BBS pruning: a node whose top corner is dominated can contain no
    // skyline record.
    if (sl.DominatedByMember(top.mbb.TopCorner())) continue;
    const RTreeNode& node = tree.ReadNode(top.page);
    if (node.is_leaf) {
      for (const RTreeEntry& e : node.entries) {
        sl.Insert(e.child);
      }
    } else {
      for (const RTreeEntry& e : node.entries) {
        if (sl.DominatedByMember(e.mbb.TopCorner())) continue;
        PendingNode pn;
        pn.maxscore = scoring.MaxScore(e.mbb, weights);
        pn.page = static_cast<PageId>(e.child);
        pn.mbb = e.mbb;
        heap.push_back(std::move(pn));
        std::push_heap(heap.begin(), heap.end(), less);
      }
    }
  }
  SkylineResult out;
  out.skyline = sl.members();
  std::sort(out.skyline.begin(), out.skyline.end());
  out.io = DiskManager::ThreadStats() - before;
  return out;
}

}  // namespace gir
