#ifndef GIR_SKYLINE_SKYLINE_H_
#define GIR_SKYLINE_SKYLINE_H_

#include <vector>

#include "dataset/dataset.h"

namespace gir {

// Incrementally-maintained skyline over records of a Dataset ("larger
// is better"). Used for the in-memory skyline of the BRS-encountered
// set T, and as the running SL of the BBS continuation.
//
// Member coordinates are mirrored into one packed row-major block so
// the dominance loops — the hottest Phase-2 scalar work — stream over
// contiguous memory instead of chasing scattered dataset rows.
class SkylineSet {
 public:
  explicit SkylineSet(const Dataset* dataset) : dataset_(dataset) {}

  // Inserts `id` unless it is dominated by a current member; evicts
  // members it dominates. Returns true when inserted.
  bool Insert(RecordId id);

  // True when p (a raw point) is dominated by some member.
  bool DominatedByMember(VecView p) const;

  const std::vector<RecordId>& members() const { return members_; }
  size_t size() const { return members_.size(); }

 private:
  const Dataset* dataset_;
  std::vector<RecordId> members_;
  // coords_[m * dim .. (m+1) * dim) is members_[m]'s point.
  std::vector<double> coords_;
};

// Skyline of an explicit list of record ids (block-nested-loop, used
// for cross-checks and small sets).
std::vector<RecordId> ComputeSkyline(const Dataset& dataset,
                                     const std::vector<RecordId>& ids);

}  // namespace gir

#endif  // GIR_SKYLINE_SKYLINE_H_
