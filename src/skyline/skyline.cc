#include "skyline/skyline.h"

#include <cstring>

#include "common/simd.h"

namespace gir {

bool SkylineSet::Insert(RecordId id) {
  VecView p = dataset_->Get(id);
  const size_t dim = dataset_->dim();
  // Scan of the packed member block for a dominating row — the hottest
  // Phase-2 loop, dispatched to the widest SIMD tier the CPU supports
  // (bit-identical verdicts on every tier: pure comparisons).
  if (simd::FindDominatorInRows(coords_.data(), members_.size(), p.data(),
                                dim) < members_.size()) {
    return false;
  }
  // Evict members dominated by the newcomer, compacting ids and the
  // packed coordinate block in lockstep.
  size_t kept = 0;
  for (size_t m = 0; m < members_.size(); ++m) {
    if (!simd::DominatesRow(p.data(), coords_.data() + m * dim, dim)) {
      if (kept != m) {
        members_[kept] = members_[m];
        std::memmove(coords_.data() + kept * dim, coords_.data() + m * dim,
                     dim * sizeof(double));
      }
      ++kept;
    }
  }
  members_.resize(kept);
  coords_.resize(kept * dim);
  members_.push_back(id);
  coords_.insert(coords_.end(), p.begin(), p.end());
  return true;
}

bool SkylineSet::DominatedByMember(VecView p) const {
  const size_t dim = dataset_->dim();
  return simd::FindDominatorInRows(coords_.data(), members_.size(), p.data(),
                                   dim) < members_.size();
}

std::vector<RecordId> ComputeSkyline(const Dataset& dataset,
                                     const std::vector<RecordId>& ids) {
  SkylineSet sky(&dataset);
  for (RecordId id : ids) sky.Insert(id);
  return sky.members();
}

}  // namespace gir
