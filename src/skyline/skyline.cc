#include "skyline/skyline.h"

#include <cstring>

#include "skyline/dominance.h"

namespace gir {

namespace {

// Scan of the packed member block for a row dominating `p` (returns
// `count` when none does). Specialized on the dimensionality so the
// per-row compare chain is fully unrolled, branch-light straight-line
// code; the paper's d range (2..8) is covered, anything else takes the
// dynamic fallback. Same predicate as Dominates(), bit for bit.
template <size_t D>
size_t ScanForDominator(const double* rows, size_t count, const double* p) {
  for (size_t m = 0; m < count; ++m) {
    const double* r = rows + m * D;
    bool all_ge = true;
    bool any_gt = false;
    for (size_t j = 0; j < D; ++j) {
      all_ge &= r[j] >= p[j];
      any_gt |= r[j] > p[j];
    }
    if (all_ge && any_gt) return m;
  }
  return count;
}

size_t ScanForDominatorDyn(const double* rows, size_t count, const double* p,
                           size_t dim) {
  for (size_t m = 0; m < count; ++m) {
    if (DominatesBranchless(rows + m * dim, p, dim)) return m;
  }
  return count;
}

size_t FindDominator(const double* rows, size_t count, const double* p,
                     size_t dim) {
  switch (dim) {
    case 2:
      return ScanForDominator<2>(rows, count, p);
    case 3:
      return ScanForDominator<3>(rows, count, p);
    case 4:
      return ScanForDominator<4>(rows, count, p);
    case 5:
      return ScanForDominator<5>(rows, count, p);
    case 6:
      return ScanForDominator<6>(rows, count, p);
    case 7:
      return ScanForDominator<7>(rows, count, p);
    case 8:
      return ScanForDominator<8>(rows, count, p);
    default:
      return ScanForDominatorDyn(rows, count, p, dim);
  }
}

}  // namespace

bool SkylineSet::Insert(RecordId id) {
  VecView p = dataset_->Get(id);
  const size_t dim = dataset_->dim();
  if (FindDominator(coords_.data(), members_.size(), p.data(), dim) <
      members_.size()) {
    return false;
  }
  // Evict members dominated by the newcomer, compacting ids and the
  // packed coordinate block in lockstep.
  size_t kept = 0;
  for (size_t m = 0; m < members_.size(); ++m) {
    if (!DominatesBranchless(p.data(), coords_.data() + m * dim, dim)) {
      if (kept != m) {
        members_[kept] = members_[m];
        std::memmove(coords_.data() + kept * dim, coords_.data() + m * dim,
                     dim * sizeof(double));
      }
      ++kept;
    }
  }
  members_.resize(kept);
  coords_.resize(kept * dim);
  members_.push_back(id);
  coords_.insert(coords_.end(), p.begin(), p.end());
  return true;
}

bool SkylineSet::DominatedByMember(VecView p) const {
  const size_t dim = dataset_->dim();
  return FindDominator(coords_.data(), members_.size(), p.data(), dim) <
         members_.size();
}

std::vector<RecordId> ComputeSkyline(const Dataset& dataset,
                                     const std::vector<RecordId>& ids) {
  SkylineSet sky(&dataset);
  for (RecordId id : ids) sky.Insert(id);
  return sky.members();
}

}  // namespace gir
