#include "skyline/skyline.h"

#include "skyline/dominance.h"

namespace gir {

bool SkylineSet::Insert(RecordId id) {
  VecView p = dataset_->Get(id);
  for (RecordId m : members_) {
    if (Dominates(dataset_->Get(m), p)) return false;
  }
  // Evict members dominated by the newcomer.
  size_t kept = 0;
  for (size_t i = 0; i < members_.size(); ++i) {
    if (!Dominates(p, dataset_->Get(members_[i]))) {
      members_[kept++] = members_[i];
    }
  }
  members_.resize(kept);
  members_.push_back(id);
  return true;
}

bool SkylineSet::DominatedByMember(VecView p) const {
  for (RecordId m : members_) {
    if (Dominates(dataset_->Get(m), p)) return true;
  }
  return false;
}

std::vector<RecordId> ComputeSkyline(const Dataset& dataset,
                                     const std::vector<RecordId>& ids) {
  SkylineSet sky(&dataset);
  for (RecordId id : ids) sky.Insert(id);
  return sky.members();
}

}  // namespace gir
