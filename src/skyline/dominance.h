#ifndef GIR_SKYLINE_DOMINANCE_H_
#define GIR_SKYLINE_DOMINANCE_H_

#include "geom/vec.h"

namespace gir {

// p dominates p' iff p is no smaller in every dimension and strictly
// larger in at least one ("larger is better" convention, paper §5.1).
inline bool Dominates(VecView p, VecView q) {
  bool strictly = false;
  for (size_t j = 0; j < p.size(); ++j) {
    if (p[j] < q[j]) return false;
    if (p[j] > q[j]) strictly = true;
  }
  return strictly;
}

}  // namespace gir

#endif  // GIR_SKYLINE_DOMINANCE_H_
