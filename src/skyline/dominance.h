#ifndef GIR_SKYLINE_DOMINANCE_H_
#define GIR_SKYLINE_DOMINANCE_H_

#include "geom/vec.h"

namespace gir {

// p dominates p' iff p is no smaller in every dimension and strictly
// larger in at least one ("larger is better" convention, paper §5.1).
// The pointer form is the streaming kernel used over packed rows (e.g.
// SkylineSet's member block); the VecView form forwards to it.
inline bool Dominates(const double* p, const double* q, size_t dim) {
  bool strictly = false;
  for (size_t j = 0; j < dim; ++j) {
    if (p[j] < q[j]) return false;
    if (p[j] > q[j]) strictly = true;
  }
  return strictly;
}

inline bool Dominates(VecView p, VecView q) {
  return Dominates(p.data(), q.data(), p.size());
}

// Branch-light evaluation of the same predicate: all comparisons are
// accumulated as flag arithmetic instead of early-exit branches. On the
// low dimensionalities of this library (d <= 8) the saved branch
// mispredicts outweigh the extra compares, and the loop body is
// vectorization-friendly. Bitwise-identical results to Dominates().
inline bool DominatesBranchless(const double* p, const double* q, size_t dim) {
  bool all_ge = true;
  bool any_gt = false;
  for (size_t j = 0; j < dim; ++j) {
    all_ge &= p[j] >= q[j];
    any_gt |= p[j] > q[j];
  }
  return all_ge && any_gt;
}

}  // namespace gir

#endif  // GIR_SKYLINE_DOMINANCE_H_
