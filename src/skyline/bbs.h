#ifndef GIR_SKYLINE_BBS_H_
#define GIR_SKYLINE_BBS_H_

#include <vector>

#include "common/result.h"
#include "index/rtree.h"
#include "skyline/skyline.h"
#include "topk/brs.h"

namespace gir {

// Output of the BBS continuation: SL = skyline of D \ R.
struct SkylineResult {
  std::vector<RecordId> skyline;
  IoStats io;
};

// BBS (Papadias et al., TODS 2005) adapted per paper §5.1: instead of
// starting fresh with nearest-neighbour order to the top corner, it
// (1) seeds SL with the in-memory skyline of the BRS-encountered set T,
// then (2) resumes from the retained BRS search heap, retrieving
// entries in decreasing maxscore order (any monotone preference works
// for BBS correctness). Nodes whose MBB top corner is dominated by an
// SL member are pruned without a page read; retrieved records are
// inserted with full dominance maintenance.
//
// `brs` is the completed top-k run whose heap and encountered set are
// consumed (taken by value semantics: pass a copy if it is reused).
SkylineResult ContinueSkylineFromBrs(const RTree& tree,
                                     const ScoringFunction& scoring,
                                     VecView weights,
                                     const TopKResult& brs);

// Frozen-tree variant; bit-identical skyline and IoStats.
SkylineResult ContinueSkylineFromBrs(const FlatRTree& tree,
                                     const ScoringFunction& scoring,
                                     VecView weights,
                                     const TopKResult& brs);

}  // namespace gir

#endif  // GIR_SKYLINE_BBS_H_
