#include "gir/brute_force.h"

#include <algorithm>
#include <numeric>

#include "common/simd.h"
#include "gir/phase1.h"

namespace gir {

Result<GirRegion> ComputeGirBruteForce(const Dataset& data,
                                       const ScoringFunction& scoring,
                                       VecView weights, size_t k) {
  if (k == 0 || k > data.size()) {
    return Status::InvalidArgument("k out of range for dataset");
  }
  // Score every record by streaming the column-major mirror — one
  // contiguous plane per dimension, accumulated in the same dimension
  // order as ScoringFunction::Score, so the values (and the sort) are
  // bit-identical to per-record scoring.
  const size_t n = data.size();
  std::vector<double> scores(n, 0.0);
  std::vector<double> transformed(n);
  for (size_t j = 0; j < data.dim(); ++j) {
    const double* column = data.Column(j);
    const double wj = weights[j];
    if (scoring.IsIdentityTransform()) {
      simd::Axpy(wj, column, scores.data(), n);
    } else {
      scoring.TransformDimBatch(j, column, n, transformed.data());
      simd::Axpy(wj, transformed.data(), scores.data(), n);
    }
  }
  std::vector<RecordId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [&](RecordId a, RecordId b) {
    return scores[a] > scores[b];
  });
  std::vector<RecordId> result(ids.begin(), ids.begin() + k);
  GirRegion region(data.dim(), Vec(weights.begin(), weights.end()), result);
  AddPhase1Constraints(data, scoring, result, &region);
  Vec gk = scoring.Transform(data.Get(result.back()));
  for (size_t i = k; i < ids.size(); ++i) {
    Vec gp = scoring.Transform(data.Get(ids[i]));
    ConstraintProvenance prov;
    prov.kind = ConstraintProvenance::Kind::kOvertake;
    prov.position = static_cast<int>(k) - 1;
    prov.challenger = ids[i];
    region.AddConstraint(Sub(gk, gp), prov);
  }
  return region;
}

}  // namespace gir
