#include "gir/brute_force.h"

#include <algorithm>
#include <numeric>

#include "gir/phase1.h"

namespace gir {

Result<GirRegion> ComputeGirBruteForce(const Dataset& data,
                                       const ScoringFunction& scoring,
                                       VecView weights, size_t k) {
  if (k == 0 || k > data.size()) {
    return Status::InvalidArgument("k out of range for dataset");
  }
  std::vector<RecordId> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [&](RecordId a, RecordId b) {
    return scoring.Score(data.Get(a), weights) >
           scoring.Score(data.Get(b), weights);
  });
  std::vector<RecordId> result(ids.begin(), ids.begin() + k);
  GirRegion region(data.dim(), Vec(weights.begin(), weights.end()), result);
  AddPhase1Constraints(data, scoring, result, &region);
  Vec gk = scoring.Transform(data.Get(result.back()));
  for (size_t i = k; i < ids.size(); ++i) {
    Vec gp = scoring.Transform(data.Get(ids[i]));
    ConstraintProvenance prov;
    prov.kind = ConstraintProvenance::Kind::kOvertake;
    prov.position = static_cast<int>(k) - 1;
    prov.challenger = ids[i];
    region.AddConstraint(Sub(gk, gp), prov);
  }
  return region;
}

}  // namespace gir
