#ifndef GIR_GIR_FPND_H_
#define GIR_GIR_FPND_H_

#include <map>
#include <vector>

#include "common/result.h"
#include "geom/hyperplane.h"
#include "gir/sp.h"

namespace gir {

// The data structure at the heart of Facet Pruning (paper §6.3): the
// facets of CH' = conv({apex} ∪ P) incident to the apex (its "star"),
// maintained incrementally as points of P arrive, without ever
// materialising the rest of the hull. Key invariant: a ridge containing
// the apex is always shared by exactly two *incident* facets, so
// horizon ridges of an insertion can be found purely inside the star.
//
// The star is seeded with d dummy points apex - c_i * e_i (with
// c_i = max(apex_i, 1/2)), which guarantees a full-dimensional initial
// simplex. Dummies are dominated by the apex component-wise, so any
// constraint they would induce is implied by q' >= 0 and they are
// excluded from CriticalRecordIds().
class IncidentStar {
 public:
  // `apex` in (transformed) data-space coordinates.
  explicit IncidentStar(Vec apex, double eps = 1e-10);

  // Processes one point. Returns true when the star changed (the point
  // was above at least one facet), false when it was pruned (the
  // common case: no copy of `p` is made then). Fails with
  // FailedPrecondition on a degenerate facet fit (caller may joggle
  // the point and retry, or add its constraint directly — both
  // preserve correctness).
  Result<bool> Insert(VecView p, int external_id);

  struct StarFacet {
    std::vector<int> vertices;  // internal point ids; includes the apex
    Hyperplane plane;           // outward-oriented
    bool alive = true;
  };

  // All facets ever created; check `alive`. Compact by construction is
  // not needed: dead fraction stays modest for typical workloads.
  const std::vector<StarFacet>& facets() const { return facets_; }
  size_t live_facet_count() const { return live_count_; }
  // Total number of facets created over the lifetime (paper Fig. 8(b)
  // counts incident facets; this tracks the work performed).
  size_t facets_created() const { return facets_.size(); }

  // External ids of the current star vertices other than apex/dummies:
  // the paper's critical records.
  std::vector<int> CriticalRecordIds() const;

  // True when no point of the (transformed) box [lo, hi] can lie above
  // any live facet — the FP node-pruning test. `maxdot` must return
  // max over the box of normal·x (see MaxDotTransformedBox below).
  template <typename MaxDotFn>
  bool BoxBelowAllFacets(const MaxDotFn& maxdot) const {
    for (const StarFacet& f : facets_) {
      if (!f.alive) continue;
      if (maxdot(f.plane.normal) > f.plane.offset + eps_) return false;
    }
    return true;
  }

  const Vec& apex() const { return points_[0]; }

 private:
  std::vector<int> RidgeKey(const StarFacet& f, int omit_vertex) const;
  void RegisterFacet(int facet_id);
  void UnregisterFacet(int facet_id);

  double eps_;
  size_t dim_;
  std::vector<Vec> points_;        // [0]=apex, [1..d]=dummies, then data
  std::vector<int> external_ids_;  // -1 for apex and dummies
  Vec interior_;                   // strictly inside the growing hull
  std::vector<StarFacet> facets_;
  size_t live_count_ = 0;
  // sorted non-apex ridge vertex ids -> the (<=2) live facets sharing it
  std::map<std::vector<int>, std::vector<int>> ridges_;
};

struct FpOptions {
  // Paper §6.3.1 heuristic: feed the per-dimension maxima of T first so
  // early facets prune aggressively. Exposed for the ablation bench.
  bool max_coordinate_seeding = true;
  // Paper footnote 7: map the interim Phase-1 GIR into query-space
  // vertices and skip any record/node whose overtaking constraint
  // already holds everywhere on that polytope (it would be redundant in
  // the final intersection). Tightens disk fetches at the price of one
  // small half-space intersection up front. Off by default to mirror
  // the paper's evaluated configuration.
  bool phase1_tightening = false;
  double eps = 1e-10;
};

// Facet Pruning for d > 2 (also correct for d == 2; the engine uses the
// specialised angular variant there). Consumes the encountered set T
// and the retained BRS heap; emits one half-space per critical record.
Result<Phase2Output> RunFpNdPhase2(const RTree& tree,
                                   const ScoringFunction& scoring,
                                   VecView weights, const TopKResult& topk,
                                   GirRegion* region,
                                   const FpOptions& options = {});

// Frozen-tree variant; bit-identical constraints and IoStats.
Result<Phase2Output> RunFpNdPhase2(const FlatRTree& tree,
                                   const ScoringFunction& scoring,
                                   VecView weights, const TopKResult& topk,
                                   GirRegion* region,
                                   const FpOptions& options = {});

// max over the (raw) box of sum_j n_j * g_j(x_j): per-dimension maximum
// at lo or hi since each g_j is monotone increasing.
double MaxDotTransformedBox(const ScoringFunction& scoring, const Mbb& box,
                            VecView normal);

}  // namespace gir

#endif  // GIR_GIR_FPND_H_
