#ifndef GIR_GIR_UPDATE_BATCH_H_
#define GIR_GIR_UPDATE_BATCH_H_

#include <vector>

#include "dataset/dataset.h"

namespace gir {

// One batch of mutations for GirEngine::ApplyUpdates. Deletes are
// applied before inserts; records are deleted by id (ids are stable
// tombstones, never reused) and inserted points must already live in
// the normalized [0,1]^d domain of the dataset.
//
// Lives in its own header (rather than gir/engine.h) because the
// write-ahead log frames serialized UpdateBatches and the engine embeds
// WAL configuration — both sides need the type without a cycle.
struct UpdateBatch {
  std::vector<Vec> inserts;
  std::vector<RecordId> deletes;
};

}  // namespace gir

#endif  // GIR_GIR_UPDATE_BATCH_H_
