#include "gir/fp2d.h"

#include <algorithm>
#include <cmath>

#include "skyline/dominance.h"
#include "topk/tree_kernels.h"

namespace gir {

namespace {

double Cross(VecView a, VecView b) { return a[0] * b[1] - a[1] * b[0]; }

// State of the two interim facets. Directions are measured from the
// sweeping-line direction u = rot90(q); every candidate record lies in
// the half-plane strictly below the sweeping line, so its direction
// angle psi(v) ranges over (0, pi) and the min/max records bound the
// anticlockwise/clockwise rotations respectively.
struct Facets2D {
  // Direction vectors (p - p_k) of the current bounding records, and
  // the record ids (-1 while the bound is still the axis-projection
  // dummy, whose constraint is implied by q' >= 0).
  Vec dir_anti;
  RecordId rec_anti = -1;
  Vec dir_clock;
  RecordId rec_clock = -1;

  // True when v = p - p_k rotates before the current anticlockwise
  // bound (i.e. psi(v) < psi(dir_anti)).
  bool BeatsAnti(VecView v) const { return Cross(dir_anti, v) < 0.0; }
  bool BeatsClock(VecView v) const { return Cross(dir_clock, v) > 0.0; }

  void Update(VecView v, RecordId id) {
    if (BeatsAnti(v)) {
      dir_anti.assign(v.begin(), v.end());
      rec_anti = id;
    }
    if (BeatsClock(v)) {
      dir_clock.assign(v.begin(), v.end());
      rec_clock = id;
    }
  }
};

template <typename Tree>
Result<Phase2Output> RunFp2dImpl(const Tree& tree,
                                 const ScoringFunction& scoring,
                                 VecView weights, const TopKResult& topk,
                                 GirRegion* region) {
  const Dataset& data = tree.dataset();
  if (data.dim() != 2) {
    return Status::InvalidArgument("FP-2D requires d == 2");
  }
  if (topk.result.empty()) {
    return Status::InvalidArgument("empty top-k result");
  }
  IoStats before = DiskManager::ThreadStats();
  const RecordId pk = topk.result.back();
  VecView pk_raw = data.Get(pk);
  Vec gk = scoring.Transform(pk_raw);

  // Initial facets: the projections of p_k onto the axes (paper §6.2),
  // i.e. rotation all the way to the axis directions.
  Facets2D facets;
  facets.dir_anti = {-std::max(gk[0], 0.5), 0.0};
  facets.dir_clock = {0.0, -std::max(gk[1], 0.5)};

  // Step 1: angular scan of the encountered set T.
  for (RecordId id : topk.encountered) {
    VecView p = data.Get(id);
    if (Dominates(pk_raw, p)) continue;
    Vec v = Sub(scoring.Transform(p), gk);
    if (v[0] == 0.0 && v[1] == 0.0) continue;  // duplicate of p_k
    facets.Update(v, id);
  }

  // Step 2: refine from disk via the retained BRS heap.
  std::vector<PendingNode> heap = topk.pending;
  PendingNodeLess less;
  std::make_heap(heap.begin(), heap.end(), less);
  auto box_can_update = [&](const Mbb& box) {
    // Check the four transformed corners; the transformed box is still
    // a box (monotone per-dimension transform), so corners are extreme.
    double gx[2] = {scoring.TransformDim(0, box.lo[0]),
                    scoring.TransformDim(0, box.hi[0])};
    double gy[2] = {scoring.TransformDim(1, box.lo[1]),
                    scoring.TransformDim(1, box.hi[1])};
    for (int ix = 0; ix < 2; ++ix) {
      for (int iy = 0; iy < 2; ++iy) {
        Vec v = {gx[ix] - gk[0], gy[iy] - gk[1]};
        if (facets.BeatsAnti(v) || facets.BeatsClock(v)) return true;
      }
    }
    return false;
  };
  ScoreBuffer buf;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), less);
    PendingNode top = std::move(heap.back());
    heap.pop_back();
    if (!box_can_update(top.mbb)) continue;  // below both interim facets
    decltype(auto) node = tree.ReadNode(top.page);
    const size_t count = NodeEntryCount(node);
    if (NodeIsLeaf(node)) {
      for (size_t i = 0; i < count; ++i) {
        const RecordId id = NodeChild(node, i);
        VecView p = data.Get(id);
        if (Dominates(pk_raw, p)) continue;
        Vec v = Sub(scoring.Transform(p), gk);
        if (v[0] == 0.0 && v[1] == 0.0) continue;
        facets.Update(v, id);
      }
    } else {
      ComputeEntryScores(scoring, data, node, weights, &buf);
      for (size_t i = 0; i < count; ++i) {
        PendingNode pn;
        pn.maxscore = buf.scores[i];
        pn.page = static_cast<PageId>(NodeChild(node, i));
        pn.mbb = NodeEntryMbb(node, i);
        heap.push_back(std::move(pn));
        std::push_heap(heap.begin(), heap.end(), less);
      }
    }
  }

  // Emit the (up to two) critical half-spaces.
  Phase2Output out;
  ConstraintProvenance prov;
  prov.kind = ConstraintProvenance::Kind::kOvertake;
  prov.position = static_cast<int>(topk.result.size()) - 1;
  for (RecordId id : {facets.rec_anti, facets.rec_clock}) {
    if (id < 0) continue;  // axis dummy: implied by the cube
    prov.challenger = id;
    region->AddConstraint(Sub(gk, scoring.Transform(data.Get(id))), prov);
    ++out.candidates;
  }
  out.io = DiskManager::ThreadStats() - before;
  return out;
}

}  // namespace

Result<Phase2Output> RunFp2dPhase2(const RTree& tree,
                                   const ScoringFunction& scoring,
                                   VecView weights, const TopKResult& topk,
                                   GirRegion* region) {
  return RunFp2dImpl(tree, scoring, weights, topk, region);
}

Result<Phase2Output> RunFp2dPhase2(const FlatRTree& tree,
                                   const ScoringFunction& scoring,
                                   VecView weights, const TopKResult& topk,
                                   GirRegion* region) {
  return RunFp2dImpl(tree, scoring, weights, topk, region);
}

}  // namespace gir
