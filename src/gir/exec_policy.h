#ifndef GIR_GIR_EXEC_POLICY_H_
#define GIR_GIR_EXEC_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace gir {

// How one batch executes: the single knob set shared by every layer
// that runs queries — BatchEngine::ComputeBatch accepts one per call,
// BatchOptions::exec holds the engine-level default, and the serve
// replay/admission stack builds its per-batch policy from the engine
// default plus the admission former's output. A default-constructed
// policy is the documented baseline: independent fan-out per query,
// two retries on transient faults, prefetch enabled where an mmap'd
// arena makes it meaningful.
//
// Every field is per-call; none reconfigures the engine. Results are
// policy-independent — grouping, widths, prefetch and retries change
// wall time and physical I/O, never which records come back (see the
// shared-traversal and prefetch contracts).
struct ExecPolicy {
  // Shared-traversal execution: cache-missing queries are deduplicated,
  // grouped, and run through RunBrsMulti — one physical walk of the
  // frozen tree per group, multi-weight SIMD scoring per visited node —
  // instead of one independent BRS per query. Per-query results
  // (top-k, scores, region constraints, charged IoStats) are
  // bit-identical to the fan-out path; only the physical read count
  // and wall time change. OFF by default until a deployment opts in.
  bool shared_traversal = false;

  // Maximum queries per shared-traversal group: bounds the score-matrix
  // working set (group_width * node capacity doubles) and the per-group
  // heap pool.
  size_t group_width = 64;

  // Caller-chosen shared-traversal grouping: group_of[i] is the group
  // label of query i (any uint32 — equal labels traverse together).
  // Must be empty or exactly weights.size() long. A group boundary
  // falls wherever the label changes along input order, so labels
  // should form contiguous runs (the admission former emits batches
  // cluster-major, so this is free; a non-contiguous label just
  // traverses as several groups). Groups are still capped at
  // group_width. Empty = chunk representatives by width.
  std::vector<uint32_t> group_of;

  // Nonzero: per-item latency budget in ms, measured like
  // BatchItem::latency_ms (batch start to item reply). Two effects:
  // items over budget are counted in BatchStats::deadline_misses
  // (never dropped or truncated — admission-time shedding is the serve
  // layer's job), and a fault retry whose backoff would cross the
  // budget is skipped in favor of an explicit terminal status.
  double deadline_ms = 0.0;

  // ----- transient-fault handling -----
  // Per-query retry budget after a kUnavailable from the storage layer
  // (an injected — or real — transient page-read failure). Each retry
  // first backs off retry_backoff_ms * 2^attempt of real time; a retry
  // whose backoff would cross deadline_ms is skipped and the query
  // degrades to its terminal status instead — an explicit kUnavailable
  // item, never a silent drop. 0 disables retries.
  size_t max_retries = 2;
  double retry_backoff_ms = 0.25;

  // Frontier prefetch on mmap-arena-backed engines: each
  // shared-traversal round madvise(MADV_WILLNEED)s its whole demanded
  // page set before fetching/scoring the first page, so kernel
  // readahead overlaps the round's SIMD scoring. No-op on heap-frozen
  // images; never changes results, only page-in timing.
  bool prefetch = true;

  // ----- replicated-serving hints -----
  // These two fields ride the policy down through the serve router
  // (src/serve/router.h); a single-engine BatchEngine enforces the pin
  // and ignores the hedge delay (there is no peer to hedge to).

  // Hedged requests: if the primary replica has not replied within this
  // many ms, the router dispatches the same query to a healthy peer and
  // takes the first reply (both attempts are charged in metrics). 0 =
  // derive the delay from the router's trailing p99 of reply latencies.
  double hedge_delay_ms = 0.0;

  // Epoch pin: the reply must reflect a dataset epoch >= this version
  // (no time-travel after an acknowledged update). The router only
  // routes — and only fails over — to replicas at or ahead of the pin;
  // a single engine behind the pin answers kUnavailable. 0 = unpinned.
  uint64_t pin_epoch = 0;
};

// API-boundary validation, shared by BatchEngine::ComputeBatch and the
// serve router: kInvalidArgument names the offending field, kOk means
// every numeric knob is representable and in-domain. Notably rejects
// non-finite or negative time budgets (a NaN deadline silently disables
// deadline accounting — worse than failing fast), a zero group_width
// under shared traversal (an empty group can make no progress), and a
// max_retries so large it can only be a negative value cast to size_t.
Status ValidateExecPolicy(const ExecPolicy& policy);

// Retry budgets beyond this are rejected as nonsensical: the practical
// way to exceed it is size_t(-1) from a careless signed conversion.
constexpr size_t kMaxRetriesCap = 1000;

}  // namespace gir

#endif  // GIR_GIR_EXEC_POLICY_H_
