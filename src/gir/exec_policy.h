#ifndef GIR_GIR_EXEC_POLICY_H_
#define GIR_GIR_EXEC_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gir {

// How one batch executes: the single knob set shared by every layer
// that runs queries — BatchEngine::ComputeBatch accepts one per call,
// BatchOptions::exec holds the engine-level default, and the serve
// replay/admission stack builds its per-batch policy from the engine
// default plus the admission former's output. A default-constructed
// policy is the documented baseline: independent fan-out per query,
// two retries on transient faults, prefetch enabled where an mmap'd
// arena makes it meaningful.
//
// Every field is per-call; none reconfigures the engine. Results are
// policy-independent — grouping, widths, prefetch and retries change
// wall time and physical I/O, never which records come back (see the
// shared-traversal and prefetch contracts).
struct ExecPolicy {
  // Shared-traversal execution: cache-missing queries are deduplicated,
  // grouped, and run through RunBrsMulti — one physical walk of the
  // frozen tree per group, multi-weight SIMD scoring per visited node —
  // instead of one independent BRS per query. Per-query results
  // (top-k, scores, region constraints, charged IoStats) are
  // bit-identical to the fan-out path; only the physical read count
  // and wall time change. OFF by default until a deployment opts in.
  bool shared_traversal = false;

  // Maximum queries per shared-traversal group: bounds the score-matrix
  // working set (group_width * node capacity doubles) and the per-group
  // heap pool.
  size_t group_width = 64;

  // Caller-chosen shared-traversal grouping: group_of[i] is the group
  // label of query i (any uint32 — equal labels traverse together).
  // Must be empty or exactly weights.size() long. A group boundary
  // falls wherever the label changes along input order, so labels
  // should form contiguous runs (the admission former emits batches
  // cluster-major, so this is free; a non-contiguous label just
  // traverses as several groups). Groups are still capped at
  // group_width. Empty = chunk representatives by width.
  std::vector<uint32_t> group_of;

  // Nonzero: per-item latency budget in ms, measured like
  // BatchItem::latency_ms (batch start to item reply). Two effects:
  // items over budget are counted in BatchStats::deadline_misses
  // (never dropped or truncated — admission-time shedding is the serve
  // layer's job), and a fault retry whose backoff would cross the
  // budget is skipped in favor of an explicit terminal status.
  double deadline_ms = 0.0;

  // ----- transient-fault handling -----
  // Per-query retry budget after a kUnavailable from the storage layer
  // (an injected — or real — transient page-read failure). Each retry
  // first backs off retry_backoff_ms * 2^attempt of real time; a retry
  // whose backoff would cross deadline_ms is skipped and the query
  // degrades to its terminal status instead — an explicit kUnavailable
  // item, never a silent drop. 0 disables retries.
  size_t max_retries = 2;
  double retry_backoff_ms = 0.25;

  // Frontier prefetch on mmap-arena-backed engines: each
  // shared-traversal round madvise(MADV_WILLNEED)s its whole demanded
  // page set before fetching/scoring the first page, so kernel
  // readahead overlaps the round's SIMD scoring. No-op on heap-frozen
  // images; never changes results, only page-in timing.
  bool prefetch = true;
};

}  // namespace gir

#endif  // GIR_GIR_EXEC_POLICY_H_
