#ifndef GIR_GIR_GIR_STAR_H_
#define GIR_GIR_GIR_STAR_H_

#include <vector>

#include "common/result.h"
#include "gir/fpnd.h"
#include "gir/sp.h"

namespace gir {

// Result-record pruning for the order-insensitive GIR (paper §7.1):
// keeps only the records R- of R that (i) lie on the convex hull of the
// transformed result and (ii) do not dominate another result record.
// Only these can contribute facets to GIR*.
std::vector<RecordId> PruneResultForGirStar(const Dataset& data,
                                            const ScoringFunction& scoring,
                                            const std::vector<RecordId>& r);

// Phase-2 for GIR* = the maximal locus preserving the *composition* of
// R (order ignored): the conjunction over p_i in R- of the conditions
// S(p_i, q') >= S(p, q') for all non-result p. No Phase-1 constraints.
//
// `method` selects the machinery: "SP"/"CP" derive SL once and emit
// |R-| * |candidates| half-spaces; "FP" maintains one incident star per
// record of R- concurrently, pruning a node only when it is below every
// facet of every star.
Result<Phase2Output> RunGirStarPhase2(const RTree& tree,
                                      const ScoringFunction& scoring,
                                      VecView weights, const TopKResult& topk,
                                      const std::string& method,
                                      GirRegion* region,
                                      const FpOptions& fp_options = {});

// Frozen-tree variant; bit-identical constraints and IoStats.
Result<Phase2Output> RunGirStarPhase2(const FlatRTree& tree,
                                      const ScoringFunction& scoring,
                                      VecView weights, const TopKResult& topk,
                                      const std::string& method,
                                      GirRegion* region,
                                      const FpOptions& fp_options = {});

}  // namespace gir

#endif  // GIR_GIR_GIR_STAR_H_
