#ifndef GIR_GIR_APPROX_H_
#define GIR_GIR_APPROX_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "index/rtree.h"
#include "topk/scoring.h"

namespace gir {

// Scoring functions OUTSIDE the paper's sum-of-monotone-terms family:
// S(p, q) is monotone increasing in p (so index-based top-k still
// works) but not linear in q, so the preservation conditions are no
// longer half-spaces. Per §7.2 "exact representation of the GIR in such
// cases is computationally expensive or not possible at all, which
// would call for approximate GIR representation techniques, such as
// polytope approximation, Monte Carlo simulation" — this module is that
// technique set.
class GeneralScoringFunction {
 public:
  virtual ~GeneralScoringFunction() = default;
  virtual std::string name() const = 0;
  virtual size_t dim() const = 0;
  virtual double Score(VecView p, VecView q) const = 0;
  // Upper bound over a box; for monotone-in-p functions the top corner
  // suffices.
  virtual double MaxScore(const Mbb& box, VecView q) const {
    return Score(box.hi, q);
  }
};

// Egalitarian "worst dimension" preference: S = min_i w_i * p_i. The
// preserved region is an intersection of min-comparisons — piecewise
// linear and generally NOT convex, the canonical case the exact
// machinery cannot represent.
class MinScoring : public GeneralScoringFunction {
 public:
  explicit MinScoring(size_t dim) : dim_(dim) {}
  std::string name() const override { return "Min"; }
  size_t dim() const override { return dim_; }
  double Score(VecView p, VecView q) const override;

 private:
  size_t dim_;
};

// Adapter exposing an exact-family ScoringFunction through the general
// interface (used to validate the approximate machinery against the
// exact GIR).
class GeneralFromDecomposable : public GeneralScoringFunction {
 public:
  explicit GeneralFromDecomposable(std::unique_ptr<ScoringFunction> inner)
      : inner_(std::move(inner)) {}
  std::string name() const override { return inner_->name(); }
  size_t dim() const override { return inner_->dim(); }
  double Score(VecView p, VecView q) const override {
    return inner_->Score(p, q);
  }
  double MaxScore(const Mbb& box, VecView q) const override {
    return inner_->MaxScore(box, q);
  }

 private:
  std::unique_ptr<ScoringFunction> inner_;
};

// Branch-and-bound top-k for any monotone-in-p general scoring
// function (the BRS recipe with function-supplied bounds).
Result<std::vector<RecordId>> GeneralTopK(const RTree& tree,
                                          const GeneralScoringFunction& fn,
                                          VecView q, size_t k);

struct ApproxGirOptions {
  // Rays sampled from q for boundary bisection.
  size_t rays = 64;
  // Bisection iterations per ray (each costs one top-k evaluation).
  size_t bisection_steps = 18;
  // Monte-Carlo probes for the preserved-probability estimate. Each
  // probe is a full top-k evaluation: keep modest.
  size_t probability_samples = 300;
  uint64_t seed = 2014;
};

// Sampled characterization of the immutable region of a general
// scoring function around query q:
//   * PreservedAt(q') — the exact oracle (recomputes the top-k),
//   * boundary points along random rays (bisected to the first result
//     change; for non-convex regions this finds the nearest boundary
//     on each ray),
//   * min/mean boundary distance (approximate STB radius and a scale
//     summary),
//   * preserved_probability — Monte-Carlo estimate of the paper's
//     volume-ratio sensitivity measure.
class ApproxGir {
 public:
  static Result<ApproxGir> Compute(const RTree& tree,
                                   const GeneralScoringFunction& fn,
                                   VecView q, size_t k,
                                   const ApproxGirOptions& options = {});

  // Exact membership test (one top-k evaluation).
  bool PreservedAt(VecView q2) const;

  const std::vector<RecordId>& result() const { return result_; }
  const std::vector<Vec>& boundary_points() const { return boundary_; }
  double min_boundary_distance() const { return min_distance_; }
  double mean_boundary_distance() const { return mean_distance_; }
  double preserved_probability() const { return preserved_probability_; }

 private:
  ApproxGir(const RTree* tree, const GeneralScoringFunction* fn, Vec q,
            size_t k)
      : tree_(tree), fn_(fn), q_(std::move(q)), k_(k) {}

  const RTree* tree_;
  const GeneralScoringFunction* fn_;
  Vec q_;
  size_t k_;
  std::vector<RecordId> result_;
  std::vector<Vec> boundary_;
  double min_distance_ = 0.0;
  double mean_distance_ = 0.0;
  double preserved_probability_ = 0.0;
};

}  // namespace gir

#endif  // GIR_GIR_APPROX_H_
