#include "gir/sensitivity.h"

#include <cmath>

#include "geom/volume.h"

namespace gir {

double StbRadius(const GirRegion& region) {
  const Vec& q = region.query();
  double r = 1e300;
  // Distance to each constraint hyperplane n·x = 0.
  for (const GirConstraint& c : region.constraints()) {
    double norm = Norm(c.normal);
    if (norm < 1e-300) continue;
    double dist = Dot(c.normal, q) / norm;
    if (dist < 0) return 0.0;  // q outside (ties): degenerate region
    r = std::min(r, dist);
  }
  // Distance to the cube walls.
  for (size_t j = 0; j < region.dim(); ++j) {
    r = std::min(r, std::min(q[j], 1.0 - q[j]));
  }
  return std::max(0.0, r);
}

double BallVolume(size_t dim, double radius) {
  // V_d(r) = pi^{d/2} / Gamma(d/2 + 1) * r^d.
  double log_v = (dim / 2.0) * std::log(M_PI) -
                 std::lgamma(dim / 2.0 + 1.0) +
                 dim * std::log(radius);
  return std::exp(log_v);
}

double VolumeRatio(const GirRegion& region, VolumeMode mode, Rng& rng,
                   uint64_t samples) {
  switch (mode) {
    case VolumeMode::kExact:
      return region.polytope().Volume();
    case VolumeMode::kMonteCarloCube:
      return MonteCarloCubeFraction(region.AsHalfspaces(), region.dim(),
                                    samples, rng);
    case VolumeMode::kMonteCarloBox: {
      Vec lo;
      Vec hi;
      if (!BoundingBox(region.polytope(), &lo, &hi)) return 0.0;
      return MonteCarloVolumeInBox(region.AsHalfspaces(), lo, hi, samples,
                                   rng);
    }
  }
  return 0.0;
}

double VolumeRatioAuto(const GirRegion& region, Rng& rng, uint64_t samples) {
  const Polytope& poly = region.polytope();
  if (poly.empty()) return 0.0;
  double exact = poly.Volume();
  if (exact > 0.0) return exact;
  // Vertex set too degenerate for an exact fan: fall back to sampling
  // inside the bounding box.
  return VolumeRatio(region, VolumeMode::kMonteCarloBox, rng, samples);
}

}  // namespace gir
