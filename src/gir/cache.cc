#include "gir/cache.h"

namespace gir {

GirCache::Lookup GirCache::Probe(VecView q, size_t k, uint64_t version) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->version < version) {
      // Stale epoch: unservable forever, drop in place. Entries with a
      // *newer* stamp are skipped, not dropped (a probe may race the
      // version bump of an in-flight update).
      it = entries_.erase(it);
      continue;
    }
    if (it->version > version || !it->region.Contains(q)) {
      ++it;
      continue;
    }
    Lookup out;
    if (k <= it->k) {
      out.kind = HitKind::kExact;
      out.records.assign(it->result.begin(), it->result.begin() + k);
      ++hits_;
    } else {
      out.kind = HitKind::kPartial;
      out.records = it->result;
      ++partial_hits_;
    }
    // Move to front (LRU).
    entries_.splice(entries_.begin(), entries_, it);
    return out;
  }
  ++misses_;
  return Lookup{};
}

void GirCache::Insert(size_t k, std::vector<RecordId> result,
                      GirRegion region, uint64_t version) {
  entries_.push_front(Entry{k, std::move(result), std::move(region), version});
  while (entries_.size() > capacity_) entries_.pop_back();
}

}  // namespace gir
