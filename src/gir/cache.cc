#include "gir/cache.h"

namespace gir {

GirCache::Lookup GirCache::Probe(VecView q, size_t k) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (!it->region.Contains(q)) continue;
    Lookup out;
    if (k <= it->k) {
      out.kind = HitKind::kExact;
      out.records.assign(it->result.begin(), it->result.begin() + k);
      ++hits_;
    } else {
      out.kind = HitKind::kPartial;
      out.records = it->result;
      ++partial_hits_;
    }
    // Move to front (LRU).
    entries_.splice(entries_.begin(), entries_, it);
    return out;
  }
  ++misses_;
  return Lookup{};
}

void GirCache::Insert(size_t k, std::vector<RecordId> result,
                      GirRegion region) {
  entries_.push_front(Entry{k, std::move(result), std::move(region)});
  while (entries_.size() > capacity_) entries_.pop_back();
}

}  // namespace gir
