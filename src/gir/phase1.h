#ifndef GIR_GIR_PHASE1_H_
#define GIR_GIR_PHASE1_H_

#include <vector>

#include "dataset/dataset.h"
#include "gir/gir_region.h"
#include "topk/scoring.h"

namespace gir {

// Phase 1 (paper §4): add the k-1 ordering half-spaces
//   (g(p_i) - g(p_{i+1})) · q' >= 0,  i = 1..k-1
// that preserve the score order within the result. Uniform across all
// Phase-2 methods.
void AddPhase1Constraints(const Dataset& data, const ScoringFunction& scoring,
                          const std::vector<RecordId>& result,
                          GirRegion* region);

}  // namespace gir

#endif  // GIR_GIR_PHASE1_H_
