#ifndef GIR_GIR_SHARDED_CACHE_H_
#define GIR_GIR_SHARDED_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "gir/cache.h"
#include "gir/gir_region.h"
#include "topk/scoring.h"

namespace gir {

// Outcome of one incremental invalidation pass over the cache.
struct UpdateInvalidation {
  size_t entries_before = 0;
  size_t stale_evicted = 0;   // entries from an epoch older than current
  size_t delete_evicted = 0;  // entries whose result held a deleted record
  size_t lp_tests = 0;        // point-vs-region piercing LPs solved
  size_t insert_evicted = 0;  // entries some insert can pierce
  size_t survived = 0;        // entries re-stamped to the new version
};

// Thread-safe variant of GirCache for the batch engine (Probe/Insert/
// Clear/size from any thread; InvalidateForUpdates is single-writer —
// see its comment): entries are spread across independently-locked
// shards, each an LRU list. Inserts
// touch exactly one shard (chosen by hashing the query vector, so
// clustered workloads spread while repeats co-locate); probes scan
// shards starting from the inserting query's home shard, taking one
// shard lock at a time. Containment lookup is inherently a scan — a
// cached region anywhere may contain the probe point — so sharding
// bounds lock hold times rather than probe work.
//
// Total capacity is divided evenly across shards (rounded up), so a
// pathological insert pattern evicts at worst slightly later than a
// single LRU list would.
class ShardedGirCache {
 public:
  using Entry = GirCache::Entry;
  using HitKind = GirCache::HitKind;
  using Lookup = GirCache::Lookup;

  explicit ShardedGirCache(size_t capacity = 256, size_t num_shards = 8);

  // Probes every shard (home shard first) for a cached region
  // containing q, stamped with dataset version `version`. Semantics
  // match GirCache::Probe — exact hit when the cached k covers the
  // request, partial hit when the cached prefix is shorter, miss
  // otherwise — except that an exact hit anywhere is preferred over an
  // earlier shard's partial one. Entries from a different epoch are
  // evicted on sight (the version stamp is the stale-hit backstop; see
  // GirCache). The hit entry becomes MRU in its shard.
  Lookup Probe(VecView q, size_t k, uint64_t version = 0);

  // Inserts a computed GIR into the home shard of its query vector,
  // stamped with the dataset version it was computed at, evicting that
  // shard's LRU tail beyond the per-shard capacity. Only the constraint
  // system of the region is copied; any materialized polytope stays
  // with the caller (containment probes never need it).
  void Insert(size_t k, std::vector<RecordId> result, const GirRegion& region,
              uint64_t version = 0);

  // Incremental invalidation after an update batch: walks every entry
  // once and decides, with the existing halfspace/LP machinery instead
  // of a recompute, whether the update stream can perturb it.
  //   - An entry whose cached result contains a deleted record is
  //     evicted (the result is certainly wrong everywhere).
  //   - For each inserted record p (given as its transformed
  //     coordinates g(p)), an entry is evicted iff p can outscore the
  //     entry's k-th record somewhere inside the cached region —
  //     GirRegion::AdmitsGain(g(p) − g(p_k)), one small LP per
  //     (entry, insert) pair, short-circuited on the first pierce.
  //   - Surviving entries are re-stamped to `new_version`: deleting a
  //     non-result record or inserting a non-piercing one provably
  //     leaves the cached top-k exact everywhere inside its region.
  // Only entries stamped with the currently-published epoch
  // (new_version - 1) are eligible to survive: an entry carrying any
  // older stamp was never tested against the intermediate batches (it
  // was inserted by a query that computed against a retired snapshot),
  // so it is evicted outright rather than resurrected.
  // `dataset` must resolve the entries' record ids (the post-update
  // snapshot: tombstones keep deleted coordinates readable). The LPs
  // run outside the shard locks (each shard's list is spliced out and
  // merged back), so concurrent probes are never stalled — they miss
  // on the in-flight shard, which is safe. Single writer: this method
  // reuses unsynchronized member scratch (LP workspace, gain matrix),
  // so at most one InvalidateForUpdates may run at a time — callers
  // must serialize update application, as GirEngine::ApplyUpdates'
  // writer mutex does. Probe/Insert stay safe to call concurrently.
  // Returns the tests-vs-evictions accounting.
  UpdateInvalidation InvalidateForUpdates(const std::vector<RecordId>& deleted,
                                          const std::vector<Vec>& inserted_g,
                                          const Dataset& dataset,
                                          const ScoringFunction& scoring,
                                          uint64_t new_version);

  // Drops every entry (the invalidate-all strawman the bench compares
  // incremental invalidation against).
  void Clear();

  size_t size() const;
  size_t shard_count() const { return shards_.size(); }
  size_t capacity() const { return shards_.size() * per_shard_capacity_; }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t partial_hits() const {
    return partial_hits_.load(std::memory_order_relaxed);
  }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> entries;  // front = most recently used
  };

  size_t HomeShard(VecView q) const;
  // Scans one shard under its lock for an entry containing q with
  // cached k >= requested k; fills `out`, promotes the entry to MRU and
  // returns true when found. Remembers in *partial_shard (when it is
  // still unset) that this shard holds a shorter containing entry.
  bool ProbeShardExact(Shard& shard, size_t shard_index, VecView q, size_t k,
                       uint64_t version, Lookup* out, int* partial_shard);
  // Second pass: takes any containing entry (exact or partial).
  bool ProbeShardAny(Shard& shard, VecView q, size_t k, uint64_t version,
                     Lookup* out);

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Scratch reused across InvalidateForUpdates calls (single writer, as
  // with the engine's update path): LP workspace with the recycled
  // tableau, flattened gain matrix, transformed k-th record. With these
  // warm, the steady-state invalidation loop performs zero heap
  // allocations (asserted by lp_workspace_test).
  LpWorkspace invalidate_ws_;
  std::vector<double> invalidate_gains_;
  Vec invalidate_gk_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> partial_hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace gir

#endif  // GIR_GIR_SHARDED_CACHE_H_
