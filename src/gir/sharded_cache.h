#ifndef GIR_GIR_SHARDED_CACHE_H_
#define GIR_GIR_SHARDED_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "gir/cache.h"
#include "gir/gir_region.h"

namespace gir {

// Thread-safe variant of GirCache for the batch engine: entries are
// spread across independently-locked shards, each an LRU list. Inserts
// touch exactly one shard (chosen by hashing the query vector, so
// clustered workloads spread while repeats co-locate); probes scan
// shards starting from the inserting query's home shard, taking one
// shard lock at a time. Containment lookup is inherently a scan — a
// cached region anywhere may contain the probe point — so sharding
// bounds lock hold times rather than probe work.
//
// Total capacity is divided evenly across shards (rounded up), so a
// pathological insert pattern evicts at worst slightly later than a
// single LRU list would.
class ShardedGirCache {
 public:
  using Entry = GirCache::Entry;
  using HitKind = GirCache::HitKind;
  using Lookup = GirCache::Lookup;

  explicit ShardedGirCache(size_t capacity = 256, size_t num_shards = 8);

  // Probes every shard (home shard first) for a cached region
  // containing q. Semantics match GirCache::Probe — exact hit when the
  // cached k covers the request, partial hit when the cached prefix is
  // shorter, miss otherwise — except that an exact hit anywhere is
  // preferred over an earlier shard's partial one. The hit entry
  // becomes MRU in its shard.
  Lookup Probe(VecView q, size_t k);

  // Inserts a computed GIR into the home shard of its query vector,
  // evicting that shard's LRU tail beyond the per-shard capacity. Only
  // the constraint system of the region is copied; any materialized
  // polytope stays with the caller (containment probes never need it).
  void Insert(size_t k, std::vector<RecordId> result, const GirRegion& region);

  size_t size() const;
  size_t shard_count() const { return shards_.size(); }
  size_t capacity() const { return shards_.size() * per_shard_capacity_; }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t partial_hits() const {
    return partial_hits_.load(std::memory_order_relaxed);
  }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> entries;  // front = most recently used
  };

  size_t HomeShard(VecView q) const;
  // Scans one shard under its lock for an entry containing q with
  // cached k >= requested k; fills `out`, promotes the entry to MRU and
  // returns true when found. Remembers in *partial_shard (when it is
  // still unset) that this shard holds a shorter containing entry.
  bool ProbeShardExact(Shard& shard, size_t shard_index, VecView q, size_t k,
                       Lookup* out, int* partial_shard);
  // Second pass: takes any containing entry (exact or partial).
  bool ProbeShardAny(Shard& shard, VecView q, size_t k, Lookup* out);

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> partial_hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace gir

#endif  // GIR_GIR_SHARDED_CACHE_H_
