#include "gir/sp.h"

#include "skyline/bbs.h"

namespace gir {

namespace {

template <typename Tree>
Phase2Output RunSpImpl(const Tree& tree, const ScoringFunction& scoring,
                       VecView weights, const TopKResult& topk,
                       GirRegion* region) {
  const Dataset& data = tree.dataset();
  SkylineResult sl = ContinueSkylineFromBrs(tree, scoring, weights, topk);
  const RecordId pk = topk.result.back();
  Vec gk = scoring.Transform(data.Get(pk));
  ConstraintProvenance prov;
  prov.kind = ConstraintProvenance::Kind::kOvertake;
  prov.position = static_cast<int>(topk.result.size()) - 1;
  for (RecordId p : sl.skyline) {
    prov.challenger = p;
    region->AddConstraint(Sub(gk, scoring.Transform(data.Get(p))), prov);
  }
  Phase2Output out;
  out.candidates = sl.skyline.size();
  out.io = sl.io;
  return out;
}

}  // namespace

Phase2Output RunSpPhase2(const RTree& tree, const ScoringFunction& scoring,
                         VecView weights, const TopKResult& topk,
                         GirRegion* region) {
  return RunSpImpl(tree, scoring, weights, topk, region);
}

Phase2Output RunSpPhase2(const FlatRTree& tree, const ScoringFunction& scoring,
                         VecView weights, const TopKResult& topk,
                         GirRegion* region) {
  return RunSpImpl(tree, scoring, weights, topk, region);
}

}  // namespace gir
