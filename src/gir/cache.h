#ifndef GIR_GIR_CACHE_H_
#define GIR_GIR_CACHE_H_

#include <cstdint>
#include <list>
#include <vector>

#include "gir/gir_region.h"

namespace gir {

// Top-k result cache keyed by GIR containment (paper Introduction,
// "result caching" application): a new query vector that falls inside
// the GIR of a cached result can reuse it outright — including its
// exact score order. LRU-evicted at `capacity` entries.
//
// Entries carry the dataset version (epoch) they were computed at, and
// Probe only serves entries whose stamp matches the caller's current
// version — a hard backstop that makes stale hits impossible after a
// dataset mutation even when incremental invalidation missed (or was
// never run on) an entry. Callers that never mutate can ignore
// versioning entirely: everything defaults to version 0.
class GirCache {
 public:
  explicit GirCache(size_t capacity = 128) : capacity_(capacity) {}

  struct Entry {
    size_t k = 0;
    std::vector<RecordId> result;
    GirRegion region;
    // Dataset epoch the result is valid for.
    uint64_t version = 0;
  };

  enum class HitKind {
    kMiss,
    // Requested k <= cached k: the prefix of the cached result is the
    // exact answer.
    kExact,
    // Requested k > cached k: the cached records are the correct first
    // part of the answer and can be reported immediately (paper §1 /
    // Tan et al. progressive reporting); the tail still needs work.
    kPartial,
  };
  struct Lookup {
    HitKind kind = HitKind::kMiss;
    std::vector<RecordId> records;  // valid prefix of the true top-k
  };

  // Probes the cache for query vector q with result size k at dataset
  // version `version`. Entries stamped with a different version are
  // evicted on sight (they can never be served again).
  Lookup Probe(VecView q, size_t k, uint64_t version = 0);

  // Inserts a computed GIR stamped with the dataset version it was
  // computed at. The region is copied.
  void Insert(size_t k, std::vector<RecordId> result, GirRegion region,
              uint64_t version = 0);

  size_t size() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t partial_hits() const { return partial_hits_; }
  uint64_t misses() const { return misses_; }

 private:
  size_t capacity_;
  std::list<Entry> entries_;  // front = most recently used
  uint64_t hits_ = 0;
  uint64_t partial_hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace gir

#endif  // GIR_GIR_CACHE_H_
