#ifndef GIR_GIR_CACHE_H_
#define GIR_GIR_CACHE_H_

#include <cstdint>
#include <list>
#include <vector>

#include "gir/gir_region.h"

namespace gir {

// Top-k result cache keyed by GIR containment (paper Introduction,
// "result caching" application): a new query vector that falls inside
// the GIR of a cached result can reuse it outright — including its
// exact score order. LRU-evicted at `capacity` entries.
class GirCache {
 public:
  explicit GirCache(size_t capacity = 128) : capacity_(capacity) {}

  struct Entry {
    size_t k = 0;
    std::vector<RecordId> result;
    GirRegion region;
  };

  enum class HitKind {
    kMiss,
    // Requested k <= cached k: the prefix of the cached result is the
    // exact answer.
    kExact,
    // Requested k > cached k: the cached records are the correct first
    // part of the answer and can be reported immediately (paper §1 /
    // Tan et al. progressive reporting); the tail still needs work.
    kPartial,
  };
  struct Lookup {
    HitKind kind = HitKind::kMiss;
    std::vector<RecordId> records;  // valid prefix of the true top-k
  };

  // Probes the cache for query vector q with result size k.
  Lookup Probe(VecView q, size_t k);

  // Inserts a computed GIR. The region is copied.
  void Insert(size_t k, std::vector<RecordId> result, GirRegion region);

  size_t size() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t partial_hits() const { return partial_hits_; }
  uint64_t misses() const { return misses_; }

 private:
  size_t capacity_;
  std::list<Entry> entries_;  // front = most recently used
  uint64_t hits_ = 0;
  uint64_t partial_hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace gir

#endif  // GIR_GIR_CACHE_H_
