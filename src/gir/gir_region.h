#ifndef GIR_GIR_GIR_REGION_H_
#define GIR_GIR_GIR_REGION_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "geom/halfspace_intersection.h"
#include "geom/hyperplane.h"
#include "geom/lp.h"
#include "geom/polytope.h"

namespace gir {

// Where a GIR half-space came from; this is what lets the library
// report the exact result perturbation when the query vector crosses a
// bounding facet (paper §3.2).
struct ConstraintProvenance {
  enum class Kind {
    // Ordering constraint S(p_i,q') >= S(p_{i+1},q'): crossing swaps the
    // records at result positions `position` and `position+1` (0-based).
    kOrdering,
    // Overtake constraint S(p_i,q') >= S(p,q'): crossing makes
    // non-result record `challenger` overtake the result record at
    // `position` (== k-1 for the order-sensitive GIR).
    kOvertake,
  };
  Kind kind = Kind::kOvertake;
  int position = -1;
  RecordId challenger = -1;

  std::string Describe(const std::vector<RecordId>& result) const;
};

struct GirConstraint {
  // Half-space normal·q' >= 0; the bounding hyperplane passes through
  // the origin of query space.
  Vec normal;
  ConstraintProvenance provenance;
};

// A boundary event: a non-redundant constraint, i.e. an actual facet of
// the GIR, plus the result change that crossing it causes.
struct BoundaryEvent {
  GirConstraint constraint;
  std::string description;
};

// The global immutable region of a top-k query: the intersection of the
// accumulated constraint half-spaces with the unit cube of query space.
// Constraints may be redundant (SP deliberately over-collects);
// ToPolytope() identifies the non-redundant subset.
class GirRegion {
 public:
  GirRegion(size_t dim, Vec query, std::vector<RecordId> result)
      : dim_(dim), query_(std::move(query)), result_(std::move(result)) {}

  size_t dim() const { return dim_; }
  const Vec& query() const { return query_; }
  const std::vector<RecordId>& result() const { return result_; }
  const std::vector<GirConstraint>& constraints() const {
    return constraints_;
  }

  void AddConstraint(Vec normal, ConstraintProvenance provenance) {
    constraints_.push_back(GirConstraint{std::move(normal), provenance});
    // Invalidates the geometry but keeps the interior witness: one new
    // half-space rarely cuts it off, so the next Materialize usually
    // skips the Chebyshev LP (warm start).
    polytope_.reset();
  }

  // Offers a known strictly interior point (e.g. the centre of the
  // Phase-1 cone computed by FP's tightening pass) as the warm start
  // for the next materialization.
  void SeedInteriorWitness(Vec point) const {
    interior_witness_ = std::move(point);
  }

  // True when q' (inside the unit cube) satisfies every constraint: the
  // original top-k result is guaranteed to be preserved at q'.
  bool Contains(VecView q, double eps = 0.0) const;

  // Parametric clipping of the line {x + t*dir} against the region
  // (constraints + cube): the [t_min, t_max] parameter interval that
  // stays inside. When x is inside the region the interval brackets
  // t = 0; when it is outside, the interval is where the line crosses
  // the region (possibly empty, returned as [0, 0]).
  struct RaySpan {
    double t_min = 0.0;
    double t_max = 0.0;
  };
  RaySpan ClipRay(VecView x, VecView dir) const;

  // Explicit geometry: vertices + non-redundant facets via half-space
  // intersection (the query vector is the interior hint). The result is
  // cached; the bool return of Materialize tells whether geometry is
  // available (a degenerate/empty region yields an empty polytope).
  const Polytope& polytope() const;
  const std::vector<int>& nonredundant_indices() const;

  // The facets of the region that stem from data constraints (not the
  // cube), with their human-readable result perturbations.
  std::vector<BoundaryEvent> BoundaryEvents() const;

  // Max of gain·q' over the region (constraints ∩ unit cube), solved as
  // a small LP. Returns true when the maximum exceeds `eps` — i.e. some
  // weight vector inside the region gives `gain` a strictly positive
  // score advantage. With gain = g(p) − g(p_k) this is the update
  // subsystem's point-vs-region piercing test: an inserted record p can
  // enter the cached top-k somewhere in the region iff it can outscore
  // the k-th result record there. Because every constraint passes
  // through the origin, the origin (score tie) is always feasible, so
  // the test is for a *strictly* positive advantage. Solver failures
  // return true (conservative: callers treat "pierced" as "recompute").
  bool AdmitsGain(VecView gain, double eps = 1e-9) const;

  // Batched piercing test over `count` gain vectors (row-major, dim()
  // doubles per row): the index of the first gain the region admits, or
  // `count` when none does. Decision-equivalent to calling AdmitsGain
  // on each row in order and stopping at the first true — same fast
  // paths, same LP per remaining row — but the tableau for
  // region ∩ cube is assembled and made feasible once, and every LP
  // after the first warm-starts from the previous optimal basis held in
  // `ws` (caller-owned, reused across regions; see SolveLpBatch). This
  // is the shared-setup path InvalidateForUpdates amortizes its
  // per-(entry, insert) LPs through.
  size_t FirstAdmittedGain(const double* gains, size_t count, LpWorkspace* ws,
                           double eps = 1e-9) const;

  // Constraint views for the geometry helpers.
  std::vector<Halfspace> AsHalfspaces() const;

  // Copy carrying only the constraint system, never the (potentially
  // large) materialized polytope — what containment caches store.
  GirRegion ConstraintsOnly() const {
    GirRegion out(dim_, query_, result_);
    out.constraints_ = constraints_;
    return out;
  }

 private:
  void Materialize() const;

  size_t dim_;
  Vec query_;
  std::vector<RecordId> result_;
  std::vector<GirConstraint> constraints_;

  mutable std::optional<IntersectionResult> polytope_;
  // Last interior point a materialization used (or a caller-seeded
  // candidate); reused across consecutive constraint additions.
  mutable Vec interior_witness_;
};

}  // namespace gir

#endif  // GIR_GIR_GIR_REGION_H_
