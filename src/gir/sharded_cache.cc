#include "gir/sharded_cache.h"

#include <cstring>

namespace gir {

ShardedGirCache::ShardedGirCache(size_t capacity, size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  if (capacity < num_shards) num_shards = capacity > 0 ? capacity : 1;
  per_shard_capacity_ = (capacity + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

size_t ShardedGirCache::HomeShard(VecView q) const {
  // FNV-1a over the raw weight bytes: bit-identical vectors co-locate,
  // jittered ones spread.
  uint64_t h = 1469598103934665603ULL;
  for (double x : q) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(x), "double must be 64-bit");
    std::memcpy(&bits, &x, sizeof(bits));
    for (int b = 0; b < 64; b += 8) {
      h ^= (bits >> b) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  return static_cast<size_t>(h % shards_.size());
}

bool ShardedGirCache::ProbeShardExact(Shard& shard, size_t shard_index,
                                      VecView q, size_t k, Lookup* out,
                                      int* partial_shard) {
  std::lock_guard<std::mutex> lock(shard.mu);
  for (auto it = shard.entries.begin(); it != shard.entries.end(); ++it) {
    if (!it->region.Contains(q)) continue;
    if (k > it->k) {
      if (*partial_shard < 0) *partial_shard = static_cast<int>(shard_index);
      continue;
    }
    out->kind = HitKind::kExact;
    out->records.assign(it->result.begin(), it->result.begin() + k);
    hits_.fetch_add(1, std::memory_order_relaxed);
    shard.entries.splice(shard.entries.begin(), shard.entries, it);
    return true;
  }
  return false;
}

bool ShardedGirCache::ProbeShardAny(Shard& shard, VecView q, size_t k,
                                    Lookup* out) {
  std::lock_guard<std::mutex> lock(shard.mu);
  for (auto it = shard.entries.begin(); it != shard.entries.end(); ++it) {
    if (!it->region.Contains(q)) continue;
    if (k <= it->k) {
      out->kind = HitKind::kExact;
      out->records.assign(it->result.begin(), it->result.begin() + k);
      hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      out->kind = HitKind::kPartial;
      out->records = it->result;
      partial_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.entries.splice(shard.entries.begin(), shard.entries, it);
    return true;
  }
  return false;
}

ShardedGirCache::Lookup ShardedGirCache::Probe(VecView q, size_t k) {
  Lookup out;
  const size_t home = HomeShard(q);
  const size_t n = shards_.size();
  // First pass: an exact-covering entry anywhere beats a shorter one in
  // an earlier shard (a partial hit forces a full recompute downstream).
  int partial_shard = -1;
  for (size_t i = 0; i < n; ++i) {
    const size_t idx = (home + i) % n;
    if (ProbeShardExact(*shards_[idx], idx, q, k, &out, &partial_shard)) {
      return out;
    }
  }
  // No exact entry: settle for the remembered partial. The entry may
  // have been evicted concurrently since the first pass; that demotes
  // the probe to a miss, which is safe (the query just recomputes).
  if (partial_shard >= 0 &&
      ProbeShardAny(*shards_[partial_shard], q, k, &out)) {
    return out;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

void ShardedGirCache::Insert(size_t k, std::vector<RecordId> result,
                             const GirRegion& region) {
  Shard& shard = *shards_[HomeShard(region.query())];
  // Skip the insert when the shard already covers this query at least
  // as well — concurrent identical queries would otherwise fill the
  // LRU list with duplicates, evicting distinct regions.
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const Entry& e : shard.entries) {
      if (e.k >= k && e.region.Contains(region.query())) return;
    }
  }
  // Copy the constraints outside the lock: sharding is supposed to
  // bound lock hold times, and a region can carry thousands of normals.
  // A duplicate slipping in between the check and this push is benign.
  Entry entry{k, std::move(result), region.ConstraintsOnly()};
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.entries.push_front(std::move(entry));
  while (shard.entries.size() > per_shard_capacity_) shard.entries.pop_back();
}

size_t ShardedGirCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

}  // namespace gir
