#include "gir/sharded_cache.h"

#include <cstring>

namespace gir {

ShardedGirCache::ShardedGirCache(size_t capacity, size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  if (capacity < num_shards) num_shards = capacity > 0 ? capacity : 1;
  per_shard_capacity_ = (capacity + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

size_t ShardedGirCache::HomeShard(VecView q) const {
  // FNV-1a over the raw weight bytes: bit-identical vectors co-locate,
  // jittered ones spread.
  uint64_t h = 1469598103934665603ULL;
  for (double x : q) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(x), "double must be 64-bit");
    std::memcpy(&bits, &x, sizeof(bits));
    for (int b = 0; b < 64; b += 8) {
      h ^= (bits >> b) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  return static_cast<size_t>(h % shards_.size());
}

bool ShardedGirCache::ProbeShardExact(Shard& shard, size_t shard_index,
                                      VecView q, size_t k, uint64_t version,
                                      Lookup* out, int* partial_shard) {
  std::lock_guard<std::mutex> lock(shard.mu);
  for (auto it = shard.entries.begin(); it != shard.entries.end();) {
    if (it->version < version) {
      it = shard.entries.erase(it);  // stale epoch, unservable forever
      continue;
    }
    if (it->version > version || !it->region.Contains(q)) {
      // A *newer* stamp means this probe raced an in-flight update
      // (survivors are re-stamped just before the version bump): skip,
      // never erase — the next-epoch probes will serve it.
      ++it;
      continue;
    }
    if (k > it->k) {
      if (*partial_shard < 0) *partial_shard = static_cast<int>(shard_index);
      ++it;
      continue;
    }
    out->kind = HitKind::kExact;
    out->records.assign(it->result.begin(), it->result.begin() + k);
    hits_.fetch_add(1, std::memory_order_relaxed);
    shard.entries.splice(shard.entries.begin(), shard.entries, it);
    return true;
  }
  return false;
}

bool ShardedGirCache::ProbeShardAny(Shard& shard, VecView q, size_t k,
                                    uint64_t version, Lookup* out) {
  std::lock_guard<std::mutex> lock(shard.mu);
  for (auto it = shard.entries.begin(); it != shard.entries.end(); ++it) {
    if (it->version != version || !it->region.Contains(q)) continue;
    if (k <= it->k) {
      out->kind = HitKind::kExact;
      out->records.assign(it->result.begin(), it->result.begin() + k);
      hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      out->kind = HitKind::kPartial;
      out->records = it->result;
      partial_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.entries.splice(shard.entries.begin(), shard.entries, it);
    return true;
  }
  return false;
}

ShardedGirCache::Lookup ShardedGirCache::Probe(VecView q, size_t k,
                                               uint64_t version) {
  Lookup out;
  const size_t home = HomeShard(q);
  const size_t n = shards_.size();
  // First pass: an exact-covering entry anywhere beats a shorter one in
  // an earlier shard (a partial hit forces a full recompute downstream).
  int partial_shard = -1;
  for (size_t i = 0; i < n; ++i) {
    const size_t idx = (home + i) % n;
    if (ProbeShardExact(*shards_[idx], idx, q, k, version, &out,
                        &partial_shard)) {
      return out;
    }
  }
  // No exact entry: settle for the remembered partial. The entry may
  // have been evicted concurrently since the first pass; that demotes
  // the probe to a miss, which is safe (the query just recomputes).
  if (partial_shard >= 0 &&
      ProbeShardAny(*shards_[partial_shard], q, k, version, &out)) {
    return out;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

void ShardedGirCache::Insert(size_t k, std::vector<RecordId> result,
                             const GirRegion& region, uint64_t version) {
  Shard& shard = *shards_[HomeShard(region.query())];
  // Skip the insert when the shard already covers this query at least
  // as well — concurrent identical queries would otherwise fill the
  // LRU list with duplicates, evicting distinct regions.
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const Entry& e : shard.entries) {
      if (e.k >= k && e.version == version &&
          e.region.Contains(region.query())) {
        return;
      }
    }
  }
  // Copy the constraints outside the lock: sharding is supposed to
  // bound lock hold times, and a region can carry thousands of normals.
  // A duplicate slipping in between the check and this push is benign.
  Entry entry{k, std::move(result), region.ConstraintsOnly(), version};
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.entries.push_front(std::move(entry));
  while (shard.entries.size() > per_shard_capacity_) shard.entries.pop_back();
}

UpdateInvalidation ShardedGirCache::InvalidateForUpdates(
    const std::vector<RecordId>& deleted, const std::vector<Vec>& inserted_g,
    const Dataset& dataset, const ScoringFunction& scoring,
    uint64_t new_version) {
  UpdateInvalidation out;
  // Member scratch, reused across every entry of every shard and across
  // calls: the LP workspace (tableau recycled, each entry's piercing
  // LPs share one Prepare and warm-start each other — see
  // GirRegion::FirstAdmittedGain), the flattened gain matrix, and the
  // transformed k-th record.
  LpWorkspace& lp_ws = invalidate_ws_;
  std::vector<double>& gains = invalidate_gains_;
  Vec& gk = invalidate_gk_;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    // Splice the shard's list out under the lock and run the (possibly
    // many) piercing LPs unlocked: concurrent probes see an empty shard
    // and just miss — indistinguishable from eviction, and it keeps the
    // "sharding bounds lock hold times" promise during updates. Entries
    // inserted while we work land in the live list and are merged back
    // under at the end (they carry the old epoch's stamp, so the *next*
    // invalidation pass retires them as laggards).
    std::list<Entry> working;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      working.splice(working.begin(), shard.entries);
    }
    for (auto it = working.begin(); it != working.end();) {
      ++out.entries_before;
      // Only entries at the currently-published epoch were validated
      // against every batch so far; older stamps were inserted by
      // queries that computed on a retired snapshot and must not be
      // resurrected by a re-stamp they never earned.
      if (it->version + 1 != new_version) {
        ++out.stale_evicted;
        it = working.erase(it);
        continue;
      }
      bool evict = false;
      // Deletes: a result that lost a member is wrong everywhere.
      for (RecordId d : deleted) {
        for (RecordId r : it->result) {
          if (r == d) {
            evict = true;
            break;
          }
        }
        if (evict) break;
      }
      if (evict) {
        ++out.delete_evicted;
        it = working.erase(it);
        continue;
      }
      // Inserts: evict iff some insert can outscore the cached k-th
      // record somewhere inside the region — batched max-score LPs with
      // shared setup, decision-equivalent to testing each insert in
      // order and stopping at the first pierce.
      if (!inserted_g.empty()) {
        scoring.TransformInto(dataset.Get(it->result.back()), &gk);
        const size_t dim = gk.size();
        const size_t count = inserted_g.size();
        gains.resize(count * dim);
        for (size_t t = 0; t < count; ++t) {
          for (size_t j = 0; j < dim; ++j) {
            gains[t * dim + j] = inserted_g[t][j] - gk[j];
          }
        }
        size_t first =
            it->region.FirstAdmittedGain(gains.data(), count, &lp_ws);
        // lp_tests keeps its historical meaning: (entry, insert) pairs
        // examined before the verdict, not simplex solves.
        out.lp_tests += first < count ? first + 1 : count;
        evict = first < count;
      }
      if (evict) {
        ++out.insert_evicted;
        it = working.erase(it);
        continue;
      }
      it->version = new_version;
      ++out.survived;
      ++it;
    }
    std::lock_guard<std::mutex> lock(shard.mu);
    // Survivors keep MRU priority over entries that raced in meanwhile.
    shard.entries.splice(shard.entries.begin(), working);
    while (shard.entries.size() > per_shard_capacity_) {
      shard.entries.pop_back();
    }
  }
  return out;
}

void ShardedGirCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->entries.clear();
  }
}

size_t ShardedGirCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

}  // namespace gir
