#ifndef GIR_GIR_VISUALIZATION_H_
#define GIR_GIR_VISUALIZATION_H_

#include <vector>

#include "gir/gir_region.h"

namespace gir {

// One slide-bar range (paper Figure 1): weight w_i may move within
// [lo, hi] (other weights fixed) without changing the result.
struct WeightRange {
  double lo = 0.0;
  double hi = 0.0;
};

// Interactive-projection visualisation (paper §7.3): projects the query
// vector onto the GIR along each axis. The ranges equal the LIRs of
// Mouratidis & Pang (PVLDB 2013) derived from the GIR for free.
std::vector<WeightRange> ComputeLirs(const GirRegion& region);

// Same projection recomputed at an arbitrary interior point q' (the
// "on-the-fly readjustment" as the user drags sliders). Returns empty
// ranges when q' is outside the region.
std::vector<WeightRange> ProjectOntoRegion(const GirRegion& region,
                                           VecView q);

// Maximum-volume axis-parallel hyper-rectangle (MAH, paper §7.3):
// a box that contains the query vector and lies entirely inside the
// GIR. The exact bichromatic-rectangle problem is expensive in high d;
// this is a monotone coordinate-ascent heuristic (each step computes
// the exact per-face expansion limit, so the result is always feasible
// and face-wise maximal).
struct MahBox {
  Vec lo;
  Vec hi;
  double Volume() const;
};
MahBox ComputeMah(const GirRegion& region, int passes = 24);

}  // namespace gir

#endif  // GIR_GIR_VISUALIZATION_H_
