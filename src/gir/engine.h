#ifndef GIR_GIR_ENGINE_H_
#define GIR_GIR_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "gir/fpnd.h"
#include "gir/gir_region.h"
#include "index/flat_rtree.h"
#include "index/rtree.h"
#include "topk/brs.h"

namespace gir {

class ShardedGirCache;

// Phase-2 algorithm selector (paper §5-§6).
enum class Phase2Method {
  kSP,          // skyline pruning
  kCP,          // convex-hull pruning
  kFP,          // facet pruning (2-D angular variant / d-dim star)
  kBruteForce,  // all n-1 half-spaces (reference; §3.3 straw-man)
};

Result<Phase2Method> ParsePhase2Method(const std::string& name);
std::string Phase2MethodName(Phase2Method method);

// Rejects non-finite query weights with kInvalidArgument naming the
// offending dimension. A NaN or Inf weight would otherwise poison
// every score comparison downstream and surface as silently-wrong
// results; both query entry points (ComputeGir/ComputeGirStar and the
// batch shared-traversal path) apply this before any work.
Status ValidateQueryWeights(VecView weights);

// Cost breakdown of one GIR computation, mirroring what the paper's
// charts report (total CPU, total I/O) while keeping phases separate.
struct GirStats {
  double topk_cpu_ms = 0.0;
  double phase1_cpu_ms = 0.0;
  double phase2_cpu_ms = 0.0;      // pruning + constraint derivation
  double intersect_cpu_ms = 0.0;   // half-space intersection (qhalf role)
  uint64_t topk_reads = 0;
  uint64_t phase2_reads = 0;
  size_t candidates = 0;   // |SL|, |SL ∩ CH| or #critical records
  size_t star_facets = 0;  // FP only: live incident facets (Fig. 8(b))
  size_t constraints = 0;  // half-spaces in the final region

  double GirCpuMillis() const {
    return phase1_cpu_ms + phase2_cpu_ms + intersect_cpu_ms;
  }
  double GirIoMillis(double ms_per_read) const {
    return static_cast<double>(phase2_reads) * ms_per_read;
  }
};

struct GirComputation {
  TopKResult topk;
  GirRegion region;
  GirStats stats;
  // Dataset epoch the computation ran against (0 until the first
  // ApplyUpdates batch); what cache inserts must stamp entries with.
  uint64_t snapshot_version = 0;
};

// One batch of mutations for GirEngine::ApplyUpdates. Deletes are
// applied before inserts; records are deleted by id (ids are stable
// tombstones, never reused) and inserted points must already live in
// the normalized [0,1]^d domain of the dataset.
struct UpdateBatch {
  std::vector<Vec> inserts;
  std::vector<RecordId> deletes;
};

// Outcome and cost breakdown of one ApplyUpdates call.
struct UpdateStats {
  size_t applied_inserts = 0;
  size_t applied_deletes = 0;
  uint64_t version = 0;        // epoch published by this batch
  double apply_ms = 0.0;       // R*-tree + dataset mutation
  double refreeze_ms = 0.0;    // dataset copy + FlatRTree::Freeze
  double invalidate_ms = 0.0;  // incremental cache invalidation
  // Cache invalidation accounting (all zero when no cache was passed);
  // tests-vs-recomputes is the headline: lp_tests LPs were solved so
  // that only delete_evicted + insert_evicted regions need recomputing
  // instead of entries_before.
  size_t cache_entries_before = 0;
  size_t cache_lp_tests = 0;
  size_t cache_stale_evicted = 0;
  size_t cache_delete_evicted = 0;
  size_t cache_insert_evicted = 0;
  size_t cache_survived = 0;
};

struct GirEngineOptions {
  FpOptions fp;
  // Materialize the region polytope inside the timed section (the paper
  // charges Qhull's half-space intersection to each method's CPU).
  bool materialize_polytope = true;
};

// Public facade: owns the R*-tree over a dataset and computes top-k
// results together with their (order-sensitive or order-insensitive)
// global immutable regions.
//
//   DiskManager disk;
//   GirEngine engine(&data, &disk, MakeScoring("Linear", data.dim()));
//   auto gir = engine.ComputeGir(weights, 20, Phase2Method::kFP);
//
// The dataset and disk manager must outlive the engine.
//
// Thread safety: ComputeGir / ComputeGirStar only read an immutable
// epoch snapshot (see below) plus the scoring function, and the
// DiskManager's accounting is atomic with thread-local per-query deltas
// — so any number of threads may compute queries on one engine
// concurrently (this is what BatchEngine does), including concurrently
// with one ApplyUpdates writer.
//
// Index lifecycle (epoch snapshots): the constructor bulk-loads the
// mutable R*-tree and immediately Freeze()s it into a FlatRTree; every
// query runs against the frozen image (same page ids, same simulated
// I/O, bit-identical output — see flat_rtree.h) with the batched SoA
// score kernels. An engine constructed over a mutable `Dataset*`
// additionally accepts ApplyUpdates batches: under a single writer
// lock, the batch mutates the R*-tree (R* insert + delete with
// condense/reinsert) and the master dataset (append + tombstone), then
// refreezes into a *fresh* snapshot — an immutable dataset copy plus a
// new flat arena — published with an atomic shared_ptr swap. In-flight
// readers keep the snapshot they loaded alive until they finish, so
// they are never blocked and never observe a torn index; new queries
// see the new epoch. Snapshot versions count epochs (0 = construction)
// and stamp every GirComputation for cache coherence.
class GirEngine {
 public:
  // Read-only engine: serves the dataset frozen at construction;
  // ApplyUpdates fails with FailedPrecondition.
  GirEngine(const Dataset* dataset, DiskManager* disk,
            std::unique_ptr<ScoringFunction> scoring,
            const GirEngineOptions& options = {});

  // Updatable engine: same construction, but keeps the mutable handle
  // so ApplyUpdates can mutate the dataset between epochs.
  GirEngine(Dataset* dataset, DiskManager* disk,
            std::unique_ptr<ScoringFunction> scoring,
            const GirEngineOptions& options = {});

  // Recovery path (see SnapshotStore::RecoverLatest): rebuilds an
  // updatable engine from a restored epoch, taking ownership of the
  // recovered dataset image and master tree. The tree's page ids are
  // the saved ones 1:1, so the restored engine's traversals charge
  // bit-identical simulated I/O to the pre-crash engine's. `tree` must
  // have been loaded over `dataset` and `disk`; the published epoch
  // starts at `version` and the next ApplyUpdates continues from it.
  static std::unique_ptr<GirEngine> Restore(
      std::unique_ptr<Dataset> dataset, RTree tree, uint64_t version,
      DiskManager* disk, std::unique_ptr<ScoringFunction> scoring,
      const GirEngineOptions& options = {});

  // Order-sensitive GIR (Definition 1).
  Result<GirComputation> ComputeGir(VecView weights, size_t k,
                                    Phase2Method method) const;

  // One pinned epoch, as a unit: the frozen image (the aliased
  // shared_ptr keeps the whole snapshot — arena + dataset copy —
  // alive) plus the version to stamp results and cache entries with.
  // This is what lets a caller run many queries against one consistent
  // epoch (the shared-traversal batch executor pins once per batch).
  struct PinnedIndex {
    std::shared_ptr<const FlatRTree> flat;
    uint64_t version = 0;
  };
  PinnedIndex PinIndex() const {
    std::shared_ptr<const Snapshot> snap = LoadSnapshot();
    PinnedIndex pin;
    pin.flat = std::shared_ptr<const FlatRTree>(snap, &snap->flat);
    pin.version = snap->version;
    return pin;
  }

  // Order-sensitive GIR from an already-computed top-k: runs Phase 1 /
  // Phase 2 / intersection exactly as ComputeGir does after its own
  // BRS, against the pinned epoch the top-k was computed on. `topk`
  // must be a RunBrs/RunBrsMulti output for (weights, k) on pin.flat;
  // the result is then bit-identical to ComputeGir on that epoch
  // (modulo wall-clock stats; topk_cpu_ms is taken from the caller,
  // who timed the traversal). This is the Phase-2 half of the
  // shared-traversal batch path.
  Result<GirComputation> ComputeGirWithTopK(const PinnedIndex& pin,
                                            VecView weights, size_t k,
                                            Phase2Method method,
                                            TopKResult topk,
                                            double topk_cpu_ms = 0.0) const;

  // Order-insensitive GIR* (Definition 2); no Phase-1 constraints.
  Result<GirComputation> ComputeGirStar(VecView weights, size_t k,
                                        Phase2Method method) const;

  // Applies one update batch and publishes a new epoch snapshot:
  //   1. mutate — deletes leave the R*-tree (condense + reinsert) and
  //      tombstone their dataset slot; inserts append and R*-insert.
  //   2. refreeze — the updated tree is frozen into a fresh FlatRTree
  //      arena bound to an immutable copy of the dataset.
  //   3. invalidate — when `cache` is non-null, cached GIRs are
  //      incrementally invalidated with the point-vs-region max-score
  //      LP test (see ShardedGirCache::InvalidateForUpdates): only
  //      regions the batch can actually pierce are evicted, survivors
  //      are re-stamped to the new epoch.
  //   4. publish — the snapshot pointer is swapped atomically and
  //      dataset_version() starts returning the new epoch.
  // Concurrent readers are never blocked; writers are serialized.
  // Returns InvalidArgument (without mutating) on malformed batches:
  // wrong-dimension or out-of-cube inserts, dead/out-of-range/duplicate
  // delete ids. An Internal error (a live record missing from the
  // master tree) signals a broken index invariant; the engine state is
  // unspecified after it.
  Result<UpdateStats> ApplyUpdates(const UpdateBatch& batch,
                                   ShardedGirCache* cache = nullptr);

  // Epoch of the currently-published snapshot.
  uint64_t dataset_version() const {
    return version_.load(std::memory_order_acquire);
  }

  const RTree& tree() const { return tree_; }
  // The currently-published frozen image. The reference stays valid
  // until the *next* ApplyUpdates retires the snapshot — single-epoch
  // callers (tests, static benches) may hold it freely. Any caller that
  // might hold the image across an ApplyUpdates must use PinFlatTree()
  // instead (ComputeGir pins internally).
  const FlatRTree& flat_tree() const { return LoadSnapshot()->flat; }
  // Pins the current epoch: the returned pointer keeps the whole
  // snapshot (arena + dataset image) alive across any number of
  // subsequent updates.
  std::shared_ptr<const FlatRTree> PinFlatTree() const {
    std::shared_ptr<const Snapshot> snap = LoadSnapshot();
    return std::shared_ptr<const FlatRTree>(snap, &snap->flat);
  }
  const Dataset& dataset() const { return *dataset_; }
  const ScoringFunction& scoring() const { return *scoring_; }
  DiskManager* disk() const { return disk_; }

 private:
  // One immutable epoch: a frozen arena over a dataset image that no
  // writer will ever touch. Readers pin it with shared_ptr.
  struct Snapshot {
    std::shared_ptr<const Dataset> dataset;
    FlatRTree flat;
    uint64_t version = 0;
  };

  // Shared implementation of the two public constructors;
  // `mutable_dataset` is null for the read-only variant.
  GirEngine(const Dataset* dataset, Dataset* mutable_dataset,
            DiskManager* disk, std::unique_ptr<ScoringFunction> scoring,
            const GirEngineOptions& options);

  // Restore path: adopts recovered state instead of bulk-loading.
  GirEngine(std::unique_ptr<Dataset> owned, RTree tree, uint64_t version,
            DiskManager* disk, std::unique_ptr<ScoringFunction> scoring,
            const GirEngineOptions& options);

  std::shared_ptr<const Snapshot> LoadSnapshot() const {
    return std::atomic_load_explicit(&snapshot_, std::memory_order_acquire);
  }

  Result<GirComputation> Compute(VecView weights, size_t k,
                                 Phase2Method method, bool order_sensitive)
      const;

  // Shared tail of Compute and ComputeGirWithTopK: Phase 1 + Phase 2 +
  // intersection over an explicit epoch, consuming a finished top-k.
  Result<GirComputation> FinishGir(const FlatRTree& flat, uint64_t version,
                                   VecView weights, size_t k,
                                   Phase2Method method, bool order_sensitive,
                                   TopKResult topk, double topk_cpu_ms) const;

  // Restore path only: the engine owns its master dataset (declared
  // first so dataset_/mutable_dataset_ can alias it during init).
  std::unique_ptr<Dataset> owned_dataset_;
  const Dataset* dataset_;
  Dataset* mutable_dataset_ = nullptr;  // non-null iff updatable
  DiskManager* disk_;
  std::unique_ptr<ScoringFunction> scoring_;
  GirEngineOptions options_;
  RTree tree_;  // mutable master index; touched only under update_mu_
  std::shared_ptr<const Snapshot> snapshot_;  // atomic publish point
  std::atomic<uint64_t> version_{0};
  std::mutex update_mu_;  // serializes ApplyUpdates writers
};

}  // namespace gir

#endif  // GIR_GIR_ENGINE_H_
