#ifndef GIR_GIR_ENGINE_H_
#define GIR_GIR_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "common/result.h"
#include "gir/fpnd.h"
#include "gir/gir_region.h"
#include "gir/update_batch.h"
#include "index/flat_rtree.h"
#include "index/rtree.h"
#include "storage/arena_file.h"
#include "storage/wal.h"
#include "topk/brs.h"

namespace gir {

class ShardedGirCache;
class SnapshotStore;

// Phase-2 algorithm selector (paper §5-§6).
enum class Phase2Method {
  kSP,          // skyline pruning
  kCP,          // convex-hull pruning
  kFP,          // facet pruning (2-D angular variant / d-dim star)
  kBruteForce,  // all n-1 half-spaces (reference; §3.3 straw-man)
};

Result<Phase2Method> ParsePhase2Method(const std::string& name);
std::string Phase2MethodName(Phase2Method method);

// Rejects non-finite query weights with kInvalidArgument naming the
// offending dimension. A NaN or Inf weight would otherwise poison
// every score comparison downstream and surface as silently-wrong
// results; both query entry points (ComputeGir/ComputeGirStar and the
// batch shared-traversal path) apply this before any work.
Status ValidateQueryWeights(VecView weights);

// Cost breakdown of one GIR computation, mirroring what the paper's
// charts report (total CPU, total I/O) while keeping phases separate.
struct GirStats {
  double topk_cpu_ms = 0.0;
  double phase1_cpu_ms = 0.0;
  double phase2_cpu_ms = 0.0;      // pruning + constraint derivation
  double intersect_cpu_ms = 0.0;   // half-space intersection (qhalf role)
  uint64_t topk_reads = 0;
  uint64_t phase2_reads = 0;
  size_t candidates = 0;   // |SL|, |SL ∩ CH| or #critical records
  size_t star_facets = 0;  // FP only: live incident facets (Fig. 8(b))
  size_t constraints = 0;  // half-spaces in the final region

  double GirCpuMillis() const {
    return phase1_cpu_ms + phase2_cpu_ms + intersect_cpu_ms;
  }
  double GirIoMillis(double ms_per_read) const {
    return static_cast<double>(phase2_reads) * ms_per_read;
  }
};

struct GirComputation {
  TopKResult topk;
  GirRegion region;
  GirStats stats;
  // Dataset epoch the computation ran against (0 until the first
  // ApplyUpdates batch); what cache inserts must stamp entries with.
  uint64_t snapshot_version = 0;
};

// UpdateBatch lives in gir/update_batch.h (shared with the WAL).

// Outcome and cost breakdown of one ApplyUpdates call.
struct UpdateStats {
  size_t applied_inserts = 0;
  size_t applied_deletes = 0;
  uint64_t version = 0;        // epoch published by this batch
  bool wal_logged = false;     // batch is fsync-durable in the WAL
  double wal_ms = 0.0;         // append + group-commit wait
  double apply_ms = 0.0;       // R*-tree + dataset mutation
  double refreeze_ms = 0.0;    // dataset copy + FlatRTree::Freeze
  double invalidate_ms = 0.0;  // incremental cache invalidation
  // Cache invalidation accounting (all zero when no cache was passed);
  // tests-vs-recomputes is the headline: lp_tests LPs were solved so
  // that only delete_evicted + insert_evicted regions need recomputing
  // instead of entries_before.
  size_t cache_entries_before = 0;
  size_t cache_lp_tests = 0;
  size_t cache_stale_evicted = 0;
  size_t cache_delete_evicted = 0;
  size_t cache_insert_evicted = 0;
  size_t cache_survived = 0;
};

struct GirEngineOptions {
  FpOptions fp;
  // Materialize the region polytope inside the timed section (the paper
  // charges Qhull's half-space intersection to each method's CPU).
  bool materialize_polytope = true;
};

// Unified construction input of GirEngine::Open: one value that names
// where the engine's data comes from (the source), whether it accepts
// ApplyUpdates (mutability follows the source), how records are scored,
// and the engine options. Build one with the factory that matches your
// source; every factory takes the same trailing (disk, scoring,
// options) triple. Move-only (it carries the scoring function).
//
//   auto engine = GirEngine::Open(
//       EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d)));
//
// Source semantics:
//   FromDataset(const Dataset*)  read-only engine over a caller-owned
//                                dataset; ApplyUpdates fails.
//   FromDataset(Dataset*)        updatable engine; the caller's dataset
//                                is the mutable master.
//   FromCsv(path)                loads the CSV into an engine-owned
//                                mutable master (updatable).
//   FromSnapshotDir(dir)         recovers the newest valid snapshot in
//                                `dir` (SnapshotStore::RecoverLatest)
//                                into an updatable engine.
//   FromArena(path)              mmaps an arena file (storage/
//                                arena_file.h) and serves straight from
//                                the mapping: no rebuild, no refreeze,
//                                read-only. `path` may be the file
//                                itself or a snapshot directory — the
//                                newest valid arena-*.garn then wins
//                                (SnapshotStore::RecoverLatestArena).
struct EngineConfig {
  enum class Source {
    kDataset,         // caller-owned immutable dataset
    kMutableDataset,  // caller-owned mutable master dataset
    kCsv,             // CSV file, loaded into an engine-owned master
    kSnapshotDir,     // newest valid .gsnp epoch in a directory
    kArena,           // mmap'd arena file (or newest in a directory)
  };

  Source source = Source::kDataset;
  const Dataset* dataset = nullptr;    // kDataset
  Dataset* mutable_dataset = nullptr;  // kMutableDataset
  std::string path;                    // kCsv / kSnapshotDir / kArena
  DiskManager* disk = nullptr;         // required, all sources
  std::unique_ptr<ScoringFunction> scoring;  // required, all sources
  GirEngineOptions options;

  // ----- durable update log (optional) -----
  // Non-empty: ApplyUpdates appends each batch to an epoch-segmented
  // WAL under this directory and acknowledges only after the record is
  // fsync-durable (see storage/wal.h). For kSnapshotDir and kArena
  // sources, Open additionally replays every committed WAL batch past
  // the recovered epoch (two-phase recovery); other sources attach a
  // fresh log at the current epoch without replaying — their dataset
  // is caller-supplied and need not match any logged history, so the
  // directory should be fresh or recovered-from.
  std::string wal_dir;
  WalOptions wal;                        // group-commit knobs
  FaultInjector* wal_injector = nullptr; // non-owning; may be null

  // Chains onto a factory:
  //   GirEngine::Open(EngineConfig::FromSnapshotDir(dir, &disk, scoring)
  //                       .WithWal(wal_dir));
  EngineConfig&& WithWal(std::string dir, WalOptions wal_options = {},
                         FaultInjector* injector = nullptr) && {
    wal_dir = std::move(dir);
    wal = wal_options;
    wal_injector = injector;
    return std::move(*this);
  }

  static EngineConfig FromDataset(const Dataset* dataset, DiskManager* disk,
                                  std::unique_ptr<ScoringFunction> scoring,
                                  GirEngineOptions options = {}) {
    EngineConfig c;
    c.source = Source::kDataset;
    c.dataset = dataset;
    c.disk = disk;
    c.scoring = std::move(scoring);
    c.options = options;
    return c;
  }
  // Overload on mutability, mirroring the ApplyUpdates contract: a
  // non-const dataset pointer buys an updatable engine.
  static EngineConfig FromDataset(Dataset* dataset, DiskManager* disk,
                                  std::unique_ptr<ScoringFunction> scoring,
                                  GirEngineOptions options = {}) {
    EngineConfig c;
    c.source = Source::kMutableDataset;
    c.dataset = dataset;
    c.mutable_dataset = dataset;
    c.disk = disk;
    c.scoring = std::move(scoring);
    c.options = options;
    return c;
  }
  static EngineConfig FromCsv(std::string path, DiskManager* disk,
                              std::unique_ptr<ScoringFunction> scoring,
                              GirEngineOptions options = {}) {
    EngineConfig c;
    c.source = Source::kCsv;
    c.path = std::move(path);
    c.disk = disk;
    c.scoring = std::move(scoring);
    c.options = options;
    return c;
  }
  static EngineConfig FromSnapshotDir(std::string dir, DiskManager* disk,
                                      std::unique_ptr<ScoringFunction> scoring,
                                      GirEngineOptions options = {}) {
    EngineConfig c;
    c.source = Source::kSnapshotDir;
    c.path = std::move(dir);
    c.disk = disk;
    c.scoring = std::move(scoring);
    c.options = options;
    return c;
  }
  static EngineConfig FromArena(std::string path, DiskManager* disk,
                                std::unique_ptr<ScoringFunction> scoring,
                                GirEngineOptions options = {}) {
    EngineConfig c;
    c.source = Source::kArena;
    c.path = std::move(path);
    c.disk = disk;
    c.scoring = std::move(scoring);
    c.options = options;
    return c;
  }
};

// Public facade: owns the R*-tree over a dataset and computes top-k
// results together with their (order-sensitive or order-insensitive)
// global immutable regions.
//
//   DiskManager disk;
//   auto engine = OpenEngineOrDie(EngineConfig::FromDataset(
//       &data, &disk, MakeScoring("Linear", data.dim())));
//   auto gir = engine->ComputeGir(weights, 20, Phase2Method::kFP);
//
// The dataset (when caller-owned) and disk manager must outlive the
// engine.
//
// Thread safety: ComputeGir / ComputeGirStar only read an immutable
// epoch snapshot (see below) plus the scoring function, and the
// DiskManager's accounting is atomic with thread-local per-query deltas
// — so any number of threads may compute queries on one engine
// concurrently (this is what BatchEngine does), including concurrently
// with one ApplyUpdates writer.
//
// Index lifecycle (epoch snapshots): the constructor bulk-loads the
// mutable R*-tree and immediately Freeze()s it into a FlatRTree; every
// query runs against the frozen image (same page ids, same simulated
// I/O, bit-identical output — see flat_rtree.h) with the batched SoA
// score kernels. An engine constructed over a mutable `Dataset*`
// additionally accepts ApplyUpdates batches: under a single writer
// lock, the batch mutates the R*-tree (R* insert + delete with
// condense/reinsert) and the master dataset (append + tombstone), then
// refreezes into a *fresh* snapshot — an immutable dataset copy plus a
// new flat arena — published with an atomic shared_ptr swap. In-flight
// readers keep the snapshot they loaded alive until they finish, so
// they are never blocked and never observe a torn index; new queries
// see the new epoch. Snapshot versions count epochs (0 = construction)
// and stamp every GirComputation for cache coherence.
class GirEngine {
 public:
  // The one construction entry point: opens an engine from whatever
  // source the config names (see EngineConfig). Fails with
  // InvalidArgument on a malformed config (missing disk/scoring/source
  // operand), and with the underlying error for file-backed sources —
  // NotFound when nothing is there, DataLoss when every candidate is
  // torn or corrupt, the CSV parser's status for kCsv.
  static Result<std::unique_ptr<GirEngine>> Open(EngineConfig config);

  // Order-sensitive GIR (Definition 1).
  Result<GirComputation> ComputeGir(VecView weights, size_t k,
                                    Phase2Method method) const;

  // One pinned epoch, as a unit: the frozen image (the aliased
  // shared_ptr keeps the whole snapshot — arena + dataset copy —
  // alive) plus the version to stamp results and cache entries with.
  // This is what lets a caller run many queries against one consistent
  // epoch (the shared-traversal batch executor pins once per batch).
  struct PinnedIndex {
    std::shared_ptr<const FlatRTree> flat;
    uint64_t version = 0;
  };
  PinnedIndex PinIndex() const {
    std::shared_ptr<const Snapshot> snap = LoadSnapshot();
    PinnedIndex pin;
    pin.flat = std::shared_ptr<const FlatRTree>(snap, &snap->flat);
    pin.version = snap->version;
    return pin;
  }

  // Order-sensitive GIR from an already-computed top-k: runs Phase 1 /
  // Phase 2 / intersection exactly as ComputeGir does after its own
  // BRS, against the pinned epoch the top-k was computed on. `topk`
  // must be a RunBrs/RunBrsMulti output for (weights, k) on pin.flat;
  // the result is then bit-identical to ComputeGir on that epoch
  // (modulo wall-clock stats; topk_cpu_ms is taken from the caller,
  // who timed the traversal). This is the Phase-2 half of the
  // shared-traversal batch path.
  Result<GirComputation> ComputeGirWithTopK(const PinnedIndex& pin,
                                            VecView weights, size_t k,
                                            Phase2Method method,
                                            TopKResult topk,
                                            double topk_cpu_ms = 0.0) const;

  // Order-insensitive GIR* (Definition 2); no Phase-1 constraints.
  Result<GirComputation> ComputeGirStar(VecView weights, size_t k,
                                        Phase2Method method) const;

  // Applies one update batch and publishes a new epoch snapshot:
  //   1. validate — the whole batch, including that every delete id is
  //      live in the dataset AND present in the master tree, before a
  //      single mutation. A failed batch leaves dataset, tree and WAL
  //      untouched (all-or-nothing).
  //   2. log — with a WAL attached (EngineConfig::WithWal), the batch
  //      is appended and group-committed; the call fails without
  //      mutating anything if the record cannot be made durable. This
  //      is the ack point: a batch this method returns Ok for survives
  //      any crash from here on.
  //   3. mutate — deletes leave the R*-tree (condense + reinsert) and
  //      tombstone their dataset slot; inserts append and R*-insert.
  //   4. refreeze — the updated tree is frozen into a fresh FlatRTree
  //      arena bound to an immutable copy of the dataset.
  //   5. invalidate — when `cache` is non-null, cached GIRs are
  //      incrementally invalidated with the point-vs-region max-score
  //      LP test (see ShardedGirCache::InvalidateForUpdates): only
  //      regions the batch can actually pierce are evicted, survivors
  //      are re-stamped to the new epoch.
  //   6. publish — the snapshot pointer is swapped atomically and
  //      dataset_version() starts returning the new epoch.
  // Concurrent readers are never blocked; writers are serialized.
  // Returns InvalidArgument (without mutating) on malformed batches:
  // wrong-dimension or out-of-cube inserts, dead/out-of-range/duplicate
  // delete ids; Internal (also without mutating) when a live record is
  // missing from the master tree (a broken index invariant).
  Result<UpdateStats> ApplyUpdates(const UpdateBatch& batch,
                                   ShardedGirCache* cache = nullptr);

  // ----- durability (WAL-attached engines) -----

  // What two-phase recovery did when this engine was opened with a WAL
  // (zeros otherwise / when nothing needed replay).
  struct WalRecoveryStats {
    uint64_t recovered_epoch = 0;   // epoch phase 1 restored
    uint64_t replayed_to = 0;       // epoch after WAL replay
    size_t replayed_batches = 0;
    size_t overlap_skipped = 0;     // idempotence skips during replay
    size_t torn_truncated = 0;      // segments cut at a damaged record
    size_t gap_dropped = 0;
    size_t segments_truncated = 0;  // physical tail cuts (sanitize)
    size_t segments_removed = 0;    // unreadable/stale segments deleted
  };
  const WalRecoveryStats& wal_recovery() const { return wal_recovery_; }

  // The attached log (null without WithWal). Replicas read the leader's
  // store to ship WAL deltas instead of full arenas.
  const WalStore* wal_store() const { return wal_store_.get(); }
  bool has_wal() const { return wal_ != nullptr; }
  // Append/fsync counters of the attached writer (zeros without one).
  WalWriter::Stats wal_writer_stats() const {
    return wal_ != nullptr ? wal_->stats() : WalWriter::Stats{};
  }

  struct CheckpointStats {
    std::string arena_path;          // published arena file
    uint64_t version = 0;            // epoch the checkpoint covers
    uint64_t arena_bytes = 0;
    size_t wal_segments_removed = 0;
    bool wal_truncated = false;      // false when the arena failed to
                                     // validate (e.g. injected damage)
  };

  // Publishes the current epoch as an arena file in `store` and — when
  // a WAL is attached — rotates the log onto a fresh segment based at
  // that epoch and truncates segments the checkpoint made obsolete.
  // The truncation only happens after the just-published arena file
  // validates end to end (ArenaFile::Open): a torn checkpoint must not
  // widen the data-loss window, so on damage the WAL keeps everything
  // and wal_truncated comes back false. Serialized with ApplyUpdates.
  Result<CheckpointStats> Checkpoint(SnapshotStore* store);

  // Arena-backed engines only (Open with a kArena source): swaps the
  // served epoch to the arena file at `path` — mmap the new file,
  // validate it end to end, publish it with one atomic pointer swap.
  // In-flight readers finish on the mapping they pinned; the old file
  // is munmapped when the last of them drains. This is the replica
  // epoch-advance path: a follower serves arena epoch N while a leader
  // publishes N+1 via SnapshotStore::WriteArena, then the follower
  // advances with no rebuild and no reader stall. Returns the new
  // epoch's version; FailedPrecondition on a non-arena engine,
  // DataLoss/NotFound/InvalidArgument when the file is damaged,
  // missing, or from a different dataset shape.
  Result<uint64_t> AdvanceToArena(const std::string& path);

  // Epoch of the currently-published snapshot.
  uint64_t dataset_version() const {
    return version_.load(std::memory_order_acquire);
  }

  // True when the engine keeps a mutable master R*-tree (every source
  // except kArena). Arena engines serve the frozen image only; tree()
  // must not be called on them.
  bool has_master_tree() const { return tree_.has_value(); }
  const RTree& tree() const { return *tree_; }
  // The currently-published frozen image. The reference stays valid
  // until the *next* ApplyUpdates retires the snapshot — single-epoch
  // callers (tests, static benches) may hold it freely. Any caller that
  // might hold the image across an ApplyUpdates must use PinFlatTree()
  // instead (ComputeGir pins internally).
  const FlatRTree& flat_tree() const { return LoadSnapshot()->flat; }
  // Pins the current epoch: the returned pointer keeps the whole
  // snapshot (arena + dataset image) alive across any number of
  // subsequent updates.
  std::shared_ptr<const FlatRTree> PinFlatTree() const {
    std::shared_ptr<const Snapshot> snap = LoadSnapshot();
    return std::shared_ptr<const FlatRTree>(snap, &snap->flat);
  }
  // The master dataset for dataset-backed engines. An arena engine has
  // no master — its dataset lives inside the served epoch, so the
  // reference is only stable until the next AdvanceToArena; pin the
  // epoch (PinIndex) to hold it across swaps.
  const Dataset& dataset() const {
    return dataset_ != nullptr ? *dataset_ : *LoadSnapshot()->dataset;
  }
  const ScoringFunction& scoring() const { return *scoring_; }
  DiskManager* disk() const { return disk_; }

 private:
  // One immutable epoch: a frozen arena over a dataset image that no
  // writer will ever touch. Readers pin it with shared_ptr.
  struct Snapshot {
    std::shared_ptr<const Dataset> dataset;
    FlatRTree flat;
    uint64_t version = 0;
  };

  // Shared implementation of the two public constructors;
  // `mutable_dataset` is null for the read-only variant.
  GirEngine(const Dataset* dataset, Dataset* mutable_dataset,
            DiskManager* disk, std::unique_ptr<ScoringFunction> scoring,
            const GirEngineOptions& options);

  // Restore path: adopts recovered state instead of bulk-loading.
  GirEngine(std::unique_ptr<Dataset> owned, RTree tree, uint64_t version,
            DiskManager* disk, std::unique_ptr<ScoringFunction> scoring,
            const GirEngineOptions& options);

  // Arena path: serves straight from the mapping — no master tree, no
  // refreeze, read-only. `flat` must be FromArena over `dataset`, which
  // the published snapshot takes ownership of.
  GirEngine(std::shared_ptr<const Dataset> dataset, FlatRTree flat,
            uint64_t version, DiskManager* disk,
            std::unique_ptr<ScoringFunction> scoring,
            const GirEngineOptions& options);

  std::shared_ptr<const Snapshot> LoadSnapshot() const {
    return std::atomic_load_explicit(&snapshot_, std::memory_order_acquire);
  }

  Result<GirComputation> Compute(VecView weights, size_t k,
                                 Phase2Method method, bool order_sensitive)
      const;

  // Body of ApplyUpdates; requires update_mu_. Replay passes
  // log_to_wal = false (the records being applied came *from* the log).
  Result<UpdateStats> ApplyUpdatesLocked(const UpdateBatch& batch,
                                         ShardedGirCache* cache,
                                         bool log_to_wal);

  // Attaches the WAL named by `config` to a freshly-opened updatable
  // engine: replays committed records past the engine's epoch when
  // `replay` is set, then opens the writer on a segment based at the
  // final epoch. Factored out of Open.
  Status AttachWal(const EngineConfig& config, bool replay);

  // Shared tail of Compute and ComputeGirWithTopK: Phase 1 + Phase 2 +
  // intersection over an explicit epoch, consuming a finished top-k.
  Result<GirComputation> FinishGir(const FlatRTree& flat, uint64_t version,
                                   VecView weights, size_t k,
                                   Phase2Method method, bool order_sensitive,
                                   TopKResult topk, double topk_cpu_ms) const;

  // Restore/CSV paths only: the engine owns its master dataset
  // (declared first so dataset_/mutable_dataset_ can alias it during
  // init).
  std::unique_ptr<Dataset> owned_dataset_;
  const Dataset* dataset_;  // null iff arena-backed (dataset lives in
                            // the snapshot, swapped by AdvanceToArena)
  Dataset* mutable_dataset_ = nullptr;  // non-null iff updatable
  DiskManager* disk_;
  std::unique_ptr<ScoringFunction> scoring_;
  GirEngineOptions options_;
  // Mutable master index; touched only under update_mu_. Absent on
  // arena-backed engines — they have nothing to re-balance and serve
  // the mmap'd frozen image directly.
  std::optional<RTree> tree_;
  std::shared_ptr<const Snapshot> snapshot_;  // atomic publish point
  std::atomic<uint64_t> version_{0};
  std::mutex update_mu_;  // serializes ApplyUpdates writers
  // Durable update log (EngineConfig::WithWal); both null without one.
  std::unique_ptr<WalStore> wal_store_;
  std::unique_ptr<WalWriter> wal_;
  WalRecoveryStats wal_recovery_;
};

// Opens an engine or aborts with the error printed — the construction
// idiom of tests, benches and examples, where a failed open is a bug,
// not a condition to handle.
std::unique_ptr<GirEngine> OpenEngineOrDie(EngineConfig config);

}  // namespace gir

#endif  // GIR_GIR_ENGINE_H_
