#ifndef GIR_GIR_ENGINE_H_
#define GIR_GIR_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "common/result.h"
#include "gir/fpnd.h"
#include "gir/gir_region.h"
#include "index/flat_rtree.h"
#include "index/rtree.h"
#include "storage/arena_file.h"
#include "topk/brs.h"

namespace gir {

class ShardedGirCache;

// Phase-2 algorithm selector (paper §5-§6).
enum class Phase2Method {
  kSP,          // skyline pruning
  kCP,          // convex-hull pruning
  kFP,          // facet pruning (2-D angular variant / d-dim star)
  kBruteForce,  // all n-1 half-spaces (reference; §3.3 straw-man)
};

Result<Phase2Method> ParsePhase2Method(const std::string& name);
std::string Phase2MethodName(Phase2Method method);

// Rejects non-finite query weights with kInvalidArgument naming the
// offending dimension. A NaN or Inf weight would otherwise poison
// every score comparison downstream and surface as silently-wrong
// results; both query entry points (ComputeGir/ComputeGirStar and the
// batch shared-traversal path) apply this before any work.
Status ValidateQueryWeights(VecView weights);

// Cost breakdown of one GIR computation, mirroring what the paper's
// charts report (total CPU, total I/O) while keeping phases separate.
struct GirStats {
  double topk_cpu_ms = 0.0;
  double phase1_cpu_ms = 0.0;
  double phase2_cpu_ms = 0.0;      // pruning + constraint derivation
  double intersect_cpu_ms = 0.0;   // half-space intersection (qhalf role)
  uint64_t topk_reads = 0;
  uint64_t phase2_reads = 0;
  size_t candidates = 0;   // |SL|, |SL ∩ CH| or #critical records
  size_t star_facets = 0;  // FP only: live incident facets (Fig. 8(b))
  size_t constraints = 0;  // half-spaces in the final region

  double GirCpuMillis() const {
    return phase1_cpu_ms + phase2_cpu_ms + intersect_cpu_ms;
  }
  double GirIoMillis(double ms_per_read) const {
    return static_cast<double>(phase2_reads) * ms_per_read;
  }
};

struct GirComputation {
  TopKResult topk;
  GirRegion region;
  GirStats stats;
  // Dataset epoch the computation ran against (0 until the first
  // ApplyUpdates batch); what cache inserts must stamp entries with.
  uint64_t snapshot_version = 0;
};

// One batch of mutations for GirEngine::ApplyUpdates. Deletes are
// applied before inserts; records are deleted by id (ids are stable
// tombstones, never reused) and inserted points must already live in
// the normalized [0,1]^d domain of the dataset.
struct UpdateBatch {
  std::vector<Vec> inserts;
  std::vector<RecordId> deletes;
};

// Outcome and cost breakdown of one ApplyUpdates call.
struct UpdateStats {
  size_t applied_inserts = 0;
  size_t applied_deletes = 0;
  uint64_t version = 0;        // epoch published by this batch
  double apply_ms = 0.0;       // R*-tree + dataset mutation
  double refreeze_ms = 0.0;    // dataset copy + FlatRTree::Freeze
  double invalidate_ms = 0.0;  // incremental cache invalidation
  // Cache invalidation accounting (all zero when no cache was passed);
  // tests-vs-recomputes is the headline: lp_tests LPs were solved so
  // that only delete_evicted + insert_evicted regions need recomputing
  // instead of entries_before.
  size_t cache_entries_before = 0;
  size_t cache_lp_tests = 0;
  size_t cache_stale_evicted = 0;
  size_t cache_delete_evicted = 0;
  size_t cache_insert_evicted = 0;
  size_t cache_survived = 0;
};

struct GirEngineOptions {
  FpOptions fp;
  // Materialize the region polytope inside the timed section (the paper
  // charges Qhull's half-space intersection to each method's CPU).
  bool materialize_polytope = true;
};

// Unified construction input of GirEngine::Open: one value that names
// where the engine's data comes from (the source), whether it accepts
// ApplyUpdates (mutability follows the source), how records are scored,
// and the engine options. Build one with the factory that matches your
// source; every factory takes the same trailing (disk, scoring,
// options) triple. Move-only (it carries the scoring function).
//
//   auto engine = GirEngine::Open(
//       EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d)));
//
// Source semantics:
//   FromDataset(const Dataset*)  read-only engine over a caller-owned
//                                dataset; ApplyUpdates fails.
//   FromDataset(Dataset*)        updatable engine; the caller's dataset
//                                is the mutable master.
//   FromCsv(path)                loads the CSV into an engine-owned
//                                mutable master (updatable).
//   FromSnapshotDir(dir)         recovers the newest valid snapshot in
//                                `dir` (SnapshotStore::RecoverLatest)
//                                into an updatable engine.
//   FromArena(path)              mmaps an arena file (storage/
//                                arena_file.h) and serves straight from
//                                the mapping: no rebuild, no refreeze,
//                                read-only. `path` may be the file
//                                itself or a snapshot directory — the
//                                newest valid arena-*.garn then wins
//                                (SnapshotStore::RecoverLatestArena).
struct EngineConfig {
  enum class Source {
    kDataset,         // caller-owned immutable dataset
    kMutableDataset,  // caller-owned mutable master dataset
    kCsv,             // CSV file, loaded into an engine-owned master
    kSnapshotDir,     // newest valid .gsnp epoch in a directory
    kArena,           // mmap'd arena file (or newest in a directory)
  };

  Source source = Source::kDataset;
  const Dataset* dataset = nullptr;    // kDataset
  Dataset* mutable_dataset = nullptr;  // kMutableDataset
  std::string path;                    // kCsv / kSnapshotDir / kArena
  DiskManager* disk = nullptr;         // required, all sources
  std::unique_ptr<ScoringFunction> scoring;  // required, all sources
  GirEngineOptions options;

  static EngineConfig FromDataset(const Dataset* dataset, DiskManager* disk,
                                  std::unique_ptr<ScoringFunction> scoring,
                                  GirEngineOptions options = {}) {
    EngineConfig c;
    c.source = Source::kDataset;
    c.dataset = dataset;
    c.disk = disk;
    c.scoring = std::move(scoring);
    c.options = options;
    return c;
  }
  // Overload on mutability, mirroring the ApplyUpdates contract: a
  // non-const dataset pointer buys an updatable engine.
  static EngineConfig FromDataset(Dataset* dataset, DiskManager* disk,
                                  std::unique_ptr<ScoringFunction> scoring,
                                  GirEngineOptions options = {}) {
    EngineConfig c;
    c.source = Source::kMutableDataset;
    c.dataset = dataset;
    c.mutable_dataset = dataset;
    c.disk = disk;
    c.scoring = std::move(scoring);
    c.options = options;
    return c;
  }
  static EngineConfig FromCsv(std::string path, DiskManager* disk,
                              std::unique_ptr<ScoringFunction> scoring,
                              GirEngineOptions options = {}) {
    EngineConfig c;
    c.source = Source::kCsv;
    c.path = std::move(path);
    c.disk = disk;
    c.scoring = std::move(scoring);
    c.options = options;
    return c;
  }
  static EngineConfig FromSnapshotDir(std::string dir, DiskManager* disk,
                                      std::unique_ptr<ScoringFunction> scoring,
                                      GirEngineOptions options = {}) {
    EngineConfig c;
    c.source = Source::kSnapshotDir;
    c.path = std::move(dir);
    c.disk = disk;
    c.scoring = std::move(scoring);
    c.options = options;
    return c;
  }
  static EngineConfig FromArena(std::string path, DiskManager* disk,
                                std::unique_ptr<ScoringFunction> scoring,
                                GirEngineOptions options = {}) {
    EngineConfig c;
    c.source = Source::kArena;
    c.path = std::move(path);
    c.disk = disk;
    c.scoring = std::move(scoring);
    c.options = options;
    return c;
  }
};

// Public facade: owns the R*-tree over a dataset and computes top-k
// results together with their (order-sensitive or order-insensitive)
// global immutable regions.
//
//   DiskManager disk;
//   auto engine = OpenEngineOrDie(EngineConfig::FromDataset(
//       &data, &disk, MakeScoring("Linear", data.dim())));
//   auto gir = engine->ComputeGir(weights, 20, Phase2Method::kFP);
//
// The dataset (when caller-owned) and disk manager must outlive the
// engine.
//
// Thread safety: ComputeGir / ComputeGirStar only read an immutable
// epoch snapshot (see below) plus the scoring function, and the
// DiskManager's accounting is atomic with thread-local per-query deltas
// — so any number of threads may compute queries on one engine
// concurrently (this is what BatchEngine does), including concurrently
// with one ApplyUpdates writer.
//
// Index lifecycle (epoch snapshots): the constructor bulk-loads the
// mutable R*-tree and immediately Freeze()s it into a FlatRTree; every
// query runs against the frozen image (same page ids, same simulated
// I/O, bit-identical output — see flat_rtree.h) with the batched SoA
// score kernels. An engine constructed over a mutable `Dataset*`
// additionally accepts ApplyUpdates batches: under a single writer
// lock, the batch mutates the R*-tree (R* insert + delete with
// condense/reinsert) and the master dataset (append + tombstone), then
// refreezes into a *fresh* snapshot — an immutable dataset copy plus a
// new flat arena — published with an atomic shared_ptr swap. In-flight
// readers keep the snapshot they loaded alive until they finish, so
// they are never blocked and never observe a torn index; new queries
// see the new epoch. Snapshot versions count epochs (0 = construction)
// and stamp every GirComputation for cache coherence.
class GirEngine {
 public:
  // The one construction entry point: opens an engine from whatever
  // source the config names (see EngineConfig). Fails with
  // InvalidArgument on a malformed config (missing disk/scoring/source
  // operand), and with the underlying error for file-backed sources —
  // NotFound when nothing is there, DataLoss when every candidate is
  // torn or corrupt, the CSV parser's status for kCsv.
  static Result<std::unique_ptr<GirEngine>> Open(EngineConfig config);

  // Order-sensitive GIR (Definition 1).
  Result<GirComputation> ComputeGir(VecView weights, size_t k,
                                    Phase2Method method) const;

  // One pinned epoch, as a unit: the frozen image (the aliased
  // shared_ptr keeps the whole snapshot — arena + dataset copy —
  // alive) plus the version to stamp results and cache entries with.
  // This is what lets a caller run many queries against one consistent
  // epoch (the shared-traversal batch executor pins once per batch).
  struct PinnedIndex {
    std::shared_ptr<const FlatRTree> flat;
    uint64_t version = 0;
  };
  PinnedIndex PinIndex() const {
    std::shared_ptr<const Snapshot> snap = LoadSnapshot();
    PinnedIndex pin;
    pin.flat = std::shared_ptr<const FlatRTree>(snap, &snap->flat);
    pin.version = snap->version;
    return pin;
  }

  // Order-sensitive GIR from an already-computed top-k: runs Phase 1 /
  // Phase 2 / intersection exactly as ComputeGir does after its own
  // BRS, against the pinned epoch the top-k was computed on. `topk`
  // must be a RunBrs/RunBrsMulti output for (weights, k) on pin.flat;
  // the result is then bit-identical to ComputeGir on that epoch
  // (modulo wall-clock stats; topk_cpu_ms is taken from the caller,
  // who timed the traversal). This is the Phase-2 half of the
  // shared-traversal batch path.
  Result<GirComputation> ComputeGirWithTopK(const PinnedIndex& pin,
                                            VecView weights, size_t k,
                                            Phase2Method method,
                                            TopKResult topk,
                                            double topk_cpu_ms = 0.0) const;

  // Order-insensitive GIR* (Definition 2); no Phase-1 constraints.
  Result<GirComputation> ComputeGirStar(VecView weights, size_t k,
                                        Phase2Method method) const;

  // Applies one update batch and publishes a new epoch snapshot:
  //   1. mutate — deletes leave the R*-tree (condense + reinsert) and
  //      tombstone their dataset slot; inserts append and R*-insert.
  //   2. refreeze — the updated tree is frozen into a fresh FlatRTree
  //      arena bound to an immutable copy of the dataset.
  //   3. invalidate — when `cache` is non-null, cached GIRs are
  //      incrementally invalidated with the point-vs-region max-score
  //      LP test (see ShardedGirCache::InvalidateForUpdates): only
  //      regions the batch can actually pierce are evicted, survivors
  //      are re-stamped to the new epoch.
  //   4. publish — the snapshot pointer is swapped atomically and
  //      dataset_version() starts returning the new epoch.
  // Concurrent readers are never blocked; writers are serialized.
  // Returns InvalidArgument (without mutating) on malformed batches:
  // wrong-dimension or out-of-cube inserts, dead/out-of-range/duplicate
  // delete ids. An Internal error (a live record missing from the
  // master tree) signals a broken index invariant; the engine state is
  // unspecified after it.
  Result<UpdateStats> ApplyUpdates(const UpdateBatch& batch,
                                   ShardedGirCache* cache = nullptr);

  // Arena-backed engines only (Open with a kArena source): swaps the
  // served epoch to the arena file at `path` — mmap the new file,
  // validate it end to end, publish it with one atomic pointer swap.
  // In-flight readers finish on the mapping they pinned; the old file
  // is munmapped when the last of them drains. This is the replica
  // epoch-advance path: a follower serves arena epoch N while a leader
  // publishes N+1 via SnapshotStore::WriteArena, then the follower
  // advances with no rebuild and no reader stall. Returns the new
  // epoch's version; FailedPrecondition on a non-arena engine,
  // DataLoss/NotFound/InvalidArgument when the file is damaged,
  // missing, or from a different dataset shape.
  Result<uint64_t> AdvanceToArena(const std::string& path);

  // Epoch of the currently-published snapshot.
  uint64_t dataset_version() const {
    return version_.load(std::memory_order_acquire);
  }

  // True when the engine keeps a mutable master R*-tree (every source
  // except kArena). Arena engines serve the frozen image only; tree()
  // must not be called on them.
  bool has_master_tree() const { return tree_.has_value(); }
  const RTree& tree() const { return *tree_; }
  // The currently-published frozen image. The reference stays valid
  // until the *next* ApplyUpdates retires the snapshot — single-epoch
  // callers (tests, static benches) may hold it freely. Any caller that
  // might hold the image across an ApplyUpdates must use PinFlatTree()
  // instead (ComputeGir pins internally).
  const FlatRTree& flat_tree() const { return LoadSnapshot()->flat; }
  // Pins the current epoch: the returned pointer keeps the whole
  // snapshot (arena + dataset image) alive across any number of
  // subsequent updates.
  std::shared_ptr<const FlatRTree> PinFlatTree() const {
    std::shared_ptr<const Snapshot> snap = LoadSnapshot();
    return std::shared_ptr<const FlatRTree>(snap, &snap->flat);
  }
  // The master dataset for dataset-backed engines. An arena engine has
  // no master — its dataset lives inside the served epoch, so the
  // reference is only stable until the next AdvanceToArena; pin the
  // epoch (PinIndex) to hold it across swaps.
  const Dataset& dataset() const {
    return dataset_ != nullptr ? *dataset_ : *LoadSnapshot()->dataset;
  }
  const ScoringFunction& scoring() const { return *scoring_; }
  DiskManager* disk() const { return disk_; }

 private:
  // One immutable epoch: a frozen arena over a dataset image that no
  // writer will ever touch. Readers pin it with shared_ptr.
  struct Snapshot {
    std::shared_ptr<const Dataset> dataset;
    FlatRTree flat;
    uint64_t version = 0;
  };

  // Shared implementation of the two public constructors;
  // `mutable_dataset` is null for the read-only variant.
  GirEngine(const Dataset* dataset, Dataset* mutable_dataset,
            DiskManager* disk, std::unique_ptr<ScoringFunction> scoring,
            const GirEngineOptions& options);

  // Restore path: adopts recovered state instead of bulk-loading.
  GirEngine(std::unique_ptr<Dataset> owned, RTree tree, uint64_t version,
            DiskManager* disk, std::unique_ptr<ScoringFunction> scoring,
            const GirEngineOptions& options);

  // Arena path: serves straight from the mapping — no master tree, no
  // refreeze, read-only. `flat` must be FromArena over `dataset`, which
  // the published snapshot takes ownership of.
  GirEngine(std::shared_ptr<const Dataset> dataset, FlatRTree flat,
            uint64_t version, DiskManager* disk,
            std::unique_ptr<ScoringFunction> scoring,
            const GirEngineOptions& options);

  std::shared_ptr<const Snapshot> LoadSnapshot() const {
    return std::atomic_load_explicit(&snapshot_, std::memory_order_acquire);
  }

  Result<GirComputation> Compute(VecView weights, size_t k,
                                 Phase2Method method, bool order_sensitive)
      const;

  // Shared tail of Compute and ComputeGirWithTopK: Phase 1 + Phase 2 +
  // intersection over an explicit epoch, consuming a finished top-k.
  Result<GirComputation> FinishGir(const FlatRTree& flat, uint64_t version,
                                   VecView weights, size_t k,
                                   Phase2Method method, bool order_sensitive,
                                   TopKResult topk, double topk_cpu_ms) const;

  // Restore/CSV paths only: the engine owns its master dataset
  // (declared first so dataset_/mutable_dataset_ can alias it during
  // init).
  std::unique_ptr<Dataset> owned_dataset_;
  const Dataset* dataset_;  // null iff arena-backed (dataset lives in
                            // the snapshot, swapped by AdvanceToArena)
  Dataset* mutable_dataset_ = nullptr;  // non-null iff updatable
  DiskManager* disk_;
  std::unique_ptr<ScoringFunction> scoring_;
  GirEngineOptions options_;
  // Mutable master index; touched only under update_mu_. Absent on
  // arena-backed engines — they have nothing to re-balance and serve
  // the mmap'd frozen image directly.
  std::optional<RTree> tree_;
  std::shared_ptr<const Snapshot> snapshot_;  // atomic publish point
  std::atomic<uint64_t> version_{0};
  std::mutex update_mu_;  // serializes ApplyUpdates writers
};

// Opens an engine or aborts with the error printed — the construction
// idiom of tests, benches and examples, where a failed open is a bug,
// not a condition to handle.
std::unique_ptr<GirEngine> OpenEngineOrDie(EngineConfig config);

}  // namespace gir

#endif  // GIR_GIR_ENGINE_H_
