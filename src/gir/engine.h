#ifndef GIR_GIR_ENGINE_H_
#define GIR_GIR_ENGINE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "gir/fpnd.h"
#include "gir/gir_region.h"
#include "index/flat_rtree.h"
#include "index/rtree.h"
#include "topk/brs.h"

namespace gir {

// Phase-2 algorithm selector (paper §5-§6).
enum class Phase2Method {
  kSP,          // skyline pruning
  kCP,          // convex-hull pruning
  kFP,          // facet pruning (2-D angular variant / d-dim star)
  kBruteForce,  // all n-1 half-spaces (reference; §3.3 straw-man)
};

Result<Phase2Method> ParsePhase2Method(const std::string& name);
std::string Phase2MethodName(Phase2Method method);

// Cost breakdown of one GIR computation, mirroring what the paper's
// charts report (total CPU, total I/O) while keeping phases separate.
struct GirStats {
  double topk_cpu_ms = 0.0;
  double phase1_cpu_ms = 0.0;
  double phase2_cpu_ms = 0.0;      // pruning + constraint derivation
  double intersect_cpu_ms = 0.0;   // half-space intersection (qhalf role)
  uint64_t topk_reads = 0;
  uint64_t phase2_reads = 0;
  size_t candidates = 0;   // |SL|, |SL ∩ CH| or #critical records
  size_t star_facets = 0;  // FP only: live incident facets (Fig. 8(b))
  size_t constraints = 0;  // half-spaces in the final region

  double GirCpuMillis() const {
    return phase1_cpu_ms + phase2_cpu_ms + intersect_cpu_ms;
  }
  double GirIoMillis(double ms_per_read) const {
    return static_cast<double>(phase2_reads) * ms_per_read;
  }
};

struct GirComputation {
  TopKResult topk;
  GirRegion region;
  GirStats stats;
};

struct GirEngineOptions {
  FpOptions fp;
  // Materialize the region polytope inside the timed section (the paper
  // charges Qhull's half-space intersection to each method's CPU).
  bool materialize_polytope = true;
};

// Public facade: owns the R*-tree over a dataset and computes top-k
// results together with their (order-sensitive or order-insensitive)
// global immutable regions.
//
//   DiskManager disk;
//   GirEngine engine(&data, &disk, MakeScoring("Linear", data.dim()));
//   auto gir = engine.ComputeGir(weights, 20, Phase2Method::kFP);
//
// The dataset and disk manager must outlive the engine.
//
// Thread safety: after construction, ComputeGir / ComputeGirStar only
// read the tree, dataset and scoring function, and the DiskManager's
// accounting is atomic with thread-local per-query deltas — so any
// number of threads may compute queries on one engine concurrently
// (this is what BatchEngine does).
//
// Index lifecycle: the constructor bulk-loads the mutable R*-tree and
// immediately Freeze()s it into a FlatRTree; every query runs against
// the frozen image (same page ids, same simulated I/O, bit-identical
// output — see flat_rtree.h) with the batched SoA score kernels.
class GirEngine {
 public:
  GirEngine(const Dataset* dataset, DiskManager* disk,
            std::unique_ptr<ScoringFunction> scoring,
            const GirEngineOptions& options = {});

  // Order-sensitive GIR (Definition 1).
  Result<GirComputation> ComputeGir(VecView weights, size_t k,
                                    Phase2Method method) const;

  // Order-insensitive GIR* (Definition 2); no Phase-1 constraints.
  Result<GirComputation> ComputeGirStar(VecView weights, size_t k,
                                        Phase2Method method) const;

  const RTree& tree() const { return tree_; }
  const FlatRTree& flat_tree() const { return flat_; }
  const Dataset& dataset() const { return *dataset_; }
  const ScoringFunction& scoring() const { return *scoring_; }
  DiskManager* disk() const { return disk_; }

 private:
  Result<GirComputation> Compute(VecView weights, size_t k,
                                 Phase2Method method, bool order_sensitive)
      const;

  const Dataset* dataset_;
  DiskManager* disk_;
  std::unique_ptr<ScoringFunction> scoring_;
  GirEngineOptions options_;
  RTree tree_;
  FlatRTree flat_;  // frozen query-time image of tree_
};

}  // namespace gir

#endif  // GIR_GIR_ENGINE_H_
