#include "gir/gir_star.h"

#include <algorithm>

#include "common/rng.h"
#include "geom/convex_hull.h"
#include "geom/hull2d.h"
#include "skyline/bbs.h"
#include "skyline/dominance.h"
#include "topk/tree_kernels.h"

namespace gir {

std::vector<RecordId> PruneResultForGirStar(const Dataset& data,
                                            const ScoringFunction& scoring,
                                            const std::vector<RecordId>& r) {
  const size_t k = r.size();
  std::vector<bool> keep(k, true);
  // (ii) Drop result records that dominate another result record: any
  // challenger must overtake the dominated one first.
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k && keep[i]; ++j) {
      if (i == j) continue;
      if (Dominates(data.Get(r[i]), data.Get(r[j]))) keep[i] = false;
    }
  }
  // (i) Drop result records strictly inside the hull of the transformed
  // result: some hull record always scores no higher.
  if (k > data.dim() + 1) {
    std::vector<Vec> pts;
    pts.reserve(k);
    for (RecordId id : r) pts.push_back(scoring.Transform(data.Get(id)));
    std::vector<bool> on_hull(k, false);
    bool hull_ok = false;
    if (data.dim() == 2) {
      for (int idx : ConvexHull2D(pts)) on_hull[idx] = true;
      hull_ok = true;
    } else {
      Result<ConvexHull> hull = ConvexHull::Build(pts);
      if (hull.ok()) {
        for (int idx : hull->vertex_indices()) on_hull[idx] = true;
        hull_ok = true;
      }
    }
    if (hull_ok) {
      for (size_t i = 0; i < k; ++i) {
        if (!on_hull[i]) keep[i] = false;
      }
    }
  }
  std::vector<RecordId> out;
  for (size_t i = 0; i < k; ++i) {
    if (keep[i]) out.push_back(r[i]);
  }
  // Safety: R- is never empty (a maximal record of R dominates nobody
  // that dominates it, and lies on the hull); guard numerics anyway.
  if (out.empty()) out = r;
  return out;
}

namespace {

// Positions (indices into topk.result) of the pruned result set.
std::vector<int> PositionsOf(const std::vector<RecordId>& result,
                             const std::vector<RecordId>& pruned) {
  std::vector<int> out;
  for (RecordId id : pruned) {
    auto it = std::find(result.begin(), result.end(), id);
    out.push_back(static_cast<int>(it - result.begin()));
  }
  return out;
}

template <typename Tree>
Result<Phase2Output> GirStarViaSkyline(const Tree& tree,
                                       const ScoringFunction& scoring,
                                       VecView weights,
                                       const TopKResult& topk,
                                       bool hull_filter, GirRegion* region) {
  const Dataset& data = tree.dataset();
  std::vector<RecordId> rminus =
      PruneResultForGirStar(data, scoring, topk.result);
  std::vector<int> positions = PositionsOf(topk.result, rminus);
  SkylineResult sl = ContinueSkylineFromBrs(tree, scoring, weights, topk);

  std::vector<RecordId> candidates = sl.skyline;
  if (hull_filter && candidates.size() > data.dim() + 1) {
    std::vector<Vec> pts;
    for (RecordId id : candidates) {
      pts.push_back(scoring.Transform(data.Get(id)));
    }
    std::vector<RecordId> kept;
    if (data.dim() == 2) {
      for (int idx : ConvexHull2D(pts)) kept.push_back(candidates[idx]);
    } else {
      Result<ConvexHull> hull = ConvexHull::Build(pts);
      if (hull.ok()) {
        for (int idx : hull->vertex_indices()) {
          kept.push_back(candidates[idx]);
        }
      } else {
        kept = candidates;
      }
    }
    candidates = std::move(kept);
  }

  for (size_t ri = 0; ri < rminus.size(); ++ri) {
    Vec gi = scoring.Transform(data.Get(rminus[ri]));
    ConstraintProvenance prov;
    prov.kind = ConstraintProvenance::Kind::kOvertake;
    prov.position = positions[ri];
    for (RecordId p : candidates) {
      prov.challenger = p;
      region->AddConstraint(Sub(gi, scoring.Transform(data.Get(p))), prov);
    }
  }
  Phase2Output out;
  out.candidates = candidates.size();
  out.io = sl.io;
  return out;
}

template <typename Tree>
Result<Phase2Output> GirStarViaFp(const Tree& tree,
                                  const ScoringFunction& scoring,
                                  VecView weights, const TopKResult& topk,
                                  GirRegion* region,
                                  const FpOptions& options) {
  const Dataset& data = tree.dataset();
  IoStats before = DiskManager::ThreadStats();
  std::vector<RecordId> rminus =
      PruneResultForGirStar(data, scoring, topk.result);
  std::vector<int> positions = PositionsOf(topk.result, rminus);
  Rng joggle_rng(0xFACE8);

  struct PerRecord {
    RecordId id;
    int position;
    Vec g;
    IncidentStar star;
    std::vector<GirConstraint> direct;  // fit-failure fallbacks
  };
  std::vector<PerRecord> stars;
  for (size_t ri = 0; ri < rminus.size(); ++ri) {
    Vec g = scoring.Transform(data.Get(rminus[ri]));
    stars.push_back(PerRecord{rminus[ri], positions[ri], g,
                              IncidentStar(g, options.eps),
                              {}});
  }

  auto feed = [&](RecordId id) {
    VecView p_raw = data.Get(id);
    Vec g = scoring.Transform(p_raw);  // shared across all stars
    for (PerRecord& pr : stars) {
      if (Dominates(data.Get(pr.id), p_raw)) continue;
      bool inserted = pr.star.Insert(g, id).ok();
      for (int attempt = 1; attempt < 3 && !inserted; ++attempt) {
        Vec candidate = g;
        for (double& x : candidate) {
          x += joggle_rng.Uniform(-1e-11, 1e-11) * (1 << attempt);
        }
        inserted = pr.star.Insert(candidate, id).ok();
      }
      if (!inserted) {
        ConstraintProvenance prov;
        prov.kind = ConstraintProvenance::Kind::kOvertake;
        prov.position = pr.position;
        prov.challenger = id;
        pr.direct.push_back(GirConstraint{Sub(pr.g, g), prov});
      }
    }
  };

  for (RecordId id : topk.encountered) feed(id);

  std::vector<PendingNode> heap = topk.pending;
  PendingNodeLess less;
  std::make_heap(heap.begin(), heap.end(), less);
  ScoreBuffer buf;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), less);
    PendingNode top = std::move(heap.back());
    heap.pop_back();
    bool prunable = true;
    for (PerRecord& pr : stars) {
      if (!pr.star.BoxBelowAllFacets([&](const Vec& normal) {
            return MaxDotTransformedBox(scoring, top.mbb, normal);
          })) {
        prunable = false;
        break;
      }
    }
    if (prunable) continue;
    decltype(auto) node = tree.ReadNode(top.page);
    const size_t count = NodeEntryCount(node);
    if (NodeIsLeaf(node)) {
      for (size_t i = 0; i < count; ++i) feed(NodeChild(node, i));
    } else {
      ComputeEntryScores(scoring, tree.dataset(), node, weights, &buf);
      for (size_t i = 0; i < count; ++i) {
        PendingNode pn;
        pn.maxscore = buf.scores[i];
        pn.page = static_cast<PageId>(NodeChild(node, i));
        pn.mbb = NodeEntryMbb(node, i);
        heap.push_back(std::move(pn));
        std::push_heap(heap.begin(), heap.end(), less);
      }
    }
  }

  Phase2Output out;
  for (PerRecord& pr : stars) {
    ConstraintProvenance prov;
    prov.kind = ConstraintProvenance::Kind::kOvertake;
    prov.position = pr.position;
    for (int id : pr.star.CriticalRecordIds()) {
      prov.challenger = id;
      region->AddConstraint(
          Sub(pr.g, scoring.Transform(data.Get(static_cast<RecordId>(id)))),
          prov);
      ++out.candidates;
    }
    for (GirConstraint& c : pr.direct) {
      region->AddConstraint(std::move(c.normal), c.provenance);
      ++out.candidates;
    }
  }
  out.io = DiskManager::ThreadStats() - before;
  return out;
}

template <typename Tree>
Result<Phase2Output> RunGirStarImpl(const Tree& tree,
                                    const ScoringFunction& scoring,
                                    VecView weights, const TopKResult& topk,
                                    const std::string& method,
                                    GirRegion* region,
                                    const FpOptions& fp_options) {
  if (topk.result.empty()) {
    return Status::InvalidArgument("empty top-k result");
  }
  if (method == "SP") {
    return GirStarViaSkyline(tree, scoring, weights, topk,
                             /*hull_filter=*/false, region);
  }
  if (method == "CP") {
    return GirStarViaSkyline(tree, scoring, weights, topk,
                             /*hull_filter=*/true, region);
  }
  if (method == "FP") {
    return GirStarViaFp(tree, scoring, weights, topk, region, fp_options);
  }
  return Status::InvalidArgument("unknown GIR* method: " + method);
}

}  // namespace

Result<Phase2Output> RunGirStarPhase2(const RTree& tree,
                                      const ScoringFunction& scoring,
                                      VecView weights, const TopKResult& topk,
                                      const std::string& method,
                                      GirRegion* region,
                                      const FpOptions& fp_options) {
  return RunGirStarImpl(tree, scoring, weights, topk, method, region,
                        fp_options);
}

Result<Phase2Output> RunGirStarPhase2(const FlatRTree& tree,
                                      const ScoringFunction& scoring,
                                      VecView weights, const TopKResult& topk,
                                      const std::string& method,
                                      GirRegion* region,
                                      const FpOptions& fp_options) {
  return RunGirStarImpl(tree, scoring, weights, topk, method, region,
                        fp_options);
}

}  // namespace gir
