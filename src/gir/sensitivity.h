#ifndef GIR_GIR_SENSITIVITY_H_
#define GIR_GIR_SENSITIVITY_H_

#include <cstdint>

#include "common/rng.h"
#include "gir/gir_region.h"

namespace gir {

// How the GIR-volume / query-space-volume ratio is estimated.
enum class VolumeMode {
  // Exact: vertex enumeration + simplicial fan (preferred in low d).
  kExact,
  // Uniform Monte-Carlo over the unit cube: cheap but cannot resolve
  // the ~1e-10 ratios that appear at high dimensionality.
  kMonteCarloCube,
  // Monte-Carlo restricted to the polytope's bounding box: resolves
  // small ratios at the cost of one exact vertex enumeration.
  kMonteCarloBox,
};

// The paper's robustness measure (Introduction & §8, Figure 14; equals
// the LIK probability of Soliman et al.): the probability that a
// uniformly random query vector produces the same top-k result.
double VolumeRatio(const GirRegion& region, VolumeMode mode, Rng& rng,
                   uint64_t samples = 200000);

// Convenience: exact when the region materialises cleanly, otherwise
// bounding-box Monte-Carlo.
double VolumeRatioAuto(const GirRegion& region, Rng& rng,
                       uint64_t samples = 200000);

// The STB sensitivity measure of Soliman et al. (SIGMOD 2011), the
// paper's §2 baseline: the radius of the largest ball centred at the
// query vector within which the top-k result is preserved. Since the
// GIR is the maximal preserving locus, STB is simply the distance from
// q to the nearest GIR boundary (constraint hyperplanes + cube walls);
// the STB ball is always enclosed in the GIR.
double StbRadius(const GirRegion& region);

// Volume of the d-ball of radius r (for comparing the STB ball's
// volume against the GIR volume, quantifying how much of the immutable
// locus the ball-based measure misses).
double BallVolume(size_t dim, double radius);

}  // namespace gir

#endif  // GIR_GIR_SENSITIVITY_H_
