#include "gir/phase1.h"

namespace gir {

void AddPhase1Constraints(const Dataset& data, const ScoringFunction& scoring,
                          const std::vector<RecordId>& result,
                          GirRegion* region) {
  for (size_t i = 0; i + 1 < result.size(); ++i) {
    Vec gi = scoring.Transform(data.Get(result[i]));
    Vec gnext = scoring.Transform(data.Get(result[i + 1]));
    ConstraintProvenance prov;
    prov.kind = ConstraintProvenance::Kind::kOrdering;
    prov.position = static_cast<int>(i);
    region->AddConstraint(Sub(gi, gnext), prov);
  }
}

}  // namespace gir
