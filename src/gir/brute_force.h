#ifndef GIR_GIR_BRUTE_FORCE_H_
#define GIR_GIR_BRUTE_FORCE_H_

#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "gir/gir_region.h"
#include "topk/scoring.h"

namespace gir {

// Reference GIR: linear-scan top-k, then ALL n-1 half-spaces of
// Definition 1 (k-1 ordering + n-k overtaking). This is the
// O(n) data-access / Omega(n^{d/2}) intersection straw-man of paper
// §3.3, kept as ground truth for the pruning methods: SP, CP and FP
// must produce exactly this region (their constraint sets differ, the
// intersection does not).
Result<GirRegion> ComputeGirBruteForce(const Dataset& data,
                                       const ScoringFunction& scoring,
                                       VecView weights, size_t k);

}  // namespace gir

#endif  // GIR_GIR_BRUTE_FORCE_H_
