#ifndef GIR_GIR_CP_H_
#define GIR_GIR_CP_H_

#include "gir/sp.h"

namespace gir {

// Convex-hull Pruning (paper §5.2): compute SL like SP, then keep only
// the records on the convex hull of SL (in the transformed data space);
// interior records can never overtake p_k first. The hull computation
// uses the library's d-dimensional quickhull (Clarkson-style), which is
// exactly the cost the paper charges CP for.
Phase2Output RunCpPhase2(const RTree& tree, const ScoringFunction& scoring,
                         VecView weights, const TopKResult& topk,
                         GirRegion* region);

// Frozen-tree variant; bit-identical constraints and IoStats.
Phase2Output RunCpPhase2(const FlatRTree& tree, const ScoringFunction& scoring,
                         VecView weights, const TopKResult& topk,
                         GirRegion* region);

}  // namespace gir

#endif  // GIR_GIR_CP_H_
