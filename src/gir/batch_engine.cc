#include "gir/batch_engine.h"

#include <algorithm>

#include "common/stopwatch.h"

namespace gir {

namespace {

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

Result<BatchResult> BatchEngine::ComputeBatch(const std::vector<Vec>& weights,
                                              size_t k, Phase2Method method) {
  const size_t dim = engine_->dataset().dim();
  for (const Vec& w : weights) {
    if (w.size() != dim) {
      return Status::InvalidArgument("batch weight dimensionality mismatch");
    }
  }

  BatchResult out;
  out.items.resize(weights.size());
  const bool use_cache = cache_.capacity() > 0;

  Stopwatch batch_sw;
  pool_.ParallelFor(weights.size(), [&](size_t i) {
    BatchItem& item = out.items[i];
    Stopwatch sw;
    IoStats before = DiskManager::ThreadStats();
    if (use_cache) {
      // Probe at the current epoch; entries from other epochs are
      // unservable by construction (stale-hit backstop).
      ShardedGirCache::Lookup hit =
          cache_.Probe(weights[i], k, engine_->dataset_version());
      item.cache = hit.kind;
      if (hit.kind == ShardedGirCache::HitKind::kExact) {
        item.topk = std::move(hit.records);
        item.latency_ms = sw.ElapsedMillis();
        return;
      }
    }
    Result<GirComputation> gir = engine_->ComputeGir(weights[i], k, method);
    if (!gir.ok()) {
      item.status = gir.status();
      item.latency_ms = sw.ElapsedMillis();
      return;
    }
    item.topk = gir->topk.result;
    if (use_cache && options_.populate_cache) {
      // Stamp with the epoch the computation actually ran against — a
      // concurrent update between probe and insert then simply leaves
      // this entry unservable rather than stale.
      cache_.Insert(k, gir->topk.result, gir->region, gir->snapshot_version);
    }
    item.computed = std::move(*gir);
    item.reads = (DiskManager::ThreadStats() - before).reads;
    item.latency_ms = sw.ElapsedMillis();
  });
  out.stats.wall_ms = batch_sw.ElapsedMillis();

  out.stats.queries = out.items.size();
  std::vector<double> latencies;
  latencies.reserve(out.items.size());
  for (const BatchItem& item : out.items) {
    if (!item.status.ok()) {
      ++out.stats.failures;
      continue;
    }
    switch (item.cache) {
      case ShardedGirCache::HitKind::kExact:
        ++out.stats.exact_hits;
        break;
      case ShardedGirCache::HitKind::kPartial:
        ++out.stats.partial_hits;
        break;
      case ShardedGirCache::HitKind::kMiss:
        ++out.stats.misses;
        break;
    }
    out.stats.total_reads += item.reads;
    latencies.push_back(item.latency_ms);
  }
  std::sort(latencies.begin(), latencies.end());
  out.stats.p50_ms = Percentile(latencies, 0.50);
  out.stats.p99_ms = Percentile(latencies, 0.99);
  out.stats.max_ms = latencies.empty() ? 0.0 : latencies.back();
  return out;
}

Result<UpdateStats> BatchEngine::ApplyUpdates(const UpdateBatch& batch) {
  if (mutable_engine_ == nullptr) {
    return Status::FailedPrecondition(
        "BatchEngine was constructed over a read-only engine");
  }
  return mutable_engine_->ApplyUpdates(batch, &cache_);
}

}  // namespace gir
