#include "gir/batch_engine.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/stopwatch.h"

namespace gir {

namespace {

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

// Exponential backoff before retry attempt `attempt` (0-based).
double BackoffMs(double base_ms, uint32_t attempt) {
  return base_ms * static_cast<double>(uint64_t{1} << std::min(attempt, 30u));
}

void BackoffSleep(double ms) {
  if (ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
}

}  // namespace

void BatchEngine::FinalizeStats(BatchResult* out, double deadline_ms) const {
  BatchStats& stats = out->stats;
  stats.queries = out->items.size();
  std::vector<double> latencies;
  latencies.reserve(out->items.size());
  for (const BatchItem& item : out->items) {
    stats.fault_retries += item.retries;
    if (!item.status.ok()) {
      ++stats.failures;
      if (item.status.code() == StatusCode::kUnavailable) {
        ++stats.unavailable;
      }
      continue;
    }
    if (item.retries > 0) ++stats.retry_successes;
    if (deadline_ms > 0.0 && item.latency_ms > deadline_ms) {
      ++stats.deadline_misses;
    }
    switch (item.cache) {
      case ShardedGirCache::HitKind::kExact:
        ++stats.exact_hits;
        break;
      case ShardedGirCache::HitKind::kPartial:
        ++stats.partial_hits;
        break;
      case ShardedGirCache::HitKind::kMiss:
        ++stats.misses;
        break;
    }
    stats.total_reads += item.reads;
    latencies.push_back(item.latency_ms);
  }
  std::sort(latencies.begin(), latencies.end());
  stats.p50_ms = Percentile(latencies, 0.50);
  stats.p99_ms = Percentile(latencies, 0.99);
  stats.max_ms = latencies.empty() ? 0.0 : latencies.back();
}

Result<BatchResult> BatchEngine::ComputeBatch(const std::vector<Vec>& weights,
                                              size_t k, Phase2Method method) {
  return ComputeBatch(weights, k, method, options_.exec);
}

Result<BatchResult> BatchEngine::ComputeBatch(const std::vector<Vec>& weights,
                                              size_t k, Phase2Method method,
                                              const ExecPolicy& policy) {
  Status policy_ok = ValidateExecPolicy(policy);
  if (!policy_ok.ok()) return policy_ok;
  const size_t dim = engine_->dataset().dim();
  for (const Vec& w : weights) {
    if (w.size() != dim) {
      return Status::InvalidArgument("batch weight dimensionality mismatch");
    }
  }
  if (!policy.group_of.empty() && policy.group_of.size() != weights.size()) {
    return Status::InvalidArgument(
        "policy.group_of must be empty or match the batch size");
  }
  if (policy.pin_epoch > engine_->dataset_version()) {
    // Epoch pin: this engine has not yet caught up to the epoch the
    // caller's reply must reflect. Answering from the older epoch would
    // be time travel; an explicit kUnavailable item lets the routing
    // tier fail over to a replica at or ahead of the pin.
    BatchResult out;
    out.items.resize(weights.size());
    for (BatchItem& item : out.items) {
      item.status = Status::Unavailable("engine epoch behind pinned version");
    }
    FinalizeStats(&out, policy.deadline_ms);
    return out;
  }
  if (policy.shared_traversal) {
    return ComputeBatchShared(weights, k, method, policy);
  }

  BatchResult out;
  out.items.resize(weights.size());
  const bool use_cache = cache_.capacity() > 0;

  Stopwatch batch_sw;
  pool_.ParallelFor(weights.size(), [&](size_t i) {
    BatchItem& item = out.items[i];
    Stopwatch sw;
    IoStats before = DiskManager::ThreadStats();
    if (use_cache) {
      // Probe at the current epoch; entries from other epochs are
      // unservable by construction (stale-hit backstop).
      ShardedGirCache::Lookup hit =
          cache_.Probe(weights[i], k, engine_->dataset_version());
      item.cache = hit.kind;
      if (hit.kind == ShardedGirCache::HitKind::kExact) {
        item.topk = std::move(hit.records);
        item.latency_ms = sw.ElapsedMillis();
        return;
      }
    }
    Result<GirComputation> gir = engine_->ComputeGir(weights[i], k, method);
    // Bounded retry on transient storage faults: back off, then recompute
    // on whatever epoch is current (the fault is per-attempt, not
    // per-epoch). A retry that would blow the deadline budget is skipped
    // — the query degrades to an explicit kUnavailable instead.
    while (!gir.ok() && gir.status().code() == StatusCode::kUnavailable &&
           item.retries < policy.max_retries) {
      const double backoff_ms =
          BackoffMs(policy.retry_backoff_ms, item.retries);
      if (policy.deadline_ms > 0.0 &&
          sw.ElapsedMillis() + backoff_ms >= policy.deadline_ms) {
        break;
      }
      BackoffSleep(backoff_ms);
      ++item.retries;
      gir = engine_->ComputeGir(weights[i], k, method);
    }
    if (!gir.ok()) {
      item.status = gir.status();
      item.latency_ms = sw.ElapsedMillis();
      return;
    }
    item.topk = gir->topk.result;
    if (use_cache && options_.populate_cache) {
      // Stamp with the epoch the computation actually ran against — a
      // concurrent update between probe and insert then simply leaves
      // this entry unservable rather than stale.
      cache_.Insert(k, gir->topk.result, gir->region, gir->snapshot_version);
    }
    item.computed = std::move(*gir);
    item.reads = (DiskManager::ThreadStats() - before).reads;
    item.latency_ms = sw.ElapsedMillis();
  });
  out.stats.wall_ms = batch_sw.ElapsedMillis();

  FinalizeStats(&out, policy.deadline_ms);
  // Fan-out performs exactly what it charges.
  out.stats.charged_reads = out.stats.total_reads;
  out.stats.amortized_reads = out.stats.total_reads;
  return out;
}

Result<BatchResult> BatchEngine::ComputeBatchShared(
    const std::vector<Vec>& weights, size_t k, Phase2Method method,
    const ExecPolicy& policy) {
  BatchResult out;
  const size_t n = weights.size();
  out.items.resize(n);
  const bool use_cache = cache_.capacity() > 0;

  Stopwatch batch_sw;
  // One epoch for the whole batch: every group walks the same frozen
  // image, every result and cache insert is stamped with its version.
  const GirEngine::PinnedIndex pin = engine_->PinIndex();

  if (k == 0 || k > pin.flat->size()) {
    // Mirror the per-query status the fan-out path would report.
    for (BatchItem& item : out.items) {
      item.status = Status::InvalidArgument("k out of range");
    }
    out.stats.wall_ms = batch_sw.ElapsedMillis();
    FinalizeStats(&out, policy.deadline_ms);
    return out;
  }

  // Stage 1 — cache probes, in parallel; exact hits are answered here
  // and drop out of the compute set.
  std::vector<uint8_t> needs_compute(n, 0);
  pool_.ParallelFor(n, [&](size_t i) {
    BatchItem& item = out.items[i];
    Stopwatch sw;
    // Reject poisoned weights before any shared work: a NaN row would
    // otherwise ride along in a group's score matrix. Mirrors the
    // status ComputeGir reports on the fan-out path.
    Status valid = ValidateQueryWeights(VecView(weights[i]));
    if (!valid.ok()) {
      item.status = valid;
      item.latency_ms = sw.ElapsedMillis();
      return;
    }
    if (use_cache) {
      ShardedGirCache::Lookup hit = cache_.Probe(weights[i], k, pin.version);
      item.cache = hit.kind;
      if (hit.kind == ShardedGirCache::HitKind::kExact) {
        item.topk = std::move(hit.records);
        item.latency_ms = sw.ElapsedMillis();
        return;
      }
    }
    needs_compute[i] = 1;
    item.latency_ms = sw.ElapsedMillis();
  });

  // Stage 2 — dedupe exact twins (same weights, same k; the batch
  // shares one scoring function and method by construction). Twins are
  // found by sorting the candidate *indices* over the raw weight bytes
  // — bitwise equality, so -0.0/+0.0 stay distinct and NaN payloads
  // compare deterministically (numeric operator< would merge the
  // former and lose strict-weak-ordering on the latter), and no weight
  // vector is copied. The first occurrence in input order computes;
  // the rest replicate its item.
  std::vector<uint32_t> reps;
  std::vector<int64_t> dup_of(n, -1);
  {
    const size_t dim = engine_->dataset().dim();
    std::vector<uint32_t> order;
    order.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (needs_compute[i]) order.push_back(static_cast<uint32_t>(i));
    }
    const auto weight_bytes_cmp = [&](uint32_t a, uint32_t b) {
      return std::memcmp(weights[a].data(), weights[b].data(),
                         dim * sizeof(double));
    };
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      const int c = weight_bytes_cmp(a, b);
      return c != 0 ? c < 0 : a < b;  // ties: input order, rep first
    });
    for (size_t s = 0; s < order.size(); ++s) {
      if (s > 0 && weight_bytes_cmp(order[s - 1], order[s]) == 0) {
        dup_of[order[s]] = dup_of[order[s - 1]] >= 0
                               ? dup_of[order[s - 1]]
                               : static_cast<int64_t>(order[s - 1]);
      } else {
        reps.push_back(order[s]);
      }
    }
    std::sort(reps.begin(), reps.end());  // groups follow input order
  }

  // Stage 3 — partition representatives into shared-traversal groups
  // and run them across the pool: one RunBrsMulti walk per group, then
  // the unchanged Phase-2 pipeline per query on the group's thread.
  // Default partition: fixed-width chunks in input order. With
  // policy.group_of, a group boundary falls wherever the caller's
  // label changes (the admission former's archetype clusters), still
  // capped at the effective width so the score-matrix working set
  // stays bounded.
  const size_t width = std::max<size_t>(1, policy.group_width);
  std::vector<std::pair<uint32_t, uint32_t>> group_ranges;  // [begin, end)
  {
    size_t begin = 0;
    for (size_t r = 1; r <= reps.size(); ++r) {
      const bool label_break =
          r < reps.size() && !policy.group_of.empty() &&
          policy.group_of[reps[r]] != policy.group_of[reps[begin]];
      if (r == reps.size() || label_break || r - begin == width) {
        group_ranges.emplace_back(static_cast<uint32_t>(begin),
                                  static_cast<uint32_t>(r));
        begin = r;
      }
    }
  }
  const size_t num_groups = group_ranges.size();
  std::vector<BrsMultiStats> group_stats(num_groups);
  std::vector<uint64_t> group_phase2_reads(num_groups, 0);
  std::vector<uint64_t> group_retry_reads(num_groups, 0);
  pool_.ParallelFor(num_groups, [&](size_t g) {
    const size_t begin = group_ranges[g].first;
    const size_t end = group_ranges[g].second;
    const size_t m = end - begin;
    std::unique_ptr<BrsFrontierArena> arena = AcquireArena();
    arena->group.clear();
    for (size_t r = 0; r < m; ++r) {
      arena->group.push_back(
          BrsMultiQuery{VecView(weights[reps[begin + r]]), k});
    }
    std::vector<TopKResult>& topks = arena->results;
    BrsMultiOptions multi_options;
    multi_options.prefetch = policy.prefetch;
    Stopwatch traversal_sw;
    Status st = RunBrsMulti(*pin.flat, engine_->scoring(), arena->group,
                            arena.get(), &topks, &group_stats[g],
                            &arena->statuses, multi_options);
    const double traversal_ms = traversal_sw.ElapsedMillis();
    if (!st.ok()) {
      for (size_t r = 0; r < m; ++r) out.items[reps[begin + r]].status = st;
      ReleaseArena(std::move(arena));
      return;
    }
    for (size_t r = 0; r < m; ++r) {
      const size_t i = reps[begin + r];
      BatchItem& item = out.items[i];
      Stopwatch sw;
      Status qst = arena->statuses[r];
      TopKResult topk;
      if (qst.ok()) {
        topk = std::move(topks[r]);
      } else {
        // This query's page fetch faulted inside the shared walk; its
        // group mates already completed untouched. Retry it solo on the
        // same pinned epoch with backoff, inside the deadline budget —
        // then degrade to the terminal status, explicitly.
        while (qst.code() == StatusCode::kUnavailable &&
               item.retries < policy.max_retries) {
          const double backoff_ms =
              BackoffMs(policy.retry_backoff_ms, item.retries);
          if (policy.deadline_ms > 0.0 &&
              traversal_ms + sw.ElapsedMillis() + backoff_ms >=
                  policy.deadline_ms) {
            break;
          }
          BackoffSleep(backoff_ms);
          ++item.retries;
          Result<TopKResult> again =
              RunBrs(*pin.flat, engine_->scoring(), VecView(weights[i]), k);
          if (again.ok()) {
            topk = std::move(*again);
            // The solo retry's physical reads join the group's amortized
            // total (they were really performed, outside the shared walk).
            group_retry_reads[g] += topk.io.reads;
            qst = Status::Ok();
          } else {
            qst = again.status();
          }
        }
        if (!qst.ok()) {
          item.status = qst;
          item.latency_ms += traversal_ms + sw.ElapsedMillis();
          continue;
        }
      }
      const uint64_t topk_charged = topk.io.reads;
      IoStats before = DiskManager::ThreadStats();
      Result<GirComputation> gir = engine_->ComputeGirWithTopK(
          pin, weights[i], k, method, std::move(topk),
          traversal_ms / static_cast<double>(m));
      const uint64_t phase2_reads =
          (DiskManager::ThreadStats() - before).reads;
      group_phase2_reads[g] += phase2_reads;
      if (!gir.ok()) {
        item.status = gir.status();
        item.latency_ms += traversal_ms + sw.ElapsedMillis();
        continue;
      }
      item.topk = gir->topk.result;
      if (use_cache && options_.populate_cache) {
        cache_.Insert(k, gir->topk.result, gir->region,
                      gir->snapshot_version);
      }
      item.computed = std::move(*gir);
      // Charge what a solo run would have paid; the group amortization
      // is reported batch-level, not hidden in per-query accounting.
      item.reads = topk_charged + phase2_reads;
      // A grouped query's latency spans its whole group's shared
      // traversal plus its own Phase-2 tail.
      item.latency_ms += traversal_ms + sw.ElapsedMillis();
    }
    ReleaseArena(std::move(arena));
  });

  // Stage 4 — replicate the deduplicated twins from their
  // representatives (identical by determinism of the computation).
  for (size_t i = 0; i < n; ++i) {
    if (dup_of[i] < 0) continue;
    const BatchItem& rep = out.items[static_cast<size_t>(dup_of[i])];
    BatchItem& item = out.items[i];
    Stopwatch sw;
    item.status = rep.status;
    item.topk = rep.topk;
    item.computed = rep.computed;
    item.reads = rep.reads;  // charged as if computed; paid nothing
    item.latency_ms += sw.ElapsedMillis();
    if (rep.status.ok()) ++out.stats.duplicate_hits;
  }
  out.stats.wall_ms = batch_sw.ElapsedMillis();

  out.stats.shared_groups = num_groups;
  out.stats.grouped_queries = reps.size();
  out.stats.width_used = width;
  uint64_t amortized = 0;
  for (size_t g = 0; g < num_groups; ++g) {
    amortized += group_stats[g].unique_reads + group_phase2_reads[g] +
                 group_retry_reads[g];
    out.stats.prefetch_issued += group_stats[g].prefetch_issued;
    out.stats.prefetch_hits += group_stats[g].prefetch_hits;
    out.stats.prefetch_misses += group_stats[g].prefetch_misses;
  }
  FinalizeStats(&out, policy.deadline_ms);
  out.stats.charged_reads = out.stats.total_reads;
  out.stats.amortized_reads = amortized;
  return out;
}

std::unique_ptr<BrsFrontierArena> BatchEngine::AcquireArena() {
  std::lock_guard<std::mutex> lock(arena_mu_);
  if (arenas_.empty()) return std::make_unique<BrsFrontierArena>();
  std::unique_ptr<BrsFrontierArena> arena = std::move(arenas_.back());
  arenas_.pop_back();
  return arena;
}

void BatchEngine::ReleaseArena(std::unique_ptr<BrsFrontierArena> arena) {
  std::lock_guard<std::mutex> lock(arena_mu_);
  arenas_.push_back(std::move(arena));
}

Result<UpdateStats> BatchEngine::ApplyUpdates(const UpdateBatch& batch) {
  if (mutable_engine_ == nullptr) {
    return Status::FailedPrecondition(
        "BatchEngine was constructed over a read-only engine");
  }
  return mutable_engine_->ApplyUpdates(batch, &cache_);
}

}  // namespace gir
