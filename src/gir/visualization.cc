#include "gir/visualization.h"

#include <algorithm>
#include <cmath>

namespace gir {

std::vector<WeightRange> ProjectOntoRegion(const GirRegion& region,
                                           VecView q) {
  std::vector<WeightRange> out(region.dim());
  if (!region.Contains(q, 1e-12)) return out;
  for (size_t j = 0; j < region.dim(); ++j) {
    Vec dir(region.dim(), 0.0);
    dir[j] = 1.0;
    GirRegion::RaySpan span = region.ClipRay(q, dir);
    out[j].lo = q[j] + span.t_min;
    out[j].hi = q[j] + span.t_max;
  }
  return out;
}

std::vector<WeightRange> ComputeLirs(const GirRegion& region) {
  return ProjectOntoRegion(region, region.query());
}

double MahBox::Volume() const {
  double v = 1.0;
  for (size_t j = 0; j < lo.size(); ++j) v *= std::max(0.0, hi[j] - lo[j]);
  return v;
}

namespace {

// Whether the box [lo,hi] lies inside the region: for the linear
// constraint n·x >= 0 the worst box point is per-dimension min of
// n_j*lo_j and n_j*hi_j, so feasibility is a closed form.
double ConstraintSlack(const GirConstraint& c, const Vec& lo, const Vec& hi) {
  double s = 0.0;
  for (size_t j = 0; j < lo.size(); ++j) {
    s += std::min(c.normal[j] * lo[j], c.normal[j] * hi[j]);
  }
  return s;
}

}  // namespace

MahBox ComputeMah(const GirRegion& region, int passes) {
  const size_t d = region.dim();
  MahBox box;
  box.lo.assign(region.query().begin(), region.query().end());
  box.hi = box.lo;

  // Round-robin: for each face, compute the exact maximal expansion
  // keeping all constraints satisfied, and take a damped step (full
  // step on the final pass). Damping lets opposite faces share slack
  // instead of the first mover grabbing it all.
  for (int pass = 0; pass < passes; ++pass) {
    const double damp = pass + 1 == passes ? 1.0 : 0.5;
    for (size_t j = 0; j < d; ++j) {
      for (int side = 0; side < 2; ++side) {
        // side 0: push hi[j] up; side 1: push lo[j] down.
        double limit = side == 0 ? 1.0 - box.hi[j] : box.lo[j];
        for (const GirConstraint& c : region.constraints()) {
          double coef = c.normal[j];
          // Moving hi[j] by +t changes the slack by min-term only if
          // coef < 0 (for side 0); moving lo[j] by -t changes it if
          // coef > 0 (for side 1). Other directions only gain slack.
          double rate = side == 0 ? -std::min(coef, 0.0)
                                  : std::max(coef, 0.0);
          if (rate <= 0.0) continue;
          // Slack without dimension j's worst term, then re-add it as a
          // function of the moved face.
          double slack = ConstraintSlack(c, box.lo, box.hi);
          // slack decreases at `rate` per unit of movement.
          limit = std::min(limit, slack / rate);
        }
        limit = std::max(0.0, limit) * damp;
        if (side == 0) {
          box.hi[j] += limit;
        } else {
          box.lo[j] -= limit;
        }
      }
    }
  }
  // Numerical safety: clamp into the cube.
  for (size_t j = 0; j < d; ++j) {
    box.lo[j] = std::clamp(box.lo[j], 0.0, 1.0);
    box.hi[j] = std::clamp(box.hi[j], box.lo[j], 1.0);
  }
  return box;
}

}  // namespace gir
