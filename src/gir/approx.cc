#include "gir/approx.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace gir {

double MinScoring::Score(VecView p, VecView q) const {
  double best = 1e300;
  for (size_t j = 0; j < p.size(); ++j) {
    best = std::min(best, q[j] * p[j]);
  }
  return best;
}

Result<std::vector<RecordId>> GeneralTopK(const RTree& tree,
                                          const GeneralScoringFunction& fn,
                                          VecView q, size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  const Dataset& data = tree.dataset();
  struct Entry {
    double key;
    bool is_node;
    int32_t id;
  };
  struct Less {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.key != b.key) return a.key < b.key;
      if (a.is_node != b.is_node) return a.is_node;
      return a.id > b.id;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Less> heap;
  if (tree.root() != kInvalidPage) {
    const RTreeNode& root = tree.PeekNode(tree.root());
    heap.push(Entry{fn.MaxScore(root.ComputeMbb(data.dim()), q), true,
                    static_cast<int32_t>(tree.root())});
  }
  std::vector<RecordId> out;
  while (!heap.empty() && out.size() < k) {
    Entry top = heap.top();
    heap.pop();
    if (!top.is_node) {
      out.push_back(top.id);
      continue;
    }
    const RTreeNode& node = tree.ReadNode(static_cast<PageId>(top.id));
    for (const RTreeEntry& e : node.entries) {
      if (node.is_leaf) {
        heap.push(Entry{fn.Score(data.Get(e.child), q), false, e.child});
      } else {
        heap.push(Entry{fn.MaxScore(e.mbb, q), true, e.child});
      }
    }
  }
  return out;
}

Result<ApproxGir> ApproxGir::Compute(const RTree& tree,
                                     const GeneralScoringFunction& fn,
                                     VecView q, size_t k,
                                     const ApproxGirOptions& options) {
  const size_t d = tree.dataset().dim();
  if (q.size() != d) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  ApproxGir out(&tree, &fn, Vec(q.begin(), q.end()), k);
  Result<std::vector<RecordId>> base = GeneralTopK(tree, fn, q, k);
  if (!base.ok()) return base.status();
  out.result_ = std::move(base).value();

  Rng rng(options.seed);
  // Boundary sampling: along each random direction, find the largest
  // step that keeps the (ordered) result, by bisection against the
  // exact oracle. t_hi starts at the cube exit distance.
  double min_dist = 1e300;
  double sum_dist = 0.0;
  size_t found = 0;
  for (size_t ray = 0; ray < options.rays; ++ray) {
    Vec dir(d);
    double norm = 0.0;
    for (size_t j = 0; j < d; ++j) {
      dir[j] = rng.Gaussian(0.0, 1.0);
      norm += dir[j] * dir[j];
    }
    norm = std::sqrt(norm);
    if (norm < 1e-12) continue;
    for (double& x : dir) x /= norm;
    // Cube exit distance along dir.
    double t_exit = 1e300;
    for (size_t j = 0; j < d; ++j) {
      if (dir[j] > 0) t_exit = std::min(t_exit, (1.0 - q[j]) / dir[j]);
      if (dir[j] < 0) t_exit = std::min(t_exit, -q[j] / dir[j]);
    }
    if (t_exit <= 0) continue;
    double lo = 0.0;
    double hi = t_exit;
    if (out.PreservedAt(AddScaled(q, dir, t_exit))) {
      // Result preserved all the way to the wall: boundary = wall.
      lo = t_exit;
    } else {
      for (size_t it = 0; it < options.bisection_steps; ++it) {
        double mid = 0.5 * (lo + hi);
        if (out.PreservedAt(AddScaled(q, dir, mid))) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
    }
    out.boundary_.push_back(AddScaled(q, dir, lo));
    min_dist = std::min(min_dist, lo);
    sum_dist += lo;
    ++found;
  }
  if (found > 0) {
    out.min_distance_ = min_dist;
    out.mean_distance_ = sum_dist / static_cast<double>(found);
  }

  // Preserved-probability estimate (the LIK / volume-ratio measure).
  size_t hits = 0;
  Vec probe(d);
  for (size_t s = 0; s < options.probability_samples; ++s) {
    for (size_t j = 0; j < d; ++j) probe[j] = rng.Uniform();
    if (out.PreservedAt(probe)) ++hits;
  }
  out.preserved_probability_ =
      options.probability_samples == 0
          ? 0.0
          : static_cast<double>(hits) /
                static_cast<double>(options.probability_samples);
  return out;
}

bool ApproxGir::PreservedAt(VecView q2) const {
  Result<std::vector<RecordId>> now = GeneralTopK(*tree_, *fn_, q2, k_);
  return now.ok() && now.value() == result_;
}

}  // namespace gir
