#ifndef GIR_GIR_SP_H_
#define GIR_GIR_SP_H_

#include "gir/gir_region.h"
#include "storage/io_stats.h"
#include "topk/brs.h"

namespace gir {

// What a Phase-2 method reports back to the engine/benchmarks.
struct Phase2Output {
  // Non-result records whose half-spaces were added to the region
  // (|SL| for SP, |SL ∩ CH| for CP, #critical for FP).
  size_t candidates = 0;
  // FP only: live facets of the incident star when the run finished
  // (the quantity of paper Figure 8(b)).
  size_t star_facets = 0;
  IoStats io;
};

// Skyline Pruning (paper §5.1): Phase 2 considers exactly the skyline
// SL of D \ R, computed by the BBS continuation from the retained BRS
// heap. Valid for every monotone scoring function.
Phase2Output RunSpPhase2(const RTree& tree, const ScoringFunction& scoring,
                         VecView weights, const TopKResult& topk,
                         GirRegion* region);

// Frozen-tree variant; bit-identical constraints and IoStats.
Phase2Output RunSpPhase2(const FlatRTree& tree, const ScoringFunction& scoring,
                         VecView weights, const TopKResult& topk,
                         GirRegion* region);

}  // namespace gir

#endif  // GIR_GIR_SP_H_
