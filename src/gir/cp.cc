#include "gir/cp.h"

#include "geom/convex_hull.h"
#include "geom/hull2d.h"
#include "skyline/bbs.h"

namespace gir {

namespace {

template <typename Tree>
Phase2Output RunCpImpl(const Tree& tree, const ScoringFunction& scoring,
                       VecView weights, const TopKResult& topk,
                       GirRegion* region) {
  const Dataset& data = tree.dataset();
  SkylineResult sl = ContinueSkylineFromBrs(tree, scoring, weights, topk);

  // Records that survive the hull filter.
  std::vector<RecordId> kept;
  if (sl.skyline.size() <= data.dim() + 1) {
    // Too few records to form a full-dimensional hull: all are extreme.
    kept = sl.skyline;
  } else {
    std::vector<Vec> pts;
    pts.reserve(sl.skyline.size());
    for (RecordId id : sl.skyline) {
      pts.push_back(scoring.Transform(data.Get(id)));
    }
    if (data.dim() == 2) {
      for (int idx : ConvexHull2D(pts)) kept.push_back(sl.skyline[idx]);
    } else {
      Result<ConvexHull> hull = ConvexHull::Build(pts);
      if (hull.ok()) {
        for (int idx : hull->vertex_indices()) {
          kept.push_back(sl.skyline[idx]);
        }
      } else {
        // Degenerate skyline (e.g. all records on a hyperplane): fall
        // back to SP behaviour — correct, just less pruning.
        kept = sl.skyline;
      }
    }
  }

  const RecordId pk = topk.result.back();
  Vec gk = scoring.Transform(data.Get(pk));
  ConstraintProvenance prov;
  prov.kind = ConstraintProvenance::Kind::kOvertake;
  prov.position = static_cast<int>(topk.result.size()) - 1;
  for (RecordId p : kept) {
    prov.challenger = p;
    region->AddConstraint(Sub(gk, scoring.Transform(data.Get(p))), prov);
  }
  Phase2Output out;
  out.candidates = kept.size();
  out.io = sl.io;
  return out;
}

}  // namespace

Phase2Output RunCpPhase2(const RTree& tree, const ScoringFunction& scoring,
                         VecView weights, const TopKResult& topk,
                         GirRegion* region) {
  return RunCpImpl(tree, scoring, weights, topk, region);
}

Phase2Output RunCpPhase2(const FlatRTree& tree, const ScoringFunction& scoring,
                         VecView weights, const TopKResult& topk,
                         GirRegion* region) {
  return RunCpImpl(tree, scoring, weights, topk, region);
}

}  // namespace gir
