#include "gir/fpnd.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "common/rng.h"
#include "skyline/dominance.h"
#include "topk/tree_kernels.h"

namespace gir {

IncidentStar::IncidentStar(Vec apex, double eps)
    : eps_(eps), dim_(apex.size()) {
  const Vec a = apex;  // keep a stable copy; points_ reallocates below
  points_.reserve(dim_ + 2);
  points_.push_back(std::move(apex));
  external_ids_.push_back(-1);
  // Dummy seeds: apex - c_i e_i, dominated by the apex, spanning a
  // full-dimensional simplex together with it.
  for (size_t i = 0; i < dim_; ++i) {
    Vec d = a;
    d[i] -= std::max(a[i], 0.5);
    points_.push_back(std::move(d));
    external_ids_.push_back(-1);
  }
  interior_.assign(dim_, 0.0);
  for (const Vec& p : points_) {
    for (size_t j = 0; j < dim_; ++j) interior_[j] += p[j];
  }
  for (double& x : interior_) x /= static_cast<double>(points_.size());

  // Initial star: the d simplex facets containing the apex.
  for (size_t omit = 1; omit <= dim_; ++omit) {
    StarFacet f;
    f.vertices.push_back(0);
    for (size_t i = 1; i <= dim_; ++i) {
      if (i != omit) f.vertices.push_back(static_cast<int>(i));
    }
    Result<Hyperplane> plane =
        FitHyperplane(points_, f.vertices, interior_);
    // The dummy simplex is non-degenerate by construction.
    assert(plane.ok());
    f.plane = std::move(plane).value();
    facets_.push_back(std::move(f));
    ++live_count_;
    RegisterFacet(static_cast<int>(facets_.size()) - 1);
  }
}

std::vector<int> IncidentStar::RidgeKey(const StarFacet& f,
                                        int omit_vertex) const {
  std::vector<int> key;
  key.reserve(dim_ - 2);
  for (int v : f.vertices) {
    if (v != 0 && v != omit_vertex) key.push_back(v);
  }
  std::sort(key.begin(), key.end());
  return key;
}

void IncidentStar::RegisterFacet(int facet_id) {
  const StarFacet& f = facets_[facet_id];
  for (int v : f.vertices) {
    if (v == 0) continue;
    ridges_[RidgeKey(f, v)].push_back(facet_id);
  }
}

void IncidentStar::UnregisterFacet(int facet_id) {
  const StarFacet& f = facets_[facet_id];
  for (int v : f.vertices) {
    if (v == 0) continue;
    auto it = ridges_.find(RidgeKey(f, v));
    if (it == ridges_.end()) continue;
    auto& vec = it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), facet_id), vec.end());
    if (vec.empty()) ridges_.erase(it);
  }
}

Result<bool> IncidentStar::Insert(VecView p, int external_id) {
  // 1. Visibility scan over the (small) star.
  std::vector<int> visible;
  for (size_t f = 0; f < facets_.size(); ++f) {
    if (!facets_[f].alive) continue;
    if (facets_[f].plane.Evaluate(p) > eps_) {
      visible.push_back(static_cast<int>(f));
    }
  }
  if (visible.empty()) return false;
  std::set<int> visible_set(visible.begin(), visible.end());

  // 2. Horizon ridges containing the apex: shared between a visible and
  // a non-visible *incident* facet.
  struct Horizon {
    std::vector<int> ridge_vertices;  // includes the apex
  };
  std::vector<Horizon> horizon;
  for (int fid : visible) {
    const StarFacet& f = facets_[fid];
    for (int v : f.vertices) {
      if (v == 0) continue;
      auto it = ridges_.find(RidgeKey(f, v));
      assert(it != ridges_.end() && it->second.size() == 2);
      int other = it->second[0] == fid ? it->second[1] : it->second[0];
      if (visible_set.count(other)) continue;  // interior ridge
      Horizon h;
      h.ridge_vertices.push_back(0);
      for (int u : f.vertices) {
        if (u != 0 && u != v) h.ridge_vertices.push_back(u);
      }
      horizon.push_back(std::move(h));
    }
  }
  if (horizon.empty()) {
    // Would mean the apex stops being a hull vertex — impossible for
    // points with lower score than the apex; numerical pathology only.
    return Status::Internal("incident star lost its apex");
  }

  // 3. Fit all new facet planes BEFORE mutating anything, so a
  // degenerate fit leaves the star untouched.
  const int p_id = static_cast<int>(points_.size());
  points_.emplace_back(p.begin(), p.end());
  external_ids_.push_back(external_id);
  std::vector<StarFacet> fresh;
  for (const Horizon& h : horizon) {
    StarFacet nf;
    nf.vertices = h.ridge_vertices;
    nf.vertices.push_back(p_id);
    Result<Hyperplane> plane =
        FitHyperplane(points_, nf.vertices, interior_);
    if (!plane.ok()) {
      points_.pop_back();
      external_ids_.pop_back();
      return Status::FailedPrecondition("degenerate star facet fit");
    }
    nf.plane = std::move(plane).value();
    fresh.push_back(std::move(nf));
  }

  // 4. Commit: retire visible facets, attach the new ones.
  for (int fid : visible) {
    UnregisterFacet(fid);
    facets_[fid].alive = false;
    --live_count_;
  }
  for (StarFacet& nf : fresh) {
    facets_.push_back(std::move(nf));
    ++live_count_;
    RegisterFacet(static_cast<int>(facets_.size()) - 1);
  }
  return true;
}

std::vector<int> IncidentStar::CriticalRecordIds() const {
  std::set<int> ids;
  for (const StarFacet& f : facets_) {
    if (!f.alive) continue;
    for (int v : f.vertices) {
      if (external_ids_[v] >= 0) ids.insert(external_ids_[v]);
    }
  }
  return std::vector<int>(ids.begin(), ids.end());
}

double MaxDotTransformedBox(const ScoringFunction& scoring, const Mbb& box,
                            VecView normal) {
  double s = 0.0;
  for (size_t j = 0; j < normal.size(); ++j) {
    double glo = scoring.TransformDim(j, box.lo[j]);
    double ghi = scoring.TransformDim(j, box.hi[j]);
    s += std::max(normal[j] * glo, normal[j] * ghi);
  }
  return s;
}

namespace {

// Inserts a point into the star with a joggle-retry ladder; if every
// retry hits a degenerate fit, falls back to emitting the point's
// constraint directly (always sound, possibly redundant).
void InsertWithFallback(IncidentStar& star, const ScoringFunction& scoring,
                        const Dataset& data, RecordId id, Rng& joggle_rng,
                        GirRegion* region, const Vec& gk, int position) {
  Vec g = scoring.Transform(data.Get(id));
  Result<bool> r = star.Insert(g, id);
  for (int attempt = 1; attempt < 3 && !r.ok(); ++attempt) {
    Vec candidate = g;
    for (double& x : candidate) {
      x += joggle_rng.Uniform(-1e-11, 1e-11) * (1 << attempt);
    }
    r = star.Insert(candidate, id);
  }
  if (r.ok()) return;
  ConstraintProvenance prov;
  prov.kind = ConstraintProvenance::Kind::kOvertake;
  prov.position = position;
  prov.challenger = id;
  region->AddConstraint(Sub(gk, g), prov);
}

template <typename Tree>
Result<Phase2Output> RunFpNdImpl(const Tree& tree,
                                 const ScoringFunction& scoring,
                                 VecView weights, const TopKResult& topk,
                                 GirRegion* region,
                                 const FpOptions& options) {
  const Dataset& data = tree.dataset();
  const size_t dim = data.dim();
  if (topk.result.empty()) {
    return Status::InvalidArgument("empty top-k result");
  }
  IoStats before = DiskManager::ThreadStats();
  const RecordId pk = topk.result.back();
  const int position = static_cast<int>(topk.result.size()) - 1;
  VecView pk_raw = data.Get(pk);
  Vec gk = scoring.Transform(pk_raw);
  IncidentStar star(gk, options.eps);
  Rng joggle_rng(0xFACE7);

  // Footnote-7 tightening: vertices of the interim Phase-1 region
  // (its constraints are already in `region`). A record p whose
  // constraint (g_k - g(p))·v >= 0 holds at every vertex v is redundant
  // inside the final intersection and can be skipped outright.
  std::vector<Vec> cone_vertices;
  if (options.phase1_tightening && !region->constraints().empty()) {
    Result<IntersectionResult> cone =
        IntersectHalfspaces(region->AsHalfspaces(), region->query());
    if (cone.ok() && !cone->polytope.empty()) {
      cone_vertices = cone->polytope.vertices();
      // The cone's interior point warm-starts the final region
      // materialization: the Phase-2 constraints usually leave it
      // feasible, so the engine's intersection skips its LP.
      region->SeedInteriorWitness(cone->interior);
    }
  }
  auto record_redundant_in_cone = [&](const Vec& g) {
    if (cone_vertices.empty()) return false;
    for (const Vec& v : cone_vertices) {
      if (Dot(gk, v) < Dot(g, v)) return false;
    }
    return true;
  };
  auto box_redundant_in_cone = [&](const Mbb& box) {
    if (cone_vertices.empty()) return false;
    for (const Vec& v : cone_vertices) {
      if (MaxDotTransformedBox(scoring, box, v) > Dot(gk, v)) return false;
    }
    return true;
  };

  // --- First step: the encountered set T (paper §6.3.1). ---
  std::vector<RecordId> order;
  order.reserve(topk.encountered.size());
  std::vector<bool> taken(topk.encountered.size(), false);
  if (options.max_coordinate_seeding) {
    // Process the per-dimension maxima of T first.
    for (size_t j = 0; j < dim; ++j) {
      int best = -1;
      double best_val = -1e300;
      for (size_t i = 0; i < topk.encountered.size(); ++i) {
        if (taken[i]) continue;
        double v = data.Get(topk.encountered[i])[j];
        if (v > best_val) {
          best_val = v;
          best = static_cast<int>(i);
        }
      }
      if (best >= 0) {
        taken[best] = true;
        order.push_back(topk.encountered[best]);
      }
    }
  }
  for (size_t i = 0; i < topk.encountered.size(); ++i) {
    if (!taken[i]) order.push_back(topk.encountered[i]);
  }
  auto process_record = [&](RecordId id) {
    if (Dominates(pk_raw, data.Get(id))) return;  // paper's pre-filter
    if (options.phase1_tightening &&
        record_redundant_in_cone(scoring.Transform(data.Get(id)))) {
      return;  // footnote 7: redundant inside the Phase-1 cone
    }
    InsertWithFallback(star, scoring, data, id, joggle_rng, region, gk,
                       position);
  };
  for (RecordId id : order) process_record(id);

  // --- Second step: refine from disk via the retained BRS heap. ---
  std::vector<PendingNode> heap = topk.pending;
  PendingNodeLess less;
  std::make_heap(heap.begin(), heap.end(), less);
  ScoreBuffer buf;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), less);
    PendingNode top = std::move(heap.back());
    heap.pop_back();
    bool prunable = star.BoxBelowAllFacets([&](const Vec& normal) {
      return MaxDotTransformedBox(scoring, top.mbb, normal);
    });
    if (prunable || box_redundant_in_cone(top.mbb)) continue;
    decltype(auto) node = tree.ReadNode(top.page);
    const size_t count = NodeEntryCount(node);
    if (NodeIsLeaf(node)) {
      for (size_t i = 0; i < count; ++i) {
        process_record(NodeChild(node, i));
      }
    } else {
      ComputeEntryScores(scoring, data, node, weights, &buf);
      for (size_t i = 0; i < count; ++i) {
        PendingNode pn;
        pn.maxscore = buf.scores[i];
        pn.page = static_cast<PageId>(NodeChild(node, i));
        pn.mbb = NodeEntryMbb(node, i);
        heap.push_back(std::move(pn));
        std::push_heap(heap.begin(), heap.end(), less);
      }
    }
  }

  // --- Emit one half-space per critical record. ---
  std::vector<int> critical = star.CriticalRecordIds();
  ConstraintProvenance prov;
  prov.kind = ConstraintProvenance::Kind::kOvertake;
  prov.position = position;
  for (int id : critical) {
    prov.challenger = id;
    region->AddConstraint(
        Sub(gk, scoring.Transform(data.Get(static_cast<RecordId>(id)))),
        prov);
  }
  Phase2Output out;
  out.candidates = critical.size();
  out.star_facets = star.live_facet_count();
  out.io = DiskManager::ThreadStats() - before;
  return out;
}

}  // namespace

Result<Phase2Output> RunFpNdPhase2(const RTree& tree,
                                   const ScoringFunction& scoring,
                                   VecView weights, const TopKResult& topk,
                                   GirRegion* region,
                                   const FpOptions& options) {
  return RunFpNdImpl(tree, scoring, weights, topk, region, options);
}

Result<Phase2Output> RunFpNdPhase2(const FlatRTree& tree,
                                   const ScoringFunction& scoring,
                                   VecView weights, const TopKResult& topk,
                                   GirRegion* region,
                                   const FpOptions& options) {
  return RunFpNdImpl(tree, scoring, weights, topk, region, options);
}

}  // namespace gir
