#include "gir/engine.h"

#include <sys/stat.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "common/stopwatch.h"
#include "dataset/csv.h"
#include "gir/brute_force.h"
#include "gir/cp.h"
#include "gir/fp2d.h"
#include "gir/gir_star.h"
#include "gir/phase1.h"
#include "gir/sharded_cache.h"
#include "gir/sp.h"
#include "storage/snapshot_store.h"
#include "topk/tree_kernels.h"

namespace gir {

Result<Phase2Method> ParsePhase2Method(const std::string& name) {
  if (name == "SP") return Phase2Method::kSP;
  if (name == "CP") return Phase2Method::kCP;
  if (name == "FP") return Phase2Method::kFP;
  if (name == "BF" || name == "BruteForce") return Phase2Method::kBruteForce;
  return Status::InvalidArgument("unknown Phase-2 method: " + name);
}

Status ValidateQueryWeights(VecView weights) {
  for (size_t j = 0; j < weights.size(); ++j) {
    if (!std::isfinite(weights[j])) {
      return Status::InvalidArgument("non-finite query weight at dimension " +
                                     std::to_string(j));
    }
  }
  return Status::Ok();
}

std::string Phase2MethodName(Phase2Method method) {
  switch (method) {
    case Phase2Method::kSP:
      return "SP";
    case Phase2Method::kCP:
      return "CP";
    case Phase2Method::kFP:
      return "FP";
    case Phase2Method::kBruteForce:
      return "BF";
  }
  return "?";
}

GirEngine::GirEngine(const Dataset* dataset, Dataset* mutable_dataset,
                     DiskManager* disk,
                     std::unique_ptr<ScoringFunction> scoring,
                     const GirEngineOptions& options)
    : dataset_(dataset),
      mutable_dataset_(mutable_dataset),
      disk_(disk),
      scoring_(std::move(scoring)),
      options_(options),
      tree_(RTree::BulkLoad(dataset, disk)) {
  // Epoch 0. A read-only engine's image reads the caller's dataset
  // directly (nothing can mutate it through this engine); an updatable
  // engine's must not alias the mutable master — an ApplyUpdates append
  // can reallocate the master's storage under an in-flight epoch-0
  // reader — so it owns a copy, like every later epoch.
  auto snap = std::make_shared<Snapshot>();
  snap->dataset =
      mutable_dataset_ == nullptr
          ? std::shared_ptr<const Dataset>(dataset_, [](const Dataset*) {})
          : std::make_shared<const Dataset>(*dataset_);
  snap->flat = FlatRTree::Freeze(*tree_, snap->dataset.get());
  snap->version = 0;
  snapshot_ = std::move(snap);
}

GirEngine::GirEngine(std::unique_ptr<Dataset> owned, RTree tree,
                     uint64_t version, DiskManager* disk,
                     std::unique_ptr<ScoringFunction> scoring,
                     const GirEngineOptions& options)
    : owned_dataset_(std::move(owned)),
      dataset_(owned_dataset_.get()),
      mutable_dataset_(owned_dataset_.get()),
      disk_(disk),
      scoring_(std::move(scoring)),
      options_(options),
      tree_(std::move(tree)) {
  // Publish the recovered epoch exactly like a post-update refreeze:
  // an immutable dataset image plus a flat arena frozen from the
  // restored master tree, stamped with the recovered version.
  auto snap = std::make_shared<Snapshot>();
  snap->dataset = std::make_shared<const Dataset>(*dataset_);
  snap->flat = FlatRTree::Freeze(*tree_, snap->dataset.get());
  snap->version = version;
  snapshot_ = std::move(snap);
  version_.store(version, std::memory_order_release);
}

GirEngine::GirEngine(std::shared_ptr<const Dataset> dataset, FlatRTree flat,
                     uint64_t version, DiskManager* disk,
                     std::unique_ptr<ScoringFunction> scoring,
                     const GirEngineOptions& options)
    : dataset_(nullptr),
      disk_(disk),
      scoring_(std::move(scoring)),
      options_(options) {
  auto snap = std::make_shared<Snapshot>();
  snap->dataset = std::move(dataset);
  snap->flat = std::move(flat);
  snap->version = version;
  snapshot_ = std::move(snap);
  version_.store(version, std::memory_order_release);
}

namespace {

// One arena epoch, ready to publish: the mapped file, a heap dataset
// image rebuilt from its rows, and a FlatRTree whose planes point
// straight into the mapping. Shared by Open(kArena) and AdvanceToArena.
struct ArenaEpoch {
  std::shared_ptr<const Dataset> dataset;
  FlatRTree flat;
  uint64_t version = 0;
};

Result<ArenaEpoch> LoadArenaEpoch(std::shared_ptr<const ArenaFile> arena,
                                  DiskManager* disk) {
  Result<std::unique_ptr<Dataset>> dataset = arena->BuildDataset();
  if (!dataset.ok()) return dataset.status();
  std::shared_ptr<const Dataset> ds(std::move(*dataset));
  const uint64_t version = arena->version();
  Result<FlatRTree> flat =
      FlatRTree::FromArena(std::move(arena), ds.get(), disk);
  if (!flat.ok()) return flat.status();
  ArenaEpoch epoch;
  epoch.dataset = std::move(ds);
  epoch.flat = std::move(*flat);
  epoch.version = version;
  return epoch;
}

Result<ArenaEpoch> LoadArenaEpoch(const std::string& path, DiskManager* disk) {
  Result<std::shared_ptr<const ArenaFile>> arena = ArenaFile::Open(path);
  if (!arena.ok()) return arena.status();
  return LoadArenaEpoch(std::move(*arena), disk);
}

bool IsDirectory(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

}  // namespace

Result<std::unique_ptr<GirEngine>> GirEngine::Open(EngineConfig config) {
  if (config.disk == nullptr) {
    return Status::InvalidArgument("EngineConfig needs a DiskManager");
  }
  if (config.scoring == nullptr) {
    return Status::InvalidArgument("EngineConfig needs a scoring function");
  }
  if ((config.source == EngineConfig::Source::kCsv ||
       config.source == EngineConfig::Source::kSnapshotDir ||
       config.source == EngineConfig::Source::kArena) &&
      config.path.empty()) {
    // Fail fast and by name: an empty path would otherwise surface as a
    // confusing NotFound against the working directory.
    return Status::InvalidArgument("EngineConfig file source needs a path");
  }
  if (!config.wal_dir.empty() &&
      config.source == EngineConfig::Source::kDataset) {
    return Status::InvalidArgument(
        "a WAL needs an updatable engine; kDataset (const) cannot log "
        "updates");
  }
  switch (config.source) {
    case EngineConfig::Source::kDataset: {
      if (config.dataset == nullptr) {
        return Status::InvalidArgument("kDataset source needs a dataset");
      }
      return std::unique_ptr<GirEngine>(
          new GirEngine(config.dataset, nullptr, config.disk,
                        std::move(config.scoring), config.options));
    }
    case EngineConfig::Source::kMutableDataset: {
      if (config.mutable_dataset == nullptr) {
        return Status::InvalidArgument(
            "kMutableDataset source needs a mutable dataset");
      }
      std::unique_ptr<GirEngine> engine(new GirEngine(
          config.mutable_dataset, config.mutable_dataset, config.disk,
          std::move(config.scoring), config.options));
      if (!config.wal_dir.empty()) {
        // Caller-supplied dataset: nothing to replay against (the log's
        // history need not match it); start logging at the current
        // epoch.
        Status attached = engine->AttachWal(config, /*replay=*/false);
        if (!attached.ok()) return attached;
      }
      return engine;
    }
    case EngineConfig::Source::kCsv: {
      Result<Dataset> loaded = LoadCsvDataset(config.path);
      if (!loaded.ok()) return loaded.status();
      auto owned = std::make_unique<Dataset>(std::move(*loaded));
      std::unique_ptr<GirEngine> engine(
          new GirEngine(owned.get(), owned.get(), config.disk,
                        std::move(config.scoring), config.options));
      engine->owned_dataset_ = std::move(owned);
      if (!config.wal_dir.empty()) {
        Status attached = engine->AttachWal(config, /*replay=*/false);
        if (!attached.ok()) return attached;
      }
      return engine;
    }
    case EngineConfig::Source::kSnapshotDir: {
      SnapshotStore store(config.path);
      Result<SnapshotStore::Recovered> rec = store.RecoverLatest(config.disk);
      if (!rec.ok()) return rec.status();
      std::unique_ptr<GirEngine> engine(new GirEngine(
          std::move(rec->dataset), std::move(*rec->tree), rec->version,
          config.disk, std::move(config.scoring), config.options));
      if (!config.wal_dir.empty()) {
        // Two-phase recovery: the snapshot restored the newest durable
        // epoch; now re-apply every committed WAL batch past it.
        Status attached = engine->AttachWal(config, /*replay=*/true);
        if (!attached.ok()) return attached;
      }
      return engine;
    }
    case EngineConfig::Source::kArena: {
      Result<std::shared_ptr<const ArenaFile>> arena =
          Status::Internal("unreachable");
      if (IsDirectory(config.path)) {
        // Directory source: the pick hands back the winner's validated
        // mapping, so the engine builds over it without a second
        // open-and-checksum pass.
        SnapshotStore store(config.path);
        Result<SnapshotStore::ArenaPick> pick = store.RecoverLatestArena();
        if (!pick.ok()) return pick.status();
        arena = std::move(pick->file);
      } else {
        arena = ArenaFile::Open(config.path);
      }
      if (!arena.ok()) return arena.status();

      if (!config.wal_dir.empty()) {
        // Two-phase recovery, arena flavour: a committed WAL tail past
        // the arena epoch forces the updatable rebuild path — replayed
        // batches mutate a master rebuilt from the arena rows. Results
        // are identical to the pre-crash engine (the update-vs-rebuild
        // bit-identity property); with no tail the zero-copy mmap fast
        // path below still applies.
        WalStore probe(config.wal_dir, config.wal_injector);
        Result<WalStore::ReplayLog> log =
            probe.ReadCommitted((*arena)->version());
        if (!log.ok()) return log.status();
        if (!log->records.empty()) {
          Result<std::unique_ptr<Dataset>> ds = (*arena)->BuildDataset();
          if (!ds.ok()) return ds.status();
          const uint64_t base_version = (*arena)->version();
          RTree tree = RTree::BulkLoad(ds->get(), config.disk);
          std::unique_ptr<GirEngine> engine(new GirEngine(
              std::move(*ds), std::move(tree), base_version, config.disk,
              std::move(config.scoring), config.options));
          Status attached = engine->AttachWal(config, /*replay=*/true);
          if (!attached.ok()) return attached;
          return engine;
        }
      }

      Result<ArenaEpoch> epoch = LoadArenaEpoch(std::move(*arena), config.disk);
      if (!epoch.ok()) return epoch.status();
      std::unique_ptr<GirEngine> engine(new GirEngine(
          std::move(epoch->dataset), std::move(epoch->flat), epoch->version,
          config.disk, std::move(config.scoring), config.options));
      if (!config.wal_dir.empty()) {
        // Read-only mmap engine: expose the store (for delta shipping /
        // inspection) but no writer — arena engines take no updates.
        engine->wal_store_ = std::make_unique<WalStore>(config.wal_dir,
                                                        config.wal_injector);
        engine->wal_recovery_.recovered_epoch = epoch->version;
        engine->wal_recovery_.replayed_to = epoch->version;
      }
      return engine;
    }
  }
  return Status::InvalidArgument("unknown EngineConfig source");
}

Status GirEngine::AttachWal(const EngineConfig& config, bool replay) {
  wal_store_ =
      std::make_unique<WalStore>(config.wal_dir, config.wal_injector);
  const uint64_t dim = dataset().dim();
  wal_recovery_.recovered_epoch = dataset_version();
  wal_recovery_.replayed_to = dataset_version();
  if (replay) {
    Result<WalStore::ReplayLog> log =
        wal_store_->ReadCommitted(dataset_version());
    if (!log.ok()) return log.status();
    if (log->wal_dim != 0 && log->wal_dim != dim) {
      return Status::DataLoss("wal dimension " + std::to_string(log->wal_dim) +
                              " does not match dataset dimension " +
                              std::to_string(dim));
    }
    wal_recovery_.overlap_skipped = log->overlap_skipped;
    wal_recovery_.torn_truncated = log->torn_truncated;
    wal_recovery_.gap_dropped = log->gap_dropped;
    // The scan only *logically* cut the damage; make the disk match
    // before the writer opens. Leaving a torn tail in an older segment
    // would end the NEXT recovery's scan early, hiding batches this
    // engine is about to acknowledge into a newer segment — and the
    // writer's O_TRUNC open would then destroy them. Stale higher-base
    // segments from an abandoned timeline are removed the same way so
    // a later replay can never interleave their records.
    Result<WalStore::SanitizeStats> cleaned = wal_store_->Sanitize(*log);
    if (!cleaned.ok()) return cleaned.status();
    wal_recovery_.segments_truncated = cleaned->truncated_segments;
    wal_recovery_.segments_removed = cleaned->removed_segments;
    for (const WalStore::ReplayRecord& rec : log->records) {
      // Replay repeats the exact pre-crash mutation sequence — same
      // batches, same order, same epoch stamps — so the resulting
      // master (and its refrozen snapshots) is bit-identical to the
      // engine that originally acknowledged them. No lock: the engine
      // is not published yet.
      Result<UpdateStats> applied =
          ApplyUpdatesLocked(rec.batch, nullptr, /*log_to_wal=*/false);
      if (!applied.ok()) {
        return Status::DataLoss(
            "wal replay failed at epoch " + std::to_string(rec.epoch) + ": " +
            applied.status().message());
      }
      ++wal_recovery_.replayed_batches;
    }
    wal_recovery_.replayed_to = dataset_version();
  }
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(
      wal_store_.get(), dataset_version(), dim, config.wal);
  if (!writer.ok()) return writer.status();
  wal_ = std::move(*writer);
  return Status::Ok();
}

Result<GirEngine::CheckpointStats> GirEngine::Checkpoint(SnapshotStore* store) {
  if (store == nullptr) {
    return Status::InvalidArgument("Checkpoint needs a SnapshotStore");
  }
  std::lock_guard<std::mutex> lock(update_mu_);
  CheckpointStats out;
  const std::shared_ptr<const Snapshot> snap = LoadSnapshot();
  out.version = snap->version;
  Result<SnapshotStore::WriteStats> wrote =
      store->WriteArena(snap->flat, snap->version);
  if (!wrote.ok()) return wrote.status();
  out.arena_path = wrote->path;
  out.arena_bytes = wrote->bytes;
  if (wal_ != nullptr) {
    // Only a checkpoint that *validates* may shrink the log: an
    // injected (or real) torn publish returns Ok above exactly like a
    // crash would, and truncating against it would widen the data-loss
    // window the WAL exists to close.
    if (ArenaFile::Open(wrote->path).ok()) {
      Status rotated = wal_->Rotate(snap->version);
      if (!rotated.ok()) return rotated;
      Result<WalStore::TruncateStats> cut = wal_store_->Truncate(snap->version);
      if (!cut.ok()) return cut.status();
      out.wal_segments_removed = cut->removed_segments;
      out.wal_truncated = true;
    }
  }
  return out;
}

Result<uint64_t> GirEngine::AdvanceToArena(const std::string& path) {
  if (dataset_ != nullptr || mutable_dataset_ != nullptr) {
    return Status::FailedPrecondition(
        "AdvanceToArena needs an arena-backed engine (Open with a kArena "
        "source)");
  }
  std::lock_guard<std::mutex> lock(update_mu_);
  Result<ArenaEpoch> epoch = LoadArenaEpoch(path, disk_);
  if (!epoch.ok()) return epoch.status();
  if (epoch->dataset->dim() != LoadSnapshot()->dataset->dim()) {
    return Status::InvalidArgument(
        "arena file has a different dataset dimensionality");
  }
  auto snap = std::make_shared<Snapshot>();
  snap->dataset = std::move(epoch->dataset);
  snap->flat = std::move(epoch->flat);
  snap->version = epoch->version;
  // Publish; in-flight readers drain on the old mapping, whose
  // shared_ptr chain (Snapshot -> FlatRTree -> ArenaFile) munmaps the
  // retired file when the last pin drops.
  std::atomic_store_explicit(&snapshot_,
                             std::shared_ptr<const Snapshot>(std::move(snap)),
                             std::memory_order_release);
  version_.store(epoch->version, std::memory_order_release);
  return epoch->version;
}

std::unique_ptr<GirEngine> OpenEngineOrDie(EngineConfig config) {
  Result<std::unique_ptr<GirEngine>> engine = GirEngine::Open(std::move(config));
  if (!engine.ok()) {
    std::fprintf(stderr, "GirEngine::Open failed: %s\n",
                 engine.status().message().c_str());
    std::abort();
  }
  return std::move(*engine);
}

Result<GirComputation> GirEngine::Compute(VecView weights, size_t k,
                                          Phase2Method method,
                                          bool order_sensitive) const {
  // Pin the current epoch: everything below reads this snapshot's
  // dataset image and flat arena, so a concurrent ApplyUpdates can
  // neither block nor tear this query.
  const std::shared_ptr<const Snapshot> snap = LoadSnapshot();
  const FlatRTree& flat = snap->flat;
  if (k == 0 || k > flat.size()) {
    return Status::InvalidArgument("k out of range");
  }
  Status valid = ValidateQueryWeights(weights);
  if (!valid.ok()) return valid;

  // Top-k retrieval (BRS), ahead of GIR computation proper. All
  // traversals run on the frozen image.
  Stopwatch sw;
  Result<TopKResult> topk = RunBrs(flat, *scoring_, weights, k);
  if (!topk.ok()) return topk.status();
  return FinishGir(flat, snap->version, weights, k, method, order_sensitive,
                   std::move(*topk), sw.ElapsedMillis());
}

Result<GirComputation> GirEngine::ComputeGirWithTopK(
    const PinnedIndex& pin, VecView weights, size_t k, Phase2Method method,
    TopKResult topk, double topk_cpu_ms) const {
  const FlatRTree& flat = *pin.flat;
  if (k == 0 || k > flat.size()) {
    return Status::InvalidArgument("k out of range");
  }
  if (weights.size() != flat.dataset().dim()) {
    return Status::InvalidArgument("weight dimensionality mismatch");
  }
  Status valid = ValidateQueryWeights(weights);
  if (!valid.ok()) return valid;
  return FinishGir(flat, pin.version, weights, k, method,
                   /*order_sensitive=*/true, std::move(topk), topk_cpu_ms);
}

Result<GirComputation> GirEngine::FinishGir(const FlatRTree& flat,
                                            uint64_t version, VecView weights,
                                            size_t k, Phase2Method method,
                                            bool order_sensitive,
                                            TopKResult topk,
                                            double topk_cpu_ms) const {
  const Dataset& data = flat.dataset();
  GirStats stats;
  stats.topk_cpu_ms = topk_cpu_ms;
  stats.topk_reads = topk.io.reads;

  GirRegion region(data.dim(), Vec(weights.begin(), weights.end()),
                   topk.result);

  // Phase 1 (order-sensitive only; GIR* has no ordering constraints).
  Stopwatch sw;
  if (order_sensitive) {
    sw.Restart();
    AddPhase1Constraints(data, *scoring_, topk.result, &region);
    stats.phase1_cpu_ms = sw.ElapsedMillis();
  }

  // Phase 2.
  sw.Restart();
  Phase2Output p2;
  if (order_sensitive) {
    switch (method) {
      case Phase2Method::kSP:
        p2 = RunSpPhase2(flat, *scoring_, weights, topk, &region);
        break;
      case Phase2Method::kCP:
        p2 = RunCpPhase2(flat, *scoring_, weights, topk, &region);
        break;
      case Phase2Method::kFP: {
        Result<Phase2Output> r =
            data.dim() == 2
                ? RunFp2dPhase2(flat, *scoring_, weights, topk, &region)
                : RunFpNdPhase2(flat, *scoring_, weights, topk, &region,
                                options_.fp);
        if (!r.ok()) return r.status();
        p2 = *r;
        break;
      }
      case Phase2Method::kBruteForce: {
        // Reference path: scan the live records (charging the
        // equivalent page reads) and add every non-result constraint.
        IoStats before = DiskManager::ThreadStats();
        const RecordId pk = topk.result.back();
        Vec gk = scoring_->Transform(data.Get(pk));
        std::vector<bool> in_result(data.size(), false);
        for (RecordId id : topk.result) in_result[id] = true;
        ConstraintProvenance prov;
        prov.kind = ConstraintProvenance::Kind::kOvertake;
        prov.position = static_cast<int>(k) - 1;
        for (size_t i = 0; i < data.size(); ++i) {
          if (in_result[i] || !data.IsLive(static_cast<RecordId>(i))) {
            continue;
          }
          prov.challenger = static_cast<RecordId>(i);
          region.AddConstraint(
              Sub(gk, scoring_->Transform(data.Get(prov.challenger))), prov);
        }
        // Simulate the full-scan I/O the paper ascribes to this
        // approach: every reachable leaf page is read (freed pages of
        // the update path never count). The reads go through the
        // checked FetchPage path, so fault plans cover them and the
        // arena-backed mapping pages in inside the accounted read.
        std::vector<PageId> stack = {flat.root()};
        while (!stack.empty()) {
          const PageId page = stack.back();
          const FlatRTree::NodeView node = flat.PeekNode(page);
          stack.pop_back();
          if (node.is_leaf()) {
            Status read = TreeReadPage(flat, page);
            if (!read.ok()) return read;
            continue;
          }
          for (size_t e = 0; e < node.count(); ++e) {
            stack.push_back(static_cast<PageId>(node.child(e)));
          }
        }
        p2.candidates = data.live_size() - k;
        p2.io = DiskManager::ThreadStats() - before;
        break;
      }
    }
  } else {
    Result<Phase2Output> r =
        RunGirStarPhase2(flat, *scoring_, weights, topk,
                         Phase2MethodName(method), &region, options_.fp);
    if (!r.ok()) return r.status();
    p2 = *r;
  }
  stats.phase2_cpu_ms = sw.ElapsedMillis();
  stats.phase2_reads = p2.io.reads;
  stats.candidates = p2.candidates;
  stats.star_facets = p2.star_facets;
  stats.constraints = region.constraints().size();

  // Half-space intersection (the paper runs Qhull here and charges it
  // to the method's CPU time).
  if (options_.materialize_polytope) {
    sw.Restart();
    region.polytope();
    stats.intersect_cpu_ms = sw.ElapsedMillis();
  }

  GirComputation out{std::move(topk), std::move(region), stats, version};
  return out;
}

Result<UpdateStats> GirEngine::ApplyUpdates(const UpdateBatch& batch,
                                            ShardedGirCache* cache) {
  if (mutable_dataset_ == nullptr) {
    return Status::FailedPrecondition(
        "engine is read-only; updates need the Dataset* constructor");
  }
  std::lock_guard<std::mutex> lock(update_mu_);
  return ApplyUpdatesLocked(batch, cache, /*log_to_wal=*/true);
}

Result<UpdateStats> GirEngine::ApplyUpdatesLocked(const UpdateBatch& batch,
                                                  ShardedGirCache* cache,
                                                  bool log_to_wal) {
  // Validate the whole batch — including the index invariant that every
  // live delete id is actually present in the master tree — before
  // logging or mutating anything: a failed batch leaves dataset, tree
  // and WAL untouched.
  const size_t dim = dataset_->dim();
  for (const Vec& p : batch.inserts) {
    if (p.size() != dim) {
      return Status::InvalidArgument("insert dimensionality mismatch");
    }
    for (double x : p) {
      if (!(x >= 0.0 && x <= 1.0)) {
        return Status::InvalidArgument(
            "insert outside the normalized [0,1]^d domain");
      }
    }
  }
  std::unordered_set<RecordId> delete_set;
  for (RecordId id : batch.deletes) {
    if (id < 0 || static_cast<size_t>(id) >= dataset_->size()) {
      return Status::InvalidArgument("delete id out of range");
    }
    if (!dataset_->IsLive(id)) {
      return Status::InvalidArgument("delete of an already-dead record");
    }
    if (!delete_set.insert(id).second) {
      return Status::InvalidArgument("duplicate delete id in batch");
    }
    if (!tree_->Contains(id)) {
      return Status::Internal("live record missing from the R*-tree");
    }
  }
  UpdateStats stats;
  Stopwatch sw;
  const uint64_t new_version = version_.load(std::memory_order_relaxed) + 1;

  // 1. Make the batch durable before touching any state. This is the
  // ack point: once the group commit covers the record, a crash at any
  // later step replays the batch on recovery; if the commit fails, the
  // caller sees the error with the engine exactly as it was.
  if (log_to_wal && wal_ != nullptr) {
    Status logged = wal_->AppendDurable(batch, new_version);
    if (!logged.ok()) return logged;
    stats.wal_logged = true;
    stats.wal_ms = sw.ElapsedMillis();
    sw.Restart();
  }

  // 2. Mutate the master index + dataset (deletes before inserts).
  // The Contains probe above makes the Delete below infallible.
  for (RecordId id : batch.deletes) {
    if (!tree_->Delete(id)) {
      return Status::Internal("live record missing from the R*-tree");
    }
    mutable_dataset_->MarkDeleted(id);
  }
  std::vector<RecordId> new_ids;
  new_ids.reserve(batch.inserts.size());
  for (const Vec& p : batch.inserts) {
    const RecordId id = mutable_dataset_->AppendRecord(p);
    tree_->Insert(id);
    new_ids.push_back(id);
  }
  stats.apply_ms = sw.ElapsedMillis();

  // 3. Refreeze into a fresh epoch: an immutable dataset image plus a
  // flat arena bound to it. Readers of older epochs are untouched.
  sw.Restart();
  auto snap = std::make_shared<Snapshot>();
  snap->dataset = std::make_shared<const Dataset>(*mutable_dataset_);
  snap->flat = FlatRTree::Freeze(*tree_, snap->dataset.get());
  snap->version = new_version;
  stats.refreeze_ms = sw.ElapsedMillis();

  // 4. Incremental cache invalidation, before the epoch flips: doomed
  // entries disappear while the old epoch is still current (probes just
  // miss and recompute), and survivors become servable exactly when the
  // version bumps below.
  sw.Restart();
  if (cache != nullptr) {
    std::vector<Vec> inserted_g;
    inserted_g.reserve(new_ids.size());
    for (RecordId id : new_ids) {
      inserted_g.push_back(scoring_->Transform(snap->dataset->Get(id)));
    }
    const UpdateInvalidation inv = cache->InvalidateForUpdates(
        batch.deletes, inserted_g, *snap->dataset, *scoring_, new_version);
    stats.cache_entries_before = inv.entries_before;
    stats.cache_lp_tests = inv.lp_tests;
    stats.cache_stale_evicted = inv.stale_evicted;
    stats.cache_delete_evicted = inv.delete_evicted;
    stats.cache_insert_evicted = inv.insert_evicted;
    stats.cache_survived = inv.survived;
  }
  stats.invalidate_ms = sw.ElapsedMillis();

  // 5. Publish the epoch.
  std::atomic_store_explicit(&snapshot_,
                             std::shared_ptr<const Snapshot>(std::move(snap)),
                             std::memory_order_release);
  version_.store(new_version, std::memory_order_release);

  stats.applied_inserts = batch.inserts.size();
  stats.applied_deletes = batch.deletes.size();
  stats.version = new_version;
  return stats;
}

Result<GirComputation> GirEngine::ComputeGir(VecView weights, size_t k,
                                             Phase2Method method) const {
  return Compute(weights, k, method, /*order_sensitive=*/true);
}

Result<GirComputation> GirEngine::ComputeGirStar(VecView weights, size_t k,
                                                 Phase2Method method) const {
  if (method == Phase2Method::kBruteForce) {
    return Status::InvalidArgument("GIR* supports SP, CP and FP");
  }
  return Compute(weights, k, method, /*order_sensitive=*/false);
}

}  // namespace gir
