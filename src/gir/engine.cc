#include "gir/engine.h"

#include "common/stopwatch.h"
#include "gir/brute_force.h"
#include "gir/cp.h"
#include "gir/fp2d.h"
#include "gir/gir_star.h"
#include "gir/phase1.h"
#include "gir/sp.h"

namespace gir {

Result<Phase2Method> ParsePhase2Method(const std::string& name) {
  if (name == "SP") return Phase2Method::kSP;
  if (name == "CP") return Phase2Method::kCP;
  if (name == "FP") return Phase2Method::kFP;
  if (name == "BF" || name == "BruteForce") return Phase2Method::kBruteForce;
  return Status::InvalidArgument("unknown Phase-2 method: " + name);
}

std::string Phase2MethodName(Phase2Method method) {
  switch (method) {
    case Phase2Method::kSP:
      return "SP";
    case Phase2Method::kCP:
      return "CP";
    case Phase2Method::kFP:
      return "FP";
    case Phase2Method::kBruteForce:
      return "BF";
  }
  return "?";
}

GirEngine::GirEngine(const Dataset* dataset, DiskManager* disk,
                     std::unique_ptr<ScoringFunction> scoring,
                     const GirEngineOptions& options)
    : dataset_(dataset),
      disk_(disk),
      scoring_(std::move(scoring)),
      options_(options),
      tree_(RTree::BulkLoad(dataset, disk)),
      flat_(FlatRTree::Freeze(tree_)) {}

Result<GirComputation> GirEngine::Compute(VecView weights, size_t k,
                                          Phase2Method method,
                                          bool order_sensitive) const {
  if (k == 0 || k > dataset_->size()) {
    return Status::InvalidArgument("k out of range");
  }
  GirStats stats;

  // Top-k retrieval (BRS), ahead of GIR computation proper. All
  // traversals run on the frozen image.
  Stopwatch sw;
  Result<TopKResult> topk = RunBrs(flat_, *scoring_, weights, k);
  if (!topk.ok()) return topk.status();
  stats.topk_cpu_ms = sw.ElapsedMillis();
  stats.topk_reads = topk->io.reads;

  GirRegion region(dataset_->dim(), Vec(weights.begin(), weights.end()),
                   topk->result);

  // Phase 1 (order-sensitive only; GIR* has no ordering constraints).
  if (order_sensitive) {
    sw.Restart();
    AddPhase1Constraints(*dataset_, *scoring_, topk->result, &region);
    stats.phase1_cpu_ms = sw.ElapsedMillis();
  }

  // Phase 2.
  sw.Restart();
  Phase2Output p2;
  if (order_sensitive) {
    switch (method) {
      case Phase2Method::kSP:
        p2 = RunSpPhase2(flat_, *scoring_, weights, *topk, &region);
        break;
      case Phase2Method::kCP:
        p2 = RunCpPhase2(flat_, *scoring_, weights, *topk, &region);
        break;
      case Phase2Method::kFP: {
        Result<Phase2Output> r =
            dataset_->dim() == 2
                ? RunFp2dPhase2(flat_, *scoring_, weights, *topk, &region)
                : RunFpNdPhase2(flat_, *scoring_, weights, *topk, &region,
                                options_.fp);
        if (!r.ok()) return r.status();
        p2 = *r;
        break;
      }
      case Phase2Method::kBruteForce: {
        // Reference path: scan the dataset (charging the equivalent
        // page reads) and add every non-result constraint.
        IoStats before = DiskManager::ThreadStats();
        const RecordId pk = topk->result.back();
        Vec gk = scoring_->Transform(dataset_->Get(pk));
        std::vector<bool> in_result(dataset_->size(), false);
        for (RecordId id : topk->result) in_result[id] = true;
        ConstraintProvenance prov;
        prov.kind = ConstraintProvenance::Kind::kOvertake;
        prov.position = static_cast<int>(k) - 1;
        for (size_t i = 0; i < dataset_->size(); ++i) {
          if (in_result[i]) continue;
          prov.challenger = static_cast<RecordId>(i);
          region.AddConstraint(
              Sub(gk, scoring_->Transform(dataset_->Get(prov.challenger))),
              prov);
        }
        // Simulate the full-scan I/O the paper ascribes to this
        // approach: every leaf page is read.
        for (size_t n = 0; n < tree_.node_count(); ++n) {
          if (tree_.PeekNode(static_cast<PageId>(n)).is_leaf) {
            disk_->NoteRead();
          }
        }
        p2.candidates = dataset_->size() - k;
        p2.io = DiskManager::ThreadStats() - before;
        break;
      }
    }
  } else {
    Result<Phase2Output> r =
        RunGirStarPhase2(flat_, *scoring_, weights, *topk,
                         Phase2MethodName(method), &region, options_.fp);
    if (!r.ok()) return r.status();
    p2 = *r;
  }
  stats.phase2_cpu_ms = sw.ElapsedMillis();
  stats.phase2_reads = p2.io.reads;
  stats.candidates = p2.candidates;
  stats.star_facets = p2.star_facets;
  stats.constraints = region.constraints().size();

  // Half-space intersection (the paper runs Qhull here and charges it
  // to the method's CPU time).
  if (options_.materialize_polytope) {
    sw.Restart();
    region.polytope();
    stats.intersect_cpu_ms = sw.ElapsedMillis();
  }

  GirComputation out{std::move(*topk), std::move(region), stats};
  return out;
}

Result<GirComputation> GirEngine::ComputeGir(VecView weights, size_t k,
                                             Phase2Method method) const {
  return Compute(weights, k, method, /*order_sensitive=*/true);
}

Result<GirComputation> GirEngine::ComputeGirStar(VecView weights, size_t k,
                                                 Phase2Method method) const {
  if (method == Phase2Method::kBruteForce) {
    return Status::InvalidArgument("GIR* supports SP, CP and FP");
  }
  return Compute(weights, k, method, /*order_sensitive=*/false);
}

}  // namespace gir
