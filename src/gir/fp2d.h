#ifndef GIR_GIR_FP2D_H_
#define GIR_GIR_FP2D_H_

#include "common/result.h"
#include "gir/sp.h"

namespace gir {

// Facet Pruning specialised to d == 2 (paper §6.2, Algorithm 1): the
// sweeping line pinned at p_k may rotate clockwise and anticlockwise;
// the first record hit in each direction is critical. The first step
// scans the encountered set T for the extreme rotation angles; the
// second step refines the two interim facets from disk, pruning every
// node whose MBB lies below both facet lines.
//
// Works in the transformed data space, so it supports any scoring
// function of the sum-of-monotone-terms family.
Result<Phase2Output> RunFp2dPhase2(const RTree& tree,
                                   const ScoringFunction& scoring,
                                   VecView weights, const TopKResult& topk,
                                   GirRegion* region);

// Frozen-tree variant; bit-identical constraints and IoStats.
Result<Phase2Output> RunFp2dPhase2(const FlatRTree& tree,
                                   const ScoringFunction& scoring,
                                   VecView weights, const TopKResult& topk,
                                   GirRegion* region);

}  // namespace gir

#endif  // GIR_GIR_FP2D_H_
