#include "gir/exec_policy.h"

#include <cmath>

namespace gir {

Status ValidateExecPolicy(const ExecPolicy& policy) {
  if (!std::isfinite(policy.deadline_ms) || policy.deadline_ms < 0.0) {
    return Status::InvalidArgument(
        "ExecPolicy::deadline_ms must be finite and >= 0");
  }
  if (!std::isfinite(policy.retry_backoff_ms) || policy.retry_backoff_ms < 0.0) {
    return Status::InvalidArgument(
        "ExecPolicy::retry_backoff_ms must be finite and >= 0");
  }
  if (!std::isfinite(policy.hedge_delay_ms) || policy.hedge_delay_ms < 0.0) {
    return Status::InvalidArgument(
        "ExecPolicy::hedge_delay_ms must be finite and >= 0");
  }
  if (policy.shared_traversal && policy.group_width == 0) {
    return Status::InvalidArgument(
        "ExecPolicy::group_width must be >= 1 under shared traversal");
  }
  if (policy.max_retries > kMaxRetriesCap) {
    return Status::InvalidArgument(
        "ExecPolicy::max_retries exceeds the sanity cap (negative value "
        "converted to size_t?)");
  }
  return Status::Ok();
}

}  // namespace gir
