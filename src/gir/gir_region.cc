#include "gir/gir_region.h"

#include <algorithm>
#include <limits>

#include "geom/lp.h"

namespace gir {

std::string ConstraintProvenance::Describe(
    const std::vector<RecordId>& result) const {
  char buf[128];
  if (kind == Kind::kOrdering) {
    std::snprintf(buf, sizeof(buf),
                  "records #%d and #%d (result ranks %d and %d) swap order",
                  position >= 0 ? result[position] : -1,
                  position + 1 < static_cast<int>(result.size())
                      ? result[position + 1]
                      : -1,
                  position + 1, position + 2);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "record #%d overtakes result record #%d (rank %d)",
                  challenger, position >= 0 ? result[position] : -1,
                  position + 1);
  }
  return buf;
}

bool GirRegion::Contains(VecView q, double eps) const {
  for (size_t j = 0; j < dim_; ++j) {
    if (q[j] < -eps || q[j] > 1.0 + eps) return false;
  }
  for (const GirConstraint& c : constraints_) {
    if (Dot(c.normal, q) < -eps) return false;
  }
  return true;
}

GirRegion::RaySpan GirRegion::ClipRay(VecView x, VecView dir) const {
  double t_min = -std::numeric_limits<double>::infinity();
  double t_max = std::numeric_limits<double>::infinity();
  auto clip = [&](double value, double slope) {
    // Constraint: value + t * slope >= 0.
    if (slope > 0) {
      t_min = std::max(t_min, -value / slope);
    } else if (slope < 0) {
      t_max = std::min(t_max, -value / slope);
    } else if (value < 0) {
      t_min = 0.0;
      t_max = 0.0;
    }
  };
  for (const GirConstraint& c : constraints_) {
    clip(Dot(c.normal, x), Dot(c.normal, dir));
  }
  for (size_t j = 0; j < dim_; ++j) {
    clip(x[j], dir[j]);              // x_j >= 0
    clip(1.0 - x[j], -dir[j]);       // x_j <= 1
  }
  if (t_min > t_max) {
    return RaySpan{0.0, 0.0};
  }
  return RaySpan{t_min, t_max};
}

bool GirRegion::AdmitsGain(VecView gain, double eps) const {
  // Fast paths that skip the simplex solve. The region's own query
  // vector is feasible by construction, so a positive advantage there
  // settles the test immediately; a gain with no positive component
  // can never attain a positive dot product over the non-negative cube.
  if (Dot(gain, query_) > eps) return true;
  bool any_positive = false;
  for (double g : gain) {
    if (g > 0.0) {
      any_positive = true;
      break;
    }
  }
  if (!any_positive) return false;

  LpProblem lp;
  lp.c = Vec(gain.begin(), gain.end());
  lp.a.reserve(constraints_.size() + 2 * dim_);
  for (const GirConstraint& c : constraints_) {
    // normal·x >= 0  →  -normal·x <= 0.
    lp.a.push_back(Scale(c.normal, -1.0));
    lp.b.push_back(0.0);
  }
  for (size_t j = 0; j < dim_; ++j) {
    Vec row(dim_, 0.0);
    row[j] = 1.0;  // x_j <= 1
    lp.a.push_back(row);
    lp.b.push_back(1.0);
    row[j] = -1.0;  // -x_j <= 0
    lp.a.push_back(std::move(row));
    lp.b.push_back(0.0);
  }
  LpSolution sol = SolveLp(lp);
  if (sol.status != LpStatus::kOptimal) return true;
  return sol.objective > eps;
}

std::vector<Halfspace> GirRegion::AsHalfspaces() const {
  std::vector<Halfspace> out;
  out.reserve(constraints_.size());
  for (const GirConstraint& c : constraints_) {
    out.push_back(Halfspace{c.normal, 0.0});
  }
  return out;
}

void GirRegion::Materialize() const {
  if (polytope_.has_value()) return;
  IntersectionOptions options;
  options.warm_start = interior_witness_;
  Result<IntersectionResult> r =
      IntersectHalfspaces(AsHalfspaces(), query_, options);
  if (r.ok()) {
    polytope_ = std::move(r).value();
    if (!polytope_->interior.empty()) {
      interior_witness_ = polytope_->interior;
    }
  } else {
    IntersectionResult empty;
    empty.polytope = Polytope::Empty(dim_);
    polytope_ = std::move(empty);
  }
}

const Polytope& GirRegion::polytope() const {
  Materialize();
  return polytope_->polytope;
}

const std::vector<int>& GirRegion::nonredundant_indices() const {
  Materialize();
  return polytope_->nonredundant;
}

std::vector<BoundaryEvent> GirRegion::BoundaryEvents() const {
  std::vector<BoundaryEvent> out;
  for (int idx : nonredundant_indices()) {
    BoundaryEvent e;
    e.constraint = constraints_[idx];
    e.description = constraints_[idx].provenance.Describe(result_);
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace gir
