#include "gir/gir_region.h"

#include <algorithm>
#include <limits>

#include "geom/lp.h"

namespace gir {

std::string ConstraintProvenance::Describe(
    const std::vector<RecordId>& result) const {
  char buf[128];
  if (kind == Kind::kOrdering) {
    std::snprintf(buf, sizeof(buf),
                  "records #%d and #%d (result ranks %d and %d) swap order",
                  position >= 0 ? result[position] : -1,
                  position + 1 < static_cast<int>(result.size())
                      ? result[position + 1]
                      : -1,
                  position + 1, position + 2);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "record #%d overtakes result record #%d (rank %d)",
                  challenger, position >= 0 ? result[position] : -1,
                  position + 1);
  }
  return buf;
}

bool GirRegion::Contains(VecView q, double eps) const {
  for (size_t j = 0; j < dim_; ++j) {
    if (q[j] < -eps || q[j] > 1.0 + eps) return false;
  }
  for (const GirConstraint& c : constraints_) {
    if (Dot(c.normal, q) < -eps) return false;
  }
  return true;
}

GirRegion::RaySpan GirRegion::ClipRay(VecView x, VecView dir) const {
  double t_min = -std::numeric_limits<double>::infinity();
  double t_max = std::numeric_limits<double>::infinity();
  auto clip = [&](double value, double slope) {
    // Constraint: value + t * slope >= 0.
    if (slope > 0) {
      t_min = std::max(t_min, -value / slope);
    } else if (slope < 0) {
      t_max = std::min(t_max, -value / slope);
    } else if (value < 0) {
      t_min = 0.0;
      t_max = 0.0;
    }
  };
  for (const GirConstraint& c : constraints_) {
    clip(Dot(c.normal, x), Dot(c.normal, dir));
  }
  for (size_t j = 0; j < dim_; ++j) {
    clip(x[j], dir[j]);              // x_j >= 0
    clip(1.0 - x[j], -dir[j]);       // x_j <= 1
  }
  if (t_min > t_max) {
    return RaySpan{0.0, 0.0};
  }
  return RaySpan{t_min, t_max};
}

namespace {

// Dense rows of the AdmitsGain LP: the region's constraints as
// `-normal·x <= 0`, then the cube rows `x_j <= 1`, `-x_j <= 0` — the
// exact row order the historical per-call solver used, so pivoting (and
// the verdicts) are unchanged. Assembled into reusable buffers.
void AssembleGainLp(const std::vector<GirConstraint>& constraints, size_t dim,
                    std::vector<double>* a, std::vector<double>* b) {
  const size_t m = constraints.size() + 2 * dim;
  a->resize(m * dim);
  b->resize(m);
  std::fill(a->begin(), a->end(), 0.0);
  double* ap = a->data();
  size_t i = 0;
  for (const GirConstraint& c : constraints) {
    for (size_t j = 0; j < dim; ++j) ap[i * dim + j] = -1.0 * c.normal[j];
    (*b)[i] = 0.0;
    ++i;
  }
  for (size_t j = 0; j < dim; ++j) {
    ap[i * dim + j] = 1.0;  // x_j <= 1
    (*b)[i] = 1.0;
    ++i;
    ap[i * dim + j] = -1.0;  // -x_j <= 0
    (*b)[i] = 0.0;
    ++i;
  }
}

// Fast paths that skip the simplex solve. The region's own query
// vector is feasible by construction, so a positive advantage there
// settles the test immediately; a gain with no positive component can
// never attain a positive dot product over the non-negative cube.
// 1 = admitted, 0 = rejected, -1 = needs the LP.
int GainFastPath(VecView gain, VecView query, double eps) {
  if (Dot(gain, query) > eps) return 1;
  for (double g : gain) {
    if (g > 0.0) return -1;
  }
  return 0;
}

}  // namespace

bool GirRegion::AdmitsGain(VecView gain, double eps) const {
  int fast = GainFastPath(gain, query_, eps);
  if (fast >= 0) return fast != 0;

  static thread_local std::vector<double> a;
  static thread_local std::vector<double> b;
  static thread_local LpWorkspace ws;
  AssembleGainLp(constraints_, dim_, &a, &b);
  LpBatchItem item;
  SolveLpBatch(a.data(), b.data(), b.size(), dim_, gain.data(), 1, &ws,
               &item);
  // Solver failures return true (conservative: callers treat "pierced"
  // as "recompute").
  if (item.status != LpStatus::kOptimal) return true;
  return item.objective > eps;
}

size_t GirRegion::FirstAdmittedGain(const double* gains, size_t count,
                                    LpWorkspace* ws, double eps) const {
  static thread_local std::vector<double> a;
  static thread_local std::vector<double> b;
  bool prepared = false;
  bool prepare_failed = false;
  for (size_t t = 0; t < count; ++t) {
    VecView gain(gains + t * dim_, dim_);
    int fast = GainFastPath(gain, query_, eps);
    if (fast == 1) return t;
    if (fast == 0) continue;
    if (!prepared) {
      AssembleGainLp(constraints_, dim_, &a, &b);
      prepare_failed =
          ws->Prepare(a.data(), b.data(), b.size(), dim_) !=
          LpStatus::kOptimal;
      prepared = true;
    }
    // The origin is always feasible, so Prepare can only fail by
    // iteration limit — conservatively admitted, like AdmitsGain.
    if (prepare_failed) return t;
    LpStatus s = ws->Maximize(gain.data());
    if (s != LpStatus::kOptimal) return t;  // conservative
    if (ws->objective() > eps) return t;
  }
  return count;
}

std::vector<Halfspace> GirRegion::AsHalfspaces() const {
  std::vector<Halfspace> out;
  out.reserve(constraints_.size());
  for (const GirConstraint& c : constraints_) {
    out.push_back(Halfspace{c.normal, 0.0});
  }
  return out;
}

void GirRegion::Materialize() const {
  if (polytope_.has_value()) return;
  IntersectionOptions options;
  options.warm_start = interior_witness_;
  Result<IntersectionResult> r =
      IntersectHalfspaces(AsHalfspaces(), query_, options);
  if (r.ok()) {
    polytope_ = std::move(r).value();
    if (!polytope_->interior.empty()) {
      interior_witness_ = polytope_->interior;
    }
  } else {
    IntersectionResult empty;
    empty.polytope = Polytope::Empty(dim_);
    polytope_ = std::move(empty);
  }
}

const Polytope& GirRegion::polytope() const {
  Materialize();
  return polytope_->polytope;
}

const std::vector<int>& GirRegion::nonredundant_indices() const {
  Materialize();
  return polytope_->nonredundant;
}

std::vector<BoundaryEvent> GirRegion::BoundaryEvents() const {
  std::vector<BoundaryEvent> out;
  for (int idx : nonredundant_indices()) {
    BoundaryEvent e;
    e.constraint = constraints_[idx];
    e.description = constraints_[idx].provenance.Describe(result_);
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace gir
