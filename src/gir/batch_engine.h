#ifndef GIR_GIR_BATCH_ENGINE_H_
#define GIR_GIR_BATCH_ENGINE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "gir/engine.h"
#include "gir/exec_policy.h"
#include "gir/sharded_cache.h"
#include "topk/brs.h"

namespace gir {

// Engine-level configuration of a BatchEngine: the resources it owns
// (threads, cache) plus the default ExecPolicy a plain ComputeBatch
// call runs under. Per-call execution knobs all live in ExecPolicy —
// pass one to ComputeBatch to steer a single batch without
// reconfiguring the engine.
struct BatchOptions {
  // Worker threads fanning queries over the shared engine. 0 = one per
  // hardware thread.
  size_t threads = 0;
  // Total cached GIRs across shards; 0 disables caching entirely.
  size_t cache_capacity = 256;
  size_t cache_shards = 8;
  // Insert computed GIRs back into the cache (lookups are always
  // attempted while the cache is enabled).
  bool populate_cache = true;
  // Default execution policy of this engine's batches (see
  // gir/exec_policy.h for every knob and its default). A per-call
  // policy passed to ComputeBatch replaces this wholesale.
  ExecPolicy exec;
};

// Outcome of one query of a batch, at its input position.
struct BatchItem {
  Status status = Status::Ok();
  // How the query was answered. kExact means the records came straight
  // from a cached GIR without touching the R-tree; kPartial means a
  // shorter cached prefix existed but the full answer was recomputed.
  ShardedGirCache::HitKind cache = ShardedGirCache::HitKind::kMiss;
  // The top-k record ids in decreasing score order; always set on
  // success, whether served from cache or computed.
  std::vector<RecordId> topk;
  // The full computation (region, scores, per-phase stats); present
  // exactly when the query was actually computed (miss or partial hit)
  // or replicated from a deduplicated twin.
  std::optional<GirComputation> computed;
  double latency_ms = 0.0;
  // Index page reads *charged* to this query: exactly what a solo
  // ComputeGir would have paid. Under shared traversal the physical
  // reads are amortized across the group (see BatchStats), but the
  // charge stays per-query-exact so accounting is mode-independent.
  uint64_t reads = 0;
  // Transient-fault retries this query consumed (0 = first attempt
  // served). A non-ok final status with retries > 0 means the budget
  // ran out, not that degradation was silent.
  uint32_t retries = 0;
};

// Aggregate statistics of one ComputeBatch call.
struct BatchStats {
  size_t queries = 0;
  size_t failures = 0;
  uint64_t exact_hits = 0;
  uint64_t partial_hits = 0;
  uint64_t misses = 0;
  // Sum of per-query charged reads (mode-independent; equals the
  // physical reads of a pure fan-out run).
  uint64_t total_reads = 0;
  double wall_ms = 0.0;  // end-to-end batch wall time
  double p50_ms = 0.0;   // per-query latency percentiles
  double p99_ms = 0.0;
  double max_ms = 0.0;

  // ----- frontier-prefetch accounting (nonzero only when serving an
  // mmap'd arena under shared traversal with ExecPolicy::prefetch) ---
  // Pages madvise'd ahead of their round, and of the unique physical
  // fetches, how many found their mapped page already resident vs. had
  // to fault it in synchronously.
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_misses = 0;

  // ----- shared-traversal accounting (zero in fan-out mode except
  // charged/amortized, which then both equal total_reads) -----
  // Queries answered by replicating an exact-duplicate twin (same
  // weights, same k) computed once in this batch.
  uint64_t duplicate_hits = 0;
  // Shared-traversal groups executed and the queries they carried.
  size_t shared_groups = 0;
  size_t grouped_queries = 0;
  // Reads charged to queries vs. physical page reads actually performed
  // (unique-per-group BRS reads + per-query Phase-2 reads). The gap is
  // the amortization the shared executor bought.
  uint64_t charged_reads = 0;
  uint64_t amortized_reads = 0;
  // Effective group width of this call (ExecPolicy::group_width); 0 in
  // fan-out mode.
  size_t width_used = 0;
  // Items whose latency exceeded ExecPolicy::deadline_ms (0 when no
  // deadline was given).
  uint64_t deadline_misses = 0;

  // ----- transient-fault accounting -----
  uint64_t fault_retries = 0;    // retry attempts performed, batch-wide
  uint64_t retry_successes = 0;  // queries served only thanks to a retry
  uint64_t unavailable = 0;      // queries terminally kUnavailable after
                                 // the retry/deadline budget ran out

  // Fraction of *served* (non-failed) queries answered from cache.
  double HitRate() const {
    const size_t served = queries - failures;
    return served == 0 ? 0.0
                       : static_cast<double>(exact_hits) /
                             static_cast<double>(served);
  }
  double QueriesPerSecond() const {
    return wall_ms <= 0.0 ? 0.0
                          : 1000.0 * static_cast<double>(queries) / wall_ms;
  }
  // Physical-read amortization factor of this batch (1.0 = none).
  double ReadAmortization() const {
    return amortized_reads == 0
               ? 1.0
               : static_cast<double>(charged_reads) /
                     static_cast<double>(amortized_reads);
  }
};

struct BatchResult {
  std::vector<BatchItem> items;  // input order
  BatchStats stats;
};

// Multi-threaded batch query layer over a (shared) GirEngine: fans the
// weight vectors of a batch across a fixed thread pool, answers repeats
// and near-repeats from a sharded GIR cache without touching the
// R-tree, and aggregates per-batch serving statistics. Results come back
// in input order and are bit-identical to issuing the same sequence of
// ComputeGir calls sequentially: a cache hit returns the exact cached
// top-k order, which the containment guarantee makes equal to what a
// fresh computation would produce.
//
// Shared traversal (ExecPolicy::shared_traversal): instead of one
// independent root-to-leaf search per cache-missing query, the batch is
// deduplicated (exact weight/k twins computed once), chunked into
// groups, and each group walks the pinned frozen tree once via
// RunBrsMulti — every visited page is fetched once per group and its
// SoA planes are scored against the whole group's weights in one
// multi-weight SIMD pass — before the unchanged Phase-2 algorithms run
// per query. Outputs are bit-identical to fan-out; BatchStats splits
// charged vs. amortized reads to show what the sharing saved. Group
// scratch (heaps, visit stamps, score matrices) lives in pooled
// BrsFrontierArenas recycled across groups and batches.
//
// Cache coherence under updates: every entry is stamped with the
// dataset epoch it was computed at, probes only accept the current
// epoch, and ApplyUpdates (below) runs the incremental LP invalidation
// over this cache — so a batch racing an update serves each query
// either from the old epoch (computed before the swap) or the new one,
// never a stale mix.
//
// The engine must outlive the BatchEngine. One BatchEngine may serve
// many ComputeBatch calls; the cache persists and warms across batches.
// ComputeBatch itself is not reentrant (one batch at a time per
// BatchEngine), but it may run concurrently with ApplyUpdates.
class BatchEngine {
 public:
  explicit BatchEngine(const GirEngine* engine,
                       const BatchOptions& options = {})
      : engine_(engine),
        options_(options),
        cache_(options.cache_capacity, options.cache_shards),
        pool_(options.threads != 0 ? options.threads
                                   : std::max(1u,
                                              std::thread::
                                                  hardware_concurrency())) {}

  // Updatable variant: also keeps the mutable engine handle so
  // ApplyUpdates can be routed through this BatchEngine's cache.
  BatchEngine(GirEngine* engine, const BatchOptions& options = {})
      : BatchEngine(static_cast<const GirEngine*>(engine), options) {
    mutable_engine_ = engine;
  }

  // Computes the order-sensitive GIR top-k for every weight vector,
  // under this engine's default policy (BatchOptions::exec). Per-query
  // errors (e.g. k out of range) land in the corresponding item's
  // status; the call itself only fails on malformed batch input.
  Result<BatchResult> ComputeBatch(const std::vector<Vec>& weights, size_t k,
                                   Phase2Method method);

  // Same, under an explicit per-call policy (caller-chosen traversal
  // groups, width, deadline, retry budget, prefetch — see
  // gir/exec_policy.h). The policy replaces the engine default
  // wholesale for this call. Results are bit-identical across any
  // valid policies; only wall time and physical I/O differ.
  Result<BatchResult> ComputeBatch(const std::vector<Vec>& weights, size_t k,
                                   Phase2Method method,
                                   const ExecPolicy& policy);

  // Forwards the batch to GirEngine::ApplyUpdates with this engine's
  // cache attached, so cached GIRs are incrementally invalidated and
  // survivors keep serving across the epoch swap. FailedPrecondition
  // when constructed over a const engine.
  Result<UpdateStats> ApplyUpdates(const UpdateBatch& batch);

  size_t threads() const { return pool_.size(); }
  const ShardedGirCache& cache() const { return cache_; }
  ShardedGirCache* mutable_cache() { return &cache_; }
  const GirEngine& engine() const { return *engine_; }
  // The engine-level configuration, including the default ExecPolicy —
  // what callers (the serve replay loop) start from when building a
  // per-batch policy.
  const BatchOptions& options() const { return options_; }

 private:
  // Arena pool for the shared-traversal groups: one arena per in-flight
  // group, recycled across groups and batches so the traversal scratch
  // (heaps, visit stamps, score matrices, group lists, output slots) is
  // reused rather than reallocated.
  std::unique_ptr<BrsFrontierArena> AcquireArena();
  void ReleaseArena(std::unique_ptr<BrsFrontierArena> arena);

  Result<BatchResult> ComputeBatchShared(const std::vector<Vec>& weights,
                                         size_t k, Phase2Method method,
                                         const ExecPolicy& policy);
  void FinalizeStats(BatchResult* out, double deadline_ms) const;

  const GirEngine* engine_;
  GirEngine* mutable_engine_ = nullptr;
  BatchOptions options_;
  ShardedGirCache cache_;
  ThreadPool pool_;
  std::mutex arena_mu_;
  std::vector<std::unique_ptr<BrsFrontierArena>> arenas_;
};

}  // namespace gir

#endif  // GIR_GIR_BATCH_ENGINE_H_
