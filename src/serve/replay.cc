#include "serve/replay.h"

#include <algorithm>

#include "common/stopwatch.h"

namespace gir::serve {

namespace {

// Mutable replay state shared by the batch-execution helper.
struct ReplayState {
  AdmissionQueue queue;
  MetricsBuilder metrics;
  ServiceReport report;
  double server_free_ms = 0.0;  // single-server busy clock
  size_t trace_k = 0;

  ReplayState(const AdmissionOptions& admission, double window_ms)
      : queue(admission), metrics(window_ms) {}
};

void RecordShedOutcome(ReplayState* state, const ServiceRequest& req,
                       Status status, double reply_ms) {
  RequestOutcome& out = state->report.outcomes[req.id];
  out.status = std::move(status);
  out.timing.enqueue_ms = req.enqueue_ms;
  out.timing.reply_ms = reply_ms;
  out.timing.shed = true;
  state->metrics.RecordShed(out.timing);
}

// Forms one batch at fire_ms and runs it through the engine, advancing
// the busy clock by the measured compute time. Returns non-OK only on
// batch-level engine failure (malformed input — a bug, not load).
Status ExecuteOneBatch(ReplayState* state, BatchEngine* engine,
                       const ReplayOptions& options, double fire_ms) {
  std::vector<ShedRequest> shed;
  FormedBatch formed = state->queue.Form(fire_ms, &shed);
  for (ShedRequest& s : shed) {
    RecordShedOutcome(state, s.request, std::move(s.status), fire_ms);
  }
  if (formed.requests.empty()) return Status::Ok();

  double service_start = std::max(fire_ms, state->server_free_ms);
  if (options.shed_on_dispatch) {
    // The server is so far behind that these requests' deadlines pass
    // before their batch could even start: reject explicitly now.
    std::vector<ServiceRequest> keep;
    std::vector<uint32_t> keep_group;
    keep.reserve(formed.requests.size());
    keep_group.reserve(formed.requests.size());
    for (size_t i = 0; i < formed.requests.size(); ++i) {
      if (formed.requests[i].deadline_ms < service_start) {
        RecordShedOutcome(
            state, formed.requests[i],
            Status::ResourceExhausted("server backlog exceeds deadline"),
            fire_ms);
        continue;
      }
      keep.push_back(std::move(formed.requests[i]));
      keep_group.push_back(formed.group_of[i]);
    }
    formed.requests = std::move(keep);
    formed.group_of = std::move(keep_group);
    if (formed.requests.empty()) return Status::Ok();
  }

  std::vector<Vec> weights;
  weights.reserve(formed.requests.size());
  for (const ServiceRequest& req : formed.requests) {
    if (req.k != state->trace_k) {
      return Status::InvalidArgument("trace queries must share one k");
    }
    weights.push_back(req.weights);
  }

  // Per-batch execution policy: the engine's default, specialized with
  // the admission former's grouping (adaptive) or the configured static
  // width, plus the SLA deadline for miss accounting.
  ExecPolicy policy = engine->options().exec;
  if (options.adaptive_width) {
    policy.group_of = formed.group_of;
    if (formed.width != 0) policy.group_width = formed.width;
  } else if (options.static_width != 0) {
    policy.group_width = options.static_width;
  }
  policy.deadline_ms = state->queue.options().deadline_ms;

  Result<BatchResult> result =
      engine->ComputeBatch(weights, state->trace_k, options.method, policy);
  if (!result.ok()) return result.status();
  const double wall_ms = result->stats.wall_ms;
  state->server_free_ms = service_start + wall_ms;
  state->report.compute_ms += wall_ms;
  state->report.charged_reads += result->stats.charged_reads;
  state->report.amortized_reads += result->stats.amortized_reads;
  state->report.deadline_misses += result->stats.deadline_misses;
  state->metrics.RecordFaultRetries(result->stats.fault_retries,
                                    result->stats.retry_successes);
  state->metrics.RecordPrefetch(result->stats.prefetch_issued,
                                result->stats.prefetch_hits,
                                result->stats.prefetch_misses);
  state->metrics.RecordBatch(formed.requests.size(),
                             options.adaptive_width ? formed.width
                                                    : options.static_width);

  // The batch replies as a unit when its compute finishes.
  const double reply_ms = state->server_free_ms;
  for (size_t i = 0; i < formed.requests.size(); ++i) {
    const ServiceRequest& req = formed.requests[i];
    BatchItem& item = result->items[i];
    RequestOutcome& out = state->report.outcomes[req.id];
    out.status = item.status;
    out.timing.enqueue_ms = req.enqueue_ms;
    out.timing.admit_ms = fire_ms;
    out.timing.compute_start_ms = service_start;
    out.timing.compute_end_ms = reply_ms;
    out.timing.reply_ms = reply_ms;
    if (!item.status.ok()) {
      state->metrics.RecordFailed(item.status.code());
      continue;
    }
    out.topk = std::move(item.topk);
    state->metrics.RecordServed(out.timing);
  }
  return Status::Ok();
}

// Fires every batch whose formation time precedes now_ms.
Status DrainDue(ReplayState* state, BatchEngine* engine,
                const ReplayOptions& options, double now_ms) {
  for (;;) {
    const double fire = state->queue.NextFireTime();
    if (fire < 0.0 || fire > now_ms) return Status::Ok();
    Status st = ExecuteOneBatch(state, engine, options, fire);
    if (!st.ok()) return st;
  }
}

// Flushes the whole backlog at now_ms (update barrier / end of trace).
Status FlushAll(ReplayState* state, BatchEngine* engine,
                const ReplayOptions& options, double now_ms) {
  while (state->queue.size() > 0) {
    Status st = ExecuteOneBatch(state, engine, options, now_ms);
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

}  // namespace

Result<ServiceReport> ReplayTrace(const Trace& trace, BatchEngine* engine,
                                  const ReplayOptions& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("null engine");
  }
  ReplayState state(options.admission, options.window_ms);
  state.trace_k = trace.config.k;
  state.report.outcomes.resize(trace.queries);

  uint64_t query_ordinal = 0;
  for (const TraceEvent& ev : trace.events) {
    const double t = ev.arrival_ms;
    Status st = DrainDue(&state, engine, options, t);
    if (!st.ok()) return st;

    if (ev.kind == TraceEventKind::kUpdate) {
      // Update events are barriers: every queued query formed before
      // the swap runs on the pre-update epoch, deterministically.
      st = FlushAll(&state, engine, options, t);
      if (!st.ok()) return st;
      Stopwatch sw;
      Result<UpdateStats> up = engine->ApplyUpdates(ev.update);
      if (!up.ok()) return up.status();
      const double wall_ms = sw.ElapsedMillis();
      state.server_free_ms =
          std::max(state.server_free_ms, t) + wall_ms;
      state.report.update_ms += wall_ms;
      state.metrics.RecordUpdate();
      continue;
    }

    const uint64_t id = query_ordinal++;
    RequestOutcome& out = state.report.outcomes[id];
    out.id = id;
    Status submit = state.queue.Submit(id, ev.weights, ev.k, t);
    if (!submit.ok()) {
      // Backlog overflow (or malformed request): explicit rejection at
      // arrival time.
      out.status = std::move(submit);
      out.timing.enqueue_ms = t;
      out.timing.reply_ms = t;
      out.timing.shed = true;
      state.metrics.RecordShed(out.timing);
      continue;
    }
    if (state.queue.ShouldForm(t)) {
      st = ExecuteOneBatch(&state, engine, options, t);
      if (!st.ok()) return st;
    }
  }
  // End of trace: fire the residual backlog at its natural deadline.
  const double tail_ms =
      std::max(trace.duration_ms, state.queue.NextFireTime());
  Status st = FlushAll(&state, engine, options, tail_ms);
  if (!st.ok()) return st;

  state.report.metrics = state.metrics.Finalize();
  return std::move(state.report);
}

}  // namespace gir::serve
