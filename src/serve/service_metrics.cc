#include "serve/service_metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gir::serve {

namespace {

// Same convention as BatchEngine's percentile: nearest-rank over the
// sorted sample.
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

size_t OccupancyBucket(size_t occupancy) {
  size_t b = 0;
  size_t cap = 1;
  while (cap < occupancy) {
    cap <<= 1;
    ++b;
  }
  return b;
}

void AppendNumber(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  out->append(buf);
}

}  // namespace

void SlidingWindow::Record(double reply_ms, double latency_ms) {
  samples_.emplace_back(reply_ms, latency_ms);
  const double horizon = reply_ms - window_ms_;
  while (!samples_.empty() && samples_.front().first <= horizon) {
    samples_.pop_front();
  }
}

SlidingWindow::Snapshot SlidingWindow::At(double now_ms) const {
  Snapshot snap;
  std::vector<double> lat;
  lat.reserve(samples_.size());
  for (const auto& [reply, latency] : samples_) {
    if (reply > now_ms - window_ms_ && reply <= now_ms) {
      lat.push_back(latency);
    }
  }
  snap.count = lat.size();
  if (lat.empty()) return snap;
  std::sort(lat.begin(), lat.end());
  snap.p50_ms = Percentile(lat, 0.50);
  snap.p95_ms = Percentile(lat, 0.95);
  snap.p99_ms = Percentile(lat, 0.99);
  snap.qps = 1000.0 * static_cast<double>(lat.size()) / window_ms_;
  return snap;
}

void MetricsBuilder::RecordServed(const RequestTiming& t) {
  ++metrics_.requests;
  ++metrics_.served;
  latencies_.push_back(t.Latency());
  if (first_enqueue_ms_ < 0.0 || t.enqueue_ms < first_enqueue_ms_) {
    first_enqueue_ms_ = t.enqueue_ms;
  }
  last_reply_ms_ = std::max(last_reply_ms_, t.reply_ms);
  window_.Record(t.reply_ms, t.Latency());
  const SlidingWindow::Snapshot snap = window_.At(t.reply_ms);
  metrics_.window_p99_peak_ms =
      std::max(metrics_.window_p99_peak_ms, snap.p99_ms);
}

void MetricsBuilder::RecordShed(const RequestTiming& t) {
  ++metrics_.requests;
  ++metrics_.shed;
  if (first_enqueue_ms_ < 0.0 || t.enqueue_ms < first_enqueue_ms_) {
    first_enqueue_ms_ = t.enqueue_ms;
  }
  last_reply_ms_ = std::max(last_reply_ms_, t.reply_ms);
}

void MetricsBuilder::RecordFailed(StatusCode code) {
  ++metrics_.requests;
  ++metrics_.failed;
  if (code == StatusCode::kUnavailable) ++metrics_.unavailable;
}

void MetricsBuilder::RecordFaultRetries(uint64_t retries,
                                        uint64_t successes) {
  metrics_.fault_retries += retries;
  metrics_.retry_successes += successes;
}

void MetricsBuilder::RecordPrefetch(uint64_t issued, uint64_t hits,
                                    uint64_t misses) {
  metrics_.prefetch_issued += issued;
  metrics_.prefetch_hits += hits;
  metrics_.prefetch_misses += misses;
}

void MetricsBuilder::RecordRecovery(double ms) {
  ++metrics_.recoveries;
  metrics_.recovery_ms += ms;
}

void MetricsBuilder::RecordWalCommit(uint64_t appends,
                                     uint64_t group_commits) {
  metrics_.wal_appends += appends;
  metrics_.wal_group_commits += group_commits;
}

void MetricsBuilder::RecordWalReplay(uint64_t batches) {
  metrics_.wal_replayed_batches += batches;
}

void MetricsBuilder::RecordWalTruncate(uint64_t segments) {
  metrics_.wal_truncated_segments += segments;
}

void MetricsBuilder::RecordBatch(size_t occupancy, size_t width) {
  if (occupancy == 0) return;
  ++metrics_.batches;
  occupancy_sum_ += occupancy;
  width_sum_ += width;
  const size_t bucket = OccupancyBucket(occupancy);
  if (metrics_.occupancy_histogram.size() <= bucket) {
    metrics_.occupancy_histogram.resize(bucket + 1, 0);
  }
  ++metrics_.occupancy_histogram[bucket];
}

void MetricsBuilder::RecordUpdate() { ++metrics_.update_events; }

ServiceMetrics MetricsBuilder::Finalize() {
  std::vector<double> sorted = latencies_;
  std::sort(sorted.begin(), sorted.end());
  metrics_.p50_ms = Percentile(sorted, 0.50);
  metrics_.p95_ms = Percentile(sorted, 0.95);
  metrics_.p99_ms = Percentile(sorted, 0.99);
  metrics_.max_ms = sorted.empty() ? 0.0 : sorted.back();
  double sum = 0.0;
  for (double v : sorted) sum += v;
  metrics_.mean_ms =
      sorted.empty() ? 0.0 : sum / static_cast<double>(sorted.size());
  metrics_.duration_ms =
      first_enqueue_ms_ < 0.0 ? 0.0 : last_reply_ms_ - first_enqueue_ms_;
  if (metrics_.duration_ms > 0.0) {
    metrics_.achieved_qps = 1000.0 * static_cast<double>(metrics_.served) /
                            metrics_.duration_ms;
    metrics_.offered_qps = 1000.0 * static_cast<double>(metrics_.requests) /
                           metrics_.duration_ms;
  }
  if (metrics_.batches > 0) {
    metrics_.mean_batch_occupancy =
        static_cast<double>(occupancy_sum_) /
        static_cast<double>(metrics_.batches);
    metrics_.mean_width = static_cast<double>(width_sum_) /
                          static_cast<double>(metrics_.batches);
  }
  return metrics_;
}

std::string MetricsJson(const ServiceMetrics& m) {
  std::string out = "{";
  const auto field = [&out](const char* name, double v, bool first = false) {
    if (!first) out += ", ";
    out += "\"";
    out += name;
    out += "\": ";
    AppendNumber(&out, v);
  };
  const auto count = [&out](const char* name, uint64_t v) {
    out += ", \"";
    out += name;
    out += "\": ";
    out += std::to_string(v);
  };
  out += "\"requests\": " + std::to_string(m.requests);
  count("served", m.served);
  count("shed", m.shed);
  count("failed", m.failed);
  count("update_events", m.update_events);
  count("batches", m.batches);
  field("duration_ms", m.duration_ms);
  field("p50_ms", m.p50_ms);
  field("p95_ms", m.p95_ms);
  field("p99_ms", m.p99_ms);
  field("max_ms", m.max_ms);
  field("mean_ms", m.mean_ms);
  field("achieved_qps", m.achieved_qps);
  field("offered_qps", m.offered_qps);
  field("shed_rate", m.ShedRate());
  field("mean_batch_occupancy", m.mean_batch_occupancy);
  field("mean_width", m.mean_width);
  field("window_p99_peak_ms", m.window_p99_peak_ms);
  count("unavailable", m.unavailable);
  count("fault_retries", m.fault_retries);
  count("retry_successes", m.retry_successes);
  count("recoveries", m.recoveries);
  field("recovery_ms", m.recovery_ms);
  count("prefetch_issued", m.prefetch_issued);
  count("prefetch_hits", m.prefetch_hits);
  count("prefetch_misses", m.prefetch_misses);
  count("wal_appends", m.wal_appends);
  count("wal_group_commits", m.wal_group_commits);
  count("wal_replayed_batches", m.wal_replayed_batches);
  count("wal_truncated_segments", m.wal_truncated_segments);
  field("availability", m.Availability());
  out += ", \"occupancy_histogram\": [";
  for (size_t b = 0; b < m.occupancy_histogram.size(); ++b) {
    if (b > 0) out += ", ";
    out += std::to_string(m.occupancy_histogram[b]);
  }
  out += "]}";
  return out;
}

}  // namespace gir::serve
