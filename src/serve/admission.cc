#include "serve/admission.h"

#include <algorithm>
#include <cmath>

namespace gir::serve {

namespace {

// Unit-normalized copy of w (cosine similarity is a dot of these).
Vec UnitOf(const Vec& w) {
  double norm_sq = 0.0;
  for (double x : w) norm_sq += x * x;
  const double norm = std::sqrt(norm_sq);
  Vec u(w.size());
  if (norm <= 0.0) return u;
  for (size_t j = 0; j < w.size(); ++j) u[j] = w[j] / norm;
  return u;
}

}  // namespace

FormedBatch ClusterForExecution(std::vector<ServiceRequest> requests,
                                const AdmissionOptions& options,
                                double now_ms) {
  FormedBatch out;
  out.formed_ms = now_ms;
  const size_t n = requests.size();
  if (n == 0) return out;

  // Greedy leader clustering on the unit sphere: a request joins the
  // first cluster whose leader it matches, else founds a new one.
  // Deterministic in input (arrival) order.
  std::vector<Vec> leaders;
  std::vector<std::vector<uint32_t>> members;
  for (size_t i = 0; i < n; ++i) {
    const Vec u = UnitOf(requests[i].weights);
    size_t home = leaders.size();
    for (size_t c = 0; c < leaders.size(); ++c) {
      if (leaders[c].size() != u.size()) continue;
      double dot = 0.0;
      for (size_t j = 0; j < u.size(); ++j) dot += leaders[c][j] * u[j];
      if (dot >= options.cluster_cos) {
        home = c;
        break;
      }
    }
    if (home == leaders.size()) {
      leaders.push_back(u);
      members.emplace_back();
    }
    members[home].push_back(static_cast<uint32_t>(i));
  }

  // Execution order: clusters by descending size (ties: first
  // arrival), stragglers (size 1) last. Each cluster keeps its
  // members' arrival order inside.
  std::vector<uint32_t> cluster_order(members.size());
  for (size_t c = 0; c < members.size(); ++c) {
    cluster_order[c] = static_cast<uint32_t>(c);
  }
  std::sort(cluster_order.begin(), cluster_order.end(),
            [&](uint32_t a, uint32_t b) {
              if (members[a].size() != members[b].size()) {
                return members[a].size() > members[b].size();
              }
              return members[a].front() < members[b].front();
            });

  out.requests.reserve(n);
  out.group_of.reserve(n);
  size_t max_cluster = 0;
  for (uint32_t c : cluster_order) {
    const std::vector<uint32_t>& m = members[c];
    max_cluster = std::max(max_cluster, m.size());
    if (m.size() >= 2) {
      ++out.clusters;
    } else {
      ++out.stragglers;
    }
    for (uint32_t i : m) {
      out.requests.push_back(std::move(requests[i]));
      out.group_of.push_back(c);
    }
  }
  // Adaptive width: the dominant archetype bucket sets the group size;
  // an all-straggler batch degenerates to width 1 = per-query
  // traversal (fan-out fallback).
  out.width = std::max<size_t>(
      1, std::min(max_cluster, std::max<size_t>(1, options.max_width)));
  return out;
}

Status AdmissionQueue::Submit(uint64_t id, Vec weights, size_t k,
                              double now_ms) {
  if (weights.empty()) {
    return Status::InvalidArgument("empty weight vector");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (shut_down_) {
    return Status::Unavailable("admission queue shut down");
  }
  if (queue_.size() >= options_.queue_capacity) {
    return Status::ResourceExhausted("admission queue at capacity");
  }
  ServiceRequest req;
  req.id = id;
  req.weights = std::move(weights);
  req.k = k;
  req.enqueue_ms = now_ms;
  req.deadline_ms = now_ms + options_.deadline_ms;
  queue_.push_back(std::move(req));
  return Status::Ok();
}

double AdmissionQueue::NextFireTime() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return -1.0;
  if (queue_.size() >= options_.max_batch) return queue_.front().enqueue_ms;
  return queue_.front().enqueue_ms + options_.max_wait_ms;
}

bool AdmissionQueue::ShouldForm(double now_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  if (queue_.size() >= options_.max_batch) return true;
  return now_ms - queue_.front().enqueue_ms >= options_.max_wait_ms;
}

FormedBatch AdmissionQueue::Form(double now_ms,
                                 std::vector<ShedRequest>* shed) {
  std::vector<ServiceRequest> admitted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t take = std::min(queue_.size(), options_.max_batch);
    admitted.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      ServiceRequest req = std::move(queue_.front());
      queue_.pop_front();
      if (req.deadline_ms < now_ms) {
        // Expired while queued: provably cannot reply in time; reject
        // explicitly rather than compute a dead answer.
        if (shed != nullptr) {
          shed->push_back(ShedRequest{
              std::move(req),
              Status::ResourceExhausted("deadline expired in queue")});
        }
        continue;
      }
      admitted.push_back(std::move(req));
    }
  }
  return ClusterForExecution(std::move(admitted), options_, now_ms);
}

size_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::vector<ShedRequest> AdmissionQueue::Shutdown() {
  std::vector<ShedRequest> drained;
  std::lock_guard<std::mutex> lock(mu_);
  shut_down_ = true;
  drained.reserve(queue_.size());
  while (!queue_.empty()) {
    drained.push_back(
        ShedRequest{std::move(queue_.front()),
                    Status::Unavailable("admission queue shut down")});
    queue_.pop_front();
  }
  return drained;
}

bool AdmissionQueue::shut_down() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shut_down_;
}

}  // namespace gir::serve
