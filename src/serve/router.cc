#include "serve/router.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <optional>
#include <string>
#include <utility>

namespace gir::serve {

namespace {

// Per-request rendezvous between the routing thread and its attempts.
// Shared by shared_ptr so a straggler (hedge loser, post-deadline
// reply) lands harmlessly after Route returned.
struct Rendezvous {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;    // a winning reply was recorded
  int pending = 0;      // attempts dispatched but not yet replied
  size_t winner = 0;
  bool winner_is_hedge = false;
  std::optional<GirComputation> win;
  Status last_error = Status::Ok();
};

double WindowPercentile(std::vector<double> sorted_copy, double q) {
  if (sorted_copy.empty()) return 0.0;
  std::sort(sorted_copy.begin(), sorted_copy.end());
  const size_t at = static_cast<size_t>(
      q * static_cast<double>(sorted_copy.size() - 1) + 0.5);
  return sorted_copy[std::min(at, sorted_copy.size() - 1)];
}

}  // namespace

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

Router::Router(ReplicaGroup* group, RouterOptions options)
    : group_(group),
      options_(options),
      breakers_(group->size()),
      pool_(options.threads > 0 ? options.threads : group->size() + 1) {}

Router::~Router() = default;

std::vector<size_t> Router::EligibleOrder(uint64_t pin_epoch) {
  const double now = NowMs();
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = group_->size();
  std::vector<size_t> order;
  order.reserve(n);
  const size_t start = rr_cursor_++ % n;
  for (size_t j = 0; j < n; ++j) {
    const size_t i = (start + j) % n;
    if (!BreakerAdmits(i, now)) continue;
    // The epoch pin: a replica behind the request's pinned version is
    // not an answer source, not even as a last resort — failing the
    // request is better than un-seeing an acknowledged update.
    if (group_->replica(i)->epoch() < pin_epoch) continue;
    order.push_back(i);
  }
  return order;
}

bool Router::BreakerAdmits(size_t i, double now_ms) {
  Breaker& b = breakers_[i];
  switch (b.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kHalfOpen:
      // Live traffic through a half-open breaker doubles as a probe.
      return true;
    case BreakerState::kOpen:
      if (now_ms < b.open_until_ms) return false;
      b.state = BreakerState::kHalfOpen;
      return true;
  }
  return false;
}

void Router::OnAttemptResult(size_t i, bool ok, bool won_as_hedge,
                             double ms) {
  (void)ms;
  std::lock_guard<std::mutex> lock(mu_);
  Breaker& b = breakers_[i];
  if (ok) {
    ++b.served;
    if (won_as_hedge) ++b.hedges_won;
    b.consecutive_failures = 0;
    b.reopen_count = 0;
    b.state = BreakerState::kClosed;
    return;
  }
  ++b.failures;
  ++b.consecutive_failures;
  if (b.consecutive_failures >= options_.breaker_threshold ||
      b.state == BreakerState::kHalfOpen) {
    const double backoff =
        std::min(options_.breaker_open_ms *
                     std::pow(options_.breaker_backoff_factor,
                              static_cast<double>(b.reopen_count)),
                 options_.breaker_max_open_ms);
    b.state = BreakerState::kOpen;
    b.open_until_ms = NowMs() + backoff;
    ++b.reopen_count;
  }
}

double Router::HedgeDelayMs(const ExecPolicy& policy) const {
  if (policy.hedge_delay_ms > 0.0) return policy.hedge_delay_ms;
  std::lock_guard<std::mutex> lock(mu_);
  if (latency_window_.size() < 16) return options_.hedge_cold_ms;
  return std::max(options_.hedge_floor_ms,
                  WindowPercentile(latency_window_, 0.99));
}

void Router::RecordLatency(double ms) {
  if (latency_window_.size() < options_.latency_window) {
    latency_window_.push_back(ms);
  } else if (!latency_window_.empty()) {
    latency_window_[latency_next_ % latency_window_.size()] = ms;
  }
  ++latency_next_;
}

Result<RoutedReply> Router::Route(VecView weights, size_t k,
                                  Phase2Method method,
                                  const ExecPolicy& policy) {
  Status policy_ok = ValidateExecPolicy(policy);
  if (!policy_ok.ok()) return policy_ok;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++metrics_.requests;
  }
  std::vector<size_t> order = EligibleOrder(policy.pin_epoch);
  if (order.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++metrics_.unroutable;
    return Status::Unavailable(
        "no eligible replica (breakers open or every epoch behind pin " +
        std::to_string(policy.pin_epoch) + ")");
  }

  auto state = std::make_shared<Rendezvous>();
  auto w = std::make_shared<const Vec>(weights.data(),
                                       weights.data() + weights.size());
  Stopwatch sw;
  size_t next = 0;
  const auto dispatch = [&](bool is_hedge) {
    const size_t idx = order[next++];
    {
      std::lock_guard<std::mutex> lock(state->mu);
      ++state->pending;
    }
    pool_.Submit([this, state, w, k, method, idx, is_hedge] {
      Stopwatch attempt_sw;
      Result<GirComputation> r = group_->replica(idx)->Compute(
          VecView(w->data(), w->size()), k, method);
      const double ms = attempt_sw.ElapsedMillis();
      bool won = false;
      {
        std::lock_guard<std::mutex> lock(state->mu);
        --state->pending;
        if (r.ok() && !state->done) {
          state->done = true;
          state->winner = idx;
          state->winner_is_hedge = is_hedge;
          state->win.emplace(std::move(*r));
          won = true;
        } else if (!r.ok()) {
          state->last_error = r.status();
        }
      }
      state->cv.notify_all();
      OnAttemptResult(idx, r.ok(), won && is_hedge, ms);
    });
  };

  dispatch(/*is_hedge=*/false);
  const double hedge_delay =
      options_.hedge && order.size() > 1 ? HedgeDelayMs(policy) : -1.0;
  const double deadline = policy.deadline_ms;
  bool hedged = false;
  uint32_t failovers = 0;
  bool deadline_hit = false;

  std::unique_lock<std::mutex> lock(state->mu);
  for (;;) {
    if (state->done) break;
    const double now = sw.ElapsedMillis();
    if (deadline > 0.0 && now >= deadline) {
      deadline_hit = true;
      break;
    }
    if (state->pending == 0) {
      // Every outstanding attempt failed: fail over to the next
      // eligible replica, if one remains.
      if (next < order.size()) {
        lock.unlock();
        {
          std::lock_guard<std::mutex> g(mu_);
          ++metrics_.failovers;
        }
        ++failovers;
        dispatch(/*is_hedge=*/false);
        lock.lock();
        continue;
      }
      break;  // exhausted every eligible replica
    }
    if (!hedged && hedge_delay >= 0.0 && next < order.size() &&
        now >= hedge_delay) {
      lock.unlock();
      {
        std::lock_guard<std::mutex> g(mu_);
        ++metrics_.hedges_dispatched;
      }
      hedged = true;
      dispatch(/*is_hedge=*/true);
      lock.lock();
      continue;
    }
    // Sleep until the next horizon: a reply, the hedge point, or the
    // deadline — whichever lands first (bounded heartbeat otherwise).
    double wait_ms = 10.0;
    if (deadline > 0.0) wait_ms = std::min(wait_ms, deadline - now);
    if (!hedged && hedge_delay >= 0.0 && next < order.size()) {
      wait_ms = std::min(wait_ms, std::max(hedge_delay - now, 0.0));
    }
    state->cv.wait_for(lock, std::chrono::duration<double, std::milli>(
                                 std::max(wait_ms, 0.05)));
  }
  const bool done = state->done;
  RoutedReply reply;
  Status last_error = state->last_error;
  if (done) {
    GirComputation& gc = *state->win;
    reply.topk = std::move(gc.topk.result);
    reply.scores = std::move(gc.topk.scores);
    reply.served_epoch = gc.snapshot_version;
    reply.replica = static_cast<int>(state->winner);
    reply.hedge_won = state->winner_is_hedge;
  }
  lock.unlock();

  if (!done) {
    std::lock_guard<std::mutex> g(mu_);
    ++metrics_.failed;
    if (deadline_hit) {
      return Status::Unavailable("routed request missed its deadline");
    }
    return Status::Unavailable("every eligible replica failed: " +
                               last_error.message());
  }

  reply.hedged = hedged;
  reply.failovers = failovers;
  reply.latency_ms = sw.ElapsedMillis();
  {
    std::lock_guard<std::mutex> g(mu_);
    ++metrics_.served;
    if (hedged) {
      if (reply.hedge_won) {
        ++metrics_.hedge_wins;
      } else {
        ++metrics_.hedge_losses;
      }
    }
    if (policy.pin_epoch > 0 && reply.served_epoch < policy.pin_epoch) {
      ++metrics_.pin_violations;  // must never happen; gated at 0
    }
    RecordLatency(reply.latency_ms);
  }
  return reply;
}

void Router::RunHealthChecks() {
  const size_t n = group_->size();
  for (size_t i = 0; i < n; ++i) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      Breaker& b = breakers_[i];
      if (b.state == BreakerState::kOpen) {
        if (NowMs() < b.open_until_ms) continue;  // still backing off
        b.state = BreakerState::kHalfOpen;
      }
      ++b.probes;
    }
    Replica* replica = group_->replica(i);
    const size_t dim = replica->dim();
    const Vec w(dim, 1.0 / static_cast<double>(dim));
    Stopwatch probe_sw;
    Result<GirComputation> r = replica->Compute(
        VecView(w.data(), w.size()), options_.probe_k, Phase2Method::kFP);
    const double ms = probe_sw.ElapsedMillis();
    const bool ok = r.ok() && ms <= options_.probe_timeout_ms;

    std::lock_guard<std::mutex> lock(mu_);
    Breaker& b = breakers_[i];
    if (ok) {
      b.consecutive_failures = 0;
      b.reopen_count = 0;
      b.state = BreakerState::kClosed;
      continue;
    }
    ++b.probe_failures;
    ++b.consecutive_failures;
    if (b.consecutive_failures >= options_.breaker_threshold ||
        b.state == BreakerState::kHalfOpen) {
      const double backoff =
          std::min(options_.breaker_open_ms *
                       std::pow(options_.breaker_backoff_factor,
                                static_cast<double>(b.reopen_count)),
                   options_.breaker_max_open_ms);
      b.state = BreakerState::kOpen;
      b.open_until_ms = NowMs() + backoff;
      ++b.reopen_count;
    }
  }
}

RouterMetrics Router::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RouterMetrics out = metrics_;
  out.p50_ms = WindowPercentile(latency_window_, 0.50);
  out.p99_ms = WindowPercentile(latency_window_, 0.99);
  out.replicas.clear();
  out.replicas.reserve(breakers_.size());
  for (size_t i = 0; i < breakers_.size(); ++i) {
    const Breaker& b = breakers_[i];
    ReplicaHealthView view;
    view.state = b.state;
    view.epoch = group_->replica(i)->epoch();
    view.consecutive_failures = b.consecutive_failures;
    view.served = b.served;
    view.failures = b.failures;
    view.probes = b.probes;
    view.probe_failures = b.probe_failures;
    view.hedges_won = b.hedges_won;
    out.replicas.push_back(view);
  }
  return out;
}

}  // namespace gir::serve
