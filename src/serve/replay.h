#ifndef GIR_SERVE_REPLAY_H_
#define GIR_SERVE_REPLAY_H_

#include <vector>

#include "gir/batch_engine.h"
#include "serve/admission.h"
#include "serve/service_metrics.h"
#include "serve/traffic_gen.h"

namespace gir::serve {

struct ReplayOptions {
  AdmissionOptions admission;
  // Adaptive: each formed batch runs with its archetype-cluster groups
  // and adaptively chosen width. Static: plain chunking at
  // static_width (the pre-PR6 knob) — the bench's comparison baseline.
  bool adaptive_width = true;
  size_t static_width = 64;
  Phase2Method method = Phase2Method::kFP;
  // Shed a request at dispatch when the server cannot even *start* its
  // batch before the deadline. Off = deadline accounting only (the
  // determinism tests replay shed-free).
  bool shed_on_dispatch = true;
  double window_ms = 1000.0;  // sliding-window metric width
};

// Outcome of one query event, in trace order. status is Ok (topk
// filled), a ResourceExhausted shed, or a per-query engine error.
struct RequestOutcome {
  uint64_t id = 0;  // query ordinal within the trace
  Status status = Status::Ok();
  std::vector<RecordId> topk;
  RequestTiming timing;
};

struct ServiceReport {
  ServiceMetrics metrics;
  std::vector<RequestOutcome> outcomes;  // one per trace query event
  // Engine-side aggregates across all executed batches.
  uint64_t charged_reads = 0;
  uint64_t amortized_reads = 0;
  uint64_t deadline_misses = 0;
  double compute_ms = 0.0;  // real engine busy time (measured)
  double update_ms = 0.0;   // real ApplyUpdates time (measured)
};

// Open-loop trace replay against a BatchEngine, on a virtual service
// clock: arrivals happen at their trace timestamps, batch formation
// follows the admission policy (max_wait / max_batch / barriers at
// update events), and each batch's *measured* compute wall time
// advances a single-server busy clock — so queueing delay, batch
// latency and shedding emerge from real engine speed at the configured
// arrival rate, even on one core. Per-request results are bit-identical
// to direct ComputeGir calls in arrival order with the same update
// barriers (grouping, batching and width never change results — the
// shared-traversal contract), which is what the determinism test pins.
//
// Every query event gets exactly one outcome: served, explicitly shed
// (ResourceExhausted), or failed — never silently dropped. Requires an
// engine with shared_traversal enabled when adaptive_width is set, and
// a trace whose queries share one k (the trace generator's contract).
Result<ServiceReport> ReplayTrace(const Trace& trace, BatchEngine* engine,
                                  const ReplayOptions& options);

}  // namespace gir::serve

#endif  // GIR_SERVE_REPLAY_H_
