#include "serve/traffic_gen.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace gir::serve {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Instantaneous arrival rate at trace time t (queries+updates per
// second).
double RateAt(const TrafficConfig& c, double t_ms) {
  double rate = c.base_qps;
  if (c.diurnal_amplitude > 0.0) {
    rate *= 1.0 + c.diurnal_amplitude *
                      std::sin(2.0 * kPi * t_ms / c.diurnal_period_ms);
  }
  if (c.burst_every_ms > 0.0 && c.burst_factor != 1.0) {
    const double phase = std::fmod(t_ms, c.burst_every_ms);
    if (phase < c.burst_len_ms) rate *= c.burst_factor;
  }
  return rate;
}

// Key -> fixed archetype weight vector. Each key owns a private RNG
// seeded from (trace seed, key), so the mapping is stable under every
// other config knob — the same key means the same weights across
// rates, mixes and trace lengths.
Vec KeyWeights(const TrafficConfig& c, uint32_t key) {
  Rng rng(c.seed * 0x9E3779B97F4A7C15ULL + 0x51ED2701 + key);
  Vec w(c.dim);
  for (size_t j = 0; j < c.dim; ++j) w[j] = rng.Uniform(0.05, 1.0);
  return w;
}

}  // namespace

Result<Trace> GenerateTrace(const TrafficConfig& c) {
  if (c.dim == 0) return Status::InvalidArgument("dim must be positive");
  if (c.k == 0) return Status::InvalidArgument("k must be positive");
  if (c.base_qps <= 0.0) {
    return Status::InvalidArgument("base_qps must be positive");
  }
  if (c.key_pool == 0) {
    return Status::InvalidArgument("key_pool must be positive");
  }
  if (c.zipf_s < 0.0) {
    return Status::InvalidArgument("zipf_s must be nonnegative");
  }
  if (!(c.diurnal_amplitude >= 0.0 && c.diurnal_amplitude < 1.0)) {
    return Status::InvalidArgument("diurnal_amplitude must be in [0, 1)");
  }
  if (c.update_ratio < 0.0 || c.update_ratio > 1.0) {
    return Status::InvalidArgument("update_ratio must be in [0, 1]");
  }
  if (c.delete_fraction < 0.0 || c.delete_fraction > 1.0) {
    return Status::InvalidArgument("delete_fraction must be in [0, 1]");
  }
  const size_t deletes_per_batch = static_cast<size_t>(
      c.delete_fraction * static_cast<double>(c.updates_per_batch));
  if (c.update_ratio > 0.0 && deletes_per_batch > 0 &&
      c.initial_records == 0) {
    return Status::InvalidArgument(
        "delete-bearing update stream needs initial_records > 0");
  }

  // Zipf CDF over key ranks: P(rank r) ~ 1 / (r+1)^s.
  std::vector<double> zipf_cdf(c.key_pool);
  {
    double total = 0.0;
    for (size_t r = 0; r < c.key_pool; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), c.zipf_s);
      zipf_cdf[r] = total;
    }
    for (double& v : zipf_cdf) v /= total;
  }
  // Archetype weights materialized once; queries reference them so the
  // hot keys repeat bitwise.
  std::vector<Vec> key_weights(c.key_pool);
  for (size_t r = 0; r < c.key_pool; ++r) {
    key_weights[r] = KeyWeights(c, static_cast<uint32_t>(r));
  }

  Trace trace;
  trace.config = c;
  trace.events.reserve(c.events);
  Rng rng(c.seed);

  // Live-id bookkeeping for the update stream: initial dataset ids plus
  // this trace's own inserts, minus its own deletes. Appends get
  // sequential ids (Dataset::AppendRecord contract), so the next insert
  // id is a plain counter.
  std::vector<RecordId> live;
  RecordId next_insert_id = static_cast<RecordId>(c.initial_records);
  if (c.update_ratio > 0.0 && deletes_per_batch > 0) {
    live.reserve(c.initial_records + c.events * c.updates_per_batch);
    for (size_t i = 0; i < c.initial_records; ++i) {
      live.push_back(static_cast<RecordId>(i));
    }
  }

  double now_ms = 0.0;
  for (size_t e = 0; e < c.events; ++e) {
    // Exponential gap at the rate in effect at the previous arrival
    // (piecewise-constant approximation of the non-homogeneous
    // process; exact for flat config).
    const double rate = RateAt(c, now_ms);
    const double u = std::max(1e-12, 1.0 - rng.Uniform());
    now_ms += -std::log(u) / rate * 1000.0;

    TraceEvent ev;
    ev.arrival_ms = now_ms;
    if (c.update_ratio > 0.0 && rng.Uniform() < c.update_ratio) {
      ev.kind = TraceEventKind::kUpdate;
      const size_t deletes =
          std::min(deletes_per_batch, live.size());
      for (size_t d = 0; d < deletes; ++d) {
        const size_t pick = rng.UniformInt(live.size());
        ev.update.deletes.push_back(live[pick]);
        live[pick] = live.back();
        live.pop_back();
      }
      for (size_t i = deletes; i < c.updates_per_batch; ++i) {
        Vec p(c.dim);
        for (size_t j = 0; j < c.dim; ++j) p[j] = rng.Uniform();
        ev.update.inserts.push_back(std::move(p));
        if (deletes_per_batch > 0) live.push_back(next_insert_id);
        ++next_insert_id;
      }
      ++trace.updates;
    } else {
      ev.kind = TraceEventKind::kQuery;
      const double z = rng.Uniform();
      const size_t rank = static_cast<size_t>(
          std::lower_bound(zipf_cdf.begin(), zipf_cdf.end(), z) -
          zipf_cdf.begin());
      ev.key = static_cast<uint32_t>(std::min(rank, c.key_pool - 1));
      ev.k = c.k;
      if (c.jitter_prob > 0.0 && rng.Uniform() < c.jitter_prob) {
        Vec w(c.dim);
        const Vec& center = key_weights[ev.key];
        for (size_t j = 0; j < c.dim; ++j) {
          w[j] = std::min(
              1.0, std::max(0.01, center[j] + rng.Gaussian(0.0, c.jitter)));
        }
        ev.weights = std::move(w);
      } else {
        ev.weights = key_weights[ev.key];
      }
      ++trace.queries;
    }
    trace.events.push_back(std::move(ev));
  }
  trace.duration_ms = now_ms;
  return trace;
}

}  // namespace gir::serve
