#ifndef GIR_SERVE_SERVICE_METRICS_H_
#define GIR_SERVE_SERVICE_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/status.h"

namespace gir::serve {

// Per-request lifecycle timestamps on the service clock (trace time in
// the replayer; wall time in a live front door). A shed request keeps
// its enqueue stamp and the reject time in reply_ms.
struct RequestTiming {
  double enqueue_ms = 0.0;
  double admit_ms = 0.0;          // batch formation time
  double compute_start_ms = 0.0;  // engine picked the batch up
  double compute_end_ms = 0.0;
  double reply_ms = 0.0;
  bool shed = false;
  double Latency() const { return reply_ms - enqueue_ms; }
};

// Sliding-window latency/throughput tracker: keeps (reply time,
// latency) samples inside the trailing window and answers p50/p95/p99
// and achieved QPS over it. Single-writer (the serving loop); snapshots
// are taken between records.
class SlidingWindow {
 public:
  explicit SlidingWindow(double window_ms = 1000.0)
      : window_ms_(window_ms) {}

  void Record(double reply_ms, double latency_ms);

  struct Snapshot {
    size_t count = 0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double qps = 0.0;
  };
  // Quantiles over samples with reply time in (now_ms - window, now_ms].
  Snapshot At(double now_ms) const;

  double window_ms() const { return window_ms_; }

 private:
  double window_ms_;
  std::deque<std::pair<double, double>> samples_;  // (reply, latency)
};

// Whole-run service metrics, aggregated by the serving loop and dumped
// as one JSON object (MetricsJson). Latency percentiles are over
// served requests end-to-end: enqueue -> admit -> compute -> reply.
struct ServiceMetrics {
  size_t requests = 0;       // query arrivals offered
  size_t served = 0;
  size_t shed = 0;           // explicit ResourceExhausted rejections
  size_t failed = 0;         // per-query engine errors
  size_t update_events = 0;  // update batches applied
  size_t batches = 0;        // batches executed
  double duration_ms = 0.0;  // first enqueue to last reply
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double mean_ms = 0.0;
  double achieved_qps = 0.0;  // served / duration
  double offered_qps = 0.0;   // requests / duration
  double mean_batch_occupancy = 0.0;
  double mean_width = 0.0;  // mean chosen shared_group_width per batch
  // Batch-occupancy histogram: bucket b counts batches of size in
  // (2^(b-1), 2^b], bucket 0 counts size-1 batches.
  std::vector<uint64_t> occupancy_histogram;
  // Worst sliding-window p99 observed during the run (the SLA metric a
  // dashboard alarms on; the full-run p99 hides transients).
  double window_p99_peak_ms = 0.0;

  // ----- fault / recovery accounting -----
  // Of `failed`, how many were terminal kUnavailable — storage faults
  // that outlived the engine's retry budget. Always explicit rejections
  // delivered to the client, never silent drops.
  size_t unavailable = 0;
  uint64_t fault_retries = 0;    // engine retry attempts, run-wide
  uint64_t retry_successes = 0;  // queries served only thanks to a retry
  size_t recoveries = 0;         // snapshot recoveries performed
  double recovery_ms = 0.0;      // total time spent in recovery

  // ----- mmap-arena frontier prefetch (zero on heap-backed engines) --
  // Pages madvise'd ahead of their traversal round, and of the unique
  // physical fetches, how many found the page resident vs. faulted it
  // in synchronously. The hit fraction is the overlap the prefetcher
  // actually bought.
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_misses = 0;

  // ----- write-ahead log (zero when the engine runs without a WAL) --
  // Appends are acknowledged batches; group commits are the fsyncs that
  // made them durable (appends / group_commits is the amortization the
  // group-commit window bought). Replayed batches count recovery work;
  // truncated segments count checkpoint reclamation.
  uint64_t wal_appends = 0;
  uint64_t wal_group_commits = 0;
  uint64_t wal_replayed_batches = 0;
  uint64_t wal_truncated_segments = 0;

  double ShedRate() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(shed) / static_cast<double>(requests);
  }
  // Fraction of offered requests that got a successful reply; sheds and
  // failures (of any kind) both count against it.
  double Availability() const {
    return requests == 0 ? 1.0
                         : static_cast<double>(served) /
                               static_cast<double>(requests);
  }
};

// Accumulates ServiceMetrics from per-request timings and per-batch
// shapes; Finalize computes the percentile/rate fields.
class MetricsBuilder {
 public:
  explicit MetricsBuilder(double window_ms = 1000.0) : window_(window_ms) {}

  void RecordServed(const RequestTiming& t);
  void RecordShed(const RequestTiming& t);
  void RecordFailed() { RecordFailed(StatusCode::kInternal); }
  // Classified failure: kUnavailable failures are tracked separately as
  // the degradation the fault-injection harness measures.
  void RecordFailed(StatusCode code);
  void RecordBatch(size_t occupancy, size_t width);
  void RecordUpdate();
  // Engine-side retry accounting of one executed batch.
  void RecordFaultRetries(uint64_t retries, uint64_t successes);
  // Frontier-prefetch accounting of one executed batch.
  void RecordPrefetch(uint64_t issued, uint64_t hits, uint64_t misses);
  // One snapshot recovery taking `ms` of service time.
  void RecordRecovery(double ms);
  // WAL accounting: durable appends vs. the group commits (fsyncs) that
  // covered them. Typically fed from WalWriter::Stats deltas.
  void RecordWalCommit(uint64_t appends, uint64_t group_commits);
  // Batches re-applied from the WAL during recovery.
  void RecordWalReplay(uint64_t batches);
  // Segments reclaimed by a checkpoint truncation.
  void RecordWalTruncate(uint64_t segments);

  const SlidingWindow& window() const { return window_; }
  ServiceMetrics Finalize();

 private:
  SlidingWindow window_;
  std::vector<double> latencies_;
  ServiceMetrics metrics_;
  double first_enqueue_ms_ = -1.0;
  double last_reply_ms_ = 0.0;
  uint64_t width_sum_ = 0;
  uint64_t occupancy_sum_ = 0;
};

// The metrics struct as one JSON object (stable key order, no trailing
// newline) — what the bench embeds per cell and the example prints.
std::string MetricsJson(const ServiceMetrics& m);

}  // namespace gir::serve

#endif  // GIR_SERVE_SERVICE_METRICS_H_
