#ifndef GIR_SERVE_REPLICA_GROUP_H_
#define GIR_SERVE_REPLICA_GROUP_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "gir/engine.h"
#include "storage/disk_manager.h"
#include "storage/fault_injector.h"
#include "storage/snapshot_store.h"
#include "storage/wal.h"

namespace gir::serve {

// ----- replica tier -----
//
// One leader publishes epochs as mmap'able arena files
// (SnapshotStore::WriteArena); each replica is an independent failure
// domain — its own directory of shipped arena files, its own
// DiskManager, its own FaultInjector — serving queries from an
// arena-backed GirEngine opened FromArena. Replicas never talk to each
// other: the EpochShipper copies `arena-<v>.garn` files leader →
// replica and advances each replica with one atomic epoch swap, and
// the Router (router.h) fans queries across the group.
//
// Because every replica serves the same immutable arena bytes at a
// given epoch, a reply from any replica at epoch v is bit-identical to
// a fault-free single engine serving that file — the property the
// router's failover relies on and the chaos bench gates.

// Replica-level failure domains, driven by tests and the chaos bench:
//   crash        — Kill(): every query and probe fails kUnavailable
//                  instantly (connection refused), until Revive().
//   slow         — SetSlowMs(ms): every query and probe pays an
//                  injected delay before computing (degraded host).
//   stale        — SetStale(true): the shipper skips this replica, so
//                  its epoch lags the leader and pinned reads must
//                  avoid it.
//   corrupt-open — a shipped file lands damaged (the replica store's
//                  FaultPlan torn/corrupt rates): AdoptEpoch's open
//                  fails by checksum and the replica keeps serving its
//                  previous epoch — lag grows, data never lies.
struct ReplicaConfig {
  std::string dir;  // replica-local epoch directory (created on ship)
  // Fault surface for this replica's own storage: page-read faults hit
  // its queries, torn/corrupt write faults hit the files shipped *to*
  // it (the replication transport fails like a local disk does).
  FaultPlan fault_plan;
};

class Replica {
 public:
  using ScoringFactory = std::function<std::unique_ptr<ScoringFunction>()>;

  // Ships the leader's newest valid arena epoch into config.dir (the
  // replica's first epoch), then opens an arena-backed engine over the
  // replica's own copy. Fails if the leader has no valid epoch or the
  // initial ship lands damaged.
  static Result<std::unique_ptr<Replica>> Open(
      const ReplicaConfig& config, const SnapshotStore& leader,
      const ScoringFactory& scoring, const GirEngineOptions& options = {});

  // Serves one query from this replica's current epoch, through its
  // fault domains: killed → kUnavailable immediately; slow → injected
  // delay first; page-read faults per its own FaultPlan.
  Result<GirComputation> Compute(VecView weights, size_t k,
                                 Phase2Method method) const;

  // Ships `version` from the leader into this replica's directory and
  // advances the serving engine onto it (one atomic swap; in-flight
  // readers drain on the old mapping). A damaged ship fails here —
  // kDataLoss from the open-time checksum — and the replica keeps its
  // current epoch. Ships are refused while killed (a down host
  // receives nothing).
  Result<uint64_t> AdoptEpoch(const SnapshotStore& leader, uint64_t version);

  // Delta transport: instead of a full arena file, ships only the
  // leader's WAL segments covering (epoch(), target], replays the
  // committed batches onto a copy of the current epoch's rows, rebuilds
  // and freezes locally, publishes the result as this replica's own
  // arena-<target>.garn (through the same injected-fault surface) and
  // swaps onto it. Query results at `target` are identical to a replica
  // that adopted the leader's arena (the update-vs-rebuild property);
  // only simulated page-id accounting may differ. Any damage — a
  // shipped segment failing its record CRCs, a gap, a torn local
  // publish — fails the adopt and the replica keeps its current epoch;
  // the shipper then falls back to a full arena ship.
  Result<uint64_t> AdoptWalDelta(const WalStore& leader_wal, uint64_t target);

  // After AdoptEpoch: keep-last-N retention on this replica's own
  // directory (see SnapshotStore::GarbageCollect). 0 disables.
  void set_gc_keep_last(size_t n) { gc_keep_last_ = n; }

  uint64_t epoch() const { return engine_->dataset_version(); }
  const std::string& dir() const { return config_.dir; }
  size_t dim() const { return engine_->dataset().dim(); }
  uint64_t open_failures() const {
    return open_failures_.load(std::memory_order_relaxed);
  }

  // ----- chaos controls -----
  void Kill() { killed_.store(true, std::memory_order_release); }
  void Revive() { killed_.store(false, std::memory_order_release); }
  bool killed() const { return killed_.load(std::memory_order_acquire); }
  void SetSlowMs(double ms) { slow_ms_.store(ms, std::memory_order_release); }
  double slow_ms() const { return slow_ms_.load(std::memory_order_acquire); }
  void SetStale(bool stale) {
    stale_.store(stale, std::memory_order_release);
  }
  bool stale() const { return stale_.load(std::memory_order_acquire); }

 private:
  explicit Replica(ReplicaConfig config);

  ReplicaConfig config_;
  FaultInjector injector_;
  DiskManager disk_;
  SnapshotStore store_;  // over config_.dir, writes through injector_
  std::unique_ptr<GirEngine> engine_;
  std::atomic<bool> killed_{false};
  std::atomic<bool> stale_{false};
  std::atomic<double> slow_ms_{0.0};
  std::atomic<uint64_t> open_failures_{0};
  size_t gc_keep_last_ = 0;
};

// The serving fleet: owns the replicas. Lifetime: the leader
// SnapshotStore (and whatever publishes into it) must outlive the
// group only while Open or an EpochShipper runs — replicas serve from
// their own directories and never reach back to the leader's files.
struct ReplicaGroupConfig {
  std::vector<ReplicaConfig> replicas;
  Replica::ScoringFactory scoring;
  GirEngineOptions engine_options;
  size_t gc_keep_last = 0;  // per-replica retention after each adopt
};

class ReplicaGroup {
 public:
  // Opens every replica on the leader's newest valid epoch. All-or-
  // nothing: one replica failing to open fails the group.
  static Result<std::unique_ptr<ReplicaGroup>> Open(
      const ReplicaGroupConfig& config, const SnapshotStore& leader);

  size_t size() const { return replicas_.size(); }
  Replica* replica(size_t i) { return replicas_[i].get(); }
  const Replica* replica(size_t i) const { return replicas_[i].get(); }

  // Smallest epoch any replica serves — what a pin must not exceed if
  // it wants every replica eligible.
  uint64_t MinEpoch() const;
  uint64_t MaxEpoch() const;

 private:
  ReplicaGroup() = default;
  std::vector<std::unique_ptr<Replica>> replicas_;
};

// Propagates leader epochs to the fleet and accounts replication lag.
// One shipper per (leader, group); ShipLatest is called after each
// leader publish (or on a schedule) — it is synchronous and
// deterministic given the fault plans, which is what lets the chaos
// suite replay schedules exactly.
class EpochShipper {
 public:
  // With a non-null `leader_wal` and max_delta_lag > 0, a replica whose
  // lag is within max_delta_lag epochs is advanced by shipping WAL
  // deltas (Replica::AdoptWalDelta) instead of the full arena file; a
  // replica further behind — or a delta that fails (gap, damage) —
  // falls back to the full arena ship. max_delta_lag == 0 (default)
  // keeps the PR9 behaviour: always ship full arenas.
  EpochShipper(const SnapshotStore* leader, ReplicaGroup* group,
               const WalStore* leader_wal = nullptr,
               uint64_t max_delta_lag = 0)
      : leader_(leader),
        group_(group),
        leader_wal_(leader_wal),
        max_delta_lag_(max_delta_lag) {
    lag_histogram_.fill(0);
  }

  struct ShipReport {
    uint64_t leader_epoch = 0;  // newest valid epoch at the leader
    size_t shipped = 0;         // replicas advanced onto leader_epoch
    size_t up_to_date = 0;      // already at or ahead of it
    size_t skipped_stale = 0;   // stale replicas, deliberately skipped
    size_t failed = 0;          // ship/open failures (incl. corrupt-open)
    size_t delta_shipped = 0;   // advanced via WAL delta
    size_t full_shipped = 0;    // advanced via full arena ship
    size_t delta_fallbacks = 0; // delta failed, fell back to full ship
    std::vector<uint64_t> replica_epochs;  // post-ship, per replica
    std::vector<uint64_t> lags;            // leader_epoch - epoch, per replica
  };

  // Ships the leader's newest valid epoch to every live, non-stale
  // replica that is behind it, then records one lag observation per
  // replica into the histogram. NotFound when the leader has no valid
  // epoch yet.
  Result<ShipReport> ShipLatest();

  // Lag of replica i at the last ShipLatest (0 before any).
  uint64_t lag(size_t i) const {
    return i < last_lags_.size() ? last_lags_[i] : 0;
  }

  // Observations of per-replica lag, one per replica per ShipLatest:
  // bucket i counts lag == i, the last bucket is lag >= kLagBuckets-1.
  static constexpr size_t kLagBuckets = 8;
  const std::array<uint64_t, kLagBuckets>& lag_histogram() const {
    return lag_histogram_;
  }

 private:
  const SnapshotStore* leader_;
  ReplicaGroup* group_;
  const WalStore* leader_wal_;
  uint64_t max_delta_lag_;
  std::vector<uint64_t> last_lags_;
  std::array<uint64_t, kLagBuckets> lag_histogram_;
};

}  // namespace gir::serve

#endif  // GIR_SERVE_REPLICA_GROUP_H_
