#ifndef GIR_SERVE_ROUTER_H_
#define GIR_SERVE_ROUTER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "gir/exec_policy.h"
#include "serve/replica_group.h"

namespace gir::serve {

// Routing tier over a ReplicaGroup: per-replica circuit breakers fed
// by active health checks, hedged requests against a p99-derived
// delay, and epoch-pinned failover — a read pinned to epoch v is only
// ever dispatched (primary, hedge, or failover) to a replica whose
// epoch >= v, so an acknowledged update is never un-seen by a later
// read, no matter which replicas die mid-request.
//
// Threading: Route and RunHealthChecks may be called from any thread;
// attempts run on the router's own pool and a straggler (hedge loser,
// post-deadline reply) finishes harmlessly against per-request shared
// state. The router must outlive nothing: its destructor joins the
// pool, draining every in-flight attempt.

struct RouterOptions {
  // Circuit breaker: closed → open after `breaker_threshold`
  // consecutive failures (kUnavailable replies, failed or over-budget
  // probes); open → half-open when the backoff expires (base doubles
  // per consecutive re-open, capped); half-open → closed on one good
  // probe or served read, back to open on a bad one.
  int breaker_threshold = 3;
  double breaker_open_ms = 25.0;
  double breaker_backoff_factor = 2.0;
  double breaker_max_open_ms = 1000.0;

  // Active health checks (RunHealthChecks): one cheap probe query per
  // replica; a reply slower than probe_timeout_ms counts as a miss.
  double probe_timeout_ms = 100.0;
  size_t probe_k = 1;

  // Hedged requests: when the primary hasn't replied within the hedge
  // delay, dispatch the same query to the next eligible replica and
  // take the first success — both attempts are charged in metrics.
  // The delay is ExecPolicy::hedge_delay_ms when nonzero, else the
  // trailing p99 of served latencies (floored at hedge_floor_ms;
  // hedge_cold_ms before enough samples exist).
  bool hedge = true;
  double hedge_floor_ms = 0.25;
  double hedge_cold_ms = 5.0;
  size_t latency_window = 512;

  // Attempt pool size; 0 = replica count + 1.
  size_t threads = 0;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

// Point-in-time health of one replica, as the router sees it.
struct ReplicaHealthView {
  BreakerState state = BreakerState::kClosed;
  uint64_t epoch = 0;
  int consecutive_failures = 0;
  uint64_t served = 0;          // attempts this replica answered ok
  uint64_t failures = 0;        // attempts it failed
  uint64_t probes = 0;
  uint64_t probe_failures = 0;
  uint64_t hedges_won = 0;      // hedge attempts it won
};

struct RouterMetrics {
  uint64_t requests = 0;
  uint64_t served = 0;
  uint64_t unroutable = 0;   // no eligible replica (breakers/pins)
  uint64_t failed = 0;       // routed but every attempt failed
  uint64_t failovers = 0;    // extra dispatches after all outstanding failed
  uint64_t hedges_dispatched = 0;
  uint64_t hedge_wins = 0;    // hedge replied first
  uint64_t hedge_losses = 0;  // hedge charged, primary still won
  uint64_t pin_violations = 0;  // served from behind the pin (must stay 0)
  double p50_ms = 0.0;  // over the trailing served-latency window
  double p99_ms = 0.0;
  std::vector<ReplicaHealthView> replicas;
};

// One routed reply: the result plus where and how it was served.
struct RoutedReply {
  std::vector<RecordId> topk;
  std::vector<double> scores;
  uint64_t served_epoch = 0;
  int replica = -1;
  bool hedged = false;      // a hedge was dispatched for this request
  bool hedge_won = false;   // ...and it replied first
  uint32_t failovers = 0;   // failover dispatches this request needed
  double latency_ms = 0.0;
};

class Router {
 public:
  Router(ReplicaGroup* group, RouterOptions options = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // Routes one query. policy.pin_epoch restricts eligibility;
  // policy.hedge_delay_ms overrides the derived hedge delay;
  // policy.deadline_ms bounds the whole routed request (0 = none).
  // kUnavailable when no eligible replica exists or every attempt
  // failed / the deadline passed first.
  Result<RoutedReply> Route(VecView weights, size_t k, Phase2Method method,
                            const ExecPolicy& policy = {});

  // One active probe per replica, updating breakers: called on a
  // schedule by the serving loop (deterministic for tests — no hidden
  // background thread).
  void RunHealthChecks();

  RouterMetrics Snapshot() const;

 private:
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    int reopen_count = 0;      // consecutive opens, drives the backoff
    double open_until_ms = 0;  // router-clock time the open state ends
    uint64_t served = 0;
    uint64_t failures = 0;
    uint64_t probes = 0;
    uint64_t probe_failures = 0;
    uint64_t hedges_won = 0;
  };

  double NowMs() const { return clock_.ElapsedMillis(); }
  // Replica indices admitted for this request — breaker allows, epoch
  // covers the pin — in dispatch order (round-robin rotation).
  std::vector<size_t> EligibleOrder(uint64_t pin_epoch);
  bool BreakerAdmits(size_t i, double now_ms);  // may flip open→half-open
  void OnAttemptResult(size_t i, bool ok, bool is_hedge, double ms);
  double HedgeDelayMs(const ExecPolicy& policy) const;
  void RecordLatency(double ms);

  ReplicaGroup* group_;
  RouterOptions options_;
  Stopwatch clock_;  // router-relative monotonic time

  mutable std::mutex mu_;
  std::vector<Breaker> breakers_;
  RouterMetrics metrics_;
  std::vector<double> latency_window_;  // ring buffer of served latencies
  size_t latency_next_ = 0;
  size_t rr_cursor_ = 0;

  // Declared last: the destructor joins workers first, so an attempt
  // never touches a dead router.
  ThreadPool pool_;
};

}  // namespace gir::serve

#endif  // GIR_SERVE_ROUTER_H_
