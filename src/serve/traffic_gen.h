#ifndef GIR_SERVE_TRAFFIC_GEN_H_
#define GIR_SERVE_TRAFFIC_GEN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "gir/engine.h"

namespace gir::serve {

// Configuration of one synthetic arrival trace. Every knob is part of
// the determinism contract: the same TrafficConfig (seed included)
// always generates the bit-identical Trace, so a serving experiment is
// replayable from its config alone.
struct TrafficConfig {
  uint64_t seed = 2014;
  size_t dim = 3;
  size_t k = 20;
  // Total events (queries + update batches) in the trace.
  size_t events = 1024;

  // ----- arrival process: non-homogeneous Poisson -----
  // rate(t) = base_qps * (1 + diurnal_amplitude * sin(2*pi*t/period))
  //                    * (burst active at t ? burst_factor : 1)
  // Inter-arrival gaps are exponential at rate(t) of the previous
  // arrival (piecewise-constant thinning — accurate at trace scale).
  double base_qps = 1000.0;
  double diurnal_amplitude = 0.0;  // 0 = flat; must stay in [0, 1)
  double diurnal_period_ms = 4000.0;
  // Bursts: every burst_every_ms, the rate multiplies by burst_factor
  // for burst_len_ms. burst_every_ms = 0 disables bursts.
  double burst_factor = 1.0;
  double burst_every_ms = 0.0;
  double burst_len_ms = 100.0;

  // ----- query population: Zipf-skewed keys over archetype weights ---
  // Each query draws a key from a Zipf(zipf_s) distribution over
  // key_pool distinct keys; a key maps to a fixed weight vector (drawn
  // once from the key's own seeded RNG), so hot keys repeat *exactly*
  // — the preset-weights user. With probability jitter_prob the query
  // instead personalizes its key's weights with Gaussian jitter.
  size_t key_pool = 64;
  double zipf_s = 1.1;
  double jitter = 0.02;
  double jitter_prob = 0.0;

  // ----- mixed read/update stream -----
  // Probability an event is an UpdateBatch instead of a query.
  double update_ratio = 0.0;
  size_t updates_per_batch = 4;
  double delete_fraction = 0.5;  // of updates_per_batch, rounded down
  // Size of the dataset the trace will run against; the generator
  // tracks live ids (initial ids plus its own inserts, minus its own
  // deletes) so every emitted delete targets a live record and the
  // whole trace is valid for GirEngine::ApplyUpdates when applied in
  // order.
  size_t initial_records = 0;
};

enum class TraceEventKind { kQuery, kUpdate };

struct TraceEvent {
  double arrival_ms = 0.0;
  TraceEventKind kind = TraceEventKind::kQuery;
  // Query payload (kind == kQuery).
  uint32_t key = 0;  // Zipf key the weights derive from (for analysis)
  Vec weights;
  size_t k = 0;
  // Update payload (kind == kUpdate).
  UpdateBatch update;
};

struct Trace {
  TrafficConfig config;
  std::vector<TraceEvent> events;  // arrival_ms nondecreasing
  size_t queries = 0;
  size_t updates = 0;
  double duration_ms = 0.0;  // last arrival
  // Mean offered load over the trace (queries per second of trace
  // time; update events excluded).
  double OfferedQps() const {
    return duration_ms <= 0.0
               ? 0.0
               : 1000.0 * static_cast<double>(queries) / duration_ms;
  }
};

// Generates the trace for `config`. Deterministic: bit-identical output
// for equal configs. InvalidArgument on out-of-domain knobs (zero
// dim/rate/pool, diurnal_amplitude >= 1, delete-bearing update stream
// over an empty dataset, ...).
Result<Trace> GenerateTrace(const TrafficConfig& config);

}  // namespace gir::serve

#endif  // GIR_SERVE_TRAFFIC_GEN_H_
