#ifndef GIR_SERVE_ADMISSION_H_
#define GIR_SERVE_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "geom/vec.h"

namespace gir::serve {

struct AdmissionOptions {
  // A batch fires when the oldest queued request has waited this long
  // (the admission delay budget) or when the queue reaches max_batch,
  // whichever comes first.
  size_t max_batch = 128;
  double max_wait_ms = 5.0;
  // Per-request SLA budget from enqueue to reply; Submit stamps every
  // request's absolute deadline with it. Shedding is explicit: a
  // request that provably cannot reply in time is rejected with
  // ResourceExhausted, never silently dropped.
  double deadline_ms = 100.0;
  // Submit sheds beyond this backlog (the queue is the only buffer in
  // front of the engine; unbounded growth just converts overload into
  // unbounded latency).
  size_t queue_capacity = 4096;
  // ----- adaptive shared-traversal group width -----
  // Requests whose unit-normalized weight vectors have cosine
  // similarity >= cluster_cos against a cluster's leader join that
  // cluster (greedy leader clustering, deterministic in arrival
  // order).
  double cluster_cos = 0.995;
  // Chosen width = largest cluster size, clamped to max_width (the
  // score-matrix memory bound). Singleton clusters (stragglers) are
  // ordered last and, when the whole batch is stragglers, the chosen
  // width degenerates to 1 — per-query traversal, i.e. the fan-out
  // fallback.
  size_t max_width = 128;
};

// One request as the admission queue carries it. `id` is the caller's
// correlation key (the replayer uses the query's trace position);
// deadline_ms is absolute trace/wall time.
struct ServiceRequest {
  uint64_t id = 0;
  Vec weights;
  size_t k = 0;
  double enqueue_ms = 0.0;
  double deadline_ms = 0.0;
};

// A request the former refused, with the explicit reason.
struct ShedRequest {
  ServiceRequest request;
  Status status;
};

// One admission decision: the requests to execute (reordered
// cluster-major: clusters by descending size, stragglers last), the
// traversal grouping and width to hand BatchEngine, and whatever was
// shed at formation time.
struct FormedBatch {
  std::vector<ServiceRequest> requests;
  // group_of[i] labels requests[i]'s cluster; contiguous runs by
  // construction — pass through to ExecPolicy::group_of.
  std::vector<uint32_t> group_of;
  size_t width = 0;       // adaptive ExecPolicy::group_width this batch
  size_t clusters = 0;    // clusters of size >= 2
  size_t stragglers = 0;  // singleton-cluster requests (fan-out tail)
  double formed_ms = 0.0;
};

// Clusters weight vectors by cosine similarity (greedy leader pass in
// input order) and emits the cluster-major execution order plus the
// adaptive width. Exposed for tests and for callers that batch
// externally.
FormedBatch ClusterForExecution(std::vector<ServiceRequest> requests,
                                const AdmissionOptions& options,
                                double now_ms);

// Thread-safe admission queue + batch former in front of a BatchEngine.
// Producers Submit requests; the serving loop polls NextFireTime /
// Form. All shedding is explicit: Submit rejects on backlog overflow,
// Form sheds requests whose deadline already passed; both return
// ResourceExhausted statuses the caller must deliver to the client.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(const AdmissionOptions& options)
      : options_(options) {}

  // Enqueues, stamping enqueue time and absolute deadline. Fails with
  // ResourceExhausted when the backlog is at capacity and with
  // InvalidArgument on empty weights.
  Status Submit(uint64_t id, Vec weights, size_t k, double now_ms);

  // Earliest time a batch should be formed given the current backlog:
  // oldest enqueue + max_wait_ms, or now for a full batch. Negative
  // when the queue is empty.
  double NextFireTime() const;

  // True when a batch should fire at `now_ms` (backlog reached
  // max_batch, or the oldest request has waited max_wait_ms).
  bool ShouldForm(double now_ms) const;

  // Drains up to max_batch requests (FIFO), sheds the ones whose
  // deadline already passed at `now_ms` into *shed, clusters the rest
  // for execution. Returns an empty batch when the queue is empty.
  FormedBatch Form(double now_ms, std::vector<ShedRequest>* shed);

  size_t size() const;
  const AdmissionOptions& options() const { return options_; }

  // Stops admission: atomically marks the queue shut down and drains
  // every pending request, returned with kUnavailable for the caller
  // to deliver — a shut-down front door rejects explicitly, it does
  // not strand work. Every later Submit fails with kUnavailable
  // immediately (no race window where a request slips in behind the
  // drain); Form keeps returning empty batches. Idempotent.
  std::vector<ShedRequest> Shutdown();
  bool shut_down() const;

 private:
  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::deque<ServiceRequest> queue_;
  bool shut_down_ = false;  // guarded by mu_
};

}  // namespace gir::serve

#endif  // GIR_SERVE_ADMISSION_H_
