#include "serve/replica_group.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace gir::serve {

Replica::Replica(ReplicaConfig config)
    : config_(std::move(config)),
      injector_(config_.fault_plan),
      store_(config_.dir, &injector_) {
  disk_.AttachFaultInjector(&injector_);
}

Result<std::unique_ptr<Replica>> Replica::Open(
    const ReplicaConfig& config, const SnapshotStore& leader,
    const ScoringFactory& scoring, const GirEngineOptions& options) {
  if (config.dir.empty()) {
    return Status::InvalidArgument("ReplicaConfig needs a directory");
  }
  if (!scoring) {
    return Status::InvalidArgument("Replica needs a scoring factory");
  }
  Result<SnapshotStore::ArenaPick> newest = leader.RecoverLatestArena();
  if (!newest.ok()) return newest.status();

  std::unique_ptr<Replica> replica(new Replica(config));
  Result<SnapshotStore::WriteStats> shipped =
      replica->store_.ShipArenaFrom(leader, newest->version);
  if (!shipped.ok()) return shipped.status();

  // Open over the replica's own directory (not the shipped path):
  // recovery picks the newest epoch that survives its checksums, so a
  // first ship that lands damaged fails here instead of serving lies.
  Result<std::unique_ptr<GirEngine>> engine = GirEngine::Open(
      EngineConfig::FromArena(replica->config_.dir, &replica->disk_,
                              scoring(), options));
  if (!engine.ok()) return engine.status();
  replica->engine_ = std::move(*engine);
  return replica;
}

Result<GirComputation> Replica::Compute(VecView weights, size_t k,
                                        Phase2Method method) const {
  if (killed()) {
    return Status::Unavailable("replica down (connection refused)");
  }
  const double slow = slow_ms();
  if (slow > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(slow));
  }
  return engine_->ComputeGir(weights, k, method);
}

Result<uint64_t> Replica::AdoptEpoch(const SnapshotStore& leader,
                                     uint64_t version) {
  if (killed()) {
    return Status::Unavailable("replica down, ship refused");
  }
  Result<SnapshotStore::WriteStats> shipped =
      store_.ShipArenaFrom(leader, version);
  if (!shipped.ok()) return shipped.status();
  Result<uint64_t> advanced = engine_->AdvanceToArena(shipped->path);
  if (!advanced.ok()) {
    // Corrupt-open domain: the shipped bytes failed their checksums.
    // The previous epoch keeps serving; lag grows until a clean ship.
    open_failures_.fetch_add(1, std::memory_order_relaxed);
    return advanced.status();
  }
  if (gc_keep_last_ > 0) {
    // Best effort; retention never gates the data path.
    (void)store_.GarbageCollect(gc_keep_last_);
  }
  return advanced;
}

Result<uint64_t> Replica::AdoptWalDelta(const WalStore& leader_wal,
                                        uint64_t target) {
  if (killed()) {
    return Status::Unavailable("replica down, ship refused");
  }
  const uint64_t cur = epoch();
  if (target <= cur) return cur;

  // 1. Ship every leader segment that can cover (cur, target] into the
  // replica's own directory (wal-*.gwal beside its arena-*.garn; the
  // formats cannot collide). Each ship goes through this replica's
  // fault surface — the transport can tear or flip bytes, and only the
  // record CRCs at replay will know.
  WalStore local(config_.dir, &injector_);
  const std::vector<uint64_t> bases = leader_wal.ListSegmentBases();
  for (size_t i = 0; i < bases.size(); ++i) {
    const uint64_t next =
        i + 1 < bases.size() ? bases[i + 1] : ~uint64_t{0};
    if (next <= cur || bases[i] >= target) continue;
    Result<WalStore::ShipStats> shipped =
        local.ShipSegmentFrom(leader_wal, bases[i]);
    if (!shipped.ok()) {
      open_failures_.fetch_add(1, std::memory_order_relaxed);
      return shipped.status();
    }
  }

  // 2. Replay the committed tail. A shipped segment that landed damaged
  // or a coverage gap surfaces here as a tail that stops short of the
  // target — refuse, count it, keep serving the current epoch.
  Result<WalStore::ReplayLog> log = local.ReadCommitted(cur);
  if (!log.ok()) return log.status();
  if (log->tail_epoch < target) {
    open_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::DataLoss(
        "wal delta reaches epoch " + std::to_string(log->tail_epoch) +
        ", target " + std::to_string(target) +
        " (damaged or missing segments)");
  }

  // 3. Apply the batches to a copy of the current epoch's rows. The
  // pinned snapshot keeps the source dataset alive across the copy.
  const GirEngine::PinnedIndex pin = engine_->PinIndex();
  Dataset working(pin.flat->dataset());
  if (log->wal_dim != working.dim()) {
    open_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::DataLoss("wal delta dimension mismatch");
  }
  for (const WalStore::ReplayRecord& rec : log->records) {
    if (rec.epoch > target) break;  // leader tail past our target
    for (RecordId id : rec.batch.deletes) {
      if (id < 0 || static_cast<size_t>(id) >= working.size() ||
          !working.IsLive(id)) {
        open_failures_.fetch_add(1, std::memory_order_relaxed);
        return Status::DataLoss("wal delta deletes a record this replica "
                                "does not serve live");
      }
      working.MarkDeleted(id);
    }
    for (const Vec& row : rec.batch.inserts) {
      working.AppendRecord(VecView(row.data(), row.size()));
    }
  }

  // 4. Rebuild, freeze and publish locally as arena-<target>.garn —
  // through the replica's own injected-fault surface, like any other
  // write it performs — then swap the engine onto it. The scratch
  // DiskManager keeps build-time page accounting out of the serving
  // disk's counters.
  DiskManager scratch;
  RTree tree = RTree::BulkLoad(&working, &scratch);
  FlatRTree flat = FlatRTree::Freeze(tree, &working);
  Result<SnapshotStore::WriteStats> wrote = store_.WriteArena(flat, target);
  if (!wrote.ok()) return wrote.status();
  Result<uint64_t> advanced = engine_->AdvanceToArena(wrote->path);
  if (!advanced.ok()) {
    // The locally-built arena landed damaged (injected torn/corrupt
    // publish): same corrupt-open domain as a damaged full ship.
    open_failures_.fetch_add(1, std::memory_order_relaxed);
    return advanced.status();
  }
  // Shipped segments served their purpose; reclaim what the adopted
  // epoch made obsolete (best effort, never gates the data path).
  (void)local.Truncate(target);
  if (gc_keep_last_ > 0) {
    (void)store_.GarbageCollect(gc_keep_last_);
  }
  return advanced;
}

Result<std::unique_ptr<ReplicaGroup>> ReplicaGroup::Open(
    const ReplicaGroupConfig& config, const SnapshotStore& leader) {
  if (config.replicas.empty()) {
    return Status::InvalidArgument("ReplicaGroup needs at least one replica");
  }
  std::unique_ptr<ReplicaGroup> group(new ReplicaGroup());
  group->replicas_.reserve(config.replicas.size());
  for (const ReplicaConfig& rc : config.replicas) {
    Result<std::unique_ptr<Replica>> replica =
        Replica::Open(rc, leader, config.scoring, config.engine_options);
    if (!replica.ok()) return replica.status();
    (*replica)->set_gc_keep_last(config.gc_keep_last);
    group->replicas_.push_back(std::move(*replica));
  }
  return group;
}

uint64_t ReplicaGroup::MinEpoch() const {
  uint64_t min_epoch = ~uint64_t{0};
  for (const auto& r : replicas_) min_epoch = std::min(min_epoch, r->epoch());
  return replicas_.empty() ? 0 : min_epoch;
}

uint64_t ReplicaGroup::MaxEpoch() const {
  uint64_t max_epoch = 0;
  for (const auto& r : replicas_) max_epoch = std::max(max_epoch, r->epoch());
  return max_epoch;
}

Result<EpochShipper::ShipReport> EpochShipper::ShipLatest() {
  Result<SnapshotStore::ArenaPick> newest = leader_->RecoverLatestArena();
  if (!newest.ok()) return newest.status();

  ShipReport report;
  report.leader_epoch = newest->version;
  for (size_t i = 0; i < group_->size(); ++i) {
    Replica* replica = group_->replica(i);
    if (replica->epoch() >= report.leader_epoch) {
      ++report.up_to_date;
    } else if (replica->stale()) {
      ++report.skipped_stale;
    } else {
      // Delta-first: a close replica advances on shipped WAL segments
      // (cheap); a distant one — or a delta that fails on damage or a
      // gap — takes the full arena file.
      bool advanced = false;
      if (leader_wal_ != nullptr && max_delta_lag_ > 0 &&
          report.leader_epoch - replica->epoch() <= max_delta_lag_) {
        Result<uint64_t> delta =
            replica->AdoptWalDelta(*leader_wal_, report.leader_epoch);
        if (delta.ok()) {
          advanced = true;
          ++report.shipped;
          ++report.delta_shipped;
        } else {
          ++report.delta_fallbacks;
        }
      }
      if (!advanced) {
        Result<uint64_t> adopted =
            replica->AdoptEpoch(*leader_, report.leader_epoch);
        if (adopted.ok()) {
          ++report.shipped;
          ++report.full_shipped;
        } else {
          ++report.failed;
        }
      }
    }
    const uint64_t epoch = replica->epoch();
    const uint64_t lag =
        epoch >= report.leader_epoch ? 0 : report.leader_epoch - epoch;
    report.replica_epochs.push_back(epoch);
    report.lags.push_back(lag);
    ++lag_histogram_[std::min(lag, uint64_t{kLagBuckets - 1})];
  }
  last_lags_ = report.lags;
  return report;
}

}  // namespace gir::serve
