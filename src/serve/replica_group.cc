#include "serve/replica_group.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace gir::serve {

Replica::Replica(ReplicaConfig config)
    : config_(std::move(config)),
      injector_(config_.fault_plan),
      store_(config_.dir, &injector_) {
  disk_.AttachFaultInjector(&injector_);
}

Result<std::unique_ptr<Replica>> Replica::Open(
    const ReplicaConfig& config, const SnapshotStore& leader,
    const ScoringFactory& scoring, const GirEngineOptions& options) {
  if (config.dir.empty()) {
    return Status::InvalidArgument("ReplicaConfig needs a directory");
  }
  if (!scoring) {
    return Status::InvalidArgument("Replica needs a scoring factory");
  }
  Result<SnapshotStore::ArenaPick> newest = leader.RecoverLatestArena();
  if (!newest.ok()) return newest.status();

  std::unique_ptr<Replica> replica(new Replica(config));
  Result<SnapshotStore::WriteStats> shipped =
      replica->store_.ShipArenaFrom(leader, newest->version);
  if (!shipped.ok()) return shipped.status();

  // Open over the replica's own directory (not the shipped path):
  // recovery picks the newest epoch that survives its checksums, so a
  // first ship that lands damaged fails here instead of serving lies.
  Result<std::unique_ptr<GirEngine>> engine = GirEngine::Open(
      EngineConfig::FromArena(replica->config_.dir, &replica->disk_,
                              scoring(), options));
  if (!engine.ok()) return engine.status();
  replica->engine_ = std::move(*engine);
  return replica;
}

Result<GirComputation> Replica::Compute(VecView weights, size_t k,
                                        Phase2Method method) const {
  if (killed()) {
    return Status::Unavailable("replica down (connection refused)");
  }
  const double slow = slow_ms();
  if (slow > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(slow));
  }
  return engine_->ComputeGir(weights, k, method);
}

Result<uint64_t> Replica::AdoptEpoch(const SnapshotStore& leader,
                                     uint64_t version) {
  if (killed()) {
    return Status::Unavailable("replica down, ship refused");
  }
  Result<SnapshotStore::WriteStats> shipped =
      store_.ShipArenaFrom(leader, version);
  if (!shipped.ok()) return shipped.status();
  Result<uint64_t> advanced = engine_->AdvanceToArena(shipped->path);
  if (!advanced.ok()) {
    // Corrupt-open domain: the shipped bytes failed their checksums.
    // The previous epoch keeps serving; lag grows until a clean ship.
    open_failures_.fetch_add(1, std::memory_order_relaxed);
    return advanced.status();
  }
  if (gc_keep_last_ > 0) {
    // Best effort; retention never gates the data path.
    (void)store_.GarbageCollect(gc_keep_last_);
  }
  return advanced;
}

Result<std::unique_ptr<ReplicaGroup>> ReplicaGroup::Open(
    const ReplicaGroupConfig& config, const SnapshotStore& leader) {
  if (config.replicas.empty()) {
    return Status::InvalidArgument("ReplicaGroup needs at least one replica");
  }
  std::unique_ptr<ReplicaGroup> group(new ReplicaGroup());
  group->replicas_.reserve(config.replicas.size());
  for (const ReplicaConfig& rc : config.replicas) {
    Result<std::unique_ptr<Replica>> replica =
        Replica::Open(rc, leader, config.scoring, config.engine_options);
    if (!replica.ok()) return replica.status();
    (*replica)->set_gc_keep_last(config.gc_keep_last);
    group->replicas_.push_back(std::move(*replica));
  }
  return group;
}

uint64_t ReplicaGroup::MinEpoch() const {
  uint64_t min_epoch = ~uint64_t{0};
  for (const auto& r : replicas_) min_epoch = std::min(min_epoch, r->epoch());
  return replicas_.empty() ? 0 : min_epoch;
}

uint64_t ReplicaGroup::MaxEpoch() const {
  uint64_t max_epoch = 0;
  for (const auto& r : replicas_) max_epoch = std::max(max_epoch, r->epoch());
  return max_epoch;
}

Result<EpochShipper::ShipReport> EpochShipper::ShipLatest() {
  Result<SnapshotStore::ArenaPick> newest = leader_->RecoverLatestArena();
  if (!newest.ok()) return newest.status();

  ShipReport report;
  report.leader_epoch = newest->version;
  for (size_t i = 0; i < group_->size(); ++i) {
    Replica* replica = group_->replica(i);
    if (replica->epoch() >= report.leader_epoch) {
      ++report.up_to_date;
    } else if (replica->stale()) {
      ++report.skipped_stale;
    } else {
      Result<uint64_t> adopted =
          replica->AdoptEpoch(*leader_, report.leader_epoch);
      if (adopted.ok()) {
        ++report.shipped;
      } else {
        ++report.failed;
      }
    }
    const uint64_t epoch = replica->epoch();
    const uint64_t lag =
        epoch >= report.leader_epoch ? 0 : report.leader_epoch - epoch;
    report.replica_epochs.push_back(epoch);
    report.lags.push_back(lag);
    ++lag_histogram_[std::min(lag, uint64_t{kLagBuckets - 1})];
  }
  last_lags_ = report.lags;
  return report;
}

}  // namespace gir::serve
