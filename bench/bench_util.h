#ifndef GIR_BENCH_BENCH_UTIL_H_
#define GIR_BENCH_BENCH_UTIL_H_

// Shared harness for the paper-figure benchmarks. Each bench binary
// reproduces one figure of the paper's Section 8 and prints the same
// rows/series the figure plots. Defaults are scaled down so that the
// full `for b in build/bench/*; do $b; done` sweep finishes in minutes;
// pass --full for paper-scale parameters (Table 2), or override n / k /
// queries / dims individually.

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "dataset/generators.h"
#include "dataset/real_data_sim.h"
#include "gir/engine.h"

namespace gir::bench {

// Table 2 of the paper (defaults in bold there): d in {2..8} (4),
// n in {0.5M..20M} (1M), k in {5..100} (20), 100 random queries.
struct Params {
  int64_t n = 100000;
  int64_t k = 20;
  int64_t queries = 4;
  int64_t seed = 2014;
  bool full = false;

  void Register(FlagSet* flags) {
    flags->AddInt("n", &n, "dataset cardinality");
    flags->AddInt("k", &k, "top-k result size");
    flags->AddInt("queries", &queries, "random queries averaged per cell");
    flags->AddInt("seed", &seed, "RNG seed");
    flags->AddBool("full", &full,
                   "paper-scale parameters (slow: hours, not minutes)");
  }
  void ApplyFullDefaults() {
    if (full) {
      n = 1000000;
      queries = 100;
    }
  }
};

inline Dataset MakeNamedDataset(const std::string& name, size_t n,
                                size_t dim, uint64_t seed) {
  Rng rng(seed);
  if (name == "HOUSE") return MakeHouseLike(rng, n);
  if (name == "HOTEL") return MakeHotelLike(rng, n);
  Result<Dataset> d = GenerateByName(name, n, dim, rng);
  if (!d.ok()) {
    std::fprintf(stderr, "bad dataset %s\n", name.c_str());
    std::exit(1);
  }
  return std::move(d).value();
}

// The paper issues random queries; weights are bounded away from zero
// so every dimension participates.
inline Vec RandomQuery(Rng& rng, size_t dim) {
  Vec w(dim);
  for (size_t j = 0; j < dim; ++j) w[j] = rng.Uniform(0.05, 1.0);
  return w;
}

// Average CPU/IO cost of one GIR method over Q random queries.
struct MethodCost {
  double cpu_ms = 0.0;       // phase1 + phase2 + intersection
  double io_ms = 0.0;        // simulated: reads * ms_per_read
  double reads = 0.0;        // phase-2 page reads
  double candidates = 0.0;   // records surviving the method's pruning
  bool ok = false;
};

inline MethodCost MeasureGir(const GirEngine& engine, Phase2Method method,
                             size_t k, int queries, Rng& rng,
                             bool order_sensitive = true) {
  MethodCost out;
  const size_t dim = engine.dataset().dim();
  int done = 0;
  for (int q = 0; q < queries; ++q) {
    Vec w = RandomQuery(rng, dim);
    Result<GirComputation> gir =
        order_sensitive ? engine.ComputeGir(w, k, method)
                        : engine.ComputeGirStar(w, k, method);
    if (!gir.ok()) continue;
    out.cpu_ms += gir->stats.GirCpuMillis();
    out.io_ms += gir->stats.GirIoMillis(engine.disk()->ms_per_read());
    out.reads += static_cast<double>(gir->stats.phase2_reads);
    out.candidates += static_cast<double>(gir->stats.candidates);
    ++done;
  }
  if (done > 0) {
    out.cpu_ms /= done;
    out.io_ms /= done;
    out.reads /= done;
    out.candidates /= done;
    out.ok = true;
  }
  return out;
}

// ----- plain-text table helpers (one row per x-axis point) -----

inline void PrintTitle(const std::string& title) {
  std::printf("\n### %s\n", title.c_str());
}

inline void PrintHeader(const std::string& x,
                        const std::vector<std::string>& series) {
  std::printf("%-10s", x.c_str());
  for (const std::string& s : series) std::printf("%14s", s.c_str());
  std::printf("\n");
}

inline void PrintCell(double v) {
  if (v < 0) {
    std::printf("%14s", "-");
  } else if (v != 0 && (v < 1e-3 || v >= 1e7)) {
    std::printf("%14.3e", v);
  } else {
    std::printf("%14.3f", v);
  }
}

template <typename X>
void PrintRow(X x, const std::vector<double>& cells) {
  if constexpr (std::is_integral_v<X>) {
    std::printf("%-10lld", static_cast<long long>(x));
  } else {
    std::printf("%-10s", std::string(x).c_str());
  }
  for (double v : cells) PrintCell(v);
  std::printf("\n");
}

}  // namespace gir::bench

#endif  // GIR_BENCH_BENCH_UTIL_H_
