// Batch serving throughput: BatchEngine QPS as a function of worker
// thread count and GIR-cache capacity, over a clustered "millions of
// users" workload (preference archetypes + personal jitter — the
// result-caching setting of the paper's introduction). Reports, per
// (threads × cache) cell: wall time, QPS, speedup vs 1 thread at the
// same cache size, exact-hit rate, and index page reads.
#include <vector>

#include "bench_util.h"
#include "gir/batch_engine.h"

using namespace gir;
using namespace gir::bench;

namespace {

// Clustered query stream: a handful of archetypes, each query jittered
// around one of them.
std::vector<Vec> ClusteredWeights(size_t count, size_t dim,
                                  size_t archetypes, double jitter,
                                  Rng& rng) {
  std::vector<Vec> centers;
  centers.reserve(archetypes);
  for (size_t a = 0; a < archetypes; ++a) {
    centers.push_back(RandomQuery(rng, dim));
  }
  std::vector<Vec> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const Vec& c = centers[rng.UniformInt(centers.size())];
    Vec w(dim);
    for (size_t j = 0; j < dim; ++j) {
      w[j] = std::min(1.0, std::max(0.01, c[j] + rng.Gaussian(0.0, jitter)));
    }
    out.push_back(std::move(w));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Params params;
  params.queries = 256;
  FlagSet flags;
  params.Register(&flags);
  int64_t dim = 3;
  int64_t archetypes = 8;
  double jitter = 0.02;
  flags.AddInt("d", &dim, "dimensionality");
  flags.AddInt("archetypes", &archetypes, "preference clusters");
  flags.AddDouble("jitter", &jitter, "per-user jitter around archetypes");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) return s.code() == StatusCode::kNotFound ? 0 : 1;
  params.ApplyFullDefaults();
  if (params.full) params.queries = 2048;

  Dataset data = MakeNamedDataset("IND", params.n, dim, params.seed);
  DiskManager disk;
  GirEngine engine(&data, &disk, MakeScoring("Linear", dim),
                   GirEngineOptions{});
  Rng rng(params.seed * 31);
  std::vector<Vec> weights =
      ClusteredWeights(params.queries, dim, archetypes, jitter, rng);

  std::printf("Batch GIR serving throughput (n=%lld, d=%lld, k=%lld, "
              "%lld queries, %lld archetypes, jitter %.3f)\n",
              static_cast<long long>(params.n),
              static_cast<long long>(dim), static_cast<long long>(params.k),
              static_cast<long long>(params.queries),
              static_cast<long long>(archetypes), jitter);

  const std::vector<size_t> thread_counts = {1, 2, 4, 8};
  const std::vector<size_t> cache_sizes = {0, 512};

  for (size_t cache : cache_sizes) {
    PrintTitle(cache == 0 ? "cache disabled"
                          : "cache capacity " + std::to_string(cache));
    PrintHeader("threads", {"wall_ms", "qps", "speedup", "hit_rate",
                            "p50_ms", "p99_ms", "reads"});
    double base_wall = -1.0;
    for (size_t threads : thread_counts) {
      BatchOptions options;
      options.threads = threads;
      options.cache_capacity = cache;
      // A fresh engine per cell: every row starts from a cold cache.
      BatchEngine batch(&engine, options);
      Result<BatchResult> r =
          batch.ComputeBatch(weights, params.k, Phase2Method::kFP);
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
      if (base_wall < 0) base_wall = r->stats.wall_ms;
      // Speedup over an empty batch is noise; PrintCell renders -1 as "-".
      const double speedup =
          r->stats.queries > 0 ? base_wall / r->stats.wall_ms : -1.0;
      PrintRow(static_cast<int64_t>(threads),
               {r->stats.wall_ms, r->stats.QueriesPerSecond(),
                speedup, r->stats.HitRate(),
                r->stats.p50_ms, r->stats.p99_ms,
                static_cast<double>(r->stats.total_reads)});
    }
  }
  return 0;
}
