// Batch serving throughput, two experiments:
//
// 1. PR5 sweep (always on, JSON + exit-code gated): shared-traversal
//    vs. fan-out execution over a (batch size × overlap) grid of cold
//    batches. High-overlap cells model the production shape — a few
//    preference archetypes, tight personal jitter, a fraction of users
//    on exact preset weights — which is exactly where one group walk of
//    the frozen tree amortizes page fetches and SIMD scoring across
//    the batch. Emits BENCH_PR5.json (schema
//    bench/BENCH_PR5.schema.json) and exits non-zero unless, at every
//    high-overlap cell with batch >= gate_batch, shared traversal cuts
//    total physical index page reads >= 2x and lifts cold-cache batch
//    QPS >= 1.5x.
//
// 2. Legacy threads × cache table (--threads_sweep): BatchEngine QPS
//    as a function of worker thread count and GIR-cache capacity.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "gir/batch_engine.h"

using namespace gir;
using namespace gir::bench;

namespace {

// Clustered query stream: a handful of archetypes, each query jittered
// around one of them; every dup_every-th query (when nonzero) repeats
// its archetype center verbatim — the "preset weights" user.
std::vector<Vec> ClusteredWeights(size_t count, size_t dim,
                                  size_t archetypes, double jitter,
                                  size_t dup_every, Rng& rng) {
  std::vector<Vec> centers;
  centers.reserve(archetypes);
  for (size_t a = 0; a < archetypes; ++a) {
    centers.push_back(RandomQuery(rng, dim));
  }
  std::vector<Vec> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const Vec& c = centers[rng.UniformInt(centers.size())];
    if (dup_every != 0 && i % dup_every == 0) {
      out.push_back(c);
      continue;
    }
    Vec w(dim);
    for (size_t j = 0; j < dim; ++j) {
      w[j] = std::min(1.0, std::max(0.01, c[j] + rng.Gaussian(0.0, jitter)));
    }
    out.push_back(std::move(w));
  }
  return out;
}

struct ModeResult {
  double wall_ms = 0.0;  // best over reps
  double qps = 0.0;
  uint64_t physical_reads = 0;  // DiskManager delta (deterministic)
  uint64_t charged_reads = 0;
  uint64_t duplicate_hits = 0;
  uint64_t groups = 0;
  uint64_t grouped_queries = 0;
};

struct Overlap {
  const char* name;
  size_t archetypes;
  double jitter;
  size_t dup_every;  // 0 = no exact duplicates
};

struct Cell {
  size_t batch = 0;
  Overlap overlap{};
  ModeResult fanout;
  ModeResult shared;
  double read_cut = 0.0;
  double qps_lift = 0.0;
  bool gated = false;
};

// One cold batch through a persistent BatchEngine: the GIR cache is
// disabled, so every rep recomputes the whole batch; reads are
// deterministic across reps, wall time keeps the best rep seen.
void RunOnce(BatchEngine* batch, const GirEngine& engine,
             const std::vector<Vec>& weights, size_t k, Phase2Method method,
             bool first_rep, ModeResult* out) {
  const IoStats before = engine.disk()->stats();
  Result<BatchResult> r = batch->ComputeBatch(weights, k, method);
  const IoStats delta = engine.disk()->stats() - before;
  if (!r.ok() || r->stats.failures != 0) {
    std::fprintf(stderr, "batch failed: %s\n",
                 r.ok() ? "per-query failures"
                        : r.status().ToString().c_str());
    std::exit(1);
  }
  if (first_rep || r->stats.wall_ms < out->wall_ms) {
    out->wall_ms = r->stats.wall_ms;
    out->qps = r->stats.QueriesPerSecond();
  }
  out->physical_reads = delta.reads;
  out->charged_reads = r->stats.charged_reads;
  out->duplicate_hits = r->stats.duplicate_hits;
  out->groups = r->stats.shared_groups;
  out->grouped_queries = r->stats.grouped_queries;
}

// Measures one cell with *paired* reps: fan-out and shared alternate
// within each rep so a machine-load spike degrades both modes rather
// than skewing the ratio, and best-of-reps is taken per mode. One
// worker thread isolates the executor; the persistent BatchEngines are
// the steady-state serving configuration (warm frontier-arena pool) —
// with no cache there is no cross-rep result reuse.
void RunCell(const GirEngine& engine, const std::vector<Vec>& weights,
             size_t k, Phase2Method method, int reps, Cell* cell) {
  BatchOptions options;
  options.threads = 1;
  options.cache_capacity = 0;
  BatchEngine fanout(&engine, options);
  options.exec.shared_traversal = true;
  BatchEngine shared(&engine, options);
  for (int rep = 0; rep < reps; ++rep) {
    RunOnce(&fanout, engine, weights, k, method, rep == 0, &cell->fanout);
    RunOnce(&shared, engine, weights, k, method, rep == 0, &cell->shared);
  }
}

void RunThreadsSweep(const GirEngine& engine, const Params& params,
                     size_t dim, Rng& rng) {
  std::vector<Vec> weights =
      ClusteredWeights(params.queries, dim, 8, 0.02, 0, rng);
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};
  const std::vector<size_t> cache_sizes = {0, 512};
  for (size_t cache : cache_sizes) {
    PrintTitle(cache == 0 ? "cache disabled"
                          : "cache capacity " + std::to_string(cache));
    PrintHeader("threads", {"wall_ms", "qps", "speedup", "hit_rate",
                            "p50_ms", "p99_ms", "reads"});
    double base_wall = -1.0;
    for (size_t threads : thread_counts) {
      BatchOptions options;
      options.threads = threads;
      options.cache_capacity = cache;
      // A fresh engine per cell: every row starts from a cold cache.
      BatchEngine batch(&engine, options);
      Result<BatchResult> r =
          batch.ComputeBatch(weights, params.k, Phase2Method::kFP);
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        std::exit(1);
      }
      if (base_wall < 0) base_wall = r->stats.wall_ms;
      const double speedup =
          r->stats.queries > 0 ? base_wall / r->stats.wall_ms : -1.0;
      PrintRow(static_cast<int64_t>(threads),
               {r->stats.wall_ms, r->stats.QueriesPerSecond(),
                speedup, r->stats.HitRate(),
                r->stats.p50_ms, r->stats.p99_ms,
                static_cast<double>(r->stats.total_reads)});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Params params;
  params.queries = 256;
  FlagSet flags;
  params.Register(&flags);
  int64_t dim = 3;
  int64_t reps = 5;
  int64_t gate_batch = 64;
  double min_read_cut = 2.0;
  double min_qps_lift = 1.5;
  bool threads_sweep = false;
  std::string out_path = "BENCH_PR5.json";
  flags.AddInt("d", &dim, "dimensionality");
  flags.AddInt("reps", &reps, "repetitions per cell (best wall kept)");
  flags.AddInt("gate_batch", &gate_batch,
               "smallest batch size the acceptance bars apply to");
  flags.AddDouble("min_read_cut", &min_read_cut,
                  "required physical-read cut at gated cells");
  flags.AddDouble("min_qps_lift", &min_qps_lift,
                  "required cold-cache QPS lift at gated cells");
  flags.AddBool("threads_sweep", &threads_sweep,
                "also run the legacy threads x cache table");
  flags.AddString("out", &out_path, "output JSON path");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) return s.code() == StatusCode::kNotFound ? 0 : 1;
  params.ApplyFullDefaults();
  if (params.full) params.queries = 2048;

  Dataset data = MakeNamedDataset("IND", params.n, dim, params.seed);
  DiskManager disk;
  // The sweep measures the serving path (top-k + region constraints);
  // polytope materialization is identical per-query post-processing in
  // both modes and would only dilute the executor comparison.
  GirEngineOptions engine_options;
  engine_options.materialize_polytope = false;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", dim), engine_options));
  Rng rng(params.seed * 31);

  // ----- PR5 sweep: shared traversal vs fan-out -----
  const std::vector<size_t> batch_sizes = {16, 64, 128};
  const std::vector<Overlap> overlaps = {
      {"high", 4, 0.003, 3},   // production shape: few archetypes,
                               // tight jitter, 1/3 preset users
      {"low", 32, 0.05, 0},    // adversarial: spread-out batch
  };
  std::printf("Shared-traversal sweep (n=%lld, d=%lld, k=%lld, FP, "
              "reps=%lld)\n",
              static_cast<long long>(params.n), static_cast<long long>(dim),
              static_cast<long long>(params.k),
              static_cast<long long>(reps));
  PrintHeader("cell", {"fan_qps", "sh_qps", "qps_lift", "fan_reads",
                       "sh_reads", "read_cut", "dups"});
  std::vector<Cell> cells;
  bool gate_pass = true;
  double gate_read_cut = -1.0;  // worst gated cell
  double gate_qps_lift = -1.0;
  for (const Overlap& overlap : overlaps) {
    for (size_t batch : batch_sizes) {
      Rng cell_rng(params.seed * 131 + batch * 7 +
                   overlap.archetypes);
      std::vector<Vec> weights =
          ClusteredWeights(batch, dim, overlap.archetypes, overlap.jitter,
                           overlap.dup_every, cell_rng);
      Cell cell;
      cell.batch = batch;
      cell.overlap = overlap;
      RunCell(*engine, weights, params.k, Phase2Method::kFP,
              static_cast<int>(reps), &cell);
      cell.read_cut = cell.shared.physical_reads == 0
                          ? 0.0
                          : static_cast<double>(cell.fanout.physical_reads) /
                                static_cast<double>(
                                    cell.shared.physical_reads);
      cell.qps_lift =
          cell.fanout.qps == 0.0 ? 0.0 : cell.shared.qps / cell.fanout.qps;
      cell.gated = std::string(overlap.name) == "high" &&
                   batch >= static_cast<size_t>(gate_batch);
      if (cell.gated) {
        if (gate_read_cut < 0 || cell.read_cut < gate_read_cut) {
          gate_read_cut = cell.read_cut;
        }
        if (gate_qps_lift < 0 || cell.qps_lift < gate_qps_lift) {
          gate_qps_lift = cell.qps_lift;
        }
        if (cell.read_cut < min_read_cut || cell.qps_lift < min_qps_lift) {
          gate_pass = false;
        }
      }
      PrintRow(std::string(overlap.name) + "/" + std::to_string(batch),
               {cell.fanout.qps, cell.shared.qps, cell.qps_lift,
                static_cast<double>(cell.fanout.physical_reads),
                static_cast<double>(cell.shared.physical_reads),
                cell.read_cut,
                static_cast<double>(cell.shared.duplicate_hits)});
      cells.push_back(cell);
    }
  }

  if (gate_read_cut < 0) {
    // No cell met the gating criteria (gate_batch above the sweep's
    // largest batch): a gate that checked nothing must not pass.
    std::fprintf(stderr,
                 "no high-overlap cell reaches batch >= %lld; gate FAIL\n",
                 static_cast<long long>(gate_batch));
    gate_pass = false;
  }

  // ----- JSON artifact -----
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_batch_throughput\",\n");
  std::fprintf(f,
               "  \"params\": {\"n\": %lld, \"d\": %lld, \"k\": %lld, "
               "\"reps\": %lld, \"seed\": %lld, \"method\": \"FP\"},\n",
               static_cast<long long>(params.n),
               static_cast<long long>(dim), static_cast<long long>(params.k),
               static_cast<long long>(reps),
               static_cast<long long>(params.seed));
  std::fprintf(f, "  \"sweep\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f, "    {\"batch\": %zu, \"overlap\": \"%s\", "
                 "\"archetypes\": %zu, \"jitter\": %.4f, "
                 "\"dup_every\": %zu, \"gated\": %s,\n",
                 c.batch, c.overlap.name, c.overlap.archetypes,
                 c.overlap.jitter, c.overlap.dup_every,
                 c.gated ? "true" : "false");
    std::fprintf(f, "     \"fanout\": {\"wall_ms\": %.3f, \"qps\": %.1f, "
                 "\"physical_reads\": %llu, \"charged_reads\": %llu},\n",
                 c.fanout.wall_ms, c.fanout.qps,
                 static_cast<unsigned long long>(c.fanout.physical_reads),
                 static_cast<unsigned long long>(c.fanout.charged_reads));
    std::fprintf(f, "     \"shared\": {\"wall_ms\": %.3f, \"qps\": %.1f, "
                 "\"physical_reads\": %llu, \"charged_reads\": %llu, "
                 "\"groups\": %llu, \"grouped_queries\": %llu, "
                 "\"duplicate_hits\": %llu},\n",
                 c.shared.wall_ms, c.shared.qps,
                 static_cast<unsigned long long>(c.shared.physical_reads),
                 static_cast<unsigned long long>(c.shared.charged_reads),
                 static_cast<unsigned long long>(c.shared.groups),
                 static_cast<unsigned long long>(c.shared.grouped_queries),
                 static_cast<unsigned long long>(c.shared.duplicate_hits));
    std::fprintf(f, "     \"read_cut\": %.3f, \"qps_lift\": %.3f}%s\n",
                 c.read_cut, c.qps_lift,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"gate\": {\"batch_floor\": %lld, "
               "\"min_read_cut\": %.2f, \"min_qps_lift\": %.2f, "
               "\"read_cut_at_gate\": %.3f, \"qps_lift_at_gate\": %.3f, "
               "\"pass\": %s}\n",
               static_cast<long long>(gate_batch), min_read_cut,
               min_qps_lift, gate_read_cut, gate_qps_lift,
               gate_pass ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s (gate: read_cut %.2fx >= %.2f, qps_lift %.2fx "
              ">= %.2f at high-overlap batch >= %lld: %s)\n",
              out_path.c_str(), gate_read_cut, min_read_cut, gate_qps_lift,
              min_qps_lift, static_cast<long long>(gate_batch),
              gate_pass ? "PASS" : "FAIL");

  if (threads_sweep) {
    std::printf("\nBatch GIR serving throughput (n=%lld, d=%lld, k=%lld, "
                "%lld queries)\n",
                static_cast<long long>(params.n),
                static_cast<long long>(dim),
                static_cast<long long>(params.k),
                static_cast<long long>(params.queries));
    RunThreadsSweep(*engine, params, dim, rng);
  }
  return gate_pass ? 0 : 1;
}
