// Figure 19: non-linear scoring functions (SP on the HOTEL stand-in) —
// CPU and simulated I/O time vs k for Polynomial / Mixed / Linear
// scoring (all of the sum-of-monotone-terms family, §7.2).
#include "bench_util.h"

using namespace gir;
using namespace gir::bench;

int main(int argc, char** argv) {
  Params params;
  FlagSet flags;
  params.Register(&flags);
  int64_t real_n = 60000;
  flags.AddInt("real-n", &real_n,
               "records drawn from the HOTEL simulator (0 = native)");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) return s.code() == StatusCode::kNotFound ? 0 : 1;
  if (params.full) {
    real_n = 0;
    params.queries = 100;
  }

  const size_t n = real_n == 0 ? 418843 : static_cast<size_t>(real_n);
  const std::vector<int64_t> ks = {5, 10, 20, 50, 100};
  const std::vector<std::string> functions = {"Polynomial", "Mixed",
                                              "Linear"};
  std::printf("Figure 19: non-linear scoring, SP on HOTEL sim "
              "(n=%zu, %lld queries)\n",
              n, static_cast<long long>(params.queries));

  Dataset data = MakeNamedDataset("HOTEL", n, 4, params.seed);
  std::vector<std::vector<double>> cpu, io;
  for (int64_t k : ks) {
    std::vector<double> cpu_row, io_row;
    for (const std::string& fn : functions) {
      DiskManager disk;
      auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring(fn, 4)));
      Rng rng(params.seed + 13 * k);
      MethodCost c = MeasureGir(*engine, Phase2Method::kSP, k,
                                static_cast<int>(params.queries), rng);
      cpu_row.push_back(c.ok ? c.cpu_ms : -1.0);
      io_row.push_back(c.ok ? c.io_ms : -1.0);
    }
    cpu.push_back(cpu_row);
    io.push_back(io_row);
  }
  PrintTitle("Figure 19(a): SP CPU time (ms) vs k");
  PrintHeader("k", {"Polynomial", "Mixed", "Linear"});
  for (size_t i = 0; i < ks.size(); ++i) PrintRow(ks[i], cpu[i]);
  PrintTitle("Figure 19(b): SP I/O time (ms) vs k");
  PrintHeader("k", {"Polynomial", "Mixed", "Linear"});
  for (size_t i = 0; i < ks.size(); ++i) PrintRow(ks[i], io[i]);
  std::printf("\nExpected shape: SP costs are similar across function "
              "families (skyline computation is function-agnostic).\n");
  return 0;
}
