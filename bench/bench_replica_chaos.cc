// Replica-tier chaos benchmark (JSON + exit-code gated):
//
// One leader publishes arena epochs; three replicas — independent
// failure domains — serve them behind the Router (circuit breakers,
// hedged requests, epoch-pinned failover). Four scenarios replay the
// same seeded query stream:
//
//   healthy   — no faults: the availability and p99 baseline.
//   kill_one  — one replica is killed mid-trace and revived later,
//               with an epoch published (and pinned to) while it is
//               down. The gated scenario: availability must clear
//               --min_availability with one of three replicas dead,
//               and p99 inflation over healthy stays bounded.
//   slow_one  — one replica degrades (injected per-query delay);
//               hedged requests should win past it.
//   stale_one — one replica stops receiving ships; reads pinned to a
//               newer epoch must never be served by it (no
//               time-travel), while unpinned reads still may.
//
// Every served reply is checked bit-identical (ids and scores) to a
// fault-free single engine mapped over the same arena epoch — replica
// serving must not change a single byte of any answer, no matter
// which replicas die mid-trace.
//
// Emits BENCH_PR9.json (schema bench/BENCH_PR9.schema.json); exits
// non-zero unless availability at the gate, bit-identity, zero pin
// violations, and the p99 bound all hold. Faults are schedule-driven
// (kill/slow/stale at fixed query indices), so the gate is
// machine-portable.
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "serve/replica_group.h"
#include "serve/router.h"
#include "storage/snapshot_store.h"

using namespace gir;
using namespace gir::bench;
using gir::serve::EpochShipper;
using gir::serve::Replica;
using gir::serve::ReplicaConfig;
using gir::serve::ReplicaGroup;
using gir::serve::ReplicaGroupConfig;
using gir::serve::RoutedReply;
using gir::serve::Router;
using gir::serve::RouterMetrics;
using gir::serve::RouterOptions;

namespace {

constexpr size_t kReplicas = 3;

struct BenchConfig {
  Params params;
  int64_t dim = 3;
  double min_availability = 0.995;
  double p99_inflation_cap = 20.0;  // p99_kill <= cap * p99_healthy + slack
  double p99_slack_ms = 50.0;
  std::string scratch_dir;
};

// One leader + three replicas + router, plus a fault-free reference
// engine per published epoch (mapped over the same leader arena file)
// that every served reply is compared against.
struct Fleet {
  std::unique_ptr<Dataset> data;
  DiskManager leader_disk;
  std::unique_ptr<GirEngine> leader;
  std::unique_ptr<SnapshotStore> store;
  std::unique_ptr<ReplicaGroup> group;
  std::unique_ptr<EpochShipper> shipper;
  std::unique_ptr<Router> router;
  std::vector<std::unique_ptr<DiskManager>> ref_disks;
  std::map<uint64_t, std::unique_ptr<GirEngine>> refs;
  size_t ships = 0;

  uint64_t leader_epoch() const { return leader->dataset_version(); }

  // Maps a fault-free reference engine over the epoch just published
  // (FromArena picks the newest file in the leader's directory).
  void OpenReference(const BenchConfig& cfg) {
    ref_disks.push_back(std::make_unique<DiskManager>());
    auto ref = GirEngine::Open(EngineConfig::FromArena(
        store->dir(), ref_disks.back().get(),
        MakeScoring("Linear", cfg.dim)));
    if (!ref.ok()) {
      std::fprintf(stderr, "reference open: %s\n",
                   ref.status().ToString().c_str());
      std::exit(1);
    }
    refs[(*ref)->dataset_version()] = std::move(*ref);
  }

  // Applies one small update batch on the leader, publishes the new
  // epoch as an arena file, and ships it to the fleet.
  void PublishEpoch(const BenchConfig& cfg, Rng& rng) {
    UpdateBatch batch;
    for (int i = 0; i < 4; ++i) {
      Vec v(static_cast<size_t>(cfg.dim));
      for (double& x : v) x = rng.Uniform();
      batch.inserts.push_back(std::move(v));
    }
    auto up = leader->ApplyUpdates(batch);
    if (!up.ok()) {
      std::fprintf(stderr, "update: %s\n", up.status().ToString().c_str());
      std::exit(1);
    }
    auto wrote = store->WriteArena(leader->flat_tree(), up->version);
    if (!wrote.ok()) {
      std::fprintf(stderr, "publish: %s\n",
                   wrote.status().ToString().c_str());
      std::exit(1);
    }
    OpenReference(cfg);
    Ship();
  }

  void Ship() {
    auto report = shipper->ShipLatest();
    if (!report.ok()) {
      std::fprintf(stderr, "ship: %s\n",
                   report.status().ToString().c_str());
      std::exit(1);
    }
    ++ships;
  }
};

std::unique_ptr<Fleet> OpenFleet(const BenchConfig& cfg,
                                 const std::string& name) {
  auto fleet = std::make_unique<Fleet>();
  fleet->data = std::make_unique<Dataset>(MakeNamedDataset(
      "IND", cfg.params.n, cfg.dim, cfg.params.seed));
  fleet->leader = OpenEngineOrDie(EngineConfig::FromDataset(
      fleet->data.get(), &fleet->leader_disk, MakeScoring("Linear", cfg.dim)));

  const std::filesystem::path base =
      std::filesystem::path(cfg.scratch_dir) / name;
  std::filesystem::remove_all(base);
  fleet->store = std::make_unique<SnapshotStore>((base / "leader").string());
  auto wrote = fleet->store->WriteArena(fleet->leader->flat_tree(), 0);
  if (!wrote.ok()) {
    std::fprintf(stderr, "seed publish: %s\n",
                 wrote.status().ToString().c_str());
    std::exit(1);
  }
  fleet->OpenReference(cfg);

  ReplicaGroupConfig gc;
  for (size_t i = 0; i < kReplicas; ++i) {
    ReplicaConfig rc;
    rc.dir = (base / ("replica" + std::to_string(i))).string();
    gc.replicas.push_back(rc);
  }
  const size_t dim = static_cast<size_t>(cfg.dim);
  gc.scoring = [dim] { return MakeScoring("Linear", dim); };
  auto group = ReplicaGroup::Open(gc, *fleet->store);
  if (!group.ok()) {
    std::fprintf(stderr, "group open: %s\n",
                 group.status().ToString().c_str());
    std::exit(1);
  }
  fleet->group = std::move(*group);
  fleet->shipper =
      std::make_unique<EpochShipper>(fleet->store.get(), fleet->group.get());
  fleet->router = std::make_unique<Router>(fleet->group.get());
  return fleet;
}

struct ScenarioResult {
  std::string name;
  size_t offered = 0;
  RouterMetrics m;
  size_t mismatches = 0;  // served replies not bit-identical to reference
  uint64_t max_lag = 0;
  double availability = 0.0;

  bool bitwise_identical() const { return mismatches == 0; }
};

// Replays `queries` seeded queries through the router, applying
// `chaos(fleet, q)` before each and `pin(q)` as the per-query epoch
// pin, and checks every served reply against the reference engine of
// the epoch it was served at.
template <typename Chaos, typename Pin>
ScenarioResult RunScenario(const BenchConfig& cfg, const std::string& name,
                           Chaos&& chaos, Pin&& pin) {
  auto fleet = OpenFleet(cfg, name);
  ScenarioResult out;
  out.name = name;
  Rng qrng(static_cast<uint64_t>(cfg.params.seed) * 131 + 9);
  const size_t queries = static_cast<size_t>(cfg.params.queries);
  const size_t k = static_cast<size_t>(cfg.params.k);
  for (size_t q = 0; q < queries; ++q) {
    chaos(*fleet, q);
    if (q % 12 == 0) fleet->router->RunHealthChecks();
    Vec w = RandomQuery(qrng, static_cast<size_t>(cfg.dim));
    ExecPolicy policy;
    policy.pin_epoch = pin(*fleet, q);
    ++out.offered;
    auto reply = fleet->router->Route(VecView(w.data(), w.size()), k,
                                      Phase2Method::kFP, policy);
    if (!reply.ok()) continue;
    auto it = fleet->refs.find(reply->served_epoch);
    if (it == fleet->refs.end()) {
      ++out.mismatches;
      continue;
    }
    auto ref = it->second->ComputeGir(w, k, Phase2Method::kFP);
    if (!ref.ok() || ref->topk.result != reply->topk ||
        ref->topk.scores != reply->scores) {
      ++out.mismatches;
    }
  }
  for (size_t i = 0; i < fleet->group->size(); ++i) {
    out.max_lag = std::max(out.max_lag, fleet->shipper->lag(i));
  }
  out.m = fleet->router->Snapshot();
  out.availability =
      out.offered == 0
          ? 0.0
          : static_cast<double>(out.m.served) / static_cast<double>(out.offered);
  return out;
}

void PrintScenario(const ScenarioResult& r) {
  PrintRow(r.name,
           {static_cast<double>(r.offered), static_cast<double>(r.m.served),
            static_cast<double>(r.m.failed + r.m.unroutable),
            static_cast<double>(r.m.failovers),
            static_cast<double>(r.m.hedge_wins), r.availability, r.m.p99_ms,
            static_cast<double>(r.mismatches)});
}

void EmitScenarioJson(FILE* f, const ScenarioResult& r, bool gated,
                      bool last) {
  std::fprintf(
      f,
      "    {\"name\": \"%s\", \"gated\": %s, \"offered\": %zu, "
      "\"served\": %llu, \"failed\": %llu, \"unroutable\": %llu, "
      "\"failovers\": %llu, \"hedges_dispatched\": %llu, "
      "\"hedge_wins\": %llu, \"hedge_losses\": %llu, "
      "\"pin_violations\": %llu, \"availability\": %.6f, "
      "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"max_epoch_lag\": %llu, "
      "\"mismatches\": %zu, \"bitwise_identical\": %s}%s\n",
      r.name.c_str(), gated ? "true" : "false", r.offered,
      static_cast<unsigned long long>(r.m.served),
      static_cast<unsigned long long>(r.m.failed),
      static_cast<unsigned long long>(r.m.unroutable),
      static_cast<unsigned long long>(r.m.failovers),
      static_cast<unsigned long long>(r.m.hedges_dispatched),
      static_cast<unsigned long long>(r.m.hedge_wins),
      static_cast<unsigned long long>(r.m.hedge_losses),
      static_cast<unsigned long long>(r.m.pin_violations), r.availability,
      r.m.p50_ms, r.m.p99_ms, static_cast<unsigned long long>(r.max_lag),
      r.mismatches, r.bitwise_identical() ? "true" : "false",
      last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  cfg.params.n = 20000;
  cfg.params.queries = 240;
  FlagSet flags;
  cfg.params.Register(&flags);
  std::string out_path = "BENCH_PR9.json";
  cfg.scratch_dir =
      (std::filesystem::temp_directory_path() / "gir_bench_replicas")
          .string();
  flags.AddInt("d", &cfg.dim, "dimensionality");
  flags.AddDouble("min_availability", &cfg.min_availability,
                  "required served/offered with one of three replicas down");
  flags.AddDouble("p99_inflation_cap", &cfg.p99_inflation_cap,
                  "p99_kill must stay within cap * p99_healthy + slack");
  flags.AddDouble("p99_slack_ms", &cfg.p99_slack_ms,
                  "absolute slack on the p99 inflation bound");
  flags.AddString("scratch_dir", &cfg.scratch_dir,
                  "scratch directory for leader/replica epoch files");
  flags.AddString("out", &out_path, "output JSON path");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) return s.code() == StatusCode::kNotFound ? 0 : 1;
  cfg.params.ApplyFullDefaults();

  const size_t queries = static_cast<size_t>(cfg.params.queries);
  const size_t kill_at = queries / 4;
  const size_t publish_at = queries / 2;  // epoch lands while r0 is down
  const size_t revive_at = (queries * 3) / 4;

  std::printf("Replica chaos bench (n=%lld, d=%lld, k=%lld, queries=%zu, "
              "replicas=%zu)\n",
              static_cast<long long>(cfg.params.n),
              static_cast<long long>(cfg.dim),
              static_cast<long long>(cfg.params.k), queries, kReplicas);

  Rng pub_rng(static_cast<uint64_t>(cfg.params.seed) * 57 + 3);

  // healthy: no chaos, one epoch published mid-trace, unpinned reads.
  ScenarioResult healthy = RunScenario(
      cfg, "healthy",
      [&](Fleet& fleet, size_t q) {
        if (q == publish_at) fleet.PublishEpoch(cfg, pub_rng);
      },
      [](Fleet&, size_t) -> uint64_t { return 0; });

  // kill_one: r0 dies, an epoch is published (and pinned to) while it
  // is down, r0 revives and catches up via the shipper.
  ScenarioResult kill_one = RunScenario(
      cfg, "kill_one",
      [&](Fleet& fleet, size_t q) {
        if (q == kill_at) fleet.group->replica(0)->Kill();
        if (q == publish_at) fleet.PublishEpoch(cfg, pub_rng);
        if (q == revive_at) {
          fleet.group->replica(0)->Revive();
          fleet.Ship();  // catch the revived replica up
          fleet.router->RunHealthChecks();
        }
      },
      [&](Fleet& fleet, size_t q) -> uint64_t {
        // Reads after the publish pin to the new epoch: failover must
        // never time-travel to a replica still on the old one.
        return q >= publish_at ? fleet.leader_epoch() : 0;
      });

  // slow_one: r1 degrades mid-trace; hedging wins past it.
  ScenarioResult slow_one = RunScenario(
      cfg, "slow_one",
      [&](Fleet& fleet, size_t q) {
        if (q == kill_at) fleet.group->replica(1)->SetSlowMs(15.0);
        if (q == revive_at) fleet.group->replica(1)->SetSlowMs(0.0);
      },
      [](Fleet&, size_t) -> uint64_t { return 0; });

  // stale_one: r2 stops receiving ships before an epoch lands; pinned
  // reads must avoid it while unpinned reads may still use it.
  ScenarioResult stale_one = RunScenario(
      cfg, "stale_one",
      [&](Fleet& fleet, size_t q) {
        if (q == kill_at) fleet.group->replica(2)->SetStale(true);
        if (q == publish_at) fleet.PublishEpoch(cfg, pub_rng);
      },
      [&](Fleet& fleet, size_t q) -> uint64_t {
        return q >= publish_at ? fleet.leader_epoch() : 0;
      });

  PrintTitle("scenarios (offered/served/failed/failovers/hedge_wins/"
             "availability/p99_ms/mismatches)");
  PrintHeader("scenario", {"offered", "served", "failed", "failovers",
                           "hedge_w", "avail", "p99_ms", "mismatch"});
  const std::vector<const ScenarioResult*> all = {&healthy, &kill_one,
                                                  &slow_one, &stale_one};
  for (const ScenarioResult* r : all) PrintScenario(*r);

  // ----- gate -----
  const double availability_at_gate = kill_one.availability;
  const bool availability_ok = availability_at_gate >= cfg.min_availability;
  bool bitwise = true;
  uint64_t pin_violations = 0;
  for (const ScenarioResult* r : all) {
    bitwise = bitwise && r->bitwise_identical();
    pin_violations += r->m.pin_violations;
  }
  const double p99_bound =
      healthy.m.p99_ms * cfg.p99_inflation_cap + cfg.p99_slack_ms;
  const bool p99_bounded = kill_one.m.p99_ms <= p99_bound;
  const bool pass =
      availability_ok && bitwise && pin_violations == 0 && p99_bounded;

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_replica_chaos\",\n");
  std::fprintf(f,
               "  \"params\": {\"n\": %lld, \"d\": %lld, \"k\": %lld, "
               "\"queries\": %zu, \"replicas\": %zu, \"seed\": %lld, "
               "\"method\": \"FP\"},\n",
               static_cast<long long>(cfg.params.n),
               static_cast<long long>(cfg.dim),
               static_cast<long long>(cfg.params.k), queries, kReplicas,
               static_cast<long long>(cfg.params.seed));
  std::fprintf(f, "  \"scenarios\": [\n");
  for (size_t i = 0; i < all.size(); ++i) {
    EmitScenarioJson(f, *all[i], all[i] == &kill_one, i + 1 == all.size());
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"gate\": {\"min_availability\": %.4f, "
               "\"availability_at_gate\": %.6f, "
               "\"p99_healthy_ms\": %.4f, \"p99_kill_ms\": %.4f, "
               "\"p99_inflation_cap\": %.2f, \"p99_slack_ms\": %.2f, "
               "\"p99_bounded\": %s, \"bitwise_identical\": %s, "
               "\"pin_violations_zero\": %s, \"pass\": %s}\n",
               cfg.min_availability, availability_at_gate, healthy.m.p99_ms,
               kill_one.m.p99_ms, cfg.p99_inflation_cap, cfg.p99_slack_ms,
               p99_bounded ? "true" : "false", bitwise ? "true" : "false",
               pin_violations == 0 ? "true" : "false",
               pass ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("\nwrote %s (availability with one of %zu down: %.4f %s %.3f; "
              "bitwise %s; pin violations %llu; p99 %.2fms vs bound %.2fms: "
              "%s)\n",
              out_path.c_str(), kReplicas, availability_at_gate,
              availability_ok ? ">=" : "<", cfg.min_availability,
              bitwise ? "yes" : "NO",
              static_cast<unsigned long long>(pin_violations),
              kill_one.m.p99_ms, p99_bound, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
