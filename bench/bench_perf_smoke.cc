// Perf-trajectory smoke bench: a fixed-seed IND/ANTI workload
// (n=100k, d in {2,4,6}, k=20, all four Phase-2 methods) plus batch-QPS
// and kernel microbenchmarks, emitted as machine-readable JSON
// (BENCH_PR2.json) so every PR has a baseline to beat. No pass/fail
// gating here — this captures numbers; CI uploads the file as an
// artifact.
//
//   ./bench_perf_smoke [--n 100000] [--k 20] [--queries N] [--seed S]
//                      [--out BENCH_PR2.json] [--full]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "gir/batch_engine.h"
#include "skyline/dominance.h"
#include "skyline/skyline.h"
#include "topk/tree_kernels.h"

using namespace gir;
using namespace gir::bench;

namespace {

struct Cell {
  std::string dist;
  int64_t d = 0;
  std::string method;
  bool skipped = false;
  int queries = 0;
  double topk_cpu_ms = 0.0;
  double phase1_cpu_ms = 0.0;
  double phase2_cpu_ms = 0.0;
  double intersect_cpu_ms = 0.0;
  double topk_reads = 0.0;
  double phase2_reads = 0.0;
  double candidates = 0.0;
};

struct BatchCell {
  std::string dist;
  int64_t d = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double hit_rate = 0.0;
};

// Mean per-phase cost of `method` over the same query sequence every
// method gets (fresh Rng per method).
Cell MeasureCell(const GirEngine& engine, const std::string& dist, int64_t d,
                 Phase2Method method, int64_t k, int queries, int64_t seed) {
  Cell cell;
  cell.dist = dist;
  cell.d = d;
  cell.method = Phase2MethodName(method);
  Rng rng(seed * 17 + d);
  int done = 0;
  for (int q = 0; q < queries; ++q) {
    Vec w = RandomQuery(rng, d);
    Result<GirComputation> gir = engine.ComputeGir(w, k, method);
    if (!gir.ok()) continue;
    cell.topk_cpu_ms += gir->stats.topk_cpu_ms;
    cell.phase1_cpu_ms += gir->stats.phase1_cpu_ms;
    cell.phase2_cpu_ms += gir->stats.phase2_cpu_ms;
    cell.intersect_cpu_ms += gir->stats.intersect_cpu_ms;
    cell.topk_reads += static_cast<double>(gir->stats.topk_reads);
    cell.phase2_reads += static_cast<double>(gir->stats.phase2_reads);
    cell.candidates += static_cast<double>(gir->stats.candidates);
    ++done;
  }
  if (done > 0) {
    cell.topk_cpu_ms /= done;
    cell.phase1_cpu_ms /= done;
    cell.phase2_cpu_ms /= done;
    cell.intersect_cpu_ms /= done;
    cell.topk_reads /= done;
    cell.phase2_reads /= done;
    cell.candidates /= done;
  }
  cell.queries = done;
  return cell;
}

// --- kernel microbenchmarks (scalar pre-flat path vs SoA kernels) ---

struct MicroResult {
  double node_score_scalar_ns = 0.0;  // per entry
  double node_score_flat_ns = 0.0;
  double dominance_scalar_ns = 0.0;  // per member comparison
  double dominance_packed_ns = 0.0;
};

MicroResult RunMicro(int64_t seed) {
  MicroResult out;
  Rng rng(seed + 101);
  Dataset data = GenerateIndependent(50000, 4, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  FlatRTree flat = FlatRTree::Freeze(tree);
  LinearScoring scoring(4);
  Vec w = RandomQuery(rng, 4);

  // Entry scoring: sweep every node of the tree, both layouts.
  size_t entries = 0;
  for (size_t p = 0; p < tree.node_count(); ++p) {
    entries += tree.PeekNode(static_cast<PageId>(p)).entries.size();
  }
  const int reps = 40;
  ScoreBuffer buf;
  double sink = 0.0;
  Stopwatch sw;
  for (int r = 0; r < reps; ++r) {
    for (size_t p = 0; p < tree.node_count(); ++p) {
      ComputeEntryScores(scoring, data, tree.PeekNode(static_cast<PageId>(p)),
                         w, &buf);
      sink += buf.scores[0];
    }
  }
  out.node_score_scalar_ns =
      sw.ElapsedMillis() * 1e6 / (static_cast<double>(entries) * reps);
  sw.Restart();
  for (int r = 0; r < reps; ++r) {
    for (size_t p = 0; p < flat.node_count(); ++p) {
      ComputeEntryScores(scoring, data, flat.PeekNode(static_cast<PageId>(p)),
                         w, &buf);
      sink += buf.scores[0];
    }
  }
  out.node_score_flat_ns =
      sw.ElapsedMillis() * 1e6 / (static_cast<double>(entries) * reps);

  // k-dominance: incremental skyline over an anti-correlated sample —
  // the scalar reference chases dataset rows by id (the pre-PR
  // SkylineSet), the packed path streams the member block.
  Rng rng2(seed + 202);
  Dataset anti = GenerateAnticorrelated(4000, 4, rng2);
  std::vector<RecordId> ids(anti.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<RecordId>(i);
  uint64_t comparisons = 0;
  sw.Restart();
  {
    // Scalar reference: the pre-packing implementation.
    std::vector<RecordId> members;
    for (RecordId id : ids) {
      VecView p = anti.Get(id);
      bool dominated = false;
      for (RecordId m : members) {
        ++comparisons;
        if (Dominates(anti.Get(m), p)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      size_t kept = 0;
      for (size_t i = 0; i < members.size(); ++i) {
        ++comparisons;
        if (!Dominates(p, anti.Get(members[i]))) members[kept++] = members[i];
      }
      members.resize(kept);
      members.push_back(id);
    }
    sink += static_cast<double>(members.size());
  }
  out.dominance_scalar_ns =
      sw.ElapsedMillis() * 1e6 / static_cast<double>(comparisons);
  sw.Restart();
  {
    SkylineSet sky(&anti);
    for (RecordId id : ids) sky.Insert(id);
    sink += static_cast<double>(sky.size());
  }
  // Same insert order => same comparison count.
  out.dominance_packed_ns =
      sw.ElapsedMillis() * 1e6 / static_cast<double>(comparisons);
  if (sink == -1.0) std::printf("unreachable\n");  // keep `sink` alive
  return out;
}

void JsonCell(FILE* f, const Cell& c, bool last) {
  std::fprintf(
      f,
      "    {\"dist\": \"%s\", \"d\": %lld, \"method\": \"%s\", "
      "\"skipped\": %s, \"queries\": %d, \"topk_cpu_ms\": %.4f, "
      "\"phase1_cpu_ms\": %.4f, \"phase2_cpu_ms\": %.4f, "
      "\"intersect_cpu_ms\": %.4f, \"topk_reads\": %.1f, "
      "\"phase2_reads\": %.1f, \"candidates\": %.1f}%s\n",
      c.dist.c_str(), static_cast<long long>(c.d), c.method.c_str(),
      c.skipped ? "true" : "false", c.queries, c.topk_cpu_ms, c.phase1_cpu_ms,
      c.phase2_cpu_ms, c.intersect_cpu_ms, c.topk_reads, c.phase2_reads,
      c.candidates, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  Params params;
  params.queries = 3;
  std::string out_path = "BENCH_PR2.json";
  FlagSet flags;
  params.Register(&flags);
  flags.AddString("out", &out_path, "output JSON path");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) return s.code() == StatusCode::kNotFound ? 0 : 1;
  if (params.full) params.queries = 10;

  const std::vector<std::string> dists = {"IND", "ANTI"};
  const std::vector<int64_t> dims = {2, 4, 6};
  const std::vector<Phase2Method> methods = {
      Phase2Method::kSP, Phase2Method::kCP, Phase2Method::kFP,
      Phase2Method::kBruteForce};

  std::vector<Cell> cells;
  std::vector<BatchCell> batches;
  for (const std::string& dist : dists) {
    for (int64_t d : dims) {
      Dataset data = MakeNamedDataset(dist, params.n, d, params.seed + d);
      DiskManager disk;
      auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d)));
      // BF would intersect ~n half-spaces; the paper charges it as a
      // straw man without that final step, so skip materialization.
      GirEngineOptions bf_opt;
      bf_opt.materialize_polytope = false;
      DiskManager bf_disk;
      auto bf_engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &bf_disk, MakeScoring("Linear", d), bf_opt));
      for (Phase2Method m : methods) {
        const bool bf = m == Phase2Method::kBruteForce;
        // CP's hull over the huge d>=6 ANTI skyline is the paper's known
        // pathology; keep the smoke run bounded (recorded as skipped,
        // not silently dropped). --full measures it.
        if (!params.full && dist == "ANTI" && d >= 6 &&
            (m == Phase2Method::kCP || bf)) {
          Cell cell;
          cell.dist = dist;
          cell.d = d;
          cell.method = Phase2MethodName(m);
          cell.skipped = true;
          cells.push_back(cell);
          continue;
        }
        cells.push_back(MeasureCell(bf ? *bf_engine : *engine, dist, d, m,
                                    params.k, static_cast<int>(params.queries),
                                    params.seed));
        std::printf("%-5s d=%lld %-3s gir_cpu=%8.3f ms  reads=%7.1f%s\n",
                    dist.c_str(), static_cast<long long>(d),
                    cells.back().method.c_str(),
                    cells.back().phase1_cpu_ms + cells.back().phase2_cpu_ms +
                        cells.back().intersect_cpu_ms,
                    cells.back().phase2_reads,
                    cells.back().skipped ? " (skipped)" : "");
      }
      // Batch serving throughput (FP), repeated queries warm the cache.
      BatchEngine batch(engine.get());
      Rng brng(params.seed * 31 + d);
      std::vector<Vec> ws;
      for (int i = 0; i < 4 * static_cast<int>(params.queries); ++i) {
        ws.push_back(RandomQuery(brng, d));
      }
      Result<BatchResult> br =
          batch.ComputeBatch(ws, params.k, Phase2Method::kFP);
      if (br.ok()) {
        BatchCell bc;
        bc.dist = dist;
        bc.d = d;
        bc.qps = br->stats.QueriesPerSecond();
        bc.p50_ms = br->stats.p50_ms;
        bc.p99_ms = br->stats.p99_ms;
        bc.hit_rate = br->stats.HitRate();
        batches.push_back(bc);
      }
    }
  }

  std::printf("running kernel microbenchmarks...\n");
  MicroResult micro = RunMicro(params.seed);
  const double score_speedup =
      micro.node_score_flat_ns > 0.0
          ? micro.node_score_scalar_ns / micro.node_score_flat_ns
          : 0.0;
  const double dom_speedup =
      micro.dominance_packed_ns > 0.0
          ? micro.dominance_scalar_ns / micro.dominance_packed_ns
          : 0.0;
  std::printf("node scoring: scalar %.2f ns/entry, flat %.2f ns/entry "
              "(%.2fx)\n",
              micro.node_score_scalar_ns, micro.node_score_flat_ns,
              score_speedup);
  std::printf("dominance:    scalar %.2f ns/cmp,   packed %.2f ns/cmp "
              "(%.2fx)\n",
              micro.dominance_scalar_ns, micro.dominance_packed_ns,
              dom_speedup);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_perf_smoke\",\n");
  std::fprintf(f,
               "  \"params\": {\"n\": %lld, \"k\": %lld, \"queries\": %lld, "
               "\"seed\": %lld, \"full\": %s},\n",
               static_cast<long long>(params.n),
               static_cast<long long>(params.k),
               static_cast<long long>(params.queries),
               static_cast<long long>(params.seed),
               params.full ? "true" : "false");
  std::fprintf(f, "  \"workloads\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    JsonCell(f, cells[i], i + 1 == cells.size());
  }
  std::fprintf(f, "  ],\n  \"batch\": [\n");
  for (size_t i = 0; i < batches.size(); ++i) {
    std::fprintf(f,
                 "    {\"dist\": \"%s\", \"d\": %lld, \"method\": \"FP\", "
                 "\"qps\": %.2f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                 "\"hit_rate\": %.3f}%s\n",
                 batches[i].dist.c_str(), static_cast<long long>(batches[i].d),
                 batches[i].qps, batches[i].p50_ms, batches[i].p99_ms,
                 batches[i].hit_rate, i + 1 == batches.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n  \"micro\": {\n");
  std::fprintf(f, "    \"node_score_scalar_ns_per_entry\": %.3f,\n",
               micro.node_score_scalar_ns);
  std::fprintf(f, "    \"node_score_flat_ns_per_entry\": %.3f,\n",
               micro.node_score_flat_ns);
  std::fprintf(f, "    \"node_score_speedup\": %.3f,\n", score_speedup);
  std::fprintf(f, "    \"dominance_scalar_ns_per_cmp\": %.3f,\n",
               micro.dominance_scalar_ns);
  std::fprintf(f, "    \"dominance_packed_ns_per_cmp\": %.3f,\n",
               micro.dominance_packed_ns);
  std::fprintf(f, "    \"dominance_speedup\": %.3f\n", dom_speedup);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
