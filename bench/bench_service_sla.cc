// End-to-end serving benchmark for the SLA front door (JSON +
// exit-code gated):
//
// 1. Calibrate: measure one max_batch-sized shared-traversal batch on
//    this machine and derive the server's sustainable capacity (QPS)
//    and — unless --sla_ms overrides it — an SLA budget proportional to
//    the calibrated batch cost. Everything downstream is expressed in
//    *load fractions* of that capacity, so the gate is machine-portable
//    (ratios, not absolute milliseconds, cross runners).
//
// 2. Open-loop sweep: replay seeded traces at 0.25/0.50/0.75/1.25x
//    capacity (plus a mixed read/update point) through admission ->
//    adaptive clustering -> ComputeBatch on the virtual service clock,
//    and report achieved QPS, latency percentiles, shed rate and batch
//    occupancy per point.
//
// 3. Adaptive-vs-static width at overload: the adaptive batch former
//    must serve goodput within tolerance of the best static
//    shared_group_width — i.e. the cosine clustering never has to be
//    hand-tuned per workload.
//
// Emits BENCH_PR6.json (schema bench/BENCH_PR6.schema.json); exits
// non-zero unless, at the gated load fraction, p99 stays under the SLA
// and the shed rate stays under --max_shed_rate, and the adaptive
// goodput ratio clears --min_qps_ratio.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "gir/batch_engine.h"
#include "serve/replay.h"

using namespace gir;
using namespace gir::bench;
using gir::serve::ReplayOptions;
using gir::serve::ReplayTrace;
using gir::serve::ServiceMetrics;
using gir::serve::ServiceReport;
using gir::serve::Trace;
using gir::serve::TrafficConfig;

namespace {

struct BenchConfig {
  Params params;
  int64_t dim = 3;
  int64_t events = 400;
  int64_t max_batch = 32;
  double max_wait_ms = 2.0;
  double sla_ms = 0.0;  // 0 = derive from calibration
  double gate_fraction = 0.75;
  double min_qps_ratio = 0.8;
  double max_shed_rate = 0.02;
};

// One fresh serving stack per replay run: identical initial dataset and
// cold engine for every mode/point, so comparisons never see state
// leaked from an earlier replay (updates mutate the engine).
struct ServingStack {
  Dataset data;
  DiskManager disk;
  std::unique_ptr<GirEngine> engine;
  BatchEngine batch;

  ServingStack(const BenchConfig& cfg, const GirEngineOptions& eopts,
               const BatchOptions& bopts)
      : data(MakeNamedDataset("IND", cfg.params.n, cfg.dim,
                              cfg.params.seed)),
        engine(OpenEngineOrDie(EngineConfig::FromDataset(
            &data, &disk, MakeScoring("Linear", cfg.dim), eopts))),
        batch(engine.get(), bopts) {}
};

GirEngineOptions EngineOptions() {
  GirEngineOptions eopts;
  // The serving path returns top-k + region; polytope materialization
  // is identical per-query post-processing and only dilutes the
  // comparison (same choice as bench_batch_throughput).
  eopts.materialize_polytope = false;
  return eopts;
}

BatchOptions ServingBatchOptions() {
  BatchOptions bopts;
  bopts.threads = 1;  // isolate the executor, like the PR5 bench
  bopts.cache_capacity = 0;
  bopts.exec.shared_traversal = true;
  return bopts;
}

TrafficConfig BaseTraffic(const BenchConfig& cfg, double qps,
                          uint64_t seed_salt) {
  TrafficConfig t;
  t.seed = static_cast<uint64_t>(cfg.params.seed) * 977 + seed_salt;
  t.dim = static_cast<size_t>(cfg.dim);
  t.k = static_cast<size_t>(cfg.params.k);
  t.events = static_cast<size_t>(cfg.events);
  t.base_qps = qps;
  t.key_pool = 8;  // a few preference archetypes
  t.zipf_s = 1.1;
  t.jitter_prob = 0.3;  // 30% personalized, 70% preset repeats
  t.initial_records = static_cast<size_t>(cfg.params.n);
  return t;
}

ReplayOptions ServingReplayOptions(const BenchConfig& cfg, double sla_ms,
                                   bool adaptive, size_t static_width) {
  ReplayOptions ro;
  ro.admission.max_batch = static_cast<size_t>(cfg.max_batch);
  ro.admission.max_wait_ms = cfg.max_wait_ms;
  ro.admission.deadline_ms = sla_ms;
  ro.admission.queue_capacity = 8 * static_cast<size_t>(cfg.max_batch);
  ro.admission.max_width = static_cast<size_t>(cfg.max_batch);
  ro.adaptive_width = adaptive;
  ro.static_width = static_width;
  ro.shed_on_dispatch = true;
  ro.window_ms = 500.0;
  return ro;
}

ServiceReport ReplayOrDie(const BenchConfig& cfg, const Trace& trace,
                          const ReplayOptions& ro) {
  ServingStack stack(cfg, EngineOptions(), ServingBatchOptions());
  Result<ServiceReport> report = ReplayTrace(trace, &stack.batch, ro);
  if (!report.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(report).value();
}

// Replays `reps` times on fresh stacks and keeps the best-goodput run:
// the virtual clock consumes *measured* compute times, so a machine
// noise spike inflates latency/shedding of a single run — best-of-reps
// is the same discipline the PR5 bench uses for its paired cells.
ServiceReport BestOfReplays(const BenchConfig& cfg, const Trace& trace,
                            const ReplayOptions& ro, int reps) {
  ServiceReport best;
  for (int rep = 0; rep < reps; ++rep) {
    ServiceReport r = ReplayOrDie(cfg, trace, ro);
    if (rep == 0 || r.metrics.achieved_qps > best.metrics.achieved_qps) {
      best = std::move(r);
    }
  }
  return best;
}

// Mean shared-traversal cost of one query inside a max_batch-sized
// batch of trace-shaped weights, best of `reps` (same pairing
// discipline as the PR5 bench: best-of absorbs one-off machine noise).
double CalibrateBatchWallMs(const BenchConfig& cfg, int reps) {
  TrafficConfig probe = BaseTraffic(cfg, 1000.0, 7);
  probe.events = static_cast<size_t>(cfg.max_batch);
  Result<Trace> trace = serve::GenerateTrace(probe);
  if (!trace.ok()) {
    std::fprintf(stderr, "probe trace: %s\n",
                 trace.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<Vec> weights;
  for (const auto& ev : trace->events) weights.push_back(ev.weights);
  ServingStack stack(cfg, EngineOptions(), ServingBatchOptions());
  double best = -1.0;
  for (int rep = 0; rep < reps; ++rep) {
    Result<BatchResult> r = stack.batch.ComputeBatch(
        weights, static_cast<size_t>(cfg.params.k), Phase2Method::kFP);
    if (!r.ok() || r->stats.failures != 0) {
      std::fprintf(stderr, "calibration batch failed\n");
      std::exit(1);
    }
    if (best < 0.0 || r->stats.wall_ms < best) best = r->stats.wall_ms;
  }
  return best;
}

struct SweepPoint {
  std::string name;
  double fraction = 0.0;
  double update_ratio = 0.0;
  bool gated = false;
  double offered_qps = 0.0;
  ServiceMetrics m;
  uint64_t deadline_misses = 0;
};

void PrintPoint(const SweepPoint& p) {
  PrintRow(p.name, {p.offered_qps, p.m.achieved_qps, p.m.p50_ms, p.m.p95_ms,
                    p.m.p99_ms, p.m.ShedRate(), p.m.mean_batch_occupancy,
                    p.m.mean_width});
}

void JsonMetrics(FILE* f, const char* key, const ServiceMetrics& m) {
  std::fprintf(f, "\"%s\": %s", key, serve::MetricsJson(m).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  cfg.params.n = 40000;
  FlagSet flags;
  cfg.params.Register(&flags);
  int64_t reps = 3;
  std::string out_path = "BENCH_PR6.json";
  flags.AddInt("d", &cfg.dim, "dimensionality");
  flags.AddInt("events", &cfg.events, "trace events per sweep point");
  flags.AddInt("max_batch", &cfg.max_batch, "admission batch bound");
  flags.AddDouble("max_wait_ms", &cfg.max_wait_ms,
                  "admission delay budget (oldest-request wait)");
  flags.AddDouble("sla_ms", &cfg.sla_ms,
                  "end-to-end SLA budget; 0 derives it from calibration");
  flags.AddDouble("gate_fraction", &cfg.gate_fraction,
                  "load fraction the p99/shed gate applies to");
  flags.AddDouble("min_qps_ratio", &cfg.min_qps_ratio,
                  "required adaptive/best-static goodput ratio at overload");
  flags.AddDouble("max_shed_rate", &cfg.max_shed_rate,
                  "allowed shed fraction at the gated load");
  flags.AddInt("reps", &reps, "calibration repetitions (best wall kept)");
  flags.AddString("out", &out_path, "output JSON path");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) return s.code() == StatusCode::kNotFound ? 0 : 1;
  cfg.params.ApplyFullDefaults();
  if (cfg.params.full) cfg.events = 2000;

  // ----- calibration -----
  const double batch_wall_ms =
      CalibrateBatchWallMs(cfg, static_cast<int>(reps));
  const double mean_query_ms =
      batch_wall_ms / static_cast<double>(cfg.max_batch);
  const double capacity_qps = 1000.0 / mean_query_ms;
  const double sla_ms = cfg.sla_ms > 0.0
                            ? cfg.sla_ms
                            : cfg.max_wait_ms + 8.0 * batch_wall_ms + 1.0;
  std::printf("Service SLA bench (n=%lld, d=%lld, k=%lld, max_batch=%lld, "
              "max_wait=%.1fms)\n",
              static_cast<long long>(cfg.params.n),
              static_cast<long long>(cfg.dim),
              static_cast<long long>(cfg.params.k),
              static_cast<long long>(cfg.max_batch), cfg.max_wait_ms);
  std::printf("calibrated: batch %.3fms, %.4fms/query, capacity %.0f qps, "
              "SLA %.2fms\n",
              batch_wall_ms, mean_query_ms, capacity_qps, sla_ms);

  // ----- open-loop load sweep (adaptive width) -----
  struct PointSpec {
    const char* name;
    double fraction;
    double update_ratio;
    bool gated;
  };
  const std::vector<PointSpec> specs = {
      {"0.25x", 0.25, 0.0, false},
      {"0.50x", 0.50, 0.0, false},
      {"0.75x", 0.75, 0.0, cfg.gate_fraction == 0.75},
      {"0.50x+upd", 0.50, 0.03, false},  // mixed read/update, not gated
      {"1.25x", 1.25, 0.0, false},       // overload: shedding expected
  };
  PrintTitle("open-loop sweep (adaptive width)");
  PrintHeader("load", {"offered", "achieved", "p50_ms", "p95_ms", "p99_ms",
                       "shed", "occupancy", "width"});
  std::vector<SweepPoint> points;
  int gate_index = -1;
  for (const PointSpec& spec : specs) {
    TrafficConfig t =
        BaseTraffic(cfg, spec.fraction * capacity_qps,
                    static_cast<uint64_t>(points.size()) + 11);
    t.update_ratio = spec.update_ratio;
    if (spec.update_ratio > 0.0) t.updates_per_batch = 8;
    Result<Trace> trace = serve::GenerateTrace(t);
    if (!trace.ok()) {
      std::fprintf(stderr, "trace: %s\n", trace.status().ToString().c_str());
      return 1;
    }
    ServiceReport report = BestOfReplays(
        cfg, *trace, ServingReplayOptions(cfg, sla_ms, true, 0),
        spec.gated ? static_cast<int>(reps) : 1);
    SweepPoint p;
    p.name = spec.name;
    p.fraction = spec.fraction;
    p.update_ratio = spec.update_ratio;
    p.gated = spec.gated;
    p.offered_qps = trace->OfferedQps();
    p.m = report.metrics;
    p.deadline_misses = report.deadline_misses;
    PrintPoint(p);
    points.push_back(p);
    if (p.gated) gate_index = static_cast<int>(points.size()) - 1;
  }
  if (gate_index < 0) {
    std::fprintf(stderr, "no sweep point matches gate_fraction %.2f\n",
                 cfg.gate_fraction);
    return 1;
  }
  const SweepPoint& gate_point = points[static_cast<size_t>(gate_index)];

  // ----- adaptive vs static width at overload -----
  TrafficConfig overload_traffic = BaseTraffic(cfg, 1.25 * capacity_qps, 99);
  overload_traffic.burst_factor = 3.0;  // bursty on top of overload
  overload_traffic.burst_every_ms = 400.0;
  overload_traffic.burst_len_ms = 80.0;
  Result<Trace> overload = serve::GenerateTrace(overload_traffic);
  if (!overload.ok()) {
    std::fprintf(stderr, "trace: %s\n",
                 overload.status().ToString().c_str());
    return 1;
  }
  struct WidthRun {
    std::string name;
    size_t width = 0;  // 0 = adaptive
    ServiceMetrics m;
  };
  const std::vector<size_t> static_widths = {
      1, 8, static_cast<size_t>(cfg.max_batch)};
  std::vector<WidthRun> runs;
  for (size_t w : static_widths) {
    WidthRun run;
    run.name = "static-" + std::to_string(w);
    run.width = w;
    run.m = BestOfReplays(cfg, *overload,
                          ServingReplayOptions(cfg, sla_ms, false, w),
                          static_cast<int>(reps))
                .metrics;
    runs.push_back(std::move(run));
  }
  WidthRun adaptive;
  adaptive.name = "adaptive";
  adaptive.m = BestOfReplays(cfg, *overload,
                             ServingReplayOptions(cfg, sla_ms, true, 0),
                             static_cast<int>(reps))
                   .metrics;
  PrintTitle("width policy at 1.25x overload (bursty)");
  PrintHeader("policy", {"achieved", "p99_ms", "shed", "width"});
  double best_static_qps = 0.0;
  for (const WidthRun& run : runs) {
    PrintRow(run.name, {run.m.achieved_qps, run.m.p99_ms, run.m.ShedRate(),
                        run.m.mean_width});
    best_static_qps = std::max(best_static_qps, run.m.achieved_qps);
  }
  PrintRow(adaptive.name,
           {adaptive.m.achieved_qps, adaptive.m.p99_ms,
            adaptive.m.ShedRate(), adaptive.m.mean_width});
  const double qps_ratio =
      best_static_qps <= 0.0 ? 0.0 : adaptive.m.achieved_qps / best_static_qps;

  // ----- gate -----
  const bool p99_within_sla = gate_point.m.p99_ms <= sla_ms;
  const bool shed_ok = gate_point.m.ShedRate() <= cfg.max_shed_rate;
  const bool ratio_ok = qps_ratio >= cfg.min_qps_ratio;
  const bool pass = p99_within_sla && shed_ok && ratio_ok;

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_service_sla\",\n");
  std::fprintf(f,
               "  \"params\": {\"n\": %lld, \"d\": %lld, \"k\": %lld, "
               "\"events\": %lld, \"max_batch\": %lld, "
               "\"max_wait_ms\": %.2f, \"seed\": %lld, \"method\": \"FP\"},\n",
               static_cast<long long>(cfg.params.n),
               static_cast<long long>(cfg.dim),
               static_cast<long long>(cfg.params.k),
               static_cast<long long>(cfg.events),
               static_cast<long long>(cfg.max_batch), cfg.max_wait_ms,
               static_cast<long long>(cfg.params.seed));
  std::fprintf(f,
               "  \"calibration\": {\"batch_wall_ms\": %.4f, "
               "\"mean_query_ms\": %.5f, \"capacity_qps\": %.1f, "
               "\"sla_ms\": %.3f},\n",
               batch_wall_ms, mean_query_ms, capacity_qps, sla_ms);
  std::fprintf(f, "  \"sweep\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"load_fraction\": %.2f, "
                 "\"update_ratio\": %.2f, \"gated\": %s, "
                 "\"offered_qps\": %.1f, \"deadline_misses\": %llu,\n     ",
                 p.name.c_str(), p.fraction, p.update_ratio,
                 p.gated ? "true" : "false", p.offered_qps,
                 static_cast<unsigned long long>(p.deadline_misses));
    JsonMetrics(f, "metrics", p.m);
    std::fprintf(f, "}%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"overload\": {\n    \"load_fraction\": 1.25,\n");
  std::fprintf(f, "    \"policies\": [\n");
  for (size_t i = 0; i <= runs.size(); ++i) {
    const WidthRun& run = i < runs.size() ? runs[i] : adaptive;
    std::fprintf(f,
                 "      {\"policy\": \"%s\", \"static_width\": %zu, ",
                 run.name.c_str(), run.width);
    JsonMetrics(f, "metrics", run.m);
    std::fprintf(f, "}%s\n", i < runs.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f,
               "    \"best_static_qps\": %.1f, \"adaptive_qps\": %.1f, "
               "\"qps_ratio\": %.4f\n  },\n",
               best_static_qps, adaptive.m.achieved_qps, qps_ratio);
  std::fprintf(f,
               "  \"gate\": {\"gate_fraction\": %.2f, \"sla_ms\": %.3f, "
               "\"p99_at_gate_ms\": %.3f, \"p99_within_sla\": %s, "
               "\"shed_rate_at_gate\": %.4f, \"max_shed_rate\": %.3f, "
               "\"qps_ratio\": %.4f, \"min_qps_ratio\": %.2f, "
               "\"pass\": %s}\n",
               cfg.gate_fraction, sla_ms, gate_point.m.p99_ms,
               p99_within_sla ? "true" : "false", gate_point.m.ShedRate(),
               cfg.max_shed_rate, qps_ratio, cfg.min_qps_ratio,
               pass ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("\nwrote %s (gate at %.2fx: p99 %.2fms %s SLA %.2fms, shed "
              "%.2f%% %s %.1f%%, adaptive/best-static %.3f %s %.2f: %s)\n",
              out_path.c_str(), cfg.gate_fraction, gate_point.m.p99_ms,
              p99_within_sla ? "<=" : ">", sla_ms,
              100.0 * gate_point.m.ShedRate(), shed_ok ? "<=" : ">",
              100.0 * cfg.max_shed_rate, qps_ratio, ratio_ok ? ">=" : "<",
              cfg.min_qps_ratio, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
