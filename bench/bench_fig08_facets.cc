// Figure 8: rationale of Facet Pruning.
//   (a) number of facets on CH' = conv({p_k} ∪ D\R) vs dimensionality
//   (b) number of facets incident to p_k vs dimensionality
// The full-hull column requires building CH' outright, which is exactly
// the cost FP avoids — so its default n is smaller than (b)'s.
#include <numeric>

#include "bench_util.h"
#include "geom/convex_hull.h"
#include "topk/brs.h"

using namespace gir;
using namespace gir::bench;

int main(int argc, char** argv) {
  Params params;
  params.n = 20000;
  FlagSet flags;
  params.Register(&flags);
  int64_t dmax = 5;
  int64_t hull_n = 8000;
  flags.AddInt("dmax", &dmax, "largest dimensionality to test");
  flags.AddInt("hull-n", &hull_n,
               "cardinality for the full-CH' column (expensive)");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) return s.code() == StatusCode::kNotFound ? 0 : 1;
  params.ApplyFullDefaults();
  if (params.full) dmax = 8;

  const std::vector<std::string> dists = {"IND", "ANTI", "COR"};
  std::printf("Figure 8: FP effectiveness (full hull over n=%lld, star over "
              "n=%lld, k=%lld)\n",
              static_cast<long long>(hull_n),
              static_cast<long long>(params.n),
              static_cast<long long>(params.k));

  std::vector<std::vector<double>> total(dists.size()),
      incident(dists.size());
  for (size_t di = 0; di < dists.size(); ++di) {
    for (int64_t d = 2; d <= dmax; ++d) {
      bool heavy = dists[di] == "ANTI" && d > 5 && !params.full;
      // --- (a) full CH' facet count (scaled-down cardinality) ---
      double facets_total = -1.0;
      if (!heavy) {
        Dataset data =
            MakeNamedDataset(dists[di], hull_n, d, params.seed + d);
        DiskManager disk;
        RTree tree = RTree::BulkLoad(&data, &disk);
        LinearScoring scoring(d);
        Rng qrng(params.seed + 31 * d);
        Vec w = RandomQuery(qrng, d);
        Result<TopKResult> topk = RunBrs(tree, scoring, w, params.k);
        if (topk.ok()) {
          std::vector<Vec> pts;
          std::vector<bool> in_r(data.size(), false);
          for (RecordId id : topk->result) in_r[id] = true;
          pts.push_back(data.GetVec(topk->result.back()));  // p_k
          for (size_t i = 0; i < data.size(); ++i) {
            if (!in_r[i]) pts.push_back(data.GetVec(static_cast<RecordId>(i)));
          }
          Result<ConvexHull> hull = ConvexHull::Build(pts);
          if (hull.ok()) facets_total = hull->facets().size();
        }
      }
      total[di].push_back(facets_total);

      // --- (b) facets incident to p_k, via the FP star ---
      double facets_incident = -1.0;
      if (!heavy) {
        Dataset data =
            MakeNamedDataset(dists[di], params.n, d, params.seed + d);
        DiskManager disk;
        GirEngineOptions opt;
        opt.materialize_polytope = false;
        auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d), opt));
        Rng rng(params.seed * 7 + d);
        double sum = 0.0;
        int done = 0;
        for (int64_t q = 0; q < params.queries; ++q) {
          Vec w = RandomQuery(rng, d);
          Result<GirComputation> gir =
              engine->ComputeGir(w, params.k, Phase2Method::kFP);
          if (gir.ok()) {
            sum += d == 2 ? 2.0
                          : static_cast<double>(gir->stats.star_facets);
            ++done;
          }
        }
        if (done) facets_incident = sum / done;
      }
      incident[di].push_back(facets_incident);
    }
  }

  PrintTitle("Figure 8(a): facets on CH' vs d");
  PrintHeader("d", {"Independent", "Anti-corr", "Correlated"});
  for (int64_t d = 2; d <= dmax; ++d) {
    PrintRow(d, {total[0][d - 2], total[1][d - 2], total[2][d - 2]});
  }
  PrintTitle("Figure 8(b): facets incident to p_k vs d");
  PrintHeader("d", {"Independent", "Anti-corr", "Correlated"});
  for (int64_t d = 2; d <= dmax; ++d) {
    PrintRow(d,
             {incident[0][d - 2], incident[1][d - 2], incident[2][d - 2]});
  }
  std::printf("\nExpected shape: incident facets are a vanishing fraction "
              "of CH' facets; both grow with d; ANTI > IND > COR.\n");
  return 0;
}
