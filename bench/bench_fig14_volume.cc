// Figure 14: ratio of GIR volume to query-space volume (the LIK
// sensitivity measure).
//   (a) log10(volume) vs dimensionality, synthetic data (k = 20)
//   (b) log10(volume) vs k, real datasets (HOUSE / HOTEL stand-ins)
// Extra table (beyond the paper): the STB baseline of Soliman et al.
// (SIGMOD 2011) vs the GIR — how much of the immutable locus the
// largest-preserving-ball measure misses.
#include <cmath>

#include "bench_util.h"
#include "gir/sensitivity.h"

using namespace gir;
using namespace gir::bench;

namespace {

double AvgLog10Volume(const GirEngine& engine, size_t k, int queries,
                      Rng& rng) {
  double sum = 0.0;
  int done = 0;
  for (int q = 0; q < queries; ++q) {
    Vec w = RandomQuery(rng, engine.dataset().dim());
    Result<GirComputation> gir =
        engine.ComputeGir(w, k, Phase2Method::kFP);
    if (!gir.ok()) continue;
    Rng mc(q);
    double ratio = VolumeRatioAuto(gir->region, mc);
    if (ratio <= 0) ratio = 1e-300;
    sum += std::log10(ratio);
    ++done;
  }
  return done ? sum / done : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  Params params;
  FlagSet flags;
  params.Register(&flags);
  int64_t dmax = 6;
  flags.AddInt("dmax", &dmax, "largest dimensionality for panel (a)");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) return s.code() == StatusCode::kNotFound ? 0 : 1;
  params.ApplyFullDefaults();
  if (params.full) dmax = 8;

  std::printf("Figure 14: GIR volume / query-space volume "
              "(n=%lld, %lld queries)\n",
              static_cast<long long>(params.n),
              static_cast<long long>(params.queries));

  // (a) synthetic, varying d, k = 20.
  const std::vector<std::string> dists = {"IND", "ANTI", "COR"};
  std::vector<std::vector<double>> panel_a(dists.size());
  for (size_t di = 0; di < dists.size(); ++di) {
    for (int64_t d = 2; d <= dmax; ++d) {
      if (!params.full && dists[di] == "ANTI" && d > 5) {
        panel_a[di].push_back(1.0);  // sentinel: skipped
        continue;
      }
      Dataset data =
          MakeNamedDataset(dists[di], params.n, d, params.seed + d);
      DiskManager disk;
      auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d)));
      Rng rng(params.seed + 5 * d);
      panel_a[di].push_back(AvgLog10Volume(
          *engine, params.k, static_cast<int>(params.queries), rng));
    }
  }
  PrintTitle("Figure 14(a): log10(volume ratio) vs d (synthetic, k=20)");
  PrintHeader("d", {"Independent", "Anti-corr", "Correlated"});
  for (int64_t d = 2; d <= dmax; ++d) {
    std::vector<double> row;
    for (size_t di = 0; di < dists.size(); ++di) {
      double v = panel_a[di][d - 2];
      row.push_back(v);
    }
    std::printf("%-10lld", static_cast<long long>(d));
    for (double v : row) {
      if (v > 0) {
        std::printf("%14s", "-");
      } else {
        std::printf("%14.2f", v);
      }
    }
    std::printf("\n");
  }

  // (b) real-data stand-ins, varying k.
  const std::vector<int64_t> ks = {5, 10, 20, 50, 100};
  size_t real_n = params.full ? 0 : 60000;  // 0 = dataset's native size
  Dataset house = MakeNamedDataset("HOUSE", real_n ? real_n : 315265, 6,
                                   params.seed);
  Dataset hotel = MakeNamedDataset("HOTEL", real_n ? real_n : 418843, 4,
                                   params.seed);
  DiskManager disk_house;
  DiskManager disk_hotel;
  auto eng_house = OpenEngineOrDie(
      EngineConfig::FromDataset(&house, &disk_house, MakeScoring("Linear", 6)));
  auto eng_hotel = OpenEngineOrDie(
      EngineConfig::FromDataset(&hotel, &disk_hotel, MakeScoring("Linear", 4)));
  PrintTitle("Figure 14(b): log10(volume ratio) vs k (real-data sims)");
  PrintHeader("k", {"HOUSE", "HOTEL"});
  for (int64_t k : ks) {
    Rng r1(params.seed + k);
    Rng r2(params.seed + k);
    double vh = AvgLog10Volume(*eng_house, k,
                               static_cast<int>(params.queries), r1);
    double vo = AvgLog10Volume(*eng_hotel, k,
                               static_cast<int>(params.queries), r2);
    std::printf("%-10lld%14.2f%14.2f\n", static_cast<long long>(k), vh, vo);
  }
  std::printf("\nExpected shape: volume ratio decays ~exponentially in d "
              "(COR largest, ANTI smallest) and decreases with k.\n");

  // --- STB baseline comparison (IND, k=20): ball vs region volume ---
  PrintTitle("Extra: STB ball volume vs GIR volume (IND, k=20)");
  PrintHeader("d", {"log10(STB)", "log10(GIR)", "GIR/STB"});
  for (int64_t d = 2; d <= std::min<int64_t>(dmax, 5); ++d) {
    Dataset data = MakeNamedDataset("IND", params.n, d, params.seed + d);
    DiskManager disk;
    auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d)));
    Rng rng(params.seed + 9 * d);
    double sum_stb = 0.0;
    double sum_gir = 0.0;
    int done = 0;
    for (int64_t q = 0; q < params.queries; ++q) {
      Vec w = RandomQuery(rng, d);
      Result<GirComputation> gir =
          engine->ComputeGir(w, params.k, Phase2Method::kFP);
      if (!gir.ok()) continue;
      Rng mc(q);
      double gv = VolumeRatioAuto(gir->region, mc);
      double sv = BallVolume(d, StbRadius(gir->region));
      if (gv <= 0 || sv <= 0) continue;
      sum_gir += std::log10(gv);
      sum_stb += std::log10(sv);
      ++done;
    }
    if (done) {
      double lg = sum_gir / done;
      double ls = sum_stb / done;
      std::printf("%-10lld%14.2f%14.2f%14.1fx\n", static_cast<long long>(d),
                  ls, lg, std::pow(10.0, lg - ls));
    }
  }
  std::printf("\nThe GIR captures the full immutable locus; the STB ball "
              "(which is always enclosed in it) understates robustness by "
              "orders of magnitude as d grows.\n");
  return 0;
}
