// Figure 15: effect of dimensionality d on SP / CP / FP for the three
// synthetic distributions — CPU time and (simulated) I/O time.
// Paper setting: n = 1M, k = 20, d in {2..8}, 100 queries.
#include "bench_util.h"

using namespace gir;
using namespace gir::bench;

int main(int argc, char** argv) {
  Params params;
  params.n = 50000;
  FlagSet flags;
  params.Register(&flags);
  int64_t dmax = 5;
  flags.AddInt("dmax", &dmax, "largest dimensionality to test");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) return s.code() == StatusCode::kNotFound ? 0 : 1;
  params.ApplyFullDefaults();
  if (params.full) dmax = 8;

  std::printf("Figure 15: effect of d (n=%lld, k=%lld, %lld queries)\n",
              static_cast<long long>(params.n),
              static_cast<long long>(params.k),
              static_cast<long long>(params.queries));

  const std::vector<std::string> dists = {"IND", "COR", "ANTI"};
  const char* panels[3][2] = {{"15(a)", "15(b)"},
                              {"15(c)", "15(d)"},
                              {"15(e)", "15(f)"}};
  for (size_t di = 0; di < dists.size(); ++di) {
    std::vector<std::vector<double>> cpu, io;
    for (int64_t d = 2; d <= dmax; ++d) {
      Dataset data =
          MakeNamedDataset(dists[di], params.n, d, params.seed + d);
      DiskManager disk;
      auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d)));
      std::vector<double> cpu_row, io_row;
      for (Phase2Method m :
           {Phase2Method::kCP, Phase2Method::kSP, Phase2Method::kFP}) {
        Rng rng(params.seed * 3 + d);  // same queries for all methods
        MethodCost c = MeasureGir(*engine, m, params.k,
                                  static_cast<int>(params.queries), rng);
        cpu_row.push_back(c.ok ? c.cpu_ms : -1.0);
        io_row.push_back(c.ok ? c.io_ms : -1.0);
      }
      cpu.push_back(cpu_row);
      io.push_back(io_row);
    }
    PrintTitle(std::string("Figure ") + panels[di][0] + ": CPU time (ms), " +
               dists[di]);
    PrintHeader("d", {"CP", "SP", "FP"});
    for (int64_t d = 2; d <= dmax; ++d) PrintRow(d, cpu[d - 2]);
    PrintTitle(std::string("Figure ") + panels[di][1] + ": I/O time (ms), " +
               dists[di]);
    PrintHeader("d", {"CP", "SP", "FP"});
    for (int64_t d = 2; d <= dmax; ++d) PrintRow(d, io[d - 2]);
  }
  std::printf("\nExpected shape: FP fastest in CPU and I/O everywhere; SP "
              "runner-up; CP pays its hull in CPU; SP and CP share I/O.\n");
  return 0;
}
