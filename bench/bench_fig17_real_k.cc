// Figure 17: effect of k on the real datasets (HOTEL and HOUSE
// stand-ins) — CPU time and simulated I/O time for SP / CP / FP.
// Paper setting: k in {5, 10, 20, 50, 100}, native cardinalities.
#include "bench_util.h"

using namespace gir;
using namespace gir::bench;

int main(int argc, char** argv) {
  Params params;
  FlagSet flags;
  params.Register(&flags);
  int64_t real_n = 60000;
  flags.AddInt("real-n", &real_n,
               "records drawn from each real-data simulator (0 = native)");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) return s.code() == StatusCode::kNotFound ? 0 : 1;
  if (params.full) {
    real_n = 0;
    params.queries = 100;
  }

  const std::vector<int64_t> ks = {5, 10, 20, 50, 100};
  struct RealSet {
    const char* name;
    size_t native;
    size_t dim;
    const char* cpu_panel;
    const char* io_panel;
  };
  const RealSet sets[2] = {{"HOTEL", 418843, 4, "17(a)", "17(b)"},
                           {"HOUSE", 315265, 6, "17(c)", "17(d)"}};

  for (const RealSet& rs : sets) {
    size_t n = real_n == 0 ? rs.native : static_cast<size_t>(real_n);
    std::printf("\nFigure 17 [%s]: n=%zu, d=%zu, %lld queries\n", rs.name, n,
                rs.dim, static_cast<long long>(params.queries));
    Dataset data = MakeNamedDataset(rs.name, n, rs.dim, params.seed);
    DiskManager disk;
    auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", rs.dim)));
    std::vector<std::vector<double>> cpu, io;
    for (int64_t k : ks) {
      std::vector<double> cpu_row, io_row;
      for (Phase2Method m :
           {Phase2Method::kCP, Phase2Method::kSP, Phase2Method::kFP}) {
        Rng rng(params.seed + 13 * k);
        MethodCost c = MeasureGir(*engine, m, k,
                                  static_cast<int>(params.queries), rng);
        cpu_row.push_back(c.ok ? c.cpu_ms : -1.0);
        io_row.push_back(c.ok ? c.io_ms : -1.0);
      }
      cpu.push_back(cpu_row);
      io.push_back(io_row);
    }
    PrintTitle(std::string("Figure ") + rs.cpu_panel + ": CPU time (ms), " +
               rs.name);
    PrintHeader("k", {"CP", "SP", "FP"});
    for (size_t i = 0; i < ks.size(); ++i) PrintRow(ks[i], cpu[i]);
    PrintTitle(std::string("Figure ") + rs.io_panel + ": I/O time (ms), " +
               rs.name);
    PrintHeader("k", {"CP", "SP", "FP"});
    for (size_t i = 0; i < ks.size(); ++i) PrintRow(ks[i], io[i]);
  }
  std::printf("\nExpected shape: CPU grows with k for all; FP I/O slightly "
              "decreases with k; SP/CP I/O rises with k on HOUSE (skyline "
              "widens) but not on HOTEL.\n");
  return 0;
}
