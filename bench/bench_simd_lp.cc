// PR 4 performance core bench: runtime-dispatched SIMD kernels and the
// batched warm-start LP micro-solver, measured in whatever build ran it
// (the committed BENCH_PR4.json baseline comes from a *default* Release
// build — no -march=native — which is the point: the dispatch layer
// must deliver without ISA flags).
//
// Two acceptance bars, enforced by the exit code so CI gates on them:
//   - batched entry scoring >= 1.5x over the scalar AoS reference
//     (node_score_speedup_vs_aos)
//   - the AdmitsGain/invalidation LP phase >= 2x over the per-call
//     solver, at bitwise-equal eviction decisions (lp.speedup &&
//     lp.decisions_equal)
//
//   ./bench_simd_lp [--n 50000] [--d 4] [--k 20] [--regions 24]
//                   [--gains 64] [--reps 5] [--seed 2014]
//                   [--out BENCH_PR4.json]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/simd.h"
#include "gir/engine.h"
#include "index/flat_rtree.h"
#include "skyline/skyline.h"
#include "topk/tree_kernels.h"

using namespace gir;
using namespace gir::bench;

namespace {

struct ScoreMicro {
  double aos_ns = 0.0;            // mutable-tree scalar reference
  double flat_scalar_ns = 0.0;    // SoA kernel, forced-scalar tier
  double flat_sse2_ns = 0.0;      // 0 when the tier is unavailable
  double flat_avx2_ns = 0.0;      // 0 when the tier is unavailable
  double flat_active_ns = 0.0;    // SoA kernel, auto-dispatched tier
};

struct DominanceMicro {
  double scalar_tier_ms = 0.0;  // full skyline build wall time
  double active_tier_ms = 0.0;
};

struct TransformMicro {
  double poly_scalar_ns = 0.0;  // per element, forced-scalar tier
  double poly_active_ns = 0.0;
  double mixed_scalar_ns = 0.0;
  double mixed_active_ns = 0.0;
};

struct LpMicro {
  size_t regions = 0;
  size_t gains_per_region = 0;
  double per_call_ms = 0.0;  // AdmitsGain loop, one cold LP per pair
  double batch_ms = 0.0;     // FirstAdmittedGain, shared Prepare + warm
  bool decisions_equal = true;
  uint64_t admitted = 0;  // regions pierced (same for both paths)
};

bool TierAvailable(simd::Tier t) {
  return static_cast<int>(t) <= static_cast<int>(simd::DetectedTier());
}

// Sweeps every node of both representations `reps` times under the
// currently-forced tier; returns ns per entry.
double SweepFlat(const FlatRTree& flat, const ScoringFunction& scoring,
                 const Dataset& data, VecView w, size_t entries, int reps,
                 double* sink) {
  ScoreBuffer buf;
  Stopwatch sw;
  for (int r = 0; r < reps; ++r) {
    for (size_t p = 0; p < flat.node_count(); ++p) {
      ComputeEntryScores(scoring, data, flat.PeekNode(static_cast<PageId>(p)),
                         w, &buf);
      *sink += buf.scores[0];
    }
  }
  return sw.ElapsedMillis() * 1e6 / (static_cast<double>(entries) * reps);
}

ScoreMicro RunScoreMicro(int64_t n, int64_t d, int64_t seed, int reps) {
  ScoreMicro out;
  Rng rng(static_cast<uint64_t>(seed) + 101);
  Dataset data = GenerateIndependent(static_cast<size_t>(n),
                                     static_cast<size_t>(d), rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  FlatRTree flat = FlatRTree::Freeze(tree);
  LinearScoring scoring(static_cast<size_t>(d));
  Vec w = RandomQuery(rng, static_cast<size_t>(d));

  size_t entries = 0;
  for (size_t p = 0; p < tree.node_count(); ++p) {
    entries += tree.PeekNode(static_cast<PageId>(p)).entries.size();
  }
  double sink = 0.0;
  ScoreBuffer buf;
  Stopwatch sw;
  for (int r = 0; r < reps; ++r) {
    for (size_t p = 0; p < tree.node_count(); ++p) {
      ComputeEntryScores(scoring, data, tree.PeekNode(static_cast<PageId>(p)),
                         w, &buf);
      sink += buf.scores[0];
    }
  }
  out.aos_ns =
      sw.ElapsedMillis() * 1e6 / (static_cast<double>(entries) * reps);

  const simd::Tier saved = simd::ActiveTier();
  simd::ForceTier(simd::Tier::kScalar);
  out.flat_scalar_ns = SweepFlat(flat, scoring, data, w, entries, reps, &sink);
  if (TierAvailable(simd::Tier::kSse2)) {
    simd::ForceTier(simd::Tier::kSse2);
    out.flat_sse2_ns = SweepFlat(flat, scoring, data, w, entries, reps, &sink);
  }
  if (TierAvailable(simd::Tier::kAvx2)) {
    simd::ForceTier(simd::Tier::kAvx2);
    out.flat_avx2_ns = SweepFlat(flat, scoring, data, w, entries, reps, &sink);
  }
  simd::ForceTier(saved);
  out.flat_active_ns = SweepFlat(flat, scoring, data, w, entries, reps, &sink);
  if (sink == -1.0) std::printf("unreachable\n");
  return out;
}

// Full incremental-skyline build over an anti-correlated sample (the
// dominance-scan-dominated workload), scalar tier vs the dispatched
// tier. Identical insert order => identical comparison counts, so the
// wall-time ratio is the kernel speedup.
DominanceMicro RunDominanceMicro(int64_t d, int64_t seed) {
  DominanceMicro out;
  Rng rng(static_cast<uint64_t>(seed) + 202);
  Dataset anti = GenerateAnticorrelated(4000, static_cast<size_t>(d), rng);
  const simd::Tier saved = simd::ActiveTier();
  double sink = 0.0;
  const int reps = 8;
  auto build = [&]() {
    Stopwatch sw;
    for (int r = 0; r < reps; ++r) {
      SkylineSet sky(&anti);
      for (size_t i = 0; i < anti.size(); ++i) {
        sky.Insert(static_cast<RecordId>(i));
      }
      sink += static_cast<double>(sky.size());
    }
    return sw.ElapsedMillis() / reps;
  };
  simd::ForceTier(simd::Tier::kScalar);
  out.scalar_tier_ms = build();
  simd::ForceTier(saved);
  out.active_tier_ms = build();
  if (sink == -1.0) std::printf("unreachable\n");
  return out;
}

TransformMicro RunTransformMicro(int64_t seed) {
  TransformMicro out;
  Rng rng(static_cast<uint64_t>(seed) + 303);
  const size_t n = 1 << 16;
  std::vector<double> x(n), y(n);
  for (double& v : x) v = rng.Uniform();
  PolynomialScoring poly(6);
  MixedScoring mixed(4);
  const simd::Tier saved = simd::ActiveTier();
  const int reps = 60;
  double sink = 0.0;
  auto run = [&](const ScoringFunction& s, size_t dim_index) {
    Stopwatch sw;
    for (int r = 0; r < reps; ++r) {
      s.TransformDimBatch(dim_index, x.data(), n, y.data());
      sink += y[0];
    }
    return sw.ElapsedMillis() * 1e6 / (static_cast<double>(n) * reps);
  };
  simd::ForceTier(simd::Tier::kScalar);
  out.poly_scalar_ns = run(poly, 0);   // exponent 6
  out.mixed_scalar_ns = run(mixed, 0);  // x^2 plane
  simd::ForceTier(saved);
  out.poly_active_ns = run(poly, 0);
  out.mixed_active_ns = run(mixed, 0);
  if (sink == -1.0) std::printf("unreachable\n");
  return out;
}

// The invalidation LP phase: per-(region, insert) piercing tests. The
// per-call path solves each LP cold (the PR 3 shape: assemble + phase 2
// from the slack basis per pair); the batch path shares one Prepare per
// region and warm-starts every subsequent LP. Decisions (first admitted
// insert per region, i.e. the eviction verdicts) must match exactly.
LpMicro RunLpMicro(int64_t n, int64_t d, int64_t k, int64_t num_regions,
                   int64_t num_gains, int reps, int64_t seed) {
  LpMicro out;
  out.regions = static_cast<size_t>(num_regions);
  out.gains_per_region = static_cast<size_t>(num_gains);
  Rng rng(static_cast<uint64_t>(seed));
  Dataset data = GenerateIndependent(static_cast<size_t>(n),
                                     static_cast<size_t>(d), rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk,
                   MakeScoring("Linear", static_cast<size_t>(d))));
  std::vector<GirRegion> regions;
  std::vector<Vec> gks;
  for (int64_t q = 0; q < num_regions; ++q) {
    Vec w = RandomQuery(rng, static_cast<size_t>(d));
    Result<GirComputation> gir =
        engine->ComputeGir(w, static_cast<size_t>(k), Phase2Method::kFP);
    if (!gir.ok()) {
      std::fprintf(stderr, "GIR failed: %s\n", gir.status().message().c_str());
      std::exit(1);
    }
    regions.push_back(gir->region.ConstraintsOnly());
    gks.push_back(
        engine->scoring().Transform(data.Get(gir->topk.result.back())));
  }

  // Simulated insert stream: random points, the same for every region;
  // per-region gains g(p) − g(p_k).
  std::vector<Vec> inserts;
  for (int64_t t = 0; t < num_gains; ++t) {
    Vec p(static_cast<size_t>(d));
    for (double& x : p) x = rng.Uniform();
    inserts.push_back(engine->scoring().Transform(p));
  }
  const size_t dim = static_cast<size_t>(d);
  std::vector<std::vector<double>> gains(regions.size());
  for (size_t r = 0; r < regions.size(); ++r) {
    gains[r].resize(inserts.size() * dim);
    for (size_t t = 0; t < inserts.size(); ++t) {
      for (size_t j = 0; j < dim; ++j) {
        gains[r][t * dim + j] = inserts[t][j] - gks[r][j];
      }
    }
  }

  std::vector<size_t> per_call_first(regions.size());
  std::vector<size_t> batch_first(regions.size());

  Stopwatch sw;
  for (int rep = 0; rep < reps; ++rep) {
    for (size_t r = 0; r < regions.size(); ++r) {
      size_t first = inserts.size();
      for (size_t t = 0; t < inserts.size(); ++t) {
        if (regions[r].AdmitsGain(
                VecView(gains[r].data() + t * dim, dim))) {
          first = t;
          break;
        }
      }
      per_call_first[r] = first;
    }
  }
  out.per_call_ms = sw.ElapsedMillis() / reps;

  LpWorkspace ws;
  sw.Restart();
  for (int rep = 0; rep < reps; ++rep) {
    for (size_t r = 0; r < regions.size(); ++r) {
      batch_first[r] =
          regions[r].FirstAdmittedGain(gains[r].data(), inserts.size(), &ws);
    }
  }
  out.batch_ms = sw.ElapsedMillis() / reps;

  for (size_t r = 0; r < regions.size(); ++r) {
    if (per_call_first[r] != batch_first[r]) out.decisions_equal = false;
    if (batch_first[r] < inserts.size()) ++out.admitted;
  }
  return out;
}

double Ratio(double a, double b) { return b > 0.0 ? a / b : 0.0; }

}  // namespace

int main(int argc, char** argv) {
  int64_t n = 50000;
  int64_t d = 4;
  int64_t k = 20;
  int64_t num_regions = 24;
  int64_t num_gains = 64;
  int64_t reps = 5;
  int64_t seed = 2014;
  std::string out_path = "BENCH_PR4.json";
  FlagSet flags;
  flags.AddInt("n", &n, "dataset cardinality");
  flags.AddInt("d", &d, "dimensionality");
  flags.AddInt("k", &k, "top-k result size");
  flags.AddInt("regions", &num_regions, "cached regions in the LP phase");
  flags.AddInt("gains", &num_gains, "inserts tested against each region");
  flags.AddInt("reps", &reps, "measurement repetitions");
  flags.AddInt("seed", &seed, "RNG seed");
  flags.AddString("out", &out_path, "output JSON path");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) return s.code() == StatusCode::kNotFound ? 0 : 1;

  std::printf("simd: detected=%s active=%s\n",
              simd::TierName(simd::DetectedTier()),
              simd::TierName(simd::ActiveTier()));

  ScoreMicro score = RunScoreMicro(n, d, seed, static_cast<int>(reps) * 8);
  const double score_speedup_aos = Ratio(score.aos_ns, score.flat_active_ns);
  const double score_speedup_tier =
      Ratio(score.flat_scalar_ns, score.flat_active_ns);
  std::printf("node scoring: aos %.2f, flat scalar %.2f, sse2 %.2f, "
              "avx2 %.2f, active %.2f ns/entry (%.2fx vs aos, %.2fx vs "
              "scalar tier)\n",
              score.aos_ns, score.flat_scalar_ns, score.flat_sse2_ns,
              score.flat_avx2_ns, score.flat_active_ns, score_speedup_aos,
              score_speedup_tier);

  DominanceMicro dom = RunDominanceMicro(d, seed);
  const double dom_speedup = Ratio(dom.scalar_tier_ms, dom.active_tier_ms);
  std::printf("dominance:    scalar tier %.3f ms, active tier %.3f ms "
              "(%.2fx)\n",
              dom.scalar_tier_ms, dom.active_tier_ms, dom_speedup);

  TransformMicro tr = RunTransformMicro(seed);
  std::printf("transforms:   poly %.2f -> %.2f ns/elem, mixed-sq %.2f -> "
              "%.2f ns/elem\n",
              tr.poly_scalar_ns, tr.poly_active_ns, tr.mixed_scalar_ns,
              tr.mixed_active_ns);

  LpMicro lp = RunLpMicro(n, d, k, num_regions, num_gains,
                          static_cast<int>(reps), seed);
  const double lp_speedup = Ratio(lp.per_call_ms, lp.batch_ms);
  std::printf("invalidation LP phase: per-call %.3f ms, batch %.3f ms "
              "(%.2fx), decisions %s, %llu/%zu regions pierced\n",
              lp.per_call_ms, lp.batch_ms, lp_speedup,
              lp.decisions_equal ? "EQUAL" : "DIVERGED",
              static_cast<unsigned long long>(lp.admitted), lp.regions);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_simd_lp\",\n");
  std::fprintf(f,
               "  \"params\": {\"n\": %lld, \"d\": %lld, \"k\": %lld, "
               "\"regions\": %lld, \"gains\": %lld, \"reps\": %lld, "
               "\"seed\": %lld},\n",
               static_cast<long long>(n), static_cast<long long>(d),
               static_cast<long long>(k), static_cast<long long>(num_regions),
               static_cast<long long>(num_gains), static_cast<long long>(reps),
               static_cast<long long>(seed));
  std::fprintf(f, "  \"simd\": {\"detected_tier\": \"%s\", "
               "\"active_tier\": \"%s\"},\n",
               simd::TierName(simd::DetectedTier()),
               simd::TierName(simd::ActiveTier()));
  std::fprintf(f, "  \"micro\": {\n");
  std::fprintf(f, "    \"node_score_aos_ns_per_entry\": %.3f,\n",
               score.aos_ns);
  std::fprintf(f, "    \"node_score_flat_scalar_ns_per_entry\": %.3f,\n",
               score.flat_scalar_ns);
  std::fprintf(f, "    \"node_score_flat_sse2_ns_per_entry\": %.3f,\n",
               score.flat_sse2_ns);
  std::fprintf(f, "    \"node_score_flat_avx2_ns_per_entry\": %.3f,\n",
               score.flat_avx2_ns);
  std::fprintf(f, "    \"node_score_flat_active_ns_per_entry\": %.3f,\n",
               score.flat_active_ns);
  std::fprintf(f, "    \"node_score_speedup_vs_aos\": %.3f,\n",
               score_speedup_aos);
  std::fprintf(f, "    \"node_score_speedup_vs_scalar_tier\": %.3f,\n",
               score_speedup_tier);
  std::fprintf(f, "    \"dominance_scalar_tier_ms\": %.4f,\n",
               dom.scalar_tier_ms);
  std::fprintf(f, "    \"dominance_active_tier_ms\": %.4f,\n",
               dom.active_tier_ms);
  std::fprintf(f, "    \"dominance_tier_speedup\": %.3f,\n", dom_speedup);
  std::fprintf(f, "    \"transform_poly_scalar_ns\": %.3f,\n",
               tr.poly_scalar_ns);
  std::fprintf(f, "    \"transform_poly_active_ns\": %.3f,\n",
               tr.poly_active_ns);
  std::fprintf(f, "    \"transform_mixed_sq_scalar_ns\": %.3f,\n",
               tr.mixed_scalar_ns);
  std::fprintf(f, "    \"transform_mixed_sq_active_ns\": %.3f\n",
               tr.mixed_active_ns);
  std::fprintf(f, "  },\n  \"lp\": {\n");
  std::fprintf(f, "    \"regions\": %zu,\n", lp.regions);
  std::fprintf(f, "    \"gains_per_region\": %zu,\n", lp.gains_per_region);
  std::fprintf(f, "    \"per_call_ms\": %.4f,\n", lp.per_call_ms);
  std::fprintf(f, "    \"batch_ms\": %.4f,\n", lp.batch_ms);
  std::fprintf(f, "    \"speedup\": %.3f,\n", lp_speedup);
  std::fprintf(f, "    \"decisions_equal\": %s,\n",
               lp.decisions_equal ? "true" : "false");
  std::fprintf(f, "    \"regions_pierced\": %llu\n",
               static_cast<unsigned long long>(lp.admitted));
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // Acceptance bars (see file comment). Exit 2 keeps the failure
  // distinguishable from infrastructure errors.
  const bool pass = score_speedup_aos >= 1.5 && lp_speedup >= 2.0 &&
                    lp.decisions_equal;
  if (!pass) {
    std::fprintf(stderr,
                 "ACCEPTANCE FAIL: score %.2fx (need >= 1.5), lp %.2fx "
                 "(need >= 2.0), decisions_equal=%d\n",
                 score_speedup_aos, lp_speedup, lp.decisions_equal);
    return 2;
  }
  return 0;
}
