// Mmap'd-arena storage benchmark (JSON + exit-code gated):
//
// 1. Cold restart: push an engine through several update epochs,
//    publish the final epoch both ways — legacy snapshot and mmap'able
//    arena — then "crash" and measure the two restart paths against
//    each other: deserialize + rebuild + refreeze (RecoverLatest +
//    Restore) vs. validate + mmap + serve (Open with an arena source).
//    Probe queries prove the mapped engine answers bit-identically
//    (ids, scores, charged reads) to the pre-crash one.
//
// 2. Frontier prefetch: evict the mapping's resident set, then run one
//    shared-traversal batch with the madvise readahead on and one with
//    it off, reporting the issue/hit/miss counters and the round wall
//    time. The gate is correctness-shaped, not wall-clock-shaped: the
//    counters must fire exactly when enabled, and prefetch must not be
//    catastrophically slower — on tmpfs-backed CI runners the page-in
//    cost readahead hides is near zero, so a latency win is reported
//    but never required.
//
// 3. Larger-than-RAM: repeatedly cap the resident set (Evict) and
//    serve a batch through the cold mapping, reporting how many bytes
//    each round faults back in — the mapped engine keeps serving when
//    the file does not fit in memory, it just pays page-ins.
//
// Emits BENCH_PR8.json (schema bench/BENCH_PR8.schema.json); exits
// non-zero unless the mmap restart clears --min_speedup over rebuild,
// the probes are bitwise-identical, and the prefetch counters behave.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "gir/batch_engine.h"
#include "storage/arena_file.h"
#include "storage/snapshot_store.h"

using namespace gir;
using namespace gir::bench;

namespace {

struct BenchConfig {
  Params params;
  int64_t dim = 3;
  int64_t epochs = 3;         // update batches before the "crash"
  int64_t probes = 24;        // bitwise-equality probe queries
  int64_t batch_queries = 48; // prefetch / resident-set batch size
  int64_t resident_rounds = 3;
  double min_speedup = 5.0;   // required rebuild_ms / mmap_open_ms
};

UpdateBatch MakeUpdateBatch(const Dataset& data, Rng& rng, size_t count) {
  UpdateBatch batch;
  const size_t dim = data.dim();
  for (size_t i = 0; i < count; ++i) {
    Vec v(dim);
    for (size_t j = 0; j < dim; ++j) v[j] = rng.Uniform();
    batch.inserts.push_back(std::move(v));
  }
  while (batch.deletes.size() < count) {
    const RecordId id = static_cast<RecordId>(rng.UniformInt(data.size()));
    if (!data.IsLive(id)) continue;
    bool dup = false;
    for (RecordId d : batch.deletes) dup |= d == id;
    if (!dup) batch.deletes.push_back(id);
  }
  return batch;
}

struct PrefetchRun {
  double wall_ms = 0.0;
  uint64_t issued = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
};

struct ResidentRound {
  uint64_t resident_before = 0;
  uint64_t resident_after = 0;
  double wall_ms = 0.0;
};

PrefetchRun RunSharedBatch(BatchEngine* batch, const std::vector<Vec>& ws,
                           size_t k, bool prefetch) {
  ExecPolicy policy;
  policy.shared_traversal = true;
  policy.group_width = 16;
  policy.prefetch = prefetch;
  Stopwatch sw;
  auto result = batch->ComputeBatch(ws, k, Phase2Method::kFP, policy);
  PrefetchRun run;
  run.wall_ms = sw.ElapsedMillis();
  if (!result.ok()) {
    std::fprintf(stderr, "batch: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  run.issued = result->stats.prefetch_issued;
  run.hits = result->stats.prefetch_hits;
  run.misses = result->stats.prefetch_misses;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  cfg.params.n = 60000;
  FlagSet flags;
  cfg.params.Register(&flags);
  std::string out_path = "BENCH_PR8.json";
  std::string arena_dir =
      (std::filesystem::temp_directory_path() / "gir_bench_arena").string();
  flags.AddInt("d", &cfg.dim, "dimensionality");
  flags.AddInt("epochs", &cfg.epochs, "update epochs before the crash");
  flags.AddInt("probes", &cfg.probes, "bitwise probe queries post-restart");
  flags.AddInt("batch_queries", &cfg.batch_queries,
               "queries per prefetch / resident-set batch");
  flags.AddInt("resident_rounds", &cfg.resident_rounds,
               "evict-and-serve rounds of the capped-resident-set phase");
  flags.AddDouble("min_speedup", &cfg.min_speedup,
                  "required cold-restart speedup of mmap over rebuild");
  flags.AddString("arena_dir", &arena_dir,
                  "scratch directory for snapshot + arena files");
  flags.AddString("out", &out_path, "output JSON path");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) return s.code() == StatusCode::kNotFound ? 0 : 1;
  cfg.params.ApplyFullDefaults();

  std::printf("Mmap arena bench (n=%lld, d=%lld, k=%lld, epochs=%lld)\n",
              static_cast<long long>(cfg.params.n),
              static_cast<long long>(cfg.dim),
              static_cast<long long>(cfg.params.k),
              static_cast<long long>(cfg.epochs));

  const size_t dim = static_cast<size_t>(cfg.dim);
  GirEngineOptions eopts;
  eopts.materialize_polytope = false;

  // ----- build + epochs + publish both restart images -----
  Dataset data = MakeNamedDataset("IND", cfg.params.n, cfg.dim,
                                  cfg.params.seed);
  DiskManager disk;
  auto engine = OpenEngineOrDie(EngineConfig::FromDataset(
      &data, &disk, MakeScoring("Linear", dim), eopts));
  Rng rng(static_cast<uint64_t>(cfg.params.seed) * 47 + 3);
  for (int64_t e = 0; e < cfg.epochs; ++e) {
    UpdateBatch batch = MakeUpdateBatch(engine->dataset(), rng, 64);
    auto up = engine->ApplyUpdates(batch);
    if (!up.ok()) {
      std::fprintf(stderr, "update: %s\n", up.status().ToString().c_str());
      return 1;
    }
  }
  std::filesystem::remove_all(arena_dir);
  SnapshotStore store(arena_dir);
  const uint64_t version = engine->dataset_version();
  auto snap = store.WriteSnapshot(engine->dataset(), engine->tree(), version);
  auto arena_write = store.WriteArena(engine->flat_tree(), version);
  if (!snap.ok() || !arena_write.ok()) {
    std::fprintf(stderr, "publish failed\n");
    return 1;
  }

  // ----- cold restart: rebuild vs mmap -----
  DiskManager rebuild_disk;
  Stopwatch rebuild_sw;
  auto rebuilt_open = GirEngine::Open(EngineConfig::FromSnapshotDir(
      arena_dir, &rebuild_disk, MakeScoring("Linear", dim), eopts));
  if (!rebuilt_open.ok()) {
    std::fprintf(stderr, "recover: %s\n",
                 rebuilt_open.status().ToString().c_str());
    return 1;
  }
  auto rebuilt = std::move(*rebuilt_open);
  const double rebuild_ms = rebuild_sw.ElapsedMillis();

  // Best of three opens: the mmap path is microseconds-scale, one
  // scheduler hiccup would otherwise dominate the ratio.
  double mmap_open_ms = 0.0;
  std::unique_ptr<GirEngine> mapped;
  DiskManager mmap_disk;
  for (int attempt = 0; attempt < 3; ++attempt) {
    Stopwatch sw;
    auto opened = GirEngine::Open(EngineConfig::FromArena(
        arena_dir, &mmap_disk, MakeScoring("Linear", dim), eopts));
    const double ms = sw.ElapsedMillis();
    if (!opened.ok()) {
      std::fprintf(stderr, "open arena: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    if (mapped == nullptr || ms < mmap_open_ms) mmap_open_ms = ms;
    mapped = std::move(*opened);
  }
  const double speedup = rebuild_ms / std::max(mmap_open_ms, 1e-6);

  // ----- bitwise probes: pre-crash vs mapped -----
  bool bitwise = mapped->dataset_version() == version &&
                 rebuilt->dataset_version() == version;
  Rng probe_rng(99);
  for (int64_t q = 0; q < cfg.probes; ++q) {
    Vec w = RandomQuery(probe_rng, dim);
    auto a = engine->ComputeGir(w, cfg.params.k, Phase2Method::kFP);
    auto b = mapped->ComputeGir(w, cfg.params.k, Phase2Method::kFP);
    if (!a.ok() || !b.ok() || a->topk.result != b->topk.result ||
        a->topk.scores != b->topk.scores ||
        a->topk.io.reads != b->topk.io.reads ||
        a->stats.phase2_reads != b->stats.phase2_reads) {
      bitwise = false;
      break;
    }
  }

  PrintTitle("cold restart");
  PrintHeader("path", {"ms"});
  PrintRow("rebuild", {rebuild_ms});
  PrintRow("mmap", {mmap_open_ms});
  std::printf("arena %.1f KiB vs snapshot %.1f KiB; speedup %.1fx, "
              "probes bitwise %s\n",
              static_cast<double>(arena_write->bytes) / 1024.0,
              static_cast<double>(snap->bytes) / 1024.0, speedup,
              bitwise ? "yes" : "NO");

  // ----- frontier prefetch on a cold mapping -----
  const ArenaFile* arena = mapped->flat_tree().arena().get();
  std::vector<Vec> batch_ws;
  Rng batch_rng(static_cast<uint64_t>(cfg.params.seed) * 13 + 1);
  for (int64_t q = 0; q < cfg.batch_queries; ++q) {
    batch_ws.push_back(RandomQuery(batch_rng, dim));
  }
  BatchOptions bopts;
  bopts.threads = 1;
  bopts.cache_capacity = 0;  // every query exercises the storage path
  BatchEngine mmap_batch(mapped.get(), bopts);

  arena->Evict();
  PrefetchRun off = RunSharedBatch(&mmap_batch, batch_ws, cfg.params.k,
                                   /*prefetch=*/false);
  arena->Evict();
  PrefetchRun on = RunSharedBatch(&mmap_batch, batch_ws, cfg.params.k,
                                  /*prefetch=*/true);
  const double hit_rate =
      on.hits + on.misses > 0
          ? static_cast<double>(on.hits) /
                static_cast<double>(on.hits + on.misses)
          : 0.0;
  // Counter contract plus a loose latency backstop (tmpfs runners see
  // no page-in cost, so "not catastrophically slower" is the portable
  // claim; absolute wall times are reported for real-disk hosts).
  const bool prefetch_ok = on.issued > 0 && on.hits + on.misses > 0 &&
                           off.issued == 0 &&
                           on.wall_ms <= off.wall_ms * 3.0 + 5.0;

  PrintTitle("frontier prefetch (cold mapping, shared traversal)");
  PrintHeader("mode", {"wall_ms", "issued", "hits", "misses"});
  PrintRow("off", {off.wall_ms, static_cast<double>(off.issued),
                   static_cast<double>(off.hits),
                   static_cast<double>(off.misses)});
  PrintRow("on", {on.wall_ms, static_cast<double>(on.issued),
                  static_cast<double>(on.hits),
                  static_cast<double>(on.misses)});
  std::printf("prefetch hit rate %.2f, counters %s\n", hit_rate,
              prefetch_ok ? "ok" : "BROKEN");

  // ----- larger-than-RAM: capped resident set, keep serving -----
  std::vector<ResidentRound> rounds;
  for (int64_t r = 0; r < cfg.resident_rounds; ++r) {
    arena->Evict();
    ResidentRound round;
    round.resident_before = arena->ResidentBytes();
    Stopwatch sw;
    auto result = mmap_batch.ComputeBatch(batch_ws, cfg.params.k,
                                          Phase2Method::kFP);
    round.wall_ms = sw.ElapsedMillis();
    if (!result.ok()) {
      std::fprintf(stderr, "resident round: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    round.resident_after = arena->ResidentBytes();
    rounds.push_back(round);
  }
  PrintTitle("capped resident set (evict before every round)");
  PrintHeader("round", {"resident_kb_before", "resident_kb_after",
                        "wall_ms"});
  for (size_t r = 0; r < rounds.size(); ++r) {
    PrintRow(std::to_string(r),
             {static_cast<double>(rounds[r].resident_before) / 1024.0,
              static_cast<double>(rounds[r].resident_after) / 1024.0,
              rounds[r].wall_ms});
  }

  // ----- gate + JSON -----
  const bool speedup_ok = speedup >= cfg.min_speedup;
  const bool pass = speedup_ok && bitwise && prefetch_ok;

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_mmap_arena\",\n");
  std::fprintf(f,
               "  \"params\": {\"n\": %lld, \"d\": %lld, \"k\": %lld, "
               "\"epochs\": %lld, \"probes\": %lld, "
               "\"batch_queries\": %lld, \"seed\": %lld, "
               "\"method\": \"FP\"},\n",
               static_cast<long long>(cfg.params.n),
               static_cast<long long>(cfg.dim),
               static_cast<long long>(cfg.params.k),
               static_cast<long long>(cfg.epochs),
               static_cast<long long>(cfg.probes),
               static_cast<long long>(cfg.batch_queries),
               static_cast<long long>(cfg.params.seed));
  std::fprintf(f,
               "  \"cold_restart\": {\"snapshot_bytes\": %llu, "
               "\"arena_bytes\": %llu, \"rebuild_ms\": %.4f, "
               "\"mmap_open_ms\": %.4f, \"speedup\": %.2f, "
               "\"version\": %llu, \"bitwise_identical\": %s},\n",
               static_cast<unsigned long long>(snap->bytes),
               static_cast<unsigned long long>(arena_write->bytes),
               rebuild_ms, mmap_open_ms, speedup,
               static_cast<unsigned long long>(version),
               bitwise ? "true" : "false");
  std::fprintf(f,
               "  \"prefetch\": {\"queries\": %lld, "
               "\"off\": {\"wall_ms\": %.4f, \"issued\": %llu, "
               "\"hits\": %llu, \"misses\": %llu}, "
               "\"on\": {\"wall_ms\": %.4f, \"issued\": %llu, "
               "\"hits\": %llu, \"misses\": %llu}, "
               "\"hit_rate\": %.4f},\n",
               static_cast<long long>(cfg.batch_queries), off.wall_ms,
               static_cast<unsigned long long>(off.issued),
               static_cast<unsigned long long>(off.hits),
               static_cast<unsigned long long>(off.misses), on.wall_ms,
               static_cast<unsigned long long>(on.issued),
               static_cast<unsigned long long>(on.hits),
               static_cast<unsigned long long>(on.misses), hit_rate);
  std::fprintf(f, "  \"resident\": [\n");
  for (size_t r = 0; r < rounds.size(); ++r) {
    std::fprintf(f,
                 "    {\"round\": %zu, \"resident_bytes_before\": %llu, "
                 "\"resident_bytes_after\": %llu, \"wall_ms\": %.4f}%s\n",
                 r,
                 static_cast<unsigned long long>(rounds[r].resident_before),
                 static_cast<unsigned long long>(rounds[r].resident_after),
                 rounds[r].wall_ms, r + 1 < rounds.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"gate\": {\"min_speedup\": %.2f, "
               "\"cold_restart_speedup\": %.2f, "
               "\"bitwise_identical\": %s, \"prefetch_ok\": %s, "
               "\"pass\": %s}\n",
               cfg.min_speedup, speedup, bitwise ? "true" : "false",
               prefetch_ok ? "true" : "false", pass ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::filesystem::remove_all(arena_dir);

  std::printf("\nwrote %s (rebuild %.2fms vs mmap %.3fms = %.1fx %s %.1fx; "
              "bitwise %s; prefetch %s: %s)\n",
              out_path.c_str(), rebuild_ms, mmap_open_ms, speedup,
              speedup_ok ? ">=" : "<", cfg.min_speedup,
              bitwise ? "yes" : "NO", prefetch_ok ? "ok" : "broken",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
