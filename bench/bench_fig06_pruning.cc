// Figure 6: effectiveness of SP and CP pruning.
//   (a) cardinality of SL (skyline of D \ R) vs dimensionality
//   (b) cardinality of SL ∩ CH vs dimensionality
// Paper setting: n = 1M, k = 20, IND / ANTI / COR.
#include "bench_util.h"

using namespace gir;
using namespace gir::bench;

int main(int argc, char** argv) {
  Params params;
  FlagSet flags;
  params.Register(&flags);
  int64_t dmax = 5;
  flags.AddInt("dmax", &dmax, "largest dimensionality to test");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) return s.code() == StatusCode::kNotFound ? 0 : 1;
  params.ApplyFullDefaults();
  if (params.full) dmax = 8;

  const std::vector<std::string> dists = {"IND", "ANTI", "COR"};
  std::printf("Figure 6: SP and CP pruning effectiveness "
              "(n=%lld, k=%lld, %lld queries)\n",
              static_cast<long long>(params.n),
              static_cast<long long>(params.k),
              static_cast<long long>(params.queries));

  struct Cell {
    double sl = -1.0;
    double slch = -1.0;
  };
  std::vector<std::vector<Cell>> table(dists.size());

  for (size_t di = 0; di < dists.size(); ++di) {
    for (int64_t d = 2; d <= dmax; ++d) {
      // CP's hull over a huge anti-correlated skyline is the known
      // pathology the paper reports; cap the default sweep at d=5.
      if (!params.full && dists[di] == "ANTI" && d > 5) {
        table[di].push_back(Cell{});
        continue;
      }
      Dataset data = MakeNamedDataset(dists[di], params.n, d,
                                      params.seed + d);
      DiskManager disk;
      GirEngineOptions opt;
      opt.materialize_polytope = false;  // count candidates only
      auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d), opt));
      Rng rng(params.seed * 7 + d);
      MethodCost sp = MeasureGir(*engine, Phase2Method::kSP, params.k,
                                 static_cast<int>(params.queries), rng);
      Rng rng2(params.seed * 7 + d);
      MethodCost cp = MeasureGir(*engine, Phase2Method::kCP, params.k,
                                 static_cast<int>(params.queries), rng2);
      Cell cell;
      if (sp.ok) cell.sl = sp.candidates;
      if (cp.ok) cell.slch = cp.candidates;
      table[di].push_back(cell);
    }
  }

  PrintTitle("Figure 6(a): cardinality of SL vs d");
  PrintHeader("d", {"Independent", "Anti-corr", "Correlated"});
  for (int64_t d = 2; d <= dmax; ++d) {
    PrintRow(d, {table[0][d - 2].sl, table[1][d - 2].sl, table[2][d - 2].sl});
  }
  PrintTitle("Figure 6(b): cardinality of SL \xE2\x88\xA9 CH vs d");
  PrintHeader("d", {"Independent", "Anti-corr", "Correlated"});
  for (int64_t d = 2; d <= dmax; ++d) {
    PrintRow(d, {table[0][d - 2].slch, table[1][d - 2].slch,
                 table[2][d - 2].slch});
  }
  std::printf("\nExpected shape: |SL| grows sharply with d; ANTI >> IND >> "
              "COR; CP retains a small subset of SL.\n");
  return 0;
}
