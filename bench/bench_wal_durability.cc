// WAL durability benchmark (JSON + exit-code gated):
//
// 1. Ack latency: per-batch ApplyUpdates latency (p50/p99) without a
//    WAL vs. with one at increasing group-commit windows. The gate
//    bounds the durability tax: at the default commit interval
//    (window 0 — fsync per ack) the acked p99 must stay within
//    --max_ack_overhead x the no-WAL baseline.
//
// 2. Group commit: concurrent appenders on a raw WalWriter, fsyncs vs.
//    appends per window — the amortization a positive window buys.
//
// 3. Recovery vs. tail length: snapshot once, extend the WAL tail by T
//    batches, crash, and time the two-phase reopen (snapshot restore +
//    committed replay); the restored engine must answer probe queries
//    bit-identically (ids, scores, simulated reads) to the survivor.
//
// 4. Crash-point sweep: one injected fault — torn append, corrupt
//    append, fsync EIO — walked across every commit ordinal. For every
//    crash point recovery must reproduce exactly the acknowledged
//    prefix: every acked batch survives bit-identically, no batch
//    whose ack failed is ever replayed (zero acked-write loss).
//
// Emits BENCH_PR10.json (schema bench/BENCH_PR10.schema.json); exits
// non-zero unless the sweep shows zero loss, recovery is bitwise, and
// the ack-latency overhead clears the gate.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "storage/fault_injector.h"
#include "storage/snapshot_store.h"
#include "storage/wal.h"

using namespace gir;
using namespace gir::bench;

namespace {

struct BenchConfig {
  Params params;
  int64_t dim = 3;
  int64_t ack_batches = 120;  // latency samples per ack mode
  int64_t batch_size = 8;     // inserts (and deletes) per update batch
  int64_t probes = 12;        // bitwise probe queries after recovery
  int64_t crash_points = 4;   // commit ordinals swept per damage kind
  double max_ack_overhead = 2.0;
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

std::string ScratchDir(const std::string& leaf) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("gir_bench_wal_" + leaf))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

// Deterministic per-epoch batch: same inserts/deletes whether applied
// on the measured, reference or recovered timeline.
UpdateBatch EpochBatch(uint64_t epoch, size_t dim, size_t count) {
  Rng rng(12000 + epoch);
  UpdateBatch batch;
  for (size_t i = 0; i < count; ++i) {
    Vec v(dim);
    for (double& x : v) x = rng.Uniform();
    batch.inserts.push_back(std::move(v));
  }
  // Distinct live ids: initial records only, spaced per epoch.
  for (size_t i = 0; i < count; ++i) {
    batch.deletes.push_back(
        static_cast<RecordId>((epoch - 1) * count + i));
  }
  return batch;
}

// ----- 1. ack latency ------------------------------------------------

struct AckPoint {
  std::string mode;
  double window_ms = 0.0;
  bool with_wal = false;
  size_t batches = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double wal_p99_ms = 0.0;  // append + group-commit wait share
  uint64_t appends = 0;
  uint64_t fsyncs = 0;
};

AckPoint MeasureAckLatency(const BenchConfig& cfg, const std::string& mode,
                           bool with_wal, double window_ms) {
  Dataset data =
      MakeNamedDataset("IND", cfg.params.n, cfg.dim, cfg.params.seed);
  DiskManager disk;
  const std::string wal_dir = ScratchDir("ack_" + mode);
  std::unique_ptr<GirEngine> engine;
  if (with_wal) {
    WalOptions wopts;
    wopts.group_window_ms = window_ms;
    engine = OpenEngineOrDie(
        EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", cfg.dim))
            .WithWal(wal_dir, wopts));
  } else {
    engine = OpenEngineOrDie(EngineConfig::FromDataset(
        &data, &disk, MakeScoring("Linear", cfg.dim)));
  }

  AckPoint point;
  point.mode = mode;
  point.window_ms = window_ms;
  point.with_wal = with_wal;
  std::vector<double> ack_ms;
  std::vector<double> wal_ms;
  for (int64_t e = 1; e <= cfg.ack_batches; ++e) {
    UpdateBatch batch = EpochBatch(static_cast<uint64_t>(e), cfg.dim,
                                   static_cast<size_t>(cfg.batch_size));
    Stopwatch sw;
    Result<UpdateStats> up = engine->ApplyUpdates(batch);
    if (!up.ok()) {
      std::fprintf(stderr, "ack %s: %s\n", mode.c_str(),
                   up.status().ToString().c_str());
      std::exit(1);
    }
    ack_ms.push_back(sw.ElapsedMillis());
    wal_ms.push_back(up->wal_ms);
  }
  point.batches = ack_ms.size();
  point.p50_ms = Percentile(ack_ms, 0.50);
  point.p99_ms = Percentile(ack_ms, 0.99);
  point.wal_p99_ms = Percentile(wal_ms, 0.99);
  const WalWriter::Stats stats = engine->wal_writer_stats();
  point.appends = stats.appends;
  point.fsyncs = stats.fsyncs;
  engine.reset();
  std::filesystem::remove_all(wal_dir);
  return point;
}

// ----- 2. group commit -----------------------------------------------

struct GroupPoint {
  double window_ms = 0.0;
  size_t threads = 0;
  uint64_t appends = 0;
  uint64_t fsyncs = 0;
  double amortization = 0.0;  // appends per fsync
  double wall_ms = 0.0;
};

GroupPoint MeasureGroupCommit(const BenchConfig& cfg, double window_ms) {
  const std::string dir =
      ScratchDir("group_" + std::to_string(window_ms));
  WalStore store(dir);
  WalOptions wopts;
  wopts.group_window_ms = window_ms;
  auto writer = WalWriter::Open(&store, 0, static_cast<uint64_t>(cfg.dim),
                                wopts);
  if (!writer.ok()) {
    std::fprintf(stderr, "wal open: %s\n",
                 writer.status().ToString().c_str());
    std::exit(1);
  }

  GroupPoint point;
  point.window_ms = window_ms;
  point.threads = 8;
  const size_t per_thread = 16;
  std::atomic<uint64_t> next_epoch{1};
  Stopwatch sw;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < point.threads; ++t) {
    workers.emplace_back([&] {
      for (size_t i = 0; i < per_thread; ++i) {
        const uint64_t epoch =
            next_epoch.fetch_add(1, std::memory_order_relaxed);
        UpdateBatch batch = EpochBatch(epoch, cfg.dim, 2);
        batch.deletes.clear();  // raw-writer path, ids don't matter
        const Status s = (*writer)->AppendDurable(batch, epoch);
        if (!s.ok()) {
          std::fprintf(stderr, "group append: %s\n", s.ToString().c_str());
          std::exit(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  point.wall_ms = sw.ElapsedMillis();
  const WalWriter::Stats stats = (*writer)->stats();
  point.appends = stats.appends;
  point.fsyncs = stats.fsyncs;
  point.amortization =
      stats.fsyncs == 0 ? 0.0
                        : static_cast<double>(stats.appends) /
                              static_cast<double>(stats.fsyncs);
  writer->reset();
  std::filesystem::remove_all(dir);
  return point;
}

// ----- 3. recovery vs tail length ------------------------------------

struct RecoveryPoint {
  size_t tail_batches = 0;
  double open_ms = 0.0;  // two-phase reopen: restore + replay
  size_t replayed = 0;
  uint64_t recovered_version = 0;
  bool bitwise = false;
};

RecoveryPoint MeasureRecovery(const BenchConfig& cfg, size_t tail) {
  const std::string snap_dir =
      ScratchDir("rec_snap_" + std::to_string(tail));
  const std::string wal_dir =
      ScratchDir("rec_wal_" + std::to_string(tail));
  Dataset data =
      MakeNamedDataset("IND", cfg.params.n, cfg.dim, cfg.params.seed);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", cfg.dim))
          .WithWal(wal_dir));
  SnapshotStore store(snap_dir);

  // Two snapshotted epochs, then `tail` WAL-only batches.
  for (uint64_t e = 1; e <= 2; ++e) {
    Result<UpdateStats> up = engine->ApplyUpdates(
        EpochBatch(e, cfg.dim, static_cast<size_t>(cfg.batch_size)));
    if (!up.ok() ||
        !store.WriteSnapshot(engine->dataset(), engine->tree(), up->version)
             .ok()) {
      std::fprintf(stderr, "recovery setup failed\n");
      std::exit(1);
    }
  }
  for (uint64_t e = 3; e < 3 + tail; ++e) {
    if (!engine
             ->ApplyUpdates(EpochBatch(
                 e, cfg.dim, static_cast<size_t>(cfg.batch_size)))
             .ok()) {
      std::fprintf(stderr, "tail update failed\n");
      std::exit(1);
    }
  }

  RecoveryPoint point;
  point.tail_batches = tail;
  DiskManager disk2;
  Stopwatch sw;
  auto restored = OpenEngineOrDie(
      EngineConfig::FromSnapshotDir(snap_dir, &disk2,
                                    MakeScoring("Linear", cfg.dim))
          .WithWal(wal_dir));
  point.open_ms = sw.ElapsedMillis();
  point.replayed = restored->wal_recovery().replayed_batches;
  point.recovered_version = restored->dataset_version();

  point.bitwise =
      restored->dataset_version() == engine->dataset_version();
  Rng probe_rng(99);
  for (int64_t q = 0; q < cfg.probes && point.bitwise; ++q) {
    Vec w = RandomQuery(probe_rng, static_cast<size_t>(cfg.dim));
    auto a = engine->ComputeGir(w, cfg.params.k, Phase2Method::kFP);
    auto b = restored->ComputeGir(w, cfg.params.k, Phase2Method::kFP);
    point.bitwise = a.ok() && b.ok() && a->topk.result == b->topk.result &&
                    a->topk.scores == b->topk.scores &&
                    a->topk.io.reads == b->topk.io.reads;
  }
  restored.reset();
  engine.reset();
  std::filesystem::remove_all(snap_dir);
  std::filesystem::remove_all(wal_dir);
  return point;
}

// ----- 4. crash-point sweep ------------------------------------------

struct SweepResult {
  size_t cases = 0;
  size_t acked_total = 0;
  size_t survived = 0;          // cases whose acked prefix recovered bitwise
  size_t unacked_replayed = 0;  // cases where recovery overshot the acks
};

SweepResult CrashPointSweep(const BenchConfig& cfg) {
  struct Kind {
    const char* name;
    void (*arm)(FaultPlan*);
  };
  const Kind kinds[] = {
      {"torn", [](FaultPlan* p) { p->wal_torn_rate = 1.0; }},
      {"corrupt", [](FaultPlan* p) { p->wal_corrupt_rate = 1.0; }},
      {"fsync", [](FaultPlan* p) { p->wal_fsync_error_rate = 1.0; }},
  };
  const size_t epochs = static_cast<size_t>(cfg.crash_points);
  const size_t kSweepN = 2000;  // small dataset: the sweep is many runs

  SweepResult out;
  for (const Kind& kind : kinds) {
    for (size_t crash_op = 0; crash_op <= epochs; ++crash_op) {
      const std::string tag =
          std::string(kind.name) + "_" + std::to_string(crash_op);
      const std::string snap_dir = ScratchDir("sweep_snap_" + tag);
      const std::string wal_dir = ScratchDir("sweep_wal_" + tag);

      FaultPlan plan;
      plan.seed = 700 + crash_op;
      plan.skip_ops = crash_op;
      plan.max_faults = 1;
      kind.arm(&plan);
      FaultInjector fi(plan);

      Dataset data =
          MakeNamedDataset("IND", kSweepN, cfg.dim, cfg.params.seed);
      DiskManager disk;
      auto engine = OpenEngineOrDie(
          EngineConfig::FromDataset(&data, &disk,
                                    MakeScoring("Linear", cfg.dim))
              .WithWal(wal_dir, WalOptions{}, &fi));
      SnapshotStore store(snap_dir);
      if (!store.WriteSnapshot(engine->dataset(), engine->tree(), 0).ok()) {
        std::fprintf(stderr, "sweep snapshot failed\n");
        std::exit(1);
      }

      uint64_t acked = 0;
      for (uint64_t e = 1; e <= epochs; ++e) {
        if (engine->ApplyUpdates(EpochBatch(e, cfg.dim, 4)).ok()) {
          acked = e;
        } else {
          break;  // the injected crash hit this commit
        }
      }

      // Reference timeline: exactly the acked batches, no WAL.
      Dataset ref_data =
          MakeNamedDataset("IND", kSweepN, cfg.dim, cfg.params.seed);
      DiskManager ref_disk;
      auto reference = OpenEngineOrDie(EngineConfig::FromDataset(
          &ref_data, &ref_disk, MakeScoring("Linear", cfg.dim)));
      for (uint64_t e = 1; e <= acked; ++e) {
        if (!reference->ApplyUpdates(EpochBatch(e, cfg.dim, 4)).ok()) {
          std::fprintf(stderr, "sweep reference failed\n");
          std::exit(1);
        }
      }

      DiskManager disk2;
      auto restored = OpenEngineOrDie(
          EngineConfig::FromSnapshotDir(snap_dir, &disk2,
                                        MakeScoring("Linear", cfg.dim))
              .WithWal(wal_dir));
      ++out.cases;
      out.acked_total += acked;
      if (restored->dataset_version() > acked) ++out.unacked_replayed;

      bool bitwise = restored->dataset_version() == acked;
      Rng probe_rng(61);
      for (int64_t q = 0; q < cfg.probes && bitwise; ++q) {
        Vec w = RandomQuery(probe_rng, static_cast<size_t>(cfg.dim));
        auto a = reference->ComputeGir(w, cfg.params.k, Phase2Method::kFP);
        auto b = restored->ComputeGir(w, cfg.params.k, Phase2Method::kFP);
        bitwise = a.ok() && b.ok() && a->topk.result == b->topk.result &&
                  a->topk.scores == b->topk.scores;
      }
      if (bitwise) ++out.survived;

      restored.reset();
      engine.reset();
      std::filesystem::remove_all(snap_dir);
      std::filesystem::remove_all(wal_dir);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  cfg.params.n = 8000;
  FlagSet flags;
  cfg.params.Register(&flags);
  std::string out_path = "BENCH_PR10.json";
  flags.AddInt("d", &cfg.dim, "dimensionality");
  flags.AddInt("ack_batches", &cfg.ack_batches,
               "update batches per ack-latency mode");
  flags.AddInt("batch_size", &cfg.batch_size,
               "inserts (and deletes) per update batch");
  flags.AddInt("probes", &cfg.probes, "bitwise probe queries");
  flags.AddInt("crash_points", &cfg.crash_points,
               "commit ordinals swept per damage kind");
  flags.AddDouble("max_ack_overhead", &cfg.max_ack_overhead,
                  "max acked p99 / no-WAL p99 at the default interval");
  flags.AddString("out", &out_path, "output JSON path");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) return s.code() == StatusCode::kNotFound ? 0 : 1;
  cfg.params.ApplyFullDefaults();

  std::printf("WAL durability bench (n=%lld, d=%lld, k=%lld, "
              "ack_batches=%lld, crash_points=%lld)\n",
              static_cast<long long>(cfg.params.n),
              static_cast<long long>(cfg.dim),
              static_cast<long long>(cfg.params.k),
              static_cast<long long>(cfg.ack_batches),
              static_cast<long long>(cfg.crash_points));

  // ----- ack latency vs commit interval -----
  std::vector<AckPoint> acks;
  acks.push_back(MeasureAckLatency(cfg, "no-wal", false, 0.0));
  acks.push_back(MeasureAckLatency(cfg, "wal-sync", true, 0.0));
  acks.push_back(MeasureAckLatency(cfg, "wal-w0.5", true, 0.5));
  acks.push_back(MeasureAckLatency(cfg, "wal-w2", true, 2.0));
  PrintTitle("ack latency per update batch");
  PrintHeader("mode", {"window_ms", "p50_ms", "p99_ms", "fsyncs"});
  for (const AckPoint& p : acks) {
    PrintRow(p.mode, {p.window_ms, p.p50_ms, p.p99_ms,
                      static_cast<double>(p.fsyncs)});
  }

  // ----- group-commit amortization -----
  std::vector<GroupPoint> groups;
  for (double w : {0.0, 1.0, 4.0}) {
    groups.push_back(MeasureGroupCommit(cfg, w));
  }
  PrintTitle("group commit (8 concurrent appenders)");
  PrintHeader("window_ms", {"appends", "fsyncs", "appends/fsync"});
  for (const GroupPoint& p : groups) {
    PrintRow(std::to_string(p.window_ms),
             {static_cast<double>(p.appends),
              static_cast<double>(p.fsyncs), p.amortization});
  }

  // ----- recovery vs tail length -----
  std::vector<RecoveryPoint> recoveries;
  for (size_t tail : {size_t{0}, size_t{8}, size_t{32}}) {
    recoveries.push_back(MeasureRecovery(cfg, tail));
  }
  PrintTitle("two-phase recovery vs WAL tail length");
  PrintHeader("tail", {"open_ms", "replayed", "bitwise"});
  bool recovery_bitwise = true;
  for (const RecoveryPoint& p : recoveries) {
    PrintRow(std::to_string(p.tail_batches),
             {p.open_ms, static_cast<double>(p.replayed),
              p.bitwise ? 1.0 : 0.0});
    recovery_bitwise = recovery_bitwise && p.bitwise &&
                       p.replayed == p.tail_batches;
  }

  // ----- crash-point sweep -----
  SweepResult sweep = CrashPointSweep(cfg);
  const bool zero_loss =
      sweep.survived == sweep.cases && sweep.unacked_replayed == 0;
  std::printf("\ncrash sweep: %zu cases, %zu acked batches total, "
              "%zu survived bitwise, %zu replayed past the ack -> %s\n",
              sweep.cases, sweep.acked_total, sweep.survived,
              sweep.unacked_replayed,
              zero_loss ? "zero loss" : "LOSS DETECTED");

  // ----- gate -----
  const double baseline_p99 = acks[0].p99_ms;
  const double wal_p99 = acks[1].p99_ms;
  const double ack_overhead =
      baseline_p99 <= 0.0 ? 0.0 : wal_p99 / baseline_p99;
  const bool ack_overhead_ok = ack_overhead <= cfg.max_ack_overhead;
  const bool pass = zero_loss && recovery_bitwise && ack_overhead_ok;

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_wal_durability\",\n");
  std::fprintf(f,
               "  \"params\": {\"n\": %lld, \"d\": %lld, \"k\": %lld, "
               "\"ack_batches\": %lld, \"batch_size\": %lld, "
               "\"probes\": %lld, \"crash_points\": %lld, "
               "\"seed\": %lld, \"method\": \"FP\"},\n",
               static_cast<long long>(cfg.params.n),
               static_cast<long long>(cfg.dim),
               static_cast<long long>(cfg.params.k),
               static_cast<long long>(cfg.ack_batches),
               static_cast<long long>(cfg.batch_size),
               static_cast<long long>(cfg.probes),
               static_cast<long long>(cfg.crash_points),
               static_cast<long long>(cfg.params.seed));
  std::fprintf(f, "  \"ack_latency\": [\n");
  for (size_t i = 0; i < acks.size(); ++i) {
    const AckPoint& p = acks[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"window_ms\": %.2f, "
                 "\"with_wal\": %s, \"batches\": %zu, \"p50_ms\": %.4f, "
                 "\"p99_ms\": %.4f, \"wal_p99_ms\": %.4f, "
                 "\"appends\": %llu, \"fsyncs\": %llu}%s\n",
                 p.mode.c_str(), p.window_ms, p.with_wal ? "true" : "false",
                 p.batches, p.p50_ms, p.p99_ms, p.wal_p99_ms,
                 static_cast<unsigned long long>(p.appends),
                 static_cast<unsigned long long>(p.fsyncs),
                 i + 1 < acks.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"group_commit\": [\n");
  for (size_t i = 0; i < groups.size(); ++i) {
    const GroupPoint& p = groups[i];
    std::fprintf(f,
                 "    {\"window_ms\": %.2f, \"threads\": %zu, "
                 "\"appends\": %llu, \"fsyncs\": %llu, "
                 "\"amortization\": %.4f, \"wall_ms\": %.4f}%s\n",
                 p.window_ms, p.threads,
                 static_cast<unsigned long long>(p.appends),
                 static_cast<unsigned long long>(p.fsyncs), p.amortization,
                 p.wall_ms, i + 1 < groups.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"recovery\": [\n");
  for (size_t i = 0; i < recoveries.size(); ++i) {
    const RecoveryPoint& p = recoveries[i];
    std::fprintf(f,
                 "    {\"tail_batches\": %zu, \"open_ms\": %.4f, "
                 "\"replayed\": %zu, \"recovered_version\": %llu, "
                 "\"bitwise\": %s}%s\n",
                 p.tail_batches, p.open_ms, p.replayed,
                 static_cast<unsigned long long>(p.recovered_version),
                 p.bitwise ? "true" : "false",
                 i + 1 < recoveries.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"crash_sweep\": {\"cases\": %zu, \"acked_total\": %zu, "
               "\"survived\": %zu, \"unacked_replayed\": %zu, "
               "\"zero_loss\": %s},\n",
               sweep.cases, sweep.acked_total, sweep.survived,
               sweep.unacked_replayed, zero_loss ? "true" : "false");
  std::fprintf(f,
               "  \"gate\": {\"ack_p99_baseline_ms\": %.4f, "
               "\"ack_p99_wal_ms\": %.4f, \"ack_overhead\": %.4f, "
               "\"max_ack_overhead\": %.2f, \"ack_overhead_ok\": %s, "
               "\"zero_loss\": %s, \"recovery_bitwise\": %s, "
               "\"pass\": %s}\n",
               baseline_p99, wal_p99, ack_overhead, cfg.max_ack_overhead,
               ack_overhead_ok ? "true" : "false",
               zero_loss ? "true" : "false",
               recovery_bitwise ? "true" : "false",
               pass ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("\nwrote %s (ack p99 %.3fms -> %.3fms = %.2fx <= %.2fx: %s; "
              "sweep %s; recovery %s) -> %s\n",
              out_path.c_str(), baseline_p99, wal_p99, ack_overhead,
              cfg.max_ack_overhead, ack_overhead_ok ? "ok" : "OVER",
              zero_loss ? "zero-loss" : "LOSS",
              recovery_bitwise ? "bitwise" : "NOT BITWISE",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
