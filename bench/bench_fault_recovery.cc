// Fault-injection + crash-recovery benchmark (JSON + exit-code gated):
//
// 1. Recovery cost: push the engine through several update epochs,
//    snapshot each one, then "crash" and measure the full restart path
//    — directory scan + checksum validation + dataset/tree rebuild +
//    Open(FromSnapshotDir) — and prove the restored engine answers probe
//    queries bit-identically (ids, scores, simulated reads). A torn
//    last snapshot (injected) must be rejected by checksum with
//    recovery falling back to the previous valid epoch.
//
// 2. Availability under faults: replay one seeded trace through the
//    serving stack at increasing injected read-fault rates, retries on,
//    and report availability (served/offered), retry volume and
//    terminal kUnavailable degradation per rate.
//
// Emits BENCH_PR7.json (schema bench/BENCH_PR7.schema.json); exits
// non-zero unless recovery is bitwise-faithful, the torn snapshot is
// rejected, and availability at the gated fault rate clears
// --min_availability. Rates are per checked page read, so the gate is
// machine-portable: availability depends only on the fault schedule and
// the retry budget, never on wall-clock speed.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "gir/batch_engine.h"
#include "index/rtree_codec.h"
#include "serve/replay.h"
#include "storage/fault_injector.h"
#include "storage/snapshot_store.h"

using namespace gir;
using namespace gir::bench;
using gir::serve::ReplayOptions;
using gir::serve::ReplayTrace;
using gir::serve::ServiceReport;
using gir::serve::Trace;
using gir::serve::TrafficConfig;

namespace {

struct BenchConfig {
  Params params;
  int64_t dim = 3;
  int64_t events = 300;
  int64_t epochs = 4;       // update batches (= snapshots) before the crash
  int64_t probes = 16;      // bitwise-equality probe queries
  double gate_rate = 0.005;  // fault rate the availability gate applies to
  double min_availability = 0.99;
};

UpdateBatch MakeUpdateBatch(const Dataset& data, Rng& rng, size_t count) {
  UpdateBatch batch;
  const size_t dim = data.dim();
  for (size_t i = 0; i < count; ++i) {
    Vec v(dim);
    for (size_t j = 0; j < dim; ++j) v[j] = rng.Uniform();
    batch.inserts.push_back(std::move(v));
  }
  // Delete distinct live records (ids below the pre-batch size).
  while (batch.deletes.size() < count) {
    const RecordId id = static_cast<RecordId>(rng.UniformInt(data.size()));
    if (!data.IsLive(id)) continue;
    bool dup = false;
    for (RecordId d : batch.deletes) dup |= d == id;
    if (!dup) batch.deletes.push_back(id);
  }
  return batch;
}

struct RecoveryResult {
  uint64_t snapshot_bytes = 0;
  double write_ms = 0.0;    // last intact snapshot publish
  double recover_ms = 0.0;  // scan + validate + rebuild dataset/tree
  double restore_ms = 0.0;  // Open(FromSnapshotDir): scan + refreeze
  uint64_t recovered_version = 0;
  size_t scanned = 0;
  size_t rejected = 0;
  bool recovered_bitwise = false;
  bool torn_rejected = false;
  bool torn_fallback_ok = false;
};

RecoveryResult MeasureRecovery(const BenchConfig& cfg,
                               const std::string& dir) {
  RecoveryResult out;
  Dataset data = MakeNamedDataset("IND", cfg.params.n, cfg.dim,
                                  cfg.params.seed);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", cfg.dim)));
  std::filesystem::remove_all(dir);
  SnapshotStore store(dir);

  Rng rng(static_cast<uint64_t>(cfg.params.seed) * 31 + 7);
  for (int64_t e = 0; e < cfg.epochs; ++e) {
    UpdateBatch batch = MakeUpdateBatch(engine->dataset(), rng, 64);
    Result<UpdateStats> up = engine->ApplyUpdates(batch);
    if (!up.ok()) {
      std::fprintf(stderr, "update: %s\n", up.status().ToString().c_str());
      std::exit(1);
    }
    Stopwatch sw;
    auto wrote = store.WriteSnapshot(engine->dataset(), engine->tree(),
                                     up->version);
    if (!wrote.ok()) {
      std::fprintf(stderr, "snapshot: %s\n",
                   wrote.status().ToString().c_str());
      std::exit(1);
    }
    out.write_ms = sw.ElapsedMillis();
    out.snapshot_bytes = wrote->bytes;
  }

  // "Crash": recover from disk into a brand-new engine.
  DiskManager disk2;
  Stopwatch recover_sw;
  auto rec = store.RecoverLatest(&disk2);
  out.recover_ms = recover_sw.ElapsedMillis();
  if (!rec.ok()) {
    std::fprintf(stderr, "recover: %s\n", rec.status().ToString().c_str());
    std::exit(1);
  }
  out.recovered_version = rec->version;
  out.scanned = rec->scanned;
  out.rejected = rec->rejected;
  // Restore = the one-call path a restarting process actually runs:
  // Open scans, validates and refreezes in one step (so this figure
  // includes its own recovery scan, not just the refreeze).
  DiskManager disk3;
  Stopwatch restore_sw;
  auto restored = OpenEngineOrDie(EngineConfig::FromSnapshotDir(
      dir, &disk3, MakeScoring("Linear", cfg.dim)));
  out.restore_ms = restore_sw.ElapsedMillis();

  // Bitwise probes: ids, scores and charged simulated reads must all
  // match the surviving pre-crash engine.
  out.recovered_bitwise =
      restored->dataset_version() == engine->dataset_version();
  Rng probe_rng(99);
  for (int64_t q = 0; q < cfg.probes; ++q) {
    Vec w = RandomQuery(probe_rng, static_cast<size_t>(cfg.dim));
    auto a = engine->ComputeGir(w, cfg.params.k, Phase2Method::kFP);
    auto b = restored->ComputeGir(w, cfg.params.k, Phase2Method::kFP);
    if (!a.ok() || !b.ok() || a->topk.result != b->topk.result ||
        a->topk.scores != b->topk.scores ||
        a->topk.io.reads != b->topk.io.reads) {
      out.recovered_bitwise = false;
      break;
    }
  }

  // Torn-tail drill: publish a newer snapshot whose data blocks never
  // fully hit the platter; recovery must reject it by checksum and keep
  // serving the previous epoch.
  FaultPlan torn_plan;
  torn_plan.seed = 1234;
  torn_plan.torn_write_rate = 1.0;
  FaultInjector torn(torn_plan);
  SnapshotStore faulty(dir, &torn);
  auto wrote = faulty.WriteSnapshot(engine->dataset(), engine->tree(),
                                    engine->dataset_version() + 1);
  if (wrote.ok() && wrote->injected == FaultInjector::WriteFault::kTorn) {
    auto rec2 = store.RecoverLatest(&disk2);
    out.torn_rejected = rec2.ok() && rec2->rejected >= 1;
    out.torn_fallback_ok =
        rec2.ok() && rec2->version == engine->dataset_version();
  }
  std::filesystem::remove_all(dir);
  return out;
}

struct AvailabilityPoint {
  double fault_rate = 0.0;
  bool gated = false;
  serve::ServiceMetrics m;
  uint64_t injected_read_faults = 0;
};

AvailabilityPoint MeasureAvailability(const BenchConfig& cfg, double rate,
                                      bool gated) {
  TrafficConfig t;
  t.seed = static_cast<uint64_t>(cfg.params.seed) * 977 + 5;
  t.dim = static_cast<size_t>(cfg.dim);
  t.k = static_cast<size_t>(cfg.params.k);
  t.events = static_cast<size_t>(cfg.events);
  t.base_qps = 3000.0;
  t.key_pool = 8;
  t.zipf_s = 1.1;
  t.jitter_prob = 0.3;
  t.initial_records = static_cast<size_t>(cfg.params.n);
  Result<Trace> trace = serve::GenerateTrace(t);
  if (!trace.ok()) {
    std::fprintf(stderr, "trace: %s\n", trace.status().ToString().c_str());
    std::exit(1);
  }

  Dataset data = MakeNamedDataset("IND", cfg.params.n, cfg.dim,
                                  cfg.params.seed);
  DiskManager disk;
  GirEngineOptions eopts;
  eopts.materialize_polytope = false;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", cfg.dim), eopts));
  BatchOptions bopts;
  bopts.threads = 1;
  bopts.cache_capacity = 0;  // every query exercises the storage path
  bopts.exec.shared_traversal = true;
  bopts.exec.max_retries = 3;
  bopts.exec.retry_backoff_ms = 0.01;
  BatchEngine batch(engine.get(), bopts);

  FaultPlan plan;
  plan.seed = 4242;
  plan.read_error_rate = rate;
  FaultInjector injector(plan);
  if (rate > 0.0) disk.AttachFaultInjector(&injector);

  // Shed-free replay: availability here isolates storage-fault
  // degradation, not load shedding (that is bench_service_sla's axis).
  ReplayOptions ro;
  ro.admission.max_batch = 32;
  ro.admission.max_wait_ms = 2.0;
  ro.admission.deadline_ms = 1e12;
  ro.admission.queue_capacity = 1 << 20;
  ro.admission.max_width = 32;
  ro.shed_on_dispatch = false;
  Result<ServiceReport> report = ReplayTrace(*trace, &batch, ro);
  disk.AttachFaultInjector(nullptr);
  if (!report.ok()) {
    std::fprintf(stderr, "replay: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }

  AvailabilityPoint p;
  p.fault_rate = rate;
  p.gated = gated;
  p.m = report->metrics;
  p.injected_read_faults = injector.read_faults();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  cfg.params.n = 20000;
  FlagSet flags;
  cfg.params.Register(&flags);
  std::string out_path = "BENCH_PR7.json";
  std::string snapshot_dir =
      (std::filesystem::temp_directory_path() / "gir_bench_snapshots")
          .string();
  flags.AddInt("d", &cfg.dim, "dimensionality");
  flags.AddInt("events", &cfg.events, "trace events per availability point");
  flags.AddInt("epochs", &cfg.epochs, "update epochs snapshotted pre-crash");
  flags.AddInt("probes", &cfg.probes, "bitwise probe queries post-recovery");
  flags.AddDouble("gate_rate", &cfg.gate_rate,
                  "read-fault rate the availability gate applies to");
  flags.AddDouble("min_availability", &cfg.min_availability,
                  "required served/offered fraction at the gated rate");
  flags.AddString("snapshot_dir", &snapshot_dir,
                  "scratch directory for snapshot files");
  flags.AddString("out", &out_path, "output JSON path");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) return s.code() == StatusCode::kNotFound ? 0 : 1;
  cfg.params.ApplyFullDefaults();

  std::printf("Fault/recovery bench (n=%lld, d=%lld, k=%lld, epochs=%lld, "
              "events=%lld)\n",
              static_cast<long long>(cfg.params.n),
              static_cast<long long>(cfg.dim),
              static_cast<long long>(cfg.params.k),
              static_cast<long long>(cfg.epochs),
              static_cast<long long>(cfg.events));

  // ----- crash-recovery cost + fidelity -----
  RecoveryResult rec = MeasureRecovery(cfg, snapshot_dir);
  PrintTitle("crash recovery");
  PrintHeader("phase", {"ms"});
  PrintRow("write", {rec.write_ms});
  PrintRow("recover", {rec.recover_ms});
  PrintRow("restore", {rec.restore_ms});
  std::printf("snapshot %.1f KiB, recovered epoch %llu (scanned %zu, "
              "rejected %zu), bitwise %s, torn tail %s\n",
              static_cast<double>(rec.snapshot_bytes) / 1024.0,
              static_cast<unsigned long long>(rec.recovered_version),
              rec.scanned, rec.rejected,
              rec.recovered_bitwise ? "yes" : "NO",
              rec.torn_rejected && rec.torn_fallback_ok ? "rejected"
                                                        : "NOT REJECTED");

  // ----- availability vs injected fault rate -----
  const std::vector<double> rates = {0.0, 0.002, cfg.gate_rate, 0.01};
  PrintTitle("availability vs read-fault rate (retries on)");
  PrintHeader("rate", {"offered", "served", "failed", "retries",
                       "salvaged", "availability"});
  std::vector<AvailabilityPoint> points;
  const AvailabilityPoint* gate_point = nullptr;
  for (double rate : rates) {
    const bool gated = rate == cfg.gate_rate;
    AvailabilityPoint p = MeasureAvailability(cfg, rate, gated);
    PrintRow(std::to_string(rate),
             {static_cast<double>(p.m.requests),
              static_cast<double>(p.m.served),
              static_cast<double>(p.m.failed),
              static_cast<double>(p.m.fault_retries),
              static_cast<double>(p.m.retry_successes),
              p.m.Availability()});
    points.push_back(p);
    if (gated) gate_point = &points.back();
  }
  if (gate_point == nullptr) {
    std::fprintf(stderr, "no rate matches gate_rate %.4f\n", cfg.gate_rate);
    return 1;
  }

  // ----- gate -----
  const double availability_at_gate = gate_point->m.Availability();
  const bool availability_ok =
      availability_at_gate >= cfg.min_availability;
  const bool fault_free_clean = points[0].m.failed == 0;
  const bool pass = rec.recovered_bitwise && rec.torn_rejected &&
                    rec.torn_fallback_ok && availability_ok &&
                    fault_free_clean;

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_fault_recovery\",\n");
  std::fprintf(f,
               "  \"params\": {\"n\": %lld, \"d\": %lld, \"k\": %lld, "
               "\"events\": %lld, \"epochs\": %lld, \"probes\": %lld, "
               "\"seed\": %lld, \"method\": \"FP\"},\n",
               static_cast<long long>(cfg.params.n),
               static_cast<long long>(cfg.dim),
               static_cast<long long>(cfg.params.k),
               static_cast<long long>(cfg.events),
               static_cast<long long>(cfg.epochs),
               static_cast<long long>(cfg.probes),
               static_cast<long long>(cfg.params.seed));
  std::fprintf(f,
               "  \"recovery\": {\"snapshot_bytes\": %llu, "
               "\"write_ms\": %.4f, \"recover_ms\": %.4f, "
               "\"restore_ms\": %.4f, \"recovered_version\": %llu, "
               "\"scanned\": %zu, \"rejected\": %zu, "
               "\"recovered_bitwise\": %s, \"torn_rejected\": %s, "
               "\"torn_fallback_ok\": %s},\n",
               static_cast<unsigned long long>(rec.snapshot_bytes),
               rec.write_ms, rec.recover_ms, rec.restore_ms,
               static_cast<unsigned long long>(rec.recovered_version),
               rec.scanned, rec.rejected,
               rec.recovered_bitwise ? "true" : "false",
               rec.torn_rejected ? "true" : "false",
               rec.torn_fallback_ok ? "true" : "false");
  std::fprintf(f, "  \"availability\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const AvailabilityPoint& p = points[i];
    std::fprintf(
        f,
        "    {\"fault_rate\": %.4f, \"gated\": %s, \"requests\": %zu, "
        "\"served\": %zu, \"failed\": %zu, \"unavailable\": %zu, "
        "\"fault_retries\": %llu, \"retry_successes\": %llu, "
        "\"injected_read_faults\": %llu, \"availability\": %.6f}%s\n",
        p.fault_rate, p.gated ? "true" : "false", p.m.requests, p.m.served,
        p.m.failed, p.m.unavailable,
        static_cast<unsigned long long>(p.m.fault_retries),
        static_cast<unsigned long long>(p.m.retry_successes),
        static_cast<unsigned long long>(p.injected_read_faults),
        p.m.Availability(), i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"gate\": {\"gate_rate\": %.4f, "
               "\"availability_at_gate\": %.6f, "
               "\"min_availability\": %.4f, \"fault_free_clean\": %s, "
               "\"recovered_bitwise\": %s, \"torn_fallback_ok\": %s, "
               "\"pass\": %s}\n",
               cfg.gate_rate, availability_at_gate, cfg.min_availability,
               fault_free_clean ? "true" : "false",
               rec.recovered_bitwise ? "true" : "false",
               rec.torn_fallback_ok ? "true" : "false",
               pass ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("\nwrote %s (recovery %.2fms + restore %.2fms, bitwise %s; "
              "availability at %.3f faults/read: %.4f %s %.2f: %s)\n",
              out_path.c_str(), rec.recover_ms, rec.restore_ms,
              rec.recovered_bitwise ? "yes" : "NO", cfg.gate_rate,
              availability_at_gate, availability_ok ? ">=" : "<",
              cfg.min_availability, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
