// Figure 16: effect of dataset cardinality n (IND, d = 4, k = 20) on
// SP / CP / FP — CPU time and simulated I/O time.
// Paper setting: n in {0.5M, 1M, 5M, 10M, 20M}.
#include "bench_util.h"

using namespace gir;
using namespace gir::bench;

int main(int argc, char** argv) {
  Params params;
  FlagSet flags;
  params.Register(&flags);
  int64_t dim = 4;
  flags.AddInt("d", &dim, "dimensionality");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) return s.code() == StatusCode::kNotFound ? 0 : 1;
  params.ApplyFullDefaults();

  std::vector<int64_t> ns = {25000, 50000, 100000, 200000, 400000};
  if (params.full) ns = {500000, 1000000, 5000000, 10000000, 20000000};

  std::printf("Figure 16: effect of cardinality (IND, d=%lld, k=%lld, "
              "%lld queries)\n",
              static_cast<long long>(dim), static_cast<long long>(params.k),
              static_cast<long long>(params.queries));

  std::vector<std::vector<double>> cpu, io;
  for (int64_t n : ns) {
    Dataset data = MakeNamedDataset("IND", n, dim, params.seed);
    DiskManager disk;
    auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", dim)));
    std::vector<double> cpu_row, io_row;
    for (Phase2Method m :
         {Phase2Method::kCP, Phase2Method::kSP, Phase2Method::kFP}) {
      Rng rng(params.seed * 3 + n);
      MethodCost c = MeasureGir(*engine, m, params.k,
                                static_cast<int>(params.queries), rng);
      cpu_row.push_back(c.ok ? c.cpu_ms : -1.0);
      io_row.push_back(c.ok ? c.io_ms : -1.0);
    }
    cpu.push_back(cpu_row);
    io.push_back(io_row);
  }
  PrintTitle("Figure 16(a): CPU time (ms) vs n");
  PrintHeader("n", {"CP", "SP", "FP"});
  for (size_t i = 0; i < ns.size(); ++i) PrintRow(ns[i], cpu[i]);
  PrintTitle("Figure 16(b): I/O time (ms) vs n");
  PrintHeader("n", {"CP", "SP", "FP"});
  for (size_t i = 0; i < ns.size(); ++i) PrintRow(ns[i], io[i]);
  std::printf("\nExpected shape: all methods grow with n; FP scales far "
              "better (orders of magnitude less I/O than SP/CP).\n");
  return 0;
}
