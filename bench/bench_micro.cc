// Micro-benchmarks (google-benchmark): throughput of the geometric and
// index substrates, the ablations DESIGN.md calls out (FP
// max-coordinate seeding on/off, STR vs R* construction), and the
// scalar-vs-flat kernel pairs that track the SoA layout's speedup.
//
// Dataset seeds derive from --seed (default 2014) so perf runs are
// reproducible across machines; the flag is stripped before
// google-benchmark sees the command line.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>

#include "common/rng.h"
#include "common/simd.h"
#include "dataset/generators.h"
#include "geom/convex_hull.h"
#include "geom/halfspace_intersection.h"
#include "geom/lp.h"
#include "gir/engine.h"
#include "gir/fpnd.h"
#include "index/flat_rtree.h"
#include "index/rtree.h"
#include "skyline/dominance.h"
#include "skyline/skyline.h"
#include "topk/brs.h"
#include "topk/tree_kernels.h"

namespace {

using namespace gir;

uint64_t g_seed = 2014;

std::vector<Vec> RandomCloud(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Vec p(d);
    for (size_t j = 0; j < d; ++j) p[j] = rng.Uniform();
    pts.push_back(std::move(p));
  }
  return pts;
}

void BM_ConvexHull(benchmark::State& state) {
  const size_t d = state.range(0);
  const size_t n = state.range(1);
  std::vector<Vec> pts = RandomCloud(n, d, g_seed + 7);
  for (auto _ : state) {
    Result<ConvexHull> hull = ConvexHull::Build(pts);
    benchmark::DoNotOptimize(hull.ok());
  }
}
BENCHMARK(BM_ConvexHull)
    ->Args({2, 2000})
    ->Args({3, 2000})
    ->Args({4, 2000})
    ->Args({5, 1000})
    ->Unit(benchmark::kMillisecond);

void BM_HalfspaceIntersection(benchmark::State& state) {
  const size_t d = state.range(0);
  const size_t m = state.range(1);
  Rng rng(g_seed + 11);
  Vec q(d, 0.5);
  std::vector<Halfspace> ge;
  for (size_t i = 0; i < m; ++i) {
    Vec n(d);
    for (size_t j = 0; j < d; ++j) n[j] = rng.Uniform(-1.0, 1.0);
    if (Dot(n, q) < 0) {
      for (double& x : n) x = -x;
    }
    ge.push_back(Halfspace{std::move(n), 0.0});
  }
  for (auto _ : state) {
    Result<IntersectionResult> r = IntersectHalfspaces(ge, q);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_HalfspaceIntersection)
    ->Args({3, 64})
    ->Args({4, 256})
    ->Args({5, 1024})
    ->Unit(benchmark::kMillisecond);

void BM_ChebyshevLp(benchmark::State& state) {
  const size_t d = state.range(0);
  Rng rng(g_seed + 13);
  std::vector<Halfspace> ge;
  for (int i = 0; i < 200; ++i) {
    Vec n(d);
    for (size_t j = 0; j < d; ++j) n[j] = rng.Uniform(-0.3, 1.0);
    ge.push_back(Halfspace{std::move(n), 0.0});
  }
  for (auto _ : state) {
    Result<ChebyshevResult> c = ChebyshevCenter(ge);
    benchmark::DoNotOptimize(c.ok());
  }
}
BENCHMARK(BM_ChebyshevLp)->Arg(3)->Arg(5)->Arg(8)->Unit(
    benchmark::kMillisecond);

// Shared constraint system, many objectives: per-call SolveLp vs
// SolveLpBatch (one Prepare, warm phase-2 re-solves). Arg is the batch
// size; the paired timings are the invalidation LP phase ablation.
void BM_LpBatchVsPerCall(benchmark::State& state) {
  const size_t d = 4;
  const size_t count = state.range(0);
  const bool batch = state.range(1) != 0;
  Rng rng(g_seed + 19);
  LpProblem lp;
  for (int i = 0; i < 40; ++i) {
    Vec n(d);
    for (size_t j = 0; j < d; ++j) n[j] = rng.Uniform(-1.0, 0.3);
    lp.a.push_back(std::move(n));
    lp.b.push_back(0.0);
  }
  for (size_t j = 0; j < d; ++j) {
    Vec up(d, 0.0);
    up[j] = 1.0;
    lp.a.push_back(up);
    lp.b.push_back(1.0);
    Vec down(d, 0.0);
    down[j] = -1.0;
    lp.a.push_back(std::move(down));
    lp.b.push_back(0.0);
  }
  const size_t m = lp.a.size();
  std::vector<double> a(m * d);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < d; ++j) a[i * d + j] = lp.a[i][j];
  }
  std::vector<double> objectives(count * d);
  for (double& x : objectives) x = rng.Uniform(-1.0, 1.0);
  std::vector<LpBatchItem> items(count);
  LpWorkspace ws;
  for (auto _ : state) {
    if (batch) {
      SolveLpBatch(a.data(), lp.b.data(), m, d, objectives.data(), count,
                   &ws, items.data());
      benchmark::DoNotOptimize(items[count - 1].objective);
    } else {
      double sink = 0.0;
      for (size_t t = 0; t < count; ++t) {
        lp.c.assign(objectives.begin() + t * d,
                    objectives.begin() + (t + 1) * d);
        sink += SolveLp(lp).objective;
      }
      benchmark::DoNotOptimize(sink);
    }
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_LpBatchVsPerCall)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Unit(benchmark::kMillisecond);

// Dual-simplex AddConstraint re-solve vs a cold solve of the grown
// system (the one-constraint-changed warm-start entry point).
void BM_LpAddConstraintResolve(benchmark::State& state) {
  const size_t d = state.range(0);
  const bool warm = state.range(1) != 0;
  Rng rng(g_seed + 23);
  LpProblem lp;
  for (size_t j = 0; j < d; ++j) {
    Vec up(d, 0.0);
    up[j] = 1.0;
    lp.a.push_back(up);
    lp.b.push_back(1.0);
    Vec down(d, 0.0);
    down[j] = -1.0;
    lp.a.push_back(std::move(down));
    lp.b.push_back(0.0);
  }
  lp.c.assign(d, 1.0);
  Vec cut(d);
  for (size_t j = 0; j < d; ++j) cut[j] = rng.Uniform(0.2, 1.0);
  const double bound = 0.6 * Dot(cut, Vec(d, 1.0));
  LpWorkspace ws;
  for (auto _ : state) {
    if (warm) {
      LpSolution base = SolveLpWith(&ws, lp);
      benchmark::DoNotOptimize(base.objective);
      ws.AddConstraint(cut.data(), bound);
      benchmark::DoNotOptimize(ws.objective());
    } else {
      LpProblem grown = lp;
      grown.a.push_back(cut);
      grown.b.push_back(bound);
      LpSolution base = SolveLp(lp);
      benchmark::DoNotOptimize(base.objective);
      benchmark::DoNotOptimize(SolveLp(grown).objective);
    }
  }
}
BENCHMARK(BM_LpAddConstraintResolve)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Unit(benchmark::kMicrosecond);

void BM_RtreeBulkLoad(benchmark::State& state) {
  Rng rng(g_seed + 17);
  Dataset data = GenerateIndependent(state.range(0), 4, rng);
  for (auto _ : state) {
    DiskManager disk;
    RTree tree = RTree::BulkLoad(&data, &disk);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_RtreeBulkLoad)->Arg(50000)->Arg(200000)->Unit(
    benchmark::kMillisecond);

void BM_RtreeInsertBuild(benchmark::State& state) {
  Rng rng(g_seed + 19);
  Dataset data = GenerateIndependent(state.range(0), 4, rng);
  for (auto _ : state) {
    DiskManager disk;
    RTree tree(&data, &disk);
    for (size_t i = 0; i < data.size(); ++i) {
      tree.Insert(static_cast<RecordId>(i));
    }
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_RtreeInsertBuild)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_BrsTopK(benchmark::State& state) {
  Rng rng(g_seed + 23);
  Dataset data = GenerateIndependent(200000, 4, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  LinearScoring scoring(4);
  size_t i = 0;
  for (auto _ : state) {
    Rng qrng(g_seed * 1000 + i++);
    Vec w(4);
    for (int j = 0; j < 4; ++j) w[j] = qrng.Uniform(0.05, 1.0);
    Result<TopKResult> r = RunBrs(tree, scoring, w, state.range(0));
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_BrsTopK)->Arg(10)->Arg(100)->Unit(benchmark::kMicrosecond);

void BM_IncidentStarInsert(benchmark::State& state) {
  const size_t d = state.range(0);
  std::vector<Vec> pts = RandomCloud(4000, d, g_seed + 29);
  Vec apex(d, 0.98);  // near the top corner, like a real p_k
  for (auto _ : state) {
    IncidentStar star(apex);
    for (size_t i = 0; i < pts.size(); ++i) {
      Result<bool> r = star.Insert(pts[i], static_cast<int>(i));
      benchmark::DoNotOptimize(r.ok());
    }
    benchmark::DoNotOptimize(star.live_facet_count());
  }
}
BENCHMARK(BM_IncidentStarInsert)->Arg(3)->Arg(4)->Arg(5)->Unit(
    benchmark::kMillisecond);

// --- Ablation: FP with and without max-coordinate seeding (§6.3.1) ---
void BM_FpSeedingAblation(benchmark::State& state) {
  const bool seeding = state.range(0) != 0;
  Rng rng(g_seed + 31);
  Dataset data = GenerateAnticorrelated(50000, 4, rng);
  DiskManager disk;
  GirEngineOptions opt;
  opt.fp.max_coordinate_seeding = seeding;
  opt.materialize_polytope = false;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 4), opt));
  size_t i = 0;
  for (auto _ : state) {
    Rng qrng(g_seed * 1000 + 100 + i++);
    Vec w(4);
    for (int j = 0; j < 4; ++j) w[j] = qrng.Uniform(0.05, 1.0);
    Result<GirComputation> gir = engine->ComputeGir(w, 20, Phase2Method::kFP);
    benchmark::DoNotOptimize(gir.ok());
  }
}
BENCHMARK(BM_FpSeedingAblation)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

// --- Ablation: query I/O on STR-bulk-loaded vs insert-built trees ---
void BM_TopKIoByBuildMethod(benchmark::State& state) {
  const bool bulk = state.range(0) != 0;
  Rng rng(g_seed + 37);
  Dataset data = GenerateIndependent(50000, 4, rng);
  DiskManager disk;
  RTree tree = bulk ? RTree::BulkLoad(&data, &disk) : RTree(&data, &disk);
  if (!bulk) {
    for (size_t i = 0; i < data.size(); ++i) {
      tree.Insert(static_cast<RecordId>(i));
    }
  }
  LinearScoring scoring(4);
  size_t i = 0;
  uint64_t reads = 0;
  uint64_t runs = 0;
  for (auto _ : state) {
    Rng qrng(g_seed * 1000 + i++);
    Vec w(4);
    for (int j = 0; j < 4; ++j) w[j] = qrng.Uniform(0.05, 1.0);
    Result<TopKResult> r = RunBrs(tree, scoring, w, 20);
    if (r.ok()) {
      reads += r->io.reads;
      ++runs;
    }
  }
  if (runs) {
    state.counters["reads/query"] =
        static_cast<double>(reads) / static_cast<double>(runs);
  }
}
BENCHMARK(BM_TopKIoByBuildMethod)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMicrosecond);

// --- Scalar vs flat kernel pairs (the PR-2 layout speedup trackers) ---

// Per-entry scoring over every node of the index: Arg(0)=0 is the
// pre-flat scalar path (virtual MaxScore/Score per entry), Arg(0)=1 the
// SoA plane kernel on the frozen tree. reports ns/entry.
void BM_NodeEntryScores(benchmark::State& state) {
  const bool use_flat = state.range(0) != 0;
  const size_t d = state.range(1);
  Rng rng(g_seed + 41);
  Dataset data = GenerateIndependent(100000, d, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  FlatRTree flat = FlatRTree::Freeze(tree);
  LinearScoring scoring(d);
  Rng qrng(g_seed + 43);
  Vec w(d);
  for (size_t j = 0; j < d; ++j) w[j] = qrng.Uniform(0.05, 1.0);
  size_t entries = 0;
  for (size_t p = 0; p < tree.node_count(); ++p) {
    entries += tree.PeekNode(static_cast<PageId>(p)).entries.size();
  }
  ScoreBuffer buf;
  for (auto _ : state) {
    double sink = 0.0;
    for (size_t p = 0; p < tree.node_count(); ++p) {
      if (use_flat) {
        ComputeEntryScores(scoring, data,
                           flat.PeekNode(static_cast<PageId>(p)), w, &buf);
      } else {
        ComputeEntryScores(scoring, data,
                           tree.PeekNode(static_cast<PageId>(p)), w, &buf);
      }
      sink += buf.scores[0];
    }
    benchmark::DoNotOptimize(sink);
  }
  state.counters["ns/entry"] = benchmark::Counter(
      static_cast<double>(entries) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_NodeEntryScores)
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({0, 6})
    ->Args({1, 6})
    ->Unit(benchmark::kMillisecond);

// The SoA kernel under each forced dispatch tier (Arg(0): 0=scalar,
// 1=sse2, 2=avx2; clamped to what the CPU supports). Isolates what the
// runtime dispatch layer buys in *this* build, no ISA flags needed.
void BM_NodeEntryScoresTier(benchmark::State& state) {
  const simd::Tier saved = simd::ActiveTier();
  const simd::Tier tier =
      simd::ForceTier(static_cast<simd::Tier>(state.range(0)));
  const size_t d = state.range(1);
  Rng rng(g_seed + 41);
  Dataset data = GenerateIndependent(100000, d, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  FlatRTree flat = FlatRTree::Freeze(tree);
  LinearScoring scoring(d);
  Rng qrng(g_seed + 43);
  Vec w(d);
  for (size_t j = 0; j < d; ++j) w[j] = qrng.Uniform(0.05, 1.0);
  size_t entries = 0;
  for (size_t p = 0; p < flat.node_count(); ++p) {
    entries += flat.PeekNode(static_cast<PageId>(p)).count();
  }
  ScoreBuffer buf;
  for (auto _ : state) {
    double sink = 0.0;
    for (size_t p = 0; p < flat.node_count(); ++p) {
      ComputeEntryScores(scoring, data, flat.PeekNode(static_cast<PageId>(p)),
                         w, &buf);
      sink += buf.scores[0];
    }
    benchmark::DoNotOptimize(sink);
  }
  state.counters["ns/entry"] = benchmark::Counter(
      static_cast<double>(entries) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.SetLabel(simd::TierName(tier));
  simd::ForceTier(saved);
}
BENCHMARK(BM_NodeEntryScoresTier)
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({2, 4})
    ->Unit(benchmark::kMillisecond);

// Incremental skyline (the k-dominance hot loop): Arg(0)=0 replays the
// pre-packing SkylineSet (dataset-row chasing), Arg(0)=1 the packed
// member block. The dataset is large enough that member rows scatter
// across several MB — the locality gap the packing closes.
void BM_SkylineDominance(benchmark::State& state) {
  const bool packed = state.range(0) != 0;
  Rng rng(g_seed + 47);
  Dataset data = GenerateAnticorrelated(60000, 4, rng);
  for (auto _ : state) {
    size_t skyline = 0;
    if (packed) {
      SkylineSet sky(&data);
      for (size_t i = 0; i < data.size(); ++i) {
        sky.Insert(static_cast<RecordId>(i));
      }
      skyline = sky.size();
    } else {
      std::vector<RecordId> members;
      for (size_t r = 0; r < data.size(); ++r) {
        const RecordId id = static_cast<RecordId>(r);
        VecView p = data.Get(id);
        bool dominated = false;
        for (RecordId m : members) {
          if (Dominates(data.Get(m), p)) {
            dominated = true;
            break;
          }
        }
        if (dominated) continue;
        size_t kept = 0;
        for (size_t i = 0; i < members.size(); ++i) {
          if (!Dominates(p, data.Get(members[i]))) {
            members[kept++] = members[i];
          }
        }
        members.resize(kept);
        members.push_back(id);
      }
      skyline = members.size();
    }
    benchmark::DoNotOptimize(skyline);
  }
}
BENCHMARK(BM_SkylineDominance)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Whole BRS query against the frozen tree (pairs with BM_BrsTopK above,
// which runs the mutable tree).
void BM_BrsTopKFlat(benchmark::State& state) {
  Rng rng(g_seed + 23);  // same dataset as BM_BrsTopK
  Dataset data = GenerateIndependent(200000, 4, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  FlatRTree flat = FlatRTree::Freeze(tree);
  LinearScoring scoring(4);
  size_t i = 0;
  for (auto _ : state) {
    Rng qrng(g_seed * 1000 + i++);
    Vec w(4);
    for (int j = 0; j < 4; ++j) w[j] = qrng.Uniform(0.05, 1.0);
    Result<TopKResult> r = RunBrs(flat, scoring, w, state.range(0));
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_BrsTopKFlat)->Arg(10)->Arg(100)->Unit(benchmark::kMicrosecond);

}  // namespace

// BENCHMARK_MAIN, plus a --seed flag (stripped before google-benchmark
// parses the rest) so dataset seeds are reproducible across machines.
int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--seed=", 0) == 0) {
      g_seed = std::stoull(a.substr(7));
      continue;
    }
    if (a == "--seed" && i + 1 < argc) {
      g_seed = std::stoull(argv[++i]);
      continue;
    }
    args.push_back(argv[i]);
  }
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
