// Micro-benchmarks (google-benchmark): throughput of the geometric and
// index substrates, plus the ablations DESIGN.md calls out
// (FP max-coordinate seeding on/off, STR vs R* construction).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "dataset/generators.h"
#include "geom/convex_hull.h"
#include "geom/halfspace_intersection.h"
#include "geom/lp.h"
#include "gir/engine.h"
#include "gir/fpnd.h"
#include "index/rtree.h"
#include "topk/brs.h"

namespace {

using namespace gir;

std::vector<Vec> RandomCloud(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Vec p(d);
    for (size_t j = 0; j < d; ++j) p[j] = rng.Uniform();
    pts.push_back(std::move(p));
  }
  return pts;
}

void BM_ConvexHull(benchmark::State& state) {
  const size_t d = state.range(0);
  const size_t n = state.range(1);
  std::vector<Vec> pts = RandomCloud(n, d, 7);
  for (auto _ : state) {
    Result<ConvexHull> hull = ConvexHull::Build(pts);
    benchmark::DoNotOptimize(hull.ok());
  }
}
BENCHMARK(BM_ConvexHull)
    ->Args({2, 2000})
    ->Args({3, 2000})
    ->Args({4, 2000})
    ->Args({5, 1000})
    ->Unit(benchmark::kMillisecond);

void BM_HalfspaceIntersection(benchmark::State& state) {
  const size_t d = state.range(0);
  const size_t m = state.range(1);
  Rng rng(11);
  Vec q(d, 0.5);
  std::vector<Halfspace> ge;
  for (size_t i = 0; i < m; ++i) {
    Vec n(d);
    for (size_t j = 0; j < d; ++j) n[j] = rng.Uniform(-1.0, 1.0);
    if (Dot(n, q) < 0) {
      for (double& x : n) x = -x;
    }
    ge.push_back(Halfspace{std::move(n), 0.0});
  }
  for (auto _ : state) {
    Result<IntersectionResult> r = IntersectHalfspaces(ge, q);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_HalfspaceIntersection)
    ->Args({3, 64})
    ->Args({4, 256})
    ->Args({5, 1024})
    ->Unit(benchmark::kMillisecond);

void BM_ChebyshevLp(benchmark::State& state) {
  const size_t d = state.range(0);
  Rng rng(13);
  std::vector<Halfspace> ge;
  for (int i = 0; i < 200; ++i) {
    Vec n(d);
    for (size_t j = 0; j < d; ++j) n[j] = rng.Uniform(-0.3, 1.0);
    ge.push_back(Halfspace{std::move(n), 0.0});
  }
  for (auto _ : state) {
    Result<ChebyshevResult> c = ChebyshevCenter(ge);
    benchmark::DoNotOptimize(c.ok());
  }
}
BENCHMARK(BM_ChebyshevLp)->Arg(3)->Arg(5)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_RtreeBulkLoad(benchmark::State& state) {
  Rng rng(17);
  Dataset data = GenerateIndependent(state.range(0), 4, rng);
  for (auto _ : state) {
    DiskManager disk;
    RTree tree = RTree::BulkLoad(&data, &disk);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_RtreeBulkLoad)->Arg(50000)->Arg(200000)->Unit(
    benchmark::kMillisecond);

void BM_RtreeInsertBuild(benchmark::State& state) {
  Rng rng(19);
  Dataset data = GenerateIndependent(state.range(0), 4, rng);
  for (auto _ : state) {
    DiskManager disk;
    RTree tree(&data, &disk);
    for (size_t i = 0; i < data.size(); ++i) {
      tree.Insert(static_cast<RecordId>(i));
    }
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_RtreeInsertBuild)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_BrsTopK(benchmark::State& state) {
  Rng rng(23);
  Dataset data = GenerateIndependent(200000, 4, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  LinearScoring scoring(4);
  size_t i = 0;
  for (auto _ : state) {
    Rng qrng(i++);
    Vec w(4);
    for (int j = 0; j < 4; ++j) w[j] = qrng.Uniform(0.05, 1.0);
    Result<TopKResult> r = RunBrs(tree, scoring, w, state.range(0));
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_BrsTopK)->Arg(10)->Arg(100)->Unit(benchmark::kMicrosecond);

void BM_IncidentStarInsert(benchmark::State& state) {
  const size_t d = state.range(0);
  std::vector<Vec> pts = RandomCloud(4000, d, 29);
  Vec apex(d, 0.98);  // near the top corner, like a real p_k
  for (auto _ : state) {
    IncidentStar star(apex);
    for (size_t i = 0; i < pts.size(); ++i) {
      Result<bool> r = star.Insert(pts[i], static_cast<int>(i));
      benchmark::DoNotOptimize(r.ok());
    }
    benchmark::DoNotOptimize(star.live_facet_count());
  }
}
BENCHMARK(BM_IncidentStarInsert)->Arg(3)->Arg(4)->Arg(5)->Unit(
    benchmark::kMillisecond);

// --- Ablation: FP with and without max-coordinate seeding (§6.3.1) ---
void BM_FpSeedingAblation(benchmark::State& state) {
  const bool seeding = state.range(0) != 0;
  Rng rng(31);
  Dataset data = GenerateAnticorrelated(50000, 4, rng);
  DiskManager disk;
  GirEngineOptions opt;
  opt.fp.max_coordinate_seeding = seeding;
  opt.materialize_polytope = false;
  GirEngine engine(&data, &disk, MakeScoring("Linear", 4), opt);
  size_t i = 0;
  for (auto _ : state) {
    Rng qrng(100 + i++);
    Vec w(4);
    for (int j = 0; j < 4; ++j) w[j] = qrng.Uniform(0.05, 1.0);
    Result<GirComputation> gir = engine.ComputeGir(w, 20, Phase2Method::kFP);
    benchmark::DoNotOptimize(gir.ok());
  }
}
BENCHMARK(BM_FpSeedingAblation)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

// --- Ablation: query I/O on STR-bulk-loaded vs insert-built trees ---
void BM_TopKIoByBuildMethod(benchmark::State& state) {
  const bool bulk = state.range(0) != 0;
  Rng rng(37);
  Dataset data = GenerateIndependent(50000, 4, rng);
  DiskManager disk;
  RTree tree = bulk ? RTree::BulkLoad(&data, &disk) : RTree(&data, &disk);
  if (!bulk) {
    for (size_t i = 0; i < data.size(); ++i) {
      tree.Insert(static_cast<RecordId>(i));
    }
  }
  LinearScoring scoring(4);
  size_t i = 0;
  uint64_t reads = 0;
  uint64_t runs = 0;
  for (auto _ : state) {
    Rng qrng(i++);
    Vec w(4);
    for (int j = 0; j < 4; ++j) w[j] = qrng.Uniform(0.05, 1.0);
    Result<TopKResult> r = RunBrs(tree, scoring, w, 20);
    if (r.ok()) {
      reads += r->io.reads;
      ++runs;
    }
  }
  if (runs) {
    state.counters["reads/query"] =
        static_cast<double>(reads) / static_cast<double>(runs);
  }
}
BENCHMARK(BM_TopKIoByBuildMethod)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
