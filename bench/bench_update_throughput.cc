// Mixed read/write workload driver for the dynamic update subsystem:
// interleaves ApplyUpdates batches (inserts + deletes, epoch-snapshot
// refreeze) with cached batch queries and reports sustained QPS,
// refreeze latency, and cache-survival rate. The same workload runs
// under two invalidation policies — the incremental point-vs-region LP
// test and the invalidate-all strawman — so the JSON shows, per the
// acceptance bar, that incremental invalidation recomputes strictly
// fewer GIRs.
//
//   ./bench_update_throughput [--n 40000] [--k 20] [--rounds 8]
//                             [--updates 32] [--pool 16] [--queries 48]
//                             [--seed S] [--out BENCH_PR3.json]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "gir/batch_engine.h"

using namespace gir;
using namespace gir::bench;

namespace {

struct RoundMetrics {
  double apply_ms = 0.0;
  double refreeze_ms = 0.0;
  double invalidate_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double hit_rate = 0.0;
  // Warm/cold split: a query served from the cache (exact hit) is warm;
  // a miss or partial hit pays a first-touch GIR recomputation and is
  // cold. One cold query among dozens of sub-microsecond warm ones used
  // to collapse the round's blended qps by ~30x — the split keeps the
  // serving-path number honest and prices the recompute separately.
  uint64_t warm_queries = 0;
  uint64_t cold_queries = 0;
  double warm_ms = 0.0;  // summed per-query latency, warm only
  double cold_ms = 0.0;
  double warm_qps = 0.0;  // warm_queries / warm_ms
  double warm_p99_ms = 0.0;
  double cold_p50_ms = 0.0;
  uint64_t entries_before = 0;
  uint64_t lp_tests = 0;
  uint64_t evicted = 0;
  uint64_t survived = 0;
};

struct ScenarioResult {
  std::vector<RoundMetrics> rounds;
  double sustained_qps = 0.0;     // queries / total query wall time
  // Sustained QPS of the warm serving path alone: first-touch
  // recomputations (cold queries) excluded from both numerator and
  // denominator, so a single evicted entry no longer skews the metric.
  double sustained_qps_warm = 0.0;
  uint64_t total_warm_queries = 0;
  uint64_t total_cold_queries = 0;
  double total_cold_ms = 0.0;     // what the recomputations cost overall
  double refreeze_p50_ms = 0.0;
  double refreeze_p99_ms = 0.0;
  double updates_per_second = 0.0;
  uint64_t total_entries_before = 0;
  uint64_t total_lp_tests = 0;
  uint64_t total_evicted = 0;
  uint64_t total_survived = 0;
  double survival_rate = 0.0;
  double mean_hit_rate = 0.0;
};

double PercentileOf(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

// One full mixed workload: warm the cache from a fixed query pool, then
// `rounds` times apply an update batch and serve a query burst. With
// `incremental` the update flows through BatchEngine::ApplyUpdates
// (LP invalidation, survivors keep serving); without it the cache is
// dropped wholesale after each update (every cached GIR becomes a
// recompute).
ScenarioResult RunScenario(bool incremental, int64_t n, int64_t d, int64_t k,
                           int64_t rounds, int64_t updates, int64_t pool_size,
                           int64_t queries, int64_t seed) {
  Rng data_rng(static_cast<uint64_t>(seed));
  Dataset data = GenerateIndependent(static_cast<size_t>(n),
                                     static_cast<size_t>(d), data_rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk,
                   MakeScoring("Linear", static_cast<size_t>(d))));
  BatchOptions opts;
  opts.cache_capacity = 256;
  BatchEngine batch(engine.get(), opts);

  Rng rng(static_cast<uint64_t>(seed) * 7 + 3);
  std::vector<Vec> pool;
  for (int64_t i = 0; i < pool_size; ++i) {
    pool.push_back(RandomQuery(rng, static_cast<size_t>(d)));
  }
  auto draw_burst = [&](Rng& r) {
    std::vector<Vec> ws;
    for (int64_t q = 0; q < queries; ++q) {
      ws.push_back(pool[r.UniformInt(pool.size())]);
    }
    return ws;
  };

  // Warm-up: every pool query computed and cached once.
  Result<BatchResult> warm =
      batch.ComputeBatch(pool, static_cast<size_t>(k), Phase2Method::kFP);
  if (!warm.ok()) {
    std::fprintf(stderr, "warm-up failed: %s\n",
                 warm.status().message().c_str());
    std::exit(1);
  }

  // The writer is the only mutator, so it tracks live ids itself.
  std::vector<RecordId> live;
  for (size_t i = 0; i < data.size(); ++i) {
    live.push_back(static_cast<RecordId>(i));
  }

  ScenarioResult out;
  double total_query_ms = 0.0;
  double total_update_ms = 0.0;
  uint64_t total_queries = 0;
  uint64_t total_updates_applied = 0;
  Rng burst_rng(static_cast<uint64_t>(seed) * 13 + 1);
  for (int64_t r = 0; r < rounds; ++r) {
    RoundMetrics m;
    UpdateBatch ub;
    for (int64_t i = 0; i < updates; ++i) {
      Vec p(static_cast<size_t>(d));
      for (double& x : p) x = rng.Uniform();
      ub.inserts.push_back(std::move(p));
    }
    for (int64_t i = 0; i < updates && !live.empty(); ++i) {
      size_t at = static_cast<size_t>(rng.UniformInt(live.size()));
      ub.deletes.push_back(live[at]);
      live[at] = live.back();
      live.pop_back();
    }

    if (!incremental) m.entries_before = batch.cache().size();
    Result<UpdateStats> applied = incremental
                                      ? batch.ApplyUpdates(ub)
                                      : engine->ApplyUpdates(ub, nullptr);
    if (!incremental) {
      // Invalidate-all strawman: every cached GIR is a recompute.
      m.evicted = m.entries_before;
      batch.mutable_cache()->Clear();
    }
    if (!applied.ok()) {
      std::fprintf(stderr, "update failed: %s\n",
                   applied.status().message().c_str());
      std::exit(1);
    }
    for (size_t i = data.size() - ub.inserts.size(); i < data.size(); ++i) {
      live.push_back(static_cast<RecordId>(i));
    }
    total_updates_applied += ub.inserts.size() + ub.deletes.size();
    m.apply_ms = applied->apply_ms;
    m.refreeze_ms = applied->refreeze_ms;
    m.invalidate_ms = applied->invalidate_ms;
    if (incremental) {
      m.entries_before = applied->cache_entries_before;
      m.lp_tests = applied->cache_lp_tests;
      m.evicted = applied->cache_stale_evicted +
                  applied->cache_delete_evicted +
                  applied->cache_insert_evicted;
      m.survived = applied->cache_survived;
    }
    total_update_ms += m.apply_ms + m.refreeze_ms + m.invalidate_ms;

    Result<BatchResult> br = batch.ComputeBatch(
        draw_burst(burst_rng), static_cast<size_t>(k), Phase2Method::kFP);
    if (!br.ok()) {
      std::fprintf(stderr, "query burst failed: %s\n",
                   br.status().message().c_str());
      std::exit(1);
    }
    m.qps = br->stats.QueriesPerSecond();
    m.p50_ms = br->stats.p50_ms;
    m.p99_ms = br->stats.p99_ms;
    m.hit_rate = br->stats.HitRate();
    // Warm/cold split from the per-item cache verdicts.
    std::vector<double> warm_lat;
    std::vector<double> cold_lat;
    for (const BatchItem& item : br->items) {
      if (!item.status.ok()) continue;
      if (item.cache == ShardedGirCache::HitKind::kExact) {
        ++m.warm_queries;
        m.warm_ms += item.latency_ms;
        warm_lat.push_back(item.latency_ms);
      } else {
        ++m.cold_queries;
        m.cold_ms += item.latency_ms;
        cold_lat.push_back(item.latency_ms);
      }
    }
    m.warm_qps = m.warm_ms <= 0.0
                     ? 0.0
                     : 1000.0 * static_cast<double>(m.warm_queries) /
                           m.warm_ms;
    m.warm_p99_ms = PercentileOf(warm_lat, 0.99);
    m.cold_p50_ms = PercentileOf(cold_lat, 0.50);
    total_query_ms += br->stats.wall_ms;
    total_queries += br->stats.queries;
    out.rounds.push_back(m);
  }

  std::vector<double> refreezes;
  double total_warm_ms = 0.0;
  for (const RoundMetrics& m : out.rounds) {
    refreezes.push_back(m.refreeze_ms);
    out.total_entries_before += m.entries_before;
    out.total_lp_tests += m.lp_tests;
    out.total_evicted += m.evicted;
    out.total_survived += m.survived;
    out.mean_hit_rate += m.hit_rate;
    out.total_warm_queries += m.warm_queries;
    out.total_cold_queries += m.cold_queries;
    total_warm_ms += m.warm_ms;
    out.total_cold_ms += m.cold_ms;
  }
  out.sustained_qps_warm =
      total_warm_ms <= 0.0
          ? 0.0
          : 1000.0 * static_cast<double>(out.total_warm_queries) /
                total_warm_ms;
  out.mean_hit_rate /= static_cast<double>(out.rounds.size());
  out.refreeze_p50_ms = PercentileOf(refreezes, 0.50);
  out.refreeze_p99_ms = PercentileOf(refreezes, 0.99);
  out.sustained_qps = total_query_ms <= 0.0
                          ? 0.0
                          : 1000.0 * static_cast<double>(total_queries) /
                                total_query_ms;
  out.updates_per_second =
      total_update_ms <= 0.0
          ? 0.0
          : 1000.0 * static_cast<double>(total_updates_applied) /
                total_update_ms;
  out.survival_rate =
      out.total_entries_before == 0
          ? 0.0
          : static_cast<double>(out.total_survived) /
                static_cast<double>(out.total_entries_before);
  return out;
}

void PrintScenario(const char* name, const ScenarioResult& s) {
  std::printf("\n### %s\n", name);
  std::printf("%-6s %9s %9s %9s %10s %10s %6s %6s %8s %6s %6s\n", "round",
              "apply_ms", "freeze_ms", "inval_ms", "warm_qps", "cold_p50",
              "warm", "cold", "hit", "evict", "keep");
  for (size_t i = 0; i < s.rounds.size(); ++i) {
    const RoundMetrics& m = s.rounds[i];
    std::printf(
        "%-6zu %9.3f %9.3f %9.3f %10.1f %10.4f %6llu %6llu %8.3f %6llu "
        "%6llu\n",
        i, m.apply_ms, m.refreeze_ms, m.invalidate_ms, m.warm_qps,
        m.cold_p50_ms, static_cast<unsigned long long>(m.warm_queries),
        static_cast<unsigned long long>(m.cold_queries), m.hit_rate,
        static_cast<unsigned long long>(m.evicted),
        static_cast<unsigned long long>(m.survived));
  }
  std::printf("sustained_qps=%.1f sustained_qps_warm=%.1f (%llu warm / %llu "
              "cold, cold cost %.3fms) refreeze_p50=%.3fms p99=%.3fms "
              "survival=%.3f evicted=%llu lp_tests=%llu\n",
              s.sustained_qps, s.sustained_qps_warm,
              static_cast<unsigned long long>(s.total_warm_queries),
              static_cast<unsigned long long>(s.total_cold_queries),
              s.total_cold_ms, s.refreeze_p50_ms, s.refreeze_p99_ms,
              s.survival_rate,
              static_cast<unsigned long long>(s.total_evicted),
              static_cast<unsigned long long>(s.total_lp_tests));
}

void JsonRound(FILE* f, const RoundMetrics& m, bool last) {
  std::fprintf(
      f,
      "      {\"apply_ms\": %.4f, \"refreeze_ms\": %.4f, "
      "\"invalidate_ms\": %.4f, \"qps\": %.2f, \"p50_ms\": %.4f, "
      "\"p99_ms\": %.4f, \"hit_rate\": %.4f, \"warm_queries\": %llu, "
      "\"cold_queries\": %llu, \"warm_qps\": %.2f, \"warm_p99_ms\": %.4f, "
      "\"cold_p50_ms\": %.4f, \"entries_before\": %llu, "
      "\"lp_tests\": %llu, \"evicted\": %llu, \"survived\": %llu}%s\n",
      m.apply_ms, m.refreeze_ms, m.invalidate_ms, m.qps, m.p50_ms, m.p99_ms,
      m.hit_rate, static_cast<unsigned long long>(m.warm_queries),
      static_cast<unsigned long long>(m.cold_queries), m.warm_qps,
      m.warm_p99_ms, m.cold_p50_ms,
      static_cast<unsigned long long>(m.entries_before),
      static_cast<unsigned long long>(m.lp_tests),
      static_cast<unsigned long long>(m.evicted),
      static_cast<unsigned long long>(m.survived), last ? "" : ",");
}

void JsonScenario(FILE* f, const char* key, const ScenarioResult& s,
                  bool last) {
  std::fprintf(f, "  \"%s\": {\n", key);
  std::fprintf(f, "    \"rounds\": [\n");
  for (size_t i = 0; i < s.rounds.size(); ++i) {
    JsonRound(f, s.rounds[i], i + 1 == s.rounds.size());
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f, "    \"sustained_qps\": %.2f,\n", s.sustained_qps);
  std::fprintf(f, "    \"sustained_qps_warm\": %.2f,\n", s.sustained_qps_warm);
  std::fprintf(f, "    \"warm_queries\": %llu,\n",
               static_cast<unsigned long long>(s.total_warm_queries));
  std::fprintf(f, "    \"cold_queries\": %llu,\n",
               static_cast<unsigned long long>(s.total_cold_queries));
  std::fprintf(f, "    \"cold_ms\": %.4f,\n", s.total_cold_ms);
  std::fprintf(f, "    \"refreeze_p50_ms\": %.4f,\n", s.refreeze_p50_ms);
  std::fprintf(f, "    \"refreeze_p99_ms\": %.4f,\n", s.refreeze_p99_ms);
  std::fprintf(f, "    \"updates_per_second\": %.2f,\n", s.updates_per_second);
  std::fprintf(f, "    \"entries_before\": %llu,\n",
               static_cast<unsigned long long>(s.total_entries_before));
  std::fprintf(f, "    \"lp_tests\": %llu,\n",
               static_cast<unsigned long long>(s.total_lp_tests));
  std::fprintf(f, "    \"evicted\": %llu,\n",
               static_cast<unsigned long long>(s.total_evicted));
  std::fprintf(f, "    \"survived\": %llu,\n",
               static_cast<unsigned long long>(s.total_survived));
  std::fprintf(f, "    \"survival_rate\": %.4f,\n", s.survival_rate);
  std::fprintf(f, "    \"mean_hit_rate\": %.4f\n", s.mean_hit_rate);
  std::fprintf(f, "  }%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  int64_t n = 40000;
  int64_t d = 4;
  int64_t k = 20;
  int64_t rounds = 8;
  int64_t updates = 32;
  int64_t pool = 16;
  int64_t queries = 48;
  int64_t seed = 2014;
  std::string out_path = "BENCH_PR3.json";
  FlagSet flags;
  flags.AddInt("n", &n, "dataset cardinality");
  flags.AddInt("d", &d, "dimensionality");
  flags.AddInt("k", &k, "top-k result size");
  flags.AddInt("rounds", &rounds, "update/query rounds");
  flags.AddInt("updates", &updates, "inserts (and deletes) per round");
  flags.AddInt("pool", &pool, "distinct query vectors in the pool");
  flags.AddInt("queries", &queries, "queries per round (drawn from pool)");
  flags.AddInt("seed", &seed, "RNG seed");
  flags.AddString("out", &out_path, "output JSON path");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) return s.code() == StatusCode::kNotFound ? 0 : 1;

  ScenarioResult incremental =
      RunScenario(true, n, d, k, rounds, updates, pool, queries, seed);
  PrintScenario("incremental LP invalidation", incremental);
  ScenarioResult invalidate_all =
      RunScenario(false, n, d, k, rounds, updates, pool, queries, seed);
  PrintScenario("invalidate-all strawman", invalidate_all);

  const bool strictly_fewer =
      incremental.total_evicted < invalidate_all.total_evicted;
  std::printf("\nincremental recomputes %llu vs invalidate-all %llu (%s)\n",
              static_cast<unsigned long long>(incremental.total_evicted),
              static_cast<unsigned long long>(invalidate_all.total_evicted),
              strictly_fewer ? "strictly fewer" : "NOT FEWER");

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_update_throughput\",\n");
  std::fprintf(f,
               "  \"params\": {\"n\": %lld, \"d\": %lld, \"k\": %lld, "
               "\"rounds\": %lld, \"updates\": %lld, \"pool\": %lld, "
               "\"queries\": %lld, \"seed\": %lld},\n",
               static_cast<long long>(n), static_cast<long long>(d),
               static_cast<long long>(k), static_cast<long long>(rounds),
               static_cast<long long>(updates), static_cast<long long>(pool),
               static_cast<long long>(queries), static_cast<long long>(seed));
  JsonScenario(f, "incremental", incremental, /*last=*/false);
  JsonScenario(f, "invalidate_all", invalidate_all, /*last=*/false);
  std::fprintf(f, "  \"comparison\": {\n");
  std::fprintf(f, "    \"incremental_evicted\": %llu,\n",
               static_cast<unsigned long long>(incremental.total_evicted));
  std::fprintf(f, "    \"invalidate_all_evicted\": %llu,\n",
               static_cast<unsigned long long>(invalidate_all.total_evicted));
  std::fprintf(f, "    \"incremental_strictly_fewer\": %s\n",
               strictly_fewer ? "true" : "false");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return strictly_fewer ? 0 : 2;
}
