#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.h"
#include "dataset/csv.h"
#include "dataset/generators.h"

namespace gir {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    return testing::TempDir() + "/gir_csv_" + name;
  }
  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(CsvTest, LoadsPlainNumbers) {
  std::string p = Path("plain.csv");
  WriteFile(p, "0.1,0.9\n0.5,0.5\n1.0,0.0\n");
  CsvOptions opt;
  opt.normalize = false;
  Result<Dataset> d = LoadCsvDataset(p, opt);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->size(), 3u);
  EXPECT_EQ(d->dim(), 2u);
  EXPECT_DOUBLE_EQ(d->Get(1)[0], 0.5);
}

TEST_F(CsvTest, SkipsHeaderAutomatically) {
  std::string p = Path("header.csv");
  WriteFile(p, "price,stars\n10,3\n20,5\n");
  Result<Dataset> d = LoadCsvDataset(p);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 2u);
}

TEST_F(CsvTest, NormalizesToUnitCube) {
  std::string p = Path("norm.csv");
  WriteFile(p, "10,100\n20,300\n15,200\n");
  Result<Dataset> d = LoadCsvDataset(p);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->Get(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(d->Get(1)[0], 1.0);
  EXPECT_DOUBLE_EQ(d->Get(2)[1], 0.5);
}

TEST_F(CsvTest, RejectsRaggedRowsNamingTheShape) {
  std::string p = Path("ragged.csv");
  WriteFile(p, "1,2\n3,4,5\n");
  Result<Dataset> d = LoadCsvDataset(p);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
  // The message carries enough to fix the file: line, got, expected.
  EXPECT_NE(d.status().message().find("line 2"), std::string::npos)
      << d.status().message();
  EXPECT_NE(d.status().message().find("got 3"), std::string::npos);
  EXPECT_NE(d.status().message().find("expected 2"), std::string::npos);
}

TEST_F(CsvTest, RejectsNonNumericCellNamingLineAndColumn) {
  std::string p = Path("alpha.csv");
  WriteFile(p, "1,2\n3,forty\n");
  Result<Dataset> d = LoadCsvDataset(p);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(d.status().message().find("line 2"), std::string::npos)
      << d.status().message();
  EXPECT_NE(d.status().message().find("column 2"), std::string::npos);
}

TEST_F(CsvTest, RejectsNonFiniteValues) {
  // strtod happily parses all of these as numbers; ingestion must not.
  for (const char* bad : {"nan", "NaN", "inf", "-inf", "Infinity", "1e999"}) {
    std::string p = Path("nonfinite.csv");
    WriteFile(p, std::string("1,2\n3,") + bad + "\n");
    Result<Dataset> d = LoadCsvDataset(p);
    ASSERT_FALSE(d.ok()) << bad;
    EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(d.status().message().find("non-finite"), std::string::npos)
        << d.status().message();
    EXPECT_NE(d.status().message().find("line 2"), std::string::npos) << bad;
    EXPECT_NE(d.status().message().find("column 2"), std::string::npos)
        << bad;
  }
}

TEST_F(CsvTest, NonFiniteFirstLineIsNeverMistakenForAHeader) {
  // "nan,inf" parses as numbers, so auto_header must not swallow it the
  // way it swallows "price,stars".
  std::string p = Path("nanheader.csv");
  WriteFile(p, "nan,inf\n1,2\n");
  Result<Dataset> d = LoadCsvDataset(p);
  ASSERT_FALSE(d.ok());
  EXPECT_NE(d.status().message().find("line 1"), std::string::npos)
      << d.status().message();
}

TEST_F(CsvTest, RejectsMissingFile) {
  Result<Dataset> d = LoadCsvDataset(Path("does_not_exist.csv"));
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kNotFound);
}

TEST_F(CsvTest, RejectsEmptyFile) {
  std::string p = Path("empty.csv");
  WriteFile(p, "");
  EXPECT_FALSE(LoadCsvDataset(p).ok());
}

TEST_F(CsvTest, SkipsBlankLines) {
  std::string p = Path("blank.csv");
  WriteFile(p, "1,2\n\n3,4\n\n");
  CsvOptions opt;
  opt.normalize = false;
  Result<Dataset> d = LoadCsvDataset(p, opt);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 2u);
}

TEST_F(CsvTest, WriteThenReadRoundTrips) {
  Rng rng(3);
  Dataset data = GenerateIndependent(200, 4, rng);
  std::string p = Path("rt.csv");
  ASSERT_TRUE(WriteCsvDataset(data, p).ok());
  CsvOptions opt;
  opt.normalize = false;
  opt.auto_header = false;
  Result<Dataset> back = LoadCsvDataset(p, opt);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), data.size());
  ASSERT_EQ(back->dim(), data.dim());
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t j = 0; j < data.dim(); ++j) {
      EXPECT_NEAR(back->Get(static_cast<RecordId>(i))[j],
                  data.Get(static_cast<RecordId>(i))[j], 1e-9);
    }
  }
}

TEST_F(CsvTest, CustomDelimiter) {
  std::string p = Path("semi.csv");
  WriteFile(p, "1;2\n3;4\n");
  CsvOptions opt;
  opt.delimiter = ';';
  opt.normalize = false;
  Result<Dataset> d = LoadCsvDataset(p, opt);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->dim(), 2u);
  EXPECT_DOUBLE_EQ(d->Get(1)[1], 4.0);
}

}  // namespace
}  // namespace gir
