#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geom/halfspace_intersection.h"
#include "geom/volume.h"

namespace gir {
namespace {

TEST(IntersectionTest, UnitCubeAlone) {
  std::vector<Halfspace> ge;  // cube only
  Vec hint = {0.5, 0.5};
  Result<IntersectionResult> r = IntersectHalfspaces(ge, hint);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->polytope.empty());
  EXPECT_EQ(r->polytope.vertices().size(), 4u);
  EXPECT_NEAR(r->polytope.Volume(), 1.0, 1e-9);
  EXPECT_TRUE(r->nonredundant.empty());
}

TEST(IntersectionTest, DiagonalCutSquare) {
  // x + y >= 1 inside the unit square: a triangle of area 1/2.
  std::vector<Halfspace> ge = {Halfspace{{1.0, 1.0}, 1.0}};
  Vec hint = {0.9, 0.9};
  Result<IntersectionResult> r = IntersectHalfspaces(ge, hint);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->polytope.vertices().size(), 3u);
  EXPECT_NEAR(r->polytope.Volume(), 0.5, 1e-9);
  ASSERT_EQ(r->nonredundant.size(), 1u);
  EXPECT_EQ(r->nonredundant[0], 0);
}

TEST(IntersectionTest, RedundantConstraintDetected) {
  std::vector<Halfspace> ge = {
      Halfspace{{1.0, 1.0}, 1.0},   // binding
      Halfspace{{1.0, 1.0}, 0.5},   // strictly dominated
  };
  Vec hint = {0.9, 0.9};
  Result<IntersectionResult> r = IntersectHalfspaces(ge, hint);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->nonredundant.size(), 1u);
  EXPECT_EQ(r->nonredundant[0], 0);
}

TEST(IntersectionTest, EmptyIntersection) {
  std::vector<Halfspace> ge = {Halfspace{{1.0, 0.0}, 2.0}};  // x >= 2
  Vec hint;
  Result<IntersectionResult> r = IntersectHalfspaces(ge, hint);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->polytope.empty());
  EXPECT_EQ(r->polytope.Volume(), 0.0);
}

TEST(IntersectionTest, BadHintFallsBackToChebyshev) {
  std::vector<Halfspace> ge = {Halfspace{{1.0, 1.0}, 1.0}};
  Vec hint = {0.1, 0.1};  // violates the constraint
  Result<IntersectionResult> r = IntersectHalfspaces(ge, hint);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->polytope.Volume(), 0.5, 1e-9);
}

TEST(IntersectionTest, ConeThroughOrigin3D) {
  // Wedge: x >= y and x >= z in the unit cube. Volume = 1/3 by symmetry
  // (x is the max coordinate in exactly 1/3 of the cube... actually
  // P(x = max) = 1/3).
  std::vector<Halfspace> ge = {Halfspace{{1.0, -1.0, 0.0}, 0.0},
                               Halfspace{{1.0, 0.0, -1.0}, 0.0}};
  Vec hint = {0.9, 0.1, 0.1};
  Result<IntersectionResult> r = IntersectHalfspaces(ge, hint);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->polytope.Volume(), 1.0 / 3.0, 1e-9);
  EXPECT_EQ(r->nonredundant.size(), 2u);
}

TEST(IntersectionTest, DuplicateInputsCollapse) {
  std::vector<Halfspace> ge = {Halfspace{{1.0, 1.0}, 1.0},
                               Halfspace{{2.0, 2.0}, 2.0},  // same plane
                               Halfspace{{1.0, 1.0}, 1.0}};
  Vec hint = {0.9, 0.9};
  Result<IntersectionResult> r = IntersectHalfspaces(ge, hint);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->polytope.Volume(), 0.5, 1e-9);
  EXPECT_EQ(r->nonredundant.size(), 1u);
}

TEST(IntersectionTest, VolumeMatchesMonteCarlo) {
  Rng rng(11);
  for (int d = 2; d <= 5; ++d) {
    // Random cone through a random interior direction.
    std::vector<Halfspace> ge;
    Vec q(d);
    for (int j = 0; j < d; ++j) q[j] = rng.Uniform(0.3, 0.7);
    for (int i = 0; i < 5; ++i) {
      Vec n(d);
      for (int j = 0; j < d; ++j) n[j] = rng.Uniform(-1.0, 1.0);
      // Orient so q satisfies the constraint strictly.
      double v = Dot(n, q);
      if (v < 0) {
        for (double& x : n) x = -x;
      }
      ge.push_back(Halfspace{std::move(n), 0.0});
    }
    Result<IntersectionResult> r = IntersectHalfspaces(ge, q);
    ASSERT_TRUE(r.ok()) << "d=" << d;
    double exact = r->polytope.Volume();
    Rng mc_rng(d * 31);
    double mc = MonteCarloCubeFraction(ge, d, 200000, mc_rng);
    EXPECT_NEAR(exact, mc, 0.012) << "d=" << d;
  }
}

TEST(IntersectionTest, VerticesSatisfyAllConstraints) {
  Rng rng(13);
  const int d = 4;
  std::vector<Halfspace> ge;
  Vec q(d, 0.5);
  for (int i = 0; i < 8; ++i) {
    Vec n(d);
    for (int j = 0; j < d; ++j) n[j] = rng.Uniform(-1.0, 1.0);
    if (Dot(n, q) < 0) {
      for (double& x : n) x = -x;
    }
    ge.push_back(Halfspace{std::move(n), 0.0});
  }
  Result<IntersectionResult> r = IntersectHalfspaces(ge, q);
  ASSERT_TRUE(r.ok());
  for (const Vec& v : r->polytope.vertices()) {
    for (const Halfspace& h : ge) {
      EXPECT_GE(Dot(h.normal, v) - h.offset, -1e-6);
    }
    for (int j = 0; j < d; ++j) {
      EXPECT_GE(v[j], -1e-7);
      EXPECT_LE(v[j], 1.0 + 1e-7);
    }
  }
}

TEST(BoundingBoxTest, ComputesExtents) {
  std::vector<Halfspace> ge = {Halfspace{{1.0, 1.0}, 1.0}};
  Vec hint = {0.9, 0.9};
  Result<IntersectionResult> r = IntersectHalfspaces(ge, hint);
  ASSERT_TRUE(r.ok());
  Vec lo, hi;
  ASSERT_TRUE(BoundingBox(r->polytope, &lo, &hi));
  EXPECT_NEAR(lo[0], 0.0, 1e-9);
  EXPECT_NEAR(hi[0], 1.0, 1e-9);
}

TEST(MonteCarloTest, HalfCubeFraction) {
  std::vector<Halfspace> ge = {Halfspace{{1.0, 0.0, 0.0}, 0.5}};
  Rng rng(3);
  double f = MonteCarloCubeFraction(ge, 3, 100000, rng);
  EXPECT_NEAR(f, 0.5, 0.01);
}

TEST(MonteCarloTest, BoxVolume) {
  std::vector<Halfspace> ge;  // no constraints: whole box
  Rng rng(4);
  Vec lo = {0.0, 0.0};
  Vec hi = {0.5, 0.25};
  EXPECT_NEAR(MonteCarloVolumeInBox(ge, lo, hi, 1000, rng), 0.125, 1e-12);
}

}  // namespace
}  // namespace gir
