#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "dataset/generators.h"
#include "topk/brs.h"
#include "topk/scoring.h"

namespace gir {
namespace {

// Reference top-k: sort all records by score.
std::vector<RecordId> LinearScanTopK(const Dataset& data,
                                     const ScoringFunction& scoring,
                                     VecView w, size_t k) {
  std::vector<RecordId> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [&](RecordId a, RecordId b) {
    return scoring.Score(data.Get(a), w) > scoring.Score(data.Get(b), w);
  });
  ids.resize(std::min(k, ids.size()));
  return ids;
}

TEST(ScoringTest, LinearScore) {
  LinearScoring s(3);
  Vec p = {0.5, 0.2, 0.1};
  Vec w = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(s.Score(p, w), 0.5 + 0.4 + 0.3);
  EXPECT_EQ(s.Transform(p), p);
}

TEST(ScoringTest, MaxScoreAtTopCorner) {
  LinearScoring s(2);
  Mbb box{{0.1, 0.2}, {0.5, 0.9}};
  Vec w = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(s.MaxScore(box, w), 1.4);
}

TEST(ScoringTest, TransformsAreMonotone) {
  for (const char* name : {"Linear", "Polynomial", "Mixed"}) {
    auto s = MakeScoring(name, 6);
    for (size_t i = 0; i < 6; ++i) {
      double prev = s->TransformDim(i, 0.0);
      for (double x = 0.05; x <= 1.0; x += 0.05) {
        double cur = s->TransformDim(i, x);
        EXPECT_GT(cur, prev) << name << " dim " << i << " x " << x;
        prev = cur;
      }
    }
  }
}

TEST(ScoringTest, MaxScoreBoundsAllBoxPoints) {
  Rng rng(3);
  for (const char* name : {"Linear", "Polynomial", "Mixed"}) {
    auto s = MakeScoring(name, 4);
    Mbb box{{0.2, 0.1, 0.3, 0.0}, {0.6, 0.8, 0.5, 0.7}};
    Vec w = {0.3, 0.9, 0.1, 0.5};
    double bound = s->MaxScore(box, w);
    for (int trial = 0; trial < 200; ++trial) {
      Vec p(4);
      for (int j = 0; j < 4; ++j) p[j] = rng.Uniform(box.lo[j], box.hi[j]);
      EXPECT_LE(s->Score(p, w), bound + 1e-12) << name;
    }
  }
}

TEST(ScoringTest, FactoryNames) {
  EXPECT_EQ(MakeScoring("Linear", 2)->name(), "Linear");
  EXPECT_EQ(MakeScoring("Polynomial", 2)->name(), "Polynomial");
  EXPECT_EQ(MakeScoring("Mixed", 2)->name(), "Mixed");
}

struct BrsCase {
  const char* dataset;
  int dim;
  int k;
};

class BrsTest : public ::testing::TestWithParam<BrsCase> {};

TEST_P(BrsTest, MatchesLinearScan) {
  const BrsCase& c = GetParam();
  Rng rng(42);
  Result<Dataset> data = GenerateByName(c.dataset, 3000, c.dim, rng);
  ASSERT_TRUE(data.ok());
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&*data, &disk);
  LinearScoring scoring(c.dim);
  for (int trial = 0; trial < 5; ++trial) {
    Vec w(c.dim);
    for (int j = 0; j < c.dim; ++j) w[j] = rng.Uniform(0.05, 1.0);
    Result<TopKResult> got = RunBrs(tree, scoring, w, c.k);
    ASSERT_TRUE(got.ok());
    std::vector<RecordId> want = LinearScanTopK(*data, scoring, w, c.k);
    ASSERT_EQ(got->result.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      // Scores must agree even if ties permute ids.
      EXPECT_NEAR(scoring.Score(data->Get(got->result[i]), w),
                  scoring.Score(data->Get(want[i]), w), 1e-12);
    }
    // Scores must be in decreasing order.
    for (size_t i = 1; i < got->scores.size(); ++i) {
      EXPECT_GE(got->scores[i - 1], got->scores[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BrsTest,
    ::testing::Values(BrsCase{"IND", 2, 10}, BrsCase{"IND", 4, 20},
                      BrsCase{"COR", 3, 5}, BrsCase{"ANTI", 4, 20},
                      BrsCase{"ANTI", 6, 50}));

TEST(BrsTest, NonLinearScoringMatchesScan) {
  Rng rng(17);
  Dataset data = GenerateIndependent(2000, 4, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  for (const char* name : {"Polynomial", "Mixed"}) {
    auto scoring = MakeScoring(name, 4);
    Vec w = {0.4, 0.6, 0.5, 0.7};
    Result<TopKResult> got = RunBrs(tree, *scoring, w, 15);
    ASSERT_TRUE(got.ok());
    std::vector<RecordId> want = LinearScanTopK(data, *scoring, w, 15);
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_NEAR(scoring->Score(data.Get(got->result[i]), w),
                  scoring->Score(data.Get(want[i]), w), 1e-12)
          << name;
    }
  }
}

TEST(BrsTest, EncounteredDisjointFromResult) {
  Rng rng(5);
  Dataset data = GenerateIndependent(1000, 3, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  LinearScoring scoring(3);
  Vec w = {0.5, 0.5, 0.5};
  Result<TopKResult> r = RunBrs(tree, scoring, w, 20);
  ASSERT_TRUE(r.ok());
  for (RecordId t : r->encountered) {
    EXPECT_EQ(std::count(r->result.begin(), r->result.end(), t), 0);
  }
}

TEST(BrsTest, PendingNodesWereNeverRead) {
  // Every pending node's maxscore must be <= the k-th result score
  // (BRS terminates exactly then) — the I/O-optimality witness.
  Rng rng(6);
  Dataset data = GenerateAnticorrelated(3000, 3, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  LinearScoring scoring(3);
  Vec w = {0.9, 0.4, 0.7};
  Result<TopKResult> r = RunBrs(tree, scoring, w, 10);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->result.size(), 10u);
  double kth = r->scores.back();
  for (const PendingNode& pn : r->pending) {
    EXPECT_LE(pn.maxscore, kth + 1e-12);
  }
}

TEST(BrsTest, SmallDatasetReturnsAll) {
  Dataset data = Dataset::FromRows({{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.1}});
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  LinearScoring scoring(2);
  Vec w = {1.0, 1.0};
  Result<TopKResult> r = RunBrs(tree, scoring, w, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.size(), 3u);
  EXPECT_TRUE(r->pending.empty());
  EXPECT_TRUE(r->encountered.empty());
}

TEST(BrsTest, RejectsBadArguments) {
  Dataset data = Dataset::FromRows({{0.1, 0.2}});
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  LinearScoring scoring(2);
  EXPECT_FALSE(RunBrs(tree, scoring, Vec{0.5, 0.5}, 0).ok());
  EXPECT_FALSE(RunBrs(tree, scoring, Vec{0.5}, 1).ok());
}

TEST(BrsTest, RetainedStateIsSufficientToContinue) {
  // The GIR Phase-2 algorithms rely on BRS's leftovers (encountered
  // records + pending nodes) covering *all* of D \ R. Verify by
  // continuing the search from the retained state: the next m best
  // records must match a fresh top-(k+m) linear scan.
  Rng rng(77);
  Dataset data = GenerateIndependent(4000, 3, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  LinearScoring scoring(3);
  Vec w = {0.8, 0.3, 0.6};
  const size_t k = 10;
  const size_t m = 25;
  Result<TopKResult> first = RunBrs(tree, scoring, w, k);
  ASSERT_TRUE(first.ok());

  // Resume: a max-heap over retained records and nodes.
  struct E {
    double key;
    bool is_node;
    int32_t id;
  };
  auto less = [](const E& a, const E& b) { return a.key < b.key; };
  std::vector<E> heap;
  for (RecordId r : first->encountered) {
    heap.push_back(E{scoring.Score(data.Get(r), w), false, r});
  }
  for (const PendingNode& pn : first->pending) {
    heap.push_back(E{pn.maxscore, true, static_cast<int32_t>(pn.page)});
  }
  std::make_heap(heap.begin(), heap.end(), less);
  std::vector<RecordId> continued;
  while (!heap.empty() && continued.size() < m) {
    std::pop_heap(heap.begin(), heap.end(), less);
    E top = heap.back();
    heap.pop_back();
    if (!top.is_node) {
      continued.push_back(top.id);
      continue;
    }
    const RTreeNode& node = tree.ReadNode(static_cast<PageId>(top.id));
    for (const RTreeEntry& e : node.entries) {
      if (node.is_leaf) {
        heap.push_back(E{scoring.Score(data.Get(e.child), w), false,
                         e.child});
      } else {
        heap.push_back(E{scoring.MaxScore(e.mbb, w), true, e.child});
      }
      std::push_heap(heap.begin(), heap.end(), less);
    }
  }
  std::vector<RecordId> want = LinearScanTopK(data, scoring, w, k + m);
  ASSERT_EQ(continued.size(), m);
  for (size_t i = 0; i < m; ++i) {
    EXPECT_NEAR(scoring.Score(data.Get(continued[i]), w),
                scoring.Score(data.Get(want[k + i]), w), 1e-12)
        << "rank " << k + i;
  }
}

TEST(BrsTest, IoCountedOnlyForReadNodes) {
  Rng rng(21);
  Dataset data = GenerateIndependent(5000, 2, rng);
  DiskManager disk;
  RTree tree = RTree::BulkLoad(&data, &disk);
  disk.ResetStats();
  LinearScoring scoring(2);
  Vec w = {0.5, 0.5};
  Result<TopKResult> r = RunBrs(tree, scoring, w, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->io.reads, disk.stats().reads);
  EXPECT_GT(r->io.reads, 0u);
  // BRS is I/O-light: it should touch far fewer pages than exist.
  EXPECT_LT(r->io.reads, tree.node_count() / 4);
}

}  // namespace
}  // namespace gir
