#include <gtest/gtest.h>

#include <cmath>

#include "geom/hyperplane.h"
#include "geom/hull2d.h"
#include "geom/vec.h"

namespace gir {
namespace {

TEST(VecTest, DotAndNorm) {
  Vec a = {1.0, 2.0, 3.0};
  Vec b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(NormSquared(a), 14.0);
  EXPECT_DOUBLE_EQ(Norm(a), std::sqrt(14.0));
}

TEST(VecTest, Arithmetic) {
  Vec a = {1.0, 2.0};
  Vec b = {3.0, 5.0};
  EXPECT_EQ(Sub(b, a), (Vec{2.0, 3.0}));
  EXPECT_EQ(Add(a, b), (Vec{4.0, 7.0}));
  EXPECT_EQ(Scale(a, 2.0), (Vec{2.0, 4.0}));
  EXPECT_EQ(AddScaled(a, b, 2.0), (Vec{7.0, 12.0}));
}

TEST(VecTest, NormalizeInPlace) {
  Vec a = {3.0, 4.0};
  ASSERT_TRUE(NormalizeInPlace(a));
  EXPECT_DOUBLE_EQ(a[0], 0.6);
  EXPECT_DOUBLE_EQ(a[1], 0.8);
  Vec zero = {0.0, 0.0};
  EXPECT_FALSE(NormalizeInPlace(zero));
}

TEST(VecTest, LInfDistance) {
  Vec a = {0.0, 1.0};
  Vec b = {0.5, -1.0};
  EXPECT_DOUBLE_EQ(LInfDistance(a, b), 2.0);
}

TEST(VecTest, ToStringFormats) {
  Vec a = {0.5, 1.0};
  EXPECT_EQ(ToString(a), "(0.5, 1)");
}

TEST(LinearSystemTest, SolvesIdentity) {
  std::vector<Vec> a = {{1.0, 0.0}, {0.0, 1.0}};
  Result<Vec> x = SolveLinearSystem(a, {3.0, 4.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 4.0, 1e-12);
}

TEST(LinearSystemTest, SolvesGeneral3x3) {
  std::vector<Vec> a = {{2.0, 1.0, -1.0}, {-3.0, -1.0, 2.0}, {-2.0, 1.0, 2.0}};
  Result<Vec> x = SolveLinearSystem(a, {8.0, -11.0, -3.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-9);
  EXPECT_NEAR((*x)[1], 3.0, 1e-9);
  EXPECT_NEAR((*x)[2], -1.0, 1e-9);
}

TEST(LinearSystemTest, DetectsSingular) {
  std::vector<Vec> a = {{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_FALSE(SolveLinearSystem(a, {1.0, 2.0}).ok());
}

TEST(HyperplaneTest, FitIn2D) {
  std::vector<Vec> points = {{0.0, 1.0}, {1.0, 0.0}};
  Vec interior = {0.0, 0.0};
  Result<Hyperplane> plane = FitHyperplane(points, {0, 1}, interior);
  ASSERT_TRUE(plane.ok());
  // Plane x + y = 1 with outward normal away from the origin.
  EXPECT_NEAR(plane->Evaluate(Vec{0.5, 0.5}), 0.0, 1e-12);
  EXPECT_LT(plane->Evaluate(interior), 0.0);
  EXPECT_GT(plane->Evaluate(Vec{1.0, 1.0}), 0.0);
}

TEST(HyperplaneTest, FitIn4D) {
  // Plane x0 = 0.5 through four points, interior at the origin.
  std::vector<Vec> points = {{0.5, 0.0, 0.0, 0.0},
                             {0.5, 1.0, 0.0, 0.0},
                             {0.5, 0.0, 1.0, 0.0},
                             {0.5, 0.0, 0.0, 1.0}};
  Vec interior(4, 0.0);
  Result<Hyperplane> plane = FitHyperplane(points, {0, 1, 2, 3}, interior);
  ASSERT_TRUE(plane.ok());
  EXPECT_NEAR(std::fabs(plane->normal[0]), 1.0, 1e-12);
  EXPECT_GT(plane->Evaluate(Vec{1.0, 0.3, 0.3, 0.3}), 0.0);
  EXPECT_LT(plane->Evaluate(Vec{0.0, 0.3, 0.3, 0.3}), 0.0);
}

TEST(HyperplaneTest, RejectsDegenerate) {
  std::vector<Vec> points = {{0.0, 0.0, 0.0},
                             {1.0, 0.0, 0.0},
                             {2.0, 0.0, 0.0}};  // collinear
  Vec interior = {0.0, 1.0, 0.0};
  EXPECT_FALSE(FitHyperplane(points, {0, 1, 2}, interior).ok());
}

TEST(HyperplaneTest, HalfspaceContains) {
  Halfspace h{{1.0, 1.0}, 1.0};
  EXPECT_TRUE(h.Contains(Vec{1.0, 1.0}));
  EXPECT_FALSE(h.Contains(Vec{0.0, 0.0}));
  EXPECT_TRUE(h.Contains(Vec{0.5, 0.5}));
}

TEST(Hull2DTest, Square) {
  std::vector<Vec> pts = {{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}};
  std::vector<int> hull = ConvexHull2D(pts);
  EXPECT_EQ(hull.size(), 4u);
  // CCW from (0,0).
  EXPECT_EQ(hull[0], 0);
}

TEST(Hull2DTest, CollinearExcluded) {
  std::vector<Vec> pts = {{0, 0}, {0.5, 0.5}, {1, 1}, {1, 0}};
  std::vector<int> hull = ConvexHull2D(pts);
  EXPECT_EQ(hull.size(), 3u);
}

TEST(Hull2DTest, DuplicatesTolerated) {
  std::vector<Vec> pts = {{0, 0}, {0, 0}, {1, 0}, {1, 0}, {0, 1}};
  std::vector<int> hull = ConvexHull2D(pts);
  EXPECT_EQ(hull.size(), 3u);
}

TEST(Hull2DTest, TwoPoints) {
  std::vector<Vec> pts = {{0, 0}, {1, 1}};
  EXPECT_EQ(ConvexHull2D(pts).size(), 2u);
}

TEST(Hull2DTest, Cross2DSign) {
  EXPECT_GT(Cross2D(Vec{0, 0}, Vec{1, 0}, Vec{1, 1}), 0.0);
  EXPECT_LT(Cross2D(Vec{0, 0}, Vec{1, 0}, Vec{1, -1}), 0.0);
  EXPECT_DOUBLE_EQ(Cross2D(Vec{0, 0}, Vec{1, 1}, Vec{2, 2}), 0.0);
}

}  // namespace
}  // namespace gir
