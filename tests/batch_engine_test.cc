// BatchEngine: bit-identical results vs sequential ComputeGir, cache
// serving across batches, partial-hit accounting, and per-item error
// propagation.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "dataset/generators.h"
#include "gir/batch_engine.h"

namespace gir {
namespace {

std::vector<Vec> RandomWeights(size_t count, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Vec w(dim);
    for (size_t j = 0; j < dim; ++j) w[j] = rng.Uniform(0.05, 1.0);
    out.push_back(std::move(w));
  }
  return out;
}

void ExpectSameRegion(const GirRegion& a, const GirRegion& b) {
  ASSERT_EQ(a.constraints().size(), b.constraints().size());
  for (size_t i = 0; i < a.constraints().size(); ++i) {
    const GirConstraint& ca = a.constraints()[i];
    const GirConstraint& cb = b.constraints()[i];
    EXPECT_EQ(ca.normal, cb.normal);  // bit-identical doubles
    EXPECT_EQ(ca.provenance.kind, cb.provenance.kind);
    EXPECT_EQ(ca.provenance.position, cb.provenance.position);
    EXPECT_EQ(ca.provenance.challenger, cb.provenance.challenger);
  }
}

TEST(BatchEngineTest, BitIdenticalToSequentialWithoutCache) {
  Rng rng(42);
  Dataset data = GenerateIndependent(3000, 3, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));

  const size_t k = 10;
  std::vector<Vec> weights = RandomWeights(64, 3, 7);

  std::vector<GirComputation> sequential;
  sequential.reserve(weights.size());
  for (const Vec& w : weights) {
    Result<GirComputation> gir = engine->ComputeGir(w, k, Phase2Method::kFP);
    ASSERT_TRUE(gir.ok());
    sequential.push_back(std::move(*gir));
  }

  BatchOptions options;
  options.threads = 4;
  options.cache_capacity = 0;  // pure fan-out, every query computed
  BatchEngine batch(engine.get(), options);
  Result<BatchResult> result = batch.ComputeBatch(weights, k,
                                                  Phase2Method::kFP);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->items.size(), weights.size());

  for (size_t i = 0; i < weights.size(); ++i) {
    const BatchItem& item = result->items[i];
    ASSERT_TRUE(item.status.ok()) << "query " << i;
    EXPECT_EQ(item.cache, ShardedGirCache::HitKind::kMiss);
    ASSERT_TRUE(item.computed.has_value());
    EXPECT_EQ(item.topk, sequential[i].topk.result);
    EXPECT_EQ(item.computed->topk.scores, sequential[i].topk.scores);
    ExpectSameRegion(item.computed->region, sequential[i].region);
    EXPECT_EQ(item.computed->stats.topk_reads, sequential[i].stats.topk_reads);
    EXPECT_EQ(item.computed->stats.phase2_reads,
              sequential[i].stats.phase2_reads);
    EXPECT_EQ(item.computed->stats.constraints,
              sequential[i].stats.constraints);
  }
  EXPECT_EQ(result->stats.queries, weights.size());
  EXPECT_EQ(result->stats.misses, weights.size());
  EXPECT_EQ(result->stats.exact_hits, 0u);
  EXPECT_EQ(result->stats.failures, 0u);
  EXPECT_GT(result->stats.total_reads, 0u);
  EXPECT_GE(result->stats.p99_ms, result->stats.p50_ms);
}

TEST(BatchEngineTest, WarmCacheServesRepeatsWithoutIo) {
  Rng rng(43);
  Dataset data = GenerateIndependent(2000, 3, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));

  BatchOptions options;
  options.threads = 2;
  options.cache_capacity = 128;
  BatchEngine batch(engine.get(), options);

  const size_t k = 8;
  std::vector<Vec> weights = RandomWeights(16, 3, 9);
  Result<BatchResult> cold = batch.ComputeBatch(weights, k, Phase2Method::kFP);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->stats.failures, 0u);

  // Same batch again: every query falls inside its own cached GIR.
  Result<BatchResult> warm = batch.ComputeBatch(weights, k, Phase2Method::kFP);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->stats.exact_hits, weights.size());
  EXPECT_EQ(warm->stats.total_reads, 0u);
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_EQ(warm->items[i].topk, cold->items[i].topk) << "query " << i;
    EXPECT_FALSE(warm->items[i].computed.has_value());
  }
}

TEST(BatchEngineTest, LargerKIsAPartialHitAndRecomputes) {
  Rng rng(44);
  Dataset data = GenerateIndependent(2000, 3, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));

  BatchOptions options;
  options.threads = 2;
  options.cache_capacity = 64;
  BatchEngine batch(engine.get(), options);

  std::vector<Vec> weights = {Vec{0.5, 0.6, 0.7}};
  Result<BatchResult> first = batch.ComputeBatch(weights, 5, Phase2Method::kFP);
  ASSERT_TRUE(first.ok());

  Result<BatchResult> second =
      batch.ComputeBatch(weights, 12, Phase2Method::kFP);
  ASSERT_TRUE(second.ok());
  const BatchItem& item = second->items[0];
  ASSERT_TRUE(item.status.ok());
  EXPECT_EQ(item.cache, ShardedGirCache::HitKind::kPartial);
  ASSERT_TRUE(item.computed.has_value());
  ASSERT_EQ(item.topk.size(), 12u);
  // The cached top-5 is the exact prefix of the recomputed top-12.
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(item.topk[i], first->items[0].topk[i]);
  }
  EXPECT_EQ(second->stats.partial_hits, 1u);
}

TEST(BatchEngineTest, PerQueryErrorsLandInItemStatus) {
  Rng rng(45);
  Dataset data = GenerateIndependent(100, 2, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 2)));

  BatchOptions options;
  options.threads = 2;
  BatchEngine batch(engine.get(), options);

  std::vector<Vec> weights = {Vec{0.5, 0.5}, Vec{0.4, 0.6}};
  // k > n fails per query, not for the whole batch.
  Result<BatchResult> result = batch.ComputeBatch(weights, 1000,
                                                  Phase2Method::kFP);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.failures, 2u);
  for (const BatchItem& item : result->items) {
    EXPECT_FALSE(item.status.ok());
    EXPECT_TRUE(item.topk.empty());
  }
}

TEST(BatchEngineTest, RejectsDimensionMismatch) {
  Rng rng(46);
  Dataset data = GenerateIndependent(100, 3, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));
  BatchEngine batch(engine.get(), BatchOptions{});
  std::vector<Vec> weights = {Vec{0.5, 0.5}};  // d=2 vs dataset d=3
  Result<BatchResult> result = batch.ComputeBatch(weights, 5,
                                                  Phase2Method::kFP);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace gir
