// Order-insensitive GIR* (paper §7.1): membership must predict
// preservation of the result COMPOSITION (as a set), the region must
// contain the order-sensitive GIR, and SP/CP/FP variants must agree.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "common/rng.h"
#include "dataset/generators.h"
#include "gir/engine.h"
#include "gir/gir_star.h"
#include "skyline/dominance.h"

namespace gir {
namespace {

std::set<RecordId> ScanTopKSet(const Dataset& data,
                               const ScoringFunction& scoring, VecView w,
                               size_t k) {
  std::vector<RecordId> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [&](RecordId a, RecordId b) {
    return scoring.Score(data.Get(a), w) > scoring.Score(data.Get(b), w);
  });
  return std::set<RecordId>(ids.begin(), ids.begin() + k);
}

TEST(PruneResultTest, DropsDominatorsAndInterior) {
  // Result shaped like paper Figure 12: p2 dominates p5, p3 interior.
  Dataset data = Dataset::FromRows({
      {0.30, 0.95},  // 0: hull, dominates nobody
      {0.75, 0.80},  // 1: dominates record 2 and 4
      {0.60, 0.70},  // 2: interior
      {0.90, 0.30},  // 3: hull, dominates nobody
      {0.70, 0.55},  // 4: interior (above the 0-3 hull edge) + dominated
  });
  LinearScoring scoring(2);
  std::vector<RecordId> r = {0, 1, 2, 3, 4};
  std::vector<RecordId> rminus = PruneResultForGirStar(data, scoring, r);
  // 1 dominates 2: drop 1. 2 and 4 interior: drop. Expect {0, 3}.
  EXPECT_EQ(rminus, (std::vector<RecordId>{0, 3}));
}

TEST(PruneResultTest, SmallResultKeptWhole) {
  Dataset data = Dataset::FromRows({{0.2, 0.9}, {0.9, 0.2}});
  LinearScoring scoring(2);
  std::vector<RecordId> r = {0, 1};
  EXPECT_EQ(PruneResultForGirStar(data, scoring, r).size(), 2u);
}

struct StarCase {
  const char* dataset;
  int dim;
  int k;
  const char* method;
};

class GirStarTest : public ::testing::TestWithParam<StarCase> {};

TEST_P(GirStarTest, MembershipPredictsCompositionPreservation) {
  const StarCase& c = GetParam();
  Rng rng(1000 + c.dim);
  Result<Dataset> data = GenerateByName(c.dataset, 400, c.dim, rng);
  ASSERT_TRUE(data.ok());
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&*data, &disk, MakeScoring("Linear", c.dim)));
  LinearScoring scoring(c.dim);
  Result<Phase2Method> method = ParsePhase2Method(c.method);
  ASSERT_TRUE(method.ok());

  Vec w(c.dim);
  for (int j = 0; j < c.dim; ++j) w[j] = rng.Uniform(0.2, 0.9);
  Result<GirComputation> star = engine->ComputeGirStar(w, c.k, *method);
  ASSERT_TRUE(star.ok());
  std::set<RecordId> original = ScanTopKSet(*data, scoring, w, c.k);

  // Inside probes via convex ray sampling.
  int inside = 0;
  for (int probe = 0; probe < 60; ++probe) {
    Vec dir(c.dim);
    for (int j = 0; j < c.dim; ++j) dir[j] = rng.Uniform(-1.0, 1.0);
    GirRegion::RaySpan span = star->region.ClipRay(w, dir);
    Vec q = AddScaled(w, dir, rng.Uniform(0.0, 0.9 * span.t_max));
    if (!star->region.Contains(q, -1e-9)) continue;
    EXPECT_EQ(ScanTopKSet(*data, scoring, q, c.k), original)
        << "composition must be preserved inside GIR*";
    ++inside;
  }
  int outside = 0;
  for (int probe = 0; probe < 200; ++probe) {
    Vec q(c.dim);
    for (int j = 0; j < c.dim; ++j) q[j] = rng.Uniform(0.001, 1.0);
    if (star->region.Contains(q, 1e-9)) continue;
    EXPECT_NE(ScanTopKSet(*data, scoring, q, c.k), original)
        << "composition must change outside GIR*";
    ++outside;
  }
  EXPECT_GT(inside, 5);
  EXPECT_GT(outside, 5);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GirStarTest,
    ::testing::Values(StarCase{"IND", 2, 6, "FP"}, StarCase{"IND", 3, 6, "FP"},
                      StarCase{"IND", 3, 6, "SP"}, StarCase{"IND", 3, 6, "CP"},
                      StarCase{"ANTI", 3, 5, "FP"},
                      StarCase{"ANTI", 4, 6, "SP"},
                      StarCase{"COR", 4, 8, "FP"}));

TEST(GirStarTest, VariantsDescribeTheSameRegion) {
  Rng rng(2024);
  Dataset data = GenerateIndependent(500, 3, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));
  Vec w = {0.5, 0.7, 0.4};
  Result<GirComputation> sp = engine->ComputeGirStar(w, 8, Phase2Method::kSP);
  Result<GirComputation> cp = engine->ComputeGirStar(w, 8, Phase2Method::kCP);
  Result<GirComputation> fp = engine->ComputeGirStar(w, 8, Phase2Method::kFP);
  ASSERT_TRUE(sp.ok());
  ASSERT_TRUE(cp.ok());
  ASSERT_TRUE(fp.ok());
  for (int probe = 0; probe < 500; ++probe) {
    Vec q = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    bool in_sp = sp->region.Contains(q);
    EXPECT_EQ(in_sp, cp->region.Contains(q));
    EXPECT_EQ(in_sp, fp->region.Contains(q));
  }
}

TEST(GirStarTest, GirStarEnclosesGir) {
  // Definition 2 is looser than Definition 1: GIR ⊆ GIR*.
  Rng rng(31337);
  Dataset data = GenerateAnticorrelated(400, 3, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));
  for (int trial = 0; trial < 5; ++trial) {
    Vec w(3);
    for (int j = 0; j < 3; ++j) w[j] = rng.Uniform(0.2, 0.9);
    Result<GirComputation> gir = engine->ComputeGir(w, 6, Phase2Method::kFP);
    Result<GirComputation> star =
        engine->ComputeGirStar(w, 6, Phase2Method::kFP);
    ASSERT_TRUE(gir.ok());
    ASSERT_TRUE(star.ok());
    // Sample inside the order-sensitive GIR; must be inside GIR*.
    for (int probe = 0; probe < 100; ++probe) {
      Vec dir(3);
      for (int j = 0; j < 3; ++j) dir[j] = rng.Uniform(-1.0, 1.0);
      GirRegion::RaySpan span = gir->region.ClipRay(w, dir);
      Vec q = AddScaled(w, dir, rng.Uniform(0.0, 0.95 * span.t_max));
      if (!gir->region.Contains(q)) continue;
      EXPECT_TRUE(star->region.Contains(q, 1e-9));
    }
    double v_gir = gir->region.polytope().Volume();
    double v_star = star->region.polytope().Volume();
    EXPECT_GE(v_star, v_gir - 1e-9);
  }
}

TEST(GirStarTest, BruteForceMethodRejected) {
  Rng rng(5);
  Dataset data = GenerateIndependent(100, 2, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 2)));
  EXPECT_FALSE(
      engine->ComputeGirStar(Vec{0.5, 0.5}, 5, Phase2Method::kBruteForce)
          .ok());
}

}  // namespace
}  // namespace gir
