// Applications built on the GIR: LIR projection, MAH box, sensitivity
// (volume ratio) and the GIR-based result cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "dataset/generators.h"
#include "gir/cache.h"
#include "gir/engine.h"
#include "gir/sensitivity.h"
#include "gir/visualization.h"

namespace gir {
namespace {

std::vector<RecordId> ScanTopK(const Dataset& data,
                               const ScoringFunction& scoring, VecView w,
                               size_t k) {
  std::vector<RecordId> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [&](RecordId a, RecordId b) {
    return scoring.Score(data.Get(a), w) > scoring.Score(data.Get(b), w);
  });
  ids.resize(k);
  return ids;
}

class ToolsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(404);
    data_ = GenerateIndependent(500, 3, rng);
    engine_ = OpenEngineOrDie(
        EngineConfig::FromDataset(&data_, &disk_, MakeScoring("Linear", 3)));
    w_ = {0.6, 0.5, 0.7};
    Result<GirComputation> gir =
        engine_->ComputeGir(w_, 8, Phase2Method::kFP);
    ASSERT_TRUE(gir.ok());
    gir_ = std::make_unique<GirComputation>(std::move(*gir));
  }

  Dataset data_{3};
  DiskManager disk_;
  std::unique_ptr<GirEngine> engine_;
  Vec w_;
  std::unique_ptr<GirComputation> gir_;
};

TEST_F(ToolsFixture, LirsContainQueryAndPreserveResult) {
  LinearScoring scoring(3);
  std::vector<WeightRange> lirs = ComputeLirs(gir_->region);
  ASSERT_EQ(lirs.size(), 3u);
  std::vector<RecordId> original = ScanTopK(data_, scoring, w_, 8);
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_LE(lirs[j].lo, w_[j]);
    EXPECT_GE(lirs[j].hi, w_[j]);
    // Endpoints (nudged inward) preserve the result; nudged outward
    // they change it (maximality of the LIR).
    for (double endpoint : {lirs[j].lo, lirs[j].hi}) {
      double inward = endpoint < w_[j] ? 1e-6 : -1e-6;
      Vec q = w_;
      q[j] = endpoint + inward;
      EXPECT_EQ(ScanTopK(data_, scoring, q, 8), original) << "dim " << j;
      if (endpoint > 1e-4 && endpoint < 1.0 - 1e-4) {
        q[j] = endpoint - 1e-5 * (inward > 0 ? 1.0 : -1.0) * 50;
        // Just outside the LIR: the ordered result must differ.
        q[j] = endpoint - inward * 50;
        EXPECT_NE(ScanTopK(data_, scoring, q, 8), original) << "dim " << j;
      }
    }
  }
}

TEST_F(ToolsFixture, ProjectionAtShiftedPointStaysInside) {
  // Shift the query inside the GIR and re-project (the "interactive
  // projection" of §7.3).
  std::vector<WeightRange> lirs = ComputeLirs(gir_->region);
  Vec q = w_;
  q[0] = 0.5 * (w_[0] + lirs[0].hi);  // still inside dimension-0 range
  std::vector<WeightRange> reproj = ProjectOntoRegion(gir_->region, q);
  ASSERT_EQ(reproj.size(), 3u);
  EXPECT_LE(reproj[0].lo, q[0]);
  EXPECT_GE(reproj[0].hi, q[0]);
  // Outside point: empty ranges.
  Vec out(3, 0.0);
  out[0] = 1.0;  // on the cube corner, outside the cone generically
  if (!gir_->region.Contains(out)) {
    std::vector<WeightRange> none = ProjectOntoRegion(gir_->region, out);
    EXPECT_EQ(none[0].lo, 0.0);
    EXPECT_EQ(none[0].hi, 0.0);
  }
}

TEST_F(ToolsFixture, MahInsideRegionAndContainsQuery) {
  MahBox box = ComputeMah(gir_->region);
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_LE(box.lo[j], w_[j] + 1e-12);
    EXPECT_GE(box.hi[j], w_[j] - 1e-12);
  }
  EXPECT_GT(box.Volume(), 0.0);
  // Every corner of the MAH lies inside the region.
  for (int mask = 0; mask < 8; ++mask) {
    Vec corner(3);
    for (int j = 0; j < 3; ++j) {
      corner[j] = (mask >> j) & 1 ? box.hi[j] : box.lo[j];
    }
    EXPECT_TRUE(gir_->region.Contains(corner, 1e-9)) << "mask " << mask;
  }
  // The MAH is inside the GIR, so its volume cannot exceed it.
  EXPECT_LE(box.Volume(), gir_->region.polytope().Volume() + 1e-9);
}

TEST_F(ToolsFixture, MahFacewiseMaximal) {
  // No face can be pushed further without leaving the region.
  MahBox box = ComputeMah(gir_->region);
  const double step = 1e-4;
  for (int j = 0; j < 3; ++j) {
    for (int side = 0; side < 2; ++side) {
      MahBox bigger = box;
      if (side == 0) {
        bigger.hi[j] = std::min(1.0, box.hi[j] + step);
      } else {
        bigger.lo[j] = std::max(0.0, box.lo[j] - step);
      }
      if (bigger.hi[j] == box.hi[j] && bigger.lo[j] == box.lo[j]) continue;
      bool all_inside = true;
      for (int mask = 0; mask < 8 && all_inside; ++mask) {
        Vec corner(3);
        for (int b = 0; b < 3; ++b) {
          corner[b] = (mask >> b) & 1 ? bigger.hi[b] : bigger.lo[b];
        }
        all_inside = gir_->region.Contains(corner, 1e-12);
      }
      EXPECT_FALSE(all_inside) << "face " << j << "/" << side
                               << " was not maximal";
    }
  }
}

TEST_F(ToolsFixture, VolumeRatioModesAgree) {
  Rng rng(1);
  double exact = VolumeRatio(gir_->region, VolumeMode::kExact, rng);
  double mc = VolumeRatio(gir_->region, VolumeMode::kMonteCarloCube, rng,
                          400000);
  double mc_box =
      VolumeRatio(gir_->region, VolumeMode::kMonteCarloBox, rng, 400000);
  double automatic = VolumeRatioAuto(gir_->region, rng);
  EXPECT_GT(exact, 0.0);
  EXPECT_NEAR(mc, exact, 0.01);
  EXPECT_NEAR(mc_box, exact, 0.01);
  EXPECT_NEAR(automatic, exact, 1e-12);
}

TEST(SensitivityTest, LargerKGivesSmallerRegion) {
  Rng rng(777);
  Dataset data = GenerateIndependent(2000, 3, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));
  Vec w = {0.5, 0.6, 0.7};
  double prev = 1.0;
  for (size_t k : {5, 20, 60}) {
    Result<GirComputation> gir = engine->ComputeGir(w, k, Phase2Method::kFP);
    ASSERT_TRUE(gir.ok());
    Rng mc(k);
    double ratio = VolumeRatioAuto(gir->region, mc);
    EXPECT_LT(ratio, prev + 1e-12) << "k=" << k;
    prev = ratio;
  }
}

TEST(CacheTest, ExactHitInsideGir) {
  Rng rng(99);
  Dataset data = GenerateIndependent(800, 3, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 3)));
  Vec w = {0.5, 0.5, 0.5};
  Result<GirComputation> gir = engine->ComputeGir(w, 10, Phase2Method::kFP);
  ASSERT_TRUE(gir.ok());
  GirCache cache;
  cache.Insert(10, gir->topk.result, gir->region);

  // The query itself: exact hit.
  GirCache::Lookup hit = cache.Probe(w, 10);
  EXPECT_EQ(hit.kind, GirCache::HitKind::kExact);
  EXPECT_EQ(hit.records, gir->topk.result);

  // Smaller k: exact prefix.
  GirCache::Lookup prefix = cache.Probe(w, 3);
  EXPECT_EQ(prefix.kind, GirCache::HitKind::kExact);
  EXPECT_EQ(prefix.records,
            std::vector<RecordId>(gir->topk.result.begin(),
                                  gir->topk.result.begin() + 3));

  // Larger k: partial (progressive reporting).
  GirCache::Lookup partial = cache.Probe(w, 20);
  EXPECT_EQ(partial.kind, GirCache::HitKind::kPartial);
  EXPECT_EQ(partial.records, gir->topk.result);

  // A far-away vector: miss.
  Vec far = {0.95, 0.02, 0.03};
  if (!gir->region.Contains(far)) {
    EXPECT_EQ(cache.Probe(far, 10).kind, GirCache::HitKind::kMiss);
  }
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.partial_hits(), 1u);
  EXPECT_GE(cache.misses(), 1u);
}

TEST(CacheTest, HitsAreCorrectAnswers) {
  // Any probe the cache answers must agree with a fresh computation.
  Rng rng(123);
  Dataset data = GenerateIndependent(600, 2, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 2)));
  LinearScoring scoring(2);
  GirCache cache;
  int verified_hits = 0;
  for (int i = 0; i < 60; ++i) {
    Vec q = {rng.Uniform(0.05, 1.0), rng.Uniform(0.05, 1.0)};
    GirCache::Lookup lk = cache.Probe(q, 10);
    if (lk.kind == GirCache::HitKind::kExact) {
      EXPECT_EQ(lk.records, ScanTopK(data, scoring, q, 10));
      ++verified_hits;
      continue;
    }
    Result<GirComputation> gir = engine->ComputeGir(q, 10, Phase2Method::kFP);
    ASSERT_TRUE(gir.ok());
    cache.Insert(10, gir->topk.result, gir->region);
  }
  // With 60 clustered probes in 2-D some hits must have occurred.
  EXPECT_GT(verified_hits + static_cast<int>(cache.partial_hits()), 0);
}

TEST(VisualizationTest, UnconstrainedRegionGivesFullRangesAndCube) {
  // A GIR with no data constraints (k records = whole dataset): the
  // LIRs span [0,1] and the MAH fills the cube.
  GirRegion region(3, Vec{0.4, 0.5, 0.6}, {0});
  std::vector<WeightRange> lirs = ComputeLirs(region);
  for (const WeightRange& r : lirs) {
    EXPECT_DOUBLE_EQ(r.lo, 0.0);
    EXPECT_DOUBLE_EQ(r.hi, 1.0);
  }
  MahBox box = ComputeMah(region);
  EXPECT_NEAR(box.Volume(), 1.0, 1e-9);
}

TEST(VisualizationTest, MahInFourDimensions) {
  Rng rng(808);
  Dataset data = GenerateIndependent(1200, 4, rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", 4)));
  Vec w = {0.5, 0.6, 0.4, 0.7};
  Result<GirComputation> gir = engine->ComputeGir(w, 6, Phase2Method::kFP);
  ASSERT_TRUE(gir.ok());
  MahBox box = ComputeMah(gir->region);
  EXPECT_GT(box.Volume(), 0.0);
  for (int mask = 0; mask < 16; ++mask) {
    Vec corner(4);
    for (int j = 0; j < 4; ++j) {
      corner[j] = (mask >> j) & 1 ? box.hi[j] : box.lo[j];
    }
    EXPECT_TRUE(gir->region.Contains(corner, 1e-9));
  }
}

TEST(CacheTest, MoveToFrontKeepsHotEntriesResident) {
  GirCache cache(2);
  GirRegion wide(2, Vec{0.5, 0.5}, {1});  // no constraints: whole cube
  cache.Insert(1, {1}, wide);
  GirRegion narrow(2, Vec{0.9, 0.1}, {2});
  ConstraintProvenance prov;
  narrow.AddConstraint(Vec{1.0, -5.0}, prov);  // excludes most of cube
  cache.Insert(1, {2}, narrow);
  // Touch the wide entry so it moves to the front...
  EXPECT_EQ(cache.Probe(Vec{0.5, 0.5}, 1).kind, GirCache::HitKind::kExact);
  // ...then overflow: the narrow entry (now LRU) must be evicted.
  GirRegion third(2, Vec{0.5, 0.5}, {3});
  cache.Insert(1, {3}, third);
  EXPECT_EQ(cache.size(), 2u);
  // The wide entry still answers.
  GirCache::Lookup hit = cache.Probe(Vec{0.4, 0.6}, 1);
  EXPECT_NE(hit.kind, GirCache::HitKind::kMiss);
}

TEST(CacheTest, LruEviction) {
  GirCache cache(2);
  GirRegion r1(2, Vec{0.5, 0.5}, {1});
  GirRegion r2(2, Vec{0.5, 0.5}, {2});
  GirRegion r3(2, Vec{0.5, 0.5}, {3});
  cache.Insert(1, {1}, r1);
  cache.Insert(1, {2}, r2);
  cache.Insert(1, {3}, r3);
  EXPECT_EQ(cache.size(), 2u);
}

}  // namespace
}  // namespace gir
