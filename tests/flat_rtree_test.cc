// Layout-equivalence property tests: the frozen FlatRTree must be
// indistinguishable from the mutable R*-tree it was frozen from — same
// structure, same RangeQuery answers, and bit-identical traversal
// output (BRS results/scores/pending heap, Phase-2 GIR constraints,
// simulated IoStats) on random IND/COR/ANTI datasets, both bulk-loaded
// and incrementally inserted.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/rng.h"
#include "dataset/generators.h"
#include "gir/cp.h"
#include "gir/fp2d.h"
#include "gir/fpnd.h"
#include "gir/gir_star.h"
#include "gir/phase1.h"
#include "gir/sp.h"
#include "index/flat_rtree.h"
#include "index/rtree.h"
#include "topk/brs.h"

namespace gir {
namespace {

Dataset MakeData(const std::string& dist, size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Result<Dataset> data = GenerateByName(dist, n, d, rng);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

RTree BuildTree(const Dataset& data, DiskManager* disk, bool bulk) {
  if (bulk) return RTree::BulkLoad(&data, disk);
  RTree tree(&data, disk);
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(static_cast<RecordId>(i));
  }
  return tree;
}

Vec Query(Rng& rng, size_t d) {
  Vec w(d);
  for (size_t j = 0; j < d; ++j) w[j] = rng.Uniform(0.05, 1.0);
  return w;
}

// Runs BRS + Phase 1 + the given Phase-2 method on either tree
// representation and returns everything the equivalence check compares.
struct PipelineRun {
  TopKResult topk;
  std::vector<GirConstraint> constraints;
  uint64_t phase2_reads = 0;
};

template <typename Tree>
PipelineRun RunPipeline(const Tree& tree, const ScoringFunction& scoring,
                        VecView w, size_t k, const std::string& method,
                        bool order_sensitive) {
  PipelineRun out;
  Result<TopKResult> topk = RunBrs(tree, scoring, w, k);
  EXPECT_TRUE(topk.ok());
  out.topk = std::move(topk).value();
  GirRegion region(tree.dataset().dim(), Vec(w.begin(), w.end()),
                   out.topk.result);
  if (order_sensitive) {
    AddPhase1Constraints(tree.dataset(), scoring, out.topk.result, &region);
    Result<Phase2Output> p2 = [&]() -> Result<Phase2Output> {
      if (method == "SP") {
        return RunSpPhase2(tree, scoring, w, out.topk, &region);
      }
      if (method == "CP") {
        return RunCpPhase2(tree, scoring, w, out.topk, &region);
      }
      if (tree.dataset().dim() == 2) {
        return RunFp2dPhase2(tree, scoring, w, out.topk, &region);
      }
      return RunFpNdPhase2(tree, scoring, w, out.topk, &region, FpOptions{});
    }();
    EXPECT_TRUE(p2.ok());
    out.phase2_reads = p2->io.reads;
  } else {
    Result<Phase2Output> p2 = RunGirStarPhase2(tree, scoring, w, out.topk,
                                               method, &region, FpOptions{});
    EXPECT_TRUE(p2.ok());
    out.phase2_reads = p2->io.reads;
  }
  out.constraints = region.constraints();
  return out;
}

void ExpectBitIdentical(const PipelineRun& a, const PipelineRun& b,
                        const std::string& label) {
  SCOPED_TRACE(label);
  // BRS output.
  EXPECT_EQ(a.topk.result, b.topk.result);
  ASSERT_EQ(a.topk.scores.size(), b.topk.scores.size());
  for (size_t i = 0; i < a.topk.scores.size(); ++i) {
    EXPECT_EQ(a.topk.scores[i], b.topk.scores[i]) << "score " << i;
  }
  EXPECT_EQ(a.topk.encountered, b.topk.encountered);
  ASSERT_EQ(a.topk.pending.size(), b.topk.pending.size());
  for (size_t i = 0; i < a.topk.pending.size(); ++i) {
    EXPECT_EQ(a.topk.pending[i].page, b.topk.pending[i].page) << "pend " << i;
    EXPECT_EQ(a.topk.pending[i].maxscore, b.topk.pending[i].maxscore)
        << "pend " << i;
  }
  EXPECT_EQ(a.topk.io.reads, b.topk.io.reads);
  // Phase-2 I/O.
  EXPECT_EQ(a.phase2_reads, b.phase2_reads);
  // Region constraints, bitwise.
  ASSERT_EQ(a.constraints.size(), b.constraints.size());
  for (size_t i = 0; i < a.constraints.size(); ++i) {
    const GirConstraint& ca = a.constraints[i];
    const GirConstraint& cb = b.constraints[i];
    EXPECT_EQ(ca.provenance.kind, cb.provenance.kind) << "constraint " << i;
    EXPECT_EQ(ca.provenance.position, cb.provenance.position)
        << "constraint " << i;
    EXPECT_EQ(ca.provenance.challenger, cb.provenance.challenger)
        << "constraint " << i;
    ASSERT_EQ(ca.normal.size(), cb.normal.size());
    for (size_t j = 0; j < ca.normal.size(); ++j) {
      EXPECT_EQ(ca.normal[j], cb.normal[j])
          << "constraint " << i << " dim " << j;
    }
  }
}

TEST(FlatRTreeTest, StructureMatchesSource) {
  for (bool bulk : {true, false}) {
    Dataset data = MakeData("IND", 1500, 3, 42);
    DiskManager disk;
    RTree tree = BuildTree(data, &disk, bulk);
    FlatRTree flat = FlatRTree::Freeze(tree);
    ASSERT_EQ(flat.node_count(), tree.node_count());
    EXPECT_EQ(flat.root(), tree.root());
    EXPECT_EQ(flat.height(), tree.height());
    EXPECT_EQ(flat.size(), tree.size());
    EXPECT_EQ(flat.Capacity(), tree.Capacity());
    for (size_t p = 0; p < tree.node_count(); ++p) {
      const RTreeNode& node = tree.PeekNode(static_cast<PageId>(p));
      FlatRTree::NodeView view = flat.PeekNode(static_cast<PageId>(p));
      ASSERT_EQ(view.count(), node.entries.size());
      EXPECT_EQ(view.is_leaf(), node.is_leaf);
      EXPECT_EQ(view.level(), node.level);
      for (size_t e = 0; e < node.entries.size(); ++e) {
        EXPECT_EQ(view.child(e), node.entries[e].child);
        for (size_t j = 0; j < data.dim(); ++j) {
          EXPECT_EQ(view.lo(j)[e], node.entries[e].mbb.lo[j]);
          EXPECT_EQ(view.hi(j)[e], node.entries[e].mbb.hi[j]);
        }
      }
    }
  }
}

TEST(FlatRTreeTest, RangeQueryMatchesSource) {
  Rng boxes(7);
  for (const char* dist : {"IND", "COR", "ANTI"}) {
    for (bool bulk : {true, false}) {
      Dataset data = MakeData(dist, 1200, 3, 99);
      DiskManager disk;
      RTree tree = BuildTree(data, &disk, bulk);
      FlatRTree flat = FlatRTree::Freeze(tree);
      for (int q = 0; q < 8; ++q) {
        Mbb box = Mbb::EmptyBox(3);
        for (size_t j = 0; j < 3; ++j) {
          double a = boxes.Uniform();
          double b = boxes.Uniform();
          box.lo[j] = std::min(a, b);
          box.hi[j] = std::max(a, b);
        }
        std::vector<RecordId> expect = tree.RangeQuery(box);
        std::vector<RecordId> got = flat.RangeQuery(box);
        std::sort(expect.begin(), expect.end());
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, expect) << dist << " bulk=" << bulk << " q=" << q;
      }
    }
  }
}

// The acceptance property: GirRegion constraints and IoStats are
// bit-identical between the mutable and frozen paths, across datasets,
// dimensionalities, build methods and Phase-2 methods.
TEST(FlatRTreeEquivalenceTest, GirPipelineBitIdentical) {
  const size_t n = 1200;
  const size_t k = 10;
  for (const char* dist : {"IND", "COR", "ANTI"}) {
    for (size_t d : {2, 3, 4}) {
      Dataset data = MakeData(dist, n, d, 1000 + d);
      for (bool bulk : {true, false}) {
        DiskManager disk;
        RTree tree = BuildTree(data, &disk, bulk);
        FlatRTree flat = FlatRTree::Freeze(tree);
        LinearScoring scoring(d);
        Rng qrng(2014 + d);
        for (int q = 0; q < 2; ++q) {
          Vec w = Query(qrng, d);
          for (const char* method : {"SP", "CP", "FP"}) {
            PipelineRun mut =
                RunPipeline(tree, scoring, w, k, method, true);
            PipelineRun frz =
                RunPipeline(flat, scoring, w, k, method, true);
            ExpectBitIdentical(mut, frz,
                               std::string(dist) + " d=" + std::to_string(d) +
                                   (bulk ? " bulk " : " insert ") + method);
          }
        }
      }
    }
  }
}

TEST(FlatRTreeEquivalenceTest, GirStarBitIdentical) {
  Dataset data = MakeData("ANTI", 1000, 3, 77);
  DiskManager disk;
  RTree tree = BuildTree(data, &disk, /*bulk=*/true);
  FlatRTree flat = FlatRTree::Freeze(tree);
  LinearScoring scoring(3);
  Rng qrng(31);
  Vec w = Query(qrng, 3);
  for (const char* method : {"SP", "CP", "FP"}) {
    PipelineRun mut = RunPipeline(tree, scoring, w, 8, method, false);
    PipelineRun frz = RunPipeline(flat, scoring, w, 8, method, false);
    ExpectBitIdentical(mut, frz, std::string("GIR* ") + method);
  }
}

// Non-linear scorings exercise the TransformDimBatch kernel path.
TEST(FlatRTreeEquivalenceTest, NonLinearScoringBitIdentical) {
  Dataset data = MakeData("IND", 1000, 4, 55);
  DiskManager disk;
  RTree tree = BuildTree(data, &disk, /*bulk=*/true);
  FlatRTree flat = FlatRTree::Freeze(tree);
  Rng qrng(17);
  Vec w = Query(qrng, 4);
  for (const char* name : {"Polynomial", "Mixed"}) {
    std::unique_ptr<ScoringFunction> scoring = MakeScoring(name, 4);
    for (const char* method : {"SP", "FP"}) {
      PipelineRun mut = RunPipeline(tree, *scoring, w, 12, method, true);
      PipelineRun frz = RunPipeline(flat, *scoring, w, 12, method, true);
      ExpectBitIdentical(mut, frz, std::string(name) + " " + method);
    }
  }
}

}  // namespace
}  // namespace gir
