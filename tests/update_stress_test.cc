// Concurrent update/query hammer: reader threads issue top-k GIR
// queries nonstop while a writer thread applies insert/delete batches
// through the epoch-snapshot swap, and a batch thread drives the cached
// path. Run under ASan/UBSan with detect_leaks=1 in CI (the
// `update-stress` step): a torn snapshot, a use-after-free of a retired
// epoch, or a leaked arena must die here, not in prod.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "dataset/generators.h"
#include "gir/batch_engine.h"
#include "gir/engine.h"

namespace gir {
namespace {

Vec Query(Rng& rng, size_t d) {
  Vec w(d);
  for (size_t j = 0; j < d; ++j) w[j] = rng.Uniform(0.05, 1.0);
  return w;
}

Vec Point(Rng& rng, size_t d) {
  Vec p(d);
  for (size_t j = 0; j < d; ++j) p[j] = rng.Uniform();
  return p;
}

TEST(UpdateStressTest, ConcurrentQueriesAndUpdates) {
  const size_t n = 1200;
  const size_t d = 3;
  const size_t k = 10;
  Rng gen_rng(2024);
  Dataset data = GenerateIndependent(n, d, gen_rng);
  DiskManager disk;
  auto engine = OpenEngineOrDie(
      EngineConfig::FromDataset(&data, &disk, MakeScoring("Linear", d)));
  BatchOptions opts;
  opts.threads = 2;
  opts.cache_capacity = 64;
  BatchEngine batch(engine.get(), opts);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries_ok{0};
  std::atomic<int> failures{0};

  // Readers: raw engine queries, validating result shape and score
  // monotonicity on every iteration.
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(100 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        Vec w = Query(rng, d);
        Result<GirComputation> gir =
            engine->ComputeGir(w, k, Phase2Method::kFP);
        if (!gir.ok()) {
          failures.fetch_add(1);
          continue;
        }
        bool sane = gir->topk.result.size() == k;
        for (size_t i = 0; i + 1 < gir->topk.scores.size() && sane; ++i) {
          sane = gir->topk.scores[i] >= gir->topk.scores[i + 1];
        }
        if (!sane || !gir->region.Contains(w)) {
          failures.fetch_add(1);
        } else {
          queries_ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Batch reader: exercises the cached path (probe + versioned insert)
  // concurrently with invalidation.
  std::thread batch_reader([&] {
    Rng rng(500);
    std::vector<Vec> pool;
    for (int i = 0; i < 6; ++i) pool.push_back(Query(rng, d));
    while (!stop.load(std::memory_order_relaxed)) {
      Result<BatchResult> br = batch.ComputeBatch(pool, k,
                                                  Phase2Method::kFP);
      if (!br.ok()) {
        failures.fetch_add(1);
        continue;
      }
      for (const BatchItem& item : br->items) {
        if (!item.status.ok() || item.topk.size() != k) failures.fetch_add(1);
      }
    }
  });

  // Writer: the only mutator, so it can track live ids without locks.
  Rng wrng(900);
  std::vector<RecordId> live;
  for (size_t i = 0; i < n; ++i) live.push_back(static_cast<RecordId>(i));
  for (int round = 0; round < 12; ++round) {
    UpdateBatch ub;
    for (int i = 0; i < 6; ++i) ub.inserts.push_back(Point(wrng, d));
    for (int i = 0; i < 6 && !live.empty(); ++i) {
      size_t at = static_cast<size_t>(wrng.UniformInt(live.size()));
      ub.deletes.push_back(live[at]);
      live.erase(live.begin() + at);
    }
    Result<UpdateStats> applied = batch.ApplyUpdates(ub);
    ASSERT_TRUE(applied.ok()) << applied.status().message();
    for (int i = 0; i < static_cast<int>(ub.inserts.size()); ++i) {
      live.push_back(static_cast<RecordId>(data.size() -
                                           ub.inserts.size() +
                                           static_cast<size_t>(i)));
    }
    EXPECT_EQ(applied->version, static_cast<uint64_t>(round + 1));
    // Let readers overlap several epochs.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  stop.store(true);
  for (std::thread& r : readers) r.join();
  batch_reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(queries_ok.load(), 0u);
  EXPECT_EQ(engine->dataset_version(), 12u);

  // Post-hammer ground truth: the updated engine agrees with a scratch
  // rebuild of the final dataset.
  Dataset rebuilt = data;
  DiskManager rdisk;
  auto reference = OpenEngineOrDie(
      EngineConfig::FromDataset(&rebuilt, &rdisk, MakeScoring("Linear", d)));
  Rng vrng(1000);
  for (int q = 0; q < 5; ++q) {
    Vec w = Query(vrng, d);
    Result<GirComputation> got = engine->ComputeGir(w, k, Phase2Method::kFP);
    Result<GirComputation> want =
        reference->ComputeGir(w, k, Phase2Method::kFP);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(got->topk.result, want->topk.result);
    EXPECT_EQ(got->topk.scores, want->topk.scores);
  }
}

}  // namespace
}  // namespace gir
