#include <gtest/gtest.h>

#include "gir/gir_region.h"

namespace gir {
namespace {

GirRegion MakeWedge() {
  // 2-D wedge: w1 >= w2 and w1 >= 0.2 (through-origin + offset... the
  // second is emulated via cube + constraint normals): use two origin
  // half-planes w1 - w2 >= 0 and 3*w2 - w1 >= 0 (cone between the
  // diagonal and the line w1 = 3 w2).
  GirRegion region(2, Vec{0.5, 0.3}, {7, 9});
  ConstraintProvenance prov;
  prov.kind = ConstraintProvenance::Kind::kOrdering;
  prov.position = 0;
  region.AddConstraint(Vec{1.0, -1.0}, prov);
  ConstraintProvenance prov2;
  prov2.kind = ConstraintProvenance::Kind::kOvertake;
  prov2.position = 1;
  prov2.challenger = 42;
  region.AddConstraint(Vec{-1.0, 3.0}, prov2);
  return region;
}

TEST(GirRegionTest, Contains) {
  GirRegion region = MakeWedge();
  EXPECT_TRUE(region.Contains(Vec{0.5, 0.3}));
  EXPECT_TRUE(region.Contains(Vec{0.6, 0.4}));
  EXPECT_FALSE(region.Contains(Vec{0.3, 0.5}));   // violates first
  EXPECT_FALSE(region.Contains(Vec{0.9, 0.1}));   // violates second
  EXPECT_FALSE(region.Contains(Vec{1.5, 1.0}));   // outside cube
}

TEST(GirRegionTest, ClipRayInterval) {
  GirRegion region = MakeWedge();
  Vec q = {0.5, 0.3};
  Vec dir = {1.0, 0.0};
  GirRegion::RaySpan span = region.ClipRay(q, dir);
  // Moving w1 up is bounded by w1 <= 3*w2 = 0.9; down by w1 >= w2 = 0.3.
  EXPECT_NEAR(q[0] + span.t_max, 0.9, 1e-12);
  EXPECT_NEAR(q[0] + span.t_min, 0.3, 1e-12);
}

TEST(GirRegionTest, ClipRayOutsidePoint) {
  GirRegion region = MakeWedge();
  GirRegion::RaySpan span = region.ClipRay(Vec{0.1, 0.9}, Vec{1.0, 0.0});
  // The ray from an outside point still reports the crossing interval
  // bounded by t where constraints hold; here first constraint requires
  // t >= 0.8 and the second w2*3 >= w1 -> t <= 2.6-0.1 = 2.6... just
  // check the span is to the right of the start.
  EXPECT_GT(span.t_min, 0.0);
  EXPECT_GE(span.t_max, span.t_min);
}

TEST(GirRegionTest, PolytopeAndNonredundant) {
  GirRegion region = MakeWedge();
  ConstraintProvenance prov;
  prov.kind = ConstraintProvenance::Kind::kOvertake;
  prov.position = 1;
  prov.challenger = 99;
  // Redundant: implied by w1 >= w2 (weaker cut of the same side).
  region.AddConstraint(Vec{2.0, -1.0}, prov);
  const Polytope& poly = region.polytope();
  EXPECT_FALSE(poly.empty());
  // Non-redundant set: constraints 0 and 1 but not 2.
  std::vector<int> nr = region.nonredundant_indices();
  EXPECT_EQ(nr, (std::vector<int>{0, 1}));
}

TEST(GirRegionTest, BoundaryEventsDescribePerturbations) {
  GirRegion region = MakeWedge();
  std::vector<BoundaryEvent> events = region.BoundaryEvents();
  ASSERT_EQ(events.size(), 2u);
  bool saw_swap = false;
  bool saw_overtake = false;
  for (const BoundaryEvent& e : events) {
    if (e.constraint.provenance.kind ==
        ConstraintProvenance::Kind::kOrdering) {
      saw_swap = true;
      EXPECT_NE(e.description.find("swap"), std::string::npos);
    } else {
      saw_overtake = true;
      EXPECT_NE(e.description.find("overtakes"), std::string::npos);
      EXPECT_EQ(e.constraint.provenance.challenger, 42);
    }
  }
  EXPECT_TRUE(saw_swap);
  EXPECT_TRUE(saw_overtake);
}

TEST(GirRegionTest, EmptyRegionPolytope) {
  GirRegion region(2, Vec{0.5, 0.5}, {1});
  ConstraintProvenance prov;
  region.AddConstraint(Vec{1.0, 0.0}, prov);
  region.AddConstraint(Vec{-1.0, -0.1}, prov);  // w1 <= -0.1*w2: empty in cube+
  const Polytope& poly = region.polytope();
  EXPECT_DOUBLE_EQ(poly.Volume(), 0.0);
}

TEST(GirRegionTest, VolumeOfWedge) {
  GirRegion region = MakeWedge();
  // Cone between lines w2 = w1 and w2 = w1/3 inside the unit square:
  // area = 1/2 - 1/6 = 1/3.
  EXPECT_NEAR(region.polytope().Volume(), 1.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace gir
